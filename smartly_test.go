package smartly

import (
	"context"
	"strings"
	"testing"
)

const quickstartSrc = `
module demo(input s, input r, input [3:0] a, input [3:0] b,
            input [3:0] c, output [3:0] y);
  // Paper Figure 3: the inner select (s|r) is implied by the outer s.
  assign y = s ? ((s | r) ? a : b) : c;
endmodule`

func TestFacadeEndToEnd(t *testing.T) {
	design, err := ParseVerilog(quickstartSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := design.Top()
	orig := m.Clone()
	before, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Optimize(m, PipelineFull)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed {
		t.Error("nothing optimized")
	}
	after, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("area %d -> %d, expected reduction", before, after)
	}
	if err := CheckEquivalence(orig, m); err != nil {
		t.Fatalf("not equivalent: %v", err)
	}
}

const seqFacadeSrc = `
module seqdemo(input clk, input [3:0] x, output [3:0] y);
  reg [3:0] live;
  reg [3:0] spin;
  always @(posedge clk) begin
    live <= x + 4'b0001;
    spin <= spin;
  end
  assign y = live | spin;
endmodule`

// TestFacadeSequentialCheck: CheckEquivalence must prove register
// sweeps by induction instead of tripping the combinational miter's
// flip-flop interface match, and still refute a real sequential bug.
func TestFacadeSequentialCheck(t *testing.T) {
	design, err := ParseVerilog(seqFacadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := design.Top()
	orig := m.Clone()
	flow, err := NamedFlow("seq")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flow.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed || rep.Counter("opt_dff", "dff_removed") == 0 {
		t.Fatalf("expected a register sweep, got %+v", rep)
	}
	if err := CheckEquivalence(orig, m); err != nil {
		t.Fatalf("swept netlist not proven equivalent: %v", err)
	}
	// A genuinely different sequential module must be refuted.
	broken, err := ParseVerilog(strings.Replace(seqFacadeSrc,
		"live <= x + 4'b0001;", "live <= x + 4'b0010;", 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEquivalence(orig, broken.Top()); err == nil {
		t.Fatal("broken sequential module passed CheckEquivalence")
	}
}

func TestFacadeBaselineWeaker(t *testing.T) {
	areas := map[Pipeline]int{}
	for _, p := range []Pipeline{PipelineYosys, PipelineFull} {
		design, err := ParseVerilog(quickstartSrc)
		if err != nil {
			t.Fatal(err)
		}
		m := design.Top()
		if _, err := Optimize(m, p); err != nil {
			t.Fatal(err)
		}
		a, err := Area(m)
		if err != nil {
			t.Fatal(err)
		}
		areas[p] = a
	}
	if areas[PipelineFull] >= areas[PipelineYosys] {
		t.Errorf("full=%d should beat yosys=%d on the Figure 3 circuit",
			areas[PipelineFull], areas[PipelineYosys])
	}
}

func TestOptimizeContextMatchesOptimize(t *testing.T) {
	run := func(opts OptimizeOptions) (Report, int) {
		design, err := ParseVerilog(quickstartSrc)
		if err != nil {
			t.Fatal(err)
		}
		m := design.Top()
		rep, err := OptimizeContext(context.Background(), m, PipelineFull, opts)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Area(m)
		if err != nil {
			t.Fatal(err)
		}
		return rep, a
	}
	repSeq, areaSeq := run(OptimizeOptions{Workers: 1})
	repPar, areaPar := run(OptimizeOptions{Workers: 8})
	if areaSeq != areaPar {
		t.Errorf("area differs by worker count: %d vs %d", areaSeq, areaPar)
	}
	if len(repSeq.Details) != len(repPar.Details) {
		t.Errorf("details differ: %v vs %v", repSeq.Details, repPar.Details)
	}
}

func TestOptimizeContextCanceled(t *testing.T) {
	design, err := ParseVerilog(quickstartSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimizeContext(ctx, design.Top(), PipelineFull, OptimizeOptions{}); err == nil {
		t.Error("canceled optimize reported success")
	}
}

const twoModuleSrc = `
module alpha(input s, input r, input [3:0] a, input [3:0] b,
             input [3:0] c, output [3:0] y);
  assign y = s ? ((s | r) ? a : b) : c;
endmodule
module beta(input [1:0] s, input [3:0] p0, input [3:0] p1,
            input [3:0] p2, input [3:0] p3, output reg [3:0] y);
  always @(*) begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule`

func TestOptimizeDesignAllModules(t *testing.T) {
	design, err := ParseVerilog(twoModuleSrc)
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]int{}
	for _, m := range design.Modules() {
		if before[m.Name], err = Area(m); err != nil {
			t.Fatal(err)
		}
	}
	reports, err := OptimizeDesign(context.Background(), design, PipelineFull,
		OptimizeOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports for %d modules, want 2", len(reports))
	}
	for _, m := range design.Modules() {
		rep, ok := reports[m.Name]
		if !ok {
			t.Fatalf("no report for module %s", m.Name)
		}
		if !rep.Changed {
			t.Errorf("module %s: nothing optimized", m.Name)
		}
		after, err := Area(m)
		if err != nil {
			t.Fatal(err)
		}
		if after >= before[m.Name] {
			t.Errorf("module %s: area %d -> %d, expected reduction", m.Name, before[m.Name], after)
		}
	}
}

func TestPipelineNames(t *testing.T) {
	for _, p := range []Pipeline{PipelineYosys, PipelineSAT, PipelineRebuild, PipelineFull} {
		got, err := ParsePipeline(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePipeline("bogus"); err == nil {
		t.Error("bogus pipeline accepted")
	}
	if !strings.Contains(Pipeline(99).String(), "99") {
		t.Error("unknown pipeline String")
	}
}

func TestBenchmarkGeneration(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 10 {
		t.Fatalf("BenchmarkNames = %d entries, want 10", len(names))
	}
	m, err := GenerateBenchmark(names[0], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() == 0 {
		t.Error("empty benchmark module")
	}
	if _, err := GenerateBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	ind := GenerateIndustrial(0, 0.02)
	if ind.NumCells() == 0 {
		t.Error("empty industrial module")
	}
}

func TestFacadeBuilderAPI(t *testing.T) {
	m := NewModule("api")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 4)
	m.Connect(y.Bits(), m.Mux(a, b, s))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	d := NewDesign()
	d.AddModule(m)
	if d.Top() != m {
		t.Error("design top lost")
	}
	if got := Const(5, 4).String(); got != "4'b0101" {
		t.Errorf("Const rendering = %q", got)
	}
}
