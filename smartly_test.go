package smartly

import (
	"strings"
	"testing"
)

const quickstartSrc = `
module demo(input s, input r, input [3:0] a, input [3:0] b,
            input [3:0] c, output [3:0] y);
  // Paper Figure 3: the inner select (s|r) is implied by the outer s.
  assign y = s ? ((s | r) ? a : b) : c;
endmodule`

func TestFacadeEndToEnd(t *testing.T) {
	design, err := ParseVerilog(quickstartSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := design.Top()
	orig := m.Clone()
	before, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Optimize(m, PipelineFull)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed {
		t.Error("nothing optimized")
	}
	after, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("area %d -> %d, expected reduction", before, after)
	}
	if err := CheckEquivalence(orig, m); err != nil {
		t.Fatalf("not equivalent: %v", err)
	}
}

func TestFacadeBaselineWeaker(t *testing.T) {
	areas := map[Pipeline]int{}
	for _, p := range []Pipeline{PipelineYosys, PipelineFull} {
		design, err := ParseVerilog(quickstartSrc)
		if err != nil {
			t.Fatal(err)
		}
		m := design.Top()
		if _, err := Optimize(m, p); err != nil {
			t.Fatal(err)
		}
		a, err := Area(m)
		if err != nil {
			t.Fatal(err)
		}
		areas[p] = a
	}
	if areas[PipelineFull] >= areas[PipelineYosys] {
		t.Errorf("full=%d should beat yosys=%d on the Figure 3 circuit",
			areas[PipelineFull], areas[PipelineYosys])
	}
}

func TestPipelineNames(t *testing.T) {
	for _, p := range []Pipeline{PipelineYosys, PipelineSAT, PipelineRebuild, PipelineFull} {
		got, err := ParsePipeline(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePipeline("bogus"); err == nil {
		t.Error("bogus pipeline accepted")
	}
	if !strings.Contains(Pipeline(99).String(), "99") {
		t.Error("unknown pipeline String")
	}
}

func TestBenchmarkGeneration(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 10 {
		t.Fatalf("BenchmarkNames = %d entries, want 10", len(names))
	}
	m, err := GenerateBenchmark(names[0], 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() == 0 {
		t.Error("empty benchmark module")
	}
	if _, err := GenerateBenchmark("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	ind := GenerateIndustrial(0, 0.02)
	if ind.NumCells() == 0 {
		t.Error("empty industrial module")
	}
}

func TestFacadeBuilderAPI(t *testing.T) {
	m := NewModule("api")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 4)
	m.Connect(y.Bits(), m.Mux(a, b, s))
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	d := NewDesign()
	d.AddModule(m)
	if d.Top() != m {
		t.Error("design top lost")
	}
	if got := Const(5, 4).String(); got != "4'b0101" {
		t.Errorf("Const rendering = %q", got)
	}
}
