// Package client is a thin Go client for the smartlyd HTTP API
// (internal/server, endpoints documented in docs/api.md). It speaks the
// wire types of internal/server/api and adds a design-level convenience
// wrapper, OptimizeDesign, used by `smartly -remote`.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/server/api"
)

// Client talks to one smartlyd instance. The zero value is not usable;
// construct with New.
type Client struct {
	baseURL string
	httpc   *http.Client
}

// New builds a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). The default HTTP client is used; swap it
// with SetHTTPClient for timeouts or custom transports.
func New(baseURL string) *Client {
	return &Client{baseURL: strings.TrimRight(baseURL, "/"), httpc: http.DefaultClient}
}

// SetHTTPClient replaces the underlying HTTP client.
func (c *Client) SetHTTPClient(h *http.Client) { c.httpc = h }

// APIError is a non-2xx response from the daemon.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("smartlyd: %s (HTTP %d)", e.Message, e.Status)
}

// do issues one request and decodes the JSON response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e api.Error
		if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
			e.Error = resp.Status
		}
		return &APIError{Status: resp.StatusCode, Message: e.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Optimize submits one optimization request. For async requests use
// OptimizeAsync instead (the server answers with a Job, not a result).
func (c *Client) Optimize(ctx context.Context, req api.OptimizeRequest) (*api.OptimizeResponse, error) {
	if req.Async {
		return nil, fmt.Errorf("client: async request sent to Optimize; use OptimizeAsync")
	}
	var out api.OptimizeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/optimize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// OptimizeAsync enqueues the request and returns the queued job.
func (c *Client) OptimizeAsync(ctx context.Context, req api.OptimizeRequest) (api.Job, error) {
	req.Async = true
	var out api.Job
	err := c.do(ctx, http.MethodPost, "/v1/optimize", req, &out)
	return out, err
}

// Job polls one async job.
func (c *Client) Job(ctx context.Context, id string) (api.Job, error) {
	var out api.Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// ErrResultEvicted reports a finished job whose result payload the
// daemon no longer holds (pruned from memory with no durable record to
// re-hydrate from). Resubmitting the request usually re-serves the
// payload from the daemon's result cache.
var ErrResultEvicted = errors.New("client: job result evicted")

// waitMaxBackoff caps the retry backoff of Wait between failed polls.
const waitMaxBackoff = 2 * time.Second

// Wait polls the job every interval (min 10ms) until it finishes or ctx
// expires. A failed job returns the job and an error carrying its
// message; a job whose payload the daemon evicted returns the job and
// an error wrapping ErrResultEvicted.
//
// Transient poll failures — the network hiccuping, the daemon
// restarting or briefly answering 5xx — are retried with bounded
// exponential backoff instead of aborting: abandoning a long
// optimization because one poll died would leave the work running with
// nobody to collect it, and a durable-store daemon resolves the same
// job id across a restart. Only responses that cannot heal end the
// wait: 404 (the daemon does not know the job) and 400 (the poll
// itself is malformed), plus ctx expiry.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (api.Job, error) {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	backoff := interval
	for {
		j, err := c.Job(ctx, id)
		switch {
		case err == nil:
			backoff = interval
			switch j.State {
			case api.JobDone:
				return j, nil
			case api.JobFailed:
				return j, fmt.Errorf("client: job %s failed: %s", id, j.Error)
			case api.JobResultEvicted:
				return j, fmt.Errorf("%w: job %s: %s", ErrResultEvicted, id, j.Error)
			}
		case terminalWaitError(ctx, err):
			return j, err
		default:
			// Transient: back off a little harder each consecutive
			// failure so a daemon mid-restart is not hammered.
			if backoff < waitMaxBackoff {
				backoff *= 2
			}
		}
		wait := interval
		if err != nil {
			wait = min(backoff, waitMaxBackoff)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return j, ctx.Err()
		}
	}
}

// terminalWaitError reports whether a poll error cannot heal by
// retrying: the caller's context died, or the daemon answered 404
// (unknown job) or 400 (malformed poll).
func terminalWaitError(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return true
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status == http.StatusNotFound || apiErr.Status == http.StatusBadRequest
	}
	return false
}

// eventPos is a subscriber's resume position in a job's event stream:
// the last delivered event's epoch (daemon incarnation; 0 = not yet
// known) and seq within that epoch. See api.JobEvent for why both are
// needed: a daemon restart re-adopts the job under a higher epoch and
// restarts seq at 1, so seq alone cannot order events across restarts.
type eventPos struct{ epoch, seq int }

// header renders the position as a Last-Event-ID value, matching the
// server's SSE id format once the epoch is known.
func (p eventPos) header() string {
	if p.epoch == 0 {
		return strconv.Itoa(p.seq)
	}
	return fmt.Sprintf("%d-%d", p.epoch, p.seq)
}

// Events streams a job's progress events (lifecycle transitions and
// per-pass completions) from GET /v1/jobs/{id}/events, invoking fn for
// each in order. after resumes past the last seen Seq within the
// stream's current incarnation (0 — the common case — streams the
// whole retained history). The call returns nil when the stream ends
// after a terminal state event, fn's error if it rejects an event, and
// otherwise reconnects through transient drops — resuming via
// Last-Event-ID so no event is delivered twice, and tracking the
// stream's epoch so a daemon restart mid-job (which replays the
// adopted job's stream from seq 1 under a higher epoch) streams the
// re-run instead of waiting for sequence numbers that will never come
// — until ctx expires.
func (c *Client) Events(ctx context.Context, id string, after int, fn func(api.JobEvent) error) error {
	const baseBackoff = 100 * time.Millisecond
	backoff := baseBackoff
	pos := eventPos{seq: after}
	for {
		connected, terminal, err := c.streamEvents(ctx, id, &pos, fn)
		if terminal || err != nil {
			return err
		}
		if connected {
			// The server accepted the stream before this drop, so the
			// outage that grew the backoff is over: start the next retry
			// ladder from the base. Without the reset a subscriber that
			// ever saw one slow patch would pay the max backoff after
			// every later drop for the rest of a long job.
			backoff = baseBackoff
		}
		// The stream dropped mid-job (daemon restarting, connection
		// reset): reconnect and resume after the last delivered event.
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff < waitMaxBackoff {
			backoff *= 2
		}
	}
}

// streamEvents runs one events connection, advancing *pos past every
// delivered event. connected reports that the server accepted the
// stream (status 200) — the signal that resets the reconnect backoff;
// terminal reports a clean end-of-stream (the job reached a terminal
// state); err is only non-nil for errors that must end the enclosing
// Events loop (fn rejection, 404/400, ctx expiry).
func (c *Client) streamEvents(ctx context.Context, id string, pos *eventPos, fn func(api.JobEvent) error) (connected, terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.baseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", pos.header())
	resp, err := c.httpc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false, false, ctx.Err()
		}
		return false, false, nil // transient; reconnect
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e api.Error
		if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
			e.Error = resp.Status
		}
		apiErr := &APIError{Status: resp.StatusCode, Message: e.Error}
		if terminalWaitError(ctx, apiErr) {
			return false, false, apiErr
		}
		return false, false, nil // transient (e.g. 503 during drain); reconnect
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // events carry design-free payloads, but be generous
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = []byte(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		case line == "":
			if len(data) == 0 {
				continue
			}
			var ev api.JobEvent
			if json.Unmarshal(data, &ev) != nil {
				data = nil
				continue // unknown frame; skip
			}
			data = nil
			if pos.epoch != 0 && ev.Epoch < pos.epoch {
				continue // stale replay from before a known restart
			}
			if (pos.epoch == 0 || ev.Epoch == pos.epoch) && ev.Seq <= pos.seq {
				continue // replay overlap within the same incarnation
			}
			// ev.Epoch > pos.epoch means the daemon restarted and the
			// stream replayed from scratch: every event is new even
			// though its seq restarted below pos.seq.
			if err := fn(ev); err != nil {
				return true, false, err
			}
			pos.epoch, pos.seq = ev.Epoch, ev.Seq
			if ev.Type == api.EventState && (ev.State == api.JobDone ||
				ev.State == api.JobFailed || ev.State == api.JobResultEvicted) {
				terminal = true
			}
		}
	}
	if ctx.Err() != nil {
		return true, false, ctx.Err()
	}
	// A clean server-side close after a terminal state event is the
	// normal end of stream; anything else is a drop to heal.
	return true, terminal, nil
}

// Flows lists the daemon's registered named flows.
func (c *Client) Flows(ctx context.Context) ([]api.FlowInfo, error) {
	var out []api.FlowInfo
	err := c.do(ctx, http.MethodGet, "/v1/flows", nil, &out)
	return out, err
}

// Passes lists the daemon's pass registry.
func (c *Client) Passes(ctx context.Context) ([]api.PassInfo, error) {
	var out []api.PassInfo
	err := c.do(ctx, http.MethodGet, "/v1/passes", nil, &out)
	return out, err
}

// Health fetches the daemon health snapshot.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var out api.Health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// OptimizeDesign ships a design to the daemon and decodes the optimized
// netlist back. Exactly one of flow ("" = server default) and script
// may be set. The returned response still carries the raw JSON and the
// per-module reports.
func (c *Client) OptimizeDesign(ctx context.Context, d *smartly.Design, flow, script string,
	opts ...RequestOption) (*smartly.Design, *api.OptimizeResponse, error) {
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, d); err != nil {
		return nil, nil, err
	}
	req := api.OptimizeRequest{Design: buf.Bytes(), Flow: flow, Script: script}
	for _, o := range opts {
		o(&req)
	}
	resp, err := c.Optimize(ctx, req)
	if err != nil {
		return nil, nil, err
	}
	out, err := smartly.ReadJSON(bytes.NewReader(resp.Design))
	if err != nil {
		return nil, resp, fmt.Errorf("client: decoding optimized design: %w", err)
	}
	return out, resp, nil
}

// RequestOption tunes an OptimizeDesign request.
type RequestOption func(*api.OptimizeRequest)

// WithWorkers sets the per-request engine worker budget.
func WithWorkers(n int) RequestOption {
	return func(r *api.OptimizeRequest) { r.Workers = n }
}

// WithTimings includes wall-clock durations in the reports.
func WithTimings() RequestOption {
	return func(r *api.OptimizeRequest) { r.Timings = true }
}

// WithoutCache bypasses the daemon's result cache.
func WithoutCache() RequestOption {
	return func(r *api.OptimizeRequest) { r.NoCache = true }
}

// WithMode selects the daemon's cache granularity: api.ModeWhole (one
// entry per design) or api.ModeDesign (per-module entries, so a
// resubmission with one edited module re-optimizes only that module).
// "" uses the daemon's default.
func WithMode(mode string) RequestOption {
	return func(r *api.OptimizeRequest) { r.Mode = mode }
}
