package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/server/api"
)

const muxSrc = `
module top(input [1:0] a, input [1:0] b, input s, output [1:0] y);
  assign y = s ? a : b;
endmodule
`

func startDaemon(t *testing.T) *Client {
	t.Helper()
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return New(ts.URL + "/") // trailing slash must not break paths
}

func parseDesign(t *testing.T) *smartly.Design {
	t.Helper()
	d, err := smartly.ParseVerilog(muxSrc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOptimizeDesignRoundTrip(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()
	d := parseDesign(t)
	before, err := smartly.Area(d.Top())
	if err != nil {
		t.Fatal(err)
	}
	out, resp, err := c.OptimizeDesign(ctx, d, "full", "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Top() == nil {
		t.Fatal("optimized design has no top module")
	}
	after, err := smartly.Area(out.Top())
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Errorf("area grew: %d -> %d", before, after)
	}
	if resp.Cache != "miss" || resp.Key == "" {
		t.Errorf("response %+v", resp)
	}
	if len(resp.Reports) == 0 {
		t.Error("no reports in response")
	}
	// The optimized remote result equals a local run.
	local := parseDesign(t)
	flow, _ := smartly.NamedFlow("full")
	if _, err := flow.RunDesign(local); err != nil {
		t.Fatal(err)
	}
	wantArea, _ := smartly.Area(local.Top())
	if after != wantArea {
		t.Errorf("remote area %d != local area %d", after, wantArea)
	}
	if err := smartly.CheckEquivalence(parseDesign(t).Top(), out.Top()); err != nil {
		t.Errorf("remote result not equivalent to input: %v", err)
	}
}

func TestOptimizeDesignWithMode(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()

	_, resp, err := c.OptimizeDesign(ctx, parseDesign(t), "yosys", "", WithMode(api.ModeDesign))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != api.ModeDesign || resp.ModuleCache == nil {
		t.Errorf("mode=%q stats=%+v, want design-mode response", resp.Mode, resp.ModuleCache)
	}
	if resp.ModuleCache.Misses != 1 {
		t.Errorf("cold design-mode stats %+v, want 1 miss", resp.ModuleCache)
	}
	_, resp, err = c.OptimizeDesign(ctx, parseDesign(t), "yosys", "", WithMode(api.ModeDesign))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" || resp.ModuleCache.Hits != 1 {
		t.Errorf("warm design-mode cache=%q stats=%+v, want module hit", resp.Cache, resp.ModuleCache)
	}
	// Unknown modes surface as API errors.
	if _, _, err := c.OptimizeDesign(ctx, parseDesign(t), "yosys", "", WithMode("bogus")); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestRegistryAndHealth(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()
	flows, err := c.Flows(ctx)
	if err != nil || len(flows) < 4 {
		t.Fatalf("flows: %v %v", flows, err)
	}
	passes, err := c.Passes(ctx)
	if err != nil || len(passes) < 5 {
		t.Fatalf("passes: %v %v", passes, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v %v", h, err)
	}
}

func TestAPIErrorSurfaced(t *testing.T) {
	c := startDaemon(t)
	_, _, err := c.OptimizeDesign(context.Background(), parseDesign(t), "bogus", "")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != 400 || apiErr.Message == "" {
		t.Errorf("apiErr = %+v", apiErr)
	}
}

func TestAsyncWait(t *testing.T) {
	c := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := parseDesign(t)
	var req api.OptimizeRequest
	{
		out, _, err := c.OptimizeDesign(ctx, d, "yosys", "") // warm the cache
		if err != nil || out == nil {
			t.Fatal(err)
		}
	}
	// Async submission of the same work finishes and hits the cache.
	d2 := parseDesign(t)
	buf := newDesignJSON(t, d2)
	req = api.OptimizeRequest{Design: buf, Flow: "yosys"}
	job, err := c.OptimizeAsync(ctx, req)
	if err != nil || job.ID == "" {
		t.Fatalf("submit: %+v %v", job, err)
	}
	job, err = c.Wait(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != api.JobDone || job.Result == nil || job.Result.Cache != "hit" {
		t.Errorf("job %+v", job)
	}
}

func newDesignJSON(t *testing.T, d *smartly.Design) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// flakyTransport fails the first n round trips with a transport error,
// then delegates to the real transport — a daemon mid-restart as seen
// from the client.
type flakyTransport struct {
	next     http.RoundTripper
	mu       sync.Mutex
	failures int
	attempts int
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.attempts++
	fail := f.failures > 0
	if fail {
		f.failures--
	}
	f.mu.Unlock()
	if fail {
		return nil, errors.New("connection refused (simulated restart)")
	}
	return f.next.RoundTrip(r)
}

// TestWaitRetriesTransientPollErrors is the regression test for Wait
// abandoning a job on one failed poll: a transport that fails once must
// cost one retry, not the whole wait.
func TestWaitRetriesTransientPollErrors(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()
	d := parseDesign(t)
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	job, err := c.OptimizeAsync(ctx, api.OptimizeRequest{Design: buf.Bytes(), Flow: "yosys"})
	if err != nil {
		t.Fatal(err)
	}
	// Every poll from here fails twice before reaching the daemon.
	ft := &flakyTransport{next: http.DefaultTransport, failures: 2}
	c.SetHTTPClient(&http.Client{Transport: ft})
	done, err := c.Wait(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait aborted on a transient poll error: %v", err)
	}
	if done.State != api.JobDone || done.Result == nil {
		t.Fatalf("job finished as %s (result nil=%v)", done.State, done.Result == nil)
	}
	if ft.attempts < 3 {
		t.Errorf("transport saw %d attempts, want the 2 failures plus a success", ft.attempts)
	}
}

// TestWaitTerminalErrors: 404 (unknown job) must end the wait
// immediately — no amount of retrying makes an unknown id appear — and
// an evicted result surfaces as ErrResultEvicted.
func TestWaitTerminalErrors(t *testing.T) {
	c := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.Wait(ctx, "no-such-job", 10*time.Millisecond)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("Wait on unknown job: %v, want APIError 404", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("Wait retried a 404 instead of failing fast")
	}

	// A daemon reporting result_evicted ends the wait with the sentinel.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Job{ID: "j", State: api.JobResultEvicted, Error: "evicted"})
	}))
	defer ts.Close()
	_, err = New(ts.URL).Wait(ctx, "j", 10*time.Millisecond)
	if !errors.Is(err, ErrResultEvicted) {
		t.Fatalf("Wait on evicted job: %v, want ErrResultEvicted", err)
	}
}

// TestEventsReconnectAcrossDaemonEpochs: when the daemon restarts
// mid-stream, the adopted job's event stream starts over at seq 1
// under a higher epoch. The client's reconnect must resume with an
// epoch-qualified Last-Event-ID and accept the replayed events even
// though their seq is at or below what it already saw — pre-fix it
// filtered on seq alone and silently dropped every post-restart event,
// so the terminal state never arrived and Events spun until ctx death.
func TestEventsReconnectAcrossDaemonEpochs(t *testing.T) {
	sse := func(w http.ResponseWriter, evs ...api.JobEvent) {
		for _, ev := range evs {
			raw, _ := json.Marshal(ev)
			fmt.Fprintf(w, "id: %d-%d\nevent: %s\ndata: %s\n\n", ev.Epoch, ev.Seq, ev.Type, raw)
		}
	}
	var mu sync.Mutex
	conns := 0
	var resumeIDs []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns++
		n := conns
		resumeIDs = append(resumeIDs, r.Header.Get("Last-Event-ID"))
		mu.Unlock()
		w.Header().Set("Content-Type", "text/event-stream")
		if n == 1 {
			// First incarnation: three events, then the connection drops
			// without a terminal state (the daemon is killed).
			sse(w,
				api.JobEvent{Epoch: 1, Seq: 1, Type: api.EventState, State: api.JobQueued},
				api.JobEvent{Epoch: 1, Seq: 2, Type: api.EventState, State: api.JobRunning},
				api.JobEvent{Epoch: 1, Seq: 3, Type: api.EventPass, Module: "m", Pass: "opt_expr", Calls: 1},
			)
			return
		}
		// Restarted daemon: the re-adopted job replays from scratch at
		// epoch 2 — fewer events than the client has already seen.
		sse(w,
			api.JobEvent{Epoch: 2, Seq: 1, Type: api.EventState, State: api.JobQueued},
			api.JobEvent{Epoch: 2, Seq: 2, Type: api.EventState, State: api.JobDone},
		)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var got []api.JobEvent
	if err := New(ts.URL).Events(ctx, "j", 0, func(ev api.JobEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatalf("Events across restart: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d events, want all 5 (3 pre-restart + 2 replayed): %+v", len(got), got)
	}
	final := got[len(got)-1]
	if final.Epoch != 2 || final.State != api.JobDone {
		t.Errorf("final event %+v, want epoch-2 done", final)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(resumeIDs) < 2 || resumeIDs[1] != "1-3" {
		t.Errorf("reconnect resume ids %q, want second = \"1-3\" (epoch-qualified)", resumeIDs)
	}
}

// TestEventsBackoffResetsAfterReconnect: the reconnect backoff must
// restart from its base once a connection succeeds. Pre-fix it only
// ever doubled, so a subscriber that survived one slow patch (a pair
// of 503s during a drain, here) paid the accumulated backoff after
// every later drop for the rest of the job — this test's fourth
// connection would arrive ~400ms after the third instead of ~100ms.
// The resume position must ride every reconnect as Last-Event-ID.
func TestEventsBackoffResetsAfterReconnect(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	var connAt []time.Time
	var resumeIDs []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns++
		n := conns
		connAt = append(connAt, time.Now())
		resumeIDs = append(resumeIDs, r.Header.Get("Last-Event-ID"))
		mu.Unlock()
		switch n {
		case 1, 2:
			// A draining daemon: transient, retried with growing backoff.
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.Error{Error: "server draining"})
		case 3:
			// Healthy again: one event, then the connection drops.
			w.Header().Set("Content-Type", "text/event-stream")
			raw, _ := json.Marshal(api.JobEvent{Epoch: 1, Seq: 1, Type: api.EventState, State: api.JobRunning})
			fmt.Fprintf(w, "id: 1-1\nevent: state\ndata: %s\n\n", raw)
		default:
			w.Header().Set("Content-Type", "text/event-stream")
			raw, _ := json.Marshal(api.JobEvent{Epoch: 1, Seq: 2, Type: api.EventState, State: api.JobDone})
			fmt.Fprintf(w, "id: 1-2\nevent: state\ndata: %s\n\n", raw)
		}
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var got []api.JobEvent
	if err := New(ts.URL).Events(ctx, "j", 0, func(ev api.JobEvent) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(got) != 2 || got[1].State != api.JobDone {
		t.Fatalf("delivered %+v, want running then done", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(connAt) != 4 {
		t.Fatalf("%d connections, want 4", len(connAt))
	}
	// After the successful third connection the backoff is back at its
	// 100ms base; un-reset it would have grown to 400ms by now.
	if gap := connAt[3].Sub(connAt[2]); gap > 350*time.Millisecond {
		t.Errorf("reconnect after successful stream took %v, want ~100ms (backoff not reset)", gap)
	}
	// Every reconnect resumes from the last delivered event.
	if resumeIDs[3] != "1-1" {
		t.Errorf("fourth connection resumed from %q, want \"1-1\"", resumeIDs[3])
	}
}

// TestEventsStream follows a job's progress through the client SSE
// wrapper: ordered lifecycle, at least one pass event for an uncached
// run, and a clean return at the terminal state.
func TestEventsStream(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()
	d := parseDesign(t)
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	job, err := c.OptimizeAsync(ctx, api.OptimizeRequest{Design: buf.Bytes(), Flow: "yosys", NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	passes, lastSeq := 0, 0
	err = c.Events(ctx, job.ID, 0, func(ev api.JobEvent) error {
		if ev.Seq <= lastSeq {
			t.Errorf("event seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case api.EventState:
			states = append(states, ev.State)
		case api.EventPass:
			passes++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(states) == 0 || states[len(states)-1] != api.JobDone {
		t.Fatalf("lifecycle %v, want ... done", states)
	}
	if passes == 0 {
		t.Error("no pass events for an uncached run")
	}
}
