package client

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/server/api"
)

const muxSrc = `
module top(input [1:0] a, input [1:0] b, input s, output [1:0] y);
  assign y = s ? a : b;
endmodule
`

func startDaemon(t *testing.T) *Client {
	t.Helper()
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return New(ts.URL + "/") // trailing slash must not break paths
}

func parseDesign(t *testing.T) *smartly.Design {
	t.Helper()
	d, err := smartly.ParseVerilog(muxSrc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestOptimizeDesignRoundTrip(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()
	d := parseDesign(t)
	before, err := smartly.Area(d.Top())
	if err != nil {
		t.Fatal(err)
	}
	out, resp, err := c.OptimizeDesign(ctx, d, "full", "")
	if err != nil {
		t.Fatal(err)
	}
	if out.Top() == nil {
		t.Fatal("optimized design has no top module")
	}
	after, err := smartly.Area(out.Top())
	if err != nil {
		t.Fatal(err)
	}
	if after > before {
		t.Errorf("area grew: %d -> %d", before, after)
	}
	if resp.Cache != "miss" || resp.Key == "" {
		t.Errorf("response %+v", resp)
	}
	if len(resp.Reports) == 0 {
		t.Error("no reports in response")
	}
	// The optimized remote result equals a local run.
	local := parseDesign(t)
	flow, _ := smartly.NamedFlow("full")
	if _, err := flow.RunDesign(local); err != nil {
		t.Fatal(err)
	}
	wantArea, _ := smartly.Area(local.Top())
	if after != wantArea {
		t.Errorf("remote area %d != local area %d", after, wantArea)
	}
	if err := smartly.CheckEquivalence(parseDesign(t).Top(), out.Top()); err != nil {
		t.Errorf("remote result not equivalent to input: %v", err)
	}
}

func TestOptimizeDesignWithMode(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()

	_, resp, err := c.OptimizeDesign(ctx, parseDesign(t), "yosys", "", WithMode(api.ModeDesign))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Mode != api.ModeDesign || resp.ModuleCache == nil {
		t.Errorf("mode=%q stats=%+v, want design-mode response", resp.Mode, resp.ModuleCache)
	}
	if resp.ModuleCache.Misses != 1 {
		t.Errorf("cold design-mode stats %+v, want 1 miss", resp.ModuleCache)
	}
	_, resp, err = c.OptimizeDesign(ctx, parseDesign(t), "yosys", "", WithMode(api.ModeDesign))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" || resp.ModuleCache.Hits != 1 {
		t.Errorf("warm design-mode cache=%q stats=%+v, want module hit", resp.Cache, resp.ModuleCache)
	}
	// Unknown modes surface as API errors.
	if _, _, err := c.OptimizeDesign(ctx, parseDesign(t), "yosys", "", WithMode("bogus")); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestRegistryAndHealth(t *testing.T) {
	c := startDaemon(t)
	ctx := context.Background()
	flows, err := c.Flows(ctx)
	if err != nil || len(flows) < 4 {
		t.Fatalf("flows: %v %v", flows, err)
	}
	passes, err := c.Passes(ctx)
	if err != nil || len(passes) < 5 {
		t.Fatalf("passes: %v %v", passes, err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v %v", h, err)
	}
}

func TestAPIErrorSurfaced(t *testing.T) {
	c := startDaemon(t)
	_, _, err := c.OptimizeDesign(context.Background(), parseDesign(t), "bogus", "")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != 400 || apiErr.Message == "" {
		t.Errorf("apiErr = %+v", apiErr)
	}
}

func TestAsyncWait(t *testing.T) {
	c := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d := parseDesign(t)
	var req api.OptimizeRequest
	{
		out, _, err := c.OptimizeDesign(ctx, d, "yosys", "") // warm the cache
		if err != nil || out == nil {
			t.Fatal(err)
		}
	}
	// Async submission of the same work finishes and hits the cache.
	d2 := parseDesign(t)
	buf := newDesignJSON(t, d2)
	req = api.OptimizeRequest{Design: buf, Flow: "yosys"}
	job, err := c.OptimizeAsync(ctx, req)
	if err != nil || job.ID == "" {
		t.Fatalf("submit: %+v %v", job, err)
	}
	job, err = c.Wait(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != api.JobDone || job.Result == nil || job.Result.Cache != "hit" {
		t.Errorf("job %+v", job)
	}
}

func newDesignJSON(t *testing.T, d *smartly.Design) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := smartly.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
