package core

import (
	"reflect"
	"testing"

	"repro/internal/genbench"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// TestDffDeterministicAcrossWorkers: the sequential flow must produce a
// bit-identical netlist and identical counters regardless of the worker
// budget. opt_dff itself is single-threaded, but it runs inside flows
// whose other passes shard work, so the sweep's output must not depend
// on anything a parallel stage could reorder.
func TestDffDeterministicAcrossWorkers(t *testing.T) {
	flow, err := opt.NamedFlow("seq")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range genbench.SeqRecipes() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			type outcome struct {
				hash    string
				details map[string]int
			}
			run := func(workers int) outcome {
				m := genbench.Generate(r, 0.5)
				ctx := opt.NewCtx(nil, opt.Config{Workers: workers})
				res, err := flow.Run(ctx, m)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return outcome{hash: rtlil.CanonicalHash(m), details: res.Details}
			}
			seq := run(1)
			if seq.details["dff_removed"] == 0 {
				t.Errorf("recipe %s swept no registers: %v", r.Name, seq.details)
			}
			for _, workers := range []int{2, 8} {
				par := run(workers)
				if seq.hash != par.hash {
					t.Errorf("workers=%d: netlist hash %s != sequential %s",
						workers, par.hash, seq.hash)
				}
				if !reflect.DeepEqual(seq.details, par.details) {
					t.Errorf("workers=%d: counters differ:\nseq: %v\npar: %v",
						workers, seq.details, par.details)
				}
			}
		})
	}
}
