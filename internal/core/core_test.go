package core

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

func checkEquiv(t *testing.T, orig, got *rtlil.Module) {
	t.Helper()
	if err := cec.Check(orig, got, nil); err != nil {
		t.Fatalf("optimization broke equivalence: %v", err)
	}
}

func countType(m *rtlil.Module, ct rtlil.CellType) int {
	n := 0
	for _, c := range m.Cells() {
		if c.Type == ct {
			n++
		}
	}
	return n
}

func area(t *testing.T, m *rtlil.Module) int {
	t.Helper()
	a, err := aig.Area(m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// buildFigure3 constructs Y = S ? ((S|R) ? A : B) : C (paper Figure 3).
func buildFigure3() *rtlil.Module {
	m := rtlil.NewModule("fig3")
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 2).Bits()
	c := m.AddInput("c", 2).Bits()
	s := m.AddInput("s", 1).Bits()
	r := m.AddInput("r", 1).Bits()
	or := m.Or(s, r)
	inner := m.Mux(b, a, or) // (S|R) ? A : B
	y := m.AddOutput("y", 2).Bits()
	m.AddMux("root", c, inner, s, y) // S ? inner : C
	return m
}

// TestFigure3 is the paper's flagship example for SAT-based redundancy
// elimination: Y = S ? ((S|R) ? A : B) : C must become Y = S ? A : C,
// which the Yosys baseline cannot do (control signals differ).
func TestFigure3(t *testing.T) {
	m := buildFigure3()
	orig := m.Clone()
	pass := &SatMuxPass{}
	if _, err := opt.RunScript(nil, m, pass, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Fatalf("muxes after satmux = %d, want 1 (stats: %s)", got, pass.LastStats)
	}
	// The surviving mux must select A directly.
	var root *rtlil.Cell
	for _, c := range m.Cells() {
		if c.Type == rtlil.CellMux {
			root = c
		}
	}
	sm := rtlil.NewSigMap(m)
	if !sm.Map(root.Port("B")).Equal(sm.Map(m.Wire("a").Bits())) {
		t.Errorf("root B = %s, want a", root.Port("B"))
	}
	if pass.LastStats.InferenceHits == 0 && pass.LastStats.SimHits == 0 && pass.LastStats.SATHits == 0 {
		t.Error("no oracle mechanism fired")
	}
}

// TestFigure3ByInferenceOnly: the inference rules alone (no SAT, no
// simulation) must already resolve Figure 3, per the paper's point that
// straightforward inferences reduce unknown signals.
func TestFigure3ByInferenceOnly(t *testing.T) {
	m := buildFigure3()
	orig := m.Clone()
	pass := &SatMuxPass{Opts: SatMuxOptions{DisableSAT: true}}
	if _, err := opt.RunScript(nil, m, pass, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Errorf("inference-only left %d muxes, want 1", got)
	}
	if pass.LastStats.InferenceHits == 0 {
		t.Error("inference did not fire")
	}
}

// TestAndDependentControl: Y = S ? ((S&R) ? A : B) : C — on the S=1
// path, S&R is not determined (depends on R), but on deeper nesting
// (S&R)=1 implies S=1. Check satmux handles the implication direction
// that IS valid: Y = (S&R) ? (S ? A : B) : C collapses to (S&R) ? A : C.
func TestAndDependentControl(t *testing.T) {
	m := rtlil.NewModule("and_dep")
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 2).Bits()
	c := m.AddInput("c", 2).Bits()
	s := m.AddInput("s", 1).Bits()
	r := m.AddInput("r", 1).Bits()
	and := m.And(s, r)
	inner := m.Mux(b, a, s) // S ? A : B
	y := m.AddOutput("y", 2).Bits()
	m.AddMux("root", c, inner, and, y) // (S&R) ? inner : C
	orig := m.Clone()

	if _, err := opt.RunScript(nil, m, &SatMuxPass{}, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Errorf("muxes = %d, want 1", got)
	}
}

// TestSatMuxNeedsSAT builds a relation the rule engine cannot see
// locally: the control equals eq(x, 5) and the path guarantees x == 5
// through an independent comparison chain, requiring real sub-graph
// reasoning (simulation or SAT over the x cone).
func TestSatMuxNeedsSAT(t *testing.T) {
	m := rtlil.NewModule("needsat")
	x := m.AddInput("x", 3).Bits()
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 2).Bits()
	c := m.AddInput("c", 2).Bits()
	// outer control: x < 2 (i.e. x in {0,1}); inner control: x == 5.
	// On the outer-true path x<2 holds, so x==5 is impossible: the
	// inner mux always takes B.
	lt := m.Lt(x, rtlil.Const(2, 3))
	eq5 := m.Eq(x, rtlil.Const(5, 3))
	inner := m.Mux(b, a, eq5) // eq5 ? a : b
	y := m.AddOutput("y", 2).Bits()
	m.AddMux("root", c, inner, lt, y) // lt ? inner : c
	orig := m.Clone()

	pass := &SatMuxPass{}
	if _, err := opt.RunScript(nil, m, pass, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Errorf("muxes = %d, want 1 (stats: %s)", got, pass.LastStats)
	}
	if pass.LastStats.SimHits == 0 && pass.LastStats.SATHits == 0 {
		t.Errorf("expected simulation or SAT to resolve the query: %s", pass.LastStats)
	}
}

// TestSatMuxForcesSATPath drives the same circuit through the SAT stage
// by setting SimInputLimit to zero.
func TestSatMuxForcesSATPath(t *testing.T) {
	m := rtlil.NewModule("needsat2")
	x := m.AddInput("x", 3).Bits()
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 2).Bits()
	c := m.AddInput("c", 2).Bits()
	lt := m.Lt(x, rtlil.Const(2, 3))
	eq5 := m.Eq(x, rtlil.Const(5, 3))
	inner := m.Mux(b, a, eq5)
	y := m.AddOutput("y", 2).Bits()
	m.AddMux("root", c, inner, lt, y)
	orig := m.Clone()

	pass := &SatMuxPass{Opts: SatMuxOptions{SimInputLimit: -1}}
	if _, err := opt.RunScript(nil, m, pass, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Errorf("muxes = %d, want 1 (stats: %s)", got, pass.LastStats)
	}
	if pass.LastStats.SATHits == 0 {
		t.Errorf("SAT stage did not fire: %s", pass.LastStats)
	}
}

// TestUnreachableBranchCollapses: contradictory nested controls make the
// deeper path unreachable; satmux may resolve the inner mux arbitrarily
// and the result must still be equivalent.
func TestUnreachableBranch(t *testing.T) {
	m := rtlil.NewModule("unreach")
	a := m.AddInput("a", 1).Bits()
	b := m.AddInput("b", 1).Bits()
	c := m.AddInput("c", 1).Bits()
	s := m.AddInput("s", 1).Bits()
	ns := m.Not(s)
	// root: s ? (ns ? a : b) : c — on the taken path ns=0 always.
	inner := m.Mux(b, a, ns)
	y := m.AddOutput("y", 1).Bits()
	m.AddMux("root", c, inner, s, y)
	orig := m.Clone()
	if _, err := opt.RunScript(nil, m, &SatMuxPass{}, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Errorf("muxes = %d, want 1", got)
	}
}

// buildListing1 builds the paper's Listing 1 as the chain of Figure 5:
// eq gates against 2'b00, 2'b01, 2'b10 and a default.
func buildListing1() *rtlil.Module {
	m := rtlil.NewModule("listing1")
	s := m.AddInput("s", 2).Bits()
	p := make([]rtlil.SigSpec, 4)
	for i := range p {
		p[i] = m.AddInput([]string{"p0", "p1", "p2", "p3"}[i], 4).Bits()
	}
	eq0 := m.Eq(s, rtlil.Const(0, 2))
	eq1 := m.Eq(s, rtlil.Const(1, 2))
	eq2 := m.Eq(s, rtlil.Const(2, 2))
	// Chain (Figure 5): innermost first.
	t2 := m.Mux(p[3], p[2], eq2)
	t1 := m.Mux(t2, p[1], eq1)
	t0 := m.Mux(t1, p[0], eq0)
	y := m.AddOutput("y", 4)
	m.Connect(y.Bits(), t0)
	return m
}

// TestListing1Rebuild reproduces Figures 5→7: the 3-mux/3-eq chain is
// rebuilt into 3 muxes controlled directly by the selector bits, and the
// eq gates disappear.
func TestListing1Rebuild(t *testing.T) {
	m := buildListing1()
	orig := m.Clone()
	areaBefore := area(t, m)

	pass := &RebuildPass{}
	if _, err := opt.RunScript(nil, m, pass, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if pass.LastStats.TreesRebuilt != 1 {
		t.Fatalf("trees rebuilt = %d, want 1 (%+v)", pass.LastStats.TreesRebuilt, pass.LastStats)
	}
	if got := countType(m, rtlil.CellEq); got != 0 {
		t.Errorf("eq gates left = %d, want 0", got)
	}
	if got := countType(m, rtlil.CellMux); got != 3 {
		t.Errorf("muxes = %d, want 3", got)
	}
	areaAfter := area(t, m)
	if areaAfter >= areaBefore {
		t.Errorf("area did not shrink: %d -> %d", areaBefore, areaAfter)
	}
}

// TestListing2Rebuild: the casez-style chain (1zz / 01z / 001) rebuilds
// into 3 muxes with the greedy assignment.
func TestListing2Rebuild(t *testing.T) {
	m := rtlil.NewModule("listing2")
	s := m.AddInput("s", 3).Bits()
	p := make([]rtlil.SigSpec, 4)
	for i := range p {
		p[i] = m.AddInput([]string{"p0", "p1", "p2", "p3"}[i], 2).Bits()
	}
	// casez rows: 3'b1zz → eq(s[2],1); 3'b01z → eq(s[2:1], 01);
	// 3'b001 → eq(s, 001).
	c0 := rtlil.SigSpec{s[2]} // raw bit used as control
	c1 := m.Eq(rtlil.Concat(rtlil.SigSpec{s[1]}, rtlil.SigSpec{s[2]}), rtlil.Const(1, 2))
	c2 := m.Eq(s, rtlil.Const(1, 3))
	t2 := m.Mux(p[3], p[2], c2)
	t1 := m.Mux(t2, p[1], c1)
	t0 := m.Mux(t1, p[0], c0)
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), t0)
	orig := m.Clone()

	pass := &RebuildPass{}
	if _, err := opt.RunScript(nil, m, pass, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if pass.LastStats.TreesRebuilt != 1 {
		t.Fatalf("trees rebuilt = %d (%+v)", pass.LastStats.TreesRebuilt, pass.LastStats)
	}
	if got := countType(m, rtlil.CellMux); got != 3 {
		t.Errorf("muxes = %d, want 3 (the greedy assignment)", got)
	}
	if got := countType(m, rtlil.CellEq); got != 0 {
		t.Errorf("eq gates left = %d", got)
	}
}

// TestRebuildPmuxCase: a one-hot pmux from a parallel case statement.
func TestRebuildPmuxCase(t *testing.T) {
	m := rtlil.NewModule("pmuxcase")
	s := m.AddInput("s", 2).Bits()
	p := make([]rtlil.SigSpec, 4)
	for i := range p {
		p[i] = m.AddInput([]string{"p0", "p1", "p2", "p3"}[i], 8).Bits()
	}
	var conds []rtlil.SigSpec
	for i := 0; i < 3; i++ {
		conds = append(conds, m.Eq(s, rtlil.Const(uint64(i), 2)))
	}
	pm := m.Pmux(p[3], []rtlil.SigSpec{p[0], p[1], p[2]}, rtlil.Concat(conds...))
	y := m.AddOutput("y", 8)
	m.Connect(y.Bits(), pm)
	orig := m.Clone()
	areaBefore := area(t, m)

	pass := &RebuildPass{}
	if _, err := opt.RunScript(nil, m, pass, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if pass.LastStats.TreesRebuilt != 1 {
		t.Fatalf("pmux tree not rebuilt (%+v)", pass.LastStats)
	}
	if got := countType(m, rtlil.CellEq); got != 0 {
		t.Errorf("eq gates left = %d", got)
	}
	if areaAfter := area(t, m); areaAfter >= areaBefore {
		t.Errorf("area did not shrink: %d -> %d", areaBefore, areaAfter)
	}
}

// TestRebuildCostModelDeclines: when the eq gates have other fanout the
// rebuild gains nothing and must be declined.
func TestRebuildCostModelDeclines(t *testing.T) {
	m := rtlil.NewModule("decline")
	s := m.AddInput("s", 2).Bits()
	p0 := m.AddInput("p0", 1).Bits()
	p1 := m.AddInput("p1", 1).Bits()
	eq0 := m.Eq(s, rtlil.Const(0, 2))
	mx := m.Mux(p1, p0, eq0)
	y := m.AddOutput("y", 2)
	// eq0 also feeds the second output bit: it cannot be removed.
	m.Connect(y.Bits(), rtlil.Concat(mx, eq0))

	pass := &RebuildPass{}
	if _, err := pass.Run(nil, m); err != nil {
		t.Fatal(err)
	}
	if pass.LastStats.TreesRebuilt != 0 {
		t.Errorf("rebuild accepted a losing tree (%+v)", pass.LastStats)
	}
}

// TestRebuildSkipsMultiSelector: controls comparing different wires
// violate SingleCtrl and must be skipped.
func TestRebuildSkipsMultiSelector(t *testing.T) {
	m := rtlil.NewModule("multi")
	s := m.AddInput("s", 2).Bits()
	u := m.AddInput("u", 2).Bits()
	p := make([]rtlil.SigSpec, 3)
	for i := range p {
		p[i] = m.AddInput([]string{"p0", "p1", "p2"}[i], 2).Bits()
	}
	e0 := m.Eq(s, rtlil.Const(0, 2))
	e1 := m.Eq(u, rtlil.Const(1, 2)) // different selector wire
	t1 := m.Mux(p[2], p[1], e1)
	t0 := m.Mux(t1, p[0], e0)
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), t0)

	pass := &RebuildPass{Opts: RebuildOptions{Force: true}}
	if _, err := pass.Run(nil, m); err != nil {
		t.Fatal(err)
	}
	if pass.LastStats.TreesEligible != 0 {
		t.Errorf("multi-selector tree treated as eligible (%+v)", pass.LastStats)
	}
}

// TestFullPipelineCombination: a circuit with both a dependent-control
// redundancy and a rebuildable case chain; the full pipeline must beat
// both single-technique pipelines, mirroring Table III's "Full >= SAT,
// Rebuild".
func TestFullPipelineCombination(t *testing.T) {
	build := func() *rtlil.Module {
		m := rtlil.NewModule("combo")
		s := m.AddInput("s", 2).Bits()
		r := m.AddInput("r", 1).Bits()
		g := m.AddInput("g", 1).Bits()
		p := make([]rtlil.SigSpec, 4)
		for i := range p {
			p[i] = m.AddInput([]string{"p0", "p1", "p2", "p3"}[i], 4).Bits()
		}
		// Case chain over s.
		eq0 := m.Eq(s, rtlil.Const(0, 2))
		eq1 := m.Eq(s, rtlil.Const(1, 2))
		eq2 := m.Eq(s, rtlil.Const(2, 2))
		t2 := m.Mux(p[3], p[2], eq2)
		t1 := m.Mux(t2, p[1], eq1)
		caseOut := m.Mux(t1, p[0], eq0)
		// Dependent-control nest over g, g|r.
		or := m.Or(g, r)
		inner := m.Mux(p[1], caseOut, or)
		y := m.AddOutput("y", 4).Bits()
		m.AddMux("root", p[0], inner, g, y)
		return m
	}

	areas := map[string]int{}
	for name, pipe := range map[string]opt.Pass{
		"yosys":   PipelineYosys(),
		"sat":     PipelineSAT(SatMuxOptions{}),
		"rebuild": PipelineRebuild(RebuildOptions{}),
		"full":    PipelineFull(SatMuxOptions{}, RebuildOptions{}),
	} {
		m := build()
		orig := m.Clone()
		if _, err := pipe.Run(nil, m); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkEquiv(t, orig, m)
		areas[name] = area(t, m)
	}
	if !(areas["full"] <= areas["sat"] && areas["full"] <= areas["rebuild"]) {
		t.Errorf("full=%d should be <= sat=%d and rebuild=%d", areas["full"], areas["sat"], areas["rebuild"])
	}
	if !(areas["sat"] < areas["yosys"]) {
		t.Errorf("sat=%d should beat yosys=%d on this circuit", areas["sat"], areas["yosys"])
	}
	if !(areas["rebuild"] < areas["yosys"]) {
		t.Errorf("rebuild=%d should beat yosys=%d on this circuit", areas["rebuild"], areas["yosys"])
	}
}
