package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/cec"
	"repro/internal/genbench"
	"repro/internal/opt"
)

// The CEC differential-oracle suite: every registered named flow, run
// over every genbench recipe across several seeds, must produce a
// module combinationally equivalent to the unoptimized original. The
// optimizer's per-rewrite soundness arguments are local; this suite is
// the global check that no pass composition breaks a whole netlist
// (ROVER's thesis: rewrites are only trustworthy shipped with an
// equivalence check). cec.Check is the oracle — an independent
// SAT-based miter, not the engine's own reasoning.

// oracleScale keeps the generated cases small enough that the full
// suite stays in CI budget while still mixing every redundancy class.
const oracleScale = 0.04

// satHeavy reports whether a flow invokes the SAT-based passes — the
// expensive combinations skipped under -short.
func satHeavy(script string) bool {
	return strings.Contains(script, "satmux") || strings.Contains(script, "smartly")
}

func TestCECDifferentialOracle(t *testing.T) {
	flows := opt.FlowNames()
	if len(flows) == 0 {
		t.Fatal("no named flows registered")
	}
	for _, name := range flows {
		flow, err := opt.NamedFlow(name)
		if err != nil {
			t.Fatalf("flow %s: %v", name, err)
		}
		// SAT-heavy flows run one seed (and none under -short); the
		// cheap flows cover two seeds everywhere.
		seeds := []int64{0, 4242}
		if satHeavy(flow.String()) || testing.Short() {
			seeds = seeds[:1]
		}
		for _, recipe := range genbench.Recipes() {
			for _, seedShift := range seeds {
				recipe := recipe
				recipe.Seed += seedShift
				t.Run(name+"/"+recipe.Name+"/s"+strconv.FormatInt(seedShift, 10), func(t *testing.T) {
					if testing.Short() && satHeavy(flow.String()) {
						t.Skipf("flow %s is SAT-heavy; skipped under -short", name)
					}
					m := genbench.Generate(recipe, oracleScale)
					orig := m.Clone()
					res, err := flow.Run(opt.Background(), m)
					if err != nil {
						t.Fatalf("flow failed: %v", err)
					}
					if err := m.Validate(); err != nil {
						t.Fatalf("optimized module invalid: %v", err)
					}
					if err := cec.Check(orig, m, nil); err != nil {
						t.Fatalf("flow %s broke equivalence on %s (seed %d, changed=%v): %v",
							name, recipe.Name, recipe.Seed, res.Changed, err)
					}
				})
			}
		}
	}
}

// TestCECOracleIndustrial extends the oracle to the industrial recipe
// (selection-logic-dominated, the paper's §IV-B class).
func TestCECOracleIndustrial(t *testing.T) {
	for _, name := range opt.FlowNames() {
		flow, err := opt.NamedFlow(name)
		if err != nil {
			t.Fatalf("flow %s: %v", name, err)
		}
		t.Run(name, func(t *testing.T) {
			if testing.Short() && satHeavy(flow.String()) {
				t.Skipf("flow %s is SAT-heavy; skipped under -short", name)
			}
			m := genbench.Generate(genbench.IndustrialRecipe(1), 0.02)
			orig := m.Clone()
			if _, err := flow.Run(opt.Background(), m); err != nil {
				t.Fatalf("flow failed: %v", err)
			}
			if err := cec.Check(orig, m, nil); err != nil {
				t.Fatalf("flow %s broke equivalence on industrial: %v", name, err)
			}
		})
	}
}
