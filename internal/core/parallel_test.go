package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/genbench"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// netlistJSON renders the module as the canonical JSON used to compare
// optimization outcomes byte for byte.
func netlistJSON(t *testing.T, m *rtlil.Module) []byte {
	t.Helper()
	d := rtlil.NewDesign()
	d.AddModule(m)
	var buf bytes.Buffer
	if err := rtlil.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// parallelRecipe mixes dependent controls (simulation/SAT queries) and
// case chains (pmux select scans, the batched hot path) so the worker
// pool is actually exercised.
var parallelRecipe = genbench.Recipe{
	Name: "par", Seed: 91,
	DepBlocks: 12, CaseBlocks: 6, RedundantBlocks: 4,
	CaseSelBits: [2]int{3, 4}, DataWidth: 6, PmuxFraction: 0.7,
}

// TestParallelSatMuxDeterministic: the full pipeline with workers=N must
// produce a byte-identical netlist and identical result/oracle counters
// to workers=1 — the acceptance bar for the parallel SAT-mux path.
func TestParallelSatMuxDeterministic(t *testing.T) {
	type outcome struct {
		json    []byte
		details map[string]int
		stats   SatMuxStats
	}
	run := func(workers int) outcome {
		m := genbench.Generate(parallelRecipe, 1)
		ec := opt.NewCtx(context.Background(), opt.Config{Workers: workers})
		pass := &SatMuxPass{}
		r, err := opt.RunScript(ec, m, opt.ExprPass{}, pass, &RebuildPass{}, opt.CleanPass{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return outcome{json: netlistJSON(t, m), details: r.Details, stats: pass.LastStats}
	}

	seq := run(1)
	for _, workers := range []int{2, 8} {
		par := run(workers)
		if !bytes.Equal(seq.json, par.json) {
			t.Errorf("workers=%d: netlist JSON differs from sequential run", workers)
		}
		if !reflect.DeepEqual(seq.details, par.details) {
			t.Errorf("workers=%d: result details differ:\nseq: %v\npar: %v", workers, seq.details, par.details)
		}
		if seq.stats != par.stats {
			t.Errorf("workers=%d: oracle stats differ:\nseq: %+v\npar: %+v", workers, seq.stats, par.stats)
		}
	}
}

// TestSatMuxRepeatableAcrossRuns guards the determinism groundwork
// (sorted facts, fixed port orders): two identical sequential runs must
// agree bit for bit, regardless of Go's map iteration order.
func TestSatMuxRepeatableAcrossRuns(t *testing.T) {
	run := func() []byte {
		m := genbench.Generate(parallelRecipe, 1)
		if _, err := opt.RunScript(nil, m, opt.ExprPass{}, &SatMuxPass{}, opt.CleanPass{}); err != nil {
			t.Fatal(err)
		}
		return netlistJSON(t, m)
	}
	if !bytes.Equal(run(), run()) {
		t.Error("two sequential runs produced different netlists")
	}
}

// TestSatMuxCancellation: a canceled context aborts the pass with the
// context error, and the partially optimized module is still equivalent
// to the input (every applied rewrite is individually sound).
func TestSatMuxCancellation(t *testing.T) {
	m := genbench.Generate(parallelRecipe, 1)
	orig := m.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := opt.NewCtx(ctx, opt.Config{Workers: 4})
	_, err := opt.RunScript(ec, m, opt.ExprPass{}, &SatMuxPass{}, opt.CleanPass{})
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	checkEquiv(t, orig, m)
}
