package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/egraph"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

func TestSmartlyPassesRegistered(t *testing.T) {
	for _, name := range []string{"satmux", "rebuild", "smartly", "opt_egraph"} {
		spec, ok := opt.LookupPass(name)
		if !ok {
			t.Fatalf("pass %s not registered", name)
		}
		p, err := spec.Build(opt.Args{})
		if err != nil || p == nil {
			t.Errorf("Build(%s) = %v, %v", name, p, err)
		}
	}
}

func TestScriptOptionsReachTypedOptions(t *testing.T) {
	f, err := opt.ParseFlow("satmux(conflicts=64, depth=3, inference=false)")
	if err != nil {
		t.Fatal(err)
	}
	passes, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := passes[0].(*SatMuxPass)
	if !ok {
		t.Fatalf("compiled %T, want *SatMuxPass", passes[0])
	}
	want := SatMuxOptions{MaxConflicts: 64, SubgraphDepth: 3, DisableInference: true}
	if sm.Opts != want {
		t.Errorf("opts = %+v, want %+v", sm.Opts, want)
	}

	f, err = opt.ParseFlow("rebuild(selector_bits=8, force=true); smartly(patterns=7, conflicts=9)")
	if err != nil {
		t.Fatal(err)
	}
	if passes, err = f.Compile(); err != nil {
		t.Fatal(err)
	}
	rb := passes[0].(*RebuildPass)
	if rb.Opts != (RebuildOptions{MaxSelectorBits: 8, Force: true}) {
		t.Errorf("rebuild opts = %+v", rb.Opts)
	}
	sp := passes[1].(*SmartlyPass)
	if sp.RebuildOpts.MaxPatterns != 7 || sp.SatOpts.MaxConflicts != 9 {
		t.Errorf("smartly opts = %+v / %+v", sp.SatOpts, sp.RebuildOpts)
	}

	f, err = opt.ParseFlow("opt_egraph(iters=3, rules=arith+fold, verify=false, verify_conflicts=7)")
	if err != nil {
		t.Fatal(err)
	}
	if passes, err = f.Compile(); err != nil {
		t.Fatal(err)
	}
	eg := passes[0].(*egraph.Pass)
	want2 := egraph.Options{Iters: 3, Rules: "arith+fold", DisableVerify: true, VerifyConflicts: 7}
	if eg.Opts != want2 {
		t.Errorf("opt_egraph opts = %+v, want %+v", eg.Opts, want2)
	}
}

func TestUnknownScriptOptionRejected(t *testing.T) {
	if _, err := opt.ParseFlow("satmux(gain=2)"); err == nil {
		t.Error("unknown satmux option accepted")
	}
	if _, err := opt.ParseFlow("rebuild(conflicts=1)"); err == nil {
		t.Error("satmux option on rebuild accepted")
	}
}

// TestZeroBudgetRejected: the option structs treat 0 as "use the
// default", so an explicit zero in a script must be rejected rather
// than silently running the default budget (misreported ablations).
func TestZeroBudgetRejected(t *testing.T) {
	for _, script := range []string{
		"satmux(conflicts=0)", "satmux(cells=0)", "satmux(depth=-1)",
		"rebuild(patterns=0)", "smartly(selector_bits=0)",
		"opt_egraph(iters=0)", "opt_egraph(verify_conflicts=0)",
	} {
		if _, err := opt.ParseFlow(script); err == nil {
			t.Errorf("ParseFlow(%q) accepted an explicit zero/negative budget", script)
		}
	}
}

// TestNamedFlowsMatchLegacyPipelines: each registered named flow must
// rewrite a design bit-identically to the legacy pipeline constructor,
// with identical counters.
func TestNamedFlowsMatchLegacyPipelines(t *testing.T) {
	legacy := map[string]func() opt.Pass{
		"yosys":    func() opt.Pass { return PipelineYosys() },
		"sat":      func() opt.Pass { return PipelineSAT(SatMuxOptions{}) },
		"rebuild":  func() opt.Pass { return PipelineRebuild(RebuildOptions{}) },
		"datapath": func() opt.Pass { return PipelineDatapath(egraph.Options{}) },
		"seq":      func() opt.Pass { return PipelineSeq(opt.DffOptions{}) },
		"full":     func() opt.Pass { return PipelineFull(SatMuxOptions{}, RebuildOptions{}) },
	}
	if got := opt.FlowNames(); len(got) != len(legacy) {
		t.Fatalf("FlowNames = %v, want the paper pipelines plus datapath", got)
	}
	build := func() *rtlil.Module {
		m := buildFigure3()
		return m
	}
	for name, mk := range legacy {
		flow, err := opt.NamedFlow(name)
		if err != nil {
			t.Fatalf("NamedFlow(%s): %v", name, err)
		}
		mLegacy, mFlow := build(), build()
		rLegacy, err := opt.RunScript(nil, mLegacy, mk())
		if err != nil {
			t.Fatalf("%s legacy: %v", name, err)
		}
		rFlow, err := flow.Run(nil, mFlow)
		if err != nil {
			t.Fatalf("%s flow: %v", name, err)
		}
		if !reflect.DeepEqual(rLegacy.Details, rFlow.Details) || rLegacy.Changed != rFlow.Changed {
			t.Errorf("%s: counters differ: legacy %v, flow %v", name, rLegacy.Details, rFlow.Details)
		}
		var a, b bytes.Buffer
		dl, df := rtlil.NewDesign(), rtlil.NewDesign()
		dl.AddModule(mLegacy)
		df.AddModule(mFlow)
		if err := rtlil.WriteJSON(&a, dl); err != nil {
			t.Fatal(err)
		}
		if err := rtlil.WriteJSON(&b, df); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("%s: netlists differ between legacy pipeline and named flow", name)
		}
	}
}
