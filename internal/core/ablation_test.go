package core

import (
	"testing"

	"repro/internal/genbench"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// TestAblationsPreserveCorrectness runs satmux under every ablation
// configuration on a mixed circuit and equivalence-checks each result:
// ablations may lose optimizations, never correctness.
func TestAblationsPreserveCorrectness(t *testing.T) {
	recipe := genbench.Recipe{
		Name: "ablate", Seed: 33,
		PlainBlocks: 5, RedundantBlocks: 5, DepBlocks: 10, CaseBlocks: 4,
		CaseSelBits: [2]int{3, 3}, DataWidth: 4, PmuxFraction: 0.5,
	}
	configs := map[string]SatMuxOptions{
		"default":      {},
		"no_inference": {DisableInference: true},
		"no_sat":       {DisableSAT: true},
		"no_filter":    {DisableSubgraphFilter: true},
		"sat_only":     {SimInputLimit: -1},
		"tiny_budget":  {MaxConflicts: 1},
		"shallow":      {SubgraphDepth: 1},
	}
	for name, opts := range configs {
		t.Run(name, func(t *testing.T) {
			m := genbench.Generate(recipe, 1)
			orig := m.Clone()
			pass := &SatMuxPass{Opts: opts}
			if _, err := opt.RunScript(nil, m, pass, opt.ExprPass{}, opt.CleanPass{}); err != nil {
				t.Fatal(err)
			}
			checkEquiv(t, orig, m)
		})
	}
}

// TestAblationEffectOrdering: the default configuration must remove at
// least as much as each crippled one on the dependent-control workload.
func TestAblationEffectOrdering(t *testing.T) {
	recipe := genbench.Recipe{
		Name: "ordering", Seed: 34,
		DepBlocks:   20,
		CaseSelBits: [2]int{3, 3}, DataWidth: 6, PmuxFraction: 0.5,
	}
	run := func(opts SatMuxOptions) int {
		m := genbench.Generate(recipe, 1)
		pass := &SatMuxPass{Opts: opts}
		if _, err := opt.RunScript(nil, m, pass, opt.ExprPass{}, opt.CleanPass{}); err != nil {
			t.Fatal(err)
		}
		a := areaOf(t, m)
		return a
	}
	full := run(SatMuxOptions{})
	noInfNoSAT := run(SatMuxOptions{DisableInference: true, DisableSAT: true})
	if full > noInfNoSAT {
		t.Errorf("default (%d) should be <= fully crippled (%d)", full, noInfNoSAT)
	}
	if full == noInfNoSAT {
		t.Error("default removed nothing beyond the baseline on dep blocks")
	}
}

func areaOf(t *testing.T, m *rtlil.Module) int {
	t.Helper()
	return area(t, m)
}

// TestRebuildForce: Force rebuilds even losing trees; the result must
// still be equivalent.
func TestRebuildForce(t *testing.T) {
	m := rtlil.NewModule("force")
	s := m.AddInput("s", 2).Bits()
	p0 := m.AddInput("p0", 2).Bits()
	p1 := m.AddInput("p1", 2).Bits()
	p2 := m.AddInput("p2", 2).Bits()
	eq0 := m.Eq(s, rtlil.Const(0, 2))
	eq1 := m.Eq(s, rtlil.Const(1, 2))
	t1 := m.Mux(p2, p1, eq1)
	t0 := m.Mux(t1, p0, eq0)
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), t0)
	orig := m.Clone()

	pass := &RebuildPass{Opts: RebuildOptions{Force: true}}
	if _, err := opt.RunScript(nil, m, pass, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	if pass.LastStats.TreesRebuilt != 1 {
		t.Fatalf("force did not rebuild: %+v", pass.LastStats)
	}
	checkEquiv(t, orig, m)
}

// TestRebuildSelectorLimit: selectors wider than MaxSelectorBits are
// skipped.
func TestRebuildSelectorLimit(t *testing.T) {
	m := rtlil.NewModule("wide")
	s := m.AddInput("s", 8).Bits()
	p0 := m.AddInput("p0", 2).Bits()
	p1 := m.AddInput("p1", 2).Bits()
	p2 := m.AddInput("p2", 2).Bits()
	eq0 := m.Eq(s, rtlil.Const(7, 8))
	eq1 := m.Eq(s, rtlil.Const(100, 8))
	t1 := m.Mux(p2, p1, eq1)
	t0 := m.Mux(t1, p0, eq0)
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), t0)

	pass := &RebuildPass{Opts: RebuildOptions{MaxSelectorBits: 4, Force: true}}
	if _, err := pass.Run(nil, m); err != nil {
		t.Fatal(err)
	}
	if pass.LastStats.TreesEligible != 0 {
		t.Errorf("wide selector accepted: %+v", pass.LastStats)
	}
}

// TestSatMuxOnPmuxBranches: satmux must prune pmux words whose selects
// are impossible under path facts derived through logic.
func TestSatMuxOnPmuxBranches(t *testing.T) {
	m := rtlil.NewModule("pmuxsat")
	s := m.AddInput("s", 1).Bits()
	r := m.AddInput("r", 1).Bits()
	d := make([]rtlil.SigSpec, 4)
	for i := range d {
		d[i] = m.AddInput([]string{"d0", "d1", "d2", "d3"}[i], 2).Bits()
	}
	// pmux word selected by (s|r): on the root's s=0 ... s=1 path it is
	// forced active; word with select ~s is forced inactive.
	or := m.Or(s, r)
	ns := m.Not(s)
	pm := m.Pmux(d[0], []rtlil.SigSpec{d[1], d[2]}, rtlil.Concat(ns, or))
	y := m.AddOutput("y", 2).Bits()
	m.AddMux("root", d[3], pm, s, y)
	orig := m.Clone()

	pass := &SatMuxPass{}
	if _, err := opt.RunScript(nil, m, pass, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellPmux); got != 0 {
		t.Errorf("pmux survived: %d (stats %s)", got, pass.LastStats)
	}
}

// TestSmartlyPassStats exposes both stat sets.
func TestSmartlyPassStats(t *testing.T) {
	m := buildFigure3()
	p := &SmartlyPass{}
	if _, err := p.Run(nil, m); err != nil {
		t.Fatal(err)
	}
	if p.SatStats().Queries == 0 {
		t.Error("no satmux queries recorded")
	}
	_ = p.RebuildStats()
	if p.Name() != "smartly" {
		t.Error("name wrong")
	}
}

// TestDeepChainCollapse: a 10-deep dependent chain fully collapses.
func TestDeepChainCollapse(t *testing.T) {
	m := rtlil.NewModule("deep")
	s := m.AddInput("s", 1).Bits()
	w := 2
	cur := m.AddInput("base", w).Bits()
	for i := 0; i < 10; i++ {
		r := m.AddInput([]string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "r8", "r9"}[i], 1).Bits()
		cur = m.Mux(cur, m.AddInput([]string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"}[i], w).Bits(), m.Or(s, r))
	}
	y := m.AddOutput("y", w).Bits()
	m.AddMux("root", m.AddInput("c", w).Bits(), cur, s, y)
	orig := m.Clone()

	if _, err := opt.RunScript(nil, m, &SatMuxPass{}, opt.ExprPass{}, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Errorf("deep chain left %d muxes, want 1", got)
	}
}
