package core

import (
	"math/rand"
	"testing"

	"repro/internal/cec"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// randomMuxModule mirrors the opt package fuzzer: muxtree-shaped random
// netlists with derived controls.
func randomMuxModule(rng *rand.Rand) *rtlil.Module {
	m := rtlil.NewModule("fuzz")
	var bits []rtlil.SigSpec
	var words []rtlil.SigSpec
	for i := 0; i < 3; i++ {
		bits = append(bits, m.AddInput(string(rune('s'+i)), 1).Bits())
	}
	for i := 0; i < 4; i++ {
		words = append(words, m.AddInput(string(rune('a'+i)), 3).Bits())
	}
	pickBit := func() rtlil.SigSpec { return bits[rng.Intn(len(bits))] }
	pickWord := func() rtlil.SigSpec { return words[rng.Intn(len(words))] }
	for i := 0; i < 12; i++ {
		switch rng.Intn(7) {
		case 0:
			bits = append(bits, m.Or(pickBit(), pickBit()))
		case 1:
			bits = append(bits, m.And(pickBit(), pickBit()))
		case 2:
			bits = append(bits, m.Not(pickBit()))
		case 3:
			bits = append(bits, m.Eq(pickWord(), rtlil.Const(uint64(rng.Intn(8)), 3)))
		case 4:
			words = append(words, m.Mux(pickWord(), pickWord(), pickBit()))
		case 5:
			bits = append(bits, m.Lt(pickWord(), pickWord()))
		case 6:
			sel := rtlil.Concat(pickBit(), pickBit())
			words = append(words, m.Pmux(pickWord(), []rtlil.SigSpec{pickWord(), pickWord()}, sel))
		}
	}
	y := m.AddOutput("y", 3)
	m.Connect(y.Bits(), words[len(words)-1])
	y2 := m.AddOutput("y2", 1)
	m.Connect(y2.Bits(), bits[len(bits)-1])
	return m
}

// TestFuzzSmartlyPreservesEquivalence drives the full smaRTLy pipeline
// over random muxtree netlists — the strongest soundness net in the
// suite, since random derived controls hit inference, simulation, SAT
// and restructuring in unplanned combinations.
func TestFuzzSmartlyPreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		m := randomMuxModule(rng)
		orig := m.Clone()
		pipe := PipelineFull(SatMuxOptions{}, RebuildOptions{})
		if _, err := pipe.Run(nil, m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid after pipeline: %v", trial, err)
		}
		if err := cec.Check(orig, m, &cec.Options{RandomRounds: 2}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestFuzzSmartlyNeverWorseThanBaseline: on every random netlist the
// full pipeline's area is at most the baseline's (smaRTLy subsumes
// opt_muxtree).
func TestFuzzSmartlyNeverWorseThanBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	for trial := 0; trial < 30; trial++ {
		m := randomMuxModule(rng)
		base := m.Clone()
		full := m.Clone()
		if _, err := PipelineYosys().Run(nil, base); err != nil {
			t.Fatal(err)
		}
		if _, err := PipelineFull(SatMuxOptions{}, RebuildOptions{}).Run(nil, full); err != nil {
			t.Fatal(err)
		}
		ab, af := area(t, base), area(t, full)
		if af > ab {
			t.Errorf("trial %d: full (%d) worse than baseline (%d)", trial, af, ab)
		}
	}
}

// TestSatMuxIdempotent: a second run of the full pipeline must be a
// no-op.
func TestSatMuxIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	for trial := 0; trial < 10; trial++ {
		m := randomMuxModule(rng)
		if _, err := PipelineFull(SatMuxOptions{}, RebuildOptions{}).Run(nil, m); err != nil {
			t.Fatal(err)
		}
		r, err := PipelineFull(SatMuxOptions{}, RebuildOptions{}).Run(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if r.Changed {
			t.Errorf("trial %d: second run still changed the module (%s)", trial, r)
		}
	}
	_ = opt.Result{}
}
