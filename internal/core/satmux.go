package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/aig"
	"repro/internal/infer"
	"repro/internal/opt"
	"repro/internal/rtlil"
	"repro/internal/sat"
	"repro/internal/sim"
	"repro/internal/subgraph"
)

// SatMuxOptions tunes the SAT-based redundancy elimination.
type SatMuxOptions struct {
	// SubgraphDepth is the BFS radius k (default 6).
	SubgraphDepth int
	// MaxSubgraphCells caps the candidate sub-graph (default 300).
	MaxSubgraphCells int
	// SimInputLimit: with at most this many sub-graph inputs the query
	// is answered by exhaustive simulation instead of SAT (default 11,
	// the paper's "for a smaller number of inputs, simulation is more
	// efficient").
	SimInputLimit int
	// SATInputLimit: above this many sub-graph inputs the SAT query is
	// skipped entirely (the paper's input-count threshold; default 200).
	SATInputLimit int
	// MaxConflicts bounds each SAT call (default 2000).
	MaxConflicts int64
	// DisableInference turns the rule engine off (ablation).
	DisableInference bool
	// DisableSAT turns simulation/SAT off, leaving inference only
	// (ablation).
	DisableSAT bool
	// DisableSubgraphFilter turns the Theorem II.1 pruning off
	// (ablation).
	DisableSubgraphFilter bool
}

func (o SatMuxOptions) withDefaults() SatMuxOptions {
	if o.SubgraphDepth == 0 {
		o.SubgraphDepth = 6
	}
	if o.MaxSubgraphCells == 0 {
		o.MaxSubgraphCells = 300
	}
	if o.SimInputLimit == 0 {
		o.SimInputLimit = 11
	}
	if o.SATInputLimit == 0 {
		o.SATInputLimit = 200
	}
	if o.MaxConflicts == 0 {
		o.MaxConflicts = 2000
	}
	return o
}

// SatMuxStats counts how queries were resolved.
type SatMuxStats struct {
	Queries         int
	FactHits        int
	UnreachablePath int
	InferenceHits   int
	SimHits         int
	SATHits         int
	SATCalls        int
	Unknown         int
	SubgraphCells   int // total kept cells across queries
	CandidateCells  int // total pre-filter cells across queries
}

// String renders the counters.
func (s SatMuxStats) String() string {
	return fmt.Sprintf("queries=%d facts=%d unreachable=%d inference=%d sim=%d sat=%d/%d unknown=%d subgraph=%d/%d",
		s.Queries, s.FactHits, s.UnreachablePath, s.InferenceHits, s.SimHits,
		s.SATHits, s.SATCalls, s.Unknown, s.SubgraphCells, s.CandidateCells)
}

// SmartOracle is the smaRTLy control-value oracle: path facts first, then
// sub-graph inference, then exhaustive simulation or SAT.
//
// The oracle is not safe for concurrent use from the outside, but
// ValueBatch fans independent queries out to Ctx.Workers() goroutines
// internally: each query builds its own inference engine, simulator state
// and CDCL solver over the shared read-only Index, and the results are
// merged in submission order so cache contents and counters are
// bit-identical to the sequential path.
type SmartOracle struct {
	Stats SatMuxStats

	// Ctx supplies the worker budget and cancellation for ValueBatch;
	// nil means sequential.
	Ctx *opt.Ctx

	ix    *rtlil.Index
	facts *opt.FactOracle
	o     SatMuxOptions
	cache map[string]cacheEntry
}

type cacheEntry struct {
	v     rtlil.State
	known bool
}

// NewSmartOracle builds an oracle over the module index.
func NewSmartOracle(ix *rtlil.Index, o SatMuxOptions) *SmartOracle {
	return &SmartOracle{
		ix:    ix,
		facts: opt.NewFactOracle(),
		o:     o.withDefaults(),
		cache: map[string]cacheEntry{},
	}
}

// Push implements opt.Oracle.
func (s *SmartOracle) Push(bit rtlil.SigBit, v rtlil.State) { s.facts.Push(bit, v) }

// Pop implements opt.Oracle.
func (s *SmartOracle) Pop(n int) { s.facts.Pop(n) }

// Lookup implements opt.Oracle (cheap, facts only).
func (s *SmartOracle) Lookup(bit rtlil.SigBit) (rtlil.State, bool) {
	return s.facts.Lookup(bit)
}

// Value implements opt.Oracle with the full §II machinery.
func (s *SmartOracle) Value(bit rtlil.SigBit) (rtlil.State, bool) {
	if v, ok := s.facts.Lookup(bit); ok {
		s.Stats.FactHits++
		return v, ok
	}
	s.Stats.Queries++

	key := s.cacheKey(bit)
	if e, ok := s.cache[key]; ok {
		return e.v, e.known
	}
	var st SatMuxStats
	v, known := s.solve(bit, &st)
	accumulate(&s.Stats, st)
	s.cache[key] = cacheEntry{v, known}
	return v, known
}

// ValueBatch implements opt.BatchOracle: the independent control-value
// queries of one pmux select scan are deduplicated by cache key,
// dispatched to a bounded worker pool (one solver instance per query —
// the CDCL solver is not shareable) and merged back in slice order.
// Results, cache contents and counters are identical to calling Value
// sequentially, for every worker count.
func (s *SmartOracle) ValueBatch(bits []rtlil.SigBit) []opt.BatchValue {
	out := make([]opt.BatchValue, len(bits))
	type job struct {
		bit   rtlil.SigBit
		key   string
		idxs  []int
		v     rtlil.State
		known bool
		st    SatMuxStats
	}
	var jobs []*job
	byKey := map[string]*job{}
	for i, bit := range bits {
		if v, ok := s.facts.Lookup(bit); ok {
			s.Stats.FactHits++
			out[i] = opt.BatchValue{V: v, Known: true}
			continue
		}
		s.Stats.Queries++
		key := s.cacheKey(bit)
		if e, ok := s.cache[key]; ok {
			out[i] = opt.BatchValue{V: e.v, Known: e.known}
			continue
		}
		if j, dup := byKey[key]; dup {
			// Sequentially the first occurrence would have primed the
			// cache; attach this index to the same job.
			j.idxs = append(j.idxs, i)
			continue
		}
		j := &job{bit: bit, key: key, idxs: []int{i}}
		byKey[key] = j
		jobs = append(jobs, j)
	}
	if len(jobs) == 0 {
		return out
	}
	opt.ForEach(s.Ctx.Context(), s.Ctx.Workers(), len(jobs), func(i int) {
		j := jobs[i]
		j.v, j.known = s.solve(j.bit, &j.st)
	})
	// Deterministic merge: stats and cache writes in submission order.
	for _, j := range jobs {
		accumulate(&s.Stats, j.st)
		s.cache[j.key] = cacheEntry{j.v, j.known}
		for _, i := range j.idxs {
			out[i] = opt.BatchValue{V: j.v, Known: j.known}
		}
	}
	return out
}

func (s *SmartOracle) cacheKey(bit rtlil.SigBit) string {
	facts := s.facts.Facts()
	keys := make([]string, 0, len(facts))
	for b, v := range facts {
		keys = append(keys, fmt.Sprintf("%s=%s", b, v))
	}
	sort.Strings(keys)
	return bit.String() + "|" + strings.Join(keys, ",")
}

// solve runs the sub-graph machinery for one query, writing counters to
// st (a worker-local sink during parallel batches, merged in order
// afterwards). It never touches the oracle's shared mutable state.
func (s *SmartOracle) solve(bit rtlil.SigBit, st *SatMuxStats) (rtlil.State, bool) {
	if s.Ctx.Err() != nil {
		// Canceled: report unknown; the pass surfaces the context error.
		st.Unknown++
		return rtlil.Sx, false
	}
	facts := s.facts.Facts()
	// Deterministic fact order: it seeds the sub-graph BFS and the SAT
	// assumption list, where map iteration order could otherwise change
	// conflict-bounded solver outcomes between runs.
	knowns := sortedBits(facts)
	sg := subgraph.Extract(s.ix, bit, knowns, subgraph.Options{
		Depth:         s.o.SubgraphDepth,
		MaxCells:      s.o.MaxSubgraphCells,
		DisableFilter: s.o.DisableSubgraphFilter,
	})
	st.SubgraphCells += len(sg.Cells)
	st.CandidateCells += sg.CandidateCells

	// Stage 1: inference rules (paper Table I).
	if !s.o.DisableInference {
		e := infer.New(s.ix, sg.Cells)
		for _, b := range knowns {
			e.Assume(b, facts[b])
		}
		if !e.Propagate() {
			// The path condition is unreachable: the mux output is
			// never observed, so either branch is sound.
			st.UnreachablePath++
			return rtlil.S0, true
		}
		if v, ok := e.Value(bit); ok {
			st.InferenceHits++
			return v, true
		}
	}
	if s.o.DisableSAT {
		st.Unknown++
		return rtlil.Sx, false
	}

	// Stage 2: exhaustive simulation for few inputs, SAT otherwise.
	if len(sg.Inputs) <= s.o.SimInputLimit {
		if v, ok := s.simulate(sg, facts, bit, st); ok {
			st.SimHits++
			return v, true
		}
		st.Unknown++
		return rtlil.Sx, false
	}
	if len(sg.Inputs) > s.o.SATInputLimit {
		st.Unknown++
		return rtlil.Sx, false
	}
	if v, ok := s.satQuery(sg, facts, knowns, bit, st); ok {
		st.SATHits++
		return v, true
	}
	st.Unknown++
	return rtlil.Sx, false
}

// sortedBits returns the fact keys in a deterministic order.
func sortedBits(facts map[rtlil.SigBit]rtlil.State) []rtlil.SigBit {
	out := make([]rtlil.SigBit, 0, len(facts))
	for b := range facts {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i], out[j]
		if (bi.Wire == nil) != (bj.Wire == nil) {
			return bi.Wire == nil
		}
		if bi.Wire != nil && bi.Wire.Name != bj.Wire.Name {
			return bi.Wire.Name < bj.Wire.Name
		}
		if bi.Offset != bj.Offset {
			return bi.Offset < bj.Offset
		}
		return bi.Const < bj.Const
	})
	return out
}

// topoCells orders the sub-graph cells so drivers precede readers. Ports
// are visited in the cell library's fixed order (not the Conn map's) so
// the ordering — and hence SAT variable numbering — is deterministic.
func (s *SmartOracle) topoCells(cells []*rtlil.Cell) []*rtlil.Cell {
	inSet := make(map[*rtlil.Cell]bool, len(cells))
	for _, c := range cells {
		inSet[c] = true
	}
	var order []*rtlil.Cell
	state := map[*rtlil.Cell]int8{}
	var visit func(c *rtlil.Cell)
	visit = func(c *rtlil.Cell) {
		if state[c] != 0 {
			return
		}
		state[c] = 1
		for _, port := range rtlil.InputPorts(c.Type) {
			for _, b := range s.ix.Map(c.Port(port)) {
				if b.IsConst() {
					continue
				}
				if d := s.ix.DriverCell(b); d != nil && inSet[d] {
					visit(d)
				}
			}
		}
		state[c] = 2
		order = append(order, c)
	}
	for _, c := range cells {
		visit(c)
	}
	return order
}

// simulate enumerates all assignments of the sub-graph inputs, discarding
// ones inconsistent with the path facts, and observes the target bit. A
// single observed value proves the bit constant; no consistent
// assignment means the path is unreachable.
func (s *SmartOracle) simulate(sg *subgraph.Result, facts map[rtlil.SigBit]rtlil.State, target rtlil.SigBit, st *SatMuxStats) (rtlil.State, bool) {
	order := s.topoCells(sg.Cells)
	n := len(sg.Inputs)
	target = s.ix.MapBit(target)

	// Facts on bits outside the sub-graph cannot be checked; drop them
	// (this only loses precision, not soundness).
	type factCheck struct {
		bit rtlil.SigBit
		v   rtlil.State
	}
	computed := map[rtlil.SigBit]bool{}
	for _, b := range sg.Inputs {
		computed[b] = true
	}
	for _, c := range order {
		for _, b := range s.ix.Map(c.Port(rtlil.OutputPorts(c.Type)[0])) {
			if !b.IsConst() {
				computed[b] = true
			}
		}
	}
	if !computed[target] {
		return rtlil.Sx, false
	}
	var checks []factCheck
	for b, v := range facts {
		if computed[b] {
			checks = append(checks, factCheck{b, v})
		}
	}

	seen0, seen1 := false, false
	vals := make(map[rtlil.SigBit]rtlil.State, len(computed))
	for mask := 0; mask < 1<<uint(n); mask++ {
		for k := range vals {
			delete(vals, k)
		}
		for i, b := range sg.Inputs {
			vals[b] = rtlil.BoolState((mask>>uint(i))&1 == 1)
		}
		if !s.evalCells(order, vals) {
			continue
		}
		ok := true
		for _, fc := range checks {
			if vals[fc.bit] != fc.v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		switch vals[target] {
		case rtlil.S0:
			seen0 = true
		case rtlil.S1:
			seen1 = true
		}
		if seen0 && seen1 {
			return rtlil.Sx, false
		}
	}
	switch {
	case seen0 && !seen1:
		return rtlil.S0, true
	case seen1 && !seen0:
		return rtlil.S1, true
	case !seen0 && !seen1:
		// No consistent assignment: unreachable path.
		st.UnreachablePath++
		return rtlil.S0, true
	}
	return rtlil.Sx, false
}

func (s *SmartOracle) evalCells(order []*rtlil.Cell, vals map[rtlil.SigBit]rtlil.State) bool {
	get := func(b rtlil.SigBit) rtlil.State {
		b = s.ix.MapBit(b)
		if b.IsConst() {
			if b.Const == rtlil.S1 {
				return rtlil.S1
			}
			return rtlil.S0 // 0/x/z as 0, the two-valued convention
		}
		if v, ok := vals[b]; ok {
			return v
		}
		return rtlil.S0
	}
	for _, c := range order {
		in := map[string][]rtlil.State{}
		for _, p := range rtlil.InputPorts(c.Type) {
			sig := c.Port(p)
			v := make([]rtlil.State, len(sig))
			for i, b := range sig {
				v[i] = get(b)
			}
			in[p] = v
		}
		out, err := sim.EvalCell(c, in)
		if err != nil {
			return false
		}
		for i, b := range s.ix.Map(c.Port(rtlil.OutputPorts(c.Type)[0])) {
			if b.IsConst() {
				continue
			}
			v := out[i]
			if v != rtlil.S0 && v != rtlil.S1 {
				v = rtlil.S0
			}
			vals[b] = v
		}
	}
	return true
}

// satQuery encodes the sub-graph into CNF and checks SAT(target=0) and
// SAT(target=1) under the path facts, following the paper's
// "SAT(S=0)=false or SAT(S=1)=false" criterion.
func (s *SmartOracle) satQuery(sg *subgraph.Result, facts map[rtlil.SigBit]rtlil.State, knowns []rtlil.SigBit, target rtlil.SigBit, st *SatMuxStats) (rtlil.State, bool) {
	order := s.topoCells(sg.Cells)
	mp := aig.NewPartialMapping(s.ix)
	for _, b := range sg.Inputs {
		mp.AddInputBit(b)
	}
	for _, c := range order {
		if err := mp.MapCell(c); err != nil {
			return rtlil.Sx, false
		}
	}
	if !mp.HasBit(target) {
		return rtlil.Sx, false
	}

	solver := sat.NewSolver()
	solver.MaxConflicts = s.o.MaxConflicts
	cnf := aig.NewCNF(mp.G, solver)

	// Assumptions in sorted fact order: under a conflict budget the
	// solver outcome may depend on assumption order, which must not vary
	// between runs or worker counts.
	var assumptions []sat.Lit
	for _, b := range knowns {
		if !mp.HasBit(b) {
			continue
		}
		l := cnf.SatLit(mp.LitOf(b))
		if facts[b] == rtlil.S0 {
			l = l.Not()
		}
		assumptions = append(assumptions, l)
	}
	tl := cnf.SatLit(mp.LitOf(target))

	st.SATCalls++
	r0 := solver.Solve(append(append([]sat.Lit(nil), assumptions...), tl.Not())...)
	st.SATCalls++
	r1 := solver.Solve(append(append([]sat.Lit(nil), assumptions...), tl)...)
	switch {
	case r0 == sat.Unsat && r1 == sat.Unsat:
		st.UnreachablePath++
		return rtlil.S0, true // unreachable path
	case r0 == sat.Unsat && r1 == sat.Sat:
		return rtlil.S1, true
	case r1 == sat.Unsat && r0 == sat.Sat:
		return rtlil.S0, true
	}
	return rtlil.Sx, false
}

// SatMuxPass is smaRTLy's SAT-based redundancy elimination: the muxtree
// walker driven by the SmartOracle, run to a fixpoint. It subsumes the
// baseline opt_muxtree (path facts are consulted first).
type SatMuxPass struct {
	Opts SatMuxOptions
	// LastStats holds the oracle counters of the most recent Run.
	LastStats SatMuxStats
}

// Name implements opt.Pass.
func (p *SatMuxPass) Name() string { return "smartly_satmux" }

// Run implements opt.Pass. The oracle inherits the engine context, so
// pmux select scans fan out to c.Workers() goroutines and the fixpoint
// aborts on cancellation.
func (p *SatMuxPass) Run(c *opt.Ctx, m *rtlil.Module) (opt.Result, error) {
	var total opt.Result
	p.LastStats = SatMuxStats{}
	for iter := 0; iter < 20; iter++ {
		if err := c.Err(); err != nil {
			return total, err
		}
		ix := rtlil.NewIndex(m)
		oracle := NewSmartOracle(ix, p.Opts)
		oracle.Ctx = c
		walk := &opt.MuxtreeWalk{Oracle: oracle}
		r, err := walk.Run(c, m)
		if err != nil {
			return total, err
		}
		accumulate(&p.LastStats, oracle.Stats)
		if iter == 0 {
			total = r
		} else {
			mergeResults(&total, r)
		}
		if !r.Changed {
			break
		}
	}
	return total, nil
}

func accumulate(dst *SatMuxStats, s SatMuxStats) {
	dst.Queries += s.Queries
	dst.FactHits += s.FactHits
	dst.UnreachablePath += s.UnreachablePath
	dst.InferenceHits += s.InferenceHits
	dst.SimHits += s.SimHits
	dst.SATHits += s.SATHits
	dst.SATCalls += s.SATCalls
	dst.Unknown += s.Unknown
	dst.SubgraphCells += s.SubgraphCells
	dst.CandidateCells += s.CandidateCells
}

func mergeResults(dst *opt.Result, r opt.Result) {
	if r.Changed {
		dst.Changed = true
	}
	if dst.Details == nil {
		dst.Details = map[string]int{}
	}
	for k, v := range r.Details {
		dst.Details[k] += v
	}
}
