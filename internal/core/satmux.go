package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/aig"
	"repro/internal/infer"
	"repro/internal/opt"
	"repro/internal/rtlil"
	"repro/internal/sat"
	"repro/internal/sim"
	"repro/internal/subgraph"
)

// SatMuxOptions tunes the SAT-based redundancy elimination.
type SatMuxOptions struct {
	// SubgraphDepth is the BFS radius k (default 6).
	SubgraphDepth int
	// MaxSubgraphCells caps the candidate sub-graph (default 300).
	MaxSubgraphCells int
	// SimInputLimit: with at most this many sub-graph inputs the query
	// is answered by exhaustive simulation instead of SAT (default 11,
	// the paper's "for a smaller number of inputs, simulation is more
	// efficient").
	SimInputLimit int
	// SATInputLimit: above this many sub-graph inputs the SAT query is
	// skipped entirely (the paper's input-count threshold; default 200).
	SATInputLimit int
	// MaxConflicts bounds each SAT call (default 2000).
	MaxConflicts int64
	// ConeCacheSize caps how many cone encodings (AIG mapping + CNF +
	// live solver) the incremental oracle retains (default 256).
	ConeCacheSize int
	// SimFilterRounds is how many 64-lane vector rounds the simulation
	// pre-filter runs per SAT-bound cone before the solver is consulted
	// (default 4, i.e. 256 input vectors). Negative disables rounds
	// without disabling the stage's bookkeeping; use DisableSimFilter to
	// turn the stage off.
	SimFilterRounds int
	// DisableInference turns the rule engine off (ablation).
	DisableInference bool
	// DisableSimFilter turns the bit-parallel simulation pre-filter in
	// front of the SAT stage off (ablation).
	DisableSimFilter bool
	// DisablePortfolio turns the budgeted probe/retry solver portfolio
	// off: every SAT call is one Solve under the full conflict budget
	// (ablation).
	DisablePortfolio bool
	// DisableSAT turns simulation/SAT off, leaving inference only
	// (ablation).
	DisableSAT bool
	// DisableSubgraphFilter turns the Theorem II.1 pruning off
	// (ablation).
	DisableSubgraphFilter bool
	// DisableIncremental makes every SAT query build a private
	// mapping, CNF encoding and solver, as the pre-incremental oracle
	// did (ablation and differential testing).
	DisableIncremental bool
}

func (o SatMuxOptions) withDefaults() SatMuxOptions {
	if o.SubgraphDepth == 0 {
		o.SubgraphDepth = 6
	}
	if o.MaxSubgraphCells == 0 {
		o.MaxSubgraphCells = 300
	}
	if o.SimInputLimit == 0 {
		o.SimInputLimit = 11
	}
	if o.SATInputLimit == 0 {
		o.SATInputLimit = 200
	}
	if o.MaxConflicts == 0 {
		o.MaxConflicts = 2000
	}
	if o.ConeCacheSize == 0 {
		o.ConeCacheSize = 256
	}
	if o.SimFilterRounds == 0 {
		o.SimFilterRounds = 4
	}
	return o
}

// SatMuxStats counts how queries were resolved.
type SatMuxStats struct {
	Queries         int
	FactHits        int
	UnreachablePath int
	InferenceHits   int
	SimHits         int
	SATHits         int
	SATCalls        int
	Unknown         int
	SubgraphCells   int // total kept cells across queries
	CandidateCells  int // total pre-filter cells across queries

	// Incremental-oracle counters (cone cache and solver lifetime).
	Encodings     int // fresh cone encodings built (AIG map + CNF + solver)
	EncodeReuse   int // SAT queries that reused a cached cone encoding
	SolverReuse   int // Solve calls issued to a solver kept alive from an earlier query
	LearntClauses int // learnt clauses produced across all SAT calls
	MapFailures   int // SAT queries abandoned because a cone cell is not AIG-mappable
	Evictions     int // learnt-state resets after conflict-budget trips, plus cache-capacity evictions

	// Simulation pre-filter and solver-portfolio counters.
	SimFiltered      int // SAT-bound queries decided unknowable by the pre-filter (no solver call)
	SimVectors       int // 64-lane simulation words evaluated (pre-filter rounds + exhaustive sweep)
	HintedSolves     int // logical SAT calls issued with simulation-derived phase hints
	PortfolioRetries int // probe attempts that fell back to the diversified retry
}

// String renders the counters.
func (s SatMuxStats) String() string {
	return fmt.Sprintf("queries=%d facts=%d unreachable=%d inference=%d sim=%d sat=%d/%d unknown=%d subgraph=%d/%d encode=%d reuse=%d/%d learnt=%d mapfail=%d evict=%d simfilter=%d/%d hinted=%d retries=%d",
		s.Queries, s.FactHits, s.UnreachablePath, s.InferenceHits, s.SimHits,
		s.SATHits, s.SATCalls, s.Unknown, s.SubgraphCells, s.CandidateCells,
		s.Encodings, s.EncodeReuse, s.SolverReuse, s.LearntClauses, s.MapFailures, s.Evictions,
		s.SimFiltered, s.SimVectors, s.HintedSolves, s.PortfolioRetries)
}

// Details renders the oracle counters as report-sink counter entries,
// the form the opt.Ctx run report (and through it the bench JSON)
// consumes. Only deterministic counters appear here: every value is
// bit-identical for any worker count.
func (s SatMuxStats) Details() map[string]int {
	all := map[string]int{
		"oracle_queries":        s.Queries,
		"oracle_fact_hits":      s.FactHits,
		"oracle_unreachable":    s.UnreachablePath,
		"oracle_inference_hits": s.InferenceHits,
		"oracle_sim_hits":       s.SimHits,
		"oracle_sat_hits":       s.SATHits,
		"oracle_unknown":        s.Unknown,
		"sat_calls":             s.SATCalls,
		"sat_encodings":         s.Encodings,
		"sat_encode_reuse":      s.EncodeReuse,
		"sat_solver_reuse":      s.SolverReuse,
		"sat_learnt":            s.LearntClauses,
		"sat_map_failures":      s.MapFailures,
		"sat_evictions":         s.Evictions,
		"oracle_sim_filtered":   s.SimFiltered,
		"oracle_sim_vectors":    s.SimVectors,
		"sat_hinted_solves":     s.HintedSolves,
		"sat_portfolio_retries": s.PortfolioRetries,
	}
	for k, v := range all {
		if v == 0 {
			delete(all, k)
		}
	}
	return all
}

// SmartOracle is the smaRTLy control-value oracle: path facts first, then
// sub-graph inference, then exhaustive simulation or SAT.
//
// The SAT stage is incremental: the AIG mapping, CNF encoding and CDCL
// solver of each cone are cached by the cone's structural fingerprint
// (subgraph.Canonicalize) and kept alive across queries, which re-solve
// under fresh assumption sets and retain the learnt clauses of earlier
// calls. Structurally identical cones reached from different selects —
// or from later pass iterations over unchanged logic — share one
// encoding.
//
// The oracle is not safe for concurrent use from the outside, but
// ValueBatch fans independent queries out to Ctx.Workers() goroutines
// internally: the extraction/inference/simulation stages of each query
// run on worker-private state over the shared read-only Index, SAT
// queries are grouped by cone fingerprint (same-cone queries run in
// submission order on their shared solver; distinct cones run
// concurrently), and results, cache writes and counters are merged in
// submission order — bit-identical to the sequential path for every
// worker count.
type SmartOracle struct {
	Stats SatMuxStats

	// Ctx supplies the worker budget and cancellation for ValueBatch;
	// nil means sequential.
	Ctx *opt.Ctx

	ix    *rtlil.Index
	graph *subgraph.Graph
	facts *opt.FactOracle
	o     SatMuxOptions
	cache map[string]cacheEntry
	cones *coneCache
}

type cacheEntry struct {
	v     rtlil.State
	known bool
}

// NewSmartOracle builds an oracle over the module index.
func NewSmartOracle(ix *rtlil.Index, o SatMuxOptions) *SmartOracle {
	od := o.withDefaults()
	return &SmartOracle{
		ix: ix,
		// One adjacency build amortized over every query of the pass:
		// extraction is the hottest per-query stage once the pre-filter
		// has culled the SAT calls.
		graph: subgraph.NewGraph(ix),
		facts: opt.NewFactOracle(),
		o:     od,
		cache: map[string]cacheEntry{},
		cones: newConeCache(od.ConeCacheSize),
	}
}

// coneEntry is one cached cone encoding: the Tseitin CNF of the cone's
// AIG inside a live solver, plus the AIG literal of every canonical bit
// slot, so any instance of the cone can translate its bits into solver
// literals. A bad entry records that the cone contains an unmappable
// cell (negative caching).
type coneEntry struct {
	solver  *sat.Solver
	cnf     *aig.CNF
	aigLits []aig.Lit
	mapped  []bool
	bad     bool
	solved  bool // at least one query has issued Solve calls
	lastUse int  // deterministic LRU tick, assigned in submission order
}

// coneCache maps cone fingerprints to entries with a deterministic LRU
// bound. All access happens on the oracle's sequential path (or the
// sequential merge phase of a batch), never from worker goroutines.
type coneCache struct {
	entries map[string]*coneEntry
	cap     int
	tick    int
}

func newConeCache(capacity int) *coneCache {
	if capacity < 1 {
		// Negative "disable"-style values would make the eviction loop
		// spin (len > cap forever); a one-entry cache is the smallest
		// honest interpretation. Disabling reuse is incremental=false.
		capacity = 1
	}
	return &coneCache{entries: map[string]*coneEntry{}, cap: capacity}
}

func (cc *coneCache) get(fp string) *coneEntry { return cc.entries[fp] }

// update publishes the post-query state of a cone: a nil entry evicts
// (conflict-budget trip), otherwise the entry is stored and its LRU tick
// bumped. Returns how many entries the capacity bound evicted.
func (cc *coneCache) update(fp string, e *coneEntry) int {
	if e == nil {
		delete(cc.entries, fp)
		return 0
	}
	cc.tick++
	e.lastUse = cc.tick
	cc.entries[fp] = e
	evicted := 0
	for len(cc.entries) > cc.cap {
		oldestFP := ""
		oldest := -1
		for k, v := range cc.entries {
			if oldest == -1 || v.lastUse < oldest {
				oldest = v.lastUse
				oldestFP = k
			}
		}
		delete(cc.entries, oldestFP)
		evicted++
	}
	return evicted
}

// Push implements opt.Oracle.
func (s *SmartOracle) Push(bit rtlil.SigBit, v rtlil.State) { s.facts.Push(bit, v) }

// Pop implements opt.Oracle.
func (s *SmartOracle) Pop(n int) { s.facts.Pop(n) }

// Lookup implements opt.Oracle (cheap, facts only).
func (s *SmartOracle) Lookup(bit rtlil.SigBit) (rtlil.State, bool) {
	return s.facts.Lookup(bit)
}

// Value implements opt.Oracle with the full §II machinery.
func (s *SmartOracle) Value(bit rtlil.SigBit) (rtlil.State, bool) {
	if v, ok := s.facts.Lookup(bit); ok {
		s.Stats.FactHits++
		return v, ok
	}
	s.Stats.Queries++

	key := s.cacheKey(bit)
	if e, ok := s.cache[key]; ok {
		return e.v, e.known
	}
	var st SatMuxStats
	v, known := s.solve(bit, &st)
	accumulate(&s.Stats, st)
	s.cache[key] = cacheEntry{v, known}
	return v, known
}

// ValueBatch implements opt.BatchOracle: the independent control-value
// queries of one pmux select scan are deduplicated by cache key and
// resolved in two parallel stages. Extraction, inference and simulation
// run per-query on a bounded worker pool; queries that fall through to
// SAT are then grouped by cone fingerprint — each group re-solves its
// shared cached solver in submission order (the learnt-clause state a
// query sees must not depend on scheduling), while distinct cones run
// concurrently. Results, cache contents and counters are bit-identical
// for every worker count, and match calling Value sequentially —
// including the cone cache's LRU tick stream, published per query in
// submission order — except that a batch resolves each cone's entry
// once up front, so a capacity eviction that a strict per-query
// sequence would interleave *inside* the batch cannot force a re-encode
// mid-batch (a cache-pressure performance difference only).
func (s *SmartOracle) ValueBatch(bits []rtlil.SigBit) []opt.BatchValue {
	out := make([]opt.BatchValue, len(bits))
	type job struct {
		bit       rtlil.SigBit
		key       string
		idxs      []int
		v         rtlil.State
		known     bool
		st        SatMuxStats
		pend      *pendingSAT
		coneAfter *coneEntry // cone state after this query
	}
	var jobs []*job
	byKey := map[string]*job{}
	for i, bit := range bits {
		if v, ok := s.facts.Lookup(bit); ok {
			s.Stats.FactHits++
			out[i] = opt.BatchValue{V: v, Known: true}
			continue
		}
		s.Stats.Queries++
		key := s.cacheKey(bit)
		if e, ok := s.cache[key]; ok {
			out[i] = opt.BatchValue{V: e.v, Known: e.known}
			continue
		}
		if j, dup := byKey[key]; dup {
			// Sequentially the first occurrence would have primed the
			// cache; attach this index to the same job.
			j.idxs = append(j.idxs, i)
			continue
		}
		j := &job{bit: bit, key: key, idxs: []int{i}}
		byKey[key] = j
		jobs = append(jobs, j)
	}
	if len(jobs) == 0 {
		return out
	}
	// Stage 1: worker-private extraction, inference and simulation.
	opt.ForEach(s.Ctx.Context(), s.Ctx.Workers(), len(jobs), func(i int) {
		j := jobs[i]
		j.v, j.known, j.pend = s.solvePrep(j.bit, &j.st)
	})
	// Stage 2: group the pending SAT queries by cone fingerprint, in
	// submission order. With incremental solving disabled every query
	// keys itself, degenerating to the old one-solver-per-query fan-out.
	type group struct {
		fp    string
		jobs  []*job
		entry *coneEntry
	}
	var groups []*group
	byFP := map[string]*group{}
	for i, j := range jobs {
		if j.pend == nil {
			continue
		}
		fp := j.pend.canon.Fingerprint
		if s.o.DisableIncremental {
			fp = fmt.Sprintf("#%d", i)
		}
		g := byFP[fp]
		if g == nil {
			g = &group{fp: fp}
			if !s.o.DisableIncremental {
				g.entry = s.cones.get(fp)
			}
			byFP[fp] = g
			groups = append(groups, g)
		}
		g.jobs = append(g.jobs, j)
	}
	if len(groups) > 0 {
		opt.ForEach(s.Ctx.Context(), s.Ctx.Workers(), len(groups), func(gi int) {
			g := groups[gi]
			e := g.entry
			for _, j := range g.jobs {
				e, j.v, j.known = s.satRun(e, j.pend, &j.st)
				j.coneAfter = e
			}
		})
	}
	// Deterministic merge: stats, query-cache and cone-cache writes in
	// submission order — one cone publish (and LRU tick) per query,
	// exactly the sequence the per-query Value path produces.
	for _, j := range jobs {
		accumulate(&s.Stats, j.st)
		s.cache[j.key] = cacheEntry{j.v, j.known}
		for _, i := range j.idxs {
			out[i] = opt.BatchValue{V: j.v, Known: j.known}
		}
		if j.pend != nil && !s.o.DisableIncremental {
			s.Stats.Evictions += s.cones.update(j.pend.canon.Fingerprint, j.coneAfter)
		}
	}
	return out
}

func (s *SmartOracle) cacheKey(bit rtlil.SigBit) string {
	facts := s.facts.Facts()
	keys := make([]string, 0, len(facts))
	for b, v := range facts {
		keys = append(keys, fmt.Sprintf("%s=%s", b, v))
	}
	sort.Strings(keys)
	return bit.String() + "|" + strings.Join(keys, ",")
}

// pendingSAT is a query that fell through the inference and simulation
// stages and needs the (incremental) SAT machinery: the extracted cone,
// its canonical form, the fact snapshot the assumptions come from, and
// what the simulation pre-filter learned about it.
type pendingSAT struct {
	sg     *subgraph.Result
	canon  *subgraph.Canon
	facts  map[rtlil.SigBit]rtlil.State
	knowns []rtlil.SigBit

	// seen0/seen1 record fact-consistent simulation witnesses of the
	// target value: a witnessed polarity is known Sat, so satRun skips
	// that Solve call. (Both witnessed never reaches satRun — the query
	// is decided unknowable in solvePrep.)
	seen0, seen1 bool
	// hint is the witness input pattern (aligned with sg.Inputs) of the
	// polarity that was observed, applied as phase hints for the
	// remaining proof attempt.
	hint    []bool
	hasHint bool
}

// solve runs the full sub-graph machinery for one query on the
// sequential path, including the cone-cache interaction of the SAT
// stage.
func (s *SmartOracle) solve(bit rtlil.SigBit, st *SatMuxStats) (rtlil.State, bool) {
	v, known, pend := s.solvePrep(bit, st)
	if pend == nil {
		return v, known
	}
	var entry *coneEntry
	if !s.o.DisableIncremental {
		entry = s.cones.get(pend.canon.Fingerprint)
	}
	entry, v, known = s.satRun(entry, pend, st)
	if !s.o.DisableIncremental {
		st.Evictions += s.cones.update(pend.canon.Fingerprint, entry)
	}
	return v, known
}

// solvePrep runs the stages of one query that need no shared mutable
// state — sub-graph extraction, inference and exhaustive simulation —
// writing counters to st (a worker-local sink during parallel batches,
// merged in order afterwards). A query the SAT stage must decide is
// returned as a pendingSAT instead of a result.
func (s *SmartOracle) solvePrep(bit rtlil.SigBit, st *SatMuxStats) (rtlil.State, bool, *pendingSAT) {
	if s.Ctx.Err() != nil {
		// Canceled: report unknown; the pass surfaces the context error.
		st.Unknown++
		return rtlil.Sx, false, nil
	}
	facts := s.facts.Facts()
	// Deterministic fact order: it seeds the sub-graph BFS and the SAT
	// assumption list, where map iteration order could otherwise change
	// conflict-bounded solver outcomes between runs.
	knowns := sortedBits(facts)
	sg := s.graph.Extract(bit, knowns, subgraph.Options{
		Depth:         s.o.SubgraphDepth,
		MaxCells:      s.o.MaxSubgraphCells,
		DisableFilter: s.o.DisableSubgraphFilter,
	})
	st.SubgraphCells += len(sg.Cells)
	st.CandidateCells += sg.CandidateCells

	// Stage 1: inference rules (paper Table I).
	if !s.o.DisableInference {
		e := infer.New(s.ix, sg.Cells)
		for _, b := range knowns {
			e.Assume(b, facts[b])
		}
		if !e.Propagate() {
			// The path condition is unreachable: the mux output is
			// never observed, so either branch is sound.
			st.UnreachablePath++
			return rtlil.S0, true, nil
		}
		if v, ok := e.Value(bit); ok {
			st.InferenceHits++
			return v, true, nil
		}
	}
	if s.o.DisableSAT {
		st.Unknown++
		return rtlil.Sx, false, nil
	}

	// Stage 2: exhaustive simulation for few inputs, SAT otherwise.
	if len(sg.Inputs) <= s.o.SimInputLimit {
		if v, ok := s.simulate(sg, facts, bit, st); ok {
			st.SimHits++
			return v, true, nil
		}
		st.Unknown++
		return rtlil.Sx, false, nil
	}
	if len(sg.Inputs) > s.o.SATInputLimit {
		st.Unknown++
		return rtlil.Sx, false, nil
	}
	var canon *subgraph.Canon
	if s.o.DisableIncremental && s.o.DisableSimFilter {
		// The per-query-solver oracle never consults the cone cache, so
		// the fingerprint would be discarded — compute only the slot
		// translation the encoder needs. (The pre-filter seeds its RNG
		// from the fingerprint, so it forces the full canonicalization.)
		canon = subgraph.Slots(s.ix, sg, bit)
	} else {
		canon = subgraph.Canonicalize(s.ix, sg, bit)
	}
	p := &pendingSAT{
		sg:     sg,
		canon:  canon,
		facts:  facts,
		knowns: knowns,
	}
	if !s.o.DisableSimFilter && s.simPreFilter(p, st) {
		// Both target values witnessed under the path facts: the solver
		// would answer Sat twice, so the query is unknowable — decided
		// here without touching SAT at all.
		st.SimFiltered++
		st.Unknown++
		return rtlil.Sx, false, nil
	}
	return rtlil.Sx, false, p
}

// simPreFilter runs the bit-parallel simulation pre-filter over one
// SAT-bound cone: SimFilterRounds words of 64 random input vectors
// (round 0's lanes 0/1 pinned to the all-zeros/all-ones inputs), each
// evaluated through the lane cone evaluator with AIG-faithful semantics
// and masked by the path facts. It records witnessed target values and
// the witness pattern on p, and reports whether both values were seen.
//
// Determinism: the RNG is seeded from the cone's structural fingerprint
// and the facts are scanned in sorted order, so the lane schedule — and
// everything derived from it — depends only on the query, never on
// worker count or scheduling.
func (s *SmartOracle) simPreFilter(p *pendingSAT, st *SatMuxStats) bool {
	if p.canon.TargetID < 0 {
		return false
	}
	cone, err := sim.NewCone(s.ix, p.canon.Cells, false)
	if err != nil {
		// Unsupported cell (e.g. $div): the AIG mapper will reject the
		// cone too; leave the accounting to the SAT stage.
		return false
	}
	tslot, ok := cone.Slot(p.canon.Bits[p.canon.TargetID])
	if !ok {
		return false
	}
	inSlots := make([]int, len(p.sg.Inputs))
	for i, b := range p.sg.Inputs {
		id, ok := cone.Slot(b)
		if !ok {
			return false
		}
		inSlots[i] = id
	}
	// Path facts: on an input they pin the lanes, on an internal bit
	// they mask out inconsistent lanes after evaluation. Facts on bits
	// outside the cone cannot be checked (precision loss only: the SAT
	// assumptions drop them the same way).
	type factCheck struct {
		slot int
		want uint64
	}
	forced := make([]int8, len(p.sg.Inputs))
	for i := range forced {
		forced[i] = -1
	}
	inputOf := map[int]int{}
	for i, slot := range inSlots {
		inputOf[slot] = i
	}
	var checks []factCheck
	for _, b := range p.knowns {
		slot, ok := cone.Slot(b)
		if !ok {
			continue
		}
		if v := p.facts[b]; v != rtlil.S0 && v != rtlil.S1 {
			// A non-boolean fact has no lane encoding; decline to filter.
			return false
		}
		var want uint64
		if p.facts[b] == rtlil.S1 {
			want = ^uint64(0)
		}
		if in, isIn := inputOf[slot]; isIn {
			forced[in] = int8(want & 1)
			continue
		}
		checks = append(checks, factCheck{slot, want})
	}

	seed, _ := strconv.ParseUint(p.canon.Fingerprint[:16], 16, 64)
	rng := rand.New(rand.NewSource(int64(seed)))
	vals := make([]uint64, cone.NumSlots())
	patterns := make([]uint64, len(inSlots))
	capture := func(lanes uint64) {
		lane := uint(bits.TrailingZeros64(lanes))
		p.hint = make([]bool, len(patterns))
		for i, w := range patterns {
			p.hint[i] = (w>>lane)&1 == 1
		}
		p.hasHint = true
	}
	for round := 0; round < s.o.SimFilterRounds; round++ {
		if s.Ctx.Err() != nil {
			// Canceled mid-filter: stop simulating; the pass discards
			// the run's results when it surfaces the context error.
			return false
		}
		for i, slot := range inSlots {
			var v uint64
			switch forced[i] {
			case 0:
			case 1:
				v = ^uint64(0)
			default:
				v = rng.Uint64()
				if round == 0 {
					// Guided lanes: all-zeros and all-ones inputs, the
					// classic sweeping probes for stuck-at candidates.
					v = v&^1 | 2
				}
			}
			vals[slot] = v
			patterns[i] = v
		}
		cone.Eval(vals)
		st.SimVectors++
		valid := ^uint64(0)
		for _, fc := range checks {
			valid &= ^(vals[fc.slot] ^ fc.want)
		}
		tv := vals[tslot]
		if m := ^tv & valid; m != 0 && !p.seen0 {
			p.seen0 = true
			if !p.hasHint {
				capture(m)
			}
		}
		if m := tv & valid; m != 0 && !p.seen1 {
			p.seen1 = true
			if !p.hasHint {
				capture(m)
			}
		}
		if p.seen0 && p.seen1 {
			return true
		}
	}
	return p.seen0 && p.seen1
}

// sortedBits returns the fact keys in a deterministic order.
func sortedBits(facts map[rtlil.SigBit]rtlil.State) []rtlil.SigBit {
	out := make([]rtlil.SigBit, 0, len(facts))
	for b := range facts {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool {
		bi, bj := out[i], out[j]
		if (bi.Wire == nil) != (bj.Wire == nil) {
			return bi.Wire == nil
		}
		if bi.Wire != nil && bi.Wire.Name != bj.Wire.Name {
			return bi.Wire.Name < bj.Wire.Name
		}
		if bi.Offset != bj.Offset {
			return bi.Offset < bj.Offset
		}
		return bi.Const < bj.Const
	})
	return out
}

// simulate enumerates all assignments of the sub-graph inputs, discarding
// ones inconsistent with the path facts, and observes the target bit. A
// single observed value proves the bit constant; no consistent
// assignment means the path is unreachable.
//
// The enumeration sweeps 64 assignments per lane-evaluator word; cones
// with a cell the lane evaluator cannot reproduce in scalar-compatible
// semantics fall back to the per-assignment map-based path, whose
// decisions the vector path matches exactly.
func (s *SmartOracle) simulate(sg *subgraph.Result, facts map[rtlil.SigBit]rtlil.State, target rtlil.SigBit, st *SatMuxStats) (rtlil.State, bool) {
	order := subgraph.TopoCells(s.ix, sg.Cells)
	target = s.ix.MapBit(target)
	if cone, err := sim.NewCone(s.ix, order, true); err == nil {
		return s.simulateVector(cone, sg, facts, target, st)
	}
	return s.simulateScalar(order, sg, facts, target, st)
}

// enumPatterns are the lane vectors of the six low input variables under
// the standard exhaustive-enumeration numbering: bit i of assignment
// (word*64+lane) is lane bit i for i < 6 and word bit i-6 above.
var enumPatterns = [6]uint64{
	0xAAAAAAAAAAAAAAAA,
	0xCCCCCCCCCCCCCCCC,
	0xF0F0F0F0F0F0F0F0,
	0xFF00FF00FF00FF00,
	0xFFFF0000FFFF0000,
	0xFFFFFFFF00000000,
}

// simulateVector is the 64-wide exhaustive sweep: dense slot-indexed
// lane buffers instead of a rebuilt map per assignment, with path facts
// applied as lane masks and an early exit at word granularity (the
// final seen0/seen1 classification is order-independent, so sweeping a
// partial word further than the scalar path would is decision-neutral).
func (s *SmartOracle) simulateVector(cone *sim.Cone, sg *subgraph.Result, facts map[rtlil.SigBit]rtlil.State, target rtlil.SigBit, st *SatMuxStats) (rtlil.State, bool) {
	tslot, ok := cone.Slot(target)
	if !ok {
		// Target not computed inside the sub-graph (mirrors the scalar
		// path's computed-set check: cone slots are exactly the inputs
		// plus the cell outputs).
		return rtlil.Sx, false
	}
	n := len(sg.Inputs)
	inSlots := make([]int, n)
	for i, b := range sg.Inputs {
		inSlots[i], _ = cone.Slot(b)
	}
	type factCheck struct {
		slot int
		want uint64
	}
	var checks []factCheck
	impossible := false
	for b, v := range facts {
		slot, ok := cone.Slot(b)
		if !ok {
			continue // unobservable fact: precision loss only
		}
		switch v {
		case rtlil.S0:
			checks = append(checks, factCheck{slot, 0})
		case rtlil.S1:
			checks = append(checks, factCheck{slot, ^uint64(0)})
		default:
			// The clamped two-valued sweep can never reproduce a
			// non-boolean fact; no assignment is consistent.
			impossible = true
		}
	}

	words := uint64(1)
	validBase := ^uint64(0)
	if n < 6 {
		validBase = 1<<(1<<uint(n)) - 1
	} else {
		words = 1 << uint(n-6)
	}
	vals := make([]uint64, cone.NumSlots())
	seen0, seen1 := false, false
	for word := uint64(0); word < words; word++ {
		if s.Ctx.Err() != nil {
			// Canceled: stop the enumeration; the caller reports unknown
			// and the pass surfaces the context error.
			return rtlil.Sx, false
		}
		for i, slot := range inSlots {
			if i < 6 {
				vals[slot] = enumPatterns[i]
			} else if (word>>uint(i-6))&1 == 1 {
				vals[slot] = ^uint64(0)
			} else {
				vals[slot] = 0
			}
		}
		cone.Eval(vals)
		st.SimVectors++
		valid := validBase
		if impossible {
			valid = 0
		}
		for _, fc := range checks {
			valid &= ^(vals[fc.slot] ^ fc.want)
		}
		tv := vals[tslot]
		if ^tv&valid != 0 {
			seen0 = true
		}
		if tv&valid != 0 {
			seen1 = true
		}
		if seen0 && seen1 {
			return rtlil.Sx, false
		}
	}
	switch {
	case seen0 && !seen1:
		return rtlil.S0, true
	case seen1 && !seen0:
		return rtlil.S1, true
	}
	// No consistent assignment: unreachable path.
	st.UnreachablePath++
	return rtlil.S0, true
}

// simulateScalar is the per-assignment four-state fallback for cones the
// lane evaluator rejects.
func (s *SmartOracle) simulateScalar(order []*rtlil.Cell, sg *subgraph.Result, facts map[rtlil.SigBit]rtlil.State, target rtlil.SigBit, st *SatMuxStats) (rtlil.State, bool) {
	n := len(sg.Inputs)

	// Facts on bits outside the sub-graph cannot be checked; drop them
	// (this only loses precision, not soundness).
	type factCheck struct {
		bit rtlil.SigBit
		v   rtlil.State
	}
	computed := map[rtlil.SigBit]bool{}
	for _, b := range sg.Inputs {
		computed[b] = true
	}
	for _, c := range order {
		for _, b := range s.ix.Map(c.Port(rtlil.OutputPorts(c.Type)[0])) {
			if !b.IsConst() {
				computed[b] = true
			}
		}
	}
	if !computed[target] {
		return rtlil.Sx, false
	}
	var checks []factCheck
	for b, v := range facts {
		if computed[b] {
			checks = append(checks, factCheck{b, v})
		}
	}

	seen0, seen1 := false, false
	vals := make(map[rtlil.SigBit]rtlil.State, len(computed))
	for mask := 0; mask < 1<<uint(n); mask++ {
		if mask%64 == 0 && s.Ctx.Err() != nil {
			return rtlil.Sx, false
		}
		for k := range vals {
			delete(vals, k)
		}
		for i, b := range sg.Inputs {
			vals[b] = rtlil.BoolState((mask>>uint(i))&1 == 1)
		}
		if !s.evalCells(order, vals) {
			continue
		}
		ok := true
		for _, fc := range checks {
			if vals[fc.bit] != fc.v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		switch vals[target] {
		case rtlil.S0:
			seen0 = true
		case rtlil.S1:
			seen1 = true
		}
		if seen0 && seen1 {
			return rtlil.Sx, false
		}
	}
	switch {
	case seen0 && !seen1:
		return rtlil.S0, true
	case seen1 && !seen0:
		return rtlil.S1, true
	case !seen0 && !seen1:
		// No consistent assignment: unreachable path.
		st.UnreachablePath++
		return rtlil.S0, true
	}
	return rtlil.Sx, false
}

func (s *SmartOracle) evalCells(order []*rtlil.Cell, vals map[rtlil.SigBit]rtlil.State) bool {
	get := func(b rtlil.SigBit) rtlil.State {
		b = s.ix.MapBit(b)
		if b.IsConst() {
			if b.Const == rtlil.S1 {
				return rtlil.S1
			}
			return rtlil.S0 // 0/x/z as 0, the two-valued convention
		}
		if v, ok := vals[b]; ok {
			return v
		}
		return rtlil.S0
	}
	for _, c := range order {
		in := map[string][]rtlil.State{}
		for _, p := range rtlil.InputPorts(c.Type) {
			sig := c.Port(p)
			v := make([]rtlil.State, len(sig))
			for i, b := range sig {
				v[i] = get(b)
			}
			in[p] = v
		}
		out, err := sim.EvalCell(c, in)
		if err != nil {
			return false
		}
		for i, b := range s.ix.Map(c.Port(rtlil.OutputPorts(c.Type)[0])) {
			if b.IsConst() {
				continue
			}
			v := out[i]
			if v != rtlil.S0 && v != rtlil.S1 {
				v = rtlil.S0
			}
			vals[b] = v
		}
	}
	return true
}

// buildConeEntry encodes one cone: the AIG mapping of the cells in
// canonical topological order, a fresh budgeted solver, and the AIG
// literal of every canonical bit slot. A cone containing an unmappable
// cell yields a bad entry (negative caching).
func (s *SmartOracle) buildConeEntry(p *pendingSAT) *coneEntry {
	mp := aig.NewPartialMapping(s.ix)
	for _, b := range p.sg.Inputs {
		mp.AddInputBit(b)
	}
	for _, c := range p.canon.Cells {
		if err := mp.MapCell(c); err != nil {
			return &coneEntry{bad: true}
		}
	}
	e := &coneEntry{
		aigLits: make([]aig.Lit, len(p.canon.Bits)),
		mapped:  make([]bool, len(p.canon.Bits)),
		solver:  sat.NewSolver(),
	}
	e.solver.MaxConflicts = s.o.MaxConflicts
	e.cnf = aig.NewCNF(mp.G, e.solver)
	for id, b := range p.canon.Bits {
		if mp.HasBit(b) {
			e.aigLits[id] = mp.LitOf(b)
			e.mapped[id] = true
		}
	}
	return e
}

// satRun answers one pending SAT query against a cone entry (nil means
// encode fresh), checking SAT(target=0) and SAT(target=1) under the path
// facts — the paper's "SAT(S=0)=false or SAT(S=1)=false" criterion —
// as two assumption-based Solve calls on the cone's long-lived solver.
// It returns the entry to keep for the next query on this cone; after a
// conflict-budget trip the solver's learnt state is Reset (an abandoned
// search must not tax later queries) while the encoding is retained.
// Counters go to the worker-local sink st; the shared cone cache is
// never touched.
func (s *SmartOracle) satRun(e *coneEntry, p *pendingSAT, st *SatMuxStats) (*coneEntry, rtlil.State, bool) {
	fresh := e == nil
	if fresh {
		e = s.buildConeEntry(p)
		if !e.bad {
			st.Encodings++
		}
	} else if !e.bad {
		st.EncodeReuse++
	}
	if e.bad {
		// The cone contains a cell the AIG mapper cannot encode; the
		// partial mapping is discarded and the query stays undecided.
		st.MapFailures++
		st.Unknown++
		return e, rtlil.Sx, false
	}
	tid := p.canon.TargetID
	if tid < 0 || !e.mapped[tid] {
		st.Unknown++
		return e, rtlil.Sx, false
	}

	// Assumptions in sorted fact order: under a conflict budget the
	// solver outcome may depend on assumption order, which must not vary
	// between runs or worker counts. SatLit lazily Tseitin-encodes any
	// cone not yet in the solver, so reused entries only pay for newly
	// referenced logic.
	var assumptions []sat.Lit
	for _, b := range p.knowns {
		id, ok := p.canon.BitID(b)
		if !ok || !e.mapped[id] {
			continue
		}
		l := e.cnf.SatLit(e.aigLits[id])
		if p.facts[b] == rtlil.S0 {
			l = l.Not()
		}
		assumptions = append(assumptions, l)
	}
	tl := e.cnf.SatLit(e.aigLits[tid])

	// A polarity the simulation pre-filter witnessed is known Sat: the
	// witness is a genuine model of the cone CNF under the assumptions
	// (the lane evaluator mirrors the AIG mapping cell for cell), so the
	// Solve call is skipped outright.
	calls := 0
	if !p.seen0 {
		calls++
	}
	if !p.seen1 {
		calls++
	}
	if e.solved {
		// The calls below re-enter a solver kept alive from an earlier
		// query, reusing its learnt clauses.
		st.SolverReuse += calls
	}
	if calls > 0 {
		e.solved = true
	}
	learntBefore := e.solver.Stats.Learnt
	r0, r1 := sat.Sat, sat.Sat
	if !p.seen0 {
		st.SATCalls++
		r0 = s.portfolioSolve(e, p, append(append([]sat.Lit(nil), assumptions...), tl.Not()), st)
	}
	if !p.seen1 {
		st.SATCalls++
		r1 = s.portfolioSolve(e, p, append(append([]sat.Lit(nil), assumptions...), tl), st)
	}
	st.LearntClauses += int(e.solver.Stats.Learnt - learntBefore)
	if r0 == sat.Unknown || r1 == sat.Unknown {
		// Conflict budget tripped: the learnt database reflects an
		// abandoned search, so drop it — but keep the problem clauses
		// and the encoding, which a full eviction would make the next
		// query on this cone rebuild from scratch.
		st.Evictions++
		if !s.o.DisableIncremental {
			e.solver.Reset()
		}
	}
	switch {
	case r0 == sat.Unsat && r1 == sat.Unsat:
		// Unreachable path; counted as a SAT-decided query like every
		// other outcome of this stage.
		st.SATHits++
		st.UnreachablePath++
		return e, rtlil.S0, true
	case r0 == sat.Unsat:
		// target=0 impossible (even if the other call hit its budget,
		// an Unsat verdict transfers through the abstraction).
		st.SATHits++
		return e, rtlil.S1, true
	case r1 == sat.Unsat:
		st.SATHits++
		return e, rtlil.S0, true
	}
	st.Unknown++
	return e, rtlil.Sx, false
}

// portfolioSolve issues one logical SAT call as a budgeted portfolio:
// a short probe (a quarter of the conflict budget) with the simulation
// witness applied as phase hints, then — if the probe ran out — one
// diversified retry under the remaining budget, with inverted phases
// and the restart schedule advanced past its short early intervals.
// The total conflict spend never exceeds MaxConflicts, so a portfolio
// Unknown implies the single-call oracle's budget would have tripped
// on some schedule too (the eviction/equality bookkeeping treats both
// the same way).
func (s *SmartOracle) portfolioSolve(e *coneEntry, p *pendingSAT, as []sat.Lit, st *SatMuxStats) sat.Result {
	if p.hasHint {
		st.HintedSolves++
		s.applyHint(e, p, false)
	}
	budget := s.o.MaxConflicts
	if s.o.DisablePortfolio || budget <= 0 {
		return e.solver.Solve(as...)
	}
	probe := budget / 4
	if probe < 1 {
		probe = 1
	}
	confBefore := e.solver.Stats.Conflicts
	e.solver.MaxConflicts = probe
	r := e.solver.Solve(as...)
	if used := e.solver.Stats.Conflicts - confBefore; r == sat.Unknown && budget-used > 0 {
		st.PortfolioRetries++
		if p.hasHint {
			s.applyHint(e, p, true)
		} else {
			e.solver.InvertPhases()
		}
		e.solver.RestartOffset = 6 // first restart interval: luby(7)*100 = 800 conflicts
		e.solver.MaxConflicts = budget - used
		r = e.solver.Solve(as...)
		e.solver.RestartOffset = 0
	}
	e.solver.MaxConflicts = budget
	return r
}

// applyHint seeds the solver's saved phases with the pre-filter's
// witness pattern (or its complement): the witness satisfies the cone
// and the path facts, so the search starts next to a known model of
// everything but the target polarity under proof.
func (s *SmartOracle) applyHint(e *coneEntry, p *pendingSAT, invert bool) {
	for i, b := range p.sg.Inputs {
		id, ok := p.canon.BitID(b)
		if !ok || !e.mapped[id] {
			continue
		}
		l := e.cnf.SatLit(e.aigLits[id])
		v := p.hint[i] != invert
		if l.Sign() {
			v = !v
		}
		e.solver.SetPhase(l.Var(), v)
	}
}

// SatMuxPass is smaRTLy's SAT-based redundancy elimination: the muxtree
// walker driven by the SmartOracle, run to a fixpoint. It subsumes the
// baseline opt_muxtree (path facts are consulted first).
//
// The pass instance owns the incremental oracle's cone cache: encodings
// and live solvers persist across the internal fixpoint iterations and
// across repeated Run calls on one instance (outer fixpoint wrappers),
// where unchanged cones keep their structural fingerprints even though
// every iteration rebuilds the module index.
type SatMuxPass struct {
	Opts SatMuxOptions
	// LastStats holds the oracle counters of the most recent Run.
	LastStats SatMuxStats

	cones *coneCache
}

// Name implements opt.Pass.
func (p *SatMuxPass) Name() string { return "smartly_satmux" }

// Run implements opt.Pass. The oracle inherits the engine context, so
// pmux select scans fan out to c.Workers() goroutines and the fixpoint
// aborts on cancellation.
func (p *SatMuxPass) Run(c *opt.Ctx, m *rtlil.Module) (opt.Result, error) {
	var total opt.Result
	p.LastStats = SatMuxStats{}
	if p.cones == nil {
		p.cones = newConeCache(p.Opts.withDefaults().ConeCacheSize)
	}
	for iter := 0; iter < 20; iter++ {
		if err := c.Err(); err != nil {
			return total, err
		}
		ix := rtlil.NewIndex(m)
		oracle := NewSmartOracle(ix, p.Opts)
		oracle.Ctx = c
		oracle.cones = p.cones
		walk := &opt.MuxtreeWalk{Oracle: oracle}
		r, err := walk.Run(c, m)
		if err != nil {
			return total, err
		}
		accumulate(&p.LastStats, oracle.Stats)
		if iter == 0 {
			total = r
		} else {
			mergeResults(&total, r)
		}
		if !r.Changed {
			break
		}
	}
	// Thread the oracle counters into the run report alongside the
	// walker's rewrite counters.
	if total.Details == nil {
		total.Details = map[string]int{}
	}
	for k, v := range p.LastStats.Details() {
		total.Details[k] += v
	}
	return total, nil
}

func accumulate(dst *SatMuxStats, s SatMuxStats) {
	dst.Queries += s.Queries
	dst.FactHits += s.FactHits
	dst.UnreachablePath += s.UnreachablePath
	dst.InferenceHits += s.InferenceHits
	dst.SimHits += s.SimHits
	dst.SATHits += s.SATHits
	dst.SATCalls += s.SATCalls
	dst.Unknown += s.Unknown
	dst.SubgraphCells += s.SubgraphCells
	dst.CandidateCells += s.CandidateCells
	dst.Encodings += s.Encodings
	dst.EncodeReuse += s.EncodeReuse
	dst.SolverReuse += s.SolverReuse
	dst.LearntClauses += s.LearntClauses
	dst.MapFailures += s.MapFailures
	dst.Evictions += s.Evictions
	dst.SimFiltered += s.SimFiltered
	dst.SimVectors += s.SimVectors
	dst.HintedSolves += s.HintedSolves
	dst.PortfolioRetries += s.PortfolioRetries
}

func mergeResults(dst *opt.Result, r opt.Result) {
	if r.Changed {
		dst.Changed = true
	}
	if dst.Details == nil {
		dst.Details = map[string]int{}
	}
	for k, v := range r.Details {
		dst.Details[k] += v
	}
}
