package core

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/genbench"
	"repro/internal/opt"
	"repro/internal/rtlil"
	"repro/internal/sim"
	"repro/internal/subgraph"
)

// noSimFilter derives the flow variant with the random-simulation
// pre-filter (and the hint-seeded portfolio) off in every SAT-capable
// pass, so all SAT-bound queries reach the solver.
func noSimFilter(t *testing.T, f *opt.Flow) *opt.Flow {
	t.Helper()
	for _, pass := range []string{"satmux", "smartly"} {
		for _, key := range []string{"sim_filter", "portfolio"} {
			var err error
			if f, err = f.WithArg(pass, key, "false"); err != nil {
				t.Fatal(err)
			}
		}
	}
	return f
}

// filterInvariantCounters strips the counters that legitimately differ
// when the pre-filter intercepts SAT-bound queries (solver-call and
// solver-lifetime bookkeeping, the filter's own counters), keeping every
// decided-bit outcome: filtered queries are exactly the both-values-
// witnessed ones, which the solver would have answered Sat/Sat →
// unknown.
func filterInvariantCounters(c map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range c {
		switch k {
		case "sat_calls", "sat_encodings", "sat_encode_reuse", "sat_solver_reuse",
			"sat_learnt", "sat_evictions", "sat_portfolio_retries",
			"sat_hinted_solves", "oracle_sim_filtered", "oracle_sim_vectors":
			continue
		}
		out[k] = v
	}
	return out
}

// TestSimFilterMatchesUnfilteredOnTestdata is the tentpole's acceptance
// bar: on every testdata case and named flow, the pre-filtered oracle
// must produce a bit-identical netlist and identical decided-bit
// counters to the filter-off oracle, at every worker count.
func TestSimFilterMatchesUnfilteredOnTestdata(t *testing.T) {
	mods := loadTestdataModules(t)
	for _, name := range opt.FlowNames() {
		named, err := opt.NamedFlow(name)
		if err != nil {
			t.Fatal(err)
		}
		unfiltered := noSimFilter(t, named)
		for key, m := range mods {
			t.Run(name+"/"+key, func(t *testing.T) {
				run := func(f *opt.Flow, workers int) (map[string]int, []byte) {
					work := m.Clone()
					ec := opt.NewCtx(context.Background(), opt.Config{Workers: workers})
					if _, err := f.Run(ec, work); err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					rep := ec.Report()
					p := rep.Pass("smartly_satmux")
					if p == nil {
						return nil, netlistJSON(t, work)
					}
					return p.Counters, netlistJSON(t, work)
				}
				baseCounters, baseJSON := run(unfiltered, 1)
				for _, workers := range []int{1, 2, 8} {
					c, j := run(named, workers)
					if !bytes.Equal(baseJSON, j) {
						t.Errorf("netlist with sim_filter (workers=%d) differs from filter-off oracle", workers)
					}
					if !reflect.DeepEqual(filterInvariantCounters(baseCounters), filterInvariantCounters(c)) {
						t.Errorf("decided-bit counters differ (workers=%d):\nfiltered:   %v\nunfiltered: %v",
							workers, filterInvariantCounters(c), filterInvariantCounters(baseCounters))
					}
				}
			})
		}
	}
}

// TestSimFilterEffectiveness: on a SAT-heavy workload with an
// effectively unlimited conflict budget (no budget-tripped verdicts, so
// netlist equality is a hard guarantee, not a statistical one), the
// pre-filter must intercept queries, surviving queries must carry phase
// hints into the solver, and the final netlist must be byte-identical
// to the filter-off oracle's.
func TestSimFilterEffectiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("SAT-heavy; skipped under -short")
	}
	m := genbench.Generate(satRecipe, 0.5)
	mf, mu := m.Clone(), m.Clone()

	filtered := &SatMuxPass{Opts: SatMuxOptions{SimInputLimit: -1, MaxConflicts: 1 << 40}}
	if _, err := opt.RunScript(nil, mf, opt.ExprPass{}, filtered, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	st := filtered.LastStats
	if st.SimFiltered == 0 {
		t.Errorf("pre-filter decided no queries: %s", st)
	}
	if st.SimVectors == 0 {
		t.Errorf("no simulation vectors recorded: %s", st)
	}
	if st.HintedSolves == 0 {
		t.Errorf("no surviving query carried a phase hint: %s", st)
	}

	unfiltered := &SatMuxPass{Opts: SatMuxOptions{
		SimInputLimit: -1, MaxConflicts: 1 << 40,
		DisableSimFilter: true, DisablePortfolio: true,
	}}
	if _, err := opt.RunScript(nil, mu, opt.ExprPass{}, unfiltered, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	if unfiltered.LastStats.SimFiltered != 0 || unfiltered.LastStats.HintedSolves != 0 {
		t.Errorf("filter-off oracle reported filter activity: %s", unfiltered.LastStats)
	}
	if st.SATCalls >= unfiltered.LastStats.SATCalls {
		t.Errorf("pre-filter did not reduce SAT calls: %d vs %d", st.SATCalls, unfiltered.LastStats.SATCalls)
	}
	if !bytes.Equal(netlistJSON(t, mf), netlistJSON(t, mu)) {
		t.Error("pre-filtered and filter-off netlists differ with unlimited budget")
	}
	checkEquiv(t, m, mf)
}

// TestSimulateVectorMatchesScalar is the white-box differential for the
// vectorized exhaustive stage: on sub-graphs extracted from a generated
// workload, the 64-wide sweep and the per-assignment map-based fallback
// must return identical (value, decided) answers under the same facts.
func TestSimulateVectorMatchesScalar(t *testing.T) {
	m := genbench.Generate(genbench.Recipes()[0], 0.1)
	ix := rtlil.NewIndex(m)
	s := NewSmartOracle(ix, SatMuxOptions{})
	rng := rand.New(rand.NewSource(3))
	compared := 0
	for _, c := range m.Cells() {
		if c.Type != rtlil.CellMux && c.Type != rtlil.CellPmux {
			continue
		}
		for _, target := range ix.Map(c.Port("S")) {
			if target.IsConst() {
				continue
			}
			target = ix.MapBit(target)
			sg := subgraph.Extract(ix, target, nil, subgraph.Options{})
			if len(sg.Inputs) == 0 || len(sg.Inputs) > 10 {
				continue
			}
			order := subgraph.TopoCells(ix, sg.Cells)
			cone, err := sim.NewCone(ix, order, true)
			if err != nil {
				continue
			}
			facts := map[rtlil.SigBit]rtlil.State{}
			if len(sg.Inputs) > 1 {
				facts[sg.Inputs[rng.Intn(len(sg.Inputs))]] = rtlil.BoolState(rng.Intn(2) == 1)
			}
			var stV, stS SatMuxStats
			vv, vok := s.simulateVector(cone, sg, facts, target, &stV)
			sv, sok := s.simulateScalar(order, sg, facts, target, &stS)
			if vv != sv || vok != sok {
				t.Fatalf("target %v: vector=(%v,%v) scalar=(%v,%v)", target, vv, vok, sv, sok)
			}
			if stV.UnreachablePath != stS.UnreachablePath {
				t.Fatalf("target %v: unreachable-path accounting differs", target)
			}
			compared++
		}
	}
	if compared < 10 {
		t.Fatalf("only %d sub-graphs compared; workload too small to be meaningful", compared)
	}
}

// TestSimFilterCancellation: a canceled context aborts a pre-filter-
// heavy run with the context error, and every already-applied rewrite
// is sound.
func TestSimFilterCancellation(t *testing.T) {
	m := genbench.Generate(satRecipe, 0.5)
	orig := m.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := opt.NewCtx(ctx, opt.Config{Workers: 4})
	pass := &SatMuxPass{Opts: SatMuxOptions{SimInputLimit: -1}}
	if _, err := opt.RunScript(ec, m, opt.ExprPass{}, pass, opt.CleanPass{}); err == nil {
		t.Fatal("canceled run reported success")
	}
	checkEquiv(t, orig, m)
}
