package core

import (
	"testing"

	"repro/internal/cec"
	"repro/internal/genbench"
	"repro/internal/opt"
)

// TestPassCombinationsPreserveEquivalence is a regression matrix: every
// pass combination on every block class must preserve equivalence. The
// mix/clean combination once exposed a bug where opt_clean dropped the
// driving connection of a wire whose canonical form was a constant.
func TestPassCombinationsPreserveEquivalence(t *testing.T) {
	mk := func(f func(*genbench.Recipe)) genbench.Recipe {
		r := genbench.Recipe{Name: "b", Seed: 33, CaseSelBits: [2]int{3, 3}, DataWidth: 4, PmuxFraction: 0.5}
		f(&r)
		return r
	}
	classes := map[string]genbench.Recipe{
		"dep":  mk(func(r *genbench.Recipe) { r.DepBlocks = 10 }),
		"case": mk(func(r *genbench.Recipe) { r.CaseBlocks = 8 }),
		"red":  mk(func(r *genbench.Recipe) { r.RedundantBlocks = 8 }),
		"mix":  mk(func(r *genbench.Recipe) { r.PlainBlocks = 5; r.RedundantBlocks = 5; r.DepBlocks = 10; r.CaseBlocks = 4 }),
	}
	walkerOnly := func() opt.Pass {
		return &SatMuxPass{Opts: SatMuxOptions{DisableInference: true, DisableSAT: true}}
	}
	passSets := map[string]func() []opt.Pass{
		"walker_only":  func() []opt.Pass { return []opt.Pass{walkerOnly()} },
		"walker_clean": func() []opt.Pass { return []opt.Pass{walkerOnly(), opt.CleanPass{}} },
		"satmux_clean": func() []opt.Pass { return []opt.Pass{&SatMuxPass{}, opt.ExprPass{}, opt.CleanPass{}} },
		"rebuild":      func() []opt.Pass { return []opt.Pass{&RebuildPass{}, opt.CleanPass{}} },
		"full":         func() []opt.Pass { return []opt.Pass{&SmartlyPass{}, opt.ExprPass{}, opt.CleanPass{}} },
	}
	for cname, r := range classes {
		for pname, mkPasses := range passSets {
			m := genbench.Generate(r, 1)
			orig := m.Clone()
			if _, err := opt.RunScript(nil, m, mkPasses()...); err != nil {
				t.Fatalf("%s/%s: %v", cname, pname, err)
			}
			if err := cec.Check(orig, m, nil); err != nil {
				t.Errorf("%s/%s: %v", cname, pname, err)
			}
		}
	}
}
