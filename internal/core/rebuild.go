package core

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// RebuildOptions tunes the muxtree restructuring (paper Algorithm 1).
type RebuildOptions struct {
	// MaxSelectorBits skips trees whose collected selector is wider
	// than this (default 24).
	MaxSelectorBits int
	// MaxPatterns skips trees with more than this many rows
	// (default 512).
	MaxPatterns int
	// Force rebuilds every eligible tree regardless of the cost model
	// (for tests and ablations; the paper notes this "may even
	// deteriorate the circuit").
	Force bool
}

func (o RebuildOptions) withDefaults() RebuildOptions {
	if o.MaxSelectorBits == 0 {
		o.MaxSelectorBits = 24
	}
	if o.MaxPatterns == 0 {
		o.MaxPatterns = 512
	}
	return o
}

// RebuildStats counts restructuring activity.
type RebuildStats struct {
	TreesExamined   int
	TreesEligible   int
	TreesRebuilt    int
	MuxesRemoved    int
	MuxesAdded      int
	EqGatesBypassed int
}

// String renders the counters.
func (s RebuildStats) String() string {
	return fmt.Sprintf("examined=%d eligible=%d rebuilt=%d muxes=%d->%d eqs=%d",
		s.TreesExamined, s.TreesEligible, s.TreesRebuilt, s.MuxesRemoved, s.MuxesAdded, s.EqGatesBypassed)
}

// cube is a partial selector assignment: bit -> required value.
type cube map[rtlil.SigBit]rtlil.State

func (c cube) clone() cube {
	out := make(cube, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// restrict merges other into c; the second result is false on conflict
// (the row is unreachable).
func (c cube) restrict(other cube) (cube, bool) {
	out := c.clone()
	for k, v := range other {
		if old, ok := out[k]; ok && old != v {
			return nil, false
		}
		out[k] = v
	}
	return out, true
}

// row is one priority table row: when the cube matches, the tree yields
// the data signal.
type row struct {
	when cube
	data rtlil.SigSpec
}

// treeInfo is the analysis result for one muxtree.
type treeInfo struct {
	root     *rtlil.Cell
	cells    []*rtlil.Cell // all mux cells of the tree
	ctrlSrcs []*rtlil.Cell // eq/logic_not cells driving tree controls
	rows     []row
	selBits  []rtlil.SigBit
	width    int
}

// RebuildPass implements paper §III: it identifies case-statement
// muxtrees (every control an equality test of one selector signal),
// re-expresses them as a priority pattern table, builds an ADD with the
// greedy heuristic, applies the cost check of Algorithm 1, and re-emits
// the tree as muxes over the selector bits. Disconnected comparison
// gates are left for opt_clean (RemoveUnusedCell in the paper).
type RebuildPass struct {
	Opts RebuildOptions
	// LastStats holds the counters of the most recent Run.
	LastStats RebuildStats
}

// Name implements opt.Pass.
func (p *RebuildPass) Name() string { return "smartly_rebuild" }

// Run implements opt.Pass.
func (p *RebuildPass) Run(ec *opt.Ctx, m *rtlil.Module) (opt.Result, error) {
	o := p.Opts.withDefaults()
	p.LastStats = RebuildStats{}
	res := resultShim()

	ix := rtlil.NewIndex(m)

	// Visit muxes top-down (roots first, then down the tree edges) so
	// the largest eligible tree wins; an ineligible tree still gives
	// its subtrees a chance — a case chain buried under unrelated
	// muxes is found at its own head.
	var order []*rtlil.Cell
	inOrder := map[*rtlil.Cell]bool{}
	var descend func(c *rtlil.Cell)
	descend = func(c *rtlil.Cell) {
		if inOrder[c] {
			return
		}
		inOrder[c] = true
		order = append(order, c)
		ports := []rtlil.SigSpec{c.Port("A")}
		if c.Type == rtlil.CellMux {
			ports = append(ports, c.Port("B"))
		} else {
			for i := 0; i < c.Param("S_WIDTH"); i++ {
				ports = append(ports, c.PmuxWord(i))
			}
		}
		for _, sig := range ports {
			if child := opt.TreeChild(ix, sig); child != nil {
				descend(child)
			}
		}
	}
	for _, c := range append([]*rtlil.Cell(nil), m.Cells()...) {
		if (c.Type == rtlil.CellMux || c.Type == rtlil.CellPmux) && opt.IsMuxRoot(ix, c) {
			descend(c)
		}
	}

	consumed := map[*rtlil.Cell]bool{}
	for _, c := range order {
		if err := ec.Err(); err != nil {
			return res, err
		}
		if consumed[c] {
			continue
		}
		p.LastStats.TreesExamined++
		info := p.analyzeTree(ix, c, o, consumed)
		if info == nil {
			continue
		}
		p.LastStats.TreesEligible++
		if p.rebuildTree(m, ix, info, o) {
			p.LastStats.TreesRebuilt++
			for _, tc := range info.cells {
				consumed[tc] = true
			}
			res.Changed = true
			res.Details["trees_rebuilt"]++
		}
	}
	return res, nil
}

func resultShim() opt.Result {
	return opt.Result{Details: map[string]int{}}
}

// analyzeTree checks the Algorithm 1 line-2 conditions (OnlyEq and
// SingleCtrl) and flattens the tree into a priority row table. Cells in
// consumed (already rebuilt this run) are treated as leaves.
func (p *RebuildPass) analyzeTree(ix *rtlil.Index, root *rtlil.Cell, o RebuildOptions, consumed map[*rtlil.Cell]bool) *treeInfo {
	info := &treeInfo{root: root, width: len(root.Port("Y"))}
	var selectorWire *rtlil.Wire
	ok := true

	// condOf derives the cube under which a control bit is 1.
	condOf := func(ctrl rtlil.SigBit) (cube, *rtlil.Cell) {
		ctrl = ix.MapBit(ctrl)
		if ctrl.IsConst() {
			return nil, nil
		}
		d := ix.DriverCell(ctrl)
		if d == nil {
			// A raw selector bit used directly as control.
			return cube{ctrl: rtlil.S1}, nil
		}
		switch d.Type {
		case rtlil.CellEq:
			a, b := ix.Map(d.Port("A")), ix.Map(d.Port("B"))
			if !a.IsFullyConst() && b.IsFullyConst() {
				return cubeFromEq(a, b), d
			}
			if a.IsFullyConst() && !b.IsFullyConst() {
				return cubeFromEq(b, a), d
			}
		case rtlil.CellLogicNot:
			a := ix.Map(d.Port("A"))
			if !a.HasConst() {
				c := cube{}
				for _, bit := range a {
					if old, dup := c[bit]; dup && old != rtlil.S0 {
						return nil, nil
					}
					c[bit] = rtlil.S0
				}
				return c, d
			}
		}
		return nil, nil
	}

	checkSelector := func(c cube) bool {
		for bit := range c {
			if bit.Wire == nil {
				return false
			}
			if selectorWire == nil {
				selectorWire = bit.Wire
			} else if selectorWire != bit.Wire {
				return false // SingleCtrl violated
			}
		}
		return true
	}

	// cellConds derives the branch cubes of a mux/pmux cell, or nil if
	// any control fails the OnlyEq / SingleCtrl conditions.
	cellConds := func(c *rtlil.Cell) ([]cube, []*rtlil.Cell) {
		var ctrls rtlil.SigSpec
		if c.Type == rtlil.CellMux {
			ctrls = c.Port("S")
		} else {
			ctrls = c.Port("S")
		}
		conds := make([]cube, len(ctrls))
		var srcs []*rtlil.Cell
		for i, bit := range ctrls {
			cnd, src := condOf(bit)
			if cnd == nil || !checkSelector(cnd) {
				return nil, nil
			}
			conds[i] = cnd
			if src != nil {
				srcs = append(srcs, src)
			}
		}
		return conds, srcs
	}

	// flatten produces the priority rows of a tree-edge signal. A child
	// whose controls are not eq-cubes on the selector becomes an opaque
	// leaf (its subtree is left untouched and may be rebuilt on its
	// own later).
	var flatten func(sig rtlil.SigSpec, guard cube) []row
	flatten = func(sig rtlil.SigSpec, guard cube) []row {
		if !ok {
			return nil
		}
		child := opt.TreeChild(ix, sig)
		if child == nil || consumed[child] {
			return []row{{when: guard, data: ix.Map(sig)}}
		}
		conds, srcs := cellConds(child)
		if conds == nil {
			return []row{{when: guard, data: ix.Map(sig)}}
		}
		info.cells = append(info.cells, child)
		info.ctrlSrcs = append(info.ctrlSrcs, srcs...)
		var rows []row
		branch := func(cnd cube, data rtlil.SigSpec) []row {
			g, feasible := guard.restrict(cnd)
			if !feasible {
				return nil // branch unreachable under the guard
			}
			return flatten(data, g)
		}
		switch child.Type {
		case rtlil.CellMux:
			rows = append(rows, branch(conds[0], child.Port("B"))...)
			rows = append(rows, flatten(child.Port("A"), guard)...)
		case rtlil.CellPmux:
			sw := child.Param("S_WIDTH")
			// Ascending priority: the highest-index word wins, so it
			// comes first in the priority table.
			for i := sw - 1; i >= 0; i-- {
				rows = append(rows, branch(conds[i], child.PmuxWord(i))...)
			}
			rows = append(rows, flatten(child.Port("A"), guard)...)
		}
		return rows
	}

	// The root cell itself must be eligible, otherwise there is no tree.
	conds, srcs := cellConds(root)
	if conds == nil {
		return nil
	}
	info.cells = append(info.cells, root)
	info.ctrlSrcs = append(info.ctrlSrcs, srcs...)
	var rows []row
	switch root.Type {
	case rtlil.CellMux:
		if g, feasible := (cube{}).restrict(conds[0]); feasible {
			rows = append(rows, flatten(root.Port("B"), g)...)
		}
		rows = append(rows, flatten(root.Port("A"), cube{})...)
	case rtlil.CellPmux:
		sw := root.Param("S_WIDTH")
		for i := sw - 1; i >= 0; i-- {
			if g, feasible := (cube{}).restrict(conds[i]); feasible {
				rows = append(rows, flatten(root.PmuxWord(i), g)...)
			}
		}
		rows = append(rows, flatten(root.Port("A"), cube{})...)
	}
	if !ok || len(rows) == 0 || len(rows) > o.MaxPatterns {
		return nil
	}
	if len(info.cells) < 2 && root.Type == rtlil.CellMux {
		return nil // single plain mux: nothing to gain
	}

	// Collect selector bits across all rows, deterministically ordered.
	bitSet := map[rtlil.SigBit]bool{}
	for _, r := range rows {
		for b := range r.when {
			bitSet[b] = true
		}
	}
	if len(bitSet) == 0 || len(bitSet) > o.MaxSelectorBits {
		return nil
	}
	for b := range bitSet {
		info.selBits = append(info.selBits, b)
	}
	sort.Slice(info.selBits, func(i, j int) bool {
		bi, bj := info.selBits[i], info.selBits[j]
		if bi.Wire.Name != bj.Wire.Name {
			return bi.Wire.Name < bj.Wire.Name
		}
		return bi.Offset < bj.Offset
	})
	info.rows = rows
	return info
}

func cubeFromEq(sig, konst rtlil.SigSpec) cube {
	c := cube{}
	for i, b := range sig {
		if b.IsConst() {
			return nil
		}
		v := konst[i].Const
		if v != rtlil.S0 && v != rtlil.S1 {
			return nil
		}
		if old, dup := c[b]; dup && old != v {
			return nil
		}
		c[b] = v
	}
	return c
}

// rebuildTree runs the greedy ADD construction, the cost check, and the
// physical rewrite.
func (p *RebuildPass) rebuildTree(m *rtlil.Module, ix *rtlil.Index, info *treeInfo, o RebuildOptions) bool {
	varIdx := map[rtlil.SigBit]int{}
	for i, b := range info.selBits {
		varIdx[b] = i
	}
	// Terminals: deduplicate data words.
	termID := map[string]int{}
	var termSigs []rtlil.SigSpec
	patterns := make([]bdd.Pattern, 0, len(info.rows))
	for _, r := range info.rows {
		key := r.data.String()
		id, ok := termID[key]
		if !ok {
			id = len(termSigs)
			termID[key] = id
			termSigs = append(termSigs, r.data)
		}
		bits := make([]bdd.PatBit, len(info.selBits))
		for i := range bits {
			bits[i] = bdd.Any
		}
		for b, v := range r.when {
			if v == rtlil.S1 {
				bits[varIdx[b]] = bdd.One
			} else {
				bits[varIdx[b]] = bdd.Zero
			}
		}
		patterns = append(patterns, bdd.Pattern{Bits: bits, Term: id})
	}

	add := bdd.BuildGreedy(patterns, len(info.selBits))

	// Cost model (Algorithm 1's Check): compare AND-node estimates.
	// A W-bit mux costs ~3W AND nodes; an eq-against-constant of width
	// k costs ~k-1. Comparison gates count only if the tree is their
	// sole fanout (otherwise they survive the rewrite).
	w := info.width
	before := 0
	for _, c := range info.cells {
		branches := 1
		if c.Type == rtlil.CellPmux {
			branches = c.Param("S_WIDTH")
		}
		before += 3 * w * branches
	}
	removableEqs := 0
	seenSrc := map[*rtlil.Cell]bool{}
	for _, src := range info.ctrlSrcs {
		if seenSrc[src] {
			continue
		}
		seenSrc[src] = true
		solo := true
		for _, b := range ix.Map(src.Port("Y")) {
			if ix.FanoutCount(b) != 1 {
				solo = false
			}
		}
		if solo {
			removableEqs++
			before += len(src.Port("A")) - 1
			if len(src.Port("A")) == 1 {
				before++
			}
		}
	}
	after := 3 * w * add.CountNodes()
	if !o.Force && after >= before {
		return false
	}

	// Physical rewrite: emit the ADD as muxes on the selector bits.
	built := map[*bdd.Node]rtlil.SigSpec{}
	var emit func(n *bdd.Node) rtlil.SigSpec
	emit = func(n *bdd.Node) rtlil.SigSpec {
		if sig, ok := built[n]; ok {
			return sig
		}
		var sig rtlil.SigSpec
		if n.IsLeaf() {
			sig = termSigs[n.Term]
		} else {
			lo := emit(n.Lo)
			hi := emit(n.Hi)
			sig = m.Mux(lo, hi, rtlil.SigSpec{info.selBits[n.Var]})
			p.LastStats.MuxesAdded++
		}
		built[n] = sig
		return sig
	}
	newOut := emit(add)

	y := info.root.Port("Y")
	for _, c := range info.cells {
		m.RemoveCell(c)
		p.LastStats.MuxesRemoved++
	}
	m.Connect(y, newOut.Resize(len(y), false))
	p.LastStats.EqGatesBypassed += removableEqs
	return true
}
