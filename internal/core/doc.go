// Package core implements the smaRTLy paper's two contributions on top
// of the substrate packages:
//
//   - SAT-based redundancy elimination (paper §II): a muxtree traversal
//     whose control-value oracle extracts a connectivity-filtered
//     sub-graph (internal/subgraph), applies inference rules
//     (internal/infer), and falls back to exhaustive simulation
//     (internal/sim) or a CDCL SAT solver (internal/sat, via
//     internal/aig CNF encoding) to prove controls constant along the
//     path. SatMuxPass; options in SatMuxOptions.
//   - Muxtree restructuring (paper §III): case-statement muxtrees whose
//     controls compare a single selector against constants are rebuilt
//     from an Algebraic Decision Diagram (internal/bdd) with the greedy
//     terminal-type-minimizing heuristic, deleting the comparison
//     gates. RebuildPass; options in RebuildOptions.
//
// The combined SmartlyPass replaces Yosys' opt_muxtree, exactly as in
// the paper's evaluation.
//
// At init, this package registers the passes in the internal/opt flow
// registry under the script names "satmux", "rebuild" and "smartly"
// (with typed option tables: satmux(conflicts=64, inference=false),
// ...), and registers the paper's four pipelines as named flows:
//
//	yosys    fixpoint { opt_expr; opt_muxtree; opt_clean }
//	sat      fixpoint { opt_expr; satmux; opt_clean }
//	rebuild  fixpoint { opt_expr; opt_muxtree; rebuild; opt_clean }
//	full     fixpoint { opt_expr; smartly; opt_clean }
//
// Importing this package (directly, or via the repro facade or
// internal/harness) is what populates the registry.
package core
