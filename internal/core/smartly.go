package core

import (
	"repro/internal/egraph"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// SmartlyPass is the full smaRTLy optimization: SAT-based redundancy
// elimination followed by muxtree restructuring. The paper observes the
// two "work together to reduce more areas" (restructuring shortens trees
// and simplifies control ports, shrinking the sub-graphs the SAT stage
// sees), so the combination is iterated.
type SmartlyPass struct {
	SatOpts     SatMuxOptions
	RebuildOpts RebuildOptions

	satmux  SatMuxPass
	rebuild RebuildPass
}

// Name implements opt.Pass.
func (p *SmartlyPass) Name() string { return "smartly" }

// Composite implements opt.Composite: the satmux and rebuild children
// run through a nested RunScript and report their own counters, so the
// wrapper must not be double-counted in the run report.
func (p *SmartlyPass) Composite() {}

// Run implements opt.Pass. The child pass instances persist across Run
// calls (their Run methods reset their own counters): the satmux child's
// cone cache then carries SAT encodings and live solvers across the
// outer fixpoint iterations of the full pipeline.
func (p *SmartlyPass) Run(c *opt.Ctx, m *rtlil.Module) (opt.Result, error) {
	p.satmux.Opts = p.SatOpts
	p.rebuild.Opts = p.RebuildOpts
	return opt.RunScript(c, m, &p.satmux, &p.rebuild)
}

// SatStats returns the redundancy-elimination counters of the last Run.
func (p *SmartlyPass) SatStats() SatMuxStats { return p.satmux.LastStats }

// RebuildStats returns the restructuring counters of the last Run.
func (p *SmartlyPass) RebuildStats() RebuildStats { return p.rebuild.LastStats }

// The four pipelines evaluated in the paper's Tables II and III. Each is
// an opt_expr / muxtree-optimizer / opt_clean fixpoint; they differ only
// in which muxtree optimizer runs, exactly as the paper "replaced the
// opt_muxtree pass in Yosys with smaRTLy".

// PipelineYosys is the baseline: opt_expr; opt_muxtree; opt_clean.
func PipelineYosys() opt.Pass {
	return opt.Fixpoint(0, opt.ExprPass{}, opt.MuxtreePass{}, opt.CleanPass{})
}

// PipelineSAT runs only smaRTLy's SAT-based redundancy elimination
// (Table III column "SAT"). It subsumes the baseline muxtree pruning.
func PipelineSAT(o SatMuxOptions) opt.Pass {
	return opt.Fixpoint(0, opt.ExprPass{}, &SatMuxPass{Opts: o}, opt.CleanPass{})
}

// PipelineRebuild runs the baseline plus muxtree restructuring
// (Table III column "Rebuild").
func PipelineRebuild(o RebuildOptions) opt.Pass {
	return opt.Fixpoint(0, opt.ExprPass{}, opt.MuxtreePass{}, &RebuildPass{Opts: o}, opt.CleanPass{})
}

// PipelineDatapath runs only the verified e-graph datapath rewriting:
// opt_expr; opt_egraph; opt_clean. It targets arithmetic sharing the
// muxtree-centric passes never see.
func PipelineDatapath(eo egraph.Options) opt.Pass {
	return opt.Fixpoint(0, opt.ExprPass{}, &egraph.Pass{Opts: eo}, opt.CleanPass{})
}

// PipelineSeq runs the register-aware sequential sweep: opt_expr;
// opt_dff; opt_clean. Every register removal or merge is proven by the
// k-induction sequential equivalence check before it is applied.
func PipelineSeq(o opt.DffOptions) opt.Pass {
	return opt.Fixpoint(0, opt.ExprPass{}, &opt.DffPass{Opts: o}, opt.CleanPass{})
}

// PipelineFull runs the complete smaRTLy (Table II / Table III "Full")
// plus the verified e-graph datapath stage, which shares and simplifies
// the word-level arithmetic the muxtree passes leave untouched, and the
// induction-verified register sweep for sequential designs.
func PipelineFull(so SatMuxOptions, ro RebuildOptions) opt.Pass {
	return opt.Fixpoint(0, opt.ExprPass{}, &SmartlyPass{SatOpts: so, RebuildOpts: ro}, &egraph.Pass{}, &opt.DffPass{}, opt.CleanPass{})
}
