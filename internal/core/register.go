package core

import (
	"repro/internal/egraph"
	"repro/internal/opt"
)

// Script-level option tables for the smaRTLy passes. The keys are the
// names accepted in flow scripts ("satmux(conflicts=64)"); each maps
// onto one field of SatMuxOptions / RebuildOptions.
// The numeric options are Positive: their option-struct fields treat 0
// as "use the default", so an explicit zero would silently run the
// default budget — the bool switches (inference, sat) are the supported
// way to disable a stage.
var satMuxOptionSpecs = []opt.OptionSpec{
	{Key: "depth", Kind: opt.KindInt, Positive: true, Default: "6", Help: "sub-graph BFS radius k"},
	{Key: "cells", Kind: opt.KindInt, Positive: true, Default: "300", Help: "max cells kept per sub-graph"},
	{Key: "sim_inputs", Kind: opt.KindInt, Positive: true, Default: "11", Help: "exhaustive simulation up to this many inputs"},
	{Key: "sat_inputs", Kind: opt.KindInt, Positive: true, Default: "200", Help: "skip SAT above this many inputs"},
	{Key: "conflicts", Kind: opt.KindInt64, Positive: true, Default: "2000", Help: "CDCL conflict budget per query"},
	{Key: "cone_cache", Kind: opt.KindInt, Positive: true, Default: "256", Help: "cone encodings (and live solvers) retained by the incremental oracle"},
	{Key: "sim_rounds", Kind: opt.KindInt, Positive: true, Default: "4", Help: "64-vector simulation rounds per cone in the SAT pre-filter"},
	{Key: "inference", Kind: opt.KindBool, Default: "true", Help: "enable the Table I inference rules"},
	{Key: "sat", Kind: opt.KindBool, Default: "true", Help: "enable simulation/SAT queries"},
	{Key: "subgraph_filter", Kind: opt.KindBool, Default: "true", Help: "enable the Theorem II.1 pruning"},
	{Key: "incremental", Kind: opt.KindBool, Default: "true", Help: "reuse cone encodings and solvers across SAT queries (off: one solver per query)"},
	{Key: "sim_filter", Kind: opt.KindBool, Default: "true", Help: "64-lane random-simulation pre-filter in front of the SAT stage"},
	{Key: "portfolio", Kind: opt.KindBool, Default: "true", Help: "budgeted probe/retry solver portfolio with simulation-derived phase hints"},
}

var rebuildOptionSpecs = []opt.OptionSpec{
	{Key: "selector_bits", Kind: opt.KindInt, Positive: true, Default: "24", Help: "skip trees with wider selectors"},
	{Key: "patterns", Kind: opt.KindInt, Positive: true, Default: "512", Help: "skip trees with more pattern rows"},
	{Key: "force", Kind: opt.KindBool, Default: "false", Help: "rebuild every eligible tree, ignoring the cost model"},
}

// satMuxOptionsFromArgs translates validated script args into the typed
// option struct (zero fields fall through to withDefaults).
func satMuxOptionsFromArgs(a opt.Args) SatMuxOptions {
	return SatMuxOptions{
		SubgraphDepth:         a.Int("depth", 0),
		MaxSubgraphCells:      a.Int("cells", 0),
		SimInputLimit:         a.Int("sim_inputs", 0),
		SATInputLimit:         a.Int("sat_inputs", 0),
		MaxConflicts:          a.Int64("conflicts", 0),
		ConeCacheSize:         a.Int("cone_cache", 0),
		SimFilterRounds:       a.Int("sim_rounds", 0),
		DisableInference:      !a.Bool("inference", true),
		DisableSAT:            !a.Bool("sat", true),
		DisableSubgraphFilter: !a.Bool("subgraph_filter", true),
		DisableIncremental:    !a.Bool("incremental", true),
		DisableSimFilter:      !a.Bool("sim_filter", true),
		DisablePortfolio:      !a.Bool("portfolio", true),
	}
}

func rebuildOptionsFromArgs(a opt.Args) RebuildOptions {
	return RebuildOptions{
		MaxSelectorBits: a.Int("selector_bits", 0),
		MaxPatterns:     a.Int("patterns", 0),
		Force:           a.Bool("force", false),
	}
}

var egraphOptionSpecs = []opt.OptionSpec{
	{Key: "iters", Kind: opt.KindInt, Positive: true, Default: "8", Help: "equality-saturation iteration budget"},
	{Key: "node_limit", Kind: opt.KindInt, Positive: true, Default: "20000", Help: "e-graph size budget in nodes"},
	{Key: "rules", Kind: opt.KindString, Default: "all", Help: "rule groups: all, or a '+'-joined subset of arith, bitwise, shift, cmp, fold"},
	{Key: "verify", Kind: opt.KindBool, Default: "true", Help: "prove every rewritten cone with the cec miter before applying it"},
	{Key: "verify_conflicts", Kind: opt.KindInt64, Positive: true, Default: "100000", Help: "SAT conflict budget per proof; a blowout rejects the extraction"},
}

func egraphOptionsFromArgs(a opt.Args) egraph.Options {
	return egraph.Options{
		Iters:           a.Int("iters", 0),
		NodeLimit:       a.Int("node_limit", 0),
		Rules:           a.Str("rules", ""),
		DisableVerify:   !a.Bool("verify", true),
		VerifyConflicts: a.Int64("verify_conflicts", 0),
	}
}

// The smaRTLy passes and the paper's named pipelines, exposed to the
// flow registry. The named flows compile to exactly the pass structures
// of PipelineYosys/PipelineSAT/PipelineRebuild/PipelineFull, so legacy
// enum runs and script runs are bit-identical.
func init() {
	opt.Register(opt.PassSpec{
		Name:    "satmux",
		Summary: "SAT-based mux redundancy elimination (paper §II)",
		Options: satMuxOptionSpecs,
		Build: func(a opt.Args) (opt.Pass, error) {
			return &SatMuxPass{Opts: satMuxOptionsFromArgs(a)}, nil
		},
	})
	opt.Register(opt.PassSpec{
		Name:    "rebuild",
		Summary: "ADD-driven muxtree restructuring (paper §III)",
		Options: rebuildOptionSpecs,
		Build: func(a opt.Args) (opt.Pass, error) {
			return &RebuildPass{Opts: rebuildOptionsFromArgs(a)}, nil
		},
	})
	opt.Register(opt.PassSpec{
		Name:    "smartly",
		Summary: "full smaRTLy: SAT elimination + restructuring",
		Options: append(append([]opt.OptionSpec{}, satMuxOptionSpecs...), rebuildOptionSpecs...),
		Build: func(a opt.Args) (opt.Pass, error) {
			return &SmartlyPass{
				SatOpts:     satMuxOptionsFromArgs(a),
				RebuildOpts: rebuildOptionsFromArgs(a),
			}, nil
		},
	})

	opt.Register(opt.PassSpec{
		Name:    "opt_egraph",
		Summary: "verified e-graph datapath rewriting (equality saturation + CEC)",
		Options: egraphOptionSpecs,
		Build: func(a opt.Args) (opt.Pass, error) {
			return &egraph.Pass{Opts: egraphOptionsFromArgs(a)}, nil
		},
	})

	opt.RegisterFlow("yosys", "fixpoint { opt_expr; opt_muxtree; opt_clean }")
	opt.RegisterFlow("sat", "fixpoint { opt_expr; satmux; opt_clean }")
	opt.RegisterFlow("rebuild", "fixpoint { opt_expr; opt_muxtree; rebuild; opt_clean }")
	opt.RegisterFlow("datapath", "fixpoint { opt_expr; opt_egraph; opt_clean }")
	opt.RegisterFlow("seq", "fixpoint { opt_expr; opt_dff; opt_clean }")
	opt.RegisterFlow("full", "fixpoint { opt_expr; smartly; opt_egraph; opt_dff; opt_clean }")
}
