package core

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/genbench"
	"repro/internal/opt"
	"repro/internal/rtlil"
	"repro/internal/verilog"
)

// loadTestdataModules elaborates every module of every testdata/*.v case,
// keyed "file/module".
func loadTestdataModules(t *testing.T) map[string]*rtlil.Module {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.v"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no testdata cases: %v", err)
	}
	out := map[string]*rtlil.Module{}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := verilog.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		d, err := verilog.Elaborate(f)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, m := range d.Modules() {
			out[filepath.Base(path)+"/"+m.Name] = m
		}
	}
	return out
}

// nonIncremental derives the flow variant in which every SAT-capable
// pass runs the pre-incremental oracle (one solver per query).
func nonIncremental(t *testing.T, f *opt.Flow) *opt.Flow {
	t.Helper()
	f, err := f.WithArg("satmux", "incremental", "false")
	if err != nil {
		t.Fatal(err)
	}
	f, err = f.WithArg("smartly", "incremental", "false")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// decidedCounters strips the counters that may legitimately differ
// between the incremental and per-query-solver oracles (encoding and
// solver-lifetime bookkeeping, and the portfolio retry count, which
// depends on the learnt clauses a solver has accumulated), keeping
// every decided-bit outcome.
func decidedCounters(c map[string]int) map[string]int {
	out := map[string]int{}
	for k, v := range c {
		switch k {
		case "sat_encodings", "sat_encode_reuse", "sat_solver_reuse", "sat_learnt",
			"sat_evictions", "sat_portfolio_retries":
			continue
		}
		out[k] = v
	}
	return out
}

// TestIncrementalMatchesBaselineOnTestdata is the PR's acceptance bar:
// on every testdata case, every named flow must produce a bit-identical
// netlist and identical decided-bit counters whether the oracle reuses
// cone encodings and solvers or builds them per query.
func TestIncrementalMatchesBaselineOnTestdata(t *testing.T) {
	mods := loadTestdataModules(t)
	for _, name := range opt.FlowNames() {
		named, err := opt.NamedFlow(name)
		if err != nil {
			t.Fatal(err)
		}
		baseline := nonIncremental(t, named)
		for key, m := range mods {
			t.Run(name+"/"+key, func(t *testing.T) {
				mi, mb := m.Clone(), m.Clone()
				ci := opt.Background()
				if _, err := named.Run(ci, mi); err != nil {
					t.Fatal(err)
				}
				cb := opt.Background()
				if _, err := baseline.Run(cb, mb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(netlistJSON(t, mi), netlistJSON(t, mb)) {
					t.Errorf("netlists differ between incremental and per-query-solver oracles")
				}
				ri, rb := ci.Report(), cb.Report()
				pi, pb := (&ri).Pass("smartly_satmux"), (&rb).Pass("smartly_satmux")
				if (pi == nil) != (pb == nil) {
					t.Fatalf("satmux report presence differs: %v vs %v", pi, pb)
				}
				if pi == nil {
					return // flow has no SAT pass; netlist equality was the check
				}
				di, db := decidedCounters(pi.Counters), decidedCounters(pb.Counters)
				if !reflect.DeepEqual(di, db) {
					t.Errorf("decided-bit counters differ:\nincremental: %v\nbaseline:    %v", di, db)
				}
			})
		}
	}
}

// TestOracleCounterDeterminism asserts the full oracle counter set —
// including the new cache/solver-reuse counters — is bit-identical for
// -j 1/2/8 on the committed testdata cases, and that the decided-bit
// outcomes equal the pre-incremental oracle's.
func TestOracleCounterDeterminism(t *testing.T) {
	mods := loadTestdataModules(t)
	flow, err := opt.NamedFlow("sat")
	if err != nil {
		t.Fatal(err)
	}
	baseline := nonIncremental(t, flow)
	for key, m := range mods {
		run := func(f *opt.Flow, workers int) (map[string]int, []byte) {
			work := m.Clone()
			ec := opt.NewCtx(context.Background(), opt.Config{Workers: workers})
			if _, err := f.Run(ec, work); err != nil {
				t.Fatalf("%s workers=%d: %v", key, workers, err)
			}
			rep := ec.Report()
			p := rep.Pass("smartly_satmux")
			if p == nil {
				t.Fatalf("%s: no satmux report", key)
			}
			return p.Counters, netlistJSON(t, work)
		}
		seqCounters, seqJSON := run(flow, 1)
		for _, workers := range []int{2, 8} {
			c, j := run(flow, workers)
			if !reflect.DeepEqual(seqCounters, c) {
				t.Errorf("%s: counters differ between -j 1 and -j %d:\n%v\n%v", key, workers, seqCounters, c)
			}
			if !bytes.Equal(seqJSON, j) {
				t.Errorf("%s: netlist differs between -j 1 and -j %d", key, workers)
			}
		}
		baseCounters, _ := run(baseline, 1)
		if !reflect.DeepEqual(decidedCounters(seqCounters), decidedCounters(baseCounters)) {
			t.Errorf("%s: decided-bit counters differ from the pre-incremental oracle:\nincremental: %v\nbaseline:    %v",
				key, decidedCounters(seqCounters), decidedCounters(baseCounters))
		}
	}
}

// satRecipe generates enough wide-input selection logic that queries
// reach the SAT stage (sub-graphs above the exhaustive-simulation input
// limit).
var satRecipe = genbench.Recipe{
	Name: "satheavy", Seed: 17,
	DepBlocks: 10, CaseBlocks: 5, RedundantBlocks: 4,
	CaseSelBits: [2]int{3, 4}, DataWidth: 8, PmuxFraction: 0.7,
}

// TestConeCacheReuse: on a SAT-heavy workload the incremental oracle
// must actually reuse encodings and solvers, and the reuse must never
// change the outcome: the netlist equals the per-query-solver baseline's.
func TestConeCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("SAT-heavy; skipped under -short")
	}
	m := genbench.Generate(satRecipe, 0.5)
	mi, mb := m.Clone(), m.Clone()

	// SimInputLimit -1 sends every undecided query to SAT (the
	// ablation_test "sat_only" pattern) and DisableSimFilter keeps the
	// random-simulation pre-filter from deciding them first: the
	// committed workloads mostly fit exhaustive simulation, and this
	// test is about the SAT stage.
	inc := &SatMuxPass{Opts: SatMuxOptions{SimInputLimit: -1, DisableSimFilter: true}}
	if _, err := opt.RunScript(nil, mi, opt.ExprPass{}, inc, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	if inc.LastStats.SATCalls == 0 {
		t.Fatalf("workload never reached the SAT stage: %s", inc.LastStats)
	}
	if inc.LastStats.Encodings == 0 {
		t.Errorf("no cone encodings recorded: %s", inc.LastStats)
	}
	if inc.LastStats.EncodeReuse == 0 || inc.LastStats.SolverReuse == 0 {
		t.Errorf("incremental oracle never reused an encoding or solver: %s", inc.LastStats)
	}

	base := &SatMuxPass{Opts: SatMuxOptions{SimInputLimit: -1, DisableSimFilter: true, DisableIncremental: true}}
	if _, err := opt.RunScript(nil, mb, opt.ExprPass{}, base, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	if base.LastStats.EncodeReuse != 0 || base.LastStats.SolverReuse != 0 {
		t.Errorf("per-query-solver oracle reported reuse: %s", base.LastStats)
	}
	if !bytes.Equal(netlistJSON(t, mi), netlistJSON(t, mb)) {
		t.Error("incremental and per-query-solver netlists differ")
	}
	checkEquiv(t, m, mi)
}

// TestConeCacheCapacity: a capacity-1 cone cache must evict (the
// counter moves) and still produce the identical netlist — the cache is
// a pure performance structure.
func TestConeCacheCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("SAT-heavy; skipped under -short")
	}
	m := genbench.Generate(satRecipe, 0.5)
	mDefault, mTiny := m.Clone(), m.Clone()

	def := &SatMuxPass{Opts: SatMuxOptions{SimInputLimit: -1, DisableSimFilter: true}}
	if _, err := opt.RunScript(nil, mDefault, opt.ExprPass{}, def, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	tiny := &SatMuxPass{Opts: SatMuxOptions{SimInputLimit: -1, DisableSimFilter: true, ConeCacheSize: 1}}
	if _, err := opt.RunScript(nil, mTiny, opt.ExprPass{}, tiny, opt.CleanPass{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(netlistJSON(t, mDefault), netlistJSON(t, mTiny)) {
		t.Error("cone-cache capacity changed the netlist")
	}
	if def.LastStats.Encodings > 1 && tiny.LastStats.Evictions == 0 {
		t.Errorf("capacity-1 cache never evicted: %s", tiny.LastStats)
	}
}

// TestConeCacheLRUBound is the unit-level capacity contract: update
// never leaves more than cap entries and evicts the least recently
// used one.
func TestConeCacheLRUBound(t *testing.T) {
	cc := newConeCache(2)
	a, b, c := &coneEntry{}, &coneEntry{}, &coneEntry{}
	cc.update("a", a)
	cc.update("b", b)
	cc.update("a", a) // refresh a; b is now the oldest
	if n := cc.update("c", c); n != 1 {
		t.Fatalf("update evicted %d entries, want 1", n)
	}
	if cc.get("b") != nil {
		t.Error("LRU kept the least recently used entry")
	}
	if cc.get("a") != a || cc.get("c") != c {
		t.Error("LRU evicted a recently used entry")
	}
	if cc.update("c", nil); cc.get("c") != nil {
		t.Error("nil publish did not evict")
	}
}

// unmappableModule builds selection logic whose control cone contains a
// $div cell — recognized by the cell library and the simulator, but
// deliberately not AIG-mappable — wide enough that the query must go to
// SAT rather than exhaustive simulation.
func unmappableModule(t *testing.T) *rtlil.Module {
	t.Helper()
	m := rtlil.NewModule("unmappable")
	a := m.AddInput("a", 8).Bits()
	b := m.AddInput("b", 8).Bits()
	q := m.NewWireHint("q", 8)
	m.AddBinary(rtlil.CellDiv, "div0", a, b, q.Bits())
	// Control: |q & (a != b) — the cone includes the divider and 16 free
	// input bits, above the default SimInputLimit of 11.
	anyQ := m.ReduceOr(q.Bits())
	ne := m.Ne(a, b)
	ctrl := m.And(anyQ, ne)
	// A muxtree the walker will query: the inner mux shares the control,
	// so the path fact makes the inner control's value decidable — if the
	// cone were mappable.
	d0 := m.AddInput("d0", 4).Bits()
	d1 := m.AddInput("d1", 4).Bits()
	inner := m.NewWireHint("inner", 4)
	m.AddMux("m_in", d0, d1, ctrl, inner.Bits())
	y := m.AddOutput("y", 4)
	m.AddMux("m_out", d1, inner.Bits(), ctrl, y.Bits())
	if err := m.Validate(); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	return m
}

// TestMapFailuresCounted: a cone containing an unmappable cell must be
// counted (once per abandoned SAT query), must not crash or decide the
// queried bit, and must behave identically with the incremental oracle
// on and off. (cec cannot miter $div either, so the soundness assertion
// here is structural: the undecidable root mux survives.)
func TestMapFailuresCounted(t *testing.T) {
	var stats []SatMuxStats
	for _, disable := range []bool{false, true} {
		m := unmappableModule(t)
		pass := &SatMuxPass{Opts: SatMuxOptions{DisableIncremental: disable}}
		if _, err := opt.RunScript(nil, m, pass); err != nil {
			t.Fatal(err)
		}
		st := pass.LastStats
		stats = append(stats, st)
		if st.MapFailures == 0 {
			t.Errorf("incremental=%v: unmappable cone not counted: %s", !disable, st)
		}
		if st.SATHits != 0 {
			t.Errorf("incremental=%v: SAT decided a bit through an unmappable cone: %s", !disable, st)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("incremental=%v: module invalid after pass: %v", !disable, err)
		}
		root := false
		for _, c := range m.Cells() {
			if c.Name == "m_out" {
				root = true
			}
		}
		if !root {
			t.Errorf("incremental=%v: root mux with undecidable control was removed", !disable)
		}
	}
	if stats[0] != stats[1] {
		t.Errorf("map-failure accounting differs between oracles:\nincremental: %s\nbaseline:    %s", stats[0], stats[1])
	}
}
