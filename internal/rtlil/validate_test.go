package rtlil

import (
	"strings"
	"testing"
)

func validModule() *Module {
	m := NewModule("m")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 4).Bits()
	m.AddMux("mx", a, b, s, y)
	return m
}

func TestValidateOK(t *testing.T) {
	if err := validModule().Validate(); err != nil {
		t.Fatalf("valid module rejected: %v", err)
	}
}

func TestValidateUnknownCellType(t *testing.T) {
	m := validModule()
	c := m.AddCell("bad", "$frob")
	c.Conn["A"] = Const(0, 1)
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown type") {
		t.Errorf("got %v", err)
	}
}

func TestValidateMissingPort(t *testing.T) {
	m := NewModule("m")
	c := m.AddCell("g", CellAnd)
	c.Conn["A"] = Const(0, 1)
	c.Conn["Y"] = m.AddWire("y", 1).Bits()
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "missing input port B") {
		t.Errorf("got %v", err)
	}
}

func TestValidateWidthParamMismatch(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 2).Bits()
	y := m.AddWire("y", 2).Bits()
	c := m.AddUnary(CellNot, "g", a, y)
	c.Params["A_WIDTH"] = 3 // corrupt
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "A_WIDTH") {
		t.Errorf("got %v", err)
	}
}

func TestValidateMultipleDrivers(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 1).Bits()
	y := m.AddOutput("y", 1).Bits()
	m.AddUnary(CellNot, "g1", a, y)
	m.AddUnary(CellNot, "g2", a, y)
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "driven by both") {
		t.Errorf("got %v", err)
	}
}

func TestValidateForeignWire(t *testing.T) {
	m := NewModule("m")
	other := NewModule("other")
	fw := other.AddWire("fw", 1)
	y := m.AddWire("y", 1).Bits()
	m.AddUnary(CellNot, "g", fw.Bits(), y)
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "not in module") {
		t.Errorf("got %v", err)
	}
}

func TestValidateConstDriven(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 1).Bits()
	m.AddUnary(CellNot, "g", a, Const(0, 1))
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "constant") {
		t.Errorf("got %v", err)
	}
}

func TestValidateOffsetOutOfRange(t *testing.T) {
	m := NewModule("m")
	w := m.AddWire("w", 2)
	y := m.AddWire("y", 1).Bits()
	bad := SigSpec{{Wire: w, Offset: 5}}
	m.AddUnary(CellNot, "g", bad, y)
	err := m.Validate()
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("got %v", err)
	}
}

func TestValidatePmuxWidths(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 4).Bits()
	s := m.AddInput("s", 2).Bits()
	y := m.AddOutput("y", 2).Bits()
	c := m.AddCell("p", CellPmux)
	c.Params["WIDTH"] = 2
	c.Params["S_WIDTH"] = 2
	c.Conn["A"] = a
	c.Conn["B"] = b // 4 bits, ok: WIDTH*S_WIDTH = 4
	c.Conn["S"] = s
	c.Conn["Y"] = y
	if err := m.Validate(); err != nil {
		t.Fatalf("valid pmux rejected: %v", err)
	}
	c.Params["S_WIDTH"] = 3
	if err := m.Validate(); err == nil {
		t.Error("pmux S_WIDTH mismatch not caught")
	}
}

func TestValidateConnectionMismatch(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 2)
	b := m.AddWire("b", 2)
	m.Conns = append(m.Conns, Connection{LHS: a.Bits(), RHS: b.Bits().Extract(0, 1)})
	if err := m.Validate(); err == nil {
		t.Error("connection width mismatch not caught")
	}
}

func TestCollectStats(t *testing.T) {
	m := validModule()
	s := CollectStats(m)
	if s.NumCells != 1 || s.NumMuxes != 1 || s.ByType[CellMux] != 1 {
		t.Errorf("stats: %+v", s)
	}
	if s.NumInputs != 3 || s.NumOutput != 1 {
		t.Errorf("port counts: %+v", s)
	}
	if !strings.Contains(s.String(), "$mux") {
		t.Error("String() missing cell type")
	}
}
