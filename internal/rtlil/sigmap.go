package rtlil

// SigMap resolves signal aliases introduced by module-level connections,
// mapping every bit to a canonical representative, like Yosys' SigMap.
// Constants always win as representatives; between wires, the wire created
// earlier (lower position in the module wire order at construction time)
// is preferred so that mapping is deterministic.
type SigMap struct {
	parent map[SigBit]SigBit
	rank   map[SigBit]int
	frozen bool
}

// NewSigMap builds a SigMap from the module's connection list. A nil
// module yields an empty (identity) map.
func NewSigMap(m *Module) *SigMap {
	sm := &SigMap{parent: map[SigBit]SigBit{}, rank: map[SigBit]int{}}
	if m == nil {
		return sm
	}
	// Assign deterministic ranks: constants rank -1 (always preferred),
	// wires ranked by insertion order.
	for i, w := range m.wireOrder {
		for off := 0; off < w.Width; off++ {
			sm.rank[SigBit{Wire: w, Offset: off}] = i
		}
	}
	for _, cn := range m.Conns {
		sm.Add(cn.LHS, cn.RHS)
	}
	return sm
}

func (sm *SigMap) find(b SigBit) SigBit {
	p, ok := sm.parent[b]
	if !ok || p == b {
		return b
	}
	if sm.frozen {
		return p // fully compressed by Freeze: one hop, no writes
	}
	root := sm.find(p)
	sm.parent[b] = root
	return root
}

// Freeze fully path-compresses the map and switches lookups to pure
// reads, making Bit and Map safe for concurrent use (the parallel
// SAT-mux queries share one frozen Index). Add panics afterwards.
func (sm *SigMap) Freeze() {
	for b := range sm.parent {
		sm.parent[b] = sm.find(b)
	}
	sm.frozen = true
}

func (sm *SigMap) better(a, b SigBit) bool {
	// Is a a better representative than b?
	if a.IsConst() != b.IsConst() {
		return a.IsConst()
	}
	if a.IsConst() {
		return true // both const: arbitrary, keep a
	}
	ra, okA := sm.rank[a]
	rb, okB := sm.rank[b]
	if okA && okB && ra != rb {
		return ra < rb
	}
	if a.Wire.Name != b.Wire.Name {
		return a.Wire.Name < b.Wire.Name
	}
	return a.Offset < b.Offset
}

// Add records that the bits of a and b are connected (a is driven by b).
// Widths must match.
func (sm *SigMap) Add(a, b SigSpec) {
	if sm.frozen {
		panic("rtlil: SigMap.Add on frozen map")
	}
	if len(a) != len(b) {
		panic("rtlil: SigMap.Add width mismatch")
	}
	for i := range a {
		ra, rb := sm.find(a[i]), sm.find(b[i])
		if ra == rb {
			continue
		}
		if sm.better(rb, ra) {
			sm.parent[ra] = rb
		} else {
			sm.parent[rb] = ra
		}
	}
}

// Bit returns the canonical representative of b.
func (sm *SigMap) Bit(b SigBit) SigBit { return sm.find(b) }

// Map returns the signal with every bit replaced by its canonical
// representative.
func (sm *SigMap) Map(s SigSpec) SigSpec {
	out := make(SigSpec, len(s))
	for i, b := range s {
		out[i] = sm.find(b)
	}
	return out
}
