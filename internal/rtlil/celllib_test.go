package rtlil

import "testing"

func TestCellSpecTables(t *testing.T) {
	all := []CellType{
		CellNot, CellNeg, CellReduceAnd, CellReduceOr, CellReduceXor, CellLogicNot,
		CellAnd, CellOr, CellXor, CellXnor, CellAdd, CellSub, CellMul,
		CellEq, CellNe, CellLt, CellLe, CellGt, CellGe,
		CellLogicAnd, CellLogicOr, CellShl, CellShr,
		CellMux, CellPmux, CellDff,
	}
	for _, ct := range all {
		if !KnownCellType(ct) {
			t.Errorf("%s not known", ct)
		}
		if len(OutputPorts(ct)) != 1 {
			t.Errorf("%s should have exactly one output", ct)
		}
		if len(InputPorts(ct)) == 0 {
			t.Errorf("%s has no inputs", ct)
		}
	}
	if KnownCellType("$bogus") {
		t.Error("$bogus reported known")
	}
}

func TestIsPredicates(t *testing.T) {
	if !IsUnary(CellNot) || IsUnary(CellAnd) {
		t.Error("IsUnary wrong")
	}
	if !IsBinary(CellEq) || IsBinary(CellMux) {
		t.Error("IsBinary wrong")
	}
	if !IsCompare(CellLt) || IsCompare(CellAnd) {
		t.Error("IsCompare wrong")
	}
	if !IsSequential(CellDff) || IsSequential(CellMux) {
		t.Error("IsSequential wrong")
	}
}

func TestPortDirections(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 1).Bits()
	b := m.AddInput("b", 1).Bits()
	y := m.AddOutput("y", 1).Bits()
	c := m.AddBinary(CellAnd, "g", a, b, y)
	if !c.IsInputPort("A") || !c.IsInputPort("B") || c.IsInputPort("Y") {
		t.Error("input port classification wrong")
	}
	if !c.IsOutputPort("Y") || c.IsOutputPort("A") {
		t.Error("output port classification wrong")
	}
	if c.IsInputPort("Z") || c.IsOutputPort("Z") {
		t.Error("unknown port classified")
	}
}

func TestBuildersProduceValidModule(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	s := m.AddInput("s", 1).Bits()

	exprs := []SigSpec{
		m.Not(a), m.Neg(a),
		m.ReduceAnd(a), m.ReduceOr(a), m.ReduceXor(a), m.LogicNot(a),
		m.And(a, b), m.Or(a, b), m.Xor(a, b), m.Xnor(a, b),
		m.AddOp(a, b), m.SubOp(a, b), m.MulOp(a, b),
		m.Eq(a, b), m.Ne(a, b), m.Lt(a, b), m.Le(a, b), m.Gt(a, b), m.Ge(a, b),
		m.LogicAnd(a, b), m.LogicOr(a, b),
		m.Shl(a, b), m.Shr(a, b),
		m.Mux(a, b, s),
		m.Pmux(a, []SigSpec{b, m.Not(a)}, m.AddInput("sel2", 2).Bits()),
	}
	for i, e := range exprs {
		if e.Width() == 0 {
			t.Errorf("expr %d has zero width", i)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("builder-produced module invalid: %v", err)
	}
}

func TestBuilderWidthExtension(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 6).Bits()
	y := m.And(a, b)
	if y.Width() != 6 {
		t.Errorf("And of 2- and 6-bit = %d bits, want 6", y.Width())
	}
	e := m.Eq(a, b)
	if e.Width() != 1 {
		t.Errorf("Eq width = %d", e.Width())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddMuxPanics(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 2).Bits()
	b := m.AddWire("b", 3).Bits()
	s := m.AddWire("s", 1).Bits()
	y := m.AddWire("y", 2).Bits()
	defer func() {
		if recover() == nil {
			t.Error("AddMux width mismatch did not panic")
		}
	}()
	m.AddMux("", a, b, s, y)
}

func TestAddPmuxPanics(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 2).Bits()
	b := m.AddWire("b", 2).Bits()
	s := m.AddWire("s", 2).Bits() // 2 select bits but 1 word
	y := m.AddWire("y", 2).Bits()
	defer func() {
		if recover() == nil {
			t.Error("AddPmux select/word mismatch did not panic")
		}
	}()
	m.AddPmux("", a, []SigSpec{b}, s, y)
}

func TestAddDff(t *testing.T) {
	m := NewModule("m")
	clk := m.AddInput("clk", 1).Bits()
	d := m.AddInput("d", 8).Bits()
	q := m.AddOutput("q", 8).Bits()
	c := m.AddDff("ff", clk, d, q)
	if c.Param("WIDTH") != 8 {
		t.Errorf("WIDTH = %d", c.Param("WIDTH"))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
