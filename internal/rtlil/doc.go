// Package rtlil implements a word-level register-transfer-level
// netlist intermediate representation modeled after Yosys RTLIL.
//
// # Model
//
// A Design holds Modules; a Module holds Wires (multi-bit nets), Cells
// (word-level logic operators such as $mux, $eq, $and) and direct
// connections between signals. Signals are SigSpec values: ordered
// slices of SigBit, where each bit is either one bit of a Wire or a
// four-state constant (State). The representation is deliberately
// close to Yosys so that the optimization passes in this repository
// (in particular the smaRTLy passes from the DAC'25 paper) transcribe
// one-to-one.
//
// # Supporting structures
//
// SigMap resolves connection aliases to canonical bits; Index is a
// frozen read-only driver/reader index safe to share across the
// engine's worker goroutines; Validate checks structural invariants;
// TopoSort orders cells for evaluation; CollectStats summarizes a
// module.
//
// # Serialization and content identity
//
// WriteJSON/ReadJSON speak the Yosys write_json netlist format, and
// WriteVerilog emits synthesizable Verilog. CanonicalHash and
// CanonicalHashDesign compute an order-invariant content hash — two
// modules that differ only in wire/cell insertion order, JSON object
// key order or connection statement order hash identically — which the
// serving layer (internal/server, internal/cache) uses as the netlist
// half of its cache keys.
package rtlil
