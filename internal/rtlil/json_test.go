package rtlil

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	m := NewModule("top")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 4).Bits()
	mid := m.NewWire(4).Bits()
	m.AddBinary(CellAnd, "g_and", a, b, mid)
	m.AddMux("g_mux", mid, Concat(b.Extract(0, 3), Const(1, 1)), s, y)
	d := NewDesign()
	d.AddModule(m)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2 := d2.Module("top")
	if m2 == nil {
		t.Fatal("module top lost")
	}
	if err := m2.Validate(); err != nil {
		t.Fatalf("round-tripped module invalid: %v", err)
	}
	if m2.NumCells() != 2 {
		t.Errorf("cells = %d, want 2", m2.NumCells())
	}
	if len(m2.Inputs()) != 3 || len(m2.Outputs()) != 1 {
		t.Errorf("ports lost: %d in, %d out", len(m2.Inputs()), len(m2.Outputs()))
	}
	mx := m2.Cell("g_mux")
	if mx == nil || mx.Type != CellMux {
		t.Fatal("mux cell lost")
	}
	// Constant bit in the B port must survive.
	if got := mx.Conn["B"][3]; !got.IsConst() || got.Const != S1 {
		t.Errorf("const bit lost: %v", got)
	}
	if mx.Param("WIDTH") != 4 {
		t.Errorf("param lost: %d", mx.Param("WIDTH"))
	}
}

func TestJSONXZConstants(t *testing.T) {
	m := NewModule("top")
	y := m.AddOutput("y", 3)
	m.Connect(y.Bits(), ConstBits(S0, Sx, Sz))
	d := NewDesign()
	d.AddModule(m)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `"x"`) || !strings.Contains(text, `"z"`) {
		t.Error("x/z constants not serialized as strings")
	}
	d2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range d2.Module("top").Conns {
		total += len(c.LHS)
	}
	if total != 3 {
		t.Fatalf("total connected bits = %d, want 3", total)
	}
}

func TestJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"modules":{"m":{"ports":{},"netnames":{},"cells":{"c":{"type":"$and","parameters":{},"connections":{"A":[99]}}}}}}`)); err == nil {
		t.Error("dangling bit id accepted")
	}
}
