package rtlil

import "testing"

func TestTopoSortOrders(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 1).Bits()
	b := m.AddInput("b", 1).Bits()
	y := m.AddOutput("y", 1).Bits()
	m1 := m.NewWire(1).Bits()
	m2 := m.NewWire(1).Bits()
	// Deliberately add in reverse dependency order.
	g3 := m.AddBinary(CellOr, "g3", m2, a, y)
	g2 := m.AddUnary(CellNot, "g2", m1, m2)
	g1 := m.AddBinary(CellAnd, "g1", a, b, m1)

	order, err := TopoSort(m)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Cell]int{}
	for i, c := range order {
		pos[c] = i
	}
	if !(pos[g1] < pos[g2] && pos[g2] < pos[g3]) {
		t.Errorf("topo order wrong: g1=%d g2=%d g3=%d", pos[g1], pos[g2], pos[g3])
	}
}

func TestTopoSortDetectsLoop(t *testing.T) {
	m := NewModule("m")
	a := m.NewWire(1).Bits()
	b := m.NewWire(1).Bits()
	m.AddUnary(CellNot, "g1", a, b)
	m.AddUnary(CellNot, "g2", b, a)
	if _, err := TopoSort(m); err == nil {
		t.Error("combinational loop not detected")
	}
}

func TestTopoSortDffBreaksLoop(t *testing.T) {
	m := NewModule("m")
	clk := m.AddInput("clk", 1).Bits()
	q := m.NewWire(1).Bits()
	d := m.NewWire(1).Bits()
	m.AddUnary(CellNot, "inv", q, d)
	m.AddDff("ff", clk, d, q)
	order, err := TopoSort(m)
	if err != nil {
		t.Fatalf("dff loop flagged as combinational: %v", err)
	}
	if len(order) != 2 {
		t.Errorf("order has %d cells", len(order))
	}
	// The dff comes first (its Q is a source).
	if order[0].Type != CellDff {
		t.Errorf("first cell is %s, want $dff", order[0].Type)
	}
}

func TestTopoSortThroughConnection(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 1).Bits()
	y := m.AddOutput("y", 1).Bits()
	mid := m.NewWire(1).Bits()
	alias := m.NewWire(1).Bits()
	g1 := m.AddUnary(CellNot, "g1", a, mid)
	m.Connect(alias, mid)
	g2 := m.AddUnary(CellNot, "g2", alias, y)
	order, err := TopoSort(m)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Cell]int{}
	for i, c := range order {
		pos[c] = i
	}
	if pos[g1] > pos[g2] {
		t.Error("dependency through connection not honored")
	}
}
