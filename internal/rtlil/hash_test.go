package rtlil

import (
	"strings"
	"testing"
)

// buildMuxModule constructs a tiny mux netlist; reorder flips the
// insertion order of wires, cells and connections without changing the
// logical netlist.
func buildMuxModule(reorder bool) *Module {
	m := NewModule("top")
	addWires := func() (a, b, s, y *Wire) {
		if reorder {
			y = m.AddOutput("y", 2)
			s = m.AddInput("s", 1)
			b = m.AddInput("b", 2)
			a = m.AddInput("a", 2)
			// Restore the semantic port order; PortID, not insertion
			// order, is what carries meaning.
			a.PortID, b.PortID, s.PortID, y.PortID = 1, 2, 3, 4
		} else {
			a = m.AddInput("a", 2)
			b = m.AddInput("b", 2)
			s = m.AddInput("s", 1)
			y = m.AddOutput("y", 2)
		}
		return
	}
	a, b, s, y := addWires()
	t := m.AddWire("t", 2)
	mux := m.AddCell("mux0", "$mux")
	mux.Params["WIDTH"] = 2
	mux.SetPort("A", a.Bits())
	mux.SetPort("B", b.Bits())
	mux.SetPort("S", s.Bits())
	mux.SetPort("Y", t.Bits())
	if reorder {
		m.Connect(SigSpec{y.Bit(1)}, SigSpec{t.Bit(1)})
		m.Connect(SigSpec{y.Bit(0)}, SigSpec{t.Bit(0)})
	} else {
		m.Connect(SigSpec{y.Bit(0)}, SigSpec{t.Bit(0)})
		m.Connect(SigSpec{y.Bit(1)}, SigSpec{t.Bit(1)})
	}
	return m
}

func TestCanonicalHashOrderInvariant(t *testing.T) {
	h1 := CanonicalHash(buildMuxModule(false))
	h2 := CanonicalHash(buildMuxModule(true))
	if h1 != h2 {
		t.Errorf("insertion order changed the hash: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Errorf("hash %q is not hex sha256", h1)
	}
}

func TestCanonicalHashCloneStable(t *testing.T) {
	m := buildMuxModule(false)
	if CanonicalHash(m) != CanonicalHash(m.Clone()) {
		t.Error("clone hashes differently")
	}
}

func TestCanonicalHashSensitivity(t *testing.T) {
	base := CanonicalHash(buildMuxModule(false))
	mutations := map[string]func(m *Module){
		"cell param":     func(m *Module) { m.Cell("mux0").Params["WIDTH"] = 3 },
		"cell type":      func(m *Module) { m.Cell("mux0").Type = "$pmux" },
		"port direction": func(m *Module) { m.Wire("s").PortInput = false; m.Wire("s").PortOutput = true },
		"port order":     func(m *Module) { m.Wire("a").PortID, m.Wire("b").PortID = 2, 1 },
		"extra wire":     func(m *Module) { m.AddWire("spare", 1) },
		"connection":     func(m *Module) { m.Conns = m.Conns[:1] },
		"swapped ports": func(m *Module) {
			c := m.Cell("mux0")
			c.Conn["A"], c.Conn["B"] = c.Conn["B"], c.Conn["A"]
		},
	}
	for name, mutate := range mutations {
		m := buildMuxModule(false)
		mutate(m)
		if CanonicalHash(m) == base {
			t.Errorf("mutation %q did not change the hash", name)
		}
	}
}

func TestCanonicalHashJSONKeyOrderInvariant(t *testing.T) {
	// The same netlist as two JSON documents whose object keys (and the
	// connection wire's id allocation) appear in different orders.
	doc1 := `{"creator":"x","modules":{"top":{
	  "ports":{"a":{"direction":"input","bits":[2]},"y":{"direction":"output","bits":[3]}},
	  "netnames":{"a":{"bits":[2]},"y":{"bits":[3]}},
	  "cells":{"n0":{"type":"$not","parameters":{"WIDTH":1},"connections":{"A":[2],"Y":[3]}}}}}}`
	doc2 := `{"modules":{"top":{
	  "cells":{"n0":{"connections":{"Y":[3],"A":[2]},"parameters":{"WIDTH":1},"type":"$not"}},
	  "netnames":{"y":{"bits":[3]},"a":{"bits":[2]}},
	  "ports":{"y":{"bits":[3],"direction":"output"},"a":{"bits":[2],"direction":"input"}}}},
	  "creator":"x"}`
	d1, err := ReadJSON(strings.NewReader(doc1))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(strings.NewReader(doc2))
	if err != nil {
		t.Fatal(err)
	}
	if CanonicalHashDesign(d1) != CanonicalHashDesign(d2) {
		t.Error("JSON key order changed the design hash")
	}
	if CanonicalHash(d1.Top()) != CanonicalHash(d2.Top()) {
		t.Error("JSON key order changed the module hash")
	}
}

func TestCanonicalHashDesignModuleOrder(t *testing.T) {
	mk := func(names ...string) *Design {
		d := NewDesign()
		for _, n := range names {
			m := NewModule(n)
			m.AddInput("i", 1)
			d.AddModule(m)
		}
		return d
	}
	if CanonicalHashDesign(mk("a", "b")) != CanonicalHashDesign(mk("b", "a")) {
		t.Error("module insertion order changed the design hash")
	}
}
