package rtlil

import "fmt"

// TopoSort returns the module's cells in a topological order of the
// combinational dependency graph: every cell appears after the cells
// driving its inputs. Sequential cells ($dff) break dependencies — their
// outputs are treated as graph sources — so any cycle reported is a true
// combinational loop.
func TopoSort(m *Module) ([]*Cell, error) {
	ix := NewIndex(m)
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Cell]int, m.NumCells())
	order := make([]*Cell, 0, m.NumCells())

	var visit func(c *Cell) error
	visit = func(c *Cell) error {
		switch color[c] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("rtlil: combinational loop through cell %s", c.Name)
		}
		color[c] = gray
		if !IsSequential(c.Type) {
			for port, sig := range c.Conn {
				if !c.IsInputPort(port) {
					continue
				}
				for _, b := range ix.Map(sig) {
					if b.IsConst() {
						continue
					}
					d := ix.DriverCell(b)
					if d == nil || IsSequential(d.Type) {
						continue
					}
					if err := visit(d); err != nil {
						return err
					}
				}
			}
		}
		color[c] = black
		order = append(order, c)
		return nil
	}

	// Sequential cells first (their outputs are sources), then the rest
	// in insertion order for determinism.
	for _, c := range m.Cells() {
		if IsSequential(c.Type) {
			color[c] = black
			order = append(order, c)
		}
	}
	for _, c := range m.Cells() {
		if err := visit(c); err != nil {
			return nil, err
		}
	}
	return order, nil
}
