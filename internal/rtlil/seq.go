package rtlil

import "fmt"

// Sequential helpers shared by the register-aware pass (opt_dff), the
// k-induction checker (internal/cec) and the multi-cycle simulator
// (internal/sim).
//
// The repository-wide sequential semantics: every $dff resets to zero
// (consistent with the two-valued canonical semantics where x evaluates
// as 0), and all flip-flops of a module advance together on the tick of
// a single clock. Multi-clock modules are valid IR but the sequential
// reasoning passes skip or reject them — see SingleClock.

// SeqCells returns the module's sequential cells in insertion order.
func (m *Module) SeqCells() []*Cell {
	var out []*Cell
	for _, c := range m.Cells() {
		if IsSequential(c.Type) {
			out = append(out, c)
		}
	}
	return out
}

// StateBits counts the module's state bits (the sum of $dff widths).
func (m *Module) StateBits() int {
	n := 0
	for _, c := range m.Cells() {
		if IsSequential(c.Type) {
			n += len(c.Port("Q"))
		}
	}
	return n
}

// SingleClock returns the canonical clock bit shared by every
// sequential cell of the module. Modules without sequential cells
// return a constant bit and ok=true (vacuously single-clock); modules
// whose flip-flops sit on more than one canonical clock signal return
// ok=false.
func SingleClock(m *Module) (clk SigBit, ok bool) {
	sm := NewSigMap(m)
	seen := false
	for _, c := range m.Cells() {
		if !IsSequential(c.Type) {
			continue
		}
		b := sm.Bit(c.Port("CLK")[0])
		if !seen {
			clk, seen = b, true
			continue
		}
		if b != clk {
			return SigBit{}, false
		}
	}
	if !seen {
		return ConstBit(S0), true
	}
	return clk, true
}

// ValidateSequential extends Validate with the constraints the
// sequential reasoning layer assumes: a single clock domain and
// fully wire-driven (non-constant) state. It returns the first
// violation, or nil for purely combinational modules.
func ValidateSequential(m *Module) error {
	if _, ok := SingleClock(m); !ok {
		return fmt.Errorf("rtlil: module %s has flip-flops on more than one clock", m.Name)
	}
	for _, c := range m.SeqCells() {
		for i, b := range c.Port("Q") {
			if b.IsConst() {
				return fmt.Errorf("rtlil: cell %s ($dff) Q bit %d is a constant", c.Name, i)
			}
		}
	}
	return nil
}
