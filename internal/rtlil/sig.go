package rtlil

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// State is a four-state logic value as used in Verilog simulation semantics.
type State uint8

// The four logic states. Sz (high impedance) is treated as Sx (unknown) by
// all combinational evaluation in this repository.
const (
	S0 State = iota // logic zero
	S1              // logic one
	Sx              // unknown
	Sz              // high impedance
)

// String returns the single-character Verilog spelling of the state.
func (s State) String() string {
	switch s {
	case S0:
		return "0"
	case S1:
		return "1"
	case Sx:
		return "x"
	case Sz:
		return "z"
	}
	return "?"
}

// Bool reports the two-valued interpretation of the state. known is false
// for Sx and Sz.
func (s State) Bool() (value, known bool) {
	switch s {
	case S0:
		return false, true
	case S1:
		return true, true
	}
	return false, false
}

// BoolState converts a Go bool to S0/S1.
func BoolState(v bool) State {
	if v {
		return S1
	}
	return S0
}

// SigBit is a single bit of a signal: either bit Offset of Wire, or, when
// Wire is nil, the constant Const. SigBit values are comparable and are
// used directly as map keys throughout the code base.
type SigBit struct {
	Wire   *Wire
	Offset int
	Const  State
}

// ConstBit returns a constant SigBit holding s.
func ConstBit(s State) SigBit { return SigBit{Const: s} }

// IsConst reports whether the bit is a constant (not backed by a wire).
func (b SigBit) IsConst() bool { return b.Wire == nil }

// String renders the bit as "wire[off]" or the constant state.
func (b SigBit) String() string {
	if b.Wire == nil {
		return b.Const.String()
	}
	if b.Wire.Width == 1 && b.Offset == 0 {
		return b.Wire.Name
	}
	return fmt.Sprintf("%s[%d]", b.Wire.Name, b.Offset)
}

// SigSpec is a signal: an ordered, LSB-first slice of bits. Index 0 is the
// least significant bit, matching Yosys conventions.
type SigSpec []SigBit

// Const returns a width-bit constant SigSpec holding the unsigned value.
// Bits beyond 64 are zero.
func Const(value uint64, width int) SigSpec {
	s := make(SigSpec, width)
	for i := 0; i < width; i++ {
		if i < 64 && (value>>uint(i))&1 == 1 {
			s[i] = ConstBit(S1)
		} else {
			s[i] = ConstBit(S0)
		}
	}
	return s
}

// ConstBits builds a constant SigSpec from explicit states, given LSB first.
func ConstBits(states ...State) SigSpec {
	s := make(SigSpec, len(states))
	for i, st := range states {
		s[i] = ConstBit(st)
	}
	return s
}

// ParseConst parses a Verilog-style sized literal such as "3'b1zz",
// "8'hff", "4'd9" or a plain decimal "42" (32 bits). The returned SigSpec
// is LSB first.
func ParseConst(lit string) (SigSpec, error) {
	lit = strings.ReplaceAll(lit, "_", "")
	tick := strings.IndexByte(lit, '\'')
	if tick < 0 {
		v, err := strconv.ParseUint(lit, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rtlil: bad constant %q: %w", lit, err)
		}
		return Const(v, 32), nil
	}
	width := 32
	if tick > 0 {
		w, err := strconv.Atoi(lit[:tick])
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("rtlil: bad constant width in %q", lit)
		}
		width = w
	}
	if tick+1 >= len(lit) {
		return nil, fmt.Errorf("rtlil: truncated constant %q", lit)
	}
	base := lit[tick+1]
	digits := lit[tick+2:]
	if digits == "" {
		return nil, fmt.Errorf("rtlil: constant %q has no digits", lit)
	}
	var bits []State // MSB first while building
	push := func(val, n int, isX, isZ bool) {
		for i := n - 1; i >= 0; i-- {
			switch {
			case isX:
				bits = append(bits, Sx)
			case isZ:
				bits = append(bits, Sz)
			case (val>>uint(i))&1 == 1:
				bits = append(bits, S1)
			default:
				bits = append(bits, S0)
			}
		}
	}
	switch base {
	case 'b', 'B':
		for _, c := range digits {
			switch c {
			case '0':
				push(0, 1, false, false)
			case '1':
				push(1, 1, false, false)
			case 'x', 'X':
				push(0, 1, true, false)
			case 'z', 'Z', '?':
				push(0, 1, false, true)
			default:
				return nil, fmt.Errorf("rtlil: bad binary digit %q in %q", c, lit)
			}
		}
	case 'h', 'H':
		for _, c := range digits {
			switch {
			case c >= '0' && c <= '9':
				push(int(c-'0'), 4, false, false)
			case c >= 'a' && c <= 'f':
				push(int(c-'a')+10, 4, false, false)
			case c >= 'A' && c <= 'F':
				push(int(c-'A')+10, 4, false, false)
			case c == 'x' || c == 'X':
				push(0, 4, true, false)
			case c == 'z' || c == 'Z' || c == '?':
				push(0, 4, false, true)
			default:
				return nil, fmt.Errorf("rtlil: bad hex digit %q in %q", c, lit)
			}
		}
	case 'o', 'O':
		for _, c := range digits {
			switch {
			case c >= '0' && c <= '7':
				push(int(c-'0'), 3, false, false)
			case c == 'x' || c == 'X':
				push(0, 3, true, false)
			case c == 'z' || c == 'Z' || c == '?':
				push(0, 3, false, true)
			default:
				return nil, fmt.Errorf("rtlil: bad octal digit %q in %q", c, lit)
			}
		}
	case 'd', 'D':
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rtlil: bad decimal constant %q: %w", lit, err)
		}
		return Const(v, width), nil
	default:
		return nil, fmt.Errorf("rtlil: unknown base %q in %q", base, lit)
	}
	// bits is MSB first; reverse into LSB-first and size to width.
	s := make(SigSpec, len(bits))
	for i, st := range bits {
		s[len(bits)-1-i] = st.asBit()
	}
	return s.Resize(width, false), nil
}

func (s State) asBit() SigBit { return ConstBit(s) }

// MustParseConst is ParseConst but panics on malformed input. It is meant
// for literals in tests and generators.
func MustParseConst(lit string) SigSpec {
	s, err := ParseConst(lit)
	if err != nil {
		panic(err)
	}
	return s
}

// Width returns the number of bits in the signal.
func (s SigSpec) Width() int { return len(s) }

// Extract returns the sub-signal of length n starting at bit offset off.
func (s SigSpec) Extract(off, n int) SigSpec {
	if off < 0 || n < 0 || off+n > len(s) {
		panic(fmt.Sprintf("rtlil: Extract(%d, %d) out of range for width %d", off, n, len(s)))
	}
	return s[off : off+n : off+n]
}

// Concat concatenates parts LSB-first: parts[0] supplies the least
// significant bits of the result.
func Concat(parts ...SigSpec) SigSpec {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make(SigSpec, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Repeat returns the signal repeated n times (LSB-first replication).
func (s SigSpec) Repeat(n int) SigSpec {
	out := make(SigSpec, 0, n*len(s))
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return out
}

// IsFullyConst reports whether every bit of the signal is a constant.
func (s SigSpec) IsFullyConst() bool {
	for _, b := range s {
		if !b.IsConst() {
			return false
		}
	}
	return true
}

// IsFullyDefined reports whether every bit is a constant S0 or S1.
func (s SigSpec) IsFullyDefined() bool {
	for _, b := range s {
		if !b.IsConst() || (b.Const != S0 && b.Const != S1) {
			return false
		}
	}
	return true
}

// HasConst reports whether any bit of the signal is a constant.
func (s SigSpec) HasConst() bool {
	for _, b := range s {
		if b.IsConst() {
			return true
		}
	}
	return false
}

// AsUint64 interprets a fully-defined constant signal as an unsigned
// integer. ok is false if the signal is not fully defined or wider than 64
// bits with high bits set.
func (s SigSpec) AsUint64() (v uint64, ok bool) {
	if !s.IsFullyDefined() {
		return 0, false
	}
	for i, b := range s {
		if b.Const == S1 {
			if i >= 64 {
				return 0, false
			}
			v |= 1 << uint(i)
		}
	}
	return v, true
}

// Resize zero- or sign-extends (or truncates) the signal to width bits.
func (s SigSpec) Resize(width int, signed bool) SigSpec {
	if len(s) == width {
		return s
	}
	if len(s) > width {
		return s.Extract(0, width)
	}
	out := make(SigSpec, width)
	copy(out, s)
	pad := ConstBit(S0)
	if signed && len(s) > 0 {
		pad = s[len(s)-1]
	}
	for i := len(s); i < width; i++ {
		out[i] = pad
	}
	return out
}

// Equal reports whether two signals are bit-for-bit identical.
func (s SigSpec) Equal(t SigSpec) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Copy returns a fresh slice with the same bits.
func (s SigSpec) Copy() SigSpec {
	out := make(SigSpec, len(s))
	copy(out, s)
	return out
}

// String renders the signal. Constant runs are grouped into Verilog-style
// literals; wire runs are grouped into part selects; mixed signals are
// rendered as a concatenation (MSB first, as in Verilog).
func (s SigSpec) String() string {
	if len(s) == 0 {
		return "{}"
	}
	if s.IsFullyConst() {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d'b", len(s))
		for i := len(s) - 1; i >= 0; i-- {
			sb.WriteString(s[i].Const.String())
		}
		return sb.String()
	}
	// Group maximal chunks.
	type chunk struct {
		first SigBit
		n     int
	}
	var chunks []chunk
	for _, b := range s {
		if n := len(chunks); n > 0 {
			c := &chunks[n-1]
			if b.Wire != nil && b.Wire == c.first.Wire && b.Offset == c.first.Offset+c.n {
				c.n++
				continue
			}
			if b.Wire == nil && c.first.Wire == nil && b.Const == c.first.Const {
				c.n++
				continue
			}
		}
		chunks = append(chunks, chunk{b, 1})
	}
	render := func(c chunk) string {
		if c.first.Wire == nil {
			return fmt.Sprintf("%d'b%s", c.n, strings.Repeat(c.first.Const.String(), c.n))
		}
		w := c.first.Wire
		if c.n == w.Width && c.first.Offset == 0 {
			return w.Name
		}
		if c.n == 1 {
			return fmt.Sprintf("%s[%d]", w.Name, c.first.Offset)
		}
		return fmt.Sprintf("%s[%d:%d]", w.Name, c.first.Offset+c.n-1, c.first.Offset)
	}
	if len(chunks) == 1 {
		return render(chunks[0])
	}
	parts := make([]string, len(chunks))
	for i, c := range chunks {
		parts[len(chunks)-1-i] = render(c) // MSB first
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ErrWidthMismatch is returned by operations requiring equal signal widths.
var ErrWidthMismatch = errors.New("rtlil: signal width mismatch")
