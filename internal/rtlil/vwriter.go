package rtlil

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteVerilog emits the module as structural Verilog: one continuous
// assignment per combinational cell, an always block per flip-flop.
// Automatically-generated names (which contain '$') are sanitized. The
// output parses back through the verilog frontend, which the test suite
// uses for write→parse→equivalence round trips.
func WriteVerilog(w io.Writer, m *Module) error {
	vw := &vwriter{m: m, names: map[string]string{}, used: map[string]bool{}}
	return vw.write(w)
}

type vwriter struct {
	m     *Module
	names map[string]string
	used  map[string]bool
}

func (vw *vwriter) name(raw string) string {
	if n, ok := vw.names[raw]; ok {
		return n
	}
	n := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, raw)
	if n == "" || (n[0] >= '0' && n[0] <= '9') {
		n = "w_" + n
	}
	base := n
	for i := 2; vw.used[n]; i++ {
		n = fmt.Sprintf("%s_%d", base, i)
	}
	vw.used[n] = true
	vw.names[raw] = n
	return n
}

func (vw *vwriter) sig(s SigSpec) string {
	if len(s) == 0 {
		return "1'b0"
	}
	type chunk struct {
		first SigBit
		n     int
	}
	var chunks []chunk
	for _, b := range s {
		if n := len(chunks); n > 0 {
			c := &chunks[n-1]
			if b.Wire != nil && b.Wire == c.first.Wire && b.Offset == c.first.Offset+c.n {
				c.n++
				continue
			}
			if b.Wire == nil && c.first.Wire == nil && b.Const == c.first.Const {
				c.n++
				continue
			}
		}
		chunks = append(chunks, chunk{b, 1})
	}
	render := func(c chunk) string {
		if c.first.Wire == nil {
			return fmt.Sprintf("%d'b%s", c.n, strings.Repeat(c.first.Const.String(), c.n))
		}
		name := vw.name(c.first.Wire.Name)
		if c.n == c.first.Wire.Width && c.first.Offset == 0 {
			return name
		}
		if c.n == 1 {
			return fmt.Sprintf("%s[%d]", name, c.first.Offset)
		}
		return fmt.Sprintf("%s[%d:%d]", name, c.first.Offset+c.n-1, c.first.Offset)
	}
	if len(chunks) == 1 {
		return render(chunks[0])
	}
	parts := make([]string, len(chunks))
	for i, c := range chunks {
		parts[len(chunks)-1-i] = render(c) // MSB first
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func (vw *vwriter) write(out io.Writer) error {
	m := vw.m
	var b strings.Builder

	ports := m.Ports()
	portNames := make([]string, len(ports))
	for i, p := range ports {
		portNames[i] = vw.name(p.Name)
	}
	fmt.Fprintf(&b, "module %s(%s);\n", vw.name(m.Name+"_mod"), strings.Join(portNames, ", "))

	// Declarations: ports first, then internal wires in name order.
	for _, p := range ports {
		dir := "input"
		if p.PortOutput {
			dir = "output"
		}
		fmt.Fprintf(&b, "  %s %s%s;\n", dir, rangeOf(p.Width), vw.name(p.Name))
	}
	var internals []*Wire
	for _, w := range m.Wires() {
		if !w.IsPort() {
			internals = append(internals, w)
		}
	}
	sort.Slice(internals, func(i, j int) bool { return internals[i].Name < internals[j].Name })
	dffQ := map[*Wire]bool{}
	for _, c := range m.Cells() {
		if c.Type == CellDff {
			for _, bit := range c.Port("Q") {
				if bit.Wire != nil {
					dffQ[bit.Wire] = true
				}
			}
		}
	}
	for _, w := range internals {
		kind := "wire"
		if dffQ[w] {
			kind = "reg"
		}
		fmt.Fprintf(&b, "  %s %s%s;\n", kind, rangeOf(w.Width), vw.name(w.Name))
	}
	b.WriteString("\n")

	for _, c := range m.Cells() {
		if err := vw.cell(&b, c); err != nil {
			return err
		}
	}
	for _, cn := range m.Conns {
		fmt.Fprintf(&b, "  assign %s = %s;\n", vw.sig(cn.LHS), vw.sig(cn.RHS))
	}
	b.WriteString("endmodule\n")
	_, err := io.WriteString(out, b.String())
	return err
}

func rangeOf(width int) string {
	if width == 1 {
		return ""
	}
	return fmt.Sprintf("[%d:0] ", width-1)
}

func (vw *vwriter) cell(b *strings.Builder, c *Cell) error {
	y := vw.sig(c.Port("Y"))
	a := func() string { return vw.sig(c.Port("A")) }
	bb := func() string { return vw.sig(c.Port("B")) }
	binop := map[CellType]string{
		CellAnd: "&", CellOr: "|", CellXor: "^", CellXnor: "~^",
		CellAdd: "+", CellSub: "-", CellMul: "*",
		CellEq: "==", CellNe: "!=", CellLt: "<", CellLe: "<=",
		CellGt: ">", CellGe: ">=", CellLogicAnd: "&&", CellLogicOr: "||",
		CellShl: "<<", CellShr: ">>",
	}
	unop := map[CellType]string{
		CellNot: "~", CellNeg: "-", CellReduceAnd: "&", CellReduceOr: "|",
		CellReduceXor: "^", CellLogicNot: "!",
	}
	switch {
	case binop[c.Type] != "":
		fmt.Fprintf(b, "  assign %s = (%s) %s (%s);\n", y, a(), binop[c.Type], bb())
	case unop[c.Type] != "":
		fmt.Fprintf(b, "  assign %s = %s(%s);\n", y, unop[c.Type], a())
	case c.Type == CellMux:
		fmt.Fprintf(b, "  assign %s = (%s) ? (%s) : (%s);\n", y, vw.sig(c.Port("S")), bb(), a())
	case c.Type == CellPmux:
		// Ascending priority: the highest-index word wins, so it is the
		// outermost ternary.
		w := c.Param("WIDTH")
		sw := c.Param("S_WIDTH")
		s := c.Port("S")
		expr := vw.sig(c.Port("A"))
		for i := 0; i < sw; i++ {
			expr = fmt.Sprintf("(%s) ? (%s) : (%s)",
				vw.sig(SigSpec{s[i]}), vw.sig(c.Port("B").Extract(i*w, w)), expr)
		}
		fmt.Fprintf(b, "  assign %s = %s;\n", y, expr)
	case c.Type == CellDff:
		fmt.Fprintf(b, "  always @(posedge %s) %s <= %s;\n",
			vw.sig(c.Port("CLK")), vw.sig(c.Port("Q")), vw.sig(c.Port("D")))
	default:
		return fmt.Errorf("rtlil: WriteVerilog cannot emit cell type %s", c.Type)
	}
	return nil
}
