package rtlil

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The JSON netlist format is modeled on Yosys' write_json output: every
// wire bit gets a small integer id, constants are encoded as the strings
// "0", "1", "x", "z", and cell connections are arrays of bit tokens
// (LSB first).

type jsonDesign struct {
	Creator string                 `json:"creator"`
	Modules map[string]*jsonModule `json:"modules"`
}

type jsonModule struct {
	Ports       map[string]*jsonPort `json:"ports"`
	Wires       map[string]*jsonWire `json:"netnames"`
	Cells       map[string]*jsonCell `json:"cells"`
	Connections [][2][]any           `json:"connections,omitempty"`
}

type jsonPort struct {
	Direction string `json:"direction"`
	Bits      []any  `json:"bits"`
	// PortID persists the 1-based port position. JSON objects carry no
	// key order, so without it a read-back would renumber ports in
	// name order and change the module's canonical hash; the serving
	// layer's module-granular cache needs hash-stable round trips.
	// Absent (Yosys-written JSON), the reader falls back to name order.
	PortID int `json:"port_id,omitempty"`
}

type jsonWire struct {
	Bits []any `json:"bits"`
}

type jsonCell struct {
	Type        string           `json:"type"`
	Parameters  map[string]int   `json:"parameters"`
	Connections map[string][]any `json:"connections"`
}

// WriteJSON serializes the design to w.
func WriteJSON(w io.Writer, d *Design) error {
	jd := jsonDesign{Creator: "smartly", Modules: map[string]*jsonModule{}}
	for _, m := range d.Modules() {
		jm, err := moduleToJSON(m)
		if err != nil {
			return err
		}
		jd.Modules[m.Name] = jm
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jd)
}

func moduleToJSON(m *Module) (*jsonModule, error) {
	ids := map[SigBit]int{}
	next := 2 // ids 0 and 1 are reserved to reduce confusion with consts
	for _, w := range m.Wires() {
		for i := 0; i < w.Width; i++ {
			ids[SigBit{Wire: w, Offset: i}] = next
			next++
		}
	}
	tok := func(b SigBit) any {
		if b.IsConst() {
			return b.Const.String()
		}
		return ids[b]
	}
	sig := func(s SigSpec) []any {
		out := make([]any, len(s))
		for i, b := range s {
			out[i] = tok(b)
		}
		return out
	}
	jm := &jsonModule{
		Ports: map[string]*jsonPort{},
		Wires: map[string]*jsonWire{},
		Cells: map[string]*jsonCell{},
	}
	for _, w := range m.Wires() {
		jm.Wires[w.Name] = &jsonWire{Bits: sig(w.Bits())}
		if w.IsPort() {
			dir := "input"
			if w.PortOutput {
				dir = "output"
			}
			jm.Ports[w.Name] = &jsonPort{Direction: dir, Bits: sig(w.Bits()), PortID: w.PortID}
		}
	}
	for _, c := range m.Cells() {
		jc := &jsonCell{
			Type:        string(c.Type),
			Parameters:  map[string]int{},
			Connections: map[string][]any{},
		}
		for k, v := range c.Params {
			jc.Parameters[k] = v
		}
		for k, v := range c.Conn {
			jc.Connections[k] = sig(v)
		}
		jm.Cells[c.Name] = jc
	}
	for _, cn := range m.Conns {
		jm.Connections = append(jm.Connections, [2][]any{sig(cn.LHS), sig(cn.RHS)})
	}
	return jm, nil
}

// ReadJSON parses a design previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Design, error) {
	var jd jsonDesign
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("rtlil: decoding JSON netlist: %w", err)
	}
	d := NewDesign()
	names := make([]string, 0, len(jd.Modules))
	for name := range jd.Modules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m, err := moduleFromJSON(name, jd.Modules[name])
		if err != nil {
			return nil, err
		}
		d.AddModule(m)
	}
	return d, nil
}

func moduleFromJSON(name string, jm *jsonModule) (*Module, error) {
	m := NewModule(name)
	bitOwner := map[int]SigBit{}

	wireNames := make([]string, 0, len(jm.Wires))
	for wn := range jm.Wires {
		wireNames = append(wireNames, wn)
	}
	sort.Strings(wireNames)
	var portWires []*Wire
	for _, wn := range wireNames {
		jw := jm.Wires[wn]
		w := m.AddWire(wn, len(jw.Bits))
		if p, ok := jm.Ports[wn]; ok {
			switch p.Direction {
			case "input":
				w.PortInput = true
			case "output":
				w.PortOutput = true
			default:
				return nil, fmt.Errorf("rtlil: port %s has bad direction %q", wn, p.Direction)
			}
			w.PortID = p.PortID
			portWires = append(portWires, w)
		}
		for i, t := range jw.Bits {
			if id, ok := tokenID(t); ok {
				if _, dup := bitOwner[id]; !dup {
					bitOwner[id] = SigBit{Wire: w, Offset: i}
				}
			}
		}
	}
	// Our own writer persists port positions as port_id; JSON written by
	// Yosys does not. Keep the persisted positions only when they form a
	// consistent assignment, else renumber in (sorted) name order.
	seen := map[int]bool{}
	consistent := true
	for _, w := range portWires {
		if w.PortID <= 0 || seen[w.PortID] {
			consistent = false
			break
		}
		seen[w.PortID] = true
	}
	if !consistent {
		for _, w := range portWires {
			w.PortID = 0
		}
		for _, w := range portWires {
			w.PortID = m.nextPortID()
		}
	}

	parseSig := func(tokens []any) (SigSpec, error) {
		s := make(SigSpec, len(tokens))
		for i, t := range tokens {
			switch v := t.(type) {
			case string:
				switch v {
				case "0":
					s[i] = ConstBit(S0)
				case "1":
					s[i] = ConstBit(S1)
				case "x":
					s[i] = ConstBit(Sx)
				case "z":
					s[i] = ConstBit(Sz)
				default:
					return nil, fmt.Errorf("rtlil: bad bit token %q", v)
				}
			case float64:
				b, ok := bitOwner[int(v)]
				if !ok {
					return nil, fmt.Errorf("rtlil: bit id %d not owned by any wire", int(v))
				}
				s[i] = b
			default:
				return nil, fmt.Errorf("rtlil: bad bit token type %T", t)
			}
		}
		return s, nil
	}

	// Wires whose bit list references ids owned by other wires become
	// connections (aliases).
	for _, wn := range wireNames {
		jw := jm.Wires[wn]
		w := m.Wire(wn)
		for i, t := range jw.Bits {
			id, ok := tokenID(t)
			var rhs SigBit
			if ok {
				owner := bitOwner[id]
				if owner.Wire == w && owner.Offset == i {
					continue
				}
				rhs = owner
			} else {
				s, err := parseSig([]any{t})
				if err != nil {
					return nil, err
				}
				rhs = s[0]
			}
			m.Connect(SigSpec{w.Bit(i)}, SigSpec{rhs})
		}
	}

	cellNames := make([]string, 0, len(jm.Cells))
	for cn := range jm.Cells {
		cellNames = append(cellNames, cn)
	}
	sort.Strings(cellNames)
	for _, cn := range cellNames {
		jc := jm.Cells[cn]
		c := m.AddCell(cn, CellType(jc.Type))
		for k, v := range jc.Parameters {
			c.Params[k] = v
		}
		for k, v := range jc.Connections {
			s, err := parseSig(v)
			if err != nil {
				return nil, fmt.Errorf("rtlil: cell %s port %s: %w", cn, k, err)
			}
			c.Conn[k] = s
		}
	}
	for i, pair := range jm.Connections {
		lhs, err := parseSig(pair[0])
		if err != nil {
			return nil, fmt.Errorf("rtlil: connection %d: %w", i, err)
		}
		rhs, err := parseSig(pair[1])
		if err != nil {
			return nil, fmt.Errorf("rtlil: connection %d: %w", i, err)
		}
		m.Connect(lhs, rhs)
	}
	return m, nil
}

func tokenID(t any) (int, bool) {
	if f, ok := t.(float64); ok {
		return int(f), true
	}
	return 0, false
}
