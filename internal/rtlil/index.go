package rtlil

// PortRef identifies one bit of one port of one cell.
type PortRef struct {
	Cell   *Cell
	Port   string
	Offset int
}

// Index provides driver and reader lookups for every bit of a module,
// with all signals resolved through a SigMap. Build it once per pass; it
// is not automatically updated when the module changes. The SigMap is
// frozen at construction, so an Index is safe for concurrent lookups as
// long as the module itself is not mutated.
type Index struct {
	mod     *Module
	sigmap  *SigMap
	driver  map[SigBit]PortRef
	readers map[SigBit][]PortRef
	outBits map[SigBit]bool
	inBits  map[SigBit]bool
}

// NewIndex builds driver/reader indices for the module.
func NewIndex(m *Module) *Index {
	ix := &Index{
		mod:     m,
		sigmap:  NewSigMap(m),
		driver:  map[SigBit]PortRef{},
		readers: map[SigBit][]PortRef{},
		outBits: map[SigBit]bool{},
		inBits:  map[SigBit]bool{},
	}
	for _, c := range m.Cells() {
		for port, sig := range c.Conn {
			mapped := ix.sigmap.Map(sig)
			if c.IsOutputPort(port) {
				for off, b := range mapped {
					if b.IsConst() {
						continue
					}
					ix.driver[b] = PortRef{Cell: c, Port: port, Offset: off}
				}
			} else {
				for off, b := range mapped {
					if b.IsConst() {
						continue
					}
					ix.readers[b] = append(ix.readers[b], PortRef{Cell: c, Port: port, Offset: off})
				}
			}
		}
	}
	for _, w := range m.Wires() {
		if w.PortOutput {
			for _, b := range ix.sigmap.Map(w.Bits()) {
				if !b.IsConst() {
					ix.outBits[b] = true
				}
			}
		}
		if w.PortInput {
			for _, b := range ix.sigmap.Map(w.Bits()) {
				if !b.IsConst() {
					ix.inBits[b] = true
				}
			}
		}
	}
	ix.sigmap.Freeze()
	return ix
}

// SigMap returns the alias map used by the index.
func (ix *Index) SigMap() *SigMap { return ix.sigmap }

// Module returns the indexed module.
func (ix *Index) Module() *Module { return ix.mod }

// Map canonicalizes a signal through the index's SigMap.
func (ix *Index) Map(s SigSpec) SigSpec { return ix.sigmap.Map(s) }

// MapBit canonicalizes a single bit.
func (ix *Index) MapBit(b SigBit) SigBit { return ix.sigmap.Bit(b) }

// Driver returns the cell output bit driving b (after alias resolution).
func (ix *Index) Driver(b SigBit) (PortRef, bool) {
	r, ok := ix.driver[ix.sigmap.Bit(b)]
	return r, ok
}

// DriverCell returns the cell driving b, or nil when b is a primary input,
// constant or undriven.
func (ix *Index) DriverCell(b SigBit) *Cell {
	if r, ok := ix.Driver(b); ok {
		return r.Cell
	}
	return nil
}

// Readers returns the cell input bits reading b. The slice is shared; do
// not mutate.
func (ix *Index) Readers(b SigBit) []PortRef {
	return ix.readers[ix.sigmap.Bit(b)]
}

// FanoutCount returns the number of cell inputs reading b plus one if b is
// visible on a module output port.
func (ix *Index) FanoutCount(b SigBit) int {
	b = ix.sigmap.Bit(b)
	n := len(ix.readers[b])
	if ix.outBits[b] {
		n++
	}
	return n
}

// IsOutputBit reports whether b is visible on a module output port.
func (ix *Index) IsOutputBit(b SigBit) bool { return ix.outBits[ix.sigmap.Bit(b)] }

// IsInputBit reports whether b is driven by a module input port.
func (ix *Index) IsInputBit(b SigBit) bool { return ix.inBits[ix.sigmap.Bit(b)] }
