package rtlil

import "fmt"

// CellType identifies a word-level cell kind. The names follow Yosys'
// internal cell library ($mux, $eq, ...).
type CellType string

// The supported cell library.
const (
	// Unary: ports A (input), Y (output).
	CellNot       CellType = "$not"        // bitwise NOT, Y width = A width
	CellNeg       CellType = "$neg"        // two's-complement negation
	CellReduceAnd CellType = "$reduce_and" // AND of all bits of A, 1-bit Y
	CellReduceOr  CellType = "$reduce_or"  // OR of all bits of A, 1-bit Y
	CellReduceXor CellType = "$reduce_xor" // XOR of all bits of A, 1-bit Y
	CellLogicNot  CellType = "$logic_not"  // !A, 1-bit Y

	// Binary: ports A, B (inputs), Y (output).
	CellAnd      CellType = "$and"  // bitwise AND
	CellOr       CellType = "$or"   // bitwise OR
	CellXor      CellType = "$xor"  // bitwise XOR
	CellXnor     CellType = "$xnor" // bitwise XNOR
	CellAdd      CellType = "$add"
	CellSub      CellType = "$sub"
	CellMul      CellType = "$mul"
	CellEq       CellType = "$eq" // A == B, 1-bit Y
	CellNe       CellType = "$ne" // A != B, 1-bit Y
	CellLt       CellType = "$lt" // unsigned A < B, 1-bit Y
	CellLe       CellType = "$le"
	CellGt       CellType = "$gt"
	CellGe       CellType = "$ge"
	CellLogicAnd CellType = "$logic_and" // (|A) && (|B), 1-bit Y
	CellLogicOr  CellType = "$logic_or"  // (|A) || (|B), 1-bit Y
	CellShl      CellType = "$shl"       // A << B (logical)
	CellShr      CellType = "$shr"       // A >> B (logical)
	// CellDiv is unsigned integer division (A / B, B=0 yields all-x).
	// It is recognized and simulated but deliberately has no AIG
	// bit-blasting: SAT queries over cones containing it are abandoned
	// and counted as map failures.
	CellDiv CellType = "$div"

	// CellMux is a word-level 2:1 multiplexer: Y = S ? B : A.
	// Note the Yosys convention: S=0 selects A, S=1 selects B.
	CellMux CellType = "$mux"

	// CellPmux is a parallel multiplexer: A is the default, B is the
	// concatenation of S_WIDTH candidate words (B[i*WIDTH +: WIDTH]
	// selected when S[i] is high). The canonical two-valued lowering is
	// ascending priority — y = A; for i = 0..S_WIDTH-1: y = S[i] ?
	// B_word(i) : y — so with multiple S bits high the highest index
	// wins. Simulation, AIG mapping and all passes share this
	// convention; four-state evaluation reports x for multi-hot selects.
	CellPmux CellType = "$pmux"

	// CellDff is a positive-edge D flip-flop: ports CLK, D, Q.
	CellDff CellType = "$dff"
)

type cellSpec struct {
	inputs  []string
	outputs []string
}

var cellSpecs = map[CellType]cellSpec{
	CellNot:       {[]string{"A"}, []string{"Y"}},
	CellNeg:       {[]string{"A"}, []string{"Y"}},
	CellReduceAnd: {[]string{"A"}, []string{"Y"}},
	CellReduceOr:  {[]string{"A"}, []string{"Y"}},
	CellReduceXor: {[]string{"A"}, []string{"Y"}},
	CellLogicNot:  {[]string{"A"}, []string{"Y"}},
	CellAnd:       {[]string{"A", "B"}, []string{"Y"}},
	CellOr:        {[]string{"A", "B"}, []string{"Y"}},
	CellXor:       {[]string{"A", "B"}, []string{"Y"}},
	CellXnor:      {[]string{"A", "B"}, []string{"Y"}},
	CellAdd:       {[]string{"A", "B"}, []string{"Y"}},
	CellSub:       {[]string{"A", "B"}, []string{"Y"}},
	CellMul:       {[]string{"A", "B"}, []string{"Y"}},
	CellEq:        {[]string{"A", "B"}, []string{"Y"}},
	CellNe:        {[]string{"A", "B"}, []string{"Y"}},
	CellLt:        {[]string{"A", "B"}, []string{"Y"}},
	CellLe:        {[]string{"A", "B"}, []string{"Y"}},
	CellGt:        {[]string{"A", "B"}, []string{"Y"}},
	CellGe:        {[]string{"A", "B"}, []string{"Y"}},
	CellLogicAnd:  {[]string{"A", "B"}, []string{"Y"}},
	CellLogicOr:   {[]string{"A", "B"}, []string{"Y"}},
	CellShl:       {[]string{"A", "B"}, []string{"Y"}},
	CellShr:       {[]string{"A", "B"}, []string{"Y"}},
	CellDiv:       {[]string{"A", "B"}, []string{"Y"}},
	CellMux:       {[]string{"A", "B", "S"}, []string{"Y"}},
	CellPmux:      {[]string{"A", "B", "S"}, []string{"Y"}},
	CellDff:       {[]string{"CLK", "D"}, []string{"Q"}},
}

// KnownCellType reports whether t is part of the supported cell library.
func KnownCellType(t CellType) bool {
	_, ok := cellSpecs[t]
	return ok
}

// InputPorts returns the input port names of the cell type, or nil for
// unknown types.
func InputPorts(t CellType) []string { return cellSpecs[t].inputs }

// OutputPorts returns the output port names of the cell type.
func OutputPorts(t CellType) []string { return cellSpecs[t].outputs }

// IsInputPort reports whether the named port of cell c is an input.
func (c *Cell) IsInputPort(name string) bool {
	for _, p := range cellSpecs[c.Type].inputs {
		if p == name {
			return true
		}
	}
	return false
}

// IsOutputPort reports whether the named port of cell c is an output.
func (c *Cell) IsOutputPort(name string) bool {
	for _, p := range cellSpecs[c.Type].outputs {
		if p == name {
			return true
		}
	}
	return false
}

// IsUnary reports whether the cell type is a one-input operator.
func IsUnary(t CellType) bool {
	switch t {
	case CellNot, CellNeg, CellReduceAnd, CellReduceOr, CellReduceXor, CellLogicNot:
		return true
	}
	return false
}

// IsBinary reports whether the cell type is a two-input operator.
func IsBinary(t CellType) bool {
	switch t {
	case CellAnd, CellOr, CellXor, CellXnor, CellAdd, CellSub, CellMul,
		CellDiv, CellEq, CellNe, CellLt, CellLe, CellGt, CellGe,
		CellLogicAnd, CellLogicOr, CellShl, CellShr:
		return true
	}
	return false
}

// IsCompare reports whether the cell type yields a single-bit comparison.
func IsCompare(t CellType) bool {
	switch t {
	case CellEq, CellNe, CellLt, CellLe, CellGt, CellGe:
		return true
	}
	return false
}

// IsSequential reports whether the cell type holds state.
func IsSequential(t CellType) bool { return t == CellDff }

// --- Typed cell constructors -------------------------------------------

// AddUnary creates a unary cell of type typ computing y from a. The Y
// width is taken from y; reduce/logic cells require a 1-bit y.
func (m *Module) AddUnary(typ CellType, name string, a, y SigSpec) *Cell {
	if !IsUnary(typ) {
		panic(fmt.Sprintf("rtlil: AddUnary called with %s", typ))
	}
	c := m.AddCell(name, typ)
	c.Params["A_WIDTH"] = len(a)
	c.Params["Y_WIDTH"] = len(y)
	c.Conn["A"] = a.Copy()
	c.Conn["Y"] = y.Copy()
	return c
}

// AddBinary creates a binary cell of type typ computing y from a and b.
func (m *Module) AddBinary(typ CellType, name string, a, b, y SigSpec) *Cell {
	if !IsBinary(typ) {
		panic(fmt.Sprintf("rtlil: AddBinary called with %s", typ))
	}
	c := m.AddCell(name, typ)
	c.Params["A_WIDTH"] = len(a)
	c.Params["B_WIDTH"] = len(b)
	c.Params["Y_WIDTH"] = len(y)
	c.Conn["A"] = a.Copy()
	c.Conn["B"] = b.Copy()
	c.Conn["Y"] = y.Copy()
	return c
}

// AddMux creates a 2:1 multiplexer cell: y = s ? b : a. a, b and y must
// have equal widths; s must be a single bit.
func (m *Module) AddMux(name string, a, b, s, y SigSpec) *Cell {
	if len(a) != len(b) || len(a) != len(y) {
		panic(fmt.Sprintf("rtlil: AddMux width mismatch a=%d b=%d y=%d", len(a), len(b), len(y)))
	}
	if len(s) != 1 {
		panic(fmt.Sprintf("rtlil: AddMux select must be 1 bit, got %d", len(s)))
	}
	c := m.AddCell(name, CellMux)
	c.Params["WIDTH"] = len(y)
	c.Conn["A"] = a.Copy()
	c.Conn["B"] = b.Copy()
	c.Conn["S"] = s.Copy()
	c.Conn["Y"] = y.Copy()
	return c
}

// AddPmux creates a parallel mux cell: y = a when no s bit is set,
// otherwise the b word selected by the (one-hot) s bit.
func (m *Module) AddPmux(name string, a SigSpec, b []SigSpec, s, y SigSpec) *Cell {
	if len(s) != len(b) {
		panic(fmt.Sprintf("rtlil: AddPmux %d select bits but %d candidate words", len(s), len(b)))
	}
	width := len(a)
	for _, w := range b {
		if len(w) != width {
			panic(fmt.Sprintf("rtlil: AddPmux candidate width %d != default width %d", len(w), width))
		}
	}
	if len(y) != width {
		panic(fmt.Sprintf("rtlil: AddPmux output width %d != %d", len(y), width))
	}
	c := m.AddCell(name, CellPmux)
	c.Params["WIDTH"] = width
	c.Params["S_WIDTH"] = len(s)
	c.Conn["A"] = a.Copy()
	c.Conn["B"] = Concat(b...)
	c.Conn["S"] = s.Copy()
	c.Conn["Y"] = y.Copy()
	return c
}

// PmuxWord returns the i-th candidate word of a $pmux cell's B port.
func (c *Cell) PmuxWord(i int) SigSpec {
	w := c.Params["WIDTH"]
	return c.Conn["B"].Extract(i*w, w)
}

// AddDff creates a positive-edge D flip-flop.
func (m *Module) AddDff(name string, clk, d, q SigSpec) *Cell {
	if len(clk) != 1 {
		panic("rtlil: AddDff clock must be 1 bit")
	}
	if len(d) != len(q) {
		panic(fmt.Sprintf("rtlil: AddDff width mismatch d=%d q=%d", len(d), len(q)))
	}
	c := m.AddCell(name, CellDff)
	c.Params["WIDTH"] = len(d)
	c.Conn["CLK"] = clk.Copy()
	c.Conn["D"] = d.Copy()
	c.Conn["Q"] = q.Copy()
	return c
}

// --- Expression builders -------------------------------------------------
//
// The builders allocate a fresh output wire and return its signal, which
// makes programmatic netlist construction read like expressions:
//
//	y := m.Mux(c, m.And(a, b), m.Or(a, b))

func (m *Module) unaryExpr(typ CellType, a SigSpec, ywidth int) SigSpec {
	y := m.NewWire(ywidth).Bits()
	m.AddUnary(typ, "", a, y)
	return y
}

func (m *Module) binExpr(typ CellType, a, b SigSpec, ywidth int) SigSpec {
	y := m.NewWire(ywidth).Bits()
	m.AddBinary(typ, "", a, b, y)
	return y
}

func maxw(a, b SigSpec) int {
	if len(a) > len(b) {
		return len(a)
	}
	return len(b)
}

// Not returns ~a.
func (m *Module) Not(a SigSpec) SigSpec { return m.unaryExpr(CellNot, a, len(a)) }

// Neg returns -a (two's complement).
func (m *Module) Neg(a SigSpec) SigSpec { return m.unaryExpr(CellNeg, a, len(a)) }

// ReduceAnd returns &a (1 bit).
func (m *Module) ReduceAnd(a SigSpec) SigSpec { return m.unaryExpr(CellReduceAnd, a, 1) }

// ReduceOr returns |a (1 bit).
func (m *Module) ReduceOr(a SigSpec) SigSpec { return m.unaryExpr(CellReduceOr, a, 1) }

// ReduceXor returns ^a (1 bit).
func (m *Module) ReduceXor(a SigSpec) SigSpec { return m.unaryExpr(CellReduceXor, a, 1) }

// LogicNot returns !a (1 bit).
func (m *Module) LogicNot(a SigSpec) SigSpec { return m.unaryExpr(CellLogicNot, a, 1) }

// And returns a & b, extending the narrower operand with zeros.
func (m *Module) And(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellAnd, a.Resize(w, false), b.Resize(w, false), w)
}

// Or returns a | b.
func (m *Module) Or(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellOr, a.Resize(w, false), b.Resize(w, false), w)
}

// Xor returns a ^ b.
func (m *Module) Xor(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellXor, a.Resize(w, false), b.Resize(w, false), w)
}

// Xnor returns ~(a ^ b).
func (m *Module) Xnor(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellXnor, a.Resize(w, false), b.Resize(w, false), w)
}

// AddOp returns a + b at the width of the wider operand.
func (m *Module) AddOp(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellAdd, a.Resize(w, false), b.Resize(w, false), w)
}

// SubOp returns a - b at the width of the wider operand.
func (m *Module) SubOp(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellSub, a.Resize(w, false), b.Resize(w, false), w)
}

// MulOp returns a * b truncated to the width of the wider operand.
func (m *Module) MulOp(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellMul, a.Resize(w, false), b.Resize(w, false), w)
}

// Eq returns the 1-bit comparison a == b.
func (m *Module) Eq(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellEq, a.Resize(w, false), b.Resize(w, false), 1)
}

// Ne returns the 1-bit comparison a != b.
func (m *Module) Ne(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellNe, a.Resize(w, false), b.Resize(w, false), 1)
}

// Lt returns the 1-bit unsigned comparison a < b.
func (m *Module) Lt(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellLt, a.Resize(w, false), b.Resize(w, false), 1)
}

// Le returns the 1-bit unsigned comparison a <= b.
func (m *Module) Le(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellLe, a.Resize(w, false), b.Resize(w, false), 1)
}

// Gt returns the 1-bit unsigned comparison a > b.
func (m *Module) Gt(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellGt, a.Resize(w, false), b.Resize(w, false), 1)
}

// Ge returns the 1-bit unsigned comparison a >= b.
func (m *Module) Ge(a, b SigSpec) SigSpec {
	w := maxw(a, b)
	return m.binExpr(CellGe, a.Resize(w, false), b.Resize(w, false), 1)
}

// LogicAnd returns (|a) && (|b) (1 bit).
func (m *Module) LogicAnd(a, b SigSpec) SigSpec { return m.binExpr(CellLogicAnd, a, b, 1) }

// LogicOr returns (|a) || (|b) (1 bit).
func (m *Module) LogicOr(a, b SigSpec) SigSpec { return m.binExpr(CellLogicOr, a, b, 1) }

// Shl returns a << b at the width of a.
func (m *Module) Shl(a, b SigSpec) SigSpec { return m.binExpr(CellShl, a, b, len(a)) }

// Shr returns a >> b at the width of a.
func (m *Module) Shr(a, b SigSpec) SigSpec { return m.binExpr(CellShr, a, b, len(a)) }

// Mux returns s ? b : a. a and b are resized to the wider operand.
func (m *Module) Mux(a, b, s SigSpec) SigSpec {
	w := maxw(a, b)
	a, b = a.Resize(w, false), b.Resize(w, false)
	y := m.NewWire(w).Bits()
	m.AddMux("", a, b, s, y)
	return y
}

// Pmux returns the parallel mux of candidate words b under one-hot
// selector s, defaulting to a.
func (m *Module) Pmux(a SigSpec, b []SigSpec, s SigSpec) SigSpec {
	y := m.NewWire(len(a)).Bits()
	m.AddPmux("", a, b, s, y)
	return y
}
