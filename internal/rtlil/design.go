package rtlil

import (
	"fmt"
	"sort"
)

// Wire is a named multi-bit net in a module.
type Wire struct {
	Name       string
	Width      int
	PortInput  bool
	PortOutput bool
	PortID     int // 1-based position in the port list; 0 for internal wires
	Attrs      map[string]string
}

// Bits returns the full signal spanned by the wire, LSB first.
func (w *Wire) Bits() SigSpec {
	s := make(SigSpec, w.Width)
	for i := 0; i < w.Width; i++ {
		s[i] = SigBit{Wire: w, Offset: i}
	}
	return s
}

// Bit returns bit i of the wire as a single-bit signal bit.
func (w *Wire) Bit(i int) SigBit {
	if i < 0 || i >= w.Width {
		panic(fmt.Sprintf("rtlil: bit %d out of range for wire %s[%d]", i, w.Name, w.Width))
	}
	return SigBit{Wire: w, Offset: i}
}

// IsPort reports whether the wire is a module port.
func (w *Wire) IsPort() bool { return w.PortInput || w.PortOutput }

// Cell is a word-level logic operator instance. Params hold integer cell
// parameters (widths, signedness); Conn maps port names to signals.
type Cell struct {
	Name   string
	Type   CellType
	Params map[string]int
	Conn   map[string]SigSpec
	Attrs  map[string]string
}

// Port returns the signal connected to the named port, or nil.
func (c *Cell) Port(name string) SigSpec { return c.Conn[name] }

// SetPort connects sig to the named port.
func (c *Cell) SetPort(name string, sig SigSpec) {
	c.Conn[name] = sig
}

// Param returns the named parameter, or 0 when absent.
func (c *Cell) Param(name string) int { return c.Params[name] }

// String renders a short description of the cell.
func (c *Cell) String() string {
	return fmt.Sprintf("%s %s", c.Type, c.Name)
}

// Connection is a module-level direct connection (continuous assignment)
// driving LHS from RHS. Widths always match.
type Connection struct {
	LHS, RHS SigSpec
}

// Module is a netlist: a set of wires, cells and connections.
type Module struct {
	Name  string
	Attrs map[string]string

	wires     map[string]*Wire
	cells     map[string]*Cell
	wireOrder []*Wire
	cellOrder []*Cell
	Conns     []Connection

	autoIdx int
}

// NewModule returns an empty module with the given name.
func NewModule(name string) *Module {
	return &Module{
		Name:  name,
		Attrs: map[string]string{},
		wires: map[string]*Wire{},
		cells: map[string]*Cell{},
	}
}

// Wire returns the named wire, or nil.
func (m *Module) Wire(name string) *Wire { return m.wires[name] }

// Cell returns the named cell, or nil.
func (m *Module) Cell(name string) *Cell { return m.cells[name] }

// Wires returns all wires in insertion order. The returned slice must not
// be mutated.
func (m *Module) Wires() []*Wire { return m.wireOrder }

// Cells returns all cells in insertion order. The returned slice must not
// be mutated; use AddCell/RemoveCell to change membership.
func (m *Module) Cells() []*Cell { return m.cellOrder }

// NumCells returns the number of cells in the module.
func (m *Module) NumCells() int { return len(m.cellOrder) }

// AddWire creates a new wire. It panics if the name is already taken or
// the width is not positive: both indicate a programming error in the
// caller, in the same spirit as Yosys' assertions.
func (m *Module) AddWire(name string, width int) *Wire {
	if width <= 0 {
		panic(fmt.Sprintf("rtlil: wire %s must have positive width, got %d", name, width))
	}
	if _, dup := m.wires[name]; dup {
		panic(fmt.Sprintf("rtlil: duplicate wire name %s in module %s", name, m.Name))
	}
	w := &Wire{Name: name, Width: width}
	m.wires[name] = w
	m.wireOrder = append(m.wireOrder, w)
	return w
}

// NewWire creates a fresh automatically-named internal wire.
func (m *Module) NewWire(width int) *Wire {
	return m.AddWire(m.autoName("auto"), width)
}

// NewWireHint creates an automatically-named wire whose name embeds a hint
// for readability of dumped netlists.
func (m *Module) NewWireHint(hint string, width int) *Wire {
	return m.AddWire(m.autoName(hint), width)
}

// autoName allocates an unused "$hint$N" name, skipping names already
// present (e.g. after reloading a serialized module).
func (m *Module) autoName(hint string) string {
	for {
		m.autoIdx++
		name := fmt.Sprintf("$%s$%d", hint, m.autoIdx)
		if _, takenW := m.wires[name]; takenW {
			continue
		}
		if _, takenC := m.cells[name]; takenC {
			continue
		}
		return name
	}
}

// AddInput declares a new input port wire of the given width.
func (m *Module) AddInput(name string, width int) *Wire {
	w := m.AddWire(name, width)
	w.PortInput = true
	w.PortID = m.nextPortID()
	return w
}

// AddOutput declares a new output port wire of the given width.
func (m *Module) AddOutput(name string, width int) *Wire {
	w := m.AddWire(name, width)
	w.PortOutput = true
	w.PortID = m.nextPortID()
	return w
}

func (m *Module) nextPortID() int {
	max := 0
	for _, w := range m.wireOrder {
		if w.PortID > max {
			max = w.PortID
		}
	}
	return max + 1
}

// Ports returns the module ports ordered by PortID.
func (m *Module) Ports() []*Wire {
	var ps []*Wire
	for _, w := range m.wireOrder {
		if w.IsPort() {
			ps = append(ps, w)
		}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].PortID < ps[j].PortID })
	return ps
}

// Inputs returns the input port wires ordered by PortID.
func (m *Module) Inputs() []*Wire {
	var ps []*Wire
	for _, w := range m.Ports() {
		if w.PortInput {
			ps = append(ps, w)
		}
	}
	return ps
}

// Outputs returns the output port wires ordered by PortID.
func (m *Module) Outputs() []*Wire {
	var ps []*Wire
	for _, w := range m.Ports() {
		if w.PortOutput {
			ps = append(ps, w)
		}
	}
	return ps
}

// AddCell creates a new cell of the given type. An empty name allocates an
// automatic one. It panics on duplicate names (programming error).
func (m *Module) AddCell(name string, typ CellType) *Cell {
	if name == "" {
		for {
			m.autoIdx++
			name = fmt.Sprintf("%s$%d", typ, m.autoIdx)
			if _, taken := m.cells[name]; !taken {
				break
			}
		}
	}
	if _, dup := m.cells[name]; dup {
		panic(fmt.Sprintf("rtlil: duplicate cell name %s in module %s", name, m.Name))
	}
	c := &Cell{
		Name:   name,
		Type:   typ,
		Params: map[string]int{},
		Conn:   map[string]SigSpec{},
	}
	m.cells[name] = c
	m.cellOrder = append(m.cellOrder, c)
	return c
}

// RemoveCell deletes the cell from the module. Removing a cell that is not
// in the module is a no-op.
func (m *Module) RemoveCell(c *Cell) {
	if m.cells[c.Name] != c {
		return
	}
	delete(m.cells, c.Name)
	for i, o := range m.cellOrder {
		if o == c {
			m.cellOrder = append(m.cellOrder[:i], m.cellOrder[i+1:]...)
			break
		}
	}
}

// RemoveWire deletes a non-port wire from the module. The caller is
// responsible for ensuring no cell or connection still references it
// (Validate catches violations).
func (m *Module) RemoveWire(w *Wire) {
	if m.wires[w.Name] != w {
		return
	}
	delete(m.wires, w.Name)
	for i, o := range m.wireOrder {
		if o == w {
			m.wireOrder = append(m.wireOrder[:i], m.wireOrder[i+1:]...)
			break
		}
	}
}

// Connect adds a direct connection driving lhs from rhs. Widths must match.
func (m *Module) Connect(lhs, rhs SigSpec) {
	if len(lhs) != len(rhs) {
		panic(fmt.Sprintf("rtlil: Connect width mismatch %d vs %d in %s", len(lhs), len(rhs), m.Name))
	}
	m.Conns = append(m.Conns, Connection{LHS: lhs.Copy(), RHS: rhs.Copy()})
}

// Clone returns a deep copy of the module. Cloned wires are distinct
// objects; all signals in the clone reference the cloned wires.
func (m *Module) Clone() *Module {
	n := NewModule(m.Name)
	n.autoIdx = m.autoIdx
	for k, v := range m.Attrs {
		n.Attrs[k] = v
	}
	wmap := make(map[*Wire]*Wire, len(m.wireOrder))
	for _, w := range m.wireOrder {
		nw := n.AddWire(w.Name, w.Width)
		nw.PortInput, nw.PortOutput, nw.PortID = w.PortInput, w.PortOutput, w.PortID
		if w.Attrs != nil {
			nw.Attrs = make(map[string]string, len(w.Attrs))
			for k, v := range w.Attrs {
				nw.Attrs[k] = v
			}
		}
		wmap[w] = nw
	}
	remap := func(s SigSpec) SigSpec {
		out := make(SigSpec, len(s))
		for i, b := range s {
			if b.Wire != nil {
				out[i] = SigBit{Wire: wmap[b.Wire], Offset: b.Offset}
			} else {
				out[i] = b
			}
		}
		return out
	}
	for _, c := range m.cellOrder {
		nc := n.AddCell(c.Name, c.Type)
		for k, v := range c.Params {
			nc.Params[k] = v
		}
		for k, v := range c.Conn {
			nc.Conn[k] = remap(v)
		}
		if c.Attrs != nil {
			nc.Attrs = make(map[string]string, len(c.Attrs))
			for k, v := range c.Attrs {
				nc.Attrs[k] = v
			}
		}
	}
	for _, cn := range m.Conns {
		n.Conns = append(n.Conns, Connection{LHS: remap(cn.LHS), RHS: remap(cn.RHS)})
	}
	return n
}

// Design is a collection of modules.
type Design struct {
	modules map[string]*Module
	order   []*Module
}

// NewDesign returns an empty design.
func NewDesign() *Design {
	return &Design{modules: map[string]*Module{}}
}

// AddModule adds a module to the design. It panics on duplicate names.
func (d *Design) AddModule(m *Module) {
	if _, dup := d.modules[m.Name]; dup {
		panic(fmt.Sprintf("rtlil: duplicate module %s", m.Name))
	}
	d.modules[m.Name] = m
	d.order = append(d.order, m)
}

// Module returns the named module, or nil.
func (d *Design) Module(name string) *Module { return d.modules[name] }

// ReplaceModule swaps the module of the same name for m, keeping its
// position in the design order (so per-module cache refills do not
// reorder the design). It panics when no module of that name exists:
// replacing is meaningful only for a module the design already holds.
func (d *Design) ReplaceModule(m *Module) {
	old, ok := d.modules[m.Name]
	if !ok {
		panic(fmt.Sprintf("rtlil: replacing unknown module %s", m.Name))
	}
	d.modules[m.Name] = m
	for i, cur := range d.order {
		if cur == old {
			d.order[i] = m
			return
		}
	}
}

// Modules returns the modules in insertion order.
func (d *Design) Modules() []*Module { return d.order }

// Top returns the single module of a one-module design, or the module
// named "top" if present, or nil.
func (d *Design) Top() *Module {
	if len(d.order) == 1 {
		return d.order[0]
	}
	return d.modules["top"]
}
