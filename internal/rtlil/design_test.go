package rtlil

import (
	"strings"
	"testing"
)

func TestAddWireAndPorts(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 4)
	b := m.AddInput("b", 4)
	y := m.AddOutput("y", 4)
	if !a.PortInput || a.PortID != 1 {
		t.Errorf("a: PortInput=%v PortID=%d", a.PortInput, a.PortID)
	}
	if b.PortID != 2 || y.PortID != 3 {
		t.Errorf("port ids b=%d y=%d", b.PortID, y.PortID)
	}
	if got := m.Ports(); len(got) != 3 || got[0] != a || got[2] != y {
		t.Errorf("Ports() = %v", got)
	}
	if got := m.Inputs(); len(got) != 2 {
		t.Errorf("Inputs() = %v", got)
	}
	if got := m.Outputs(); len(got) != 1 || got[0] != y {
		t.Errorf("Outputs() = %v", got)
	}
}

func TestAddWireDuplicatePanics(t *testing.T) {
	m := NewModule("m")
	m.AddWire("w", 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddWire did not panic")
		}
	}()
	m.AddWire("w", 2)
}

func TestAddWireZeroWidthPanics(t *testing.T) {
	m := NewModule("m")
	defer func() {
		if recover() == nil {
			t.Error("zero-width AddWire did not panic")
		}
	}()
	m.AddWire("w", 0)
}

func TestNewWireAutoNames(t *testing.T) {
	m := NewModule("m")
	w1 := m.NewWire(1)
	w2 := m.NewWire(2)
	if w1.Name == w2.Name {
		t.Error("auto names collide")
	}
	if !strings.HasPrefix(w1.Name, "$") {
		t.Errorf("auto name %q does not start with $", w1.Name)
	}
}

func TestRemoveCell(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 1).Bits()
	y := m.AddOutput("y", 1).Bits()
	c := m.AddUnary(CellNot, "inv", a, y)
	if m.NumCells() != 1 {
		t.Fatal("cell not added")
	}
	m.RemoveCell(c)
	if m.NumCells() != 0 || m.Cell("inv") != nil {
		t.Error("cell not removed")
	}
	m.RemoveCell(c) // double remove is a no-op
	if m.NumCells() != 0 {
		t.Error("double remove broke module")
	}
}

func TestRemoveWire(t *testing.T) {
	m := NewModule("m")
	w := m.AddWire("tmp", 3)
	m.RemoveWire(w)
	if m.Wire("tmp") != nil || len(m.Wires()) != 0 {
		t.Error("wire not removed")
	}
}

func TestConnectWidthMismatchPanics(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 2)
	b := m.AddWire("b", 3)
	defer func() {
		if recover() == nil {
			t.Error("Connect width mismatch did not panic")
		}
	}()
	m.Connect(a.Bits(), b.Bits())
}

func TestCellAutoName(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 1).Bits()
	y := m.AddWire("y", 1).Bits()
	c := m.AddUnary(CellNot, "", a, y)
	if c.Name == "" {
		t.Error("auto cell name empty")
	}
	if m.Cell(c.Name) != c {
		t.Error("auto-named cell not registered")
	}
}

func TestCloneDeep(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 2)
	b := m.AddInput("b", 2)
	y := m.AddOutput("y", 2)
	m.AddBinary(CellAnd, "g", a.Bits(), b.Bits(), y.Bits())
	m.Connect(SigSpec{y.Bit(0)}.Copy(), SigSpec{a.Bit(0)}.Copy())

	n := m.Clone()
	if n.Name != m.Name || n.NumCells() != 1 || len(n.Conns) != 1 {
		t.Fatalf("clone shape wrong: %d cells %d conns", n.NumCells(), len(n.Conns))
	}
	// Cloned wires must be new objects...
	if n.Wire("a") == a {
		t.Error("clone shares wire objects")
	}
	// ...and cloned cell signals must reference the cloned wires.
	g := n.Cell("g")
	if g.Conn["A"][0].Wire != n.Wire("a") {
		t.Error("cloned cell references original wires")
	}
	// Mutating the clone must not affect the original.
	n.Cell("g").SetPort("A", Const(0, 2))
	if m.Cell("g").Conn["A"][0].IsConst() {
		t.Error("clone mutation leaked into original")
	}
	// Port flags preserved.
	if !n.Wire("a").PortInput || !n.Wire("y").PortOutput {
		t.Error("clone lost port flags")
	}
}

func TestDesign(t *testing.T) {
	d := NewDesign()
	m1 := NewModule("alpha")
	m2 := NewModule("top")
	d.AddModule(m1)
	d.AddModule(m2)
	if d.Module("alpha") != m1 {
		t.Error("Module lookup failed")
	}
	if d.Top() != m2 {
		t.Error("Top() should pick module named top")
	}
	d2 := NewDesign()
	d2.AddModule(m1)
	if d2.Top() != m1 {
		t.Error("single-module Top() failed")
	}
}

func TestDesignDuplicatePanics(t *testing.T) {
	d := NewDesign()
	d.AddModule(NewModule("m"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate AddModule did not panic")
		}
	}()
	d.AddModule(NewModule("m"))
}

func TestWireBitPanics(t *testing.T) {
	m := NewModule("m")
	w := m.AddWire("w", 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Bit did not panic")
		}
	}()
	w.Bit(2)
}

func TestPmuxWord(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 4).Bits()
	b0 := m.AddInput("b0", 4).Bits()
	b1 := m.AddInput("b1", 4).Bits()
	s := m.AddInput("s", 2).Bits()
	y := m.AddOutput("y", 4).Bits()
	c := m.AddPmux("p", a, []SigSpec{b0, b1}, s, y)
	if !c.PmuxWord(0).Equal(b0) || !c.PmuxWord(1).Equal(b1) {
		t.Error("PmuxWord extraction wrong")
	}
}
