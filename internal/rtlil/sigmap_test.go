package rtlil

import "testing"

func TestSigMapIdentity(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 2)
	sm := NewSigMap(m)
	if sm.Bit(a.Bit(0)) != a.Bit(0) {
		t.Error("unconnected bit not mapped to itself")
	}
}

func TestSigMapAlias(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 4)
	b := m.AddWire("b", 4)
	m.Connect(b.Bits(), a.Bits()) // b = a
	sm := NewSigMap(m)
	for i := 0; i < 4; i++ {
		if sm.Bit(b.Bit(i)) != sm.Bit(a.Bit(i)) {
			t.Errorf("bit %d: alias not unified", i)
		}
	}
	// a was created first, so it is the canonical representative.
	if sm.Bit(b.Bit(0)).Wire != a {
		t.Error("canonical representative should be the earlier wire")
	}
}

func TestSigMapConstWins(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 1)
	m.Connect(a.Bits(), Const(1, 1))
	sm := NewSigMap(m)
	got := sm.Bit(a.Bit(0))
	if !got.IsConst() || got.Const != S1 {
		t.Errorf("constant should be canonical, got %v", got)
	}
}

func TestSigMapChain(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 1)
	b := m.AddWire("b", 1)
	c := m.AddWire("c", 1)
	m.Connect(b.Bits(), a.Bits())
	m.Connect(c.Bits(), b.Bits())
	sm := NewSigMap(m)
	if sm.Bit(c.Bit(0)).Wire != a {
		t.Errorf("chain alias: got %v, want a", sm.Bit(c.Bit(0)))
	}
}

func TestSigMapTransitiveConst(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 1)
	b := m.AddWire("b", 1)
	m.Connect(b.Bits(), a.Bits())
	m.Connect(a.Bits(), Const(0, 1))
	sm := NewSigMap(m)
	if got := sm.Bit(b.Bit(0)); !got.IsConst() || got.Const != S0 {
		t.Errorf("transitive const: got %v", got)
	}
}

func TestSigMapMapSpec(t *testing.T) {
	m := NewModule("m")
	a := m.AddWire("a", 2)
	b := m.AddWire("b", 2)
	m.Connect(b.Bits(), a.Bits())
	sm := NewSigMap(m)
	mapped := sm.Map(Concat(b.Bits(), Const(2, 2)))
	if mapped[0].Wire != a || mapped[1].Wire != a {
		t.Error("Map did not canonicalize wire bits")
	}
	if !mapped[2].IsConst() || mapped[3].Const != S1 {
		t.Error("Map disturbed constant bits")
	}
}

func TestSigMapAddWidthMismatchPanics(t *testing.T) {
	sm := NewSigMap(nil)
	defer func() {
		if recover() == nil {
			t.Error("Add width mismatch did not panic")
		}
	}()
	sm.Add(Const(0, 1), Const(0, 2))
}
