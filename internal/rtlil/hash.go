package rtlil

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// Canonical content hashing. The serving layer keys its result cache by
// netlist content, so the hash must identify the *logical* netlist, not
// one particular serialization of it: two modules that differ only in
// wire/cell insertion order, JSON object key order, map iteration order
// or connection statement order hash identically. Anything that changes
// semantics — names, widths, port directions and positions, cell types,
// parameters, connectivity — changes the hash.

// CanonicalHash returns the canonical content hash of the module as a
// lowercase hex SHA-256 string.
func CanonicalHash(m *Module) string {
	h := sha256.New()
	writeModule(h, m)
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalHashDesign returns the canonical content hash of the whole
// design: the module serializations combined in sorted name order.
func CanonicalHashDesign(d *Design) string {
	mods := append([]*Module(nil), d.Modules()...)
	sort.Slice(mods, func(i, j int) bool { return mods[i].Name < mods[j].Name })
	h := sha256.New()
	for _, m := range mods {
		writeModule(h, m)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeModule streams the canonical serialization of one module. Every
// name is written with %q so separators cannot be forged by crafted
// identifiers.
func writeModule(w io.Writer, m *Module) {
	fmt.Fprintf(w, "module %q\n", m.Name)
	writeAttrs(w, m.Attrs)

	wires := append([]*Wire(nil), m.Wires()...)
	sort.Slice(wires, func(i, j int) bool { return wires[i].Name < wires[j].Name })
	for _, wi := range wires {
		fmt.Fprintf(w, "wire %q %d %v %v %d\n",
			wi.Name, wi.Width, wi.PortInput, wi.PortOutput, wi.PortID)
		writeAttrs(w, wi.Attrs)
	}

	cells := append([]*Cell(nil), m.Cells()...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].Name < cells[j].Name })
	for _, c := range cells {
		fmt.Fprintf(w, "cell %q %q\n", c.Name, c.Type)
		for _, k := range sortedKeys(c.Params) {
			fmt.Fprintf(w, "param %q %d\n", k, c.Params[k])
		}
		ports := make([]string, 0, len(c.Conn))
		for k := range c.Conn {
			ports = append(ports, k)
		}
		sort.Strings(ports)
		for _, k := range ports {
			fmt.Fprintf(w, "port %q %s\n", k, sigString(c.Conn[k]))
		}
		writeAttrs(w, c.Attrs)
	}

	// Module-level connections are a set: the statement order carries no
	// semantics, so sort the rendered lines.
	lines := make([]string, len(m.Conns))
	for i, cn := range m.Conns {
		lines[i] = fmt.Sprintf("conn %s = %s\n", sigString(cn.LHS), sigString(cn.RHS))
	}
	sort.Strings(lines)
	for _, l := range lines {
		io.WriteString(w, l)
	}
}

func writeAttrs(w io.Writer, attrs map[string]string) {
	for _, k := range sortedKeys(attrs) {
		fmt.Fprintf(w, "attr %q %q\n", k, attrs[k])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sigString renders a signal as a canonical token list, LSB first:
// constants as '0'/'1'/'x'/'z', wire bits as name[offset].
func sigString(s SigSpec) string {
	buf := make([]byte, 0, 16*len(s))
	for i, b := range s {
		if i > 0 {
			buf = append(buf, ' ')
		}
		if b.IsConst() {
			buf = append(buf, '\'')
			buf = append(buf, b.Const.String()...)
		} else {
			buf = append(buf, fmt.Sprintf("%q[%d]", b.Wire.Name, b.Offset)...)
		}
	}
	return string(buf)
}
