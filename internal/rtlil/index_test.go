package rtlil

import "testing"

func buildIndexedModule(t *testing.T) (*Module, *Index, *Cell, *Cell) {
	t.Helper()
	m := NewModule("m")
	a := m.AddInput("a", 1).Bits()
	b := m.AddInput("b", 1).Bits()
	y := m.AddOutput("y", 1).Bits()
	mid := m.NewWire(1).Bits()
	g1 := m.AddBinary(CellAnd, "g1", a, b, mid)
	g2 := m.AddUnary(CellNot, "g2", mid, y)
	return m, NewIndex(m), g1, g2
}

func TestIndexDriver(t *testing.T) {
	m, ix, g1, g2 := buildIndexedModule(t)
	mid := g1.Conn["Y"][0]
	if d := ix.DriverCell(mid); d != g1 {
		t.Errorf("driver of mid = %v, want g1", d)
	}
	y := m.Wire("y").Bit(0)
	if d := ix.DriverCell(y); d != g2 {
		t.Errorf("driver of y = %v, want g2", d)
	}
	a := m.Wire("a").Bit(0)
	if d := ix.DriverCell(a); d != nil {
		t.Errorf("input bit has driver %v", d)
	}
}

func TestIndexReaders(t *testing.T) {
	m, ix, g1, g2 := buildIndexedModule(t)
	mid := g1.Conn["Y"][0]
	rs := ix.Readers(mid)
	if len(rs) != 1 || rs[0].Cell != g2 || rs[0].Port != "A" {
		t.Errorf("Readers(mid) = %v", rs)
	}
	a := m.Wire("a").Bit(0)
	if got := ix.FanoutCount(a); got != 1 {
		t.Errorf("FanoutCount(a) = %d", got)
	}
}

func TestIndexOutputBits(t *testing.T) {
	m, ix, _, _ := buildIndexedModule(t)
	y := m.Wire("y").Bit(0)
	a := m.Wire("a").Bit(0)
	if !ix.IsOutputBit(y) {
		t.Error("y not recognized as output bit")
	}
	if ix.IsOutputBit(a) {
		t.Error("a recognized as output bit")
	}
	if !ix.IsInputBit(a) {
		t.Error("a not recognized as input bit")
	}
	if got := ix.FanoutCount(y); got != 1 {
		t.Errorf("FanoutCount(y) = %d, want 1 (module output)", got)
	}
}

func TestIndexThroughAlias(t *testing.T) {
	m := NewModule("m")
	a := m.AddInput("a", 1).Bits()
	y := m.AddOutput("y", 1).Bits()
	mid := m.NewWire(1).Bits()
	alias := m.NewWire(1).Bits()
	g := m.AddUnary(CellNot, "g", a, mid)
	m.Connect(alias, mid)
	m.AddUnary(CellNot, "g2", alias, y)
	ix := NewIndex(m)
	// Looking up the driver through the alias must find g.
	if d := ix.DriverCell(alias[0]); d != g {
		t.Errorf("driver through alias = %v, want g", d)
	}
}
