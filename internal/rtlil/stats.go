package rtlil

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the contents of a module.
type Stats struct {
	Module    string
	NumWires  int
	NumBits   int
	NumCells  int
	ByType    map[CellType]int
	NumMuxes  int // $mux + $pmux
	NumSeq    int
	NumConns  int
	NumInputs int
	NumOutput int
}

// CollectStats gathers cell-type counts and netlist size figures.
func CollectStats(m *Module) Stats {
	s := Stats{Module: m.Name, ByType: map[CellType]int{}}
	for _, w := range m.Wires() {
		s.NumWires++
		s.NumBits += w.Width
		if w.PortInput {
			s.NumInputs++
		}
		if w.PortOutput {
			s.NumOutput++
		}
	}
	for _, c := range m.Cells() {
		s.NumCells++
		s.ByType[c.Type]++
		if c.Type == CellMux || c.Type == CellPmux {
			s.NumMuxes++
		}
		if IsSequential(c.Type) {
			s.NumSeq++
		}
	}
	s.NumConns = len(m.Conns)
	return s
}

// String renders the stats as a small human-readable report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s: %d wires (%d bits), %d cells, %d connections\n",
		s.Module, s.NumWires, s.NumBits, s.NumCells, s.NumConns)
	types := make([]string, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(&b, "  %-14s %6d\n", t, s.ByType[CellType(t)])
	}
	return b.String()
}
