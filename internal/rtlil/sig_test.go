package rtlil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	cases := map[State]string{S0: "0", S1: "1", Sx: "x", Sz: "z"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestStateBool(t *testing.T) {
	if v, known := S1.Bool(); !v || !known {
		t.Errorf("S1.Bool() = %v, %v", v, known)
	}
	if v, known := S0.Bool(); v || !known {
		t.Errorf("S0.Bool() = %v, %v", v, known)
	}
	if _, known := Sx.Bool(); known {
		t.Error("Sx.Bool() reported known")
	}
	if _, known := Sz.Bool(); known {
		t.Error("Sz.Bool() reported known")
	}
}

func TestBoolState(t *testing.T) {
	if BoolState(true) != S1 || BoolState(false) != S0 {
		t.Error("BoolState wrong")
	}
}

func TestConstRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 5, 0xff, 0xdeadbeef, 1 << 40} {
		s := Const(v, 64)
		got, ok := s.AsUint64()
		if !ok || got != v {
			t.Errorf("Const(%d, 64).AsUint64() = %d, %v", v, got, ok)
		}
	}
}

func TestConstTruncates(t *testing.T) {
	s := Const(0xff, 4)
	if got, _ := s.AsUint64(); got != 0xf {
		t.Errorf("Const(0xff, 4) = %d, want 15", got)
	}
}

func TestParseConst(t *testing.T) {
	cases := []struct {
		lit   string
		width int
		val   uint64
	}{
		{"3'b101", 3, 5},
		{"8'hff", 8, 255},
		{"8'hFF", 8, 255},
		{"4'd9", 4, 9},
		{"42", 32, 42},
		{"16'h00ff", 16, 255},
		{"6'o17", 6, 15},
		{"8'b0000_0011", 8, 3},
	}
	for _, c := range cases {
		s, err := ParseConst(c.lit)
		if err != nil {
			t.Errorf("ParseConst(%q): %v", c.lit, err)
			continue
		}
		if s.Width() != c.width {
			t.Errorf("ParseConst(%q).Width() = %d, want %d", c.lit, s.Width(), c.width)
		}
		if v, ok := s.AsUint64(); !ok || v != c.val {
			t.Errorf("ParseConst(%q) = %d (ok=%v), want %d", c.lit, v, ok, c.val)
		}
	}
}

func TestParseConstXZ(t *testing.T) {
	s, err := ParseConst("3'b1zz")
	if err != nil {
		t.Fatal(err)
	}
	// LSB first: z, z, 1
	if s[0].Const != Sz || s[1].Const != Sz || s[2].Const != S1 {
		t.Errorf("ParseConst(3'b1zz) = %v", s)
	}
	if s.IsFullyDefined() {
		t.Error("3'b1zz reported fully defined")
	}
	if !s.IsFullyConst() {
		t.Error("3'b1zz not fully const")
	}
	if _, ok := s.AsUint64(); ok {
		t.Error("AsUint64 succeeded on x/z constant")
	}
}

func TestParseConstErrors(t *testing.T) {
	for _, lit := range []string{"", "3'", "3'b", "3'b2", "0'b1", "3'q1", "abc", "4'hgg"} {
		if _, err := ParseConst(lit); err == nil {
			t.Errorf("ParseConst(%q) succeeded, want error", lit)
		}
	}
}

func TestExtractConcat(t *testing.T) {
	m := NewModule("t")
	a := m.AddWire("a", 8).Bits()
	b := m.AddWire("b", 4).Bits()
	cat := Concat(a, b)
	if cat.Width() != 12 {
		t.Fatalf("Concat width = %d", cat.Width())
	}
	if !cat.Extract(0, 8).Equal(a) {
		t.Error("low part not a")
	}
	if !cat.Extract(8, 4).Equal(b) {
		t.Error("high part not b")
	}
}

func TestExtractPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Extract out of range did not panic")
		}
	}()
	Const(0, 4).Extract(2, 4)
}

func TestResize(t *testing.T) {
	s := Const(5, 3) // 101
	z := s.Resize(6, false)
	if v, _ := z.AsUint64(); v != 5 {
		t.Errorf("zero extend = %d", v)
	}
	sx := s.Resize(6, true) // sign bit is 1
	if v, _ := sx.AsUint64(); v != 0b111101 {
		t.Errorf("sign extend = %b, want 111101", v)
	}
	tr := s.Resize(2, false)
	if v, _ := tr.AsUint64(); v != 1 {
		t.Errorf("truncate = %d, want 1", v)
	}
	if got := s.Resize(3, false); &got[0] != &s[0] {
		t.Error("same-width Resize should return the receiver")
	}
}

func TestRepeat(t *testing.T) {
	s := ConstBits(S1, S0)
	r := s.Repeat(3)
	if r.Width() != 6 {
		t.Fatalf("Repeat width = %d", r.Width())
	}
	for i := 0; i < 6; i += 2 {
		if r[i].Const != S1 || r[i+1].Const != S0 {
			t.Errorf("Repeat bit pattern wrong at %d", i)
		}
	}
}

func TestSigSpecString(t *testing.T) {
	m := NewModule("t")
	a := m.AddWire("a", 8)
	b := m.AddWire("b", 1)
	cases := []struct {
		sig  SigSpec
		want string
	}{
		{a.Bits(), "a"},
		{SigSpec{a.Bit(3)}, "a[3]"},
		{a.Bits().Extract(2, 3), "a[4:2]"},
		{b.Bits(), "b"},
		{Const(5, 3), "3'b101"},
		{Concat(b.Bits(), Const(1, 1)), "{1'b1, b}"},
		{SigSpec{}, "{}"},
	}
	for _, c := range cases {
		if got := c.sig.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestHasConst(t *testing.T) {
	m := NewModule("t")
	a := m.AddWire("a", 2).Bits()
	if a.HasConst() {
		t.Error("wire signal reported const")
	}
	if !Concat(a, Const(1, 1)).HasConst() {
		t.Error("mixed signal did not report const")
	}
}

// Property: Const/AsUint64 round-trips for any value at sufficient width.
func TestQuickConstRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		s := Const(v, 64)
		got, ok := s.AsUint64()
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Concat(a, b).Extract recovers both halves for random widths.
func TestQuickConcatExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		wa, wb := 1+rng.Intn(16), 1+rng.Intn(16)
		a := Const(rng.Uint64(), wa)
		b := Const(rng.Uint64(), wb)
		cat := Concat(a, b)
		if !cat.Extract(0, wa).Equal(a) || !cat.Extract(wa, wb).Equal(b) {
			t.Fatalf("iteration %d: concat/extract mismatch", i)
		}
	}
}

// Property: Resize to a larger width then back is the identity.
func TestQuickResizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		w := 1 + rng.Intn(20)
		s := Const(rng.Uint64(), w)
		grown := s.Resize(w+rng.Intn(10)+1, rng.Intn(2) == 0)
		if !grown.Resize(w, false).Equal(s) {
			t.Fatalf("iteration %d: resize round trip failed", i)
		}
	}
}
