package rtlil

import (
	"fmt"
)

// Validate checks structural well-formedness of the module:
//
//   - every cell type is known and every required port is connected;
//   - port widths are consistent with the cell parameters;
//   - cell signals reference only wires belonging to this module,
//     with in-range bit offsets;
//   - every bit has at most one driver (cell outputs and connection LHS).
//
// It returns the first problem found, or nil.
func (m *Module) Validate() error {
	checkSig := func(where string, s SigSpec) error {
		for i, b := range s {
			if b.IsConst() {
				continue
			}
			if got := m.wires[b.Wire.Name]; got != b.Wire {
				return fmt.Errorf("rtlil: %s bit %d references wire %q not in module %s", where, i, b.Wire.Name, m.Name)
			}
			if b.Offset < 0 || b.Offset >= b.Wire.Width {
				return fmt.Errorf("rtlil: %s bit %d offset %d out of range for wire %s[%d]", where, i, b.Offset, b.Wire.Name, b.Wire.Width)
			}
		}
		return nil
	}

	type driverInfo struct{ who string }
	driven := map[SigBit]driverInfo{}
	drive := func(who string, s SigSpec) error {
		for _, b := range s {
			if b.IsConst() {
				return fmt.Errorf("rtlil: %s drives a constant bit", who)
			}
			if prev, dup := driven[b]; dup {
				return fmt.Errorf("rtlil: bit %s driven by both %s and %s", b, prev.who, who)
			}
			driven[b] = driverInfo{who}
		}
		return nil
	}

	for _, c := range m.Cells() {
		spec, ok := cellSpecs[c.Type]
		if !ok {
			return fmt.Errorf("rtlil: cell %s has unknown type %s", c.Name, c.Type)
		}
		for _, p := range spec.inputs {
			if _, ok := c.Conn[p]; !ok {
				return fmt.Errorf("rtlil: cell %s (%s) missing input port %s", c.Name, c.Type, p)
			}
		}
		for _, p := range spec.outputs {
			if _, ok := c.Conn[p]; !ok {
				return fmt.Errorf("rtlil: cell %s (%s) missing output port %s", c.Name, c.Type, p)
			}
		}
		for port, sig := range c.Conn {
			if !c.IsInputPort(port) && !c.IsOutputPort(port) {
				return fmt.Errorf("rtlil: cell %s (%s) has unknown port %s", c.Name, c.Type, port)
			}
			if err := checkSig(fmt.Sprintf("cell %s port %s", c.Name, port), sig); err != nil {
				return err
			}
		}
		if err := m.validateCellWidths(c); err != nil {
			return err
		}
		for _, p := range spec.outputs {
			if err := drive(fmt.Sprintf("cell %s port %s", c.Name, p), c.Conn[p]); err != nil {
				return err
			}
		}
	}
	for i, cn := range m.Conns {
		if len(cn.LHS) != len(cn.RHS) {
			return fmt.Errorf("rtlil: connection %d width mismatch %d vs %d", i, len(cn.LHS), len(cn.RHS))
		}
		if err := checkSig(fmt.Sprintf("connection %d LHS", i), cn.LHS); err != nil {
			return err
		}
		if err := checkSig(fmt.Sprintf("connection %d RHS", i), cn.RHS); err != nil {
			return err
		}
		if err := drive(fmt.Sprintf("connection %d", i), cn.LHS); err != nil {
			return err
		}
	}
	return nil
}

func (m *Module) validateCellWidths(c *Cell) error {
	width := func(port string) int { return len(c.Conn[port]) }
	wantEq := func(port, param string) error {
		if w, ok := c.Params[param]; ok && w != width(port) {
			return fmt.Errorf("rtlil: cell %s (%s) port %s width %d != param %s=%d",
				c.Name, c.Type, port, width(port), param, w)
		}
		return nil
	}
	switch {
	case IsUnary(c.Type):
		if err := wantEq("A", "A_WIDTH"); err != nil {
			return err
		}
		if err := wantEq("Y", "Y_WIDTH"); err != nil {
			return err
		}
		switch c.Type {
		case CellReduceAnd, CellReduceOr, CellReduceXor, CellLogicNot:
			if width("Y") != 1 {
				return fmt.Errorf("rtlil: cell %s (%s) must have 1-bit Y, got %d", c.Name, c.Type, width("Y"))
			}
		case CellNot, CellNeg:
			if width("A") != width("Y") {
				return fmt.Errorf("rtlil: cell %s (%s) A width %d != Y width %d", c.Name, c.Type, width("A"), width("Y"))
			}
		}
	case IsBinary(c.Type):
		for port, param := range map[string]string{"A": "A_WIDTH", "B": "B_WIDTH", "Y": "Y_WIDTH"} {
			if err := wantEq(port, param); err != nil {
				return err
			}
		}
		if IsCompare(c.Type) || c.Type == CellLogicAnd || c.Type == CellLogicOr {
			if width("Y") != 1 {
				return fmt.Errorf("rtlil: cell %s (%s) must have 1-bit Y, got %d", c.Name, c.Type, width("Y"))
			}
		}
		if IsCompare(c.Type) && width("A") != width("B") {
			return fmt.Errorf("rtlil: cell %s (%s) A width %d != B width %d", c.Name, c.Type, width("A"), width("B"))
		}
	case c.Type == CellMux:
		w := c.Params["WIDTH"]
		if width("A") != w || width("B") != w || width("Y") != w {
			return fmt.Errorf("rtlil: cell %s ($mux) widths A=%d B=%d Y=%d != WIDTH=%d",
				c.Name, width("A"), width("B"), width("Y"), w)
		}
		if width("S") != 1 {
			return fmt.Errorf("rtlil: cell %s ($mux) S width %d != 1", c.Name, width("S"))
		}
	case c.Type == CellPmux:
		w, sw := c.Params["WIDTH"], c.Params["S_WIDTH"]
		if width("A") != w || width("Y") != w {
			return fmt.Errorf("rtlil: cell %s ($pmux) A/Y width %d/%d != WIDTH=%d", c.Name, width("A"), width("Y"), w)
		}
		if width("B") != w*sw {
			return fmt.Errorf("rtlil: cell %s ($pmux) B width %d != WIDTH*S_WIDTH=%d", c.Name, width("B"), w*sw)
		}
		if width("S") != sw {
			return fmt.Errorf("rtlil: cell %s ($pmux) S width %d != S_WIDTH=%d", c.Name, width("S"), sw)
		}
	case c.Type == CellDff:
		if width("D") != width("Q") {
			return fmt.Errorf("rtlil: cell %s ($dff) D width %d != Q width %d", c.Name, width("D"), width("Q"))
		}
		if width("CLK") != 1 {
			return fmt.Errorf("rtlil: cell %s ($dff) CLK width %d != 1", c.Name, width("CLK"))
		}
		if err := wantEq("Q", "WIDTH"); err != nil {
			return err
		}
	}
	return nil
}
