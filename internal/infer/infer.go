// Package infer implements the known-value inference engine of smaRTLy's
// SAT-based redundancy elimination (paper §II, Table I).
//
// Given a set of assumed bit values (the muxtree path condition), the
// engine propagates implications through cells both forward (inputs →
// output, via the four-state evaluator) and backward (output → inputs;
// e.g. the paper's OR rules: a|b = 0 ⇒ a = b = 0, and a|b = 1 with
// a = 0 ⇒ b = 1). Propagation runs to a fixpoint; a contradiction means
// the assumed path condition is unreachable.
//
// The cheap fixpoint resolves most of the paper's motivating cases (such
// as Figure 3's S ⇒ S|R = 1) without invoking the SAT solver at all.
package infer

import (
	"repro/internal/rtlil"
	"repro/internal/sim"
)

// Engine propagates known bit values through a module (or a restricted
// cell sub-set) to a fixpoint.
type Engine struct {
	ix       *rtlil.Index
	known    map[rtlil.SigBit]rtlil.State
	cellSet  map[*rtlil.Cell]bool // nil = all module cells participate
	pending  []*rtlil.Cell
	inQueue  map[*rtlil.Cell]bool
	conflict bool
	facts    int
}

// New creates an engine over the indexed module. If cells is non-nil,
// only those cells participate in propagation (the sub-graph case).
func New(ix *rtlil.Index, cells []*rtlil.Cell) *Engine {
	e := &Engine{
		ix:      ix,
		known:   map[rtlil.SigBit]rtlil.State{},
		inQueue: map[*rtlil.Cell]bool{},
	}
	if cells != nil {
		e.cellSet = make(map[*rtlil.Cell]bool, len(cells))
		for _, c := range cells {
			e.cellSet[c] = true
		}
	}
	return e
}

func (e *Engine) inScope(c *rtlil.Cell) bool {
	if rtlil.IsSequential(c.Type) {
		return false
	}
	return e.cellSet == nil || e.cellSet[c]
}

// Assume records that bit b has value v (S0 or S1) and schedules
// propagation. Assuming both values for one bit raises a conflict.
func (e *Engine) Assume(b rtlil.SigBit, v rtlil.State) {
	e.setBit(b, v)
}

// AssumeSig records known values for every defined state in vals.
func (e *Engine) AssumeSig(sig rtlil.SigSpec, vals []rtlil.State) {
	for i, b := range sig {
		if vals[i] == rtlil.S0 || vals[i] == rtlil.S1 {
			e.Assume(b, vals[i])
		}
	}
}

// Value returns the inferred value of b, if known.
func (e *Engine) Value(b rtlil.SigBit) (rtlil.State, bool) {
	b = e.ix.MapBit(b)
	if b.IsConst() {
		if b.Const == rtlil.S0 || b.Const == rtlil.S1 {
			return b.Const, true
		}
		return rtlil.Sx, false
	}
	v, ok := e.known[b]
	return v, ok
}

// ValueSig returns the signal's known values (Sx for unknown bits).
func (e *Engine) ValueSig(sig rtlil.SigSpec) []rtlil.State {
	out := make([]rtlil.State, len(sig))
	for i, b := range sig {
		if v, ok := e.Value(b); ok {
			out[i] = v
		} else {
			out[i] = rtlil.Sx
		}
	}
	return out
}

// NumFacts returns the number of bit values learned so far (assumptions
// included).
func (e *Engine) NumFacts() int { return e.facts }

// Conflict reports whether the assumptions are contradictory.
func (e *Engine) Conflict() bool { return e.conflict }

func (e *Engine) setBit(b rtlil.SigBit, v rtlil.State) {
	if v != rtlil.S0 && v != rtlil.S1 {
		return
	}
	b = e.ix.MapBit(b)
	if b.IsConst() {
		if (b.Const == rtlil.S0 || b.Const == rtlil.S1) && b.Const != v {
			e.conflict = true
		}
		return
	}
	if old, ok := e.known[b]; ok {
		if old != v {
			e.conflict = true
		}
		return
	}
	e.known[b] = v
	e.facts++
	// Schedule the driver and all readers for (re)examination.
	if d := e.ix.DriverCell(b); d != nil && e.inScope(d) {
		e.enqueue(d)
	}
	for _, r := range e.ix.Readers(b) {
		if e.inScope(r.Cell) {
			e.enqueue(r.Cell)
		}
	}
}

func (e *Engine) enqueue(c *rtlil.Cell) {
	if !e.inQueue[c] {
		e.inQueue[c] = true
		e.pending = append(e.pending, c)
	}
}

// Propagate runs inference to a fixpoint. It returns false if the
// assumptions are contradictory (the path is unreachable).
func (e *Engine) Propagate() bool {
	for len(e.pending) > 0 && !e.conflict {
		c := e.pending[len(e.pending)-1]
		e.pending = e.pending[:len(e.pending)-1]
		e.inQueue[c] = false
		e.forward(c)
		if e.conflict {
			break
		}
		e.backward(c)
	}
	return !e.conflict
}

// forward evaluates the cell over currently known values; any defined
// output bit becomes a fact.
func (e *Engine) forward(c *rtlil.Cell) {
	in := map[string][]rtlil.State{}
	for _, p := range rtlil.InputPorts(c.Type) {
		in[p] = e.ValueSig(c.Port(p))
	}
	out, err := sim.EvalCell(c, in)
	if err != nil {
		return
	}
	y := c.Port(rtlil.OutputPorts(c.Type)[0])
	for i, b := range y {
		if out[i] == rtlil.S0 || out[i] == rtlil.S1 {
			e.setBit(b, out[i])
		}
	}
}

// backward applies output-to-input implication rules.
func (e *Engine) backward(c *rtlil.Cell) {
	y := e.ValueSig(c.Port("Y"))
	switch c.Type {
	case rtlil.CellNot:
		a := c.Port("A")
		for i := range y {
			if i < len(a) && (y[i] == rtlil.S0 || y[i] == rtlil.S1) {
				e.setBit(a[i], sim.Not3(y[i]))
			}
		}

	case rtlil.CellAnd, rtlil.CellOr:
		e.backwardBitwise(c, y)

	case rtlil.CellXor, rtlil.CellXnor:
		a, b := c.Port("A"), c.Port("B")
		av, bv := e.ValueSig(a), e.ValueSig(b)
		for i := range y {
			if y[i] != rtlil.S0 && y[i] != rtlil.S1 {
				continue
			}
			yi := y[i]
			if c.Type == rtlil.CellXnor {
				yi = sim.Not3(yi)
			}
			if i < len(a) && i < len(b) {
				if av[i] == rtlil.S0 || av[i] == rtlil.S1 {
					e.setBit(b[i], sim.Xor3(yi, av[i]))
				}
				if bv[i] == rtlil.S0 || bv[i] == rtlil.S1 {
					e.setBit(a[i], sim.Xor3(yi, bv[i]))
				}
			}
		}

	case rtlil.CellReduceAnd:
		e.backwardReduce(c, y[0], rtlil.S1)
	case rtlil.CellReduceOr:
		e.backwardReduce(c, y[0], rtlil.S0)
	case rtlil.CellLogicNot:
		e.backwardReduce(c, sim.Not3(y[0]), rtlil.S0)

	case rtlil.CellLogicAnd, rtlil.CellLogicOr:
		e.backwardLogicBin(c, y[0])

	case rtlil.CellEq, rtlil.CellNe:
		e.backwardEq(c, y[0])

	case rtlil.CellMux:
		e.backwardMux(c, y)

	case rtlil.CellPmux:
		e.backwardPmux(c, y)
	}
}

// backwardBitwise handles $and / $or per bit. For $or this is exactly the
// paper's Table I; $and is the dual.
func (e *Engine) backwardBitwise(c *rtlil.Cell, y []rtlil.State) {
	a, b := c.Port("A"), c.Port("B")
	av, bv := e.ValueSig(a), e.ValueSig(b)
	forcing, forced := rtlil.S1, rtlil.S0 // $or: y=1&a=0 ⇒ b=1; y=0 ⇒ a=b=0
	if c.Type == rtlil.CellAnd {
		forcing, forced = rtlil.S0, rtlil.S1 // $and: y=0&a=1 ⇒ b=0; y=1 ⇒ a=b=1
	}
	for i := range y {
		if i >= len(a) || i >= len(b) {
			continue
		}
		switch y[i] {
		case forced:
			// The non-dominant output forces both inputs.
			e.setBit(a[i], forced)
			e.setBit(b[i], forced)
		case forcing:
			// Dominant output with one input known non-dominant forces
			// the other input.
			if av[i] == forced {
				e.setBit(b[i], forcing)
			}
			if bv[i] == forced {
				e.setBit(a[i], forcing)
			}
		}
	}
}

// backwardReduce handles reduce gates: absorbing is the input value that
// cannot occur when the output proves all inputs are the other value.
func (e *Engine) backwardReduce(c *rtlil.Cell, y rtlil.State, zero rtlil.State) {
	a := c.Port("A")
	av := e.ValueSig(a)
	one := sim.Not3(zero)
	switch y {
	case zero:
		// reduce_or = 0 ⇒ all inputs 0; reduce_and = 1 ⇒ all inputs 1
		// (the roles are mirrored via the zero parameter).
		for _, b := range a {
			e.setBit(b, zero)
		}
	case one:
		// Exactly one undetermined input with all others at the neutral
		// value forces it.
		unknown := -1
		for i := range a {
			switch av[i] {
			case one:
				return // already satisfied
			case zero:
			default:
				if unknown >= 0 {
					return // more than one free input
				}
				unknown = i
			}
		}
		if unknown >= 0 {
			e.setBit(a[unknown], one)
		} else {
			e.conflict = true // all inputs neutral but output claims otherwise
		}
	}
}

func (e *Engine) backwardLogicBin(c *rtlil.Cell, y rtlil.State) {
	a, b := c.Port("A"), c.Port("B")
	redA := reduce3(e.ValueSig(a))
	redB := reduce3(e.ValueSig(b))
	if c.Type == rtlil.CellLogicAnd {
		switch y {
		case rtlil.S1:
			e.forceReduce(a, rtlil.S1)
			e.forceReduce(b, rtlil.S1)
		case rtlil.S0:
			if redA == rtlil.S1 {
				e.forceReduce(b, rtlil.S0)
			}
			if redB == rtlil.S1 {
				e.forceReduce(a, rtlil.S0)
			}
		}
		return
	}
	// $logic_or
	switch y {
	case rtlil.S0:
		e.forceReduce(a, rtlil.S0)
		e.forceReduce(b, rtlil.S0)
	case rtlil.S1:
		if redA == rtlil.S0 {
			e.forceReduce(b, rtlil.S1)
		}
		if redB == rtlil.S0 {
			e.forceReduce(a, rtlil.S1)
		}
	}
}

// forceReduce makes |sig equal to v: v=0 zeroes every bit; v=1 forces a
// single undetermined bit when all others are 0.
func (e *Engine) forceReduce(sig rtlil.SigSpec, v rtlil.State) {
	vals := e.ValueSig(sig)
	if v == rtlil.S0 {
		for _, b := range sig {
			e.setBit(b, rtlil.S0)
		}
		return
	}
	unknown := -1
	for i := range sig {
		switch vals[i] {
		case rtlil.S1:
			return
		case rtlil.S0:
		default:
			if unknown >= 0 {
				return
			}
			unknown = i
		}
	}
	if unknown >= 0 {
		e.setBit(sig[unknown], rtlil.S1)
	} else {
		e.conflict = true
	}
}

func reduce3(vals []rtlil.State) rtlil.State {
	r := rtlil.S0
	for _, v := range vals {
		r = sim.Or3(r, v)
	}
	return r
}

// backwardEq handles $eq / $ne.
func (e *Engine) backwardEq(c *rtlil.Cell, y rtlil.State) {
	if y != rtlil.S0 && y != rtlil.S1 {
		return
	}
	if c.Type == rtlil.CellNe {
		y = sim.Not3(y)
	}
	a, b := c.Port("A"), c.Port("B")
	av, bv := e.ValueSig(a), e.ValueSig(b)
	if y == rtlil.S1 {
		// Equal: copy known bits across.
		for i := range a {
			if i >= len(b) {
				break
			}
			if av[i] == rtlil.S0 || av[i] == rtlil.S1 {
				e.setBit(b[i], av[i])
			}
			if bv[i] == rtlil.S0 || bv[i] == rtlil.S1 {
				e.setBit(a[i], bv[i])
			}
		}
		return
	}
	// Not equal: if exactly one bit pair is undecided and all other
	// pairs are known equal, the undecided pair must differ.
	undecided := -1
	for i := range a {
		if i >= len(b) {
			break
		}
		known := (av[i] == rtlil.S0 || av[i] == rtlil.S1) && (bv[i] == rtlil.S0 || bv[i] == rtlil.S1)
		if known {
			if av[i] != bv[i] {
				return // already satisfied
			}
			continue
		}
		if undecided >= 0 {
			return
		}
		undecided = i
	}
	if undecided < 0 {
		e.conflict = true
		return
	}
	i := undecided
	if av[i] == rtlil.S0 || av[i] == rtlil.S1 {
		e.setBit(b[i], sim.Not3(av[i]))
	} else if bv[i] == rtlil.S0 || bv[i] == rtlil.S1 {
		e.setBit(a[i], sim.Not3(bv[i]))
	}
}

// backwardMux infers through $mux: a known output bit that matches only
// one branch determines the select; a known select forwards output bits
// into the active branch.
func (e *Engine) backwardMux(c *rtlil.Cell, y []rtlil.State) {
	a, b, s := c.Port("A"), c.Port("B"), c.Port("S")
	av, bv := e.ValueSig(a), e.ValueSig(b)
	sv, sKnown := e.Value(s[0])
	for i := range y {
		if y[i] != rtlil.S0 && y[i] != rtlil.S1 {
			continue
		}
		if sKnown {
			if sv == rtlil.S0 {
				e.setBit(a[i], y[i])
			} else {
				e.setBit(b[i], y[i])
			}
			continue
		}
		aK := av[i] == rtlil.S0 || av[i] == rtlil.S1
		bK := bv[i] == rtlil.S0 || bv[i] == rtlil.S1
		if aK && bK && av[i] != bv[i] {
			if y[i] == bv[i] {
				e.setBit(s[0], rtlil.S1)
			} else {
				e.setBit(s[0], rtlil.S0)
			}
		} else if aK && av[i] != y[i] {
			// Output differs from A, so B must be selected.
			e.setBit(s[0], rtlil.S1)
			e.setBit(b[i], y[i])
		} else if bK && bv[i] != y[i] {
			e.setBit(s[0], rtlil.S0)
			e.setBit(a[i], y[i])
		}
	}
}

// backwardPmux: with all select bits known, forward output bits into the
// selected word (or the default).
func (e *Engine) backwardPmux(c *rtlil.Cell, y []rtlil.State) {
	w := c.Param("WIDTH")
	sw := c.Param("S_WIDTH")
	s := c.Port("S")
	sv := e.ValueSig(s)
	sel := -1
	for i := 0; i < sw; i++ {
		switch sv[i] {
		case rtlil.S1:
			if sel >= 0 {
				return // multi-hot: leave to four-state semantics
			}
			sel = i
		case rtlil.S0:
		default:
			return
		}
	}
	var target rtlil.SigSpec
	if sel < 0 {
		target = c.Port("A")
	} else {
		target = c.Port("B").Extract(sel*w, w)
	}
	for i := range y {
		if y[i] == rtlil.S0 || y[i] == rtlil.S1 {
			e.setBit(target[i], y[i])
		}
	}
}
