package infer

import (
	"math/rand"
	"testing"

	"repro/internal/rtlil"
	"repro/internal/sim"
)

func engineFor(m *rtlil.Module) *Engine {
	return New(rtlil.NewIndex(m), nil)
}

// TestTableI verifies each row of the paper's Table I (inference rules
// for OR cells) literally.
func TestTableI(t *testing.T) {
	build := func() (*rtlil.Module, rtlil.SigBit, rtlil.SigBit, rtlil.SigBit) {
		m := rtlil.NewModule("m")
		a := m.AddInput("a", 1)
		b := m.AddInput("b", 1)
		y := m.AddOutput("y", 1)
		m.AddBinary(rtlil.CellOr, "or", a.Bits(), b.Bits(), y.Bits())
		return m, a.Bit(0), b.Bit(0), y.Bit(0)
	}
	type fact struct {
		bit string // "a","b","y"
		val rtlil.State
	}
	rows := []struct {
		name    string
		cond    []fact
		results []fact
	}{
		{"a=true => a|b=true", []fact{{"a", rtlil.S1}}, []fact{{"y", rtlil.S1}}},
		{"b=true => a|b=true", []fact{{"b", rtlil.S1}}, []fact{{"y", rtlil.S1}}},
		{"a=b=false => a|b=false", []fact{{"a", rtlil.S0}, {"b", rtlil.S0}}, []fact{{"y", rtlil.S0}}},
		{"a|b=false => a=b=false", []fact{{"y", rtlil.S0}}, []fact{{"a", rtlil.S0}, {"b", rtlil.S0}}},
		{"a|b=true, a=false => b=true", []fact{{"y", rtlil.S1}, {"a", rtlil.S0}}, []fact{{"b", rtlil.S1}}},
		{"a|b=true, b=false => a=true", []fact{{"y", rtlil.S1}, {"b", rtlil.S0}}, []fact{{"a", rtlil.S1}}},
	}
	for _, row := range rows {
		m, ab, bb, yb := build()
		e := engineFor(m)
		get := func(n string) rtlil.SigBit {
			switch n {
			case "a":
				return ab
			case "b":
				return bb
			}
			return yb
		}
		for _, f := range row.cond {
			e.Assume(get(f.bit), f.val)
		}
		if !e.Propagate() {
			t.Errorf("%s: unexpected conflict", row.name)
			continue
		}
		for _, f := range row.results {
			got, ok := e.Value(get(f.bit))
			if !ok || got != f.val {
				t.Errorf("%s: %s = %v (known=%v), want %s", row.name, f.bit, got, ok, f.val)
			}
		}
	}
}

// TestFigure3 reproduces the paper's Figure 3 situation: with S assumed 1,
// the engine must infer S|R = 1 so the inner mux's control is known.
func TestFigure3(t *testing.T) {
	m := rtlil.NewModule("fig3")
	s := m.AddInput("s", 1)
	r := m.AddInput("r", 1)
	or := m.Or(s.Bits(), r.Bits())
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), or)
	e := engineFor(m)
	e.Assume(s.Bit(0), rtlil.S1)
	if !e.Propagate() {
		t.Fatal("conflict")
	}
	if v, ok := e.Value(or[0]); !ok || v != rtlil.S1 {
		t.Errorf("S|R = %v (known=%v), want 1", v, ok)
	}
}

func TestAndDualRules(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1)
	b := m.AddInput("b", 1)
	y := m.AddOutput("y", 1)
	m.AddBinary(rtlil.CellAnd, "and", a.Bits(), b.Bits(), y.Bits())

	e := engineFor(m)
	e.Assume(y.Bit(0), rtlil.S1)
	e.Propagate()
	if v, _ := e.Value(a.Bit(0)); v != rtlil.S1 {
		t.Error("a&b=1 should force a=1")
	}
	if v, _ := e.Value(b.Bit(0)); v != rtlil.S1 {
		t.Error("a&b=1 should force b=1")
	}

	e = engineFor(m)
	e.Assume(y.Bit(0), rtlil.S0)
	e.Assume(a.Bit(0), rtlil.S1)
	e.Propagate()
	if v, _ := e.Value(b.Bit(0)); v != rtlil.S0 {
		t.Error("a&b=0, a=1 should force b=0")
	}
}

func TestNotBidirectional(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1)
	y := m.AddOutput("y", 1)
	m.AddUnary(rtlil.CellNot, "inv", a.Bits(), y.Bits())
	e := engineFor(m)
	e.Assume(y.Bit(0), rtlil.S0)
	e.Propagate()
	if v, _ := e.Value(a.Bit(0)); v != rtlil.S1 {
		t.Error("~a=0 should force a=1")
	}
}

func TestXorBackward(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1)
	b := m.AddInput("b", 1)
	y := m.AddOutput("y", 1)
	m.AddBinary(rtlil.CellXor, "x", a.Bits(), b.Bits(), y.Bits())
	e := engineFor(m)
	e.Assume(y.Bit(0), rtlil.S1)
	e.Assume(a.Bit(0), rtlil.S1)
	e.Propagate()
	if v, _ := e.Value(b.Bit(0)); v != rtlil.S0 {
		t.Error("a^b=1, a=1 should force b=0")
	}
}

func TestReduceOrBackward(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 3)
	y := m.AddOutput("y", 1)
	m.AddUnary(rtlil.CellReduceOr, "r", a.Bits(), y.Bits())

	e := engineFor(m)
	e.Assume(y.Bit(0), rtlil.S0)
	e.Propagate()
	for i := 0; i < 3; i++ {
		if v, _ := e.Value(a.Bit(i)); v != rtlil.S0 {
			t.Errorf("|a=0 should force a[%d]=0", i)
		}
	}

	e = engineFor(m)
	e.Assume(y.Bit(0), rtlil.S1)
	e.Assume(a.Bit(0), rtlil.S0)
	e.Assume(a.Bit(2), rtlil.S0)
	e.Propagate()
	if v, _ := e.Value(a.Bit(1)); v != rtlil.S1 {
		t.Error("|a=1 with other bits 0 should force the last bit")
	}
}

func TestEqBackward(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 2)
	b := m.AddInput("b", 2)
	y := m.AddOutput("y", 1)
	m.AddBinary(rtlil.CellEq, "e", a.Bits(), b.Bits(), y.Bits())

	// eq=1 copies known bits across.
	e := engineFor(m)
	e.Assume(y.Bit(0), rtlil.S1)
	e.Assume(a.Bit(0), rtlil.S1)
	e.Assume(b.Bit(1), rtlil.S0)
	e.Propagate()
	if v, _ := e.Value(b.Bit(0)); v != rtlil.S1 {
		t.Error("eq=1 should copy a[0] to b[0]")
	}
	if v, _ := e.Value(a.Bit(1)); v != rtlil.S0 {
		t.Error("eq=1 should copy b[1] to a[1]")
	}

	// eq against a constant: assuming eq=1 reveals the input value.
	m2 := rtlil.NewModule("m2")
	s := m2.AddInput("s", 2)
	eq := m2.Eq(s.Bits(), rtlil.Const(2, 2))
	y2 := m2.AddOutput("y", 1)
	m2.Connect(y2.Bits(), eq)
	e2 := engineFor(m2)
	e2.Assume(eq[0], rtlil.S1)
	e2.Propagate()
	if v, _ := e2.Value(s.Bit(0)); v != rtlil.S0 {
		t.Error("s==2 should force s[0]=0")
	}
	if v, _ := e2.Value(s.Bit(1)); v != rtlil.S1 {
		t.Error("s==2 should force s[1]=1")
	}

	// eq=0 with one undecided pair forces inequality.
	e3 := engineFor(m2)
	e3.Assume(eq[0], rtlil.S0)
	e3.Assume(s.Bit(1), rtlil.S1) // matches the constant bit
	e3.Propagate()
	if v, _ := e3.Value(s.Bit(0)); v != rtlil.S1 {
		t.Error("s!=2 with s[1]=1 should force s[0]=1")
	}
}

func TestMuxBackward(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1)
	b := m.AddInput("b", 1)
	s := m.AddInput("s", 1)
	y := m.AddOutput("y", 1)
	m.AddMux("mx", a.Bits(), b.Bits(), s.Bits(), y.Bits())

	// Known select forwards y into the chosen branch.
	e := engineFor(m)
	e.Assume(s.Bit(0), rtlil.S1)
	e.Assume(y.Bit(0), rtlil.S0)
	e.Propagate()
	if v, _ := e.Value(b.Bit(0)); v != rtlil.S0 {
		t.Error("s=1, y=0 should force b=0")
	}

	// Output matching only one branch reveals the select.
	e = engineFor(m)
	e.Assume(a.Bit(0), rtlil.S0)
	e.Assume(b.Bit(0), rtlil.S1)
	e.Assume(y.Bit(0), rtlil.S1)
	e.Propagate()
	if v, _ := e.Value(s.Bit(0)); v != rtlil.S1 {
		t.Error("y=b!=a should force s=1")
	}
}

func TestConflictDetection(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1)
	y := m.AddOutput("y", 1)
	m.AddUnary(rtlil.CellNot, "inv", a.Bits(), y.Bits())
	e := engineFor(m)
	e.Assume(a.Bit(0), rtlil.S1)
	e.Assume(y.Bit(0), rtlil.S1) // impossible: y = ~a
	if e.Propagate() {
		t.Error("contradictory assumptions not detected")
	}
	if !e.Conflict() {
		t.Error("Conflict() false after contradiction")
	}
}

func TestScopedEngineIgnoresOutsideCells(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1)
	mid := m.Not(a.Bits())
	y := m.AddOutput("y", 1)
	m.AddUnary(rtlil.CellNot, "inv2", mid, y.Bits())
	ix := rtlil.NewIndex(m)
	// Scope contains only the second inverter.
	e := New(ix, []*rtlil.Cell{m.Cell("inv2")})
	e.Assume(a.Bit(0), rtlil.S1)
	if !e.Propagate() {
		t.Fatal("conflict")
	}
	// mid is driven by the out-of-scope inverter: must stay unknown.
	if _, ok := e.Value(mid[0]); ok {
		t.Error("out-of-scope cell propagated")
	}
}

// TestInferenceSoundness: every fact inferred from random assumptions
// must hold in every input completion consistent with those assumptions
// (verified by exhaustive simulation over small circuits).
func TestInferenceSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		m, inputs := smallRandomModule(rng)
		simr, err := sim.NewSimulator(m)
		if err != nil {
			t.Fatal(err)
		}
		ix := rtlil.NewIndex(m)
		e := New(ix, nil)

		// Assume 1-2 random internal or input bits, values drawn from a
		// consistent input assignment so no conflict is expected... or
		// random values, in which case conflicts are legitimate.
		allBits := allWireBits(m)
		var assumed []struct {
			b rtlil.SigBit
			v rtlil.State
		}
		for k := 0; k < 1+rng.Intn(2); k++ {
			b := allBits[rng.Intn(len(allBits))]
			v := rtlil.BoolState(rng.Intn(2) == 1)
			assumed = append(assumed, struct {
				b rtlil.SigBit
				v rtlil.State
			}{b, v})
			e.Assume(b, v)
		}
		ok := e.Propagate()

		// Enumerate all input assignments; keep those consistent with
		// the assumptions.
		n := len(inputs)
		consistent := 0
		for mask := 0; mask < 1<<uint(n); mask++ {
			in := map[rtlil.SigBit]rtlil.State{}
			for i, b := range inputs {
				in[b] = rtlil.BoolState((mask>>uint(i))&1 == 1)
			}
			vals, err := simr.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			match := true
			for _, as := range assumed {
				got := simr.EvalSig(vals, rtlil.SigSpec{as.b})[0]
				if got != as.v {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			consistent++
			if !ok {
				t.Fatalf("trial %d: engine reported conflict but assignment %b is consistent", trial, mask)
			}
			// Every inferred fact must hold here.
			for _, b := range allBits {
				if v, known := e.Value(b); known {
					got := simr.EvalSig(vals, rtlil.SigSpec{b})[0]
					if got != v {
						t.Fatalf("trial %d: inferred %v=%s but simulation gives %s (mask=%b)",
							trial, b, v, got, mask)
					}
				}
			}
		}
		_ = consistent
	}
}

func smallRandomModule(rng *rand.Rand) (*rtlil.Module, []rtlil.SigBit) {
	m := rtlil.NewModule("r")
	var inputs []rtlil.SigBit
	var sigs []rtlil.SigSpec
	for i := 0; i < 4; i++ {
		w := m.AddInput(string(rune('a'+i)), 1)
		inputs = append(inputs, w.Bit(0))
		sigs = append(sigs, w.Bits())
	}
	pick := func() rtlil.SigSpec { return sigs[rng.Intn(len(sigs))] }
	for i := 0; i < 6; i++ {
		switch rng.Intn(6) {
		case 0:
			sigs = append(sigs, m.And(pick(), pick()))
		case 1:
			sigs = append(sigs, m.Or(pick(), pick()))
		case 2:
			sigs = append(sigs, m.Not(pick()))
		case 3:
			sigs = append(sigs, m.Xor(pick(), pick()))
		case 4:
			sigs = append(sigs, m.Mux(pick(), pick(), pick()))
		case 5:
			sigs = append(sigs, m.Eq(pick(), pick()))
		}
	}
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), sigs[len(sigs)-1].Extract(0, 1))
	return m, inputs
}

func allWireBits(m *rtlil.Module) []rtlil.SigBit {
	var out []rtlil.SigBit
	for _, w := range m.Wires() {
		for i := 0; i < w.Width; i++ {
			out = append(out, w.Bit(i))
		}
	}
	return out
}
