package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Set(3)
	if c.Value() != 3 {
		t.Fatalf("counter after Set = %d, want 3", c.Value())
	}
	var g Gauge
	g.Add(2)
	g.Add(-5)
	if g.Value() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge after Set = %d, want 7", g.Value())
	}
}

// TestHistogramZeroObservations: every accessor of an empty histogram
// is well-defined and zero.
func TestHistogramZeroObservations(t *testing.T) {
	h := newHistogram()
	if got := h.Count(); got != 0 {
		t.Errorf("Count = %d, want 0", got)
	}
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%g) = %v on empty histogram, want 0", q, got)
		}
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty snapshot %+v, want all zero", s)
	}
}

// TestHistogramSingleObservation: min/max clamping makes every quantile
// of a one-sample histogram exact, not a bucket bound.
func TestHistogramSingleObservation(t *testing.T) {
	for _, v := range []time.Duration{0, 1, 137 * time.Microsecond, 3 * time.Millisecond, 90 * time.Second} {
		h := newHistogram()
		h.Observe(v)
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("one sample %v: Quantile(%g) = %v, want exact", v, q, got)
			}
		}
		s := h.Snapshot()
		if s.Count != 1 || s.Min != v || s.Max != v || s.Sum != v {
			t.Errorf("one sample %v: snapshot %+v", v, s)
		}
	}
}

// TestHistogramOverflowBucket: values beyond the top finite bound land
// in the overflow bucket and quantiles there report the observed max.
func TestHistogramOverflowBucket(t *testing.T) {
	top := time.Duration(histBounds[histBuckets-1])
	h := newHistogram()
	huge := 4 * top
	h.Observe(huge)
	h.Observe(2 * top)
	if got := h.Quantile(0.99); got != huge {
		t.Errorf("overflow Quantile(0.99) = %v, want observed max %v", got, huge)
	}
	if got := h.counts[histBuckets].Load(); got != 2 {
		t.Errorf("overflow bucket count = %d, want 2", got)
	}
	// Negative durations clamp to zero instead of corrupting a bucket
	// index.
	h.Observe(-time.Second)
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("negative observation bucket0 = %d, want 1", got)
	}
}

// TestBucketForInvariant pins the bucket-selection invariant
// bounds[i-1] < v <= bounds[i] across bucket edges, where float log
// rounding is most likely to land one off.
func TestBucketForInvariant(t *testing.T) {
	probe := func(v int64) {
		i := bucketFor(v)
		if i == histBuckets {
			if v <= histBounds[histBuckets-1] {
				t.Fatalf("bucketFor(%d) overflow, but top bound is %d", v, histBounds[histBuckets-1])
			}
			return
		}
		if v > histBounds[i] || (i > 0 && v <= histBounds[i-1]) {
			lo := int64(-1)
			if i > 0 {
				lo = histBounds[i-1]
			}
			t.Fatalf("bucketFor(%d) = %d, bounds (%d, %d]", v, i, lo, histBounds[i])
		}
	}
	for i := 0; i < histBuckets; i++ {
		for _, d := range []int64{-1, 0, 1} {
			if v := histBounds[i] + d; v > 0 {
				probe(v)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 10000; n++ {
		probe(1 + rng.Int63n(int64(time.Hour)))
	}
}

// TestHistogramPercentileAccuracy: against a sort-based reference,
// every quantile must be within one bucket growth factor for values
// inside the finite bucket range (the documented bound), modulo the
// min/max clamp which can only tighten it.
func TestHistogramPercentileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := newHistogram()
		n := 100 + rng.Intn(4000)
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform over [200µs, 60s): a realistic latency spread
			// inside the finite bucket range.
			lo, hi := math.Log(200e3), math.Log(60e9)
			v := math.Exp(lo + rng.Float64()*(hi-lo))
			vals[i] = v
			h.Observe(time.Duration(v))
		}
		sort.Float64s(vals)
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			ref := vals[rank-1]
			got := float64(h.Quantile(q))
			if got < ref-1 || got > ref*histGrowth+1 {
				t.Fatalf("trial %d n=%d q=%g: histogram %v, reference %v (allowed [ref, ref*%g])",
					trial, n, q, time.Duration(got), time.Duration(ref), histGrowth)
			}
		}
	}
}

// TestHistogramConcurrentObserve: concurrent observers from many
// goroutines (the worker-pool shape) must be race-clean and lose no
// observations.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
				if i%64 == 0 {
					h.Quantile(0.99) // readers race writers
					h.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("Count = %d after concurrent Observe, want %d", got, workers*per)
	}
}

// TestRegistryPrometheusFormat pins the exposition format: family
// ordering, label rendering, cumulative histogram buckets, _sum/_count.
func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("d_requests_total", "requests", Labels{"endpoint": "optimize", "status": "200"}).Add(3)
	r.Counter("d_requests_total", "requests", Labels{"endpoint": "healthz", "status": "200"}).Inc()
	r.Gauge("d_subscribers", "live subscribers", nil).Set(2)
	h := r.Histogram("d_latency_seconds", "latency", Labels{"kind": "sync"})
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(10 * time.Minute) // overflow

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE d_latency_seconds histogram",
		"# TYPE d_requests_total counter",
		"# TYPE d_subscribers gauge",
		`d_requests_total{endpoint="healthz",status="200"} 1`,
		`d_requests_total{endpoint="optimize",status="200"} 3`,
		"d_subscribers 2",
		`d_latency_seconds_bucket{kind="sync",le="+Inf"} 3`,
		`d_latency_seconds_count{kind="sync"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Histogram family ordering: the counter families must each render
	// exactly once with children together.
	if strings.Count(out, "# TYPE d_requests_total counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
	// The sum must be in seconds.
	if !strings.Contains(out, `d_latency_seconds_sum{kind="sync"} 600.003`) {
		t.Errorf("sum not in seconds:\n%s", out)
	}
	// Same (name, labels) resolves to the same instrument.
	if got := r.Counter("d_requests_total", "", Labels{"status": "200", "endpoint": "optimize"}).Value(); got != 3 {
		t.Errorf("re-lookup returned fresh counter (value %d, want 3)", got)
	}
}

// TestRegistryKindConflict: one name under two kinds is a programming
// error and must fail loudly.
func TestRegistryKindConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic registering one name as counter and gauge")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "", nil)
	r.Gauge("x_total", "", nil)
}
