// Package metrics provides the daemon's operational instrumentation:
// atomic counters and gauges, bounded log-scaled latency histograms,
// and a registry that renders everything in the Prometheus text
// exposition format. It has no external dependencies and no background
// goroutines — every observation is a handful of atomic operations, so
// instruments can sit directly on the serving hot path (the worker
// pool, the admission queue, the cache) without a lock hierarchy of
// their own.
//
// Histograms use geometric buckets: each bucket's upper bound is the
// previous one's times a fixed growth factor, so a fixed number of
// buckets spans six orders of magnitude of latency (tens of
// microseconds to minutes) with a bounded relative quantile error of
// one growth factor. Quantiles additionally clamp to the observed
// min/max, which makes the zero- and single-observation cases exact.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Set overwrites the value. It exists for counters that mirror an
// externally maintained monotonic source (the cache's own stats
// snapshot, the job store's transition totals) at scrape time; counters
// incremented in place should use Inc/Add only.
func (c *Counter) Set(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (queue depths, subscriber
// counts, byte totals).
type Gauge struct{ v atomic.Int64 }

// Set overwrites the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: histBuckets geometric buckets starting at
// histMinBound with ratio histGrowth between consecutive upper bounds,
// plus one overflow bucket. 100µs × 1.25^71 ≈ 780s, so any plausible
// request latency lands in a finite bucket; observations beyond the
// top bound are counted in the overflow bucket and quantiles there
// report the observed maximum.
const (
	histBuckets  = 72
	histMinBound = 100 * time.Microsecond
	histGrowth   = 1.25
)

// histBounds holds each bucket's inclusive upper bound in nanoseconds.
var histBounds = func() [histBuckets]int64 {
	var b [histBuckets]int64
	bound := float64(histMinBound)
	for i := range b {
		b[i] = int64(bound)
		bound *= histGrowth
	}
	return b
}()

// bucketFor returns the index of the finite bucket covering v, or
// histBuckets for the overflow bucket.
func bucketFor(v int64) int {
	if v <= histBounds[0] {
		return 0
	}
	if v > histBounds[histBuckets-1] {
		return histBuckets
	}
	// Geometric layout means the index is a logarithm; compute it
	// directly instead of scanning 72 bounds per observation.
	idx := int(math.Ceil(math.Log(float64(v)/float64(histMinBound)) / math.Log(histGrowth)))
	// Float rounding can land one bucket off either way; nudge onto the
	// invariant bounds[idx-1] < v <= bounds[idx].
	for idx > 0 && v <= histBounds[idx-1] {
		idx--
	}
	for idx < histBuckets && v > histBounds[idx] {
		idx++
	}
	return idx
}

// Histogram is a fixed-bucket log-scaled latency histogram. All methods
// are safe for concurrent use; Observe is lock-free.
type Histogram struct {
	counts [histBuckets + 1]atomic.Uint64 // [histBuckets] = overflow
	sum    atomic.Int64                   // nanoseconds
	min    atomic.Int64                   // nanoseconds; math.MaxInt64 until first Observe
	max    atomic.Int64                   // nanoseconds
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration (negative durations clamp to zero).
func (h *Histogram) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketFor(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// snapshotCounts copies the bucket counts once, so a quantile walk sees
// one consistent-enough view under concurrent Observes.
func (h *Histogram) snapshotCounts() (c [histBuckets + 1]uint64, total uint64) {
	for i := range h.counts {
		c[i] = h.counts[i].Load()
		total += c[i]
	}
	return c, total
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	_, total := h.snapshotCounts()
	return total
}

// Sum returns the sum of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns the q-quantile (0 < q <= 1) as a duration. With no
// observations it returns 0. The result is a bucket upper bound clamped
// to the observed [min, max], so it never exceeds the true quantile by
// more than one growth factor (and is exact for a single observation).
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, total := h.snapshotCounts()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	mn, mx := h.min.Load(), h.max.Load()
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum < rank {
			continue
		}
		v := mx
		if i < histBuckets {
			v = histBounds[i]
		}
		if v > mx {
			v = mx
		}
		if v < mn {
			v = mn
		}
		return time.Duration(v)
	}
	return time.Duration(mx) // unreachable: cum reaches total
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"-"`
	Min   time.Duration `json:"-"`
	Max   time.Duration `json:"-"`
	P50   time.Duration `json:"-"`
	P95   time.Duration `json:"-"`
	P99   time.Duration `json:"-"`
}

// Snapshot digests the histogram (count, sum, min/max, p50/p95/p99).
func (h *Histogram) Snapshot() Summary {
	s := Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Min = time.Duration(h.min.Load())
		s.Max = time.Duration(h.max.Load())
	}
	return s
}

// Labels attaches dimension values to an instrument. The same
// (name, labels) pair always resolves to the same instrument.
type Labels map[string]string

// render produces the canonical `{k="v",...}` form (keys sorted), or ""
// for no labels. Values are escaped per the Prometheus text format.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes quotes, backslashes and newlines Go-style, which
		// coincides with the exposition format's label escaping.
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// instrument kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// child is one labeled instrument of a family.
type child struct {
	labels string // rendered
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is all instruments sharing one metric name.
type family struct {
	name, help, kind string
	children         map[string]*child
}

// Registry holds instruments and renders them. The zero value is not
// usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup finds or creates the (family, child) pair, enforcing kind
// consistency — registering one name under two kinds is a programming
// error, caught loudly.
func (r *Registry) lookup(name, help, kind string, labels Labels) *child {
	rendered := labels.render()
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, children: map[string]*child{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, kind))
	}
	ch := f.children[rendered]
	if ch == nil {
		ch = &child{labels: rendered}
		switch kind {
		case kindCounter:
			ch.c = &Counter{}
		case kindGauge:
			ch.g = &Gauge{}
		case kindHistogram:
			ch.h = newHistogram()
		}
		f.children[rendered] = ch
	}
	return ch
}

// Counter returns the counter for (name, labels), creating it on first
// use. help is recorded on first registration of the name.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, kindCounter, labels).c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, kindGauge, labels).g
}

// Histogram returns the histogram for (name, labels), creating it on
// first use.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	return r.lookup(name, help, kindHistogram, labels).h
}

// WritePrometheus renders every instrument in the text exposition
// format, families sorted by name and children by label set, so the
// output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		// Children sorted by rendered label set; instruments are never
		// removed, so holding no lock here only risks missing a child
		// registered mid-render.
		r.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		r.mu.Unlock()
		for _, ch := range children {
			if err := writeChild(w, f, ch); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, ch *child) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ch.labels, ch.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, ch.labels, ch.g.Value())
		return err
	case kindHistogram:
		return writeHistogram(w, f.name, ch)
	}
	return nil
}

// writeHistogram renders one histogram child with cumulative le-labeled
// buckets in seconds, plus _sum and _count, per the Prometheus
// histogram convention. Empty leading buckets are skipped (the first
// emitted bucket still carries the full cumulative count, so quantile
// math downstream is unaffected) to keep the page readable.
func writeHistogram(w io.Writer, name string, ch *child) error {
	counts, total := ch.h.snapshotCounts()
	var cum uint64
	started := false
	for i := 0; i < histBuckets; i++ {
		cum += counts[i]
		if !started && counts[i] == 0 {
			continue
		}
		started = true
		if err := writeBucket(w, name, ch.labels, fmt.Sprintf("%g", float64(histBounds[i])/1e9), cum); err != nil {
			return err
		}
	}
	if err := writeBucket(w, name, ch.labels, "+Inf", total); err != nil {
		return err
	}
	sumSec := float64(ch.h.sum.Load()) / 1e9
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, ch.labels, sumSec); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, ch.labels, total)
	return err
}

// writeBucket writes one cumulative bucket sample, merging the le label
// into any existing label set.
func writeBucket(w io.Writer, name, labels, le string, cum uint64) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		return err
	}
	inner := labels[1 : len(labels)-1] // strip { }
	_, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, inner, le, cum)
	return err
}

// GrowthFactor exposes the histogram bucket ratio: the bound on the
// relative error of Quantile for values within the finite bucket range.
// Benchmarks and tests use it to set agreement tolerances instead of
// hard-coding the layout.
func GrowthFactor() float64 { return histGrowth }
