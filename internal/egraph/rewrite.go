package egraph

import (
	"fmt"
	"sort"

	"repro/internal/cec"
	"repro/internal/rtlil"
)

// decision is the per-class realization plan: reuse an existing region
// cell whose node is the class's chosen derivation, or emit the chosen
// node fresh.
type decision struct {
	reuse *regionCell // non-nil: the cell's Y already computes the class
	node  Node        // reuse == nil: emit this node over its kids
}

// Rewrite is the planned (not yet applied) outcome of extraction: a
// per-class decision tree plus the list of root cells whose Y will be
// re-driven.
type Rewrite struct {
	b   *Builder
	ext *Extraction
	// decisions is keyed by post-saturation canonical class ID.
	decisions map[ClassID]decision
	// origByKey maps canonical class -> chosen-node key -> the first
	// (topo-order) region cell realizing that exact node.
	origByKey map[ClassID]map[string]*regionCell
	// Rewired lists the root cells whose Y gets a new driver, in
	// ingestion order.
	Rewired []*regionCell
}

// Plan decides, after saturation and extraction, how every root cone is
// realized. It is side-effect free: the module is untouched until Apply.
func Plan(b *Builder, ext *Extraction) *Rewrite {
	rw := &Rewrite{
		b:         b,
		ext:       ext,
		decisions: map[ClassID]decision{},
		origByKey: map[ClassID]map[string]*regionCell{},
	}
	g := b.g
	for _, rc := range b.cells {
		cls := g.Find(rc.cls)
		key := g.canonicalize(rc.node).key()
		if rw.origByKey[cls] == nil {
			rw.origByKey[cls] = map[string]*regionCell{}
		}
		if _, ok := rw.origByKey[cls][key]; !ok {
			rw.origByKey[cls][key] = rc
		}
	}
	for _, rc := range b.Roots() {
		if !ext.Realizable(rc.cls) {
			// Cannot happen (the original derivation is always finite),
			// but never plan a rewrite without a realization.
			continue
		}
		rw.decide(rc.cls)
		if d := rw.decisions[g.Find(rc.cls)]; d.reuse != rc {
			rw.Rewired = append(rw.Rewired, rc)
		}
	}
	return rw
}

// decide fills the decision for the class and (for fresh emissions) its
// chosen children.
func (rw *Rewrite) decide(cls ClassID) {
	cls = rw.b.g.Find(cls)
	if _, done := rw.decisions[cls]; done {
		return
	}
	n := rw.ext.Node(cls)
	if rtlil.IsUnary(rtlil.CellType(n.Op)) || rtlil.IsBinary(rtlil.CellType(n.Op)) {
		if rc := rw.origByKey[cls][n.key()]; rc != nil {
			rw.decisions[cls] = decision{reuse: rc}
			return
		}
	}
	rw.decisions[cls] = decision{node: n}
	for _, k := range n.Kids {
		rw.decide(k)
	}
}

// --- verification ------------------------------------------------------

// coneBuilder materializes cones inside one scratch verification
// module, with every leaf class exposed as an input port named after
// its canonical class ID.
type coneBuilder struct {
	rw     *Rewrite
	m      *rtlil.Module
	inputs map[ClassID]*rtlil.Wire
	// cuts maps a cell whose subtree is shared verbatim by both sides
	// to its free-input stand-in (see Verify).
	cuts map[*regionCell]rtlil.SigSpec
	// oldSig caches original-cone realizations per region cell, newSig
	// chosen-derivation realizations per canonical class.
	oldSig map[*regionCell]rtlil.SigSpec
	newSig map[ClassID]rtlil.SigSpec
}

func (rw *Rewrite) newConeBuilder(name string, leaves []ClassID, cutCells []*regionCell) *coneBuilder {
	cb := &coneBuilder{
		rw:     rw,
		m:      rtlil.NewModule(name),
		inputs: map[ClassID]*rtlil.Wire{},
		cuts:   map[*regionCell]rtlil.SigSpec{},
		oldSig: map[*regionCell]rtlil.SigSpec{},
		newSig: map[ClassID]rtlil.SigSpec{},
	}
	for _, id := range leaves {
		cb.inputs[id] = cb.m.AddInput(fmt.Sprintf("l%d", id), cb.rw.b.g.Class(id).width)
	}
	for i, c := range cutCells {
		cb.cuts[c] = cb.m.AddInput(fmt.Sprintf("x%d", i), c.yw).Bits()
	}
	return cb
}

// leafInput returns the input signal standing in for a leaf class.
func (cb *coneBuilder) leafInput(id ClassID) rtlil.SigSpec {
	id = cb.rw.b.g.Find(id)
	w := cb.inputs[id]
	if w == nil {
		// Leaves are collected before construction; a miss is a
		// programming error surfaced by the width-checked Connect below.
		w = cb.m.AddInput(fmt.Sprintf("l%d", id), cb.rw.b.g.Class(id).width)
		cb.inputs[id] = w
	}
	return w.Bits()
}

// emit adds one fresh cell computing the operator over the operands.
func (cb *coneBuilder) emit(t rtlil.CellType, width int, operands []rtlil.SigSpec) rtlil.SigSpec {
	y := cb.m.NewWireHint("e", width).Bits()
	if rtlil.IsUnary(t) {
		cb.m.AddUnary(t, "", operands[0], y)
	} else {
		cb.m.AddBinary(t, "", operands[0], operands[1], y)
	}
	return y
}

// oldCone rebuilds the region cell's original cone from the recorded
// operand classifications. Cells in the cut set stand in as free
// inputs instead of expanding.
func (cb *coneBuilder) oldCone(rc *regionCell) rtlil.SigSpec {
	if s, ok := cb.cuts[rc]; ok {
		return s
	}
	if s, ok := cb.oldSig[rc]; ok {
		return s
	}
	operands := make([]rtlil.SigSpec, len(rc.ops))
	for i, ref := range rc.ops {
		var s rtlil.SigSpec
		switch ref.kind {
		case opCell:
			s = cb.oldCone(ref.producer)
		case opLeaf:
			s = cb.leafInput(ref.leaf)
		case opConst:
			s = rtlil.Const(ref.val, ref.width)
		}
		if ref.resizeTo > 0 {
			s = s.Resize(ref.resizeTo, false)
		}
		operands[i] = s
	}
	y := cb.emit(rc.cell.Type, rc.yw, operands)
	cb.oldSig[rc] = y
	return y
}

// newCone materializes the planned realization of a class: a reused
// cell replays its original cone (that is exactly what the real module
// will keep), a fresh node emits over its children's realizations.
func (cb *coneBuilder) newCone(cls ClassID) rtlil.SigSpec {
	cls = cb.rw.b.g.Find(cls)
	if s, ok := cb.newSig[cls]; ok {
		return s
	}
	d := cb.rw.decisions[cls]
	var s rtlil.SigSpec
	if d.reuse != nil {
		s = cb.oldCone(d.reuse)
	} else {
		switch d.node.Op {
		case OpConst:
			s = rtlil.Const(d.node.Val, d.node.Width)
		case OpLeaf:
			s = cb.leafInput(cls)
		case OpResize:
			s = cb.newCone(d.node.Kids[0]).Resize(d.node.Width, false)
		default:
			operands := make([]rtlil.SigSpec, len(d.node.Kids))
			for i, k := range d.node.Kids {
				operands[i] = cb.newCone(k)
			}
			s = cb.emit(rtlil.CellType(d.node.Op), d.node.valueWidth(), operands)
		}
	}
	cb.newSig[cls] = s
	return s
}

// oldLeaves collects the leaf classes of the cell's original cone.
func (rw *Rewrite) oldLeaves(rc *regionCell, seen map[*regionCell]bool, out map[ClassID]bool) {
	if seen[rc] {
		return
	}
	seen[rc] = true
	for _, ref := range rc.ops {
		switch ref.kind {
		case opCell:
			rw.oldLeaves(ref.producer, seen, out)
		case opLeaf:
			out[rw.b.g.Find(ref.leaf)] = true
		}
	}
}

// newLeaves collects the leaf classes of the planned realization.
func (rw *Rewrite) newLeaves(cls ClassID, seen map[ClassID]bool, cells map[*regionCell]bool, out map[ClassID]bool) {
	cls = rw.b.g.Find(cls)
	if seen[cls] {
		return
	}
	seen[cls] = true
	d := rw.decisions[cls]
	if d.reuse != nil {
		rw.oldLeaves(d.reuse, cells, out)
		return
	}
	if d.node.Op == OpLeaf {
		out[cls] = true
		return
	}
	for _, k := range d.node.Kids {
		rw.newLeaves(k, seen, cells, out)
	}
}

// oldCellsOf collects every region cell of the full original cone.
func (rw *Rewrite) oldCellsOf(rc *regionCell, out map[*regionCell]bool) {
	if out[rc] {
		return
	}
	out[rc] = true
	for _, ref := range rc.ops {
		if ref.kind == opCell {
			rw.oldCellsOf(ref.producer, out)
		}
	}
}

// newCellsOf collects every region cell the planned realization would
// replay: reused cells plus their full original cones.
func (rw *Rewrite) newCellsOf(cls ClassID, seen map[ClassID]bool, out map[*regionCell]bool) {
	cls = rw.b.g.Find(cls)
	if seen[cls] {
		return
	}
	seen[cls] = true
	d := rw.decisions[cls]
	if d.reuse != nil {
		rw.oldCellsOf(d.reuse, out)
		return
	}
	for _, k := range d.node.Kids {
		rw.newCellsOf(k, seen, out)
	}
}

// Verify proves, for one rewired root, that the planned realization is
// equivalent to the original cone over every leaf valuation. Both sides
// are rebuilt in scratch modules sharing input ports named by leaf
// class, then handed to the cec miter. Any failure — a counterexample,
// an unmappable cell such as $div, a SAT budget blowout — means the
// rewrite must not ship.
//
// Cut points keep the miter proportional to what actually changed: a
// cell whose full original cone would be replayed verbatim on BOTH
// sides is replaced by one shared free input. The two occurrences are
// structurally identical by construction, so generalizing their common
// value is sound, and the solver is spared re-proving unchanged
// subtrees against themselves — with no structural hashing across the
// miter halves, an untouched multiplier would otherwise cost as much
// as a changed one.
func (rw *Rewrite) Verify(rc *regionCell, opts *cec.Options) error {
	oldM, newM := rw.MiterModules(rc)
	return cec.Check(oldM, newM, opts)
}

// MiterModules builds the two scratch modules Verify compares, so the
// caller can key proof caches on their canonical hashes.
func (rw *Rewrite) MiterModules(rc *regionCell) (oldM, newM *rtlil.Module) {
	oldSet := map[*regionCell]bool{}
	rw.oldCellsOf(rc, oldSet)
	newSet := map[*regionCell]bool{}
	rw.newCellsOf(rc.cls, map[ClassID]bool{}, newSet)
	var cutCells []*regionCell
	for _, cand := range rw.b.cells { // ingestion order: deterministic names
		if cand != rc && oldSet[cand] && newSet[cand] {
			cutCells = append(cutCells, cand)
		}
	}

	leafSet := map[ClassID]bool{}
	rw.oldLeaves(rc, map[*regionCell]bool{}, leafSet)
	rw.newLeaves(rc.cls, map[ClassID]bool{}, map[*regionCell]bool{}, leafSet)
	leaves := make([]ClassID, 0, len(leafSet))
	for id := range leafSet {
		leaves = append(leaves, id)
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })

	oldCB := rw.newConeBuilder("$egraph$old", leaves, cutCells)
	y := oldCB.m.AddOutput("y0", rc.yw)
	oldCB.m.Connect(y.Bits(), oldCB.oldCone(rc))

	newCB := rw.newConeBuilder("$egraph$new", leaves, cutCells)
	y = newCB.m.AddOutput("y0", rc.yw)
	newCB.m.Connect(y.Bits(), newCB.newCone(rc.cls))

	return oldCB.m, newCB.m
}

// Reject drops a root from the planned rewires (its proof failed); the
// cell keeps its original cone. Dropping a root never invalidates the
// other proofs: each proof's cut variables only assume that the cut
// cells' output wires keep their original values, which holds whether
// a cell is left alone or replaced by its own proven rewrite.
func (rw *Rewrite) Reject(rc *regionCell) {
	for i, r := range rw.Rewired {
		if r == rc {
			rw.Rewired = append(rw.Rewired[:i], rw.Rewired[i+1:]...)
			return
		}
	}
}

// Apply performs the planned surgery on the real module: materialize
// every needed class (reusing untouched original cells, emitting fresh
// cells otherwise), then re-drive each rewired root's Y wire and detach
// the old driver onto a dead wire for opt_clean to sweep. Returns the
// number of fresh cells emitted.
func (rw *Rewrite) Apply() int {
	m := rw.b.m
	emitted := 0
	sigOf := map[ClassID]rtlil.SigSpec{}
	var materialize func(cls ClassID) rtlil.SigSpec
	materialize = func(cls ClassID) rtlil.SigSpec {
		cls = rw.b.g.Find(cls)
		if s, ok := sigOf[cls]; ok {
			return s
		}
		d := rw.decisions[cls]
		var s rtlil.SigSpec
		if d.reuse != nil {
			s = d.reuse.ySig
		} else {
			switch d.node.Op {
			case OpConst:
				s = rtlil.Const(d.node.Val, d.node.Width)
			case OpLeaf:
				s = d.node.Sig
			case OpResize:
				s = materialize(d.node.Kids[0]).Resize(d.node.Width, false)
			default:
				t := rtlil.CellType(d.node.Op)
				operands := make([]rtlil.SigSpec, len(d.node.Kids))
				for i, k := range d.node.Kids {
					operands[i] = materialize(k)
				}
				y := m.NewWireHint("egraph", d.node.valueWidth()).Bits()
				if rtlil.IsUnary(t) {
					m.AddUnary(t, "", operands[0], y)
				} else {
					m.AddBinary(t, "", operands[0], operands[1], y)
				}
				emitted++
				s = y
			}
		}
		sigOf[cls] = s
		return s
	}
	for _, rc := range rw.Rewired {
		newY := materialize(rc.cls)
		origY := rc.cell.Port("Y")
		dead := m.NewWireHint("egraphdead", len(origY))
		rc.cell.SetPort("Y", dead.Bits())
		m.Connect(origY, newY)
	}
	return emitted
}
