package egraph

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rtlil"
)

// ClassID identifies an e-class. IDs are dense and allocation-ordered;
// after unions an ID must be resolved with Find before use.
type ClassID int32

// Op is the operator of an e-node: a cell type from the rtlil library
// (as a string, e.g. "$add") or one of the internal operators below.
type Op string

// Internal operators that have no cell-library counterpart.
const (
	// OpLeaf is an opaque signal the e-graph does not look through:
	// module inputs, mux/dff outputs, sliced or mixed signals, and
	// constants it cannot fold (x bits, width > 64).
	OpLeaf Op = "leaf"
	// OpConst is a fully defined constant of width <= 64.
	OpConst Op = "const"
	// OpResize zero-extends or truncates its child to Width — the
	// operand adaptation the cell lowerings perform implicitly
	// (internal/aig resizeLits). It is pure wiring when emitted.
	OpResize Op = "resize"
)

// Node is one e-node: an operator applied to e-class children. Equal
// nodes (same signature after canonicalizing the children) are
// hash-consed into the same e-class.
type Node struct {
	Op Op
	// Width is the result width, except for comparison operators where
	// it is the shared operand width (their result is always 1 bit —
	// see valueWidth).
	Width int
	// Signed is part of the node signature for forward compatibility;
	// the current cell library is entirely unsigned, so it is always
	// false today and no rule may assume otherwise.
	Signed bool
	Kids   []ClassID
	// Val is the OpConst payload.
	Val uint64
	// Leaf is the canonical-signal key of an OpLeaf node; Sig is the
	// signal itself, kept for emission.
	Leaf string
	Sig  rtlil.SigSpec
}

// valueWidth is the width of the value the node produces: 1 for
// comparisons, Width for everything else.
func (n Node) valueWidth() int {
	if rtlil.IsCompare(rtlil.CellType(n.Op)) {
		return 1
	}
	return n.Width
}

// key renders the node's hash-cons signature. Children must already be
// canonical.
func (n Node) key() string {
	var b strings.Builder
	b.WriteString(string(n.Op))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(n.Width))
	if n.Signed {
		b.WriteString("|s")
	}
	switch n.Op {
	case OpConst:
		b.WriteByte('#')
		b.WriteString(strconv.FormatUint(n.Val, 16))
	case OpLeaf:
		b.WriteByte('@')
		b.WriteString(n.Leaf)
	}
	for _, k := range n.Kids {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(int(k)))
	}
	return b.String()
}

// Class is one e-class: a set of equivalent nodes plus the parent nodes
// that reference it (for congruence repair).
type Class struct {
	id ClassID
	// width is the value width shared by every node in the class.
	width int
	// Nodes holds the class members in insertion order (original
	// ingested nodes come before rule-derived ones).
	Nodes []Node
	// constVal/hasConst cache the OpConst member, if any.
	constVal uint64
	hasConst bool
	// parents lists nodes that have this class as a child, with the
	// class each parent node currently lives in.
	parents []parentRef
}

type parentRef struct {
	node Node
	cls  ClassID
}

// EGraph is a deterministic e-graph: union-find over classes, a
// hash-cons of canonical nodes, and a worklist-based congruence
// rebuild. All iteration is in allocation order, so runs are
// reproducible for identical inputs.
type EGraph struct {
	uf       []ClassID
	classes  []*Class // indexed by ClassID; nil after a merge-away
	hashcons map[string]ClassID
	dirty    []ClassID
	// nodeCount tracks live (hash-consed) nodes for the saturation
	// budget.
	nodeCount int
	// version increments on every structural change (new node or
	// merge); the saturation loop uses it to detect a fixpoint.
	version uint64
}

// New returns an empty e-graph.
func New() *EGraph {
	return &EGraph{hashcons: map[string]ClassID{}}
}

// Find resolves an ID to its canonical class ID (with path compression).
func (g *EGraph) Find(id ClassID) ClassID {
	for g.uf[id] != id {
		g.uf[id] = g.uf[g.uf[id]]
		id = g.uf[id]
	}
	return id
}

// Class returns the canonical class of id.
func (g *EGraph) Class(id ClassID) *Class { return g.classes[g.Find(id)] }

// NodeCount returns the number of live hash-consed nodes.
func (g *EGraph) NodeCount() int { return g.nodeCount }

// ClassCount returns the number of canonical classes.
func (g *EGraph) ClassCount() int {
	n := 0
	for i, c := range g.classes {
		if c != nil && g.Find(ClassID(i)) == ClassID(i) {
			n++
		}
	}
	return n
}

// ClassIDs lists the canonical class IDs in ascending order.
func (g *EGraph) ClassIDs() []ClassID {
	out := make([]ClassID, 0, len(g.classes))
	for i := range g.classes {
		if g.classes[i] != nil && g.Find(ClassID(i)) == ClassID(i) {
			out = append(out, ClassID(i))
		}
	}
	return out
}

// canonicalize rewrites the node's children to canonical class IDs.
func (g *EGraph) canonicalize(n Node) Node {
	if len(n.Kids) == 0 {
		return n
	}
	kids := make([]ClassID, len(n.Kids))
	for i, k := range n.Kids {
		kids[i] = g.Find(k)
	}
	n.Kids = kids
	return n
}

// Add hash-conses the node, returning its class (existing or fresh).
func (g *EGraph) Add(n Node) ClassID {
	n = g.canonicalize(n)
	key := n.key()
	if id, ok := g.hashcons[key]; ok {
		return g.Find(id)
	}
	id := ClassID(len(g.classes))
	c := &Class{id: id, width: n.valueWidth(), Nodes: []Node{n}}
	if n.Op == OpConst {
		c.hasConst, c.constVal = true, n.Val
	}
	g.classes = append(g.classes, c)
	g.uf = append(g.uf, id)
	g.hashcons[key] = id
	g.nodeCount++
	g.version++
	for _, k := range n.Kids {
		kc := g.classes[g.Find(k)]
		kc.parents = append(kc.parents, parentRef{node: n, cls: id})
	}
	return id
}

// Union merges the classes of a and b, returning true when they were
// distinct. The lower canonical ID wins, keeping iteration order (and
// extraction tie-breaks) stable.
func (g *EGraph) Union(a, b ClassID) bool {
	a, b = g.Find(a), g.Find(b)
	if a == b {
		return false
	}
	if a > b {
		a, b = b, a
	}
	ca, cb := g.classes[a], g.classes[b]
	if ca.width != cb.width {
		panic(fmt.Sprintf("egraph: union of classes with widths %d and %d — unsound rule", ca.width, cb.width))
	}
	if ca.hasConst && cb.hasConst && ca.constVal != cb.constVal {
		panic(fmt.Sprintf("egraph: union proves %d == %d at width %d — unsound rule", ca.constVal, cb.constVal, ca.width))
	}
	g.uf[b] = a
	ca.Nodes = append(ca.Nodes, cb.Nodes...)
	ca.parents = append(ca.parents, cb.parents...)
	if cb.hasConst {
		ca.hasConst, ca.constVal = true, cb.constVal
	}
	g.classes[b] = nil
	g.dirty = append(g.dirty, a)
	g.version++
	return true
}

// Rebuild restores the hash-cons and congruence invariants after a
// batch of unions: parents of merged classes are re-canonicalized, and
// nodes that became equal force further unions (upward congruence
// closure — the "shared-subexpression merging" the pass relies on).
func (g *EGraph) Rebuild() {
	for len(g.dirty) > 0 {
		todo := g.dirty
		g.dirty = nil
		seen := map[ClassID]bool{}
		for _, id := range todo {
			id = g.Find(id)
			if seen[id] {
				continue
			}
			seen[id] = true
			g.repair(id)
		}
	}
}

func (g *EGraph) repair(id ClassID) {
	c := g.classes[id]
	if c == nil {
		return
	}
	// Re-canonicalize parents: nodes whose signatures collide after the
	// merge identify classes to union.
	oldParents := c.parents
	c.parents = nil
	seen := map[string]ClassID{}
	for _, p := range oldParents {
		delete(g.hashcons, p.node.key())
		n := g.canonicalize(p.node)
		key := n.key()
		pcls := g.Find(p.cls)
		if prev, ok := seen[key]; ok {
			g.Union(prev, pcls)
			continue
		}
		seen[key] = pcls
		if other, ok := g.hashcons[key]; ok {
			g.Union(other, pcls)
		} else {
			g.hashcons[key] = pcls
		}
		g.classes[g.Find(id)].parents = append(g.classes[g.Find(id)].parents, parentRef{node: n, cls: g.Find(pcls)})
	}
	// Dedup the class's own node list under canonical signatures.
	c = g.classes[g.Find(id)]
	if c == nil {
		return
	}
	keep := c.Nodes[:0]
	have := map[string]bool{}
	for _, n := range c.Nodes {
		cn := g.canonicalize(n)
		key := cn.key()
		if have[key] {
			g.nodeCount--
			continue
		}
		have[key] = true
		if at, ok := g.hashcons[key]; !ok || g.Find(at) != g.Find(id) {
			g.hashcons[key] = g.Find(id)
		}
		keep = append(keep, cn)
	}
	c.Nodes = keep
}
