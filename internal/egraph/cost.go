package egraph

import (
	"strconv"
	"strings"

	"repro/internal/aig"
	"repro/internal/rtlil"
)

// kidSpec is what the cost model knows about one operand: its width and
// whether it is a known constant. Constant operands matter a lot — the
// AIG lowering of, say, a multiply by 2^k or a compare against a fixed
// value collapses most of the logic, and pricing that collapse is what
// makes shift/multiply exchange and comparison sharing pay off.
type kidSpec struct {
	width   int
	isConst bool
	val     uint64
}

// CostModel prices e-nodes by the repository's area metric: the AIG AND
// count of a one-cell module with the node's exact operand shapes.
// Results are memoized by (op, width, operand shapes); the model is
// deterministic and safe to share across passes but not across
// goroutines.
type CostModel struct {
	memo map[string]int64
}

// NewCostModel returns an empty memoized cost model.
func NewCostModel() *CostModel {
	return &CostModel{memo: map[string]int64{}}
}

// Cost of operators that cannot be priced by AIG construction.
const (
	costLeaf   int64 = 0 // existing signal: free
	costResize int64 = 1 // pure wiring, but >= 1 keeps extraction acyclic
	// divMulFactor scales the same-shape multiply cost to price the
	// opaque $div, which has no AIG lowering. Restoring divisons are a
	// few times a multiplier of the same width.
	divMulFactor int64 = 4
)

// NodeCost returns the intrinsic cost of one e-node (excluding its
// children), clamped to >= 1 for every operator that emits a cell so
// the cheapest derivation of a class can never cycle through itself.
func (cm *CostModel) NodeCost(n Node, kids []kidSpec) int64 {
	switch n.Op {
	case OpLeaf, OpConst:
		return costLeaf
	case OpResize:
		return costResize
	}
	t := rtlil.CellType(n.Op)
	if t == rtlil.CellDiv {
		mul := n
		mul.Op = Op(rtlil.CellMul)
		c := cm.NodeCost(mul, kids)
		if c < 1 {
			c = 1
		}
		return c * divMulFactor
	}
	key := cm.key(n, kids)
	if c, ok := cm.memo[key]; ok {
		return c
	}
	c := cellArea(t, n, kids)
	if c < 1 {
		c = 1
	}
	cm.memo[key] = c
	return c
}

func (cm *CostModel) key(n Node, kids []kidSpec) string {
	var b strings.Builder
	b.WriteString(string(n.Op))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(n.Width))
	for _, k := range kids {
		b.WriteByte(',')
		b.WriteString(strconv.Itoa(k.width))
		if k.isConst {
			b.WriteByte('#')
			b.WriteString(strconv.FormatUint(k.val, 16))
		}
	}
	return b.String()
}

// cellArea builds the one-cell module and measures it. Constant
// operands are materialized as constants so the mapping simplifies them
// exactly as it would in the real netlist; mapping failures (which
// cannot happen for the AIG-lowered cell set) price as 0 and are
// clamped to 1 by the caller.
func cellArea(t rtlil.CellType, n Node, kids []kidSpec) int64 {
	m := rtlil.NewModule("$egraph$cost")
	operand := func(i int, k kidSpec) rtlil.SigSpec {
		if k.isConst {
			return rtlil.Const(k.val, k.width)
		}
		return m.AddInput("i"+strconv.Itoa(i), k.width).Bits()
	}
	y := m.AddOutput("y", n.valueWidth()).Bits()
	switch {
	case rtlil.IsUnary(t):
		m.AddUnary(t, "$u", operand(0, kids[0]), y)
	case rtlil.IsBinary(t) || rtlil.IsCompare(t):
		m.AddBinary(t, "$b", operand(0, kids[0]), operand(1, kids[1]), y)
	default:
		return 0
	}
	a, err := aig.Area(m)
	if err != nil {
		return 0
	}
	return int64(a)
}
