package egraph

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/rtlil"
)

// runPass executes opt_egraph on a clone of m and checks the result
// against the original with the cec miter. It returns the clone, the
// result and the AIG areas before/after.
func runPass(t *testing.T, m *rtlil.Module, opts Options) (*rtlil.Module, int, int) {
	t.Helper()
	orig := m.Clone()
	got := m.Clone()
	p := &Pass{Opts: opts}
	res, err := p.Run(nil, got)
	if err != nil {
		t.Fatalf("opt_egraph: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("invalid module after opt_egraph: %v", err)
	}
	if err := cec.Check(orig, got, nil); err != nil {
		t.Fatalf("opt_egraph broke equivalence (changed=%v): %v", res.Changed, err)
	}
	before, err := aig.Area(orig)
	if err != nil {
		t.Fatalf("area before: %v", err)
	}
	after, err := aig.Area(got)
	if err != nil {
		t.Fatalf("area after: %v", err)
	}
	return got, before, after
}

// newDUT builds a module with three 5-bit inputs. The width matters:
// the naive CDCL solver proves 5-bit multiplier miters in ~100ms but
// falls off an exponential cliff past 6 bits, and runPass proves every
// rewrite twice (inside the pass, then whole-module).
func newDUT() (*rtlil.Module, [3]rtlil.SigSpec) {
	m := rtlil.NewModule("dut")
	a := m.AddInput("a", 5).Bits()
	b := m.AddInput("b", 5).Bits()
	c := m.AddInput("c", 5).Bits()
	return m, [3]rtlil.SigSpec{a, b, c}
}

func out(m *rtlil.Module, name string, s rtlil.SigSpec) {
	m.Connect(m.AddOutput(name, len(s)).Bits(), s)
}

// liveCells counts the cells reachable from the module outputs, by
// type. The pass leaves replaced cells dangling on dead wires (a later
// opt_clean sweeps them), so reachability — not the raw cell list — is
// what shows whether a rewrite shared hardware.
func liveCells(m *rtlil.Module) map[rtlil.CellType]int {
	ix := rtlil.NewIndex(m)
	seen := map[*rtlil.Cell]bool{}
	var visit func(sig rtlil.SigSpec)
	visit = func(sig rtlil.SigSpec) {
		for _, bit := range ix.Map(sig) {
			c := ix.DriverCell(bit)
			if c == nil || seen[c] {
				continue
			}
			seen[c] = true
			for port, s := range c.Conn {
				if port != "Y" {
					visit(s)
				}
			}
		}
	}
	for _, w := range m.Outputs() {
		visit(w.Bits())
	}
	count := map[rtlil.CellType]int{}
	for c := range seen {
		count[c.Type]++
	}
	return count
}

func TestPassFactorsSharedMultiplier(t *testing.T) {
	m, in := newDUT()
	out(m, "y0", m.AddOp(m.MulOp(in[0], in[1]), m.MulOp(in[0], in[2])))
	got, before, after := runPass(t, m, Options{})
	if after >= before {
		t.Errorf("area %d -> %d: factoring a*b+a*c did not shrink the netlist", before, after)
	}
	res, err := (&Pass{}).Run(nil, got.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed {
		t.Error("second opt_egraph run changed an already-optimized module (fixpoint churn)")
	}
}

func TestPassCancelsSubSelf(t *testing.T) {
	m, in := newDUT()
	// Two structurally identical adders hash-cons into one class, so the
	// subtraction sees identical operands and collapses to zero.
	out(m, "y0", m.SubOp(m.AddOp(in[0], in[1]), m.AddOp(in[0], in[1])))
	_, before, after := runPass(t, m, Options{})
	if after != 0 {
		t.Errorf("area %d -> %d: (a+b)-(a+b) should fold to constant 0", before, after)
	}
}

func TestPassSharesCanonicalizedComparators(t *testing.T) {
	m, in := newDUT()
	out(m, "y0", m.Gt(in[0], in[1]))
	out(m, "y1", m.Lt(in[1], in[0]))
	// AIG strash already merges the two mirror comparators, so aig.Area
	// cannot show the gain; the win is structural sharing in the
	// netlist, which opt_clean then harvests.
	got, before, after := runPass(t, m, Options{})
	if after > before {
		t.Errorf("area %d -> %d: comparator canonicalization regressed", before, after)
	}
	live := 0
	for ty, n := range liveCells(got) {
		if rtlil.IsCompare(ty) {
			live += n
		}
	}
	if live != 1 {
		t.Errorf("%d live comparator cells after rewrite, want 1 shared", live)
	}
}

func TestPassSharesMulAndShlForms(t *testing.T) {
	m, in := newDUT()
	ab := m.MulOp(in[0], in[1])
	out(m, "y0", m.MulOp(ab, rtlil.Const(4, 5)))
	out(m, "y1", m.Shl(m.MulOp(in[0], in[1]), rtlil.Const(2, 2)))
	got, before, after := runPass(t, m, Options{})
	if after > before {
		t.Errorf("area %d -> %d: mul/shl exchange regressed", before, after)
	}
	// Both outputs must share one a*b multiplier after the rewrite; the
	// duplicated multiplier and one of the mul-by-4/shl-by-2 forms go
	// dead. (aig.Area cannot see this: strash merges the duplicates.)
	if n := liveCells(got)[rtlil.CellMul]; n > 2 {
		t.Errorf("%d live multipliers after rewrite, want the shared a*b plus at most the by-4 form", n)
	}
	if res, err := (&Pass{}).Run(nil, got.Clone()); err != nil {
		t.Fatal(err)
	} else if res.Changed {
		t.Error("second run changed the module again (fixpoint churn)")
	}
}

func TestPassDivNoop(t *testing.T) {
	// No runPass here: $div has no AIG lowering, so neither aig.Area nor
	// the cec SAT phase can process the module. The pass itself must
	// still ingest the cell and terminate as a verified no-op.
	m, in := newDUT()
	y := m.NewWireHint("q", 5).Bits()
	m.AddBinary(rtlil.CellDiv, "", in[0], in[1], y)
	out(m, "y0", y)
	before := rtlil.CanonicalHash(m)
	res, err := (&Pass{}).Run(nil, m)
	if err != nil {
		t.Fatalf("opt_egraph on a $div design errored: %v", err)
	}
	if res.Changed {
		t.Error("opt_egraph rewrote a lone $div")
	}
	if res.Details["egraph_cells"] != 1 {
		t.Errorf("egraph_cells = %d, want 1 ($div must be ingested, not skipped)", res.Details["egraph_cells"])
	}
	if rtlil.CanonicalHash(m) != before {
		t.Error("module mutated by a no-op run")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid module: %v", err)
	}
}

// TestPassDivCSERejectedByVerify: two identical $div cells share an
// e-class, so extraction plans a CSE — but $div has no AIG lowering,
// the equivalence proof cannot be built, and the whole extraction must
// be rejected, leaving the module untouched.
func TestPassDivCSERejectedByVerify(t *testing.T) {
	m, in := newDUT()
	y0 := m.NewWireHint("q", 5).Bits()
	y1 := m.NewWireHint("q", 5).Bits()
	m.AddBinary(rtlil.CellDiv, "", in[0], in[1], y0)
	m.AddBinary(rtlil.CellDiv, "", in[0], in[1], y1)
	out(m, "y0", y0)
	out(m, "y1", y1)
	before := rtlil.CanonicalHash(m)
	res, err := (&Pass{}).Run(nil, m)
	if err != nil {
		t.Fatalf("opt_egraph: %v", err)
	}
	if res.Changed {
		t.Error("unverifiable $div CSE was applied")
	}
	if res.Details["egraph_verify_rejected"] == 0 {
		t.Error("egraph_verify_rejected counter not bumped")
	}
	if rtlil.CanonicalHash(m) != before {
		t.Error("module mutated despite rejected extraction")
	}
}

func TestPassVerifyOffStillSound(t *testing.T) {
	m, in := newDUT()
	out(m, "y0", m.AddOp(m.MulOp(in[0], in[1]), m.MulOp(in[0], in[2])))
	_, before, after := runPass(t, m, Options{DisableVerify: true})
	if after >= before {
		t.Errorf("area %d -> %d with verify off", before, after)
	}
}

func TestPassRuleSubsets(t *testing.T) {
	m, in := newDUT()
	out(m, "y0", m.AddOp(m.MulOp(in[0], in[1]), m.MulOp(in[0], in[2])))
	// Comparison rules alone cannot touch an arithmetic cone.
	res, err := (&Pass{Opts: Options{Rules: "cmp"}}).Run(nil, m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if res.Changed {
		t.Error("cmp-only rules rewrote an arithmetic design")
	}
	// An unknown group is a configuration error.
	if _, err := (&Pass{Opts: Options{Rules: "nope"}}).Run(nil, m.Clone()); err == nil {
		t.Error("unknown rule group accepted")
	}
	// The arith group suffices for factoring.
	_, before, after := runPass(t, m, Options{Rules: "arith+fold"})
	if after >= before {
		t.Errorf("area %d -> %d with arith+fold", before, after)
	}
}

func TestPassDeterministic(t *testing.T) {
	m, in := newDUT()
	out(m, "y0", m.AddOp(m.MulOp(in[0], in[1]), m.MulOp(in[0], in[2])))
	out(m, "y1", m.Gt(in[1], in[2]))
	out(m, "y2", m.Lt(in[2], in[1]))
	var hashes []string
	for i := 0; i < 3; i++ {
		got := m.Clone()
		if _, err := (&Pass{}).Run(nil, got); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, rtlil.CanonicalHash(got))
	}
	if hashes[0] != hashes[1] || hashes[1] != hashes[2] {
		t.Errorf("opt_egraph not deterministic across runs: %v", hashes)
	}
}

// TestPassMixedWidths exercises the resize modeling: operands narrower
// and wider than the result, plus a sliced read of a region cell's
// output (which pins the producer as an exposed root).
func TestPassMixedWidths(t *testing.T) {
	m := rtlil.NewModule("dut")
	a := m.AddInput("a", 3).Bits()
	b := m.AddInput("b", 4).Bits()
	c := m.AddInput("c", 5).Bits()
	sum := m.AddOp(a, b)    // width 4
	prod := m.MulOp(sum, c) // width 5
	out(m, "y0", prod)
	out(m, "y1", sum.Extract(1, 3)) // slice exposure
	out(m, "y2", m.SubOp(prod, prod))
	_, before, after := runPass(t, m, Options{})
	if after > before {
		t.Errorf("area %d -> %d: mixed-width rewrite regressed", before, after)
	}
}
