package egraph

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/rtlil"
)

// A Rule inspects one e-node and, when it matches, adds an equivalent
// representation to the node's class (and/or unions classes). Apply
// returns the number of rewrites performed. Rules must be sound under
// the repository's canonical two-valued semantics for every value of
// every leaf — the verify gate will reject (not repair) an unsound
// extraction, and the e-graph panics outright when a rule proves two
// distinct constants equal.
type Rule struct {
	Name  string
	Group string
	Apply func(g *EGraph, id ClassID, n Node) int
}

// The rule groups selectable through the pass' rules option.
const (
	GroupArith   = "arith"   // add/sub/mul identities, distributivity
	GroupBitwise = "bitwise" // and/or/xor/xnor/not identities
	GroupShift   = "shift"   // shift-by-constant and mul/shl exchange
	GroupCmp     = "cmp"     // comparison canonicalization
	GroupFold    = "fold"    // constant folding
)

// allGroups lists every group in the order rules run.
var allGroups = []string{GroupArith, GroupBitwise, GroupShift, GroupCmp, GroupFold}

// ParseRules resolves a rules option value — "all" or a '+'-separated
// list of group names — to the selected rule set.
func ParseRules(spec string) ([]Rule, error) {
	if spec == "" || spec == "all" {
		return Rules(allGroups...), nil
	}
	parts := strings.Split(spec, "+")
	known := map[string]bool{}
	for _, g := range allGroups {
		known[g] = true
	}
	for _, p := range parts {
		if !known[p] {
			return nil, fmt.Errorf("egraph: unknown rule group %q (have all, %s)", p, strings.Join(allGroups, ", "))
		}
	}
	return Rules(parts...), nil
}

// Rules returns the rules of the named groups, in library order, plus
// the always-on structural resize rules.
func Rules(groups ...string) []Rule {
	want := map[string]bool{}
	for _, g := range groups {
		want[g] = true
	}
	var out []Rule
	for _, r := range ruleLibrary() {
		if r.Group == "" || want[r.Group] {
			out = append(out, r)
		}
	}
	return out
}

// RuleNames lists every library rule name per group (for docs/tests).
func RuleNames() map[string][]string {
	out := map[string][]string{}
	for _, r := range ruleLibrary() {
		g := r.Group
		if g == "" {
			g = "structural"
		}
		out[g] = append(out[g], r.Name)
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// opIs reports the node's cell operator.
func opIs(n Node, t rtlil.CellType) bool { return rtlil.CellType(n.Op) == t }

// matchScanLimit bounds how many nodes of a class a single rule match
// may enumerate. After heavy merging a class can hold thousands of
// nodes — and even be its own kid — which makes unbounded enumeration
// quadratic-to-cubic in the node budget on adversarial inputs. The
// earliest nodes in a class are the oldest (the original, canonical
// shapes), so a bounded prefix scan keeps the matches that matter.
const matchScanLimit = 64

// matchNodes returns a bounded, deterministic (allocation-ordered)
// prefix of the class's node list for rule matching.
func matchNodes(g *EGraph, cls ClassID) []Node {
	nodes := g.Class(cls).Nodes
	if len(nodes) > matchScanLimit {
		nodes = nodes[:matchScanLimit]
	}
	return nodes
}

// binKids returns the node's two child classes.
func binKids(g *EGraph, n Node) (ClassID, ClassID) {
	return g.Find(n.Kids[0]), g.Find(n.Kids[1])
}

// addConst adds a constant node of the given width.
func addConst(g *EGraph, val uint64, width int) ClassID {
	return g.Add(Node{Op: OpConst, Width: width, Val: val & mask(width)})
}

// unionWith adds the node and unions it with the class; returns 1 when
// anything changed.
func unionWith(g *EGraph, id ClassID, n Node) int {
	before := g.version
	nid := g.Add(n)
	g.Union(id, nid)
	if g.version != before {
		return 1
	}
	return 0
}

// commutative cell operators (operand order is irrelevant).
func isCommutative(t rtlil.CellType) bool {
	switch t {
	case rtlil.CellAdd, rtlil.CellMul, rtlil.CellAnd, rtlil.CellOr,
		rtlil.CellXor, rtlil.CellXnor, rtlil.CellEq, rtlil.CellNe:
		return true
	}
	return false
}

// associative cell operators.
func isAssociative(t rtlil.CellType) bool {
	switch t {
	case rtlil.CellAdd, rtlil.CellMul, rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor:
		return true
	}
	return false
}

// groupOf maps an operator to its rule group (for comm/assoc rules that
// span groups).
func groupOf(t rtlil.CellType) string {
	switch t {
	case rtlil.CellAdd, rtlil.CellSub, rtlil.CellMul, rtlil.CellNeg:
		return GroupArith
	case rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor, rtlil.CellXnor, rtlil.CellNot:
		return GroupBitwise
	case rtlil.CellShl, rtlil.CellShr:
		return GroupShift
	case rtlil.CellEq, rtlil.CellNe, rtlil.CellLt, rtlil.CellLe, rtlil.CellGt, rtlil.CellGe:
		return GroupCmp
	}
	return ""
}

// ruleLibrary builds the full rule set. Rules are cheap closures; the
// library is rebuilt per call so rules carry no shared state.
func ruleLibrary() []Rule {
	var rules []Rule
	add := func(name, group string, apply func(g *EGraph, id ClassID, n Node) int) {
		rules = append(rules, Rule{Name: name, Group: group, Apply: apply})
	}

	// --- structural (always on) ---------------------------------------

	// resize(w, x) with width(x) == w is the identity.
	add("resize_identity", "", func(g *EGraph, id ClassID, n Node) int {
		if n.Op != OpResize {
			return 0
		}
		kid := g.Find(n.Kids[0])
		if g.Class(kid).width != n.Width {
			return 0
		}
		if g.Union(id, kid) {
			return 1
		}
		return 0
	})
	// resize(w1, resize(w2, x)) == resize(w1, x) when w1 <= w2
	// (truncation composes; zero-extension below w1 does not).
	add("resize_resize", "", func(g *EGraph, id ClassID, n Node) int {
		if n.Op != OpResize {
			return 0
		}
		applied := 0
		for _, inner := range matchNodes(g, n.Kids[0]) {
			if inner.Op == OpResize && n.Width <= inner.Width {
				applied += unionWith(g, id, Node{Op: OpResize, Width: n.Width, Kids: []ClassID{inner.Kids[0]}})
			}
		}
		return applied
	})

	// --- commutativity / associativity --------------------------------

	add("commute", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		t := rtlil.CellType(n.Op)
		if !isCommutative(t) {
			return 0
		}
		a, b := binKids(g, n)
		if a == b {
			return 0
		}
		return unionWith(g, id, Node{Op: n.Op, Width: n.Width, Kids: []ClassID{b, a}})
	})
	add("associate", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		t := rtlil.CellType(n.Op)
		if !isAssociative(t) {
			return 0
		}
		// (x ∘ y) ∘ z  ->  x ∘ (y ∘ z)
		applied := 0
		a, z := binKids(g, n)
		for _, inner := range matchNodes(g, a) {
			if inner.Op != n.Op {
				continue
			}
			x, y := binKids(g, inner)
			yz := g.Add(Node{Op: n.Op, Width: n.Width, Kids: []ClassID{y, z}})
			applied += unionWith(g, id, Node{Op: n.Op, Width: n.Width, Kids: []ClassID{x, yz}})
		}
		return applied
	})

	// --- arithmetic ----------------------------------------------------

	// a*b + a*c -> a*(b+c), checking every operand pairing (the shared
	// factor may sit on either side of either multiply).
	add("distrib_factor", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellAdd) {
			return 0
		}
		l, r := binKids(g, n)
		applied := 0
		for _, ln := range matchNodes(g, l) {
			if !opIs(ln, rtlil.CellMul) {
				continue
			}
			la, lb := binKids(g, ln)
			for _, rn := range matchNodes(g, r) {
				if !opIs(rn, rtlil.CellMul) {
					continue
				}
				ra, rb := binKids(g, rn)
				for _, pair := range [][4]ClassID{
					{la, lb, ra, rb}, {la, lb, rb, ra},
					{lb, la, ra, rb}, {lb, la, rb, ra},
				} {
					if pair[0] != pair[2] {
						continue
					}
					sum := g.Add(Node{Op: Op(rtlil.CellAdd), Width: n.Width, Kids: []ClassID{pair[1], pair[3]}})
					applied += unionWith(g, id, Node{Op: Op(rtlil.CellMul), Width: n.Width, Kids: []ClassID{pair[0], sum}})
				}
			}
		}
		return applied
	})
	// a*(b+c) -> a*b + a*c (the expansion direction feeds further
	// factorings; extraction keeps whichever form is cheaper).
	add("distrib_expand", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellMul) {
			return 0
		}
		a, s := binKids(g, n)
		applied := 0
		expand := func(a, s ClassID) {
			for _, sn := range matchNodes(g, s) {
				if !opIs(sn, rtlil.CellAdd) {
					continue
				}
				b, c := binKids(g, sn)
				ab := g.Add(Node{Op: Op(rtlil.CellMul), Width: n.Width, Kids: []ClassID{a, b}})
				ac := g.Add(Node{Op: Op(rtlil.CellMul), Width: n.Width, Kids: []ClassID{a, c}})
				applied += unionWith(g, id, Node{Op: Op(rtlil.CellAdd), Width: n.Width, Kids: []ClassID{ab, ac}})
			}
		}
		expand(a, s)
		if a != s {
			expand(s, a)
		}
		return applied
	})
	// x - x -> 0.
	add("sub_self", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellSub) {
			return 0
		}
		a, b := binKids(g, n)
		if a != b {
			return 0
		}
		if g.Union(id, addConst(g, 0, n.Width)) {
			return 1
		}
		return 0
	})
	// x - y -> x + (-y): bridges sub into the add/mul rule space.
	add("sub_to_add", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellSub) {
			return 0
		}
		a, b := binKids(g, n)
		nb := g.Add(Node{Op: Op(rtlil.CellNeg), Width: n.Width, Kids: []ClassID{b}})
		return unionWith(g, id, Node{Op: Op(rtlil.CellAdd), Width: n.Width, Kids: []ClassID{a, nb}})
	})
	// x + 0 -> x, x - 0 -> x, x * 1 -> x, x * 0 -> 0.
	add("arith_identity", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		t := rtlil.CellType(n.Op)
		if t != rtlil.CellAdd && t != rtlil.CellSub && t != rtlil.CellMul {
			return 0
		}
		a, b := binKids(g, n)
		applied := 0
		try := func(x, c ClassID) {
			v, ok := g.constOf(c)
			if !ok {
				return
			}
			switch {
			case v == 0 && t != rtlil.CellMul:
				if g.Union(id, x) {
					applied++
				}
			case v == 0 && t == rtlil.CellMul:
				if g.Union(id, addConst(g, 0, n.Width)) {
					applied++
				}
			case v == 1 && t == rtlil.CellMul:
				if g.Union(id, x) {
					applied++
				}
			}
		}
		try(a, b)
		if t != rtlil.CellSub {
			try(b, a)
		}
		return applied
	})
	// x + x -> x * 2 (which mul_to_shl turns into x << 1; at width 1 the
	// doubling wraps to zero).
	add("add_self", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellAdd) {
			return 0
		}
		a, b := binKids(g, n)
		if a != b {
			return 0
		}
		if n.Width == 1 {
			if g.Union(id, addConst(g, 0, 1)) {
				return 1
			}
			return 0
		}
		two := addConst(g, 2, n.Width)
		return unionWith(g, id, Node{Op: Op(rtlil.CellMul), Width: n.Width, Kids: []ClassID{a, two}})
	})
	// -(-x) -> x.
	add("neg_neg", GroupArith, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellNeg) {
			return 0
		}
		applied := 0
		for _, inner := range matchNodes(g, n.Kids[0]) {
			if opIs(inner, rtlil.CellNeg) {
				if g.Union(id, inner.Kids[0]) {
					applied++
				}
			}
		}
		return applied
	})

	// --- bitwise -------------------------------------------------------

	// x&x -> x, x|x -> x, x^x -> 0, xnor(x,x) -> ~0.
	add("bitwise_self", GroupBitwise, func(g *EGraph, id ClassID, n Node) int {
		a, b := ClassID(0), ClassID(0)
		switch rtlil.CellType(n.Op) {
		case rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor, rtlil.CellXnor:
			a, b = binKids(g, n)
		default:
			return 0
		}
		if a != b {
			return 0
		}
		switch rtlil.CellType(n.Op) {
		case rtlil.CellAnd, rtlil.CellOr:
			if g.Union(id, a) {
				return 1
			}
		case rtlil.CellXor:
			if g.Union(id, addConst(g, 0, n.Width)) {
				return 1
			}
		case rtlil.CellXnor:
			if g.Union(id, addConst(g, mask(n.Width), n.Width)) {
				return 1
			}
		}
		return 0
	})
	// x&0 -> 0, x&~0 -> x, x|0 -> x, x|~0 -> ~0, x^0 -> x.
	add("bitwise_identity", GroupBitwise, func(g *EGraph, id ClassID, n Node) int {
		t := rtlil.CellType(n.Op)
		if t != rtlil.CellAnd && t != rtlil.CellOr && t != rtlil.CellXor {
			return 0
		}
		a, b := binKids(g, n)
		applied := 0
		try := func(x, c ClassID) {
			v, ok := g.constOf(c)
			if !ok {
				return
			}
			ones := mask(n.Width)
			switch {
			case v == 0 && t == rtlil.CellAnd:
				if g.Union(id, addConst(g, 0, n.Width)) {
					applied++
				}
			case v == 0: // or, xor
				if g.Union(id, x) {
					applied++
				}
			case v == ones && t == rtlil.CellAnd:
				if g.Union(id, x) {
					applied++
				}
			case v == ones && t == rtlil.CellOr:
				if g.Union(id, addConst(g, ones, n.Width)) {
					applied++
				}
			}
		}
		try(a, b)
		try(b, a)
		return applied
	})
	// ~~x -> x.
	add("not_not", GroupBitwise, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellNot) {
			return 0
		}
		applied := 0
		for _, inner := range matchNodes(g, n.Kids[0]) {
			if opIs(inner, rtlil.CellNot) {
				if g.Union(id, inner.Kids[0]) {
					applied++
				}
			}
		}
		return applied
	})
	// xnor(a,b) -> ~(a^b): lets an xnor share an existing xor.
	add("xnor_not_xor", GroupBitwise, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellXnor) {
			return 0
		}
		a, b := binKids(g, n)
		x := g.Add(Node{Op: Op(rtlil.CellXor), Width: n.Width, Kids: []ClassID{a, b}})
		return unionWith(g, id, Node{Op: Op(rtlil.CellNot), Width: n.Width, Kids: []ClassID{x}})
	})

	// --- shifts --------------------------------------------------------

	// x << 0 -> x, x >> 0 -> x; x << k -> 0 and x >> k -> 0 for k >= w.
	add("shift_const", GroupShift, func(g *EGraph, id ClassID, n Node) int {
		t := rtlil.CellType(n.Op)
		if t != rtlil.CellShl && t != rtlil.CellShr {
			return 0
		}
		a, b := binKids(g, n)
		k, ok := g.constOf(b)
		if !ok {
			return 0
		}
		switch {
		case k == 0:
			if g.Union(id, a) {
				return 1
			}
		case k >= uint64(n.Width):
			if g.Union(id, addConst(g, 0, n.Width)) {
				return 1
			}
		}
		return 0
	})
	// x << k -> x * 2^k for constant 0 < k < w (2^k is representable at
	// width w exactly when k < w).
	add("shl_to_mul", GroupShift, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellShl) {
			return 0
		}
		a, b := binKids(g, n)
		k, ok := g.constOf(b)
		if !ok || k == 0 || k >= uint64(n.Width) || n.Width > 64 {
			return 0
		}
		c := addConst(g, uint64(1)<<k, n.Width)
		return unionWith(g, id, Node{Op: Op(rtlil.CellMul), Width: n.Width, Kids: []ClassID{a, c}})
	})
	// x * 2^k -> x << k: the power-of-two strength reduction the paper's
	// datapath class gains most from.
	add("mul_to_shl", GroupShift, func(g *EGraph, id ClassID, n Node) int {
		if !opIs(n, rtlil.CellMul) || n.Width > 64 {
			return 0
		}
		a, b := binKids(g, n)
		applied := 0
		try := func(x, c ClassID) {
			v, ok := g.constOf(c)
			if !ok || v == 0 || v&(v-1) != 0 {
				return
			}
			k := uint64(bits.TrailingZeros64(v))
			if k == 0 || k >= uint64(n.Width) {
				return // *1 is arith_identity's job; overflow cannot happen for an in-range const
			}
			kw := bits.Len64(k)
			sh := addConst(g, k, kw)
			applied += unionWith(g, id, Node{Op: Op(rtlil.CellShl), Width: n.Width, Kids: []ClassID{x, sh}})
		}
		try(a, b)
		try(b, a)
		return applied
	})

	// --- comparison canonicalization ----------------------------------

	// a>b -> b<a and a>=b -> b<=a: one comparator direction per pair.
	add("cmp_swap", GroupCmp, func(g *EGraph, id ClassID, n Node) int {
		var flip rtlil.CellType
		switch rtlil.CellType(n.Op) {
		case rtlil.CellGt:
			flip = rtlil.CellLt
		case rtlil.CellGe:
			flip = rtlil.CellLe
		default:
			return 0
		}
		a, b := binKids(g, n)
		return unionWith(g, id, Node{Op: Op(flip), Width: n.Width, Kids: []ClassID{b, a}})
	})
	// a<=b -> ~(b<a) and a!=b -> ~(a==b): complements share the
	// comparator through a 1-bit inverter.
	add("cmp_complement", GroupCmp, func(g *EGraph, id ClassID, n Node) int {
		var base rtlil.CellType
		var kids [2]ClassID
		a, b := ClassID(0), ClassID(0)
		switch rtlil.CellType(n.Op) {
		case rtlil.CellLe:
			a, b = binKids(g, n)
			base, kids = rtlil.CellLt, [2]ClassID{b, a}
		case rtlil.CellNe:
			a, b = binKids(g, n)
			base, kids = rtlil.CellEq, [2]ClassID{a, b}
		default:
			return 0
		}
		inner := g.Add(Node{Op: Op(base), Width: n.Width, Kids: kids[:]})
		return unionWith(g, id, Node{Op: Op(rtlil.CellNot), Width: 1, Kids: []ClassID{inner}})
	})
	// x==x -> 1, x!=x -> 0, x<x -> 0, x<=x -> 1 (gt/ge reach these via
	// cmp_swap).
	add("cmp_self", GroupCmp, func(g *EGraph, id ClassID, n Node) int {
		var v uint64
		switch rtlil.CellType(n.Op) {
		case rtlil.CellEq, rtlil.CellLe:
			v = 1
		case rtlil.CellNe, rtlil.CellLt:
			v = 0
		default:
			return 0
		}
		a, b := binKids(g, n)
		if a != b {
			return 0
		}
		if g.Union(id, addConst(g, v, 1)) {
			return 1
		}
		return 0
	})

	// --- constant folding ---------------------------------------------

	add("const_fold", GroupFold, func(g *EGraph, id ClassID, n Node) int {
		if !foldable(n.Op) || len(n.Kids) == 0 {
			return 0
		}
		if rtlil.CellType(n.Op) == rtlil.CellDiv {
			return 0
		}
		vals := make([]uint64, len(n.Kids))
		for i, k := range n.Kids {
			v, ok := g.constOf(k)
			if !ok {
				return 0
			}
			vals[i] = v
		}
		v, ok := evalOp(n.Op, n.Width, vals)
		if !ok {
			return 0
		}
		if g.Union(id, addConst(g, v, n.valueWidth())) {
			return 1
		}
		return 0
	})

	return rules
}

// Saturate runs equality saturation: every rule over every (class,
// node) pair, rebuild, repeat — until a fixpoint, the iteration budget,
// or the node budget. It returns the number of iterations run and the
// total rewrites applied.
func Saturate(g *EGraph, rules []Rule, iters, nodeLimit int) (ranIters, applied int) {
	for iter := 0; iter < iters; iter++ {
		if g.NodeCount() >= nodeLimit {
			break
		}
		before := g.version
		// Snapshot the class list: rewrites may allocate classes, which
		// get their turn next iteration.
		ids := g.ClassIDs()
		for _, id := range ids {
			for _, rule := range rules {
				if g.NodeCount() >= nodeLimit {
					break
				}
				id = g.Find(id)
				// Snapshot the node list: rules may grow it. The limit
				// is re-checked per node, not just per class: rules
				// like associativity enumerate a kid class's nodes, so
				// one unchecked sweep over a large class can add
				// O(class²) nodes and eat gigabytes before the outer
				// check fires.
				nodes := append([]Node(nil), g.classes[id].Nodes...)
				for _, n := range nodes {
					if g.NodeCount() >= nodeLimit {
						break
					}
					applied += rule.Apply(g, id, g.canonicalize(n))
					id = g.Find(id)
				}
			}
		}
		g.Rebuild()
		ranIters++
		if g.version == before {
			break
		}
	}
	return ranIters, applied
}
