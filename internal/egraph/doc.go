// Package egraph implements verified e-graph rewriting over the
// word-level datapath cells of an rtlil module — the ROVER recipe
// ("RTL Optimization via Verified E-Graph Rewriting") adapted to this
// repository's cell library and area metric.
//
// The pipeline is: ingest the module's datapath region (arithmetic,
// bitwise, shift and comparison cells) into an e-graph whose e-nodes
// carry cell type, result width and signedness; saturate it under a
// rule library of datapath identities (commutativity, associativity,
// distributivity, shift/multiply exchanges for power-of-two constants,
// constant folding, self-cancellation, comparison canonicalization)
// with iteration and node budgets; extract the cheapest representative
// of every needed class under the AIG area cost model; and only then
// rewrite the module — after every changed output cone has been proved
// equivalent to the original by the internal/cec miter. A failed proof
// rejects the whole extraction: the pass never ships an unverified
// netlist.
//
// Widths follow the repository's canonical two-valued semantics (the
// AIG lowering in internal/aig): operands of arithmetic and bitwise
// cells are zero-extended or truncated to the result width, comparisons
// operate at the wider operand width, shifts resize only the shifted
// operand. The e-graph models those adaptations with an explicit
// resize e-node so rewrites stay sound across mixed-width netlists.
// $div is deliberately opaque: it has no AIG lowering, so it is
// hash-consed (identical-operand cells may merge via CSE) but no rule
// rewrites through it and the cost model prices it heuristically.
package egraph
