package egraph

import "repro/internal/rtlil"

// mask returns the low-w-bit mask (w in 1..64).
func mask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// foldable reports whether constant folding understands the operator.
// $div is excluded on purpose: its x-producing division-by-zero case
// has no two-valued constant story, and the pass treats it as opaque.
func foldable(op Op) bool {
	switch rtlil.CellType(op) {
	case rtlil.CellAdd, rtlil.CellSub, rtlil.CellMul,
		rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor, rtlil.CellXnor,
		rtlil.CellNot, rtlil.CellNeg,
		rtlil.CellShl, rtlil.CellShr,
		rtlil.CellEq, rtlil.CellNe, rtlil.CellLt, rtlil.CellLe,
		rtlil.CellGt, rtlil.CellGe:
		return true
	}
	return op == OpResize
}

// evalOp computes the node's value from constant child values,
// mirroring the canonical cell semantics of internal/aig and
// internal/sim: arithmetic/bitwise operate mod 2^Width, comparisons at
// the operand width with a 1-bit result, shifts zero-fill and overflow
// to zero. Child values must already be reduced mod their own width.
func evalOp(op Op, width int, kids []uint64) (uint64, bool) {
	if width > 64 || width < 1 || !foldable(op) {
		return 0, false
	}
	m := mask(width)
	one := func(b bool) (uint64, bool) {
		if b {
			return 1, true
		}
		return 0, true
	}
	switch rtlil.CellType(op) {
	case rtlil.CellAdd:
		return (kids[0] + kids[1]) & m, true
	case rtlil.CellSub:
		return (kids[0] - kids[1]) & m, true
	case rtlil.CellMul:
		return (kids[0] * kids[1]) & m, true
	case rtlil.CellAnd:
		return kids[0] & kids[1], true
	case rtlil.CellOr:
		return kids[0] | kids[1], true
	case rtlil.CellXor:
		return kids[0] ^ kids[1], true
	case rtlil.CellXnor:
		return ^(kids[0] ^ kids[1]) & m, true
	case rtlil.CellNot:
		return ^kids[0] & m, true
	case rtlil.CellNeg:
		return (-kids[0]) & m, true
	case rtlil.CellShl:
		if kids[1] >= uint64(width) {
			return 0, true
		}
		return (kids[0] << kids[1]) & m, true
	case rtlil.CellShr:
		if kids[1] >= uint64(width) {
			return 0, true
		}
		return (kids[0] >> kids[1]) & m, true
	case rtlil.CellEq:
		return one(kids[0] == kids[1])
	case rtlil.CellNe:
		return one(kids[0] != kids[1])
	case rtlil.CellLt:
		return one(kids[0] < kids[1])
	case rtlil.CellLe:
		return one(kids[0] <= kids[1])
	case rtlil.CellGt:
		return one(kids[0] > kids[1])
	case rtlil.CellGe:
		return one(kids[0] >= kids[1])
	}
	if op == OpResize {
		return kids[0] & m, true
	}
	return 0, false
}

// constOf returns the constant value of a class, if it has one, reduced
// to the class width.
func (g *EGraph) constOf(id ClassID) (uint64, bool) {
	c := g.Class(id)
	if !c.hasConst {
		return 0, false
	}
	return c.constVal, true
}
