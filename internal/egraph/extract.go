package egraph

import "math"

// infCost is the not-yet-realizable sentinel. Saturating addition keeps
// partial sums below it from overflowing.
const infCost int64 = math.MaxInt64 / 4

func satAdd(a, b int64) int64 {
	s := a + b
	if s >= infCost {
		return infCost
	}
	return s
}

// Extraction is the result of cost-based extraction: for every
// realizable class, the cheapest derivation (a node index) and its
// total cost including children (shared children counted per path; use
// TotalCost for the DAG-shared figure).
type Extraction struct {
	g      *EGraph
	cm     *CostModel
	cost   map[ClassID]int64
	choice map[ClassID]int
}

// Extract computes the cheapest derivation of every class by a
// Bellman-Ford style fixpoint over the class list. Iteration is in
// ascending canonical ID order with strict-less updates only, and nodes
// within a class are tried in list order (original ingested nodes come
// first), so ties break deterministically toward existing structure.
// Because every cell-emitting node costs >= 1, the chosen derivations
// can never cycle through their own class.
func Extract(g *EGraph, cm *CostModel) *Extraction {
	e := &Extraction{
		g:      g,
		cm:     cm,
		cost:   map[ClassID]int64{},
		choice: map[ClassID]int{},
	}
	ids := g.ClassIDs()
	for _, id := range ids {
		e.cost[id] = infCost
		e.choice[id] = -1
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			c := g.Class(id)
			for ni := range c.Nodes {
				n := g.canonicalize(c.Nodes[ni])
				total := e.derivationCost(n)
				if total < e.cost[id] {
					e.cost[id] = total
					e.choice[id] = ni
					changed = true
				}
			}
		}
	}
	return e
}

// derivationCost is the node's intrinsic cost plus the current best
// costs of its children (tree-counted; the fixpoint only needs a
// monotone bound).
func (e *Extraction) derivationCost(n Node) int64 {
	total := e.cm.NodeCost(n, e.kidSpecs(n))
	for _, k := range n.Kids {
		total = satAdd(total, e.cost[e.g.Find(k)])
	}
	return total
}

// kidSpecs describes the node's operands for the cost model.
func (e *Extraction) kidSpecs(n Node) []kidSpec {
	if len(n.Kids) == 0 {
		return nil
	}
	specs := make([]kidSpec, len(n.Kids))
	for i, k := range n.Kids {
		c := e.g.Class(k)
		specs[i] = kidSpec{width: c.width, isConst: c.hasConst, val: c.constVal}
	}
	return specs
}

// Realizable reports whether the class has a finite-cost derivation.
func (e *Extraction) Realizable(id ClassID) bool {
	return e.cost[e.g.Find(id)] < infCost
}

// Node returns the chosen (cheapest) node of the class, canonicalized.
// The class must be realizable.
func (e *Extraction) Node(id ClassID) Node {
	id = e.g.Find(id)
	return e.g.canonicalize(e.g.Class(id).Nodes[e.choice[id]])
}

// NodeBaseCost returns the intrinsic cost of the class's chosen node,
// excluding children.
func (e *Extraction) NodeBaseCost(id ClassID) int64 {
	n := e.Node(id)
	return e.cm.NodeCost(n, e.kidSpecs(n))
}

// TotalCost sums the intrinsic costs of every class in the chosen
// derivations reachable from the roots, counting each class once —
// shared subexpressions are priced once, matching how the rewrite will
// actually emit them.
func (e *Extraction) TotalCost(roots []ClassID) int64 {
	seen := map[ClassID]bool{}
	var total int64
	var visit func(id ClassID)
	visit = func(id ClassID) {
		id = e.g.Find(id)
		if seen[id] {
			return
		}
		seen[id] = true
		if !e.Realizable(id) {
			total = infCost
			return
		}
		total = satAdd(total, e.NodeBaseCost(id))
		for _, k := range e.Node(id).Kids {
			visit(k)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return total
}
