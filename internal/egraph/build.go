package egraph

import (
	"repro/internal/rtlil"
)

// regionOp reports whether the cell type participates in the e-graph's
// datapath region. $div is included as an opaque leaf-like operator:
// it is hash-consed (identical cells share a class) but never rewritten
// through.
func regionOp(t rtlil.CellType) bool {
	switch t {
	case rtlil.CellAdd, rtlil.CellSub, rtlil.CellMul, rtlil.CellDiv,
		rtlil.CellNeg, rtlil.CellNot,
		rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor, rtlil.CellXnor,
		rtlil.CellShl, rtlil.CellShr,
		rtlil.CellEq, rtlil.CellNe, rtlil.CellLt, rtlil.CellLe,
		rtlil.CellGt, rtlil.CellGe:
		return true
	}
	return false
}

// opKind classifies one recorded cell operand.
type opKind int

const (
	opCell  opKind = iota // exact output of another region cell
	opLeaf                // opaque signal
	opConst               // fully defined constant
)

// operandRef records how one original cell operand was classified, so
// the verifier can rebuild the original cone without consulting the
// (possibly already rewritten) module.
type operandRef struct {
	kind     opKind
	producer *regionCell // opCell: the driving region cell
	leaf     ClassID     // opLeaf: the leaf's class (pre-saturation ID)
	val      uint64      // opConst
	width    int         // operand width before resizing
	resizeTo int         // canonical target width; 0 when none needed
}

// regionCell is one ingested datapath cell.
type regionCell struct {
	cell *rtlil.Cell
	node Node    // the cell as an e-node (pre-saturation kid IDs)
	cls  ClassID // class of the cell's result (pre-saturation ID)
	// ySig is the canonical render of the cell's Y signal; yw its value
	// width (1 for comparisons).
	ySig rtlil.SigSpec
	yw   int
	ops  []operandRef
	root bool
}

// Builder ingests a module's datapath region into an e-graph.
type Builder struct {
	m  *rtlil.Module
	ix *rtlil.Index
	g  *EGraph

	cells    []*regionCell // ingestion (topological) order
	byCell   map[*rtlil.Cell]*regionCell
	sigClass map[string]*regionCell // canonical Y render -> producer
	leafCls  map[string]ClassID
	exposed  map[*regionCell]bool
}

// BuildModule ingests the module's datapath region. It returns nil when
// the module has no region cells (or is cyclic, which TopoSort rejects).
func BuildModule(m *rtlil.Module) (*Builder, error) {
	order, err := rtlil.TopoSort(m)
	if err != nil {
		return nil, err
	}
	b := &Builder{
		m:        m,
		ix:       rtlil.NewIndex(m),
		g:        New(),
		byCell:   map[*rtlil.Cell]*regionCell{},
		sigClass: map[string]*regionCell{},
		leafCls:  map[string]ClassID{},
		exposed:  map[*regionCell]bool{},
	}
	for _, c := range order {
		b.ingest(c)
	}
	if len(b.cells) == 0 {
		return nil, nil
	}
	b.markRoots()
	return b, nil
}

// EGraph returns the populated e-graph.
func (b *Builder) EGraph() *EGraph { return b.g }

// ingest adds one cell to the e-graph if it belongs to the region and
// fits the supported shapes (widths 1..64, 1-bit comparison results).
func (b *Builder) ingest(c *rtlil.Cell) {
	t := c.Type
	if !regionOp(t) {
		return
	}
	ySig := b.ix.Map(c.Port("Y"))
	if len(ySig) < 1 || ySig.HasConst() {
		return
	}
	yw := len(ySig)
	var node Node
	var ops []operandRef
	switch {
	case rtlil.IsCompare(t):
		if yw != 1 {
			return
		}
		a, bsig := c.Port("A"), c.Port("B")
		w := len(a)
		if len(bsig) > w {
			w = len(bsig)
		}
		if w < 1 || w > 64 {
			return
		}
		ka, ra := b.operand(a, w)
		kb, rb := b.operand(bsig, w)
		node = Node{Op: Op(t), Width: w, Kids: []ClassID{ka, kb}}
		ops = []operandRef{ra, rb}
	case rtlil.IsUnary(t): // $not, $neg
		if yw > 64 {
			return
		}
		ka, ra := b.operand(c.Port("A"), yw)
		node = Node{Op: Op(t), Width: yw, Kids: []ClassID{ka}}
		ops = []operandRef{ra}
	case t == rtlil.CellShl || t == rtlil.CellShr:
		bsig := c.Port("B")
		if yw > 64 || len(bsig) < 1 || len(bsig) > 64 {
			return
		}
		ka, ra := b.operand(c.Port("A"), yw)
		kb, rb := b.operandRaw(bsig)
		node = Node{Op: Op(t), Width: yw, Kids: []ClassID{ka, kb}}
		ops = []operandRef{ra, rb}
	case t == rtlil.CellDiv:
		// Opaque: operands keep their exact widths — truncating a
		// dividend does not commute with division, so no resize node may
		// separate the cell from its operands.
		a, bsig := c.Port("A"), c.Port("B")
		if yw > 64 || len(a) < 1 || len(a) > 64 || len(bsig) < 1 || len(bsig) > 64 {
			return
		}
		ka, ra := b.operandRaw(a)
		kb, rb := b.operandRaw(bsig)
		node = Node{Op: Op(t), Width: yw, Kids: []ClassID{ka, kb}}
		ops = []operandRef{ra, rb}
	default: // binary arith/bitwise
		if yw > 64 {
			return
		}
		ka, ra := b.operand(c.Port("A"), yw)
		kb, rb := b.operand(c.Port("B"), yw)
		node = Node{Op: Op(t), Width: yw, Kids: []ClassID{ka, kb}}
		ops = []operandRef{ra, rb}
	}
	cls := b.g.Add(node)
	rc := &regionCell{cell: c, node: node, cls: cls, ySig: ySig, yw: node.valueWidth(), ops: ops}
	b.cells = append(b.cells, rc)
	b.byCell[c] = rc
	key := ySig.String()
	if _, dup := b.sigClass[key]; !dup {
		b.sigClass[key] = rc
	}
}

// operand resolves a cell operand under the canonical resize-to-w
// semantics: the base signal's class, wrapped in an OpResize node when
// the widths differ.
func (b *Builder) operand(sig rtlil.SigSpec, w int) (ClassID, operandRef) {
	base, ref := b.operandRaw(sig)
	if ref.width == w {
		return base, ref
	}
	n := Node{Op: OpResize, Width: w, Kids: []ClassID{base}}
	cls := b.g.Add(n)
	ref.resizeTo = w
	return cls, ref
}

// operandRaw resolves a signal at its own width: a constant, the exact
// output of an ingested region cell, or an opaque leaf.
func (b *Builder) operandRaw(sig rtlil.SigSpec) (ClassID, operandRef) {
	c := b.ix.Map(sig)
	w := len(c)
	if c.IsFullyConst() && c.IsFullyDefined() && w <= 64 {
		v, _ := c.AsUint64()
		n := Node{Op: OpConst, Width: w, Val: v}
		cls := b.g.Add(n)
		return cls, operandRef{kind: opConst, val: v, width: w}
	}
	key := c.String()
	if rc := b.sigClass[key]; rc != nil {
		return rc.cls, operandRef{kind: opCell, producer: rc, width: rc.yw}
	}
	cls, ok := b.leafCls[key]
	if !ok {
		n := Node{Op: OpLeaf, Width: w, Leaf: key, Sig: c}
		cls = b.g.Add(n)
		b.leafCls[key] = cls
	}
	// A leaf that covers bits driven by region cells (a slice, concat or
	// mix) pins those producers: mark them so they become roots and stay
	// realized.
	for _, bit := range c {
		if d := b.ix.DriverCell(bit); d != nil {
			if prc := b.byCell[d]; prc != nil {
				b.exposed[prc] = true
			}
		}
	}
	return cls, operandRef{kind: opLeaf, leaf: cls, width: w}
}

// markRoots flags the cells whose results are observable outside the
// region: read by a non-region cell, exported as a module output, or
// partially read through a leaf slice.
func (b *Builder) markRoots() {
	for _, rc := range b.cells {
		if b.exposed[rc] {
			rc.root = true
			continue
		}
	bits:
		for _, bit := range rc.ySig {
			if b.ix.IsOutputBit(bit) {
				rc.root = true
				break
			}
			for _, r := range b.ix.Readers(bit) {
				if b.byCell[r.Cell] == nil {
					rc.root = true
					break bits
				}
			}
		}
	}
}

// Roots lists the root cells in ingestion order.
func (b *Builder) Roots() []*regionCell {
	var out []*regionCell
	for _, rc := range b.cells {
		if rc.root {
			out = append(out, rc)
		}
	}
	return out
}

// OriginalCost prices the module's own realization of the root cones:
// the intrinsic cost of every region cell reachable from the roots,
// each distinct cell counted once. Duplicate cells are counted
// separately (they really exist in the module), which is what lets
// extraction's shared realization register as a strict improvement.
// Resize adaptations are priced at zero here — they are free wiring in
// the module — while extraction prices them at one, biasing ties
// toward keeping the original netlist. Must be called before
// saturation, while pre-saturation class IDs are canonical.
func (b *Builder) OriginalCost(cm *CostModel, roots []*regionCell) int64 {
	seen := map[*regionCell]bool{}
	var total int64
	var visit func(rc *regionCell)
	visit = func(rc *regionCell) {
		if seen[rc] {
			return
		}
		seen[rc] = true
		n := rc.node
		specs := make([]kidSpec, len(n.Kids))
		for i, k := range n.Kids {
			kc := b.g.Class(k)
			specs[i] = kidSpec{width: kc.width, isConst: kc.hasConst, val: kc.constVal}
		}
		total = satAdd(total, cm.NodeCost(n, specs))
		for _, ref := range rc.ops {
			if ref.kind == opCell {
				visit(ref.producer)
			}
		}
	}
	for _, rc := range roots {
		visit(rc)
	}
	return total
}
