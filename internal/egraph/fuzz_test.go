package egraph

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cec"
	"repro/internal/rtlil"
)

// randomDatapathModule builds a small random word-level netlist over
// the operator set opt_egraph rewrites. Widths stay at 4 bits and
// multipliers only ever see module inputs: the whole-module miter
// below re-proves every multiplier with the naive CDCL solver, and a
// product fed by another product makes the miter exponentially harder
// (a chain of three 4-bit muls already blows past 10^6 conflicts).
// The shared-operand bias (reusing earlier words) is what gives the
// rules something to factor.
func randomDatapathModule(rng *rand.Rand) *rtlil.Module {
	const w = 4
	m := rtlil.NewModule("fuzz")
	var inputs []rtlil.SigSpec
	var words []rtlil.SigSpec
	var bits []rtlil.SigSpec
	for i := 0; i < 3; i++ {
		in := m.AddInput(string(rune('a'+i)), w).Bits()
		inputs = append(inputs, in)
		words = append(words, in)
	}
	pickWord := func() rtlil.SigSpec { return words[rng.Intn(len(words))] }
	pickInput := func() rtlil.SigSpec { return inputs[rng.Intn(len(inputs))] }
	muls := 0
	for i := 0; i < 8+rng.Intn(6); i++ {
		switch rng.Intn(10) {
		case 0:
			words = append(words, m.AddOp(pickWord(), pickWord()))
		case 1:
			words = append(words, m.SubOp(pickWord(), pickWord()))
		case 2:
			if muls < 3 {
				muls++
				words = append(words, m.MulOp(pickInput(), pickInput()))
			} else {
				words = append(words, m.Xor(pickWord(), pickWord()))
			}
		case 3:
			words = append(words, m.Shl(pickWord(), rtlil.Const(uint64(rng.Intn(w)), 2)))
		case 4:
			words = append(words, m.And(pickWord(), pickWord()))
		case 5:
			words = append(words, m.Or(pickWord(), pickWord()))
		case 6:
			words = append(words, m.AddOp(pickWord(), rtlil.Const(uint64(rng.Intn(1<<w)), w)))
		case 7:
			bits = append(bits, m.Lt(pickWord(), pickWord()))
		case 8:
			bits = append(bits, m.Gt(pickWord(), pickWord()))
		case 9:
			if len(bits) > 0 {
				words = append(words, m.Mux(pickWord(), pickWord(), bits[rng.Intn(len(bits))]))
			} else {
				words = append(words, m.Xor(pickWord(), pickWord()))
			}
		}
	}
	y := m.AddOutput("y", w)
	m.Connect(y.Bits(), words[len(words)-1])
	y2 := m.AddOutput("y2", w)
	m.Connect(y2.Bits(), words[rng.Intn(len(words))])
	if len(bits) > 0 {
		p := m.AddOutput("p", 1)
		m.Connect(p.Bits(), bits[len(bits)-1])
	}
	return m
}

// FuzzEgraphRewrite: differential fuzz of the whole pass. For each
// seed the pass runs with verification on, and then the result is
// checked against the original with an INDEPENDENT whole-module cec
// miter — so a bug in the pass's own per-cone verifier cannot vouch
// for itself. A second run from the same input must produce a
// bit-identical netlist (determinism) and a third run on the output
// must be a no-op (fixpoint convergence).
func FuzzEgraphRewrite(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		m := randomDatapathModule(rand.New(rand.NewSource(seed)))
		orig := m.Clone()
		run := func(mod *rtlil.Module) bool {
			res, err := (&Pass{}).Run(nil, mod)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := mod.Validate(); err != nil {
				t.Fatalf("seed %d: invalid module after pass: %v", seed, err)
			}
			return res.Changed
		}
		got := m.Clone()
		run(got)
		// Bounded so a miter the naive solver cannot crack hangs neither
		// the fuzzer nor CI; exhaustion is inconclusive, not a failure.
		err := cec.Check(orig, got, &cec.Options{RandomRounds: 2, MaxConflicts: 2000000})
		if err != nil {
			if strings.Contains(err.Error(), "budget") {
				t.Skipf("seed %d: whole-module miter too hard for the solver: %v", seed, err)
			}
			t.Fatalf("seed %d: pass broke equivalence: %v", seed, err)
		}
		again := m.Clone()
		run(again)
		if rtlil.CanonicalHash(got) != rtlil.CanonicalHash(again) {
			t.Fatalf("seed %d: two runs from the same input diverged", seed)
		}
		if run(got.Clone()) {
			t.Fatalf("seed %d: pass churned its own output", seed)
		}
	})
}
