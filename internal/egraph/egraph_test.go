package egraph

import (
	"strings"
	"testing"

	"repro/internal/rtlil"
)

func leaf(g *EGraph, name string, w int) ClassID {
	return g.Add(Node{Op: OpLeaf, Width: w, Leaf: name})
}

func cellNode(op rtlil.CellType, w int, kids ...ClassID) Node {
	return Node{Op: Op(op), Width: w, Kids: kids}
}

func saturateAll(t *testing.T, g *EGraph) int {
	t.Helper()
	rules, err := ParseRules("all")
	if err != nil {
		t.Fatal(err)
	}
	_, applied := Saturate(g, rules, 16, 100000)
	return applied
}

func TestHashconsDedup(t *testing.T) {
	g := New()
	a, b := leaf(g, "a", 8), leaf(g, "b", 8)
	x := g.Add(cellNode(rtlil.CellAdd, 8, a, b))
	y := g.Add(cellNode(rtlil.CellAdd, 8, a, b))
	if x != y {
		t.Fatalf("identical nodes got classes %d and %d", x, y)
	}
	if got := g.NodeCount(); got != 3 {
		t.Fatalf("NodeCount = %d, want 3", got)
	}
	if leaf(g, "a", 8) != a {
		t.Error("leaf not deduped")
	}
}

func TestUnionFindLowerIDWins(t *testing.T) {
	g := New()
	a, b := leaf(g, "a", 4), leaf(g, "b", 4)
	if !g.Union(b, a) {
		t.Fatal("union of distinct classes reported no change")
	}
	if g.Union(a, b) {
		t.Fatal("second union reported a change")
	}
	if got := g.Find(b); got != a {
		t.Errorf("Find(b) = %d, want %d (lower ID wins)", got, a)
	}
}

func TestCongruenceClosure(t *testing.T) {
	g := New()
	a, b, c := leaf(g, "a", 8), leaf(g, "b", 8), leaf(g, "c", 8)
	f1 := g.Add(cellNode(rtlil.CellAdd, 8, a, b))
	f2 := g.Add(cellNode(rtlil.CellAdd, 8, a, c))
	if g.Find(f1) == g.Find(f2) {
		t.Fatal("distinct applications merged prematurely")
	}
	g.Union(b, c)
	g.Rebuild()
	if g.Find(f1) != g.Find(f2) {
		t.Error("congruence closure did not merge add(a,b) with add(a,c) after b=c")
	}
}

func TestUnionWidthMismatchPanics(t *testing.T) {
	g := New()
	a, b := leaf(g, "a", 8), leaf(g, "b", 4)
	defer func() {
		if recover() == nil {
			t.Error("union of different widths did not panic")
		}
	}()
	g.Union(a, b)
}

func TestUnionConstConflictPanics(t *testing.T) {
	g := New()
	c1 := g.Add(Node{Op: OpConst, Width: 8, Val: 1})
	c2 := g.Add(Node{Op: OpConst, Width: 8, Val: 2})
	defer func() {
		if recover() == nil {
			t.Error("union proving 1 == 2 did not panic")
		}
	}()
	g.Union(c1, c2)
}

func TestConstFold(t *testing.T) {
	g := New()
	c3 := g.Add(Node{Op: OpConst, Width: 8, Val: 3})
	c4 := g.Add(Node{Op: OpConst, Width: 8, Val: 4})
	sum := g.Add(cellNode(rtlil.CellAdd, 8, c3, c4))
	saturateAll(t, g)
	if v, ok := g.constOf(sum); !ok || v != 7 {
		t.Errorf("3+4 folded to (%d, %v), want (7, true)", v, ok)
	}
	cmp := g.Add(cellNode(rtlil.CellLt, 8, c3, c4))
	saturateAll(t, g)
	if v, ok := g.constOf(cmp); !ok || v != 1 {
		t.Errorf("3<4 folded to (%d, %v), want (1, true)", v, ok)
	}
}

func TestCommuteAndAssociate(t *testing.T) {
	g := New()
	a, b, c := leaf(g, "a", 8), leaf(g, "b", 8), leaf(g, "c", 8)
	ab := g.Add(cellNode(rtlil.CellMul, 8, a, b))
	ba := g.Add(cellNode(rtlil.CellMul, 8, b, a))
	abc := g.Add(cellNode(rtlil.CellAdd, 8, g.Add(cellNode(rtlil.CellAdd, 8, a, b)), c))
	acb := g.Add(cellNode(rtlil.CellAdd, 8, a, g.Add(cellNode(rtlil.CellAdd, 8, b, c))))
	saturateAll(t, g)
	if g.Find(ab) != g.Find(ba) {
		t.Error("a*b and b*a not merged")
	}
	if g.Find(abc) != g.Find(acb) {
		t.Error("(a+b)+c and a+(b+c) not merged")
	}
}

func TestSubSelfAndXorSelf(t *testing.T) {
	g := New()
	x := leaf(g, "x", 8)
	sub := g.Add(cellNode(rtlil.CellSub, 8, x, x))
	xor := g.Add(cellNode(rtlil.CellXor, 8, x, x))
	saturateAll(t, g)
	if v, ok := g.constOf(sub); !ok || v != 0 {
		t.Errorf("x-x = (%d, %v), want (0, true)", v, ok)
	}
	if v, ok := g.constOf(xor); !ok || v != 0 {
		t.Errorf("x^x = (%d, %v), want (0, true)", v, ok)
	}
}

func TestDistributivityFactoring(t *testing.T) {
	g := New()
	a, b, c := leaf(g, "a", 8), leaf(g, "b", 8), leaf(g, "c", 8)
	sum := g.Add(cellNode(rtlil.CellAdd, 8,
		g.Add(cellNode(rtlil.CellMul, 8, a, b)),
		g.Add(cellNode(rtlil.CellMul, 8, a, c))))
	saturateAll(t, g)
	cm := NewCostModel()
	ext := Extract(g, cm)
	n := ext.Node(sum)
	if rtlil.CellType(n.Op) != rtlil.CellMul {
		t.Fatalf("extraction chose %s for a*b+a*c, want the factored $mul", n.Op)
	}
	// The factored form prices one multiplier instead of two.
	single := g.Add(cellNode(rtlil.CellMul, 8, a, b))
	if ext.TotalCost([]ClassID{sum}) >= 2*ext.TotalCost([]ClassID{single}) {
		t.Errorf("factored cost %d not below two multipliers (%d each)",
			ext.TotalCost([]ClassID{sum}), ext.TotalCost([]ClassID{single}))
	}
}

func TestMulShlExchange(t *testing.T) {
	g := New()
	x := leaf(g, "x", 8)
	four := g.Add(Node{Op: OpConst, Width: 8, Val: 4})
	mul := g.Add(cellNode(rtlil.CellMul, 8, x, four))
	two := g.Add(Node{Op: OpConst, Width: 2, Val: 2})
	shl := g.Add(cellNode(rtlil.CellShl, 8, x, two))
	saturateAll(t, g)
	if g.Find(mul) != g.Find(shl) {
		t.Error("x*4 and x<<2 not merged")
	}
}

func TestShiftOverflowAndZero(t *testing.T) {
	g := New()
	x := leaf(g, "x", 8)
	k9 := g.Add(Node{Op: OpConst, Width: 4, Val: 9})
	over := g.Add(cellNode(rtlil.CellShl, 8, x, k9))
	zero := g.Add(Node{Op: OpConst, Width: 4, Val: 0})
	ident := g.Add(cellNode(rtlil.CellShr, 8, x, zero))
	saturateAll(t, g)
	if v, ok := g.constOf(over); !ok || v != 0 {
		t.Errorf("x<<9 at width 8 = (%d, %v), want (0, true)", v, ok)
	}
	if g.Find(ident) != g.Find(x) {
		t.Error("x>>0 not merged with x")
	}
}

func TestCompareCanonicalization(t *testing.T) {
	g := New()
	a, b := leaf(g, "a", 8), leaf(g, "b", 8)
	gt := g.Add(cellNode(rtlil.CellGt, 8, a, b))
	lt := g.Add(cellNode(rtlil.CellLt, 8, b, a))
	ltSelf := g.Add(cellNode(rtlil.CellLt, 8, a, a))
	saturateAll(t, g)
	if g.Find(gt) != g.Find(lt) {
		t.Error("a>b and b<a not merged")
	}
	if v, ok := g.constOf(ltSelf); !ok || v != 0 {
		t.Errorf("a<a = (%d, %v), want (0, true)", v, ok)
	}
}

func TestNotNotAndXnor(t *testing.T) {
	g := New()
	a, b := leaf(g, "a", 8), leaf(g, "b", 8)
	nn := g.Add(cellNode(rtlil.CellNot, 8, g.Add(cellNode(rtlil.CellNot, 8, a))))
	xnor := g.Add(cellNode(rtlil.CellXnor, 8, a, b))
	notXor := g.Add(cellNode(rtlil.CellNot, 8, g.Add(cellNode(rtlil.CellXor, 8, a, b))))
	saturateAll(t, g)
	if g.Find(nn) != g.Find(a) {
		t.Error("~~a not merged with a")
	}
	if g.Find(xnor) != g.Find(notXor) {
		t.Error("xnor(a,b) not merged with ~(a^b)")
	}
}

func TestSaturateNodeBudget(t *testing.T) {
	g := New()
	ids := make([]ClassID, 6)
	for i := range ids {
		ids[i] = leaf(g, string(rune('a'+i)), 8)
	}
	acc := ids[0]
	for _, id := range ids[1:] {
		acc = g.Add(cellNode(rtlil.CellAdd, 8, acc, id))
	}
	rules, _ := ParseRules("all")
	limit := g.NodeCount() + 5
	Saturate(g, rules, 100, limit)
	// The budget is a soft stop: one rule application may overshoot by
	// the few nodes it allocates, but growth must halt near the limit.
	if g.NodeCount() > limit+8 {
		t.Errorf("NodeCount = %d, want <= %d (budget ignored)", g.NodeCount(), limit+8)
	}
}

func TestDivIsOpaque(t *testing.T) {
	g := New()
	a, b := leaf(g, "a", 8), leaf(g, "b", 8)
	d1 := g.Add(cellNode(rtlil.CellDiv, 8, a, b))
	d2 := g.Add(cellNode(rtlil.CellDiv, 8, a, b))
	if d1 != d2 {
		t.Error("identical $div nodes not hash-consed")
	}
	c2 := g.Add(Node{Op: OpConst, Width: 8, Val: 2})
	dc := g.Add(cellNode(rtlil.CellDiv, 8, a, c2))
	saturateAll(t, g)
	if _, ok := g.constOf(g.Find(dc)); ok {
		t.Error("$div by constant was folded; it must stay opaque")
	}
	if got := g.Class(dc).Nodes; len(got) != 1 {
		t.Errorf("$div class grew %d nodes, want 1 (no rewrites through $div)", len(got))
	}
}

func TestParseRules(t *testing.T) {
	if _, err := ParseRules("arith+shift"); err != nil {
		t.Errorf("arith+shift rejected: %v", err)
	}
	if _, err := ParseRules("bogus"); err == nil {
		t.Error("unknown group accepted")
	} else if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error does not name the bad group: %v", err)
	}
	all, _ := ParseRules("all")
	sub, _ := ParseRules("cmp")
	if len(sub) >= len(all) {
		t.Errorf("cmp-only rule set has %d rules, all has %d", len(sub), len(all))
	}
	names := RuleNames()
	for _, group := range []string{"arith", "bitwise", "shift", "cmp", "fold", "structural"} {
		if len(names[group]) == 0 {
			t.Errorf("group %s has no rules", group)
		}
	}
}

func TestCostModelConstOperandsCheaper(t *testing.T) {
	cm := NewCostModel()
	x := kidSpec{width: 8}
	constK := kidSpec{width: 8, isConst: true, val: 13}
	mulVar := cm.NodeCost(Node{Op: Op(rtlil.CellMul), Width: 8}, []kidSpec{x, x})
	mulConst := cm.NodeCost(Node{Op: Op(rtlil.CellMul), Width: 8}, []kidSpec{x, constK})
	if mulConst >= mulVar {
		t.Errorf("mul by constant (%d) not cheaper than variable mul (%d)", mulConst, mulVar)
	}
	div := cm.NodeCost(Node{Op: Op(rtlil.CellDiv), Width: 8}, []kidSpec{x, x})
	if div <= mulVar {
		t.Errorf("$div (%d) not priced above $mul (%d)", div, mulVar)
	}
	if c := cm.NodeCost(Node{Op: OpLeaf, Width: 8}, nil); c != 0 {
		t.Errorf("leaf cost = %d, want 0", c)
	}
	if c := cm.NodeCost(Node{Op: OpResize, Width: 8}, []kidSpec{x}); c < 1 {
		t.Errorf("resize cost = %d, want >= 1 (acyclic extraction)", c)
	}
}

func TestExtractionDeterministic(t *testing.T) {
	build := func() (*EGraph, ClassID) {
		g := New()
		a, b, c := leaf(g, "a", 8), leaf(g, "b", 8), leaf(g, "c", 8)
		sum := g.Add(cellNode(rtlil.CellAdd, 8,
			g.Add(cellNode(rtlil.CellMul, 8, a, b)),
			g.Add(cellNode(rtlil.CellMul, 8, a, c))))
		saturateAll(t, g)
		return g, sum
	}
	g1, s1 := build()
	g2, s2 := build()
	e1, e2 := Extract(g1, NewCostModel()), Extract(g2, NewCostModel())
	if k1, k2 := e1.Node(s1).key(), e2.Node(s2).key(); k1 != k2 {
		t.Errorf("extraction differs across identical runs: %q vs %q", k1, k2)
	}
	if c1, c2 := e1.TotalCost([]ClassID{s1}), e2.TotalCost([]ClassID{s2}); c1 != c2 {
		t.Errorf("total cost differs across identical runs: %d vs %d", c1, c2)
	}
}
