package egraph

import (
	"fmt"
	"time"

	"repro/internal/cec"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// Defaults for the saturation budgets.
const (
	DefaultIters     = 8
	DefaultNodeLimit = 20000
	// DefaultVerifyConflicts bounds the SAT effort per equivalence
	// proof. The naive CDCL solver hits an exponential cliff on wide
	// multiplier miters (a 6-bit distributivity proof needs ~50k
	// conflicts, an 8-bit one is out of reach), so the default keeps the
	// pass's worst case bounded: a blowout is a sound rejection, not a
	// hang.
	DefaultVerifyConflicts = 100000
)

// Options configures the opt_egraph pass. The zero value uses the
// default budgets, the full rule library, and verified extraction.
type Options struct {
	// Iters bounds the saturation iterations (0 = DefaultIters).
	Iters int
	// NodeLimit bounds the e-graph size in nodes (0 = DefaultNodeLimit).
	NodeLimit int
	// Rules selects rule groups: "all" (or empty) or a '+'-separated
	// subset of arith, bitwise, shift, cmp, fold.
	Rules string
	// DisableVerify skips the per-cone equivalence proofs. Only for
	// experiments that check equivalence externally: the pass' contract
	// is that every shipped rewrite is proved.
	DisableVerify bool
	// VerifyConflicts bounds the SAT effort per proof; a blowout counts
	// as a failed proof. 0 = DefaultVerifyConflicts, negative =
	// unlimited.
	VerifyConflicts int64
}

func (o Options) withDefaults() Options {
	if o.Iters <= 0 {
		o.Iters = DefaultIters
	}
	if o.NodeLimit <= 0 {
		o.NodeLimit = DefaultNodeLimit
	}
	if o.Rules == "" {
		o.Rules = "all"
	}
	if o.VerifyConflicts == 0 {
		o.VerifyConflicts = DefaultVerifyConflicts
	} else if o.VerifyConflicts < 0 {
		o.VerifyConflicts = 0 // cec: 0 means unlimited
	}
	return o
}

// Pass is the opt_egraph pass: verified e-graph rewriting of the
// datapath region.
type Pass struct {
	Opts Options

	// failedProofs caches miters (by canonical hash of both sides) that
	// already exhausted their SAT budget, so an enclosing fixpoint does
	// not re-pay the blowout every iteration for a cone that keeps
	// being re-planned. Pass instances persist across fixpoint
	// iterations within one module run, which is exactly this cache's
	// lifetime.
	failedProofs map[string]bool
}

// Name implements opt.Pass.
func (p *Pass) Name() string { return "opt_egraph" }

// Run ingests the module's datapath region, saturates the e-graph,
// extracts the cheapest realization, proves every changed cone
// equivalent, and only then rewires the module. A failed proof — a
// counterexample, a SAT budget blowout, an unmappable cell such as
// $div — rejects that root's rewrite; the remaining proven roots still
// apply (a skipped root keeps its original cone, which never
// invalidates the other proofs).
func (p *Pass) Run(c *opt.Ctx, m *rtlil.Module) (opt.Result, error) {
	res := opt.Result{Details: map[string]int{}}
	o := p.Opts.withDefaults()
	rules, err := ParseRules(o.Rules)
	if err != nil {
		return res, err
	}
	b, err := BuildModule(m)
	if err != nil {
		return res, fmt.Errorf("opt_egraph: %w", err)
	}
	if b == nil {
		return res, nil
	}
	roots := b.Roots()
	if len(roots) == 0 {
		return res, nil
	}
	cm := NewCostModel()
	origCost := b.OriginalCost(cm, roots)

	g := b.EGraph()
	iters, applied := Saturate(g, rules, o.Iters, o.NodeLimit)
	set := func(key string, v int) {
		if v != 0 {
			res.Details[key] = v
		}
	}
	set("egraph_cells", len(b.cells))
	set("egraph_classes", g.ClassCount())
	set("egraph_nodes", g.NodeCount())
	set("egraph_iters", iters)
	set("egraph_rules_applied", applied)

	ext := Extract(g, cm)
	rw := Plan(b, ext)
	if len(rw.Rewired) == 0 {
		return res, nil
	}
	rootCls := make([]ClassID, len(roots))
	for i, rc := range roots {
		rootCls[i] = rc.cls
	}
	extCost := ext.TotalCost(rootCls)
	// Strict improvement only: a tie-churning rewrite would stop the
	// enclosing fixpoint from converging, and buys nothing.
	if extCost >= origCost {
		return res, nil
	}

	if !o.DisableVerify {
		if p.failedProofs == nil {
			p.failedProofs = map[string]bool{}
		}
		opts := &cec.Options{RandomRounds: 2, MaxConflicts: o.VerifyConflicts}
		start := time.Now()
		rejected := 0
		for _, rc := range append([]*regionCell(nil), rw.Rewired...) {
			oldM, newM := rw.MiterModules(rc)
			key := rtlil.CanonicalHash(oldM) + "|" + rtlil.CanonicalHash(newM)
			if p.failedProofs[key] {
				rw.Reject(rc)
				rejected++
				continue
			}
			if err := cec.Check(oldM, newM, opts); err != nil {
				c.Logf("opt_egraph: proof failed for %s, rejecting its rewrite: %v", rc.cell.Name, err)
				p.failedProofs[key] = true
				rw.Reject(rc)
				rejected++
			}
		}
		set("egraph_verify_rejected", rejected)
		if len(rw.Rewired) == 0 {
			return res, nil
		}
		c.Logf("opt_egraph: proved %d rewritten cones in %v (%d rejected)",
			len(rw.Rewired), time.Since(start).Round(time.Microsecond), rejected)
		set("egraph_verified", len(rw.Rewired))
	}

	emitted := rw.Apply()
	res.Changed = true
	set("egraph_rewired", len(rw.Rewired))
	set("egraph_cells_emitted", emitted)
	if saved := origCost - extCost; saved > 0 {
		set("egraph_cost_saved", int(saved))
	}
	return res, nil
}
