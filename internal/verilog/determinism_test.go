package verilog

import (
	"testing"

	"repro/internal/rtlil"
)

// TestElaborateDeterministic guards the sorted-target iteration in
// elabAlways/mergeEnvs: multi-target always blocks with branching used
// to emit cells in map order, so repeated elaborations of the same
// source produced different netlists. Golden hashes depend on this.
func TestElaborateDeterministic(t *testing.T) {
	src := `
module det(input clk, input sel, input [3:0] a, input [3:0] b,
           output [3:0] y);
  reg [3:0] p, q, r, s, u;
  reg [3:0] n;
  always @(*) begin
    case (sel)
      1'b0: n = a & b;
      default: n = a | b;
    endcase
  end
  always @(posedge clk) begin
    if (sel) begin
      p <= a;
      q <= b;
      r <= a ^ b;
    end else begin
      p <= b;
      s <= a + b;
    end
    u <= n;
  end
  assign y = p ^ q ^ r ^ s ^ u;
endmodule
`
	var want string
	for i := 0; i < 20; i++ {
		f, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Elaborate(f)
		if err != nil {
			t.Fatal(err)
		}
		got := rtlil.CanonicalHash(d.Modules()[0])
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("elaboration %d: hash %s != first run %s", i, got, want)
		}
	}
}
