package verilog

// The abstract syntax tree for the supported subset.

// SourceFile is a parsed compilation unit.
type SourceFile struct {
	Modules []*ModuleDecl
}

// ModuleDecl is a module definition.
type ModuleDecl struct {
	Name  string
	Ports []string // port order from the header
	Items []Item
	Line  int
}

// Item is a module-level item.
type Item interface{ item() }

// PortDir is a port direction.
type PortDir int

// Port directions.
const (
	DirNone PortDir = iota
	DirInput
	DirOutput
)

// Decl declares wires/regs (possibly with a direction) over a bit range.
type Decl struct {
	Dir   PortDir
	IsReg bool
	// MSB/LSB are constant expressions; nil means a 1-bit scalar.
	MSB, LSB Expr
	Names    []string
	Line     int
}

// ParamDecl declares a parameter or localparam.
type ParamDecl struct {
	Name  string
	Value Expr
	Line  int
}

// AssignStmt is a continuous assignment.
type AssignStmt struct {
	LHS  Expr
	RHS  Expr
	Line int
}

// AlwaysBlock is an always block: combinational (Comb) or clocked on
// posedge Clock.
type AlwaysBlock struct {
	Comb  bool
	Clock string // clock signal name for sequential blocks
	Body  Stmt
	Line  int
}

func (*Decl) item()        {}
func (*ParamDecl) item()   {}
func (*AssignStmt) item()  {}
func (*AlwaysBlock) item() {}

// Stmt is a procedural statement.
type Stmt interface{ stmt() }

// Block is begin ... end.
type Block struct {
	Stmts []Stmt
}

// ProcAssign is a procedural assignment (blocking or non-blocking; the
// elaborator treats them identically within a block).
type ProcAssign struct {
	LHS  Expr
	RHS  Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// CaseStmt is case/casez/casex.
type CaseStmt struct {
	Wildcard bool // casez/casex: z (and x for casex) bits match anything
	Expr     Expr
	Items    []CaseItem
	Line     int
}

// CaseItem is one case arm; Labels is nil for default.
type CaseItem struct {
	Labels []Expr
	Body   Stmt
}

func (*Block) stmt()      {}
func (*ProcAssign) stmt() {}
func (*IfStmt) stmt()     {}
func (*CaseStmt) stmt()   {}

// Expr is an expression.
type Expr interface{ expr() }

// Ident is an identifier reference.
type Ident struct {
	Name string
	Line int
}

// Number is a literal, kept in source form ("8'hff", "42").
type Number struct {
	Text string
	Line int
}

// Unary is a unary operation: ~ ! - & | ^ (reduce).
type Unary struct {
	Op string
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	Op   string
	L, R Expr
}

// Ternary is cond ? t : f.
type Ternary struct {
	Cond, T, F Expr
}

// Index is a bit select x[i].
type Index struct {
	X   Expr
	Idx Expr
}

// Slice is a part select x[msb:lsb] with constant bounds.
type Slice struct {
	X        Expr
	MSB, LSB Expr
}

// Concat is {a, b, c} (MSB first in source order).
type Concat struct {
	Parts []Expr
}

// Repeat is {n{x}}.
type Repeat struct {
	Count Expr
	X     Expr
}

func (*Ident) expr()   {}
func (*Number) expr()  {}
func (*Unary) expr()   {}
func (*Binary) expr()  {}
func (*Ternary) expr() {}
func (*Index) expr()   {}
func (*Slice) expr()   {}
func (*Concat) expr()  {}
func (*Repeat) expr()  {}
