// Package verilog implements a frontend for the synthesizable Verilog
// subset the smaRTLy paper exercises: modules with port lists, wire/reg
// declarations, parameters, continuous assignments, combinational
// always @(*) blocks and clocked always @(posedge ...) blocks with
// if/else and case/casez statements — the constructs that elaborate into
// the muxtrees the optimizer targets.
//
// The pipeline is lexer → parser (AST) → elaborator (rtlil netlist),
// mirroring how Yosys' frontend feeds opt_muxtree.
package verilog

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber  // 123, 8'hff, 3'b1zz
	TokKeyword // module, wire, case, ...
	TokSymbol  // punctuation and operators
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s %q @%d:%d", t.kindName(), t.Text, t.Line, t.Col)
}

func (t Token) kindName() string {
	switch t.Kind {
	case TokEOF:
		return "eof"
	case TokIdent:
		return "ident"
	case TokNumber:
		return "number"
	case TokKeyword:
		return "keyword"
	case TokSymbol:
		return "symbol"
	}
	return "?"
}

var keywords = map[string]bool{
	"module": true, "endmodule": true,
	"input": true, "output": true, "inout": true,
	"wire": true, "reg": true, "integer": true,
	"assign": true, "always": true, "posedge": true, "negedge": true,
	"if": true, "else": true,
	"case": true, "casez": true, "casex": true, "endcase": true,
	"default": true, "begin": true, "end": true,
	"parameter": true, "localparam": true,
	"function": true, "endfunction": true,
	"or": true,
}

// multi-character symbols, longest first.
var symbols = []string{
	"<<<", ">>>", "===", "!==",
	"<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "~^", "^~", "**",
	"+", "-", "*", "/", "%", "!", "~", "&", "|", "^",
	"(", ")", "[", "]", "{", "}", ";", ",", ".", ":", "?", "=", "<", ">",
	"@", "#",
}

// Lex tokenizes Verilog source. Comments (// and /* */) are skipped.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine := line
			advance(2)
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				advance(1)
			}
			if i+1 >= n {
				return nil, fmt.Errorf("verilog:%d: unterminated block comment", startLine)
			}
			advance(2)
		case c == '`':
			// Skip compiler directives to end of line (timescale etc.).
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case isIdentStart(c):
			start := i
			startCol := col
			for i < n && isIdentPart(src[i]) {
				advance(1)
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{kind, text, line, startCol})
		case c >= '0' && c <= '9', c == '\'':
			start := i
			startCol := col
			// Leading digits (optional size).
			for i < n && (isDigit(src[i]) || src[i] == '_') {
				advance(1)
			}
			if i < n && src[i] == '\'' {
				advance(1)
				if i < n && (src[i] == 's' || src[i] == 'S') {
					advance(1)
				}
				if i < n {
					advance(1) // base char
				}
				for i < n && (isAlnum(src[i]) || src[i] == '_' || src[i] == '?') {
					advance(1)
				}
			}
			toks = append(toks, Token{TokNumber, src[start:i], line, startCol})
		case c == '"':
			advance(1)
			for i < n && src[i] != '"' {
				advance(1)
			}
			if i >= n {
				return nil, fmt.Errorf("verilog:%d: unterminated string", line)
			}
			advance(1) // strings are ignored by the parser
		default:
			matched := false
			for _, s := range symbols {
				if strings.HasPrefix(src[i:], s) {
					toks = append(toks, Token{TokSymbol, s, line, col})
					advance(len(s))
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("verilog:%d:%d: unexpected character %q", line, col, c)
			}
		}
	}
	toks = append(toks, Token{TokEOF, "", line, col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c == '\\' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || isAlnum(c)
}

func isAlnum(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
