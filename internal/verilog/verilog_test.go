package verilog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rtlil"
	"repro/internal/sim"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("module m; // comment\n wire [3:0] a; assign a = 4'b1x0z; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	if kinds[0] != TokKeyword || texts[0] != "module" {
		t.Errorf("first token: %v %q", kinds[0], texts[0])
	}
	found := false
	for _, s := range texts {
		if s == "4'b1x0z" {
			found = true
		}
	}
	if !found {
		t.Error("sized literal not lexed as one token")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("/* multi \n line */ wire // eol\n x;")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // wire, x, ;, EOF
		t.Errorf("tokens = %d, want 4: %v", len(toks), toks)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated comment accepted")
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, _ := Lex("a\nb\n  c")
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 3 || toks[2].Col != 3 {
		t.Errorf("positions wrong: %v", toks[:3])
	}
}

func elab(t *testing.T, src string) *rtlil.Module {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Elaborate(f)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Top()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// evalModule evaluates the module's outputs for the given input values.
func evalModule(t *testing.T, m *rtlil.Module, inputs map[string]uint64) map[string]uint64 {
	t.Helper()
	s, err := sim.NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	in := map[rtlil.SigBit]rtlil.State{}
	for name, val := range inputs {
		w := m.Wire(name)
		if w == nil {
			t.Fatalf("no wire %s", name)
		}
		for i := 0; i < w.Width; i++ {
			in[w.Bit(i)] = rtlil.BoolState((val>>uint(i))&1 == 1)
		}
	}
	vals, err := s.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]uint64{}
	for _, w := range m.Outputs() {
		states := s.EvalSig(vals, w.Bits())
		var v uint64
		for i, st := range states {
			if st == rtlil.Sx || st == rtlil.Sz {
				t.Fatalf("output %s bit %d undefined", w.Name, i)
			}
			if st == rtlil.S1 {
				v |= 1 << uint(i)
			}
		}
		out[w.Name] = v
	}
	return out
}

func TestSimpleAssign(t *testing.T) {
	m := elab(t, `
module top(input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = (a & b) | ~a;
endmodule`)
	for _, c := range []struct{ a, b, want uint64 }{
		{0b1100, 0b1010, (0b1100 & 0b1010) | (^uint64(0b1100) & 0xf)},
		{0, 0xf, 0xf},
	} {
		got := evalModule(t, m, map[string]uint64{"a": c.a, "b": c.b})
		if got["y"] != c.want {
			t.Errorf("a=%b b=%b: y=%b want %b", c.a, c.b, got["y"], c.want)
		}
	}
}

func TestOperators(t *testing.T) {
	m := elab(t, `
module top(input [7:0] a, input [7:0] b, output [7:0] sum,
           output [7:0] diff, output lt, output eq, output [7:0] sh,
           output red, output [7:0] mux);
  assign sum = a + b;
  assign diff = a - b;
  assign lt = a < b;
  assign eq = a == b;
  assign sh = a << b[1:0];
  assign red = |a & ^b;
  assign mux = (a > b) ? a : b;
endmodule`)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		a, b := rng.Uint64()&0xff, rng.Uint64()&0xff
		got := evalModule(t, m, map[string]uint64{"a": a, "b": b})
		check := func(name string, want uint64) {
			if got[name] != want {
				t.Errorf("a=%#x b=%#x: %s=%#x want %#x", a, b, name, got[name], want)
			}
		}
		check("sum", (a+b)&0xff)
		check("diff", (a-b)&0xff)
		check("lt", b2u(a < b))
		check("eq", b2u(a == b))
		check("sh", (a<<(b&3))&0xff)
		red := uint64(0)
		if a != 0 {
			red = 1
		}
		check("red", red&parity(b))
		mx := b
		if a > b {
			mx = a
		}
		check("mux", mx)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func parity(v uint64) uint64 {
	var p uint64
	for ; v != 0; v >>= 1 {
		p ^= v & 1
	}
	return p
}

func TestConcatSliceRepeat(t *testing.T) {
	m := elab(t, `
module top(input [7:0] a, output [7:0] y, output [5:0] z, output [3:0] r);
  assign y = {a[3:0], a[7:4]};
  assign z = {a[0], a[1], {2{a[2]}}, 2'b10};
  assign r = {4{a[7]}};
endmodule`)
	got := evalModule(t, m, map[string]uint64{"a": 0b10110100})
	if got["y"] != 0b01001011 {
		t.Errorf("y = %08b, want 01001011", got["y"])
	}
	// z = {a[0]=0, a[1]=0, a[2]=1, a[2]=1, 1, 0} = 001110
	if got["z"] != 0b001110 {
		t.Errorf("z = %06b, want 001110", got["z"])
	}
	if got["r"] != 0b1111 {
		t.Errorf("r = %04b, want 1111", got["r"])
	}
}

func TestNonZeroLSBRange(t *testing.T) {
	m := elab(t, `
module top(input [11:4] a, output [3:0] y, output b);
  assign y = a[7:4];
  assign b = a[11];
endmodule`)
	got := evalModule(t, m, map[string]uint64{"a": 0b10010110})
	if got["y"] != 0b0110 {
		t.Errorf("y = %04b, want 0110", got["y"])
	}
	if got["b"] != 1 {
		t.Errorf("b = %d, want 1", got["b"])
	}
}

func TestParameters(t *testing.T) {
	m := elab(t, `
module top #(parameter W = 8, parameter HALF = W/2) (input [W-1:0] a, output [HALF-1:0] y);
  assign y = a[HALF-1:0];
endmodule`)
	if m.Wire("a").Width != 8 || m.Wire("y").Width != 4 {
		t.Errorf("widths a=%d y=%d", m.Wire("a").Width, m.Wire("y").Width)
	}
}

func TestCombAlwaysIfElse(t *testing.T) {
	m := elab(t, `
module top(input [3:0] a, input [3:0] b, input s, output reg [3:0] y);
  always @(*) begin
    if (s)
      y = a;
    else
      y = b;
  end
endmodule`)
	if got := evalModule(t, m, map[string]uint64{"a": 5, "b": 9, "s": 1}); got["y"] != 5 {
		t.Errorf("s=1: y=%d", got["y"])
	}
	if got := evalModule(t, m, map[string]uint64{"a": 5, "b": 9, "s": 0}); got["y"] != 9 {
		t.Errorf("s=0: y=%d", got["y"])
	}
	// The lowering must produce a mux.
	muxes := 0
	for _, c := range m.Cells() {
		if c.Type == rtlil.CellMux {
			muxes++
		}
	}
	if muxes != 1 {
		t.Errorf("muxes = %d, want 1", muxes)
	}
}

func TestCombAlwaysDefaultThenIf(t *testing.T) {
	m := elab(t, `
module top(input [3:0] a, input s, output reg [3:0] y);
  always @(*) begin
    y = 4'd0;
    if (s) y = a;
  end
endmodule`)
	if got := evalModule(t, m, map[string]uint64{"a": 7, "s": 0}); got["y"] != 0 {
		t.Errorf("y=%d, want 0", got["y"])
	}
	if got := evalModule(t, m, map[string]uint64{"a": 7, "s": 1}); got["y"] != 7 {
		t.Errorf("y=%d, want 7", got["y"])
	}
}

func TestLatchRejected(t *testing.T) {
	src := `
module top(input [3:0] a, input s, output reg [3:0] y);
  always @(*) begin
    if (s) y = a;
  end
endmodule`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Elaborate(f); err == nil || !strings.Contains(err.Error(), "latch") {
		t.Errorf("latch not rejected: %v", err)
	}
}

// TestListing1 elaborates the paper's Listing 1 case statement and
// verifies pmux lowering plus functional behaviour.
func TestListing1(t *testing.T) {
	m := elab(t, `
module top(input [1:0] s, input [3:0] p0, input [3:0] p1,
           input [3:0] p2, input [3:0] p3, output reg [3:0] y);
  always @(*) begin
    case (s)
      2'b00: y = p0;
      2'b01: y = p1;
      2'b10: y = p2;
      default: y = p3;
    endcase
  end
endmodule`)
	pm := 0
	eqs := 0
	for _, c := range m.Cells() {
		switch c.Type {
		case rtlil.CellPmux:
			pm++
		case rtlil.CellEq:
			eqs++
		}
	}
	if pm != 1 || eqs != 3 {
		t.Errorf("cells: %d pmux (want 1), %d eq (want 3)", pm, eqs)
	}
	in := map[string]uint64{"p0": 1, "p1": 2, "p2": 3, "p3": 4}
	for s, want := range map[uint64]uint64{0: 1, 1: 2, 2: 3, 3: 4} {
		in["s"] = s
		if got := evalModule(t, m, in); got["y"] != want {
			t.Errorf("s=%d: y=%d want %d", s, got["y"], want)
		}
	}
}

// TestListing2 elaborates the paper's Listing 2 casez statement.
func TestListing2(t *testing.T) {
	m := elab(t, `
module top(input [2:0] s, input [1:0] p0, input [1:0] p1,
           input [1:0] p2, input [1:0] p3, output reg [1:0] y);
  always @(*) begin
    casez (s)
      3'b1zz: y = p0;
      3'b01z: y = p1;
      3'b001: y = p2;
      default: y = p3;
    endcase
  end
endmodule`)
	in := map[string]uint64{"p0": 0, "p1": 1, "p2": 2, "p3": 3}
	for s := uint64(0); s < 8; s++ {
		in["s"] = s
		var want uint64
		switch {
		case s >= 4:
			want = 0
		case s >= 2:
			want = 1
		case s == 1:
			want = 2
		default:
			want = 3
		}
		if got := evalModule(t, m, in); got["y"] != want {
			t.Errorf("s=%03b: y=%d want %d", s, got["y"], want)
		}
	}
}

func TestCasePriorityOverlap(t *testing.T) {
	// Overlapping casez patterns: first match must win.
	m := elab(t, `
module top(input [1:0] s, output reg [3:0] y);
  always @(*) begin
    casez (s)
      2'b1z: y = 4'd1;
      2'bz1: y = 4'd2;
      default: y = 4'd3;
    endcase
  end
endmodule`)
	for s, want := range map[uint64]uint64{0b10: 1, 0b11: 1, 0b01: 2, 0b00: 3} {
		if got := evalModule(t, m, map[string]uint64{"s": s}); got["y"] != want {
			t.Errorf("s=%02b: y=%d want %d", s, got["y"], want)
		}
	}
}

func TestSequentialAlways(t *testing.T) {
	m := elab(t, `
module top(input clk, input en, input [3:0] d, output reg [3:0] q);
  always @(posedge clk) begin
    if (en) q <= d;
  end
endmodule`)
	var ff *rtlil.Cell
	for _, c := range m.Cells() {
		if c.Type == rtlil.CellDff {
			ff = c
		}
	}
	if ff == nil {
		t.Fatal("no dff")
	}
	// The hold path must mux Q back into D.
	s, err := sim.NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	qw := m.Wire("q")
	in := map[rtlil.SigBit]rtlil.State{}
	set := func(name string, val uint64) {
		w := m.Wire(name)
		for i := 0; i < w.Width; i++ {
			in[w.Bit(i)] = rtlil.BoolState((val>>uint(i))&1 == 1)
		}
	}
	set("en", 0)
	set("d", 5)
	set("q", 9)
	vals, err := s.Eval(in)
	if err != nil {
		t.Fatal(err)
	}
	d := s.EvalSig(vals, ff.Port("D"))
	var dv uint64
	for i, st := range d {
		if st == rtlil.S1 {
			dv |= 1 << uint(i)
		}
	}
	if dv != 9 {
		t.Errorf("hold: D=%d, want held q=9", dv)
	}
	set("en", 1)
	vals, _ = s.Eval(in)
	d = s.EvalSig(vals, ff.Port("D"))
	dv = 0
	for i, st := range d {
		if st == rtlil.S1 {
			dv |= 1 << uint(i)
		}
	}
	if dv != 5 {
		t.Errorf("load: D=%d, want 5", dv)
	}
	_ = qw
}

func TestPartialBitAssign(t *testing.T) {
	m := elab(t, `
module top(input [3:0] a, input s, output reg [3:0] y);
  always @(*) begin
    y = 4'b0000;
    y[1:0] = a[3:2];
    if (s) y[3] = 1'b1;
  end
endmodule`)
	if got := evalModule(t, m, map[string]uint64{"a": 0b1100, "s": 0}); got["y"] != 0b0011 {
		t.Errorf("y=%04b, want 0011", got["y"])
	}
	if got := evalModule(t, m, map[string]uint64{"a": 0b1100, "s": 1}); got["y"] != 0b1011 {
		t.Errorf("y=%04b, want 1011", got["y"])
	}
}

func TestVariableIndex(t *testing.T) {
	m := elab(t, `
module top(input [7:0] a, input [2:0] i, output y);
  assign y = a[i];
endmodule`)
	for i := uint64(0); i < 8; i++ {
		a := uint64(0b10110010)
		got := evalModule(t, m, map[string]uint64{"a": a, "i": i})
		if got["y"] != (a>>i)&1 {
			t.Errorf("i=%d: y=%d want %d", i, got["y"], (a>>i)&1)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"wire x;",                     // no module
		"module m(; endmodule",        // bad port list
		"module m(); wire; endmodule", // missing name
		"module m(); assign ; endmodule",
		"module m(); always @(*) z; endmodule",
		"module m(); case endmodule",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestElabErrors(t *testing.T) {
	for _, src := range []string{
		`module m(input a, output y); assign y = b; endmodule`,          // undeclared
		`module m(input a, output y); assign y = a[5]; endmodule`,       // out of range
		`module m(p); wire p; assign p = 1'b0; endmodule`,               // port without direction
		`module m(input [0:3] a, output y); assign y = a[0]; endmodule`, // descending range
	} {
		f, err := Parse(src)
		if err != nil {
			continue // parse error also acceptable
		}
		if _, err := Elaborate(f); err == nil {
			t.Errorf("elaborated: %q", src)
		}
	}
}

func TestClassicPortStyle(t *testing.T) {
	m := elab(t, `
module top(a, b, y);
  input [1:0] a;
  input [1:0] b;
  output [1:0] y;
  assign y = a ^ b;
endmodule`)
	if len(m.Inputs()) != 2 || len(m.Outputs()) != 1 {
		t.Errorf("ports: %d in %d out", len(m.Inputs()), len(m.Outputs()))
	}
	if got := evalModule(t, m, map[string]uint64{"a": 2, "b": 3}); got["y"] != 1 {
		t.Errorf("y=%d", got["y"])
	}
}
