package verilog

import (
	"fmt"
)

// Parse lexes and parses a Verilog source file.
func Parse(src string) (*SourceFile, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &SourceFile{}
	for !p.at(TokEOF, "") {
		if p.atKeyword("module") {
			m, err := p.parseModule()
			if err != nil {
				return nil, err
			}
			f.Modules = append(f.Modules, m)
			continue
		}
		return nil, p.errorf("expected module, got %s", p.peek())
	}
	if len(f.Modules) == 0 {
		return nil, fmt.Errorf("verilog: no modules in source")
	}
	return f, nil
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k TokKind, text string) bool {
	t := p.peek()
	return t.Kind == k && (text == "" || t.Text == text)
}
func (p *parser) atKeyword(kw string) bool { return p.at(TokKeyword, kw) }
func (p *parser) atSymbol(s string) bool   { return p.at(TokSymbol, s) }

func (p *parser) accept(k TokKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k TokKind, text string) (Token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return Token{}, p.errorf("expected %q, got %s", text, p.peek())
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("verilog:%d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) parseModule() (*ModuleDecl, error) {
	start, _ := p.expect(TokKeyword, "module")
	nameTok, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	m := &ModuleDecl{Name: nameTok.Text, Line: start.Line}

	// Optional parameter header: #(parameter N = 4, ...)
	if p.accept(TokSymbol, "#") {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			p.accept(TokKeyword, "parameter")
			pd, err := p.parseParamBody()
			if err != nil {
				return nil, err
			}
			m.Items = append(m.Items, pd)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}

	// Port list: classic (names) or ANSI (directions inline).
	if p.accept(TokSymbol, "(") {
		if !p.atSymbol(")") {
			if err := p.parsePortList(m); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSymbol, ";"); err != nil {
		return nil, err
	}

	for !p.atKeyword("endmodule") {
		if p.at(TokEOF, "") {
			return nil, p.errorf("unexpected EOF in module %s", m.Name)
		}
		items, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	p.next() // endmodule
	return m, nil
}

func (p *parser) parsePortList(m *ModuleDecl) error {
	for {
		if p.atKeyword("input") || p.atKeyword("output") {
			// ANSI style.
			d, err := p.parsePortDecl()
			if err != nil {
				return err
			}
			m.Items = append(m.Items, d)
			m.Ports = append(m.Ports, d.Names...)
		} else {
			t, err := p.expect(TokIdent, "")
			if err != nil {
				return err
			}
			m.Ports = append(m.Ports, t.Text)
		}
		if !p.accept(TokSymbol, ",") {
			return nil
		}
	}
}

// parsePortDecl parses "input [3:0] a" / "output reg [1:0] b" inside an
// ANSI port list (single name per declaration segment; additional names
// separated by commas are handled by the caller loop re-entering here
// only on a direction keyword, so bare names continue the last decl).
func (p *parser) parsePortDecl() (*Decl, error) {
	d := &Decl{Line: p.peek().Line}
	switch {
	case p.accept(TokKeyword, "input"):
		d.Dir = DirInput
	case p.accept(TokKeyword, "output"):
		d.Dir = DirOutput
	default:
		return nil, p.errorf("expected port direction")
	}
	p.accept(TokKeyword, "wire")
	if p.accept(TokKeyword, "reg") {
		d.IsReg = true
	}
	if err := p.parseRange(d); err != nil {
		return nil, err
	}
	t, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	d.Names = []string{t.Text}
	return d, nil
}

func (p *parser) parseRange(d *Decl) error {
	if !p.accept(TokSymbol, "[") {
		return nil
	}
	msb, err := p.parseExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokSymbol, ":"); err != nil {
		return err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return err
	}
	if _, err := p.expect(TokSymbol, "]"); err != nil {
		return err
	}
	d.MSB, d.LSB = msb, lsb
	return nil
}

func (p *parser) parseItem() ([]Item, error) {
	switch {
	case p.atKeyword("input"), p.atKeyword("output"), p.atKeyword("wire"),
		p.atKeyword("reg"), p.atKeyword("integer"):
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		return []Item{d}, nil
	case p.atKeyword("parameter"), p.atKeyword("localparam"):
		p.next()
		var items []Item
		for {
			pd, err := p.parseParamBody()
			if err != nil {
				return nil, err
			}
			items = append(items, pd)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ";"); err != nil {
			return nil, err
		}
		return items, nil
	case p.atKeyword("assign"):
		p.next()
		var items []Item
		for {
			lhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, "="); err != nil {
				return nil, err
			}
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &AssignStmt{LHS: lhs, RHS: rhs, Line: p.peek().Line})
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ";"); err != nil {
			return nil, err
		}
		return items, nil
	case p.atKeyword("always"):
		a, err := p.parseAlways()
		if err != nil {
			return nil, err
		}
		return []Item{a}, nil
	}
	return nil, p.errorf("unsupported module item at %s", p.peek())
}

func (p *parser) parseParamBody() (*ParamDecl, error) {
	// Optional range on parameters is accepted and ignored.
	if p.atSymbol("[") {
		var dummy Decl
		if err := p.parseRange(&dummy); err != nil {
			return nil, err
		}
	}
	name, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "="); err != nil {
		return nil, err
	}
	val, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ParamDecl{Name: name.Text, Value: val, Line: name.Line}, nil
}

func (p *parser) parseDecl() (*Decl, error) {
	d := &Decl{Line: p.peek().Line}
	switch {
	case p.accept(TokKeyword, "input"):
		d.Dir = DirInput
	case p.accept(TokKeyword, "output"):
		d.Dir = DirOutput
	}
	switch {
	case p.accept(TokKeyword, "wire"):
	case p.accept(TokKeyword, "reg"):
		d.IsReg = true
	case p.accept(TokKeyword, "integer"):
		d.IsReg = true
		thirtyTwo := &Number{Text: "31"}
		zero := &Number{Text: "0"}
		d.MSB, d.LSB = thirtyTwo, zero
	}
	if err := p.parseRange(d); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		d.Names = append(d.Names, t.Text)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(TokSymbol, ";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseAlways() (*AlwaysBlock, error) {
	start, _ := p.expect(TokKeyword, "always")
	a := &AlwaysBlock{Line: start.Line}
	if _, err := p.expect(TokSymbol, "@"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, "("); err != nil {
		return nil, err
	}
	switch {
	case p.accept(TokSymbol, "*"):
		a.Comb = true
	case p.atKeyword("posedge"):
		p.next()
		clk, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		a.Clock = clk.Text
	default:
		// Explicit sensitivity list: treat as combinational.
		a.Comb = true
		for {
			if _, err := p.expect(TokIdent, ""); err != nil {
				return nil, err
			}
			if p.accept(TokKeyword, "or") || p.accept(TokSymbol, ",") {
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokSymbol, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	a.Body = body
	return a, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("begin"):
		p.next()
		b := &Block{}
		for !p.atKeyword("end") {
			if p.at(TokEOF, "") {
				return nil, p.errorf("unexpected EOF in block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			b.Stmts = append(b.Stmts, s)
		}
		p.next()
		return b, nil

	case p.atKeyword("if"):
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then}
		if p.accept(TokKeyword, "else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.atKeyword("case"), p.atKeyword("casez"), p.atKeyword("casex"):
		kw := p.next()
		st := &CaseStmt{Wildcard: kw.Text != "case", Line: kw.Line}
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Expr = e
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		for !p.atKeyword("endcase") {
			if p.at(TokEOF, "") {
				return nil, p.errorf("unexpected EOF in case")
			}
			item := CaseItem{}
			if p.accept(TokKeyword, "default") {
				p.accept(TokSymbol, ":")
			} else {
				for {
					l, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					item.Labels = append(item.Labels, l)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
				if _, err := p.expect(TokSymbol, ":"); err != nil {
					return nil, err
				}
			}
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			item.Body = body
			st.Items = append(st.Items, item)
		}
		p.next()
		return st, nil

	default:
		// Procedural assignment: lhs = rhs; or lhs <= rhs;
		lhs, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		line := p.peek().Line
		if !p.accept(TokSymbol, "=") {
			if _, err := p.expect(TokSymbol, "<="); err != nil {
				return nil, p.errorf("expected assignment")
			}
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ";"); err != nil {
			return nil, err
		}
		return &ProcAssign{LHS: lhs, RHS: rhs, Line: line}, nil
	}
}

// Expression parsing: precedence climbing.

var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4, "~^": 4, "^~": 4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept(TokSymbol, "?") {
		return cond, nil
	}
	t, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSymbol, ":"); err != nil {
		return nil, err
	}
	f, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &Ternary{Cond: cond, T: t, F: f}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokSymbol {
		switch t.Text {
		case "~", "!", "-", "+", "&", "|", "^":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if t.Text == "+" {
				return x, nil
			}
			return &Unary{Op: t.Text, X: x}, nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return p.parsePostfix(&Number{Text: t.Text, Line: t.Line})
	case t.Kind == TokIdent:
		p.next()
		return p.parsePostfix(&Ident{Name: t.Text, Line: t.Line})
	case p.accept(TokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return p.parsePostfix(e)
	case p.accept(TokSymbol, "{"):
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// Replication {n{x}}?
		if p.accept(TokSymbol, "{") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, "}"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, "}"); err != nil {
				return nil, err
			}
			return &Repeat{Count: first, X: x}, nil
		}
		c := &Concat{Parts: []Expr{first}}
		for p.accept(TokSymbol, ",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
		}
		if _, err := p.expect(TokSymbol, "}"); err != nil {
			return nil, err
		}
		return c, nil
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}

func (p *parser) parsePostfix(x Expr) (Expr, error) {
	for p.atSymbol("[") {
		p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokSymbol, ":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, "]"); err != nil {
				return nil, err
			}
			x = &Slice{X: x, MSB: first, LSB: lsb}
			continue
		}
		if _, err := p.expect(TokSymbol, "]"); err != nil {
			return nil, err
		}
		x = &Index{X: x, Idx: first}
	}
	return x, nil
}
