package verilog

import (
	"fmt"
	"sort"

	"repro/internal/rtlil"
)

// Elaborate converts a parsed source file into an rtlil design. The
// lowering follows Yosys conventions: if/else chains become $mux trees,
// parallel case statements become $pmux cells driven by $eq comparisons,
// casez wildcards compare only the constrained selector bits, and
// clocked always blocks become $dff cells with hold-muxes for partially
// assigned paths — producing exactly the muxtree shapes the smaRTLy
// passes optimize.
func Elaborate(f *SourceFile) (*rtlil.Design, error) {
	d := rtlil.NewDesign()
	for _, md := range f.Modules {
		m, err := ElaborateModule(md)
		if err != nil {
			return nil, err
		}
		d.AddModule(m)
	}
	return d, nil
}

// ElaborateModule elaborates a single module.
func ElaborateModule(md *ModuleDecl) (*rtlil.Module, error) {
	e := &elaborator{
		md:     md,
		m:      rtlil.NewModule(md.Name),
		params: map[string]int64{},
		decls:  map[string]*declInfo{},
	}
	if err := e.collectParams(); err != nil {
		return nil, err
	}
	if err := e.collectDecls(); err != nil {
		return nil, err
	}
	for _, item := range md.Items {
		switch it := item.(type) {
		case *AssignStmt:
			if err := e.elabAssign(it); err != nil {
				return nil, err
			}
		case *AlwaysBlock:
			if err := e.elabAlways(it); err != nil {
				return nil, err
			}
		}
	}
	if err := e.m.Validate(); err != nil {
		return nil, fmt.Errorf("verilog: elaborated module %s invalid: %w", md.Name, err)
	}
	return e.m, nil
}

type declInfo struct {
	wire  *rtlil.Wire
	lsb   int // declared LSB offset ([7:4] => 4)
	isReg bool
}

type elaborator struct {
	md     *ModuleDecl
	m      *rtlil.Module
	params map[string]int64
	decls  map[string]*declInfo
}

func (e *elaborator) errorf(line int, format string, args ...any) error {
	return fmt.Errorf("verilog:%s:%d: %s", e.md.Name, line, fmt.Sprintf(format, args...))
}

func (e *elaborator) collectParams() error {
	for _, item := range e.md.Items {
		pd, ok := item.(*ParamDecl)
		if !ok {
			continue
		}
		v, err := e.evalConst(pd.Value)
		if err != nil {
			return e.errorf(pd.Line, "parameter %s: %v", pd.Name, err)
		}
		e.params[pd.Name] = v
	}
	return nil
}

func (e *elaborator) collectDecls() error {
	// Port order: header order first.
	portPos := map[string]int{}
	for i, p := range e.md.Ports {
		portPos[p] = i + 1
	}
	for _, item := range e.md.Items {
		d, ok := item.(*Decl)
		if !ok {
			continue
		}
		width, lsb := 1, 0
		if d.MSB != nil {
			msb, err := e.evalConst(d.MSB)
			if err != nil {
				return e.errorf(d.Line, "range MSB: %v", err)
			}
			l, err := e.evalConst(d.LSB)
			if err != nil {
				return e.errorf(d.Line, "range LSB: %v", err)
			}
			if msb < l {
				return e.errorf(d.Line, "descending ranges [%d:%d] not supported", msb, l)
			}
			width, lsb = int(msb-l+1), int(l)
		}
		for _, name := range d.Names {
			info := e.decls[name]
			if info == nil {
				w := e.m.AddWire(name, width)
				info = &declInfo{wire: w, lsb: lsb}
				e.decls[name] = info
			} else if info.wire.Width != width {
				return e.errorf(d.Line, "conflicting widths for %s", name)
			}
			if d.IsReg {
				info.isReg = true
			}
			switch d.Dir {
			case DirInput:
				info.wire.PortInput = true
			case DirOutput:
				info.wire.PortOutput = true
			}
			if info.wire.IsPort() && info.wire.PortID == 0 {
				if pos, ok := portPos[name]; ok {
					info.wire.PortID = pos
				} else {
					info.wire.PortID = len(portPos) + 1 + len(e.decls)
				}
			}
		}
	}
	for _, p := range e.md.Ports {
		info := e.decls[p]
		if info == nil {
			return fmt.Errorf("verilog:%s: port %s never declared", e.md.Name, p)
		}
		if !info.wire.IsPort() {
			return fmt.Errorf("verilog:%s: port %s has no direction", e.md.Name, p)
		}
	}
	return nil
}

// evalConst evaluates a constant (parameter) expression.
func (e *elaborator) evalConst(x Expr) (int64, error) {
	switch v := x.(type) {
	case *Number:
		sig, err := rtlil.ParseConst(v.Text)
		if err != nil {
			return 0, err
		}
		u, ok := sig.AsUint64()
		if !ok {
			return 0, fmt.Errorf("constant %q has undefined bits", v.Text)
		}
		return int64(u), nil
	case *Ident:
		if p, ok := e.params[v.Name]; ok {
			return p, nil
		}
		return 0, fmt.Errorf("%s is not a parameter", v.Name)
	case *Unary:
		n, err := e.evalConst(v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -n, nil
		case "~":
			return ^n, nil
		}
		return 0, fmt.Errorf("unsupported constant unary %s", v.Op)
	case *Binary:
		l, err := e.evalConst(v.L)
		if err != nil {
			return 0, err
		}
		r, err := e.evalConst(v.R)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return l % r, nil
		case "<<":
			return l << uint(r), nil
		case ">>":
			return l >> uint(r), nil
		}
		return 0, fmt.Errorf("unsupported constant binary %s", v.Op)
	}
	return 0, fmt.Errorf("unsupported constant expression %T", x)
}

// --- Expression synthesis ------------------------------------------------

func (e *elaborator) synthExpr(x Expr) (rtlil.SigSpec, error) {
	switch v := x.(type) {
	case *Number:
		// Parameters do not reach here; numbers parse directly.
		return rtlil.ParseConst(v.Text)
	case *Ident:
		if p, ok := e.params[v.Name]; ok {
			return rtlil.Const(uint64(p), 32), nil
		}
		info := e.decls[v.Name]
		if info == nil {
			return nil, e.errorf(v.Line, "undeclared identifier %s", v.Name)
		}
		return info.wire.Bits(), nil
	case *Unary:
		a, err := e.synthExpr(v.X)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "~":
			return e.m.Not(a), nil
		case "!":
			return e.m.LogicNot(a), nil
		case "-":
			return e.m.Neg(a), nil
		case "&":
			return e.m.ReduceAnd(a), nil
		case "|":
			return e.m.ReduceOr(a), nil
		case "^":
			return e.m.ReduceXor(a), nil
		}
		return nil, fmt.Errorf("verilog: unsupported unary %s", v.Op)
	case *Binary:
		return e.synthBinary(v)
	case *Ternary:
		cond, err := e.synthCond(v.Cond)
		if err != nil {
			return nil, err
		}
		t, err := e.synthExpr(v.T)
		if err != nil {
			return nil, err
		}
		f, err := e.synthExpr(v.F)
		if err != nil {
			return nil, err
		}
		return e.m.Mux(f, t, cond), nil
	case *Index:
		return e.synthIndex(v)
	case *Slice:
		return e.synthSlice(v)
	case *Concat:
		var parts []rtlil.SigSpec
		// Source order is MSB first; SigSpec is LSB first.
		for i := len(v.Parts) - 1; i >= 0; i-- {
			p, err := e.synthExpr(v.Parts[i])
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		return rtlil.Concat(parts...), nil
	case *Repeat:
		n, err := e.evalConst(v.Count)
		if err != nil {
			return nil, err
		}
		if n <= 0 || n > 4096 {
			return nil, fmt.Errorf("verilog: bad replication count %d", n)
		}
		xs, err := e.synthExpr(v.X)
		if err != nil {
			return nil, err
		}
		return xs.Repeat(int(n)), nil
	}
	return nil, fmt.Errorf("verilog: unsupported expression %T", x)
}

func (e *elaborator) synthBinary(v *Binary) (rtlil.SigSpec, error) {
	// Logical operators reduce their operands first.
	if v.Op == "&&" || v.Op == "||" {
		l, err := e.synthExpr(v.L)
		if err != nil {
			return nil, err
		}
		r, err := e.synthExpr(v.R)
		if err != nil {
			return nil, err
		}
		if v.Op == "&&" {
			return e.m.LogicAnd(l, r), nil
		}
		return e.m.LogicOr(l, r), nil
	}
	l, err := e.synthExpr(v.L)
	if err != nil {
		return nil, err
	}
	r, err := e.synthExpr(v.R)
	if err != nil {
		return nil, err
	}
	switch v.Op {
	case "&":
		return e.m.And(l, r), nil
	case "|":
		return e.m.Or(l, r), nil
	case "^":
		return e.m.Xor(l, r), nil
	case "~^", "^~":
		return e.m.Xnor(l, r), nil
	case "+":
		return e.m.AddOp(l, r), nil
	case "-":
		return e.m.SubOp(l, r), nil
	case "*":
		return e.m.MulOp(l, r), nil
	case "==", "===":
		return e.m.Eq(l, r), nil
	case "!=", "!==":
		return e.m.Ne(l, r), nil
	case "<":
		return e.m.Lt(l, r), nil
	case "<=":
		return e.m.Le(l, r), nil
	case ">":
		return e.m.Gt(l, r), nil
	case ">=":
		return e.m.Ge(l, r), nil
	case "<<", "<<<":
		return e.m.Shl(l, r), nil
	case ">>", ">>>":
		return e.m.Shr(l, r), nil
	}
	return nil, fmt.Errorf("verilog: unsupported binary %s", v.Op)
}

// synthCond synthesizes a condition as a single bit (wider values are
// reduced with |).
func (e *elaborator) synthCond(x Expr) (rtlil.SigSpec, error) {
	c, err := e.synthExpr(x)
	if err != nil {
		return nil, err
	}
	if c.Width() == 1 {
		return c, nil
	}
	return e.m.ReduceOr(c), nil
}

func (e *elaborator) synthIndex(v *Index) (rtlil.SigSpec, error) {
	base, info, err := e.indexBase(v.X)
	if err != nil {
		return nil, err
	}
	lsb := 0
	if info != nil {
		lsb = info.lsb
	}
	if idx, cerr := e.evalConst(v.Idx); cerr == nil {
		off := int(idx) - lsb
		if off < 0 || off >= base.Width() {
			return nil, fmt.Errorf("verilog: index %d out of range", idx)
		}
		return base.Extract(off, 1), nil
	}
	// Variable index: shift right and take bit 0.
	idxSig, err := e.synthExpr(v.Idx)
	if err != nil {
		return nil, err
	}
	if lsb != 0 {
		idxSig = e.m.SubOp(idxSig, rtlil.Const(uint64(lsb), idxSig.Width()))
	}
	return e.m.Shr(base, idxSig).Extract(0, 1), nil
}

func (e *elaborator) synthSlice(v *Slice) (rtlil.SigSpec, error) {
	base, info, err := e.indexBase(v.X)
	if err != nil {
		return nil, err
	}
	lsb := 0
	if info != nil {
		lsb = info.lsb
	}
	msb, err := e.evalConst(v.MSB)
	if err != nil {
		return nil, err
	}
	l, err := e.evalConst(v.LSB)
	if err != nil {
		return nil, err
	}
	off, n := int(l)-lsb, int(msb-l+1)
	if n <= 0 || off < 0 || off+n > base.Width() {
		return nil, fmt.Errorf("verilog: slice [%d:%d] out of range", msb, l)
	}
	return base.Extract(off, n), nil
}

// indexBase resolves the operand of an index/slice, tracking the
// declaration for LSB offsets when it is a plain identifier.
func (e *elaborator) indexBase(x Expr) (rtlil.SigSpec, *declInfo, error) {
	if id, ok := x.(*Ident); ok {
		info := e.decls[id.Name]
		if info == nil {
			return nil, nil, e.errorf(id.Line, "undeclared identifier %s", id.Name)
		}
		return info.wire.Bits(), info, nil
	}
	sig, err := e.synthExpr(x)
	return sig, nil, err
}

// --- Continuous assignments ----------------------------------------------

func (e *elaborator) elabAssign(a *AssignStmt) error {
	lhs, err := e.synthLHS(a.LHS)
	if err != nil {
		return err
	}
	rhs, err := e.synthExpr(a.RHS)
	if err != nil {
		return err
	}
	e.m.Connect(lhs, rhs.Resize(lhs.Width(), false))
	return nil
}

// synthLHS resolves an assignment target to wire bits.
func (e *elaborator) synthLHS(x Expr) (rtlil.SigSpec, error) {
	switch v := x.(type) {
	case *Ident:
		info := e.decls[v.Name]
		if info == nil {
			return nil, e.errorf(v.Line, "undeclared assignment target %s", v.Name)
		}
		return info.wire.Bits(), nil
	case *Index:
		return e.synthIndex(v)
	case *Slice:
		return e.synthSlice(v)
	case *Concat:
		var parts []rtlil.SigSpec
		for i := len(v.Parts) - 1; i >= 0; i-- {
			p, err := e.synthLHS(v.Parts[i])
			if err != nil {
				return nil, err
			}
			parts = append(parts, p)
		}
		return rtlil.Concat(parts...), nil
	}
	return nil, fmt.Errorf("verilog: unsupported assignment target %T", x)
}

// --- Always blocks --------------------------------------------------------

// procEnv maps target wire names to their current symbolic value during
// procedural elaboration. A nil value means not yet assigned.
type procEnv map[string]rtlil.SigSpec

// sortedKeys returns the environment's target names in name order:
// cell-creating merges iterate targets through this so elaboration is
// deterministic run to run.
func sortedKeys(env procEnv) []string {
	out := make([]string, 0, len(env))
	for k := range env {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (env procEnv) clone() procEnv {
	out := make(procEnv, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func (e *elaborator) elabAlways(a *AlwaysBlock) error {
	targets := map[string]bool{}
	if err := collectTargets(a.Body, targets); err != nil {
		return err
	}
	if len(targets) == 0 {
		return nil
	}
	// Iterate targets in name order so generated cells (and their
	// auto-assigned names) come out identical on every run.
	names := make([]string, 0, len(targets))
	for t := range targets {
		names = append(names, t)
	}
	sort.Strings(names)
	env := procEnv{}
	if !a.Comb {
		// Sequential: targets hold their value (Q) when unassigned.
		for _, t := range names {
			info := e.decls[t]
			if info == nil {
				return e.errorf(a.Line, "undeclared target %s", t)
			}
			env[t] = info.wire.Bits()
		}
	} else {
		for _, t := range names {
			if e.decls[t] == nil {
				return e.errorf(a.Line, "undeclared target %s", t)
			}
			env[t] = nil
		}
	}
	env, err := e.execStmt(a.Body, env)
	if err != nil {
		return err
	}
	if a.Comb {
		for _, t := range names {
			v := env[t]
			if v == nil {
				return e.errorf(a.Line, "combinational always block does not assign %s on all paths (latch)", t)
			}
			w := e.decls[t].wire
			e.m.Connect(w.Bits(), v.Resize(w.Width, false))
		}
		return nil
	}
	clkInfo := e.decls[a.Clock]
	if clkInfo == nil {
		return e.errorf(a.Line, "undeclared clock %s", a.Clock)
	}
	for _, t := range names {
		w := e.decls[t].wire
		d := env[t].Resize(w.Width, false)
		e.m.AddDff("", clkInfo.wire.Bits().Extract(0, 1), d, w.Bits())
	}
	return nil
}

// collectTargets finds every register assigned in the statement.
func collectTargets(s Stmt, out map[string]bool) error {
	switch v := s.(type) {
	case *Block:
		for _, st := range v.Stmts {
			if err := collectTargets(st, out); err != nil {
				return err
			}
		}
	case *ProcAssign:
		name, err := targetName(v.LHS)
		if err != nil {
			return err
		}
		out[name] = true
	case *IfStmt:
		if err := collectTargets(v.Then, out); err != nil {
			return err
		}
		if v.Else != nil {
			return collectTargets(v.Else, out)
		}
	case *CaseStmt:
		for _, item := range v.Items {
			if err := collectTargets(item.Body, out); err != nil {
				return err
			}
		}
	}
	return nil
}

func targetName(x Expr) (string, error) {
	switch v := x.(type) {
	case *Ident:
		return v.Name, nil
	case *Index:
		return targetName(v.X)
	case *Slice:
		return targetName(v.X)
	}
	return "", fmt.Errorf("verilog: unsupported procedural target %T", x)
}

func (e *elaborator) execStmt(s Stmt, env procEnv) (procEnv, error) {
	switch v := s.(type) {
	case *Block:
		var err error
		for _, st := range v.Stmts {
			env, err = e.execStmt(st, env)
			if err != nil {
				return nil, err
			}
		}
		return env, nil

	case *ProcAssign:
		return e.execAssign(v, env)

	case *IfStmt:
		cond, err := e.synthCond(v.Cond)
		if err != nil {
			return nil, err
		}
		envT, err := e.execStmt(v.Then, env.clone())
		if err != nil {
			return nil, err
		}
		envE := env.clone()
		if v.Else != nil {
			envE, err = e.execStmt(v.Else, envE)
			if err != nil {
				return nil, err
			}
		}
		return e.mergeEnvs(cond, envT, envE)

	case *CaseStmt:
		return e.execCase(v, env)
	}
	return nil, fmt.Errorf("verilog: unsupported statement %T", s)
}

func (e *elaborator) execAssign(v *ProcAssign, env procEnv) (procEnv, error) {
	name, err := targetName(v.LHS)
	if err != nil {
		return nil, err
	}
	info := e.decls[name]
	if info == nil {
		return nil, e.errorf(v.Line, "undeclared target %s", name)
	}
	rhs, err := e.synthExpr(v.RHS)
	if err != nil {
		return nil, err
	}
	switch lhs := v.LHS.(type) {
	case *Ident:
		env[name] = rhs.Resize(info.wire.Width, false)
	case *Index, *Slice:
		// Partial update: splice into the current value.
		cur := env[name]
		if cur == nil {
			return nil, e.errorf(v.Line, "partial assignment to %s before full assignment", name)
		}
		off, n, err := e.lhsRange(lhs, info)
		if err != nil {
			return nil, err
		}
		out := cur.Copy()
		rs := rhs.Resize(n, false)
		copy(out[off:off+n], rs)
		env[name] = out
	default:
		return nil, e.errorf(v.Line, "unsupported procedural target")
	}
	return env, nil
}

func (e *elaborator) lhsRange(x Expr, info *declInfo) (off, n int, err error) {
	switch v := x.(type) {
	case *Index:
		idx, cerr := e.evalConst(v.Idx)
		if cerr != nil {
			return 0, 0, fmt.Errorf("verilog: variable bit-select targets not supported")
		}
		return int(idx) - info.lsb, 1, nil
	case *Slice:
		msb, err1 := e.evalConst(v.MSB)
		lsb, err2 := e.evalConst(v.LSB)
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("verilog: non-constant part-select target")
		}
		return int(lsb) - info.lsb, int(msb - lsb + 1), nil
	}
	return 0, 0, fmt.Errorf("verilog: unsupported target")
}

// mergeEnvs joins two branch environments with a mux per divergent
// target.
func (e *elaborator) mergeEnvs(cond rtlil.SigSpec, envT, envE procEnv) (procEnv, error) {
	out := procEnv{}
	for _, k := range sortedKeys(envT) {
		vt, ve := envT[k], envE[k]
		switch {
		case vt == nil && ve == nil:
			out[k] = nil
		case vt == nil || ve == nil:
			// One branch leaves the target unassigned: the whole merge
			// is unassigned; the combinational completeness check at
			// block level reports it if this survives to the end.
			out[k] = nil
		case vt.Equal(ve):
			out[k] = vt
		default:
			w := vt.Width()
			if ve.Width() > w {
				w = ve.Width()
			}
			out[k] = e.m.Mux(ve.Resize(w, false), vt.Resize(w, false), cond)
		}
	}
	return out, nil
}

// execCase lowers a case statement. Parallel cases (constant, pairwise
// disjoint labels) become one $pmux per target; overlapping or
// non-constant labels fall back to a priority mux chain.
func (e *elaborator) execCase(v *CaseStmt, env procEnv) (procEnv, error) {
	sel, err := e.synthExpr(v.Expr)
	if err != nil {
		return nil, err
	}

	type arm struct {
		cond rtlil.SigSpec // nil for default
		env  procEnv
	}
	var arms []arm
	defaultEnv := env
	haveDefault := false
	for _, item := range v.Items {
		armEnv, err := e.execStmt(item.Body, env.clone())
		if err != nil {
			return nil, err
		}
		if item.Labels == nil {
			defaultEnv = armEnv
			haveDefault = true
			continue
		}
		cond, err := e.caseCond(sel, item.Labels, v.Wildcard)
		if err != nil {
			return nil, err
		}
		arms = append(arms, arm{cond: cond, env: armEnv})
	}
	_ = haveDefault

	if len(arms) == 0 {
		return defaultEnv, nil
	}

	if e.caseIsParallel(v, sel.Width()) {
		// One $pmux per target. Verilog gives priority to the first
		// item; our pmux has ascending priority, so item 0 goes last.
		out := procEnv{}
		var conds []rtlil.SigSpec
		for i := len(arms) - 1; i >= 0; i-- {
			conds = append(conds, arms[i].cond)
		}
		sbus := rtlil.Concat(conds...)
		for _, k := range sortedKeys(env) {
			dflt := defaultEnv[k]
			values := make([]rtlil.SigSpec, 0, len(arms))
			allAssigned := dflt != nil
			width := 0
			if dflt != nil {
				width = dflt.Width()
			}
			for i := len(arms) - 1; i >= 0; i-- {
				val := arms[i].env[k]
				if val == nil {
					allAssigned = false
					break
				}
				if val.Width() > width {
					width = val.Width()
				}
				values = append(values, val)
			}
			if !allAssigned {
				out[k] = nil
				continue
			}
			for i := range values {
				values[i] = values[i].Resize(width, false)
			}
			out[k] = e.m.Pmux(dflt.Resize(width, false), values, sbus)
		}
		return out, nil
	}

	// Priority chain: fold from the last arm to the first.
	cur := defaultEnv
	for i := len(arms) - 1; i >= 0; i-- {
		merged, err := e.mergeEnvs(arms[i].cond, arms[i].env, cur)
		if err != nil {
			return nil, err
		}
		cur = merged
	}
	return cur, nil
}

// caseCond builds the 1-bit match condition for a set of labels.
func (e *elaborator) caseCond(sel rtlil.SigSpec, labels []Expr, wildcard bool) (rtlil.SigSpec, error) {
	var conds []rtlil.SigSpec
	for _, l := range labels {
		if num, ok := l.(*Number); ok {
			konst, err := rtlil.ParseConst(num.Text)
			if err != nil {
				return nil, err
			}
			konst = konst.Resize(sel.Width(), false)
			if wildcard {
				// Compare only the defined label bits.
				var selBits, constBits rtlil.SigSpec
				for i, b := range konst {
					if b.Const == rtlil.S0 || b.Const == rtlil.S1 {
						selBits = append(selBits, sel[i])
						constBits = append(constBits, b)
					}
				}
				if len(selBits) == 0 {
					conds = append(conds, rtlil.Const(1, 1))
					continue
				}
				conds = append(conds, e.m.Eq(selBits, constBits))
				continue
			}
			if !konst.IsFullyDefined() {
				// x/z in a plain case label never matches in two-valued
				// semantics; treat like casez for robustness.
				return e.caseCond(sel, labels, true)
			}
			conds = append(conds, e.m.Eq(sel, konst))
			continue
		}
		ls, err := e.synthExpr(l)
		if err != nil {
			return nil, err
		}
		conds = append(conds, e.m.Eq(sel, ls.Resize(sel.Width(), false)))
	}
	cond := conds[0]
	for _, c := range conds[1:] {
		cond = e.m.Or(cond, c)
	}
	return cond, nil
}

// caseIsParallel reports whether all labels are constants and pairwise
// disjoint at the selector width (so match order cannot matter and a
// pmux is faithful).
func (e *elaborator) caseIsParallel(v *CaseStmt, selWidth int) bool {
	var pats []rtlil.SigSpec
	for _, item := range v.Items {
		for _, l := range item.Labels {
			num, ok := l.(*Number)
			if !ok {
				return false
			}
			konst, err := rtlil.ParseConst(num.Text)
			if err != nil {
				return false
			}
			pats = append(pats, konst.Resize(selWidth, false))
		}
	}
	for i := 0; i < len(pats); i++ {
		for j := i + 1; j < len(pats); j++ {
			if patternsOverlap(pats[i], pats[j]) {
				return false
			}
		}
	}
	return true
}

func patternsOverlap(a, b rtlil.SigSpec) bool {
	n := a.Width()
	for i := 0; i < n; i++ {
		av, bv := a[i].Const, b[i].Const
		aDef := av == rtlil.S0 || av == rtlil.S1
		bDef := bv == rtlil.S0 || bv == rtlil.S1
		if aDef && bDef && av != bv {
			return false
		}
	}
	return true
}
