package verilog

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cec"
	"repro/internal/genbench"
	"repro/internal/rtlil"
)

// TestWriterRoundTrip cross-validates three subsystems at once: a
// generated netlist is written as structural Verilog, re-parsed and
// re-elaborated, and the result is proven equivalent to the original.
func TestWriterRoundTrip(t *testing.T) {
	recipes := genbench.Recipes()
	for _, idx := range []int{1, 9} {
		r := recipes[idx]
		m := genbench.Generate(r, 0.02)
		var sb strings.Builder
		if err := rtlil.WriteVerilog(&sb, m); err != nil {
			t.Fatalf("%s: write: %v", r.Name, err)
		}
		f, err := Parse(sb.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", r.Name, err, head(sb.String(), 30))
		}
		m2, err := ElaborateModule(f.Modules[0])
		if err != nil {
			t.Fatalf("%s: re-elaborate: %v", r.Name, err)
		}
		// Port names survive sanitization unchanged for these designs,
		// so the CEC name matching applies directly.
		if err := cec.Check(m, m2, &cec.Options{RandomRounds: 2}); err != nil {
			t.Fatalf("%s: round trip not equivalent: %v", r.Name, err)
		}
	}
}

// TestWriterRoundTripSequential covers dff emission.
func TestWriterRoundTripSequential(t *testing.T) {
	m := rtlil.NewModule("seq")
	clk := m.AddInput("clk", 1).Bits()
	d := m.AddInput("d", 4).Bits()
	en := m.AddInput("en", 1).Bits()
	q := m.NewWireHint("state", 4)
	m.AddDff("ff", clk, m.Mux(q.Bits(), d, en), q.Bits())
	y := m.AddOutput("y", 4)
	m.Connect(y.Bits(), m.Not(q.Bits()))

	var sb strings.Builder
	if err := rtlil.WriteVerilog(&sb, m); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	m2, err := ElaborateModule(f.Modules[0])
	if err != nil {
		t.Fatal(err)
	}
	// The dff cell name differs after re-elaboration, so compare only
	// the combinational output cone by checking outputs under random
	// stimulus with matching Q injection is out of scope here; instead
	// assert structure: one dff of width 4 exists.
	dffs := 0
	for _, c := range m2.Cells() {
		if c.Type == rtlil.CellDff {
			dffs++
			if len(c.Port("D")) != 4 {
				t.Errorf("dff width %d", len(c.Port("D")))
			}
		}
	}
	if dffs != 1 {
		t.Errorf("dffs = %d, want 1", dffs)
	}
}

// TestWriterRandomModules round-trips random combinational netlists.
func TestWriterRandomModules(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		m := rtlil.NewModule("rand")
		sigs := []rtlil.SigSpec{
			m.AddInput("a", 4).Bits(),
			m.AddInput("b", 4).Bits(),
			m.AddInput("c", 1).Bits(),
		}
		pick := func() rtlil.SigSpec { return sigs[rng.Intn(len(sigs))] }
		for i := 0; i < 12; i++ {
			switch rng.Intn(8) {
			case 0:
				sigs = append(sigs, m.And(pick(), pick()))
			case 1:
				sigs = append(sigs, m.Or(pick(), pick()))
			case 2:
				sigs = append(sigs, m.Not(pick()))
			case 3:
				sigs = append(sigs, m.AddOp(pick(), pick()))
			case 4:
				sigs = append(sigs, m.Eq(pick(), pick()))
			case 5:
				sigs = append(sigs, m.Mux(pick(), pick(), pick().Extract(0, 1)))
			case 6:
				sigs = append(sigs, m.Lt(pick(), pick()))
			case 7:
				a := pick()
				words := []rtlil.SigSpec{pick().Resize(len(a), false), pick().Resize(len(a), false)}
				sel := rtlil.Concat(pick().Extract(0, 1), pick().Extract(0, 1))
				sigs = append(sigs, m.Pmux(a, words, sel))
			}
		}
		last := sigs[len(sigs)-1]
		y := m.AddOutput("y", len(last))
		m.Connect(y.Bits(), last)

		var sb strings.Builder
		if err := rtlil.WriteVerilog(&sb, m); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f, err := Parse(sb.String())
		if err != nil {
			t.Fatalf("trial %d: reparse: %v\n%s", trial, err, head(sb.String(), 40))
		}
		m2, err := ElaborateModule(f.Modules[0])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := cec.Check(m, m2, &cec.Options{RandomRounds: 2}); err != nil {
			t.Fatalf("trial %d: not equivalent: %v\n%s", trial, err, head(sb.String(), 40))
		}
	}
}

func head(s string, lines int) string {
	parts := strings.SplitN(s, "\n", lines+1)
	if len(parts) > lines {
		parts = parts[:lines]
	}
	return strings.Join(parts, "\n")
}
