package genbench

import (
	"testing"

	"repro/internal/rtlil"
)

// TestSeqRecipesGenerate checks that every sequential recipe produces a
// valid single-clock module with registers, and that generation is
// deterministic.
func TestSeqRecipesGenerate(t *testing.T) {
	for _, r := range SeqRecipes() {
		m := Generate(r, 1.0)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if err := rtlil.ValidateSequential(m); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if m.StateBits() == 0 {
			t.Errorf("%s: no registers generated", r.Name)
		}
		if rtlil.CanonicalHash(m) != rtlil.CanonicalHash(Generate(r, 1.0)) {
			t.Errorf("%s: generation not deterministic", r.Name)
		}
	}
}

func TestRandomSeqRecipeDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		r := RandomSeqRecipe(seed)
		m := Generate(r, 1.0)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rtlil.CanonicalHash(m) != rtlil.CanonicalHash(Generate(RandomSeqRecipe(seed), 1.0)) {
			t.Errorf("seed %d: generation not deterministic", seed)
		}
	}
}
