package genbench

import (
	"testing"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

func TestAllRecipesGenerateValidModules(t *testing.T) {
	for _, r := range Recipes() {
		m := Generate(r, 0.05)
		if err := m.Validate(); err != nil {
			t.Errorf("%s: invalid module: %v", r.Name, err)
		}
		if m.NumCells() == 0 {
			t.Errorf("%s: empty module", r.Name)
		}
		if _, err := rtlil.TopoSort(m); err != nil {
			t.Errorf("%s: %v", r.Name, err)
		}
	}
	m := Generate(IndustrialRecipe(0), 0.02)
	if err := m.Validate(); err != nil {
		t.Errorf("industrial: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	r := Recipes()[0]
	a := Generate(r, 0.1)
	b := Generate(r, 0.1)
	sa, sb := rtlil.CollectStats(a), rtlil.CollectStats(b)
	if sa.NumCells != sb.NumCells || sa.NumWires != sb.NumWires {
		t.Errorf("same seed produced different shapes: %+v vs %+v", sa, sb)
	}
	r2 := r
	r2.Seed++
	c := Generate(r2, 0.1)
	if rtlil.CollectStats(c).NumCells == sa.NumCells {
		t.Log("different seed produced same cell count (possible but unusual)")
	}
}

func TestScaleGrowsModule(t *testing.T) {
	r := Recipes()[0]
	small := rtlil.CollectStats(Generate(r, 0.05)).NumCells
	big := rtlil.CollectStats(Generate(r, 0.2)).NumCells
	if big <= small {
		t.Errorf("scale 0.2 (%d cells) not larger than 0.05 (%d cells)", big, small)
	}
}

// TestOptimizationPreservesEquivalence runs the full pipeline on small
// instances of several recipes and equivalence-checks the result — the
// guarantee the paper reports for all its results.
func TestOptimizationPreservesEquivalence(t *testing.T) {
	recipes := Recipes()
	picks := []int{0, 2, 9} // rebuild-heavy, SAT-heavy, mixed
	for _, i := range picks {
		r := recipes[i]
		m := Generate(r, 0.03)
		orig := m.Clone()
		pipe := core.PipelineFull(core.SatMuxOptions{}, core.RebuildOptions{})
		if _, err := pipe.Run(nil, m); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if err := cec.Check(orig, m, nil); err != nil {
			t.Errorf("%s: full pipeline broke equivalence: %v", r.Name, err)
		}
	}
}

// TestBlockClassBehaviour verifies each block class interacts with the
// pipelines as designed (the property the whole calibration rests on).
func TestBlockClassBehaviour(t *testing.T) {
	base := Recipe{
		Name: "probe", Seed: 5,
		CaseSelBits: [2]int{3, 4}, DataWidth: 6,
		PmuxFraction: 0.5, SparseTerminals: true,
	}
	area := func(m *rtlil.Module, p opt.Pass) int {
		w := m.Clone()
		if _, err := p.Run(nil, w); err != nil {
			t.Fatal(err)
		}
		a, err := aig.Area(w)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	t.Run("redundant_blocks_removed_by_baseline", func(t *testing.T) {
		r := base
		r.RedundantBlocks = 20
		m := Generate(r, 1)
		orig, err := aig.Area(m)
		if err != nil {
			t.Fatal(err)
		}
		y := area(m, core.PipelineYosys())
		if y*2 > orig {
			t.Errorf("baseline removed too little: %d -> %d", orig, y)
		}
	})

	t.Run("dep_blocks_need_sat", func(t *testing.T) {
		r := base
		r.DepBlocks = 20
		m := Generate(r, 1)
		y := area(m, core.PipelineYosys())
		s := area(m, core.PipelineSAT(core.SatMuxOptions{}))
		if s >= y {
			t.Errorf("SAT pipeline (%d) did not beat baseline (%d)", s, y)
		}
		reb := area(m, core.PipelineRebuild(core.RebuildOptions{}))
		if reb < y*97/100 {
			t.Errorf("rebuild pipeline (%d) unexpectedly fired on dep blocks (baseline %d)", reb, y)
		}
	})

	t.Run("case_blocks_need_rebuild", func(t *testing.T) {
		r := base
		r.CaseBlocks = 20
		m := Generate(r, 1)
		y := area(m, core.PipelineYosys())
		reb := area(m, core.PipelineRebuild(core.RebuildOptions{}))
		if reb >= y {
			t.Errorf("rebuild pipeline (%d) did not beat baseline (%d)", reb, y)
		}
	})

	t.Run("plain_blocks_resist_everything", func(t *testing.T) {
		r := base
		r.PlainBlocks = 20
		m := Generate(r, 1)
		orig, err := aig.Area(m)
		if err != nil {
			t.Fatal(err)
		}
		f := area(m, core.PipelineFull(core.SatMuxOptions{}, core.RebuildOptions{}))
		if f < orig*9/10 {
			t.Errorf("full pipeline removed >10%% of plain logic: %d -> %d", orig, f)
		}
	})
}
