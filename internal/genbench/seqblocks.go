package genbench

import (
	"fmt"
	"math/rand"

	"repro/internal/rtlil"
)

// Sequential block classes, targeting the opt_dff register sweep and
// the k-induction checker:
//
//   - pipe blocks: registered pipelines over live datapath logic —
//     nothing removable, they set the register denominator and force
//     the checker to reason across cycles.
//   - const-reg blocks: registers stuck at the zero reset value
//     (self-loops, D tied to 0, decay via an input gate, chains of
//     stuck registers) — removed by opt_dff's greatest-fixpoint sweep.
//   - dup-reg blocks: register pairs latching the same D — merged by
//     opt_dff's structural dedup.
//
// All sequential blocks share the single clk input (the sequential
// passes require one clock domain).

// seqClk lazily creates the shared clock input.
func (g *generator) seqClk() rtlil.SigSpec {
	if g.clk == nil {
		g.clk = g.m.AddInput("clk", 1).Bits()
	}
	return g.clk
}

// reg latches d through a fresh register and returns its Q.
func (g *generator) reg(hint string, d rtlil.SigSpec) rtlil.SigSpec {
	q := g.m.NewWireHint(hint, d.Width())
	g.nreg++
	g.m.AddDff(fmt.Sprintf("%s_ff%d", hint, g.nreg), g.seqClk(), d, q.Bits())
	return q.Bits()
}

// pipeBlock: a 2-3 stage registered pipeline over live logic. Every
// stage register carries fresh data, so the sweep must keep them all.
func (g *generator) pipeBlock() {
	w := g.r.DataWidth
	cur := g.m.Xor(g.m.And(g.pickW(w), g.pickW(w)), g.pickW(w))
	stages := 2 + g.rng.Intn(2)
	for i := 0; i < stages; i++ {
		cur = g.reg("pipe", cur)
		if g.rng.Intn(2) == 0 {
			cur = g.m.Xor(cur, g.pickW(w))
		}
	}
	g.emit(cur)
}

// constRegBlock: a register (or a small cone of registers) provably
// stuck at the zero reset value, XOR-mixed into live data so it stays
// observable until the sweep proves it constant.
func (g *generator) constRegBlock() {
	w := g.r.DataWidth
	var stuck rtlil.SigSpec
	switch g.rng.Intn(4) {
	case 0:
		// Self-loop: q' = q.
		q := g.m.NewWireHint("stuck", w)
		g.nreg++
		g.m.AddDff(fmt.Sprintf("stuck_ff%d", g.nreg), g.seqClk(), q.Bits(), q.Bits())
		stuck = q.Bits()
	case 1:
		// D tied to constant zero.
		stuck = g.reg("stuck", rtlil.Const(0, w))
	case 2:
		// Decay through an input gate: q' = q & x stays 0 from reset.
		q := g.m.NewWireHint("stuck", w)
		g.nreg++
		g.m.AddDff(fmt.Sprintf("stuck_ff%d", g.nreg), g.seqClk(),
			g.m.And(q.Bits(), g.pickW(w)), q.Bits())
		stuck = q.Bits()
	case 3:
		// A chain rooted in a self-loop: q1' = q1, q2' = q1 | q2.
		q1 := g.m.NewWireHint("stuck", w)
		g.nreg++
		g.m.AddDff(fmt.Sprintf("stuck_ff%d", g.nreg), g.seqClk(), q1.Bits(), q1.Bits())
		q2 := g.m.NewWireHint("stuck", w)
		g.nreg++
		g.m.AddDff(fmt.Sprintf("stuck_ff%d", g.nreg), g.seqClk(),
			g.m.Or(q1.Bits(), q2.Bits()), q2.Bits())
		stuck = q2.Bits()
	}
	g.emit(g.m.Xor(g.pickW(g.r.DataWidth), stuck))
}

// dupRegBlock: two registers latching the same D signal, each with its
// own live use. The sweep merges them; one use keeps the survivor live.
func (g *generator) dupRegBlock() {
	w := g.r.DataWidth
	d := g.m.Xor(g.pickW(w), g.pickW(w))
	q1 := g.reg("dup", d)
	q2 := g.reg("dup", d)
	g.emit(g.m.And(q1, g.pickW(w)))
	g.emit(g.m.Or(q2, g.pickW(w)))
}

// SeqRecipes returns the sequential benchmark cases for the register
// sweep: pipeline-dominated, cleanup-dominated and a mixed case. Sizes
// are modest because every opt_dff application re-proves the whole
// module with the induction miter.
func SeqRecipes() []Recipe {
	return []Recipe{
		{
			Name: "seq_pipeline", Seed: 301,
			PlainBlocks: 10, PipeBlocks: 24, ConstRegBlocks: 6, DupRegBlocks: 4,
			DataWidth: 8,
		},
		{
			Name: "seq_regsweep", Seed: 302,
			PlainBlocks: 8, PipeBlocks: 4, ConstRegBlocks: 24, DupRegBlocks: 12,
			DataWidth: 8,
		},
		{
			Name: "seq_mixed", Seed: 303,
			PlainBlocks: 12, RedundantBlocks: 8, DepBlocks: 6, CaseBlocks: 2,
			PipeBlocks: 10, ConstRegBlocks: 10, DupRegBlocks: 6,
			CaseSelBits: [2]int{3, 3}, DataWidth: 8, PmuxFraction: 0.4,
		},
	}
}

// RandomSeqRecipe derives a small random sequential recipe from a fuzz
// seed: every block class can appear, register-heavy on average.
func RandomSeqRecipe(seed int64) Recipe {
	rng := rand.New(rand.NewSource(seed))
	return Recipe{
		Name: fmt.Sprintf("seqfuzz_%d", seed), Seed: seed,
		PlainBlocks:     rng.Intn(4),
		RedundantBlocks: rng.Intn(3),
		DepBlocks:       rng.Intn(3),
		PipeBlocks:      rng.Intn(5),
		ConstRegBlocks:  rng.Intn(5),
		DupRegBlocks:    rng.Intn(4),
		DataWidth:       2 + rng.Intn(5),
	}
}
