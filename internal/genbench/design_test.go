package genbench

import (
	"testing"

	"repro/internal/rtlil"
)

func TestGenerateDesignDeterministic(t *testing.T) {
	r := DesignRecipe{Name: "d", Modules: 6, Seed: 7}
	a := GenerateDesign(r, 0.02)
	b := GenerateDesign(r, 0.02)
	if len(a.Modules()) != 6 {
		t.Fatalf("%d modules, want 6", len(a.Modules()))
	}
	if rtlil.CanonicalHashDesign(a) != rtlil.CanonicalHashDesign(b) {
		t.Error("equal recipes generated different designs")
	}
}

func TestGenerateDesignModulesDiffer(t *testing.T) {
	d := GenerateDesign(DesignRecipe{Modules: 12, Seed: 1}, 0.02)
	seenName := map[string]bool{}
	seenHash := map[string]bool{}
	for _, m := range d.Modules() {
		if seenName[m.Name] {
			t.Errorf("duplicate module name %s", m.Name)
		}
		seenName[m.Name] = true
		h := rtlil.CanonicalHash(m)
		if seenHash[h] {
			t.Errorf("module %s duplicates another module's content hash", m.Name)
		}
		seenHash[h] = true
		if err := m.Validate(); err != nil {
			t.Errorf("module %s invalid: %v", m.Name, err)
		}
	}
}

func TestMutateModuleChangesExactlyOne(t *testing.T) {
	r := DesignRecipe{Modules: 8, Seed: 3}
	d := GenerateDesign(r, 0.02)
	before := make([]string, 8)
	names := make([]string, 8)
	for i, m := range d.Modules() {
		before[i] = rtlil.CanonicalHash(m)
		names[i] = m.Name
	}
	mut := MutateModule(d, r, 0.02, 5, 1)
	if mut.Name != names[5] {
		t.Errorf("mutated module renamed to %s, want %s", mut.Name, names[5])
	}
	for i, m := range d.Modules() {
		if m.Name != names[i] {
			t.Errorf("module %d reordered/renamed: %s, want %s", i, m.Name, names[i])
		}
		h := rtlil.CanonicalHash(m)
		if i == 5 {
			if h == before[i] {
				t.Error("mutated module kept its content hash")
			}
			continue
		}
		if h != before[i] {
			t.Errorf("module %s changed by mutating another module", m.Name)
		}
	}
	// Mutation generations are distinct: a second generation differs
	// from both the original and the first.
	g2 := MutateModule(d, r, 0.02, 5, 2)
	if h := rtlil.CanonicalHash(g2); h == before[5] || h == rtlil.CanonicalHash(mut) {
		t.Error("generation 2 collides with an earlier generation")
	}
}
