package genbench

// Recipes returns the ten public-benchmark substitutes, one per case of
// the paper's Table II, with block mixes calibrated so the reduction
// ratios reproduce the table's shape: which technique wins on each case
// and roughly by how much (see EXPERIMENTS.md for paper-vs-measured).
//
// Calibration rationale per case (paper Table III):
//   - top_cache_axi: Rebuild dominates (24.91% vs SAT 0.01%) — almost
//     all optimization potential is sparse case chains.
//   - wb_conmax: SAT dominates (19.05% vs 4.65%) — interconnect matrix
//     full of dependent selection controls.
//   - mem_ctrl: nearly nothing left (0.53%) after a huge baseline
//     cleanup (94% by Yosys) — mostly redundant + plain blocks.
//   - wb_dma: SAT-heavy (11.52% vs 0.80%).
//   - pci_bridge32 / usb_funct / ac97_ctrl / tv80 / riscv / ethernet:
//     small single-digit mixes with the documented skews.
func Recipes() []Recipe {
	return []Recipe{
		{
			Name: "top_cache_axi", Seed: 101,
			PlainBlocks: 30, RedundantBlocks: 260, DepBlocks: 0,
			CaseBlocks: 420, SynergyBlocks: 0,
			CaseSelBits: [2]int{4, 5}, DataWidth: 8,
			PmuxFraction: 0.1, SparseTerminals: true, MaxTerminals: 4,
		},
		{
			Name: "pci_bridge32", Seed: 102,
			PlainBlocks: 120, RedundantBlocks: 35, DepBlocks: 0,
			CaseBlocks: 5, SynergyBlocks: 7,
			CaseSelBits: [2]int{3, 4}, DataWidth: 8,
			PmuxFraction: 0.3, SparseTerminals: true,
		},
		{
			Name: "wb_conmax", Seed: 103,
			PlainBlocks: 60, RedundantBlocks: 90, DepBlocks: 220,
			CaseBlocks: 20, SynergyBlocks: 4,
			CaseSelBits: [2]int{3, 4}, DataWidth: 8,
			PmuxFraction: 0.4, SparseTerminals: true,
		},
		{
			Name: "mem_ctrl", Seed: 104,
			PlainBlocks: 100, RedundantBlocks: 800, DepBlocks: 1,
			CaseBlocks: 4, SynergyBlocks: 0,
			CaseSelBits: [2]int{3, 3}, DataWidth: 8,
			PmuxFraction: 0.5, SparseTerminals: true, MaxTerminals: 3,
		},
		{
			Name: "wb_dma", Seed: 105,
			PlainBlocks: 65, RedundantBlocks: 220, DepBlocks: 90,
			CaseBlocks: 1, SynergyBlocks: 1,
			CaseSelBits: [2]int{3, 3}, DataWidth: 8,
			PmuxFraction: 0.4, SparseTerminals: false,
		},
		{
			Name: "tv80", Seed: 106,
			PlainBlocks: 90, RedundantBlocks: 650, DepBlocks: 2,
			CaseBlocks: 4, SynergyBlocks: 1,
			CaseSelBits: [2]int{3, 4}, DataWidth: 8,
			PmuxFraction: 0.5, SparseTerminals: true,
		},
		{
			Name: "usb_funct", Seed: 107,
			PlainBlocks: 170, RedundantBlocks: 90, DepBlocks: 5,
			CaseBlocks: 1, SynergyBlocks: 1,
			CaseSelBits: [2]int{3, 4}, DataWidth: 8,
			PmuxFraction: 0.4, SparseTerminals: false,
		},
		{
			Name: "ethernet", Seed: 108,
			PlainBlocks: 210, RedundantBlocks: 12, DepBlocks: 1,
			CaseBlocks: 2, SynergyBlocks: 0,
			CaseSelBits: [2]int{3, 3}, DataWidth: 8,
			PmuxFraction: 0.5, SparseTerminals: true, MaxTerminals: 3,
		},
		{
			Name: "riscv", Seed: 109,
			PlainBlocks: 170, RedundantBlocks: 110, DepBlocks: 1,
			CaseBlocks: 3, SynergyBlocks: 0,
			CaseSelBits: [2]int{4, 5}, DataWidth: 8,
			PmuxFraction: 0.5, SparseTerminals: true, MaxTerminals: 5,
		},
		{
			Name: "ac97_ctrl", Seed: 110,
			PlainBlocks: 120, RedundantBlocks: 4, DepBlocks: 0,
			CaseBlocks: 4, SynergyBlocks: 1,
			CaseSelBits: [2]int{3, 4}, DataWidth: 8,
			PmuxFraction: 0.4, SparseTerminals: true,
		},
	}
}

// IndustrialRecipe builds the industrial-benchmark substitute: selection
// circuits dominate (high mux/pmux fraction), controls are logically
// dependent rather than identical so the Yosys baseline barely fires,
// and case trees are large and sparse. The paper reports smaRTLy
// removing 47.2% more AIG area than Yosys on this class.
func IndustrialRecipe(point int) Recipe {
	return Recipe{
		Name: "industrial", Seed: 9000 + int64(point),
		PlainBlocks: 20, RedundantBlocks: 10, DepBlocks: 420,
		CaseBlocks: 170, SynergyBlocks: 30,
		CaseSelBits: [2]int{4, 5}, DataWidth: 10,
		PmuxFraction: 0.4, SparseTerminals: true,
		MaxTerminals: 4, DepChainLen: 4,
	}
}

// DatapathRecipes returns the datapath benchmark cases targeting the
// opt_egraph pass: word-level arithmetic redundancy (shared-operand
// MAC chains, common-coefficient FIR taps, mirrored comparator trees)
// that neither the Yosys baseline nor the muxtree-centric smaRTLy
// flows can touch. They are kept out of Recipes() so the Table II/III
// calibration is unchanged.
//
// DataWidth stays at 5 bits deliberately: the per-cone equivalence
// proofs opt_egraph runs involve multiplier miters, which are
// exponential in width for the naive CDCL solver (about 100ms at 5
// bits, seconds at 6, out of reach at 8). Narrow words keep verified
// extraction in the millisecond range per proof.
func DatapathRecipes() []Recipe {
	return []Recipe{
		{
			Name: "mac_chain", Seed: 201,
			PlainBlocks: 20, MacBlocks: 60, FirBlocks: 10, CmpBlocks: 10,
			DataWidth: 5,
		},
		{
			Name: "fir_shared", Seed: 202,
			PlainBlocks: 15, MacBlocks: 10, FirBlocks: 70, CmpBlocks: 5,
			DataWidth: 5,
		},
		{
			Name: "cmp_forest", Seed: 203,
			PlainBlocks: 15, MacBlocks: 5, FirBlocks: 5, CmpBlocks: 70,
			DataWidth: 5,
		},
	}
}
