// Package genbench generates the synthetic benchmark circuits used to
// reproduce the paper's evaluation. The IWLS-2005 / RISC-V sources and
// the industrial benchmark are not distributable, so each case is
// replaced by a seeded generator mixing the redundancy classes that
// determine the experiment's outcome (see DESIGN.md, Substitutions):
//
//   - redundant blocks: same-control nested muxes and constant-foldable
//     logic — removed by the Yosys baseline and smaRTLy alike; they
//     account for the large original→Yosys reduction the paper reports.
//   - dependent-control blocks: nests whose controls are logically
//     related but not identical (S vs S|R, interval vs equality tests) —
//     only smaRTLy's SAT-based elimination fires (paper Figure 3).
//   - case blocks: eq+mux chains and pmux trees from case statements —
//     muxtree restructuring rebuilds them (paper Figures 5–7).
//   - synergy blocks: dependent controls separated by a deep case chain,
//     so SAT alone cannot see the relation (sub-graph radius) until
//     restructuring shortens the tree — reproducing Full > SAT+Rebuild.
//   - plain blocks: random datapath logic nobody can remove, which sets
//     the denominator of the reduction ratios.
//
// Per-case block proportions are calibrated so the Table II/III ratio
// *shape* (which technique wins per case and roughly by how much)
// matches the paper.
package genbench

import (
	"fmt"
	"math/rand"

	"repro/internal/rtlil"
)

// Recipe parameterizes one benchmark case.
type Recipe struct {
	Name string
	Seed int64

	// Block counts at Scale = 1.0.
	PlainBlocks     int
	RedundantBlocks int
	DepBlocks       int
	CaseBlocks      int
	SynergyBlocks   int
	// Datapath block classes (see DatapathRecipes): word-level
	// arithmetic redundancy only the e-graph pass can extract.
	MacBlocks int
	FirBlocks int
	CmpBlocks int
	// Sequential block classes (see SeqRecipes): registered pipelines
	// plus the register redundancy the opt_dff sweep removes. Any
	// nonzero count adds the shared clk input.
	PipeBlocks     int
	ConstRegBlocks int
	DupRegBlocks   int

	// CaseSelBits bounds the selector width of case blocks.
	CaseSelBits [2]int
	// DataWidth is the word width of mux data paths.
	DataWidth int
	// PmuxFraction of case blocks use a pmux instead of an eq+mux
	// chain (pmux is the parallel-case lowering; chains come from
	// if/else trees and are what restructuring gains most from).
	PmuxFraction float64
	// SparseTerminals makes case blocks reuse data words, so the ADD
	// has fewer terminal types and restructuring wins more.
	SparseTerminals bool
	// MaxTerminals caps the number of distinct data words per case
	// block (0 = no cap). Low caps model the very sparse industrial
	// selection trees.
	MaxTerminals int
	// DepChainLen is the number of stacked dependent-control muxes per
	// dep block (0 or 1 = single, the Figure 3 shape). Longer chains
	// model industrial selection logic where one guard implies many
	// downstream selects.
	DepChainLen int
}

// generator carries shared state while emitting one module.
type generator struct {
	m    *rtlil.Module
	rng  *rand.Rand
	r    Recipe
	pool []rtlil.SigSpec // input signals to draw operands from
	outs []rtlil.SigSpec // block outputs to be folded into ports
	clk  rtlil.SigSpec   // shared clock, created on first sequential block
	nreg int             // register name counter
}

// Generate builds the module for a recipe at the given scale factor
// (block counts multiply by scale; 1.0 reproduces the calibrated case).
func Generate(r Recipe, scale float64) *rtlil.Module {
	g := &generator{
		m:   rtlil.NewModule(r.Name),
		rng: rand.New(rand.NewSource(r.Seed)),
		r:   r,
	}
	nIn := 24
	for i := 0; i < nIn; i++ {
		w := g.m.AddInput(fmt.Sprintf("in%d", i), r.DataWidth)
		g.pool = append(g.pool, w.Bits())
	}
	for i := 0; i < 4; i++ {
		w := g.m.AddInput(fmt.Sprintf("ctl%d", i), 8)
		g.pool = append(g.pool, w.Bits())
	}
	count := func(n int) int {
		c := int(float64(n)*scale + 0.5)
		if n > 0 && c == 0 {
			c = 1
		}
		return c
	}
	type blockFn func()
	var plan []blockFn
	add := func(n int, f blockFn) {
		for i := 0; i < count(n); i++ {
			plan = append(plan, f)
		}
	}
	add(r.PlainBlocks, g.plainBlock)
	add(r.RedundantBlocks, g.redundantBlock)
	add(r.DepBlocks, g.depBlock)
	add(r.CaseBlocks, g.caseBlock)
	add(r.SynergyBlocks, g.synergyBlock)
	add(r.MacBlocks, g.macBlock)
	add(r.FirBlocks, g.firBlock)
	add(r.CmpBlocks, g.cmpBlock)
	add(r.PipeBlocks, g.pipeBlock)
	add(r.ConstRegBlocks, g.constRegBlock)
	add(r.DupRegBlocks, g.dupRegBlock)
	if r.PipeBlocks+r.ConstRegBlocks+r.DupRegBlocks > 0 {
		g.seqClk() // deterministic wire order: clk precedes block wires
	}
	g.rng.Shuffle(len(plan), func(i, j int) { plan[i], plan[j] = plan[j], plan[i] })
	for _, f := range plan {
		f()
	}
	g.emitOutputs()
	return g.m
}

func (g *generator) pick() rtlil.SigSpec {
	return g.pool[g.rng.Intn(len(g.pool))]
}

func (g *generator) pickW(width int) rtlil.SigSpec {
	s := g.pick()
	for s.Width() < width {
		s = rtlil.Concat(s, g.pick())
	}
	off := 0
	if s.Width() > width {
		off = g.rng.Intn(s.Width() - width + 1)
	}
	return s.Extract(off, width)
}

func (g *generator) pickBit() rtlil.SigSpec { return g.pickW(1) }

// emit registers a block output as observable and feeds it back into the
// operand pool so blocks interconnect like a real design.
func (g *generator) emit(sig rtlil.SigSpec) {
	g.outs = append(g.outs, sig)
	if len(g.pool) < 4096 {
		g.pool = append(g.pool, sig)
	}
}

// emitOutputs folds all block outputs into XOR trees driving the output
// ports, keeping every block observable (XOR masks nothing).
func (g *generator) emitOutputs() {
	const nOut = 8
	acc := make([]rtlil.SigSpec, nOut)
	for i, sig := range g.outs {
		k := i % nOut
		if acc[k] == nil {
			acc[k] = sig
		} else {
			acc[k] = g.m.Xor(acc[k], sig)
		}
	}
	for i, sig := range acc {
		if sig == nil {
			sig = rtlil.Const(0, 1)
		}
		w := g.m.AddOutput(fmt.Sprintf("out%d", i), sig.Width())
		g.m.Connect(w.Bits(), sig)
	}
}

// plainBlock: random datapath logic that no optimizer removes.
func (g *generator) plainBlock() {
	w := g.r.DataWidth
	a, b := g.pickW(w), g.pickW(w)
	var y rtlil.SigSpec
	switch g.rng.Intn(5) {
	case 0:
		y = g.m.AddOp(a, b)
	case 1:
		y = g.m.Xor(g.m.And(a, g.pickW(w)), b)
	case 2:
		y = g.m.SubOp(a, g.m.Or(b, g.pickW(w)))
	case 3:
		y = g.m.Mux(a, b, g.m.Lt(g.pickW(w), g.pickW(w)))
	case 4:
		y = g.m.Xor(a, g.m.Shl(b, g.pickW(2)))
	}
	g.emit(y)
}

// macBlock: a multiply-accumulate chain sharing one operand — the
// distributivity target a*b + a*c (+ a*d) that opt_egraph factors to
// a*(b+c+d), saving whole multipliers. The AIG cannot share the
// products structurally (different second operands), so every other
// flow leaves the block untouched.
func (g *generator) macBlock() {
	w := g.r.DataWidth
	a := g.pickW(w)
	y := g.m.AddOp(g.m.MulOp(a, g.pickW(w)), g.m.MulOp(a, g.pickW(w)))
	if g.rng.Intn(2) == 1 {
		y = g.m.AddOp(y, g.m.MulOp(a, g.pickW(w)))
	}
	g.emit(y)
}

// firBlock: a FIR-style tap pair with a shared power-of-two
// coefficient: x0*k + x1*k factors to (x0+x1)*k, and the mul-by-pow2
// then exchanges into a shift — two multipliers collapse to one adder
// plus wiring.
func (g *generator) firBlock() {
	w := g.r.DataWidth
	k := rtlil.Const(uint64(1)<<uint(1+g.rng.Intn(w-1)), w)
	acc := g.m.AddOp(g.m.MulOp(g.pickW(w), k), g.m.MulOp(g.pickW(w), k))
	g.emit(acc)
}

// cmpBlock: a redundant comparator pair over reassociated sums with a
// power-of-two threshold: (a+b)+c < k next to k > a+(b+c). The AIG
// cannot merge the differently associated adder chains, but
// associativity plus comparison mirroring puts both predicates in one
// e-class, so one adder chain and one comparator go dead.
func (g *generator) cmpBlock() {
	w := g.r.DataWidth
	a, b, c := g.pickW(w), g.pickW(w), g.pickW(w)
	k := rtlil.Const(uint64(1)<<uint(g.rng.Intn(w)), w)
	p := g.m.Lt(g.m.AddOp(g.m.AddOp(a, b), c), k)
	q := g.m.Gt(k, g.m.AddOp(a, g.m.AddOp(b, c)))
	g.emit(g.m.Mux(g.pickW(w), g.pickW(w), p))
	g.emit(g.m.Mux(g.pickW(w), g.pickW(w), q))
}

// redundantBlock: redundancy the Yosys baseline already removes — the
// same-control nests of the paper's Figures 1 and 2, constant selects
// and constant-foldable operations. These blocks inflate the original
// area and vanish under every pipeline, producing the large
// original→Yosys reductions of Table II.
func (g *generator) redundantBlock() {
	w := g.r.DataWidth
	s := g.pickBit()
	a, b, c := g.pickW(w), g.pickW(w), g.pickW(w)
	switch g.rng.Intn(5) {
	case 0:
		// Figure 1: S ? (S ? A : B) : C, stacked several levels deep
		// with distinct data words so the AIG cannot share them away.
		inner := g.m.Mux(b, a, s)
		for i := 0; i < 4+g.rng.Intn(5); i++ {
			inner = g.m.Mux(g.deadPayload(), inner, s)
		}
		g.emit(g.m.Mux(c, inner, s))
	case 1:
		// Figure 2: control reused as data.
		inner := g.m.Mux(b, s.Repeat(w), g.pickBit())
		g.emit(g.m.Mux(c, inner, s))
	case 2:
		// Constant-foldable logic with a dead payload behind it.
		z := g.m.And(g.deadPayload(), rtlil.Const(0, w))
		y := g.m.Or(z, g.m.Mux(b, c, rtlil.Const(1, 1)))
		g.emit(y)
	case 3:
		// Dead branch: mux with equal branches under layers of muxes.
		eqb := g.m.Mux(a, a, g.pickBit())
		g.emit(g.m.Mux(eqb, b, s))
	case 4:
		// Never-active branch hiding a large payload: the select is
		// constant 0, so opt_expr drops the payload cone entirely.
		g.emit(g.m.Mux(a, g.deadPayload(), rtlil.Const(0, 1)))
	}
}

// deadPayload builds a wide arithmetic cone (large AIG footprint) used
// as data for never-active branches; distinct operands per call prevent
// structural hashing from sharing it.
func (g *generator) deadPayload() rtlil.SigSpec {
	w := g.r.DataWidth
	y := g.m.AddOp(g.pickW(w), g.pickW(w))
	y = g.m.Xor(y, g.m.SubOp(g.pickW(w), y))
	y = g.m.AddOp(y, g.m.And(g.pickW(w), g.pickW(w)))
	return y
}

// depBlock: the paper's Figure 3 class — nested muxes whose controls are
// logically dependent but not identical. Only SAT-based elimination
// fires.
func (g *generator) depBlock() {
	w := g.r.DataWidth
	a, b, c := g.pickW(w), g.pickW(w), g.pickW(w)
	s := g.pickBit()
	if g.r.DepChainLen > 1 {
		// A chain of muxes whose controls all become determined once
		// the root guard S is known: S|R_i = 1 on the S=1 path. The
		// whole chain collapses to its last word, leaving one mux.
		cur := a
		for i := 0; i < g.r.DepChainLen; i++ {
			or := g.m.Or(s, g.pickBit())
			cur = g.m.Mux(cur, g.pickW(w), or)
		}
		g.emit(g.m.Mux(c, cur, s))
		return
	}
	switch g.rng.Intn(3) {
	case 0:
		// Y = S ? ((S|R) ? A : B) : C
		or := g.m.Or(s, g.pickBit())
		inner := g.m.Mux(b, a, or)
		g.emit(g.m.Mux(c, inner, s))
	case 1:
		// Interval vs equality: outer x < K, inner x == J with J >= K.
		x := g.pickW(4)
		k := uint64(2 + g.rng.Intn(4))
		j := k + uint64(g.rng.Intn(int(16-k)))
		lt := g.m.Lt(x, rtlil.Const(k, 4))
		eq := g.m.Eq(x, rtlil.Const(j, 4))
		inner := g.m.Mux(b, a, eq) // eq never true under lt
		g.emit(g.m.Mux(c, inner, lt))
	case 2:
		// Y = S ? ... : ((S&T) ? A : B) — S&T is 0 on the else path.
		and := g.m.And(s, g.pickBit())
		inner := g.m.Mux(b, a, and)
		g.emit(g.m.Mux(inner, c, s))
	}
}

// caseBlock: a case-statement muxtree (paper Listings 1–2), either an
// eq+mux chain (Figure 5) or a pmux. Restructuring rebuilds these.
func (g *generator) caseBlock() {
	w := g.r.DataWidth
	lo, hi := g.r.CaseSelBits[0], g.r.CaseSelBits[1]
	selBits := lo
	if hi > lo {
		selBits += g.rng.Intn(hi - lo + 1)
	}
	sel := g.freshSelector(selBits)
	// Leave at least one selector value unmatched so the default arm
	// stays reachable (a fully covered case would let the SAT stage
	// prove the default dead, which the paper's numbers do not show).
	nArms := (1 << uint(selBits)) - 1 - g.rng.Intn(2)
	if nArms > 16 {
		nArms = 10 + g.rng.Intn(7)
	}
	words := make([]rtlil.SigSpec, nArms)
	var sparse []rtlil.SigSpec
	capped := func() bool {
		return g.r.MaxTerminals > 0 && len(sparse) >= g.r.MaxTerminals
	}
	for i := range words {
		reuse := g.r.SparseTerminals && len(sparse) > 0 && g.rng.Intn(2) == 0
		if capped() || reuse {
			words[i] = sparse[g.rng.Intn(len(sparse))]
		} else {
			words[i] = g.pickW(w)
			sparse = append(sparse, words[i])
		}
	}
	dflt := g.pickW(w)

	if g.rng.Float64() < g.r.PmuxFraction {
		// Parallel case → pmux with eq selects.
		conds := make([]rtlil.SigSpec, nArms)
		for i := range conds {
			conds[i] = g.m.Eq(sel, rtlil.Const(uint64(i), selBits))
		}
		g.emit(g.m.Pmux(dflt, words, rtlil.Concat(conds...)))
		return
	}
	// If/else chain (Figure 5): innermost is the default.
	cur := dflt
	for i := nArms - 1; i >= 0; i-- {
		eq := g.m.Eq(sel, rtlil.Const(uint64(i), selBits))
		cur = g.m.Mux(cur, words[i], eq)
	}
	g.emit(cur)
}

// freshSelector returns a dedicated selector wire so case blocks satisfy
// the restructuring pass's single-control requirement.
func (g *generator) freshSelector(bits int) rtlil.SigSpec {
	w := g.m.NewWireHint("sel", bits)
	g.m.Connect(w.Bits(), g.pickW(bits))
	return w.Bits()
}

// synergyBlock: a rebuildable case chain whose deepest data word hides a
// dependent-control mux. SAT elimination removes the dependent mux,
// restructuring removes the chain's eq gates; the full pipeline removes
// both (the paper's Full column, which is near-additive in 9 of 10
// cases — see EXPERIMENTS.md for the pci_bridge32 superadditivity
// approximation).
func (g *generator) synergyBlock() {
	w := g.r.DataWidth
	s := g.pickBit()
	// Dependent-control mux (Figure 3 class) feeding a case chain.
	or := g.m.Or(s, g.pickBit())
	dep := g.m.Mux(g.pickW(w), g.pickW(w), or)
	depRoot := g.m.Mux(g.pickW(w), dep, s)
	selBits := 3
	sel := g.freshSelector(selBits)
	cur := depRoot
	for i := 7; i >= 0; i-- {
		eq := g.m.Eq(sel, rtlil.Const(uint64(i), selBits))
		cur = g.m.Mux(cur, g.pickW(w), eq)
	}
	g.emit(cur)
}
