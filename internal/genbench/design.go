package genbench

import (
	"fmt"

	"repro/internal/rtlil"
)

// Multi-module design generation for the design-level shard scheduler
// and the serving layer's module-granular cache: a DesignRecipe stamps
// out n modules, each a seeded variant of one public benchmark recipe,
// so design-scale benches and tests get deterministic designs whose
// modules differ in content (and so in canonical hash). MutateModule
// regenerates exactly one module with a bumped generation, which is how
// the incremental-resubmit benches model "the user edited one module".

// DesignRecipe parameterizes one generated multi-module design.
type DesignRecipe struct {
	// Name names the design (it only labels benches; module names are
	// derived per index).
	Name string
	// Modules is the number of generated modules (min 1).
	Modules int
	// Seed drives every module's generator; two designs with equal
	// recipes are identical.
	Seed int64
}

// ModuleRecipe returns the recipe of module index i at the given
// mutation generation (0 = the original design). The base case cycles
// through the public benchmark recipes; the seed folds in index and
// generation with distinct odd multipliers so every (i, gen) pair draws
// a different netlist, and the module name is stable across
// generations — a mutation changes a module's content, never its
// identity.
func (r DesignRecipe) ModuleRecipe(i, gen int) Recipe {
	bases := Recipes()
	rec := bases[i%len(bases)]
	rec.Name = fmt.Sprintf("m%02d_%s", i, rec.Name)
	rec.Seed = r.Seed + int64(i)*7919 + int64(gen)*104729
	return rec
}

// GenerateDesign builds the design at the given scale factor (the same
// per-module scale Generate takes).
func GenerateDesign(r DesignRecipe, scale float64) *rtlil.Design {
	n := r.Modules
	if n < 1 {
		n = 1
	}
	d := rtlil.NewDesign()
	for i := 0; i < n; i++ {
		d.AddModule(Generate(r.ModuleRecipe(i, 0), scale))
	}
	return d
}

// MutateModule regenerates module index i of a GenerateDesign output at
// mutation generation gen (>= 1), replacing it in the design in place
// and returning the new module. The module keeps its name and position;
// its content — and so its canonical hash — changes.
func MutateModule(d *rtlil.Design, r DesignRecipe, scale float64, i, gen int) *rtlil.Module {
	m := Generate(r.ModuleRecipe(i, gen), scale)
	d.ReplaceModule(m)
	return m
}
