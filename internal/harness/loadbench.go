package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/genbench"
	"repro/internal/rtlil"
	"repro/internal/server"
	"repro/internal/server/api"
)

// LoadBench measures the serving layer under concurrent load: n
// clients drive a mixed workload — cold whole-design requests (cache
// bypassed, the full optimization runs), warm requests (result-cache
// hits) and warm design-mode resubmissions (module-sharded hits) —
// against one in-process smartlyd, and the bench reports throughput
// plus client-side p50/p95/p99 per class. ServerSync carries the
// daemon's own optimize-latency histogram summary over the same
// requests, so the harness (and its e2e test) can cross-check the
// /metrics instrumentation against sort-based client-side truth. It is
// attached to the bench JSON under "load".
type LoadBench struct {
	Case    string  `json:"case"`
	Flow    string  `json:"flow"`
	Scale   float64 `json:"scale"`
	Clients int     `json:"clients"`
	// Rounds is how many times each client repeats the per-round
	// schedule (one cold, three warm, one design-mode warm request).
	Rounds int `json:"rounds"`
	// Modules is the module count of the design-mode workload.
	Modules int `json:"modules"`
	// ElapsedMS is the measured phase's wall clock (priming excluded);
	// ThroughputRPS is completed requests per second across clients.
	ElapsedMS     float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// Classes holds client-side latency percentiles per workload class
	// ("cold", "warm", "design"), plus "all" — every request of the
	// run including the two priming requests, the exact population the
	// server's sync histogram observed.
	Classes []LoadClass `json:"classes"`
	// ServerSync is the daemon's optimize_sync latency summary from
	// /healthz after the run: histogram-estimated percentiles over the
	// same requests the "all" class measured from the client side.
	ServerSync api.LatencySummary `json:"server_sync"`
}

// LoadClass is one workload class's client-side latency digest.
type LoadClass struct {
	Class    string  `json:"class"`
	Requests int     `json:"requests"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// loadSchedule is each client's per-round request mix: mostly warm
// traffic with a cold and a design-mode request threaded through, the
// shape a fleet cache sees in steady state.
var loadSchedule = []string{"cold", "warm", "warm", "design", "warm"}

// RunLoadBench generates the workload designs, spins up one in-process
// serving stack and drives it with the given number of concurrent
// clients for the given rounds (min 1; clients < 1 defaults to 4).
func RunLoadBench(caseName string, clients int, flow string, scale float64, rounds int) (LoadBench, error) {
	if clients < 1 {
		clients = 4
	}
	if rounds < 1 {
		rounds = 1
	}
	const modules = 4
	out := LoadBench{
		Case: caseName, Flow: flow, Scale: scale,
		Clients: clients, Rounds: rounds, Modules: modules,
	}

	var recipe *genbench.Recipe
	for _, r := range genbench.Recipes() {
		if r.Name == caseName {
			recipe = &r
			break
		}
	}
	if recipe == nil {
		return out, fmt.Errorf("harness: unknown benchmark case %q for load bench", caseName)
	}
	m := genbench.Generate(*recipe, scale)
	d := rtlil.NewDesign()
	d.AddModule(m)
	var buf bytes.Buffer
	if err := rtlil.WriteJSON(&buf, d); err != nil {
		return out, err
	}
	wholeJSON := buf.Bytes()
	shard := genbench.GenerateDesign(genbench.DesignRecipe{Name: "load_shard", Modules: modules, Seed: 43}, scale)
	buf.Reset()
	if err := rtlil.WriteJSON(&buf, shard); err != nil {
		return out, err
	}
	shardJSON := buf.Bytes()

	// The queue must absorb every client at once: the bench measures
	// latency under saturation, not the 503 path.
	s := server.New(server.Config{QueueDepth: 4*clients + 16})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	var mu sync.Mutex
	latencies := map[string][]float64{}
	record := func(class string, el time.Duration) {
		mu.Lock()
		latencies[class] = append(latencies[class], toMS(el))
		latencies["all"] = append(latencies["all"], toMS(el))
		mu.Unlock()
	}
	post := func(class string) error {
		req := api.OptimizeRequest{Design: wholeJSON, Flow: flow}
		switch class {
		case "cold":
			req.NoCache = true
		case "design":
			req.Design = shardJSON
			req.Mode = api.ModeDesign
		}
		start := time.Now()
		resp, err := postOptimize(ts.URL, req)
		el := time.Since(start)
		if err != nil {
			return fmt.Errorf("harness: %s request: %w", class, err)
		}
		switch class {
		case "cold":
			if resp.Cache != "bypass" {
				return fmt.Errorf("harness: cold request served as %q", resp.Cache)
			}
		case "warm":
			if resp.Cache != "hit" {
				return fmt.Errorf("harness: warm request served as %q, want hit", resp.Cache)
			}
		case "design":
			if err := wantModuleCache(resp, modules, 0); err != nil {
				return fmt.Errorf("harness: design request: %w", err)
			}
		}
		record(class, el)
		return nil
	}

	// Priming: one whole-mode miss and one design-mode all-miss fill
	// the cache, so every later warm request must hit. Their latencies
	// land in "all" only — the server's histogram sees them too.
	for _, prime := range []api.OptimizeRequest{
		{Design: wholeJSON, Flow: flow},
		{Design: shardJSON, Flow: flow, Mode: api.ModeDesign},
	} {
		start := time.Now()
		resp, err := postOptimize(ts.URL, prime)
		el := time.Since(start)
		if err != nil {
			return out, fmt.Errorf("harness: priming request: %w", err)
		}
		if resp.Cache == "hit" {
			return out, fmt.Errorf("harness: priming request unexpectedly hit")
		}
		mu.Lock()
		latencies["all"] = append(latencies["all"], toMS(el))
		mu.Unlock()
	}

	errc := make(chan error, clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, class := range loadSchedule {
					if err := post(class); err != nil {
						errc <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	if err := <-errc; err != nil {
		return out, err
	}

	measured := clients * rounds * len(loadSchedule)
	out.ElapsedMS = toMS(elapsed)
	out.ThroughputRPS = float64(measured) / elapsed.Seconds()
	for _, class := range []string{"cold", "warm", "design", "all"} {
		out.Classes = append(out.Classes, digestClass(class, latencies[class]))
	}

	// The daemon's own view of the same run, for the cross-check.
	health, err := getHealthz(ts.URL)
	if err != nil {
		return out, err
	}
	if health.Metrics == nil {
		return out, fmt.Errorf("harness: /healthz has no metrics summary")
	}
	out.ServerSync = health.Metrics.OptimizeSync
	return out, nil
}

// digestClass sorts one class's samples and reads the percentiles the
// exact way (rank = ceil(q*n)) — the reference the histogram estimates
// are judged against.
func digestClass(class string, ms []float64) LoadClass {
	out := LoadClass{Class: class, Requests: len(ms)}
	if len(ms) == 0 {
		return out
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		return sorted[rank-1]
	}
	out.P50MS = at(0.50)
	out.P95MS = at(0.95)
	out.P99MS = at(0.99)
	out.MaxMS = sorted[len(sorted)-1]
	return out
}

// Class returns the named class digest (nil when absent).
func (b LoadBench) Class(name string) *LoadClass {
	for i := range b.Classes {
		if b.Classes[i].Class == name {
			return &b.Classes[i]
		}
	}
	return nil
}

// getHealthz fetches and decodes the daemon health snapshot.
func getHealthz(baseURL string) (api.Health, error) {
	var h api.Health
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("GET /healthz: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	return h, err
}

// String renders the bench result for the human-readable table mode.
func (b LoadBench) String() string {
	var sb bytes.Buffer
	fmt.Fprintf(&sb, "Concurrent load (%s, flow=%s, scale=%g, %d clients x %d rounds): %.1f req/s over %.0fms\n",
		b.Case, b.Flow, b.Scale, b.Clients, b.Rounds, b.ThroughputRPS, b.ElapsedMS)
	for _, c := range b.Classes {
		fmt.Fprintf(&sb, "  %-6s n=%-4d p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  max %8.3fms\n",
			c.Class, c.Requests, c.P50MS, c.P95MS, c.P99MS, c.MaxMS)
	}
	fmt.Fprintf(&sb, "  server optimize_sync: n=%d p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n",
		b.ServerSync.Count, b.ServerSync.P50MS, b.ServerSync.P95MS, b.ServerSync.P99MS, b.ServerSync.MaxMS)
	return sb.String()
}
