package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/rtlil"
	"repro/internal/verilog"
)

// CorpusCase is one externally-supplied benchmark design: a Verilog
// file from an ISCAS/EPFL-style corpus directory, elaborated to rtlil.
type CorpusCase struct {
	Name   string
	File   string
	Top    string
	Module *rtlil.Module
}

// corpusManifest is the schema of <dir>/manifest.json.
type corpusManifest struct {
	Cases []struct {
		Name string `json:"name"`
		File string `json:"file"`
		Top  string `json:"top"`
	} `json:"cases"`
}

// LoadCorpus reads a benchmark-corpus directory: a manifest.json listing
// the cases plus the Verilog sources it references. Every case's file is
// parsed and elaborated; the named top module (or the file's single
// module when top is empty) becomes the case's netlist. The loaded
// modules are validated, so a corrupt corpus fails here rather than
// mid-benchmark.
func LoadCorpus(dir string) ([]CorpusCase, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("harness: corpus %s: %w", dir, err)
	}
	var mf corpusManifest
	if err := json.Unmarshal(raw, &mf); err != nil {
		return nil, fmt.Errorf("harness: corpus %s: manifest.json: %w", dir, err)
	}
	if len(mf.Cases) == 0 {
		return nil, fmt.Errorf("harness: corpus %s: manifest lists no cases", dir)
	}
	var out []CorpusCase
	for _, c := range mf.Cases {
		if c.Name == "" || c.File == "" {
			return nil, fmt.Errorf("harness: corpus %s: case needs name and file (got %+v)", dir, c)
		}
		src, err := os.ReadFile(filepath.Join(dir, c.File))
		if err != nil {
			return nil, fmt.Errorf("harness: corpus case %s: %w", c.Name, err)
		}
		f, err := verilog.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("harness: corpus case %s: %w", c.Name, err)
		}
		d, err := verilog.Elaborate(f)
		if err != nil {
			return nil, fmt.Errorf("harness: corpus case %s: %w", c.Name, err)
		}
		var m *rtlil.Module
		if c.Top != "" {
			if m = d.Module(c.Top); m == nil {
				return nil, fmt.Errorf("harness: corpus case %s: no module %q in %s", c.Name, c.Top, c.File)
			}
		} else {
			mods := d.Modules()
			if len(mods) != 1 {
				return nil, fmt.Errorf("harness: corpus case %s: %s has %d modules, set top", c.Name, c.File, len(mods))
			}
			m = mods[0]
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("harness: corpus case %s: %w", c.Name, err)
		}
		out = append(out, CorpusCase{Name: c.Name, File: c.File, Top: m.Name, Module: m})
	}
	return out, nil
}
