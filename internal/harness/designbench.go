package harness

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/genbench"
	"repro/internal/rtlil"
	"repro/internal/server"
	"repro/internal/server/api"
)

// DesignBench measures the serving layer's design-mode sharding on a
// generated multi-module design across the three request shapes that
// matter at scale: cold (no cache), warm (identical resubmission, every
// module hits) and incremental (one module mutated, exactly one module
// re-optimizes). It is attached to the bench JSON under "design" so CI
// tracks the incremental-resubmit speedup alongside the area numbers.
type DesignBench struct {
	Name    string  `json:"name"`
	Modules int     `json:"modules"`
	Flow    string  `json:"flow"`
	Scale   float64 `json:"scale"`
	Rounds  int     `json:"rounds"`
	// ColdMS/WarmMS/IncrementalMS are best-of-rounds latencies of the
	// three request shapes.
	ColdMS        float64 `json:"cold_ms"`
	WarmMS        float64 `json:"warm_ms"`
	IncrementalMS float64 `json:"incremental_ms"`
	// WarmSpeedup is ColdMS/WarmMS; IncrementalSpeedup is
	// ColdMS/IncrementalMS — the payoff of re-optimizing one module
	// instead of the whole design.
	WarmSpeedup        float64 `json:"warm_speedup"`
	IncrementalSpeedup float64 `json:"incremental_speedup"`
}

// RunDesignBench generates a modules-module design, spins up an
// in-process serving stack and measures cold, warm and incremental
// design-mode latency over the given number of rounds (min 1). Every
// round's per-module cache outcomes are asserted, so the bench doubles
// as an end-to-end check of the incremental-resubmit contract.
func RunDesignBench(modules int, flow string, scale float64, rounds int) (DesignBench, error) {
	if modules < 1 {
		modules = 8
	}
	out := DesignBench{Name: "design_shard", Modules: modules, Flow: flow, Scale: scale, Rounds: rounds}
	if out.Rounds < 1 {
		out.Rounds = 1
	}
	recipe := genbench.DesignRecipe{Name: out.Name, Modules: modules, Seed: 42}
	d := genbench.GenerateDesign(recipe, scale)
	encode := func() ([]byte, error) {
		var buf bytes.Buffer
		if err := rtlil.WriteJSON(&buf, d); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	designJSON, err := encode()
	if err != nil {
		return out, err
	}

	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	post := func(body []byte, noCache bool) (time.Duration, *api.OptimizeResponse, error) {
		req := api.OptimizeRequest{Design: body, Flow: flow, Mode: api.ModeDesign, NoCache: noCache}
		start := time.Now()
		resp, err := postOptimize(ts.URL, req)
		return time.Since(start), resp, err
	}
	best := func(slot *float64, el time.Duration) {
		if ms := toMS(el); *slot == 0 || ms < *slot {
			*slot = ms
		}
	}

	// Cold rounds bypass the cache entirely: every module pays the full
	// optimization.
	for i := 0; i < out.Rounds; i++ {
		el, resp, err := post(designJSON, true)
		if err != nil {
			return out, fmt.Errorf("harness: cold round %d: %w", i, err)
		}
		if resp.Cache != "bypass" {
			return out, fmt.Errorf("harness: cold round %d served as %q", i, resp.Cache)
		}
		best(&out.ColdMS, el)
	}
	// One priming request fills the module tier (all misses), then every
	// warm round must hit on every module.
	if _, resp, err := post(designJSON, false); err != nil {
		return out, fmt.Errorf("harness: priming request: %w", err)
	} else if err := wantModuleCache(resp, 0, modules); err != nil {
		return out, fmt.Errorf("harness: priming request: %w", err)
	}
	for i := 0; i < out.Rounds; i++ {
		el, resp, err := post(designJSON, false)
		if err != nil {
			return out, fmt.Errorf("harness: warm round %d: %w", i, err)
		}
		if err := wantModuleCache(resp, modules, 0); err != nil {
			return out, fmt.Errorf("harness: warm round %d: %w", i, err)
		}
		best(&out.WarmMS, el)
	}
	// Incremental rounds mutate one module per round (a fresh generation
	// each time, so exactly one module misses) and resubmit.
	for i := 0; i < out.Rounds; i++ {
		genbench.MutateModule(d, recipe, scale, i%modules, i+1)
		body, err := encode()
		if err != nil {
			return out, err
		}
		el, resp, err := post(body, false)
		if err != nil {
			return out, fmt.Errorf("harness: incremental round %d: %w", i, err)
		}
		if err := wantModuleCache(resp, modules-1, 1); err != nil {
			return out, fmt.Errorf("harness: incremental round %d: %w", i, err)
		}
		best(&out.IncrementalMS, el)
	}
	if out.WarmMS > 0 {
		out.WarmSpeedup = out.ColdMS / out.WarmMS
	}
	if out.IncrementalMS > 0 {
		out.IncrementalSpeedup = out.ColdMS / out.IncrementalMS
	}
	return out, nil
}

// wantModuleCache checks a design-mode response's per-module outcome.
func wantModuleCache(resp *api.OptimizeResponse, hits, misses int) error {
	if resp.Mode != api.ModeDesign {
		return fmt.Errorf("served in mode %q, want %q", resp.Mode, api.ModeDesign)
	}
	if resp.ModuleCache == nil {
		return fmt.Errorf("response has no module cache stats")
	}
	if resp.ModuleCache.Hits != hits || resp.ModuleCache.Misses != misses {
		return fmt.Errorf("module cache hits=%d misses=%d, want hits=%d misses=%d",
			resp.ModuleCache.Hits, resp.ModuleCache.Misses, hits, misses)
	}
	return nil
}

// String renders the bench result for the human-readable table mode.
func (b DesignBench) String() string {
	return fmt.Sprintf(
		"Design-mode sharding latency (%d modules, flow=%s, scale=%g, best of %d):\n"+
			"  cold %.3fms  warm %.3fms (%.1fx)  incremental %.3fms (%.1fx)\n",
		b.Modules, b.Flow, b.Scale, b.Rounds,
		b.ColdMS, b.WarmMS, b.WarmSpeedup, b.IncrementalMS, b.IncrementalSpeedup)
}
