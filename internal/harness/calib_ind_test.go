package harness

import (
	"fmt"
	"testing"
)

// TestCalibrationIndustrial prints the industrial summary while
// calibrating the industrial recipe.
func TestCalibrationIndustrial(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration print skipped in -short mode")
	}
	res, err := RunIndustrial(3, Options{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(res.IndustrialSummary())
}
