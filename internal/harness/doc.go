// Package harness runs the paper's experiments end to end: it
// generates each benchmark case (internal/genbench), optimizes it with
// a set of flows (by default the paper's four pipelines: Yosys
// baseline, smaRTLy SAT-only, Rebuild-only, Full), measures AIG areas
// and renders the rows of Table II, Table III and the industrial
// summary (§IV-B).
//
// Arbitrary flows — ablations, tuned budgets, custom pass orders —
// plug in through Options.Flows; ParseFlows builds them from CLI
// "name=script" specs. RunAll/RunCase/RunIndustrial fan cases (and the
// flows within a case) out to Options.Jobs workers with deterministic
// result merging: every number is identical for every job count.
// Optional equivalence checking (Options.Check) proves each optimized
// netlist against its input.
//
// Two machine-readable outputs feed CI:
//
//   - BenchReport (schema "smartly-bench/v1", written by
//     cmd/smartly-bench -json) carries per-case areas, reduction
//     ratios vs the baseline flow and wall times; BENCH_baseline.json
//     in the repository root is the committed reference run.
//   - RunServerBench (cmd/smartly-bench -server) spins an in-process
//     smartlyd serving stack and measures cold-vs-warm result-cache
//     latency, attached to the report as its "server" section.
package harness
