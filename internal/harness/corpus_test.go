package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cec"
	"repro/internal/opt"
)

const corpusDir = "../../testdata/corpus"

func TestLoadCorpus(t *testing.T) {
	cases, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(cases))
	}
	for _, c := range cases {
		if c.Module == nil || c.Module.StateBits() == 0 {
			t.Errorf("case %s: expected a sequential module", c.Name)
		}
	}
}

func TestLoadCorpusErrors(t *testing.T) {
	if _, err := LoadCorpus(t.TempDir()); err == nil {
		t.Error("missing manifest should fail")
	}
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("manifest.json", `{"cases":[]}`)
	if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "no cases") {
		t.Errorf("empty manifest: %v", err)
	}
	write("manifest.json", `{"cases":[{"name":"x","file":"x.v","top":"nope"}]}`)
	write("x.v", "module x(input a, output y);\n  assign y = a;\nendmodule\n")
	if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("bad top: %v", err)
	}
}

// TestCorpusRoundTrip is the end-to-end corpus contract: every case
// parses, optimizes under the seq and full flows with nonzero
// register-sweep work, and each optimized netlist is proven
// sequentially equivalent to the original by k-induction.
func TestCorpusRoundTrip(t *testing.T) {
	cases, err := LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, flowName := range []string{"seq", FlowFull} {
		flow, err := opt.NamedFlow(flowName)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			c := c
			t.Run(flowName+"/"+c.Name, func(t *testing.T) {
				work := c.Module.Clone()
				ctx := opt.NewCtx(nil, opt.Config{})
				if _, err := flow.Run(ctx, work); err != nil {
					t.Fatal(err)
				}
				if err := work.Validate(); err != nil {
					t.Fatal(err)
				}
				rep := ctx.Report()
				removed := rep.Counter("opt_dff", "dff_removed")
				if removed == 0 {
					t.Error("expected the sweep to remove registers")
				}
				if work.StateBits() >= c.Module.StateBits() {
					t.Errorf("state bits %d -> %d: no reduction",
						c.Module.StateBits(), work.StateBits())
				}
				if err := cec.CheckSequential(c.Module, work, nil); err != nil {
					t.Errorf("induction check: %v", err)
				}
			})
		}
	}
}

func TestRunCorpusBench(t *testing.T) {
	bench, err := RunCorpusBench(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Cases) != 3 {
		t.Fatalf("got %d cases, want 3", len(bench.Cases))
	}
	sawSweep := false
	for _, c := range bench.Cases {
		if c.OriginalArea <= 0 || c.Registers == 0 {
			t.Errorf("%s: bad original stats: %+v", c.Name, c)
		}
		if !c.SeqProved {
			t.Errorf("%s: seq flow result not proven equivalent", c.Name)
		}
		if c.RegistersAfter >= c.Registers {
			t.Errorf("%s: registers %d -> %d: no sweep", c.Name, c.Registers, c.RegistersAfter)
		}
		if c.DffConst+c.DffMerged+c.DffUnused > 0 {
			sawSweep = true
		}
		if c.Areas["seq"] <= 0 || c.Areas[FlowYosys] <= 0 || c.Areas[FlowFull] <= 0 {
			t.Errorf("%s: missing flow areas: %+v", c.Name, c.Areas)
		}
	}
	if !sawSweep {
		t.Error("no corpus case reported dff counters")
	}
	if s := bench.String(); !strings.Contains(s, "pipeline") || !strings.Contains(s, "SeqProved") {
		t.Errorf("String() = %q", s)
	}
}
