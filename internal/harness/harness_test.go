package harness

import (
	"strings"
	"testing"

	"repro/internal/genbench"
)

func TestRunCaseWithEquivalenceCheck(t *testing.T) {
	r := genbench.Recipes()[9] // ac97_ctrl: smallest mixed case
	cr, err := RunCase(r, Options{Scale: 0.03, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Original <= 0 || cr.Area(FlowYosys) <= 0 || cr.Area(FlowFull) <= 0 {
		t.Errorf("bad areas: %+v", cr)
	}
	if cr.Area(FlowFull) > cr.Area(FlowYosys) {
		t.Errorf("full (%d) worse than yosys (%d)", cr.Area(FlowFull), cr.Area(FlowYosys))
	}
}

func TestRatios(t *testing.T) {
	cr := CaseResult{Areas: map[string]int{
		FlowYosys: 200, FlowSAT: 180, FlowRebuild: 150, FlowFull: 140}}
	if got := cr.RatioSAT(); got != 10 {
		t.Errorf("RatioSAT = %v", got)
	}
	if got := cr.RatioRebuild(); got != 25 {
		t.Errorf("RatioRebuild = %v", got)
	}
	if got := cr.RatioFull(); got != 30 {
		t.Errorf("RatioFull = %v", got)
	}
	zero := CaseResult{}
	if zero.RatioFull() != 0 {
		t.Error("zero base should give zero ratio")
	}
}

func TestTableRendering(t *testing.T) {
	results := []CaseResult{
		{Name: "alpha", Original: 1000, Areas: map[string]int{
			FlowYosys: 500, FlowSAT: 480, FlowRebuild: 450, FlowFull: 430}},
		{Name: "beta", Original: 2000, Areas: map[string]int{
			FlowYosys: 900, FlowSAT: 850, FlowRebuild: 880, FlowFull: 820}},
	}
	t2 := TableII(results)
	for _, want := range []string{"alpha", "beta", "Average", "Original", "smaRTLy"} {
		if !strings.Contains(t2, want) {
			t.Errorf("TableII missing %q:\n%s", want, t2)
		}
	}
	t3 := TableIII(results)
	for _, want := range []string{"alpha", "SAT", "Rebuild", "Full", "Average"} {
		if !strings.Contains(t3, want) {
			t.Errorf("TableIII missing %q:\n%s", want, t3)
		}
	}
	avg := Averages(results)
	if avg.Area(FlowYosys) != 700 || avg.Area(FlowFull) != 625 {
		t.Errorf("averages wrong: %+v", avg)
	}
	if Averages(nil).Name != "Average" {
		t.Error("empty Averages broken")
	}
	tf := TableFlows(results, DefaultFlows())
	for _, want := range []string{"alpha", "beta", "Average", "yosys", "full", "Ratio"} {
		if !strings.Contains(tf, want) {
			t.Errorf("TableFlows missing %q:\n%s", want, tf)
		}
	}
}

// TestTableShape verifies the reproduction's headline properties at a
// reduced scale: Full is never worse than either single technique or the
// baseline, and the per-case skews of Table III hold (rebuild dominates
// top_cache_axi, SAT dominates wb_conmax).
func TestTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table shape check skipped in -short mode")
	}
	byName := map[string]CaseResult{}
	for _, name := range []string{"top_cache_axi", "wb_conmax"} {
		for _, r := range genbench.Recipes() {
			if r.Name != name {
				continue
			}
			cr, err := RunCase(r, Options{Scale: 0.1})
			if err != nil {
				t.Fatal(err)
			}
			byName[name] = cr
		}
	}
	for name, cr := range byName {
		full, sat, reb, yosys := cr.Area(FlowFull), cr.Area(FlowSAT), cr.Area(FlowRebuild), cr.Area(FlowYosys)
		if full > sat || full > reb || full > yosys {
			t.Errorf("%s: full=%d should be <= sat=%d, rebuild=%d, yosys=%d",
				name, full, sat, reb, yosys)
		}
		if yosys > cr.Original {
			t.Errorf("%s: yosys=%d larger than original=%d", name, yosys, cr.Original)
		}
	}
	tca := byName["top_cache_axi"]
	if !(tca.RatioRebuild() > tca.RatioSAT()) {
		t.Errorf("top_cache_axi: rebuild (%.2f%%) should dominate SAT (%.2f%%)",
			tca.RatioRebuild(), tca.RatioSAT())
	}
	if tca.RatioRebuild() < 10 {
		t.Errorf("top_cache_axi: rebuild ratio %.2f%% too small (paper: 24.91%%)", tca.RatioRebuild())
	}
	wbc := byName["wb_conmax"]
	if !(wbc.RatioSAT() > wbc.RatioRebuild()) {
		t.Errorf("wb_conmax: SAT (%.2f%%) should dominate rebuild (%.2f%%)",
			wbc.RatioSAT(), wbc.RatioRebuild())
	}
	if wbc.RatioSAT() < 8 {
		t.Errorf("wb_conmax: SAT ratio %.2f%% too small (paper: 19.05%%)", wbc.RatioSAT())
	}
}

func TestIndustrialSummaryRendering(t *testing.T) {
	r := IndustrialResult{
		Points: []CaseResult{{Name: "industrial", Original: 100,
			Areas: map[string]int{FlowYosys: 90, FlowFull: 50}}},
		AvgExtra: 44.4,
	}
	s := r.IndustrialSummary()
	if !strings.Contains(s, "44.4") || !strings.Contains(s, "47.2") {
		t.Errorf("summary missing figures:\n%s", s)
	}
}
