package harness

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/cache"
	"repro/internal/genbench"
	"repro/internal/rtlil"
	"repro/internal/server"
	"repro/internal/server/api"
)

// ReplicaBench measures the shared cache tier across a two-replica
// fleet: replica A computes a multi-module design cold, then replica B
// — whose cache consults A over the HTTP peer protocol — sees the same
// design for the first time. The figure that matters is replica B's
// warm-hit rate on that first pass: with a working shared tier it is
// ~100% (every module resolves through the peer instead of
// recomputing), and the acceptance floor is 80%. Attached to the bench
// JSON under "replica" so CI tracks fleet cache effectiveness.
type ReplicaBench struct {
	Name    string  `json:"name"`
	Modules int     `json:"modules"`
	Flow    string  `json:"flow"`
	Scale   float64 `json:"scale"`
	// ColdMS is replica A's cold first pass; PeerWarmMS is replica B's
	// first pass over the peer-shared cache; LocalWarmMS is replica B's
	// second pass (everything promoted locally).
	ColdMS      float64 `json:"cold_ms"`
	PeerWarmMS  float64 `json:"peer_warm_ms"`
	LocalWarmMS float64 `json:"local_warm_ms"`
	// WarmHitRate is replica B's first-pass module hit rate in [0, 1].
	WarmHitRate float64 `json:"warm_hit_rate"`
	// PeerSpeedup is ColdMS/PeerWarmMS.
	PeerSpeedup float64 `json:"peer_speedup"`
	// RemoteHits/RemoteErrors are replica B's remote-tier counters after
	// the run.
	RemoteHits   uint64 `json:"remote_hits"`
	RemoteErrors uint64 `json:"remote_errors"`
}

// RunReplicaBench generates a modules-module design and runs the
// two-replica scenario: A cold, B through A's cache peer endpoints,
// then B again locally. Design mode shards the cache per module, so the
// warm-hit rate is a real rate rather than a single all-or-nothing
// entry.
func RunReplicaBench(modules int, flow string, scale float64) (ReplicaBench, error) {
	if modules < 1 {
		modules = 8
	}
	out := ReplicaBench{Name: "replica_shared_cache", Modules: modules, Flow: flow, Scale: scale}
	recipe := genbench.DesignRecipe{Name: out.Name, Modules: modules, Seed: 1905}
	d := genbench.GenerateDesign(recipe, scale)
	var buf bytes.Buffer
	if err := rtlil.WriteJSON(&buf, d); err != nil {
		return out, err
	}
	designJSON := buf.Bytes()

	sA := server.New(server.Config{DefaultMode: api.ModeDesign})
	tsA := httptest.NewServer(sA.Handler())
	defer func() {
		tsA.Close()
		sA.Close()
	}()
	cacheB, err := cache.New(0, "")
	if err != nil {
		return out, err
	}
	cacheB.SetRemote(cache.NewHTTPPeer(tsA.URL, 0))
	sB := server.New(server.Config{DefaultMode: api.ModeDesign, Cache: cacheB})
	tsB := httptest.NewServer(sB.Handler())
	defer func() {
		tsB.Close()
		sB.Close()
	}()

	post := func(url string) (float64, *api.OptimizeResponse, error) {
		start := time.Now()
		resp, err := postOptimize(url, api.OptimizeRequest{Design: designJSON, Flow: flow})
		return toMS(time.Since(start)), resp, err
	}

	// Replica A computes everything.
	ms, resp, err := post(tsA.URL)
	if err != nil {
		return out, fmt.Errorf("harness: replica A cold pass: %w", err)
	}
	if resp.ModuleCache == nil || resp.ModuleCache.Misses != modules {
		return out, fmt.Errorf("harness: replica A cold pass stats %+v, want %d misses", resp.ModuleCache, modules)
	}
	out.ColdMS = ms

	// Replica B's first sight of the design: the shared tier answers.
	ms, resp, err = post(tsB.URL)
	if err != nil {
		return out, fmt.Errorf("harness: replica B peer-warm pass: %w", err)
	}
	out.PeerWarmMS = ms
	if resp.ModuleCache != nil {
		out.WarmHitRate = float64(resp.ModuleCache.Hits) / float64(modules)
	}
	if out.PeerWarmMS > 0 {
		out.PeerSpeedup = out.ColdMS / out.PeerWarmMS
	}

	// Replica B again: the peer refill was promoted into B's own tiers.
	ms, resp, err = post(tsB.URL)
	if err != nil {
		return out, fmt.Errorf("harness: replica B local-warm pass: %w", err)
	}
	if resp.Cache != "hit" {
		return out, fmt.Errorf("harness: replica B local-warm pass served as %q, want hit", resp.Cache)
	}
	out.LocalWarmMS = ms

	st := cacheB.Stats()
	out.RemoteHits = st.RemoteHits
	out.RemoteErrors = st.RemoteErrors
	if out.WarmHitRate < 0.8 {
		return out, fmt.Errorf("harness: replica B warm-hit rate %.0f%% below the 80%% floor",
			100*out.WarmHitRate)
	}
	return out, nil
}

// String renders the bench result for the human-readable table mode.
func (b ReplicaBench) String() string {
	return fmt.Sprintf(
		"Two-replica shared cache (%d modules, flow=%s, scale=%g):\n"+
			"  cold %.3fms  peer-warm %.3fms (%.1fx, hit rate %.0f%%)  local-warm %.3fms  remote hits %d errors %d\n",
		b.Modules, b.Flow, b.Scale, b.ColdMS, b.PeerWarmMS, b.PeerSpeedup,
		100*b.WarmHitRate, b.LocalWarmMS, b.RemoteHits, b.RemoteErrors)
}
