package harness

import (
	"strings"
	"testing"
)

func TestRunServerBench(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a server and optimizes repeatedly")
	}
	b, err := RunServerBench("fig3-chain", "full", 0.1, 2)
	if err == nil {
		t.Fatalf("unknown case accepted: %+v", b)
	}
	b, err = RunServerBench("top_cache_axi", "full", 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.ColdMS <= 0 || b.WarmMS <= 0 {
		t.Errorf("latencies not measured: %+v", b)
	}
	if b.CacheHits < uint64(b.Rounds) {
		t.Errorf("warm rounds did not hit the cache: %+v", b)
	}
	if !strings.Contains(b.String(), "speedup") {
		t.Errorf("String() = %q", b.String())
	}
}

// TestParseFlowsErrorsNameFlow is the regression test for flow-spec
// error messages: whatever fails, the message must name the offending
// flow (or echo the raw spec) so a -flow typo in a long command line is
// attributable.
func TestParseFlowsErrorsNameFlow(t *testing.T) {
	cases := []struct {
		specs []string
		want  string
	}{
		{[]string{"nope"}, `"nope"`},                         // unknown named flow
		{[]string{"tuned=opt_expr; bogus_pass"}, `"tuned"`},  // script error
		{[]string{"yosys", "yosys"}, `"yosys"`},              // duplicate name
		{[]string{"=opt_expr"}, `"=opt_expr"`},               // missing name echoes spec
		{[]string{"tuned=satmux(conflicts=bad)"}, `"tuned"`}, // bad option value
		{[]string{"full", "x=fixpoint { }"}, `"x"`},          // empty body
	}
	for _, c := range cases {
		_, err := ParseFlows(c.specs)
		if err == nil {
			t.Errorf("ParseFlows(%q) accepted", c.specs)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseFlows(%q) error %q does not name %s", c.specs, err, c.want)
		}
	}
	// Valid specs still parse.
	fs, err := ParseFlows([]string{"yosys", "tuned=opt_expr; opt_clean"})
	if err != nil || len(fs) != 2 {
		t.Errorf("valid specs: %v %v", fs, err)
	}
}

// TestRunReplicaBench is the fleet acceptance check: on replica B's
// first pass over a design replica A computed, at least 80% of the
// modules must be served through the shared cache tier (the bench
// itself errors below the floor; here it should be a full 100%).
func TestRunReplicaBench(t *testing.T) {
	if testing.Short() {
		t.Skip("spins two servers and optimizes a multi-module design")
	}
	b, err := RunReplicaBench(6, "yosys", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if b.WarmHitRate != 1.0 {
		t.Errorf("replica B warm-hit rate %.2f, want 1.0", b.WarmHitRate)
	}
	if b.RemoteHits == 0 || b.RemoteErrors != 0 {
		t.Errorf("remote counters %+v", b)
	}
	if !strings.Contains(b.String(), "hit rate") {
		t.Errorf("String() = %q", b.String())
	}
}
