package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"repro/internal/genbench"
	"repro/internal/rtlil"
	"repro/internal/server"
	"repro/internal/server/api"
)

// ServerBench measures the serving layer's cold-vs-warm latency for one
// benchmark case: cold requests bypass the result cache (the full
// optimization runs), warm requests are served from it. It is attached
// to the bench JSON report under "server" so CI tracks the cache's
// speedup alongside the area numbers.
type ServerBench struct {
	Case   string  `json:"case"`
	Flow   string  `json:"flow"`
	Scale  float64 `json:"scale"`
	Rounds int     `json:"rounds"`
	// ColdMS/WarmMS are best-of-rounds latencies (best-of filters
	// scheduler noise the same way benchstat's min does).
	ColdMS float64 `json:"cold_ms"`
	WarmMS float64 `json:"warm_ms"`
	// Speedup is ColdMS/WarmMS.
	Speedup float64 `json:"speedup"`
	// CacheHits is the server-side hit counter after the run — warm
	// rounds must all have hit.
	CacheHits uint64 `json:"cache_hits"`
}

// RunServerBench spins up an in-process serving stack (server + HTTP +
// cache), submits the named benchmark case and measures cold vs warm
// request latency over the given number of rounds (min 1 each).
func RunServerBench(caseName, flow string, scale float64, rounds int) (ServerBench, error) {
	out := ServerBench{Case: caseName, Flow: flow, Scale: scale, Rounds: rounds}
	if out.Rounds < 1 {
		out.Rounds = 1
	}
	var recipe *genbench.Recipe
	for _, r := range genbench.Recipes() {
		if r.Name == caseName {
			recipe = &r
			break
		}
	}
	if recipe == nil {
		return out, fmt.Errorf("harness: unknown benchmark case %q for server bench", caseName)
	}
	m := genbench.Generate(*recipe, scale)
	d := rtlil.NewDesign()
	d.AddModule(m)
	var buf bytes.Buffer
	if err := rtlil.WriteJSON(&buf, d); err != nil {
		return out, err
	}
	designJSON := buf.Bytes()

	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	post := func(noCache bool) (time.Duration, *api.OptimizeResponse, error) {
		req := api.OptimizeRequest{Design: designJSON, Flow: flow, NoCache: noCache}
		start := time.Now()
		resp, err := postOptimize(ts.URL, req)
		return time.Since(start), resp, err
	}

	// Cold rounds bypass the cache entirely, so every one pays the full
	// optimization; best-of is the cold latency.
	for i := 0; i < out.Rounds; i++ {
		el, resp, err := post(true)
		if err != nil {
			return out, fmt.Errorf("harness: cold round %d: %w", i, err)
		}
		if resp.Cache != "bypass" {
			return out, fmt.Errorf("harness: cold round %d served as %q", i, resp.Cache)
		}
		if ms := toMS(el); out.ColdMS == 0 || ms < out.ColdMS {
			out.ColdMS = ms
		}
	}
	// One priming request fills the cache (a miss), then every warm
	// round must hit.
	if _, resp, err := post(false); err != nil {
		return out, fmt.Errorf("harness: priming request: %w", err)
	} else if resp.Cache != "miss" {
		return out, fmt.Errorf("harness: priming request served as %q", resp.Cache)
	}
	for i := 0; i < out.Rounds; i++ {
		el, resp, err := post(false)
		if err != nil {
			return out, fmt.Errorf("harness: warm round %d: %w", i, err)
		}
		if resp.Cache != "hit" {
			return out, fmt.Errorf("harness: warm round %d served as %q, want hit", i, resp.Cache)
		}
		if ms := toMS(el); out.WarmMS == 0 || ms < out.WarmMS {
			out.WarmMS = ms
		}
	}
	if out.WarmMS > 0 {
		out.Speedup = out.ColdMS / out.WarmMS
	}
	out.CacheHits = s.Cache().Stats().Hits
	return out, nil
}

func toMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// postOptimize is the harness's minimal HTTP client (the public client
// package is not imported to keep the dependency direction
// harness -> server only).
func postOptimize(baseURL string, req api.OptimizeRequest) (*api.OptimizeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hr, err := http.NewRequestWithContext(context.Background(),
		http.MethodPost, baseURL+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e api.Error
		json.NewDecoder(resp.Body).Decode(&e)
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, e.Error)
	}
	var out api.OptimizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// String renders the bench result for the human-readable table mode.
func (b ServerBench) String() string {
	return fmt.Sprintf(
		"Server cache latency (%s, flow=%s, scale=%g, best of %d):\n"+
			"  cold %.3fms  warm %.3fms  speedup %.1fx  hits %d\n",
		b.Case, b.Flow, b.Scale, b.Rounds, b.ColdMS, b.WarmMS, b.Speedup, b.CacheHits)
}
