package harness

import (
	"context"
	"testing"
)

// stripElapsed zeroes the wall-clock field so results can be compared
// structurally.
func stripElapsed(rs []CaseResult) []CaseResult {
	out := append([]CaseResult(nil), rs...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// TestRunAllParallelDeterministic: RunAll with Jobs/Workers=N must
// report exactly the same areas, in the same order, as the fully
// sequential run.
func TestRunAllParallelDeterministic(t *testing.T) {
	seq, err := RunAll(Options{Scale: 0.05, Jobs: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(Options{Scale: 0.05, Jobs: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := stripElapsed(seq), stripElapsed(par)
	if len(a) != len(b) {
		t.Fatalf("case counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !equalAreas(a[i], b[i]) {
			t.Errorf("case %s: sequential %+v != parallel %+v", a[i].Name, a[i], b[i])
		}
	}
}

// TestRunIndustrialParallel mirrors the determinism check on the
// industrial points.
func TestRunIndustrialParallel(t *testing.T) {
	seq, err := RunIndustrial(2, Options{Scale: 0.03, Jobs: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunIndustrial(2, Options{Scale: 0.03, Jobs: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if seq.AvgExtra != par.AvgExtra {
		t.Errorf("AvgExtra differs: %v vs %v", seq.AvgExtra, par.AvgExtra)
	}
	for i := range seq.Points {
		if !equalAreas(seq.Points[i], par.Points[i]) {
			t.Errorf("point %d: %+v != %+v", i, seq.Points[i], par.Points[i])
		}
	}
}

// TestRunAllCancellation: a canceled context stops the sweep with the
// context error instead of running every case to completion.
func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(Options{Scale: 0.05, Jobs: 2, Context: ctx}); err == nil {
		t.Fatal("canceled RunAll reported success")
	}
}
