package harness

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestRunLoadBench is the e2e check of the load bench AND of the
// /metrics latency instrumentation: the daemon's histogram-estimated
// percentiles (scraped through /healthz) must agree with the bench's
// own sort-based client-side percentiles over the same requests —
// within one histogram bucket growth factor upward (the documented
// estimation bound) and the client's transport overhead downward.
func TestRunLoadBench(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a server and optimizes under concurrent load")
	}
	if _, err := RunLoadBench("fig3-chain", 2, "yosys", 0.1, 1); err == nil {
		t.Fatal("unknown case accepted")
	}
	b, err := RunLoadBench("ethernet", 3, "yosys", 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Shape: every class measured, cold slower than warm, positive
	// throughput.
	for _, class := range []string{"cold", "warm", "design", "all"} {
		c := b.Class(class)
		if c == nil || c.Requests == 0 || c.P50MS <= 0 {
			t.Fatalf("class %s not measured: %+v", class, c)
		}
		if c.P50MS > c.P95MS || c.P95MS > c.P99MS || c.P99MS > c.MaxMS {
			t.Errorf("class %s percentiles not monotone: %+v", class, c)
		}
	}
	if cold, warm := b.Class("cold"), b.Class("warm"); cold.P50MS <= warm.P50MS {
		t.Errorf("cold p50 %.3fms not slower than warm p50 %.3fms", cold.P50MS, warm.P50MS)
	}
	if b.ThroughputRPS <= 0 || b.ElapsedMS <= 0 {
		t.Errorf("throughput not measured: %+v", b)
	}

	// Cross-check: the server histogram observed exactly the requests
	// the client measured ("all" includes the priming pair), and its
	// percentile estimates bracket the client-side reference.
	all := b.Class("all")
	if got, want := b.ServerSync.Count, uint64(all.Requests); got != want {
		t.Fatalf("server histogram count %d, client measured %d", got, want)
	}
	growth := metrics.GrowthFactor()
	check := func(name string, server, client float64) {
		// Upward: a histogram quantile may overshoot the true value by
		// one bucket growth factor (plus a little float slack). Downward:
		// the client measures the server span plus HTTP transport, so
		// the server value may sit well below — but not implausibly so.
		if server > client*growth+1 {
			t.Errorf("%s: server %.3fms exceeds client %.3fms beyond the %.2fx bucket bound",
				name, server, client, growth)
		}
		if server < client*0.2-1 {
			t.Errorf("%s: server %.3fms implausibly far below client %.3fms",
				name, server, client)
		}
	}
	check("p50", b.ServerSync.P50MS, all.P50MS)
	check("p95", b.ServerSync.P95MS, all.P95MS)
	check("p99", b.ServerSync.P99MS, all.P99MS)
	check("max", b.ServerSync.MaxMS, all.MaxMS)

	if !strings.Contains(b.String(), "req/s") || !strings.Contains(b.String(), "optimize_sync") {
		t.Errorf("String() = %q", b.String())
	}
}
