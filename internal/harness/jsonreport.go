package harness

import (
	"encoding/json"
	"io"
	"time"
)

// BenchReport is the machine-readable output of cmd/smartly-bench
// -json: per-case areas for every flow, reduction ratios vs the
// baseline flow and wall times. The schema string versions the format
// so future PRs can evolve it without breaking consumers.
type BenchReport struct {
	Schema     string      `json:"schema"`
	Scale      float64     `json:"scale"`
	Flows      []string    `json:"flows"`
	Cases      []BenchCase `json:"cases"`
	Industrial []BenchCase `json:"industrial,omitempty"`
	// AvgRatioPct averages each flow's reduction vs the baseline flow
	// over the public benchmark cases.
	AvgRatioPct map[string]float64 `json:"avg_ratio_pct"`
	ElapsedMS   int64              `json:"elapsed_ms"`
	// Server holds the serving-layer warm-vs-cold cache latency smoke
	// (smartly-bench -server); absent when the mode did not run.
	Server *ServerBench `json:"server,omitempty"`
	// Replica holds the two-replica shared-cache-tier measurement
	// (smartly-bench -replica n): replica B's warm-hit rate on its first
	// pass over a design replica A computed; absent when the mode did
	// not run.
	Replica *ReplicaBench `json:"replica,omitempty"`
	// Design holds the design-mode sharding cold/warm/incremental
	// latency smoke (smartly-bench -design); absent when the mode did
	// not run.
	Design *DesignBench `json:"design,omitempty"`
	// Load holds the concurrent-load measurement (smartly-bench
	// -load n): throughput and p50/p95/p99 per workload class, with the
	// daemon's own histogram summary for cross-checking; absent when
	// the mode did not run.
	Load *LoadBench `json:"load,omitempty"`
	// Sat holds the incremental SAT oracle's counters and
	// incremental-vs-per-query-solver wall-clock (smartly-bench -sat);
	// absent when the mode did not run.
	Sat *SatBench `json:"sat,omitempty"`
	// Egraph holds the verified e-graph rewriting measurement on the
	// datapath benchmark set (smartly-bench -egraph); absent when the
	// mode did not run.
	Egraph *EgraphBench `json:"egraph,omitempty"`
	// Corpus holds the external benchmark-corpus measurement
	// (smartly-bench -corpus <dir>): yosys/seq/full areas, register
	// sweep counters and the end-to-end induction proof per case;
	// absent when the mode did not run.
	Corpus *CorpusBench `json:"corpus,omitempty"`
}

// BenchCase is one benchmark case of a BenchReport.
type BenchCase struct {
	Name         string         `json:"name"`
	OriginalArea int            `json:"original_area"`
	Areas        map[string]int `json:"areas"`
	// RatiosPct is each flow's reduction vs the baseline (first) flow
	// in percent; the baseline itself is omitted.
	RatiosPct map[string]float64 `json:"ratios_pct"`
	ElapsedMS int64              `json:"elapsed_ms"`
}

// BenchSchema identifies the current report format.
const BenchSchema = "smartly-bench/v1"

func benchCase(r CaseResult, flows []FlowSpec) BenchCase {
	c := BenchCase{
		Name:         r.Name,
		OriginalArea: r.Original,
		Areas:        map[string]int{},
		RatiosPct:    map[string]float64{},
		ElapsedMS:    r.Elapsed.Milliseconds(),
	}
	base := flows[0].Name
	for _, f := range flows {
		c.Areas[f.Name] = r.Area(f.Name)
		if f.Name != base {
			c.RatiosPct[f.Name] = r.Ratio(base, f.Name)
		}
	}
	return c
}

// NewBenchReport assembles the machine-readable report from harness
// results. The first flow is the ratio baseline.
func NewBenchReport(scale float64, flows []FlowSpec, cases []CaseResult,
	industrial []CaseResult, elapsed time.Duration) BenchReport {
	if len(flows) == 0 {
		flows = DefaultFlows()
	}
	rep := BenchReport{
		Schema:      BenchSchema,
		Scale:       scale,
		AvgRatioPct: map[string]float64{},
		ElapsedMS:   elapsed.Milliseconds(),
	}
	for _, f := range flows {
		rep.Flows = append(rep.Flows, f.Name)
	}
	for _, r := range cases {
		rep.Cases = append(rep.Cases, benchCase(r, flows))
	}
	for _, r := range industrial {
		rep.Industrial = append(rep.Industrial, benchCase(r, flows))
	}
	base := flows[0].Name
	for _, f := range flows[1:] {
		rep.AvgRatioPct[f.Name] = avgOf(cases, func(c CaseResult) float64 {
			return c.Ratio(base, f.Name)
		})
	}
	return rep
}

// WriteJSON writes the report, indented for diff-friendly baselines.
func (r BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
