package harness

import (
	"fmt"
	"testing"
)

// TestCalibrationPrint is a development aid: run with
// go test -run TestCalibrationPrint -v ./internal/harness/ to see the
// current table shape while calibrating genbench recipes.
func TestCalibrationPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration print skipped in -short mode")
	}
	results, err := RunAll(Options{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(TableII(results))
	fmt.Println(TableIII(results))
}
