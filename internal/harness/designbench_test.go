package harness

import (
	"strings"
	"testing"
)

func TestRunDesignBench(t *testing.T) {
	if testing.Short() {
		t.Skip("design bench spins a serving stack; skipped under -short")
	}
	b, err := RunDesignBench(3, "yosys", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.Modules != 3 || b.Rounds != 1 || b.Flow != "yosys" {
		t.Errorf("bench shape: %+v", b)
	}
	if b.ColdMS <= 0 || b.WarmMS <= 0 || b.IncrementalMS <= 0 {
		t.Errorf("latencies not measured: %+v", b)
	}
	if b.WarmSpeedup <= 0 || b.IncrementalSpeedup <= 0 {
		t.Errorf("speedups not computed: %+v", b)
	}
	s := b.String()
	for _, want := range []string{"3 modules", "cold", "warm", "incremental"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestRunDesignBenchDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("design bench spins a serving stack; skipped under -short")
	}
	// Degenerate arguments clamp instead of failing.
	b, err := RunDesignBench(1, "yosys", 0.02, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rounds != 1 || b.Modules != 1 {
		t.Errorf("clamped shape: %+v", b)
	}
}
