package harness

import (
	"fmt"
	"testing"

	"repro/internal/genbench"
)

// TestDiagnoseBlocks measures the per-class optimization yield of each
// generator block type in isolation (development aid for calibration).
func TestDiagnoseBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic skipped in -short mode")
	}
	base := genbench.Recipe{
		Name: "diag", Seed: 77,
		CaseSelBits: [2]int{4, 5}, DataWidth: 10,
		PmuxFraction: 0.4, SparseTerminals: true,
	}
	classes := map[string]func(r *genbench.Recipe){
		"dep":       func(r *genbench.Recipe) { r.DepBlocks = 60 },
		"case":      func(r *genbench.Recipe) { r.CaseBlocks = 60 },
		"casechain": func(r *genbench.Recipe) { r.CaseBlocks = 60; r.PmuxFraction = 0 },
		"casepmux":  func(r *genbench.Recipe) { r.CaseBlocks = 60; r.PmuxFraction = 1 },
		"synergy":   func(r *genbench.Recipe) { r.SynergyBlocks = 60 },
		"plain":     func(r *genbench.Recipe) { r.PlainBlocks = 60 },
		"red":       func(r *genbench.Recipe) { r.RedundantBlocks = 60 },
	}
	for name, set := range classes {
		r := base
		set(&r)
		cr, err := RunCase(r, Options{Scale: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-10s orig=%6d yosys=%6d sat=%6d reb=%6d full=%6d  satR=%5.1f%% rebR=%5.1f%% fullR=%5.1f%%\n",
			name, cr.Original, cr.Area(FlowYosys), cr.Area(FlowSAT),
			cr.Area(FlowRebuild), cr.Area(FlowFull),
			cr.RatioSAT(), cr.RatioRebuild(), cr.RatioFull())
	}
}
