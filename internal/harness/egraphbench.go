package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/aig"
	"repro/internal/genbench"
	"repro/internal/opt"
)

// EgraphBench is the verified e-graph rewriting section of the bench
// report: the datapath benchmark set (multiplier/FIR/comparator
// recipes the muxtree-centric flows cannot touch) measured under four
// flows — the yosys baseline, the pre-egraph "full" pipeline
// ("full_noegraph", which shows these designs used to win nothing),
// the dedicated "datapath" flow and the current "full" flow. The
// opt_egraph counters come from the "datapath" run; every rewrite it
// ships was CEC-proven inside the pass, so the section needs no extra
// whole-module equivalence pass (which would dwarf the optimization
// wall-clock on multiplier-heavy designs).
type EgraphBench struct {
	Scale float64           `json:"scale"`
	Cases []EgraphCaseBench `json:"cases"`
}

// EgraphCaseBench is one datapath case's measurement.
type EgraphCaseBench struct {
	Name         string         `json:"name"`
	OriginalArea int            `json:"original_area"`
	Areas        map[string]int `json:"areas"`
	// ReductionPct is each flow's AIG-area reduction vs OriginalArea in
	// percent.
	ReductionPct map[string]float64 `json:"reduction_pct"`
	// The opt_egraph counters of the datapath run: cones proved and
	// applied, cones whose proof failed (rejected, kept original),
	// rewrites applied during saturation, and the cost-model savings.
	Verified     int `json:"verified"`
	Rejected     int `json:"rejected"`
	RulesApplied int `json:"rules_applied"`
	CostSaved    int `json:"cost_saved"`
	// ElapsedMS is the datapath flow's wall-clock, proofs included.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// egraphBenchFlows returns the flows the section compares.
// full_noegraph reconstructs the pre-egraph "full" pipeline.
func egraphBenchFlows() ([]FlowSpec, error) {
	noEgraph, err := opt.ParseFlow("fixpoint { opt_expr; smartly; opt_clean }")
	if err != nil {
		return nil, fmt.Errorf("harness: egraph bench ablation flow: %w", err)
	}
	out := []FlowSpec{}
	for _, name := range []string{FlowYosys, "datapath", FlowFull} {
		f, err := opt.NamedFlow(name)
		if err != nil {
			return nil, fmt.Errorf("harness: egraph bench flow %q: %w", name, err)
		}
		out = append(out, FlowSpec{Name: name, Flow: f})
	}
	return append(out[:1], append([]FlowSpec{{Name: "full_noegraph", Flow: noEgraph}}, out[1:]...)...), nil
}

// RunEgraphBench measures the datapath benchmark set at the given
// scale.
func RunEgraphBench(scale float64) (EgraphBench, error) {
	bench := EgraphBench{Scale: scale}
	flows, err := egraphBenchFlows()
	if err != nil {
		return bench, err
	}
	for _, recipe := range genbench.DatapathRecipes() {
		m := genbench.Generate(recipe, scale)
		cb := EgraphCaseBench{
			Name:         recipe.Name,
			Areas:        map[string]int{},
			ReductionPct: map[string]float64{},
		}
		if cb.OriginalArea, err = aig.Area(m); err != nil {
			return bench, fmt.Errorf("harness: egraph bench %s: %w", recipe.Name, err)
		}
		for _, fs := range flows {
			work := m.Clone()
			ctx := opt.NewCtx(nil, opt.Config{})
			start := time.Now()
			if _, err := fs.Flow.Run(ctx, work); err != nil {
				return bench, fmt.Errorf("harness: egraph bench %s/%s: %w", recipe.Name, fs.Name, err)
			}
			elapsed := time.Since(start)
			area, err := aig.Area(work)
			if err != nil {
				return bench, fmt.Errorf("harness: egraph bench %s/%s area: %w", recipe.Name, fs.Name, err)
			}
			cb.Areas[fs.Name] = area
			if cb.OriginalArea > 0 {
				cb.ReductionPct[fs.Name] = 100 * float64(cb.OriginalArea-area) / float64(cb.OriginalArea)
			}
			if fs.Name == "datapath" {
				rep := ctx.Report()
				cb.Verified = rep.Counter("opt_egraph", "egraph_verified")
				cb.Rejected = rep.Counter("opt_egraph", "egraph_verify_rejected")
				cb.RulesApplied = rep.Counter("opt_egraph", "egraph_rules_applied")
				cb.CostSaved = rep.Counter("opt_egraph", "egraph_cost_saved")
				cb.ElapsedMS = elapsed.Milliseconds()
			}
		}
		bench.Cases = append(bench.Cases, cb)
	}
	return bench, nil
}

// String renders the section for the human-readable bench output.
func (b EgraphBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Verified e-graph rewriting (scale %g, datapath benchmark set)\n", b.Scale)
	fmt.Fprintf(&sb, "%-12s %9s %8s %14s %10s %6s %9s %9s %9s\n",
		"Case", "Original", "yosys%", "full_noegraph%", "datapath%", "full%", "Verified", "Rejected", "Elapsed")
	for _, c := range b.Cases {
		fmt.Fprintf(&sb, "%-12s %9d %7.1f%% %13.1f%% %9.1f%% %5.1f%% %9d %9d %7dms\n",
			c.Name, c.OriginalArea,
			c.ReductionPct[FlowYosys], c.ReductionPct["full_noegraph"],
			c.ReductionPct["datapath"], c.ReductionPct[FlowFull],
			c.Verified, c.Rejected, c.ElapsedMS)
	}
	return sb.String()
}
