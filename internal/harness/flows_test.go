package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/genbench"
)

func TestParseFlows(t *testing.T) {
	flows, err := ParseFlows([]string{"yosys", "custom=opt_expr; opt_clean"})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 || flows[0].Name != "yosys" || flows[1].Name != "custom" {
		t.Fatalf("flows = %+v", flows)
	}
	if got := flows[1].Flow.String(); got != "opt_expr; opt_clean" {
		t.Errorf("custom flow = %q", got)
	}
	if _, err := ParseFlows([]string{"bad=no_such_pass"}); err == nil {
		t.Error("unknown pass in flow spec accepted")
	}
	if _, err := ParseFlows([]string{"nosuchflow"}); err == nil {
		t.Error("unknown named flow accepted")
	}
	if _, err := ParseFlows([]string{"full", "full=opt_expr; opt_clean"}); err == nil {
		t.Error("duplicate flow name accepted (areas are keyed by name)")
	}
	if _, err := ParseFlows([]string{"=opt_expr"}); err == nil {
		t.Error("empty flow name accepted")
	}
}

// TestRunCaseCustomFlows: the harness measures an arbitrary flow set —
// here an ablation comparing the baseline against a satmux-only flow
// with a tuned conflict budget.
func TestRunCaseCustomFlows(t *testing.T) {
	flows, err := ParseFlows([]string{
		"base=fixpoint { opt_expr; opt_muxtree; opt_clean }",
		"tuned=fixpoint { opt_expr; satmux(conflicts=500); opt_clean }",
	})
	if err != nil {
		t.Fatal(err)
	}
	r := genbench.Recipes()[9] // ac97_ctrl: smallest mixed case
	cr, err := RunCase(r, Options{Scale: 0.03, Flows: flows, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Areas) != 2 {
		t.Fatalf("areas = %+v, want 2 flows", cr.Areas)
	}
	if cr.Area("base") <= 0 || cr.Area("tuned") <= 0 {
		t.Errorf("bad areas: %+v", cr.Areas)
	}
	if cr.Area("tuned") > cr.Area("base") {
		t.Errorf("tuned satmux (%d) worse than baseline (%d)", cr.Area("tuned"), cr.Area("base"))
	}
	if cr.Ratio("base", "tuned") < 0 {
		t.Errorf("ratio = %v", cr.Ratio("base", "tuned"))
	}
}

func TestBenchReportJSON(t *testing.T) {
	flows := DefaultFlows()
	cases := []CaseResult{
		{Name: "alpha", Original: 1000, Elapsed: 1500 * time.Millisecond, Areas: map[string]int{
			FlowYosys: 500, FlowSAT: 480, FlowRebuild: 450, FlowFull: 430}},
	}
	rep := NewBenchReport(0.25, flows, cases, nil, 2*time.Second)
	if rep.Schema != BenchSchema || rep.Scale != 0.25 || rep.ElapsedMS != 2000 {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Flows) != 4 || rep.Flows[0] != FlowYosys {
		t.Errorf("flows = %v", rep.Flows)
	}
	c := rep.Cases[0]
	if c.OriginalArea != 1000 || c.Areas[FlowFull] != 430 || c.ElapsedMS != 1500 {
		t.Errorf("case = %+v", c)
	}
	if _, ok := c.RatiosPct[FlowYosys]; ok {
		t.Error("baseline flow has a ratio against itself")
	}
	if got := c.RatiosPct[FlowFull]; got != 14 {
		t.Errorf("full ratio = %v, want 14", got)
	}
	if got := rep.AvgRatioPct[FlowFull]; got != 14 {
		t.Errorf("avg full ratio = %v, want 14", got)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != BenchSchema || len(back.Cases) != 1 {
		t.Errorf("round trip = %+v", back)
	}
}
