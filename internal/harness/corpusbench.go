package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/aig"
	"repro/internal/cec"
	"repro/internal/opt"
)

// CorpusBench is the external-corpus section of the bench report: every
// case of a benchmark-corpus directory (LoadCorpus) measured under the
// yosys baseline, the register-sweep "seq" flow and the current "full"
// flow. The opt_dff counters and the register statistics come from the
// seq run; SeqProved records an end-to-end k-induction equivalence
// check of the seq result against the unoptimized netlist — on top of
// the per-sweep proofs the pass already ran internally.
type CorpusBench struct {
	Dir   string            `json:"dir"`
	Cases []CorpusCaseBench `json:"cases"`
}

// CorpusCaseBench is one corpus case's measurement.
type CorpusCaseBench struct {
	Name         string             `json:"name"`
	Top          string             `json:"top"`
	OriginalArea int                `json:"original_area"`
	Registers    int                `json:"registers"`
	Areas        map[string]int     `json:"areas"`
	ReductionPct map[string]float64 `json:"reduction_pct"`
	// Register statistics and opt_dff counters of the seq run.
	RegistersAfter int  `json:"registers_after"`
	DffConst       int  `json:"dff_const"`
	DffMerged      int  `json:"dff_merged"`
	DffUnused      int  `json:"dff_unused"`
	DffRejected    int  `json:"dff_verify_rejected"`
	SeqProved      bool `json:"seq_proved"`
	// ElapsedMS is the seq flow's wall-clock, proofs included.
	ElapsedMS int64 `json:"elapsed_ms"`
}

// corpusBenchFlows returns the flows the section compares.
func corpusBenchFlows() ([]FlowSpec, error) {
	out := []FlowSpec{}
	for _, name := range []string{FlowYosys, "seq", FlowFull} {
		f, err := opt.NamedFlow(name)
		if err != nil {
			return nil, fmt.Errorf("harness: corpus bench flow %q: %w", name, err)
		}
		out = append(out, FlowSpec{Name: name, Flow: f})
	}
	return out, nil
}

// RunCorpusBench loads the corpus directory and measures every case.
func RunCorpusBench(dir string) (CorpusBench, error) {
	bench := CorpusBench{Dir: dir}
	cases, err := LoadCorpus(dir)
	if err != nil {
		return bench, err
	}
	flows, err := corpusBenchFlows()
	if err != nil {
		return bench, err
	}
	for _, cc := range cases {
		cb := CorpusCaseBench{
			Name:         cc.Name,
			Top:          cc.Top,
			Registers:    cc.Module.StateBits(),
			Areas:        map[string]int{},
			ReductionPct: map[string]float64{},
		}
		if cb.OriginalArea, err = aig.Area(cc.Module); err != nil {
			return bench, fmt.Errorf("harness: corpus bench %s: %w", cc.Name, err)
		}
		for _, fs := range flows {
			work := cc.Module.Clone()
			ctx := opt.NewCtx(nil, opt.Config{})
			start := time.Now()
			if _, err := fs.Flow.Run(ctx, work); err != nil {
				return bench, fmt.Errorf("harness: corpus bench %s/%s: %w", cc.Name, fs.Name, err)
			}
			elapsed := time.Since(start)
			area, err := aig.Area(work)
			if err != nil {
				return bench, fmt.Errorf("harness: corpus bench %s/%s area: %w", cc.Name, fs.Name, err)
			}
			cb.Areas[fs.Name] = area
			if cb.OriginalArea > 0 {
				cb.ReductionPct[fs.Name] = 100 * float64(cb.OriginalArea-area) / float64(cb.OriginalArea)
			}
			if fs.Name == "seq" {
				rep := ctx.Report()
				cb.RegistersAfter = work.StateBits()
				cb.DffConst = rep.Counter("opt_dff", "dff_const")
				cb.DffMerged = rep.Counter("opt_dff", "dff_merged")
				cb.DffUnused = rep.Counter("opt_dff", "dff_unused")
				cb.DffRejected = rep.Counter("opt_dff", "dff_verify_rejected")
				cb.SeqProved = cec.CheckSequential(cc.Module, work, nil) == nil
				cb.ElapsedMS = elapsed.Milliseconds()
			}
		}
		bench.Cases = append(bench.Cases, cb)
	}
	return bench, nil
}

// String renders the section for the human-readable bench output.
func (b CorpusBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Benchmark corpus (%s)\n", b.Dir)
	fmt.Fprintf(&sb, "%-12s %9s %5s %8s %6s %6s %7s %7s %7s %7s %9s\n",
		"Case", "Original", "Regs", "yosys%", "seq%", "full%", "RegsAft", "Const", "Merged", "Unused", "SeqProved")
	for _, c := range b.Cases {
		fmt.Fprintf(&sb, "%-12s %9d %5d %7.1f%% %5.1f%% %5.1f%% %7d %7d %7d %7d %9v\n",
			c.Name, c.OriginalArea, c.Registers,
			c.ReductionPct[FlowYosys], c.ReductionPct["seq"], c.ReductionPct[FlowFull],
			c.RegistersAfter, c.DffConst, c.DffMerged, c.DffUnused, c.SeqProved)
	}
	return sb.String()
}
