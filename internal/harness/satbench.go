package harness

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/genbench"
	"repro/internal/opt"
	"repro/internal/rtlil"
)

// SatBench is the incremental-SAT-oracle section of the bench report:
// for each SAT-exercising flow, the oracle counters (queries, fresh
// encodings, encoding and solver reuse, simulation pre-filter skips)
// and the wall-clock of the whole public benchmark set, measured three
// ways — the full incremental oracle, the sim_filter=false ablation
// (incremental oracle, every SAT-bound query hits the solver), and the
// pre-incremental one-solver-per-query oracle. The netlist hashes of
// the runs are compared case by case: with no budget-tripped queries on
// any side the hashes must match (hard error otherwise — the section
// doubles as an equivalence assertion), while runs that tripped a
// conflict budget may legitimately diverge (a budgeted verdict depends
// on the learnt clauses a solver has accumulated) and only flip
// NetlistsEqual.
type SatBench struct {
	Scale float64        `json:"scale"`
	Flows []SatFlowBench `json:"flows"`
}

// SatFlowBench is one flow's incremental-vs-baseline measurement.
type SatFlowBench struct {
	Flow          string `json:"flow"`
	Queries       int    `json:"queries"`
	SATCalls      int    `json:"sat_calls"`
	Encodings     int    `json:"encodings"`
	EncodeReuse   int    `json:"encode_reuse"`
	SolverReuse   int    `json:"solver_reuse"`
	LearntClauses int    `json:"learnt_clauses"`
	// SimFiltered counts SAT-bound queries decided by the 64-lane
	// random-simulation pre-filter without a solver call; SimVectors is
	// the total 64-pattern rounds it (and the vectorized exhaustive
	// stage) evaluated. HintedSolves counts solver calls seeded with a
	// counterexample-derived phase hint, PortfolioRetries the budgeted
	// probe/retry fallbacks.
	SimFiltered      int `json:"sim_filtered"`
	SimVectors       int `json:"sim_vectors"`
	HintedSolves     int `json:"hinted_solves"`
	PortfolioRetries int `json:"portfolio_retries"`
	// Evictions sums the conflict-budget trips (learnt-state resets and
	// capacity evictions) of the incremental and baseline runs; when it
	// is zero no SAT verdict was budget-dependent, so the two oracles'
	// netlists are provably identical and NetlistsEqual must be true.
	Evictions     int  `json:"evictions"`
	NetlistsEqual bool `json:"netlists_equal"`
	// ElapsedMS is the incremental oracle's wall-clock over the public
	// benchmark cases; BaselineElapsedMS is the per-query-solver
	// oracle's on the same cases; NoFilterElapsedMS (with
	// NoFilterSATCalls) is the satmux(sim_filter=false) ablation — the
	// incremental oracle with the simulation pre-filter and portfolio
	// disabled, isolating the tentpole's contribution.
	ElapsedMS         int64 `json:"elapsed_ms"`
	BaselineElapsedMS int64 `json:"baseline_elapsed_ms"`
	NoFilterSATCalls  int   `json:"no_filter_sat_calls"`
	NoFilterElapsedMS int64 `json:"no_filter_elapsed_ms"`
}

// nonIncrementalFlow derives the ablation variant of a flow: the same
// steps with every SAT-capable pass forced to the pre-incremental
// one-solver-per-query oracle.
func nonIncrementalFlow(f *opt.Flow) (*opt.Flow, error) {
	f, err := f.WithArg("satmux", "incremental", "false")
	if err != nil {
		return nil, err
	}
	return f.WithArg("smartly", "incremental", "false")
}

// noFilterFlow derives the sim_filter=false ablation of a flow: the
// incremental oracle with the simulation pre-filter (and with it the
// hint-seeded portfolio) switched off, so every SAT-bound query reaches
// the solver.
func noFilterFlow(f *opt.Flow) (*opt.Flow, error) {
	for _, pass := range []string{"satmux", "smartly"} {
		var err error
		if f, err = f.WithArg(pass, "sim_filter", "false"); err != nil {
			return nil, err
		}
		if f, err = f.WithArg(pass, "portfolio", "false"); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// RunSatBench measures the named SAT-exercising flows (typically "sat"
// and "full") over the public benchmark set at the given scale.
func RunSatBench(flowNames []string, scale float64) (SatBench, error) {
	bench := SatBench{Scale: scale}
	for _, name := range flowNames {
		flow, err := opt.NamedFlow(name)
		if err != nil {
			return bench, fmt.Errorf("harness: sat bench flow %q: %w", name, err)
		}
		baseline, err := nonIncrementalFlow(flow)
		if err != nil {
			return bench, fmt.Errorf("harness: sat bench baseline for %q: %w", name, err)
		}
		unfiltered, err := noFilterFlow(flow)
		if err != nil {
			return bench, fmt.Errorf("harness: sat bench sim_filter ablation for %q: %w", name, err)
		}
		fb := SatFlowBench{Flow: name, NetlistsEqual: true}
		for _, recipe := range genbench.Recipes() {
			m := genbench.Generate(recipe, scale)

			inc := m.Clone()
			ec := opt.NewCtx(nil, opt.Config{})
			start := time.Now()
			if _, err := flow.Run(ec, inc); err != nil {
				return bench, fmt.Errorf("harness: sat bench %s/%s: %w", name, recipe.Name, err)
			}
			fb.ElapsedMS += time.Since(start).Milliseconds()
			rep := ec.Report()
			const pass = "smartly_satmux"
			fb.Queries += rep.Counter(pass, "oracle_queries")
			fb.SATCalls += rep.Counter(pass, "sat_calls")
			fb.Encodings += rep.Counter(pass, "sat_encodings")
			fb.EncodeReuse += rep.Counter(pass, "sat_encode_reuse")
			fb.SolverReuse += rep.Counter(pass, "sat_solver_reuse")
			fb.LearntClauses += rep.Counter(pass, "sat_learnt")
			fb.SimFiltered += rep.Counter(pass, "oracle_sim_filtered")
			fb.SimVectors += rep.Counter(pass, "oracle_sim_vectors")
			fb.HintedSolves += rep.Counter(pass, "sat_hinted_solves")
			fb.PortfolioRetries += rep.Counter(pass, "sat_portfolio_retries")
			evictions := rep.Counter(pass, "sat_evictions")

			base := m.Clone()
			bc := opt.NewCtx(nil, opt.Config{})
			start = time.Now()
			if _, err := baseline.Run(bc, base); err != nil {
				return bench, fmt.Errorf("harness: sat bench baseline %s/%s: %w", name, recipe.Name, err)
			}
			fb.BaselineElapsedMS += time.Since(start).Milliseconds()
			baseRep := bc.Report()
			evictions += baseRep.Counter(pass, "sat_evictions")

			nf := m.Clone()
			nc := opt.NewCtx(nil, opt.Config{})
			start = time.Now()
			if _, err := unfiltered.Run(nc, nf); err != nil {
				return bench, fmt.Errorf("harness: sat bench sim_filter ablation %s/%s: %w", name, recipe.Name, err)
			}
			fb.NoFilterElapsedMS += time.Since(start).Milliseconds()
			nfRep := nc.Report()
			fb.NoFilterSATCalls += nfRep.Counter(pass, "sat_calls")
			evictions += nfRep.Counter(pass, "sat_evictions")
			fb.Evictions += evictions

			if rtlil.CanonicalHash(inc) != rtlil.CanonicalHash(base) ||
				rtlil.CanonicalHash(inc) != rtlil.CanonicalHash(nf) {
				// With no budget trips every SAT verdict was a proof (and
				// every pre-filter skip a concrete witness), all three
				// oracles decided the same constants and the rewrites are
				// forced: divergence is a bug. After a trip it is a
				// legitimate learnt-clause effect, recorded rather than
				// fatal.
				if evictions == 0 {
					return bench, fmt.Errorf("harness: sat bench %s/%s: oracle variant netlists differ with no budget-tripped queries",
						name, recipe.Name)
				}
				fb.NetlistsEqual = false
			}
		}
		bench.Flows = append(bench.Flows, fb)
	}
	return bench, nil
}

// String renders the section for the human-readable bench output.
func (b SatBench) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Incremental SAT oracle (scale %g, public benchmark set)\n", b.Scale)
	fmt.Fprintf(&sb, "%-8s %9s %9s %11s %12s %10s %10s %12s\n",
		"Flow", "Queries", "SATCalls", "SimFiltered", "SolverReuse", "Elapsed", "NoFilter", "Baseline")
	for _, f := range b.Flows {
		fmt.Fprintf(&sb, "%-8s %9d %9d %11d %12d %9dms %9dms %10dms\n",
			f.Flow, f.Queries, f.SATCalls, f.SimFiltered, f.SolverReuse,
			f.ElapsedMS, f.NoFilterElapsedMS, f.BaselineElapsedMS)
	}
	return sb.String()
}
