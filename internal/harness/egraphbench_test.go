package harness

import (
	"encoding/json"
	"testing"
)

// TestRunEgraphBench runs the e-graph section at the smallest scale:
// the datapath flow must beat both the yosys baseline and the
// pre-egraph full pipeline on every case (the section's reason to
// exist — these designs used to win nothing), every shipped rewrite
// must have been proved, and the section must round-trip through the
// bench JSON.
func TestRunEgraphBench(t *testing.T) {
	if testing.Short() {
		t.Skip("SAT-heavy (per-cone proofs); skipped under -short")
	}
	b, err := RunEgraphBench(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Cases) == 0 {
		t.Fatal("no datapath cases")
	}
	for _, c := range b.Cases {
		if c.OriginalArea == 0 {
			t.Errorf("%s: no original area", c.Name)
		}
		if c.Verified == 0 {
			t.Errorf("%s: datapath flow proved no rewrites", c.Name)
		}
		if dp := c.ReductionPct["datapath"]; dp <= c.ReductionPct["full_noegraph"] ||
			dp <= c.ReductionPct[FlowYosys] {
			t.Errorf("%s: datapath (%.1f%%) does not beat yosys (%.1f%%) and the pre-egraph full (%.1f%%)",
				c.Name, dp, c.ReductionPct[FlowYosys], c.ReductionPct["full_noegraph"])
		}
		if c.Areas[FlowFull] > c.Areas["datapath"] {
			t.Errorf("%s: full (%d) worse than datapath (%d)",
				c.Name, c.Areas[FlowFull], c.Areas["datapath"])
		}
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back EgraphBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cases[0].Verified != b.Cases[0].Verified {
		t.Error("bench section does not round-trip through JSON")
	}
	if b.String() == "" {
		t.Error("empty human-readable rendering")
	}
}
