package harness

import (
	"encoding/json"
	"testing"
)

// TestRunSatBench runs the incremental-oracle section at a tiny scale:
// the counters must be populated, the baseline comparison must pass
// (RunSatBench errors on any netlist divergence), and the section must
// round-trip through the bench JSON.
func TestRunSatBench(t *testing.T) {
	if testing.Short() {
		t.Skip("SAT-heavy; skipped under -short")
	}
	b, err := RunSatBench([]string{FlowSAT, FlowFull}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(b.Flows))
	}
	for _, f := range b.Flows {
		if f.Queries == 0 {
			t.Errorf("%s: no oracle queries recorded", f.Flow)
		}
		if !f.NetlistsEqual && f.Evictions == 0 {
			t.Errorf("%s: netlists diverged with no budget-tripped queries", f.Flow)
		}
		if f.SimFiltered == 0 {
			t.Errorf("%s: simulation pre-filter decided no queries", f.Flow)
		}
		if f.SimVectors == 0 {
			t.Errorf("%s: no simulation vectors recorded", f.Flow)
		}
		if f.SATCalls >= f.NoFilterSATCalls {
			t.Errorf("%s: pre-filter did not reduce SAT calls: %d filtered vs %d unfiltered",
				f.Flow, f.SATCalls, f.NoFilterSATCalls)
		}
	}
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var back SatBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Flows[0].Queries != b.Flows[0].Queries {
		t.Error("bench section does not round-trip through JSON")
	}
	if b.String() == "" {
		t.Error("empty human-readable rendering")
	}
}

// TestRunSatBenchUnknownFlow: an unregistered flow name is an error, not
// a silent empty section.
func TestRunSatBenchUnknownFlow(t *testing.T) {
	if _, err := RunSatBench([]string{"bogus"}, 0.05); err == nil {
		t.Fatal("unknown flow accepted")
	}
}
