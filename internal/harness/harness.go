package harness

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/aig"
	"repro/internal/cec"
	_ "repro/internal/core" // registers the smaRTLy passes and named flows
	"repro/internal/genbench"
	"repro/internal/opt"
)

// FlowSpec is one flow measured by the harness: a short column name and
// the compiled flow to run.
type FlowSpec struct {
	Name string
	Flow *opt.Flow
}

// The canonical flow names of the paper's evaluation.
const (
	FlowYosys   = "yosys"
	FlowSAT     = "sat"
	FlowRebuild = "rebuild"
	FlowFull    = "full"
)

// DefaultFlows returns the four pipelines compared in the paper's
// Tables II and III, as registered named flows.
func DefaultFlows() []FlowSpec {
	names := []string{FlowYosys, FlowSAT, FlowRebuild, FlowFull}
	out := make([]FlowSpec, 0, len(names))
	for _, name := range names {
		f, err := opt.NamedFlow(name)
		if err != nil {
			panic(fmt.Sprintf("harness: built-in flow %q missing: %v", name, err))
		}
		out = append(out, FlowSpec{Name: name, Flow: f})
	}
	return out
}

// ParseFlows parses "name=script" (or bare named-flow "name") specs
// from a CLI into FlowSpecs.
func ParseFlows(specs []string) ([]FlowSpec, error) {
	out := make([]FlowSpec, 0, len(specs))
	seen := map[string]bool{}
	for _, s := range specs {
		name, script, hasScript := strings.Cut(s, "=")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("harness: flow spec %q has no name", s)
		}
		if seen[name] {
			return nil, fmt.Errorf("harness: duplicate flow name %q (names key the result areas)", name)
		}
		seen[name] = true
		var f *opt.Flow
		var err error
		if hasScript {
			f, err = opt.ParseFlow(script)
		} else {
			f, err = opt.NamedFlow(name)
		}
		if err != nil {
			return nil, fmt.Errorf("harness: flow %q: %w", name, err)
		}
		out = append(out, FlowSpec{Name: name, Flow: f})
	}
	return out, nil
}

// CaseResult holds the measured areas for one benchmark case, keyed by
// flow name.
type CaseResult struct {
	Name     string
	Original int
	Areas    map[string]int
	Elapsed  time.Duration
}

// Area returns the optimized area of the named flow (0 if it did not
// run).
func (c CaseResult) Area(flow string) int { return c.Areas[flow] }

// Ratio is the extra reduction of flow vs base in percent.
func (c CaseResult) Ratio(base, flow string) float64 {
	return ratio(c.Areas[base], c.Areas[flow])
}

// RatioSAT is Table III's "SAT" column: extra reduction vs Yosys in %.
func (c CaseResult) RatioSAT() float64 { return c.Ratio(FlowYosys, FlowSAT) }

// RatioRebuild is Table III's "Rebuild" column.
func (c CaseResult) RatioRebuild() float64 { return c.Ratio(FlowYosys, FlowRebuild) }

// RatioFull is the Table II/III "Full" ratio.
func (c CaseResult) RatioFull() float64 { return c.Ratio(FlowYosys, FlowFull) }

// equalAreas reports whether two results measured identical areas.
func equalAreas(a, b CaseResult) bool {
	if a.Name != b.Name || a.Original != b.Original || len(a.Areas) != len(b.Areas) {
		return false
	}
	for k, v := range a.Areas {
		if b.Areas[k] != v {
			return false
		}
	}
	return true
}

func ratio(base, opt int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-opt) / float64(base)
}

// Options configures a harness run.
type Options struct {
	// Scale multiplies the calibrated block counts (1.0 = calibrated
	// size; the paper's absolute circuit sizes are ~100x larger).
	Scale float64
	// Flows are the optimization flows to measure; nil means
	// DefaultFlows (the paper's four pipelines). Flow names must be
	// unique: they key the result areas.
	Flows []FlowSpec
	// Check runs combinational equivalence checking on every
	// optimized netlist (slow; intended for tests and small scales).
	Check bool
	// Verbose prints progress via Logf. The harness may call it from
	// several goroutines; withDefaults wraps it in a mutex.
	Logf func(format string, args ...any)
	// Jobs bounds how many benchmark cases (and, within one case, how
	// many of the flows) run concurrently. 0 means
	// runtime.GOMAXPROCS(0); 1 forces the sequential path. Results are
	// identical for every value.
	Jobs int
	// Workers is the per-optimization worker budget forwarded to the
	// pass engine (parallel SAT-mux queries). 0 means GOMAXPROCS.
	Workers int
	// Context cancels a run early; nil means context.Background().
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Flows == nil {
		o.Flows = DefaultFlows()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	} else {
		var mu sync.Mutex
		logf := o.Logf
		o.Logf = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			logf(format, args...)
		}
	}
	if o.Jobs <= 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	return o
}

// perCase derives the options a case-level sweep (RunAll/RunIndustrial)
// hands to each RunCase: when the cases themselves run concurrently they
// already occupy the job budget, so each case runs sequentially inside —
// "-j N" means roughly N concurrent workers in total, not N*4*N.
// Explicitly set Workers are respected.
func (o Options) perCase() Options {
	inner := o
	if inner.Jobs > 1 {
		inner.Jobs = 1
		if inner.Workers == 0 {
			inner.Workers = 1
		}
	}
	return inner
}

// RunCase generates one case and measures every configured flow.
func RunCase(r genbench.Recipe, o Options) (CaseResult, error) {
	o = o.withDefaults()
	start := time.Now()
	res := CaseResult{Name: r.Name, Areas: map[string]int{}}

	m := genbench.Generate(r, o.Scale)
	if err := m.Validate(); err != nil {
		return res, fmt.Errorf("harness: generated %s invalid: %w", r.Name, err)
	}
	var err error
	res.Original, err = aig.Area(m)
	if err != nil {
		return res, err
	}

	// The flows each optimize a private clone, so they run concurrently;
	// every area lands in its own slot, keeping the result independent
	// of scheduling. An unset Workers budget is shared between the
	// concurrent flows rather than multiplied by them.
	flows := o.Flows
	workers := o.Workers
	if workers == 0 && o.Jobs > 1 {
		workers = max(1, runtime.GOMAXPROCS(0)/len(flows))
	}
	areas := make([]int, len(flows))
	errs := make([]error, len(flows))
	opt.ForEach(o.Context, o.Jobs, len(flows), func(i int) {
		fs := flows[i]
		work := m.Clone()
		ec := opt.NewCtx(o.Context, opt.Config{Workers: workers})
		if _, err := fs.Flow.Run(ec, work); err != nil {
			errs[i] = fmt.Errorf("harness: %s/%s: %w", r.Name, fs.Name, err)
			return
		}
		if o.Check {
			if err := cec.Check(m, work, nil); err != nil {
				errs[i] = fmt.Errorf("harness: %s/%s not equivalent: %w", r.Name, fs.Name, err)
				return
			}
		}
		a, err := aig.Area(work)
		if err != nil {
			errs[i] = err
			return
		}
		areas[i] = a
		o.Logf("%s/%s: area %d (original %d)", r.Name, fs.Name, a, res.Original)
	})
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	if err := o.Context.Err(); err != nil {
		return res, err
	}
	for i, fs := range flows {
		res.Areas[fs.Name] = areas[i]
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunAll measures every public-benchmark case, up to Options.Jobs of
// them concurrently. The result order (and every number in it) is
// independent of the job count.
func RunAll(o Options) ([]CaseResult, error) {
	o = o.withDefaults()
	recipes := genbench.Recipes()
	out := make([]CaseResult, len(recipes))
	errs := make([]error, len(recipes))
	inner := o.perCase()
	opt.ForEach(o.Context, o.Jobs, len(recipes), func(i int) {
		out[i], errs[i] = RunCase(recipes[i], inner)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, o.Context.Err()
}

// Averages computes the per-column averages used in the tables' last row.
func Averages(results []CaseResult) CaseResult {
	avg := CaseResult{Name: "Average", Areas: map[string]int{}}
	n := len(results)
	if n == 0 {
		return avg
	}
	sums := map[string]int{}
	for _, r := range results {
		avg.Original += r.Original
		for k, v := range r.Areas {
			sums[k] += v
		}
	}
	avg.Original /= n
	for k, v := range sums {
		avg.Areas[k] = v / n
	}
	return avg
}

// TableII renders the paper's Table II: Original / Yosys / smaRTLy
// areas and the extra-reduction ratio.
func TableII(results []CaseResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II: AIG areas, Yosys vs smaRTLy (scaled reproduction)\n")
	fmt.Fprintf(&sb, "%-15s %10s %10s %10s %8s\n", "Case", "Original", "Yosys", "smaRTLy", "Ratio")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-15s %10d %10d %10d %7.2f%%\n",
			r.Name, r.Original, r.Area(FlowYosys), r.Area(FlowFull), r.RatioFull())
	}
	avg := Averages(results)
	fmt.Fprintf(&sb, "%-15s %10d %10d %10d %7.2f%%\n",
		avg.Name, avg.Original, avg.Area(FlowYosys), avg.Area(FlowFull), avgRatioFull(results))
	return sb.String()
}

// TableIII renders the paper's Table III: per-method reductions.
func TableIII(results []CaseResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III: reduction by individual methods and combined\n")
	fmt.Fprintf(&sb, "%-15s %8s %8s %8s\n", "Case", "SAT", "Rebuild", "Full")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-15s %7.2f%% %7.2f%% %7.2f%%\n",
			r.Name, r.RatioSAT(), r.RatioRebuild(), r.RatioFull())
	}
	fmt.Fprintf(&sb, "%-15s %7.2f%% %7.2f%% %7.2f%%\n", "Average",
		avgOf(results, CaseResult.RatioSAT),
		avgOf(results, CaseResult.RatioRebuild),
		avgOf(results, CaseResult.RatioFull))
	return sb.String()
}

// TableFlows renders a generic area table for an arbitrary flow set:
// one column per flow plus the reduction of the last flow vs the first.
func TableFlows(results []CaseResult, flows []FlowSpec) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-15s %10s", "Case", "Original")
	for _, f := range flows {
		fmt.Fprintf(&sb, " %10s", f.Name)
	}
	if len(flows) >= 2 {
		fmt.Fprintf(&sb, " %8s", "Ratio")
	}
	sb.WriteByte('\n')
	rows := append([]CaseResult{}, results...)
	rows = append(rows, Averages(results))
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %10d", r.Name, r.Original)
		for _, f := range flows {
			fmt.Fprintf(&sb, " %10d", r.Area(f.Name))
		}
		if len(flows) >= 2 {
			fmt.Fprintf(&sb, " %7.2f%%", r.Ratio(flows[0].Name, flows[len(flows)-1].Name))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func avgRatioFull(results []CaseResult) float64 {
	return avgOf(results, CaseResult.RatioFull)
}

func avgOf(results []CaseResult, f func(CaseResult) float64) float64 {
	if len(results) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range results {
		sum += f(r)
	}
	return sum / float64(len(results))
}

// IndustrialResult summarizes the §IV-B experiment.
type IndustrialResult struct {
	Points   []CaseResult
	AvgExtra float64 // average extra reduction vs Yosys, %
}

// RunIndustrial measures n industrial test points, up to Options.Jobs
// of them concurrently.
func RunIndustrial(n int, o Options) (IndustrialResult, error) {
	o = o.withDefaults()
	out := IndustrialResult{Points: make([]CaseResult, n)}
	errs := make([]error, n)
	inner := o.perCase()
	opt.ForEach(o.Context, o.Jobs, n, func(i int) {
		out.Points[i], errs[i] = RunCase(genbench.IndustrialRecipe(i), inner)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	if err := o.Context.Err(); err != nil {
		return out, err
	}
	out.AvgExtra = avgOf(out.Points, CaseResult.RatioFull)
	return out, nil
}

// IndustrialSummary renders the §IV-B report.
func (r IndustrialResult) IndustrialSummary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Industrial benchmark (scaled reproduction, %d test points)\n", len(r.Points))
	fmt.Fprintf(&sb, "%-15s %10s %10s %10s %8s\n", "Point", "Original", "Yosys", "smaRTLy", "Extra")
	for i, p := range r.Points {
		fmt.Fprintf(&sb, "point-%-9d %10d %10d %10d %7.2f%%\n",
			i, p.Original, p.Area(FlowYosys), p.Area(FlowFull), p.RatioFull())
	}
	fmt.Fprintf(&sb, "smaRTLy removes %.1f%% more AIG area than Yosys (paper: 47.2%%)\n", r.AvgExtra)
	return sb.String()
}
