// Package bdd implements the Algebraic Decision Diagram (ADD) machinery
// used by smaRTLy's muxtree restructuring (paper §III).
//
// An ADD generalizes a BDD from {0,1} terminals to an arbitrary finite
// terminal set — here, the data words of a case statement. The package
// builds ADDs from priority pattern tables (the rows of a case/casez
// statement) with the paper's greedy variable-selection heuristic: at
// every node pick the selector bit that minimizes the total number of
// distinct terminals in the two cofactors. Nodes are hash-consed, so
// shared sub-functions are represented once and CountNodes reports the
// number of 2:1 multiplexers a rebuilt tree needs.
package bdd

import (
	"fmt"
	"sort"
	"strings"
)

// PatBit is one position of a match pattern.
type PatBit uint8

// Pattern bit values. Any matches both 0 and 1 (a casez "z" position).
const (
	Zero PatBit = iota
	One
	Any
)

// Pattern is one row of a priority match table: the first pattern whose
// Bits match the selector wins and yields Term.
type Pattern struct {
	Bits []PatBit
	Term int
}

// Node is an ADD node: either a leaf holding Term, or an internal
// decision on selector bit Var with Lo (Var=0) and Hi (Var=1) children.
type Node struct {
	Var    int
	Lo, Hi *Node
	Term   int
	leaf   bool
}

// IsLeaf reports whether the node is a terminal.
func (n *Node) IsLeaf() bool { return n.leaf }

// CountNodes returns the number of distinct internal (decision) nodes —
// the number of 2:1 muxes needed to implement the ADD.
func (n *Node) CountNodes() int {
	seen := map[*Node]bool{}
	var walk func(*Node) int
	walk = func(x *Node) int {
		if x == nil || x.leaf || seen[x] {
			return 0
		}
		seen[x] = true
		return 1 + walk(x.Lo) + walk(x.Hi)
	}
	return walk(n)
}

// CountTreeNodes returns the number of decision nodes when the ADD is
// expanded into a tree (shared sub-functions counted at every use). This
// is the mux count of a naive rebuild without hardware sharing, the
// figure the paper quotes for bad variable assignments.
func (n *Node) CountTreeNodes() int {
	if n == nil || n.leaf {
		return 0
	}
	return 1 + n.Lo.CountTreeNodes() + n.Hi.CountTreeNodes()
}

// Depth returns the longest decision path length.
func (n *Node) Depth() int {
	if n == nil || n.leaf {
		return 0
	}
	lo, hi := n.Lo.Depth(), n.Hi.Depth()
	if hi > lo {
		lo = hi
	}
	return lo + 1
}

// Terminals returns the set of terminal ids reachable from n, sorted.
func (n *Node) Terminals() []int {
	set := map[int]bool{}
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if x.leaf {
			set[x.Term] = true
			return
		}
		walk(x.Lo)
		walk(x.Hi)
	}
	walk(n)
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Eval resolves the ADD under a complete selector assignment.
func (n *Node) Eval(assign []bool) int {
	for !n.leaf {
		if assign[n.Var] {
			n = n.Hi
		} else {
			n = n.Lo
		}
	}
	return n.Term
}

// EvalPatterns resolves a priority pattern table directly (reference
// semantics for tests): the first matching row wins; ok is false if no
// row matches.
func EvalPatterns(patterns []Pattern, assign []bool) (int, bool) {
	for _, p := range patterns {
		match := true
		for i, b := range p.Bits {
			if b == Any {
				continue
			}
			if (b == One) != assign[i] {
				match = false
				break
			}
		}
		if match {
			return p.Term, true
		}
	}
	return 0, false
}

// builder hash-conses nodes and memoizes pattern-list results.
type builder struct {
	nVars  int
	unique map[string]*Node
	leaves map[int]*Node
	memo   map[string]*Node
	order  []int // fixed order; nil = greedy
}

func (b *builder) leaf(term int) *Node {
	if n, ok := b.leaves[term]; ok {
		return n
	}
	n := &Node{Term: term, leaf: true}
	b.leaves[term] = n
	return n
}

func (b *builder) mk(v int, lo, hi *Node) *Node {
	if lo == hi {
		return lo
	}
	key := fmt.Sprintf("%d:%p:%p", v, lo, hi)
	if n, ok := b.unique[key]; ok {
		return n
	}
	n := &Node{Var: v, Lo: lo, Hi: hi}
	b.unique[key] = n
	return n
}

// patKey canonicalizes a pattern list for memoization.
func patKey(patterns []Pattern) string {
	var sb strings.Builder
	for _, p := range patterns {
		for _, bit := range p.Bits {
			sb.WriteByte("01z"[bit])
		}
		fmt.Fprintf(&sb, ">%d;", p.Term)
	}
	return sb.String()
}

// truncate drops rows shadowed by an earlier all-Any row (which always
// matches, making later rows unreachable).
func truncate(patterns []Pattern) []Pattern {
	for i, p := range patterns {
		allAny := true
		for _, bit := range p.Bits {
			if bit != Any {
				allAny = false
				break
			}
		}
		if allAny {
			return patterns[:i+1]
		}
	}
	return patterns
}

// cofactor restricts the table to var v = val, deduplicating shadowed rows.
func cofactor(patterns []Pattern, v int, val PatBit) []Pattern {
	var out []Pattern
	for _, p := range patterns {
		if p.Bits[v] != Any && p.Bits[v] != val {
			continue
		}
		np := Pattern{Bits: append([]PatBit(nil), p.Bits...), Term: p.Term}
		np.Bits[v] = Any
		out = append(out, np)
	}
	return truncate(out)
}

// reachableTerms computes the exact set of terminals reachable in a
// priority table, memoized (paper: the greedy count uses reachable
// terminals, e.g. a fully covered default drops out).
func (b *builder) reachableTerms(patterns []Pattern, memo map[string]map[int]bool) map[int]bool {
	patterns = truncate(patterns)
	if len(patterns) == 0 {
		return map[int]bool{}
	}
	key := patKey(patterns)
	if r, ok := memo[key]; ok {
		return r
	}
	// If the first row is all-Any it is the only reachable row.
	first := patterns[0]
	v := -1
	for i, bit := range first.Bits {
		if bit != Any {
			v = i
			break
		}
	}
	var out map[int]bool
	if v < 0 {
		out = map[int]bool{first.Term: true}
	} else {
		out = map[int]bool{}
		for t := range b.reachableTerms(cofactor(patterns, v, Zero), memo) {
			out[t] = true
		}
		for t := range b.reachableTerms(cofactor(patterns, v, One), memo) {
			out[t] = true
		}
	}
	memo[key] = out
	return out
}

func (b *builder) build(patterns []Pattern, depth int, terms map[string]map[int]bool) *Node {
	patterns = truncate(patterns)
	if len(patterns) == 0 {
		// No row matches: the function is unspecified; reuse terminal
		// of an arbitrary leaf (callers always provide a default row,
		// so this is unreachable in practice).
		return b.leaf(0)
	}
	key := patKey(patterns)
	if n, ok := b.memo[key]; ok {
		return n
	}
	reach := b.reachableTerms(patterns, terms)
	if len(reach) == 1 {
		for t := range reach {
			n := b.leaf(t)
			b.memo[key] = n
			return n
		}
	}

	v := b.chooseVar(patterns, depth, terms)
	lo := b.build(cofactor(patterns, v, Zero), depth+1, terms)
	hi := b.build(cofactor(patterns, v, One), depth+1, terms)
	n := b.mk(v, lo, hi)
	b.memo[key] = n
	return n
}

// chooseVar implements the paper's heuristic: pick the selector bit
// minimizing the total number of distinct reachable terminals of the two
// cofactors. With a fixed order, pick the next constrained variable.
func (b *builder) chooseVar(patterns []Pattern, depth int, terms map[string]map[int]bool) int {
	constrained := map[int]bool{}
	for _, p := range patterns {
		for i, bit := range p.Bits {
			if bit != Any {
				constrained[i] = true
			}
		}
	}
	if b.order != nil {
		for _, v := range b.order {
			if constrained[v] {
				return v
			}
		}
		// Fall back to the first constrained var.
	}
	best, bestCost := -1, 1<<30
	for v := 0; v < b.nVars; v++ {
		if !constrained[v] {
			continue
		}
		if b.order != nil {
			return v
		}
		c0 := len(b.reachableTerms(cofactor(patterns, v, Zero), terms))
		c1 := len(b.reachableTerms(cofactor(patterns, v, One), terms))
		if c0+c1 < bestCost {
			best, bestCost = v, c0+c1
		}
	}
	return best
}

// BuildGreedy constructs an ADD for the priority table using the paper's
// terminal-type-minimizing heuristic. nVars is the selector width; every
// Pattern must have exactly nVars bits, and the table should end with a
// default (all-Any) row.
func BuildGreedy(patterns []Pattern, nVars int) *Node {
	return buildWith(patterns, nVars, nil)
}

// BuildOrdered constructs an ADD testing variables in the given fixed
// order (used by the heuristic-ablation benchmarks).
func BuildOrdered(patterns []Pattern, nVars int, order []int) *Node {
	return buildWith(patterns, nVars, order)
}

func buildWith(patterns []Pattern, nVars int, order []int) *Node {
	for _, p := range patterns {
		if len(p.Bits) != nVars {
			panic(fmt.Sprintf("bdd: pattern has %d bits, want %d", len(p.Bits), nVars))
		}
	}
	b := &builder{
		nVars:  nVars,
		unique: map[string]*Node{},
		leaves: map[int]*Node{},
		memo:   map[string]*Node{},
		order:  order,
	}
	return b.build(append([]Pattern(nil), patterns...), 0, map[string]map[int]bool{})
}

// ParsePattern converts a Verilog-style pattern string (MSB first, using
// 0, 1, z/?) into pattern bits (LSB first).
func ParsePattern(s string, term int) Pattern {
	bits := make([]PatBit, len(s))
	for i, ch := range s {
		var b PatBit
		switch ch {
		case '0':
			b = Zero
		case '1':
			b = One
		case 'z', 'Z', '?', 'x', 'X':
			b = Any
		default:
			panic(fmt.Sprintf("bdd: bad pattern char %q", ch))
		}
		bits[len(s)-1-i] = b
	}
	return Pattern{Bits: bits, Term: term}
}
