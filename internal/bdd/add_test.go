package bdd

import (
	"math/rand"
	"testing"
)

// TestListing1 reproduces the paper's Listing 1: a full 2-bit decoded
// case needs exactly 3 muxes (Figure 7).
func TestListing1(t *testing.T) {
	patterns := []Pattern{
		ParsePattern("00", 0),
		ParsePattern("01", 1),
		ParsePattern("10", 2),
		ParsePattern("zz", 3), // default
	}
	n := BuildGreedy(patterns, 2)
	if got := n.CountNodes(); got != 3 {
		t.Errorf("Listing 1 ADD size = %d muxes, want 3", got)
	}
	checkAgainstTable(t, n, patterns, 2)
}

// TestListing2 reproduces the paper's Listing 2: the good assignment
// (S2 down to S0) yields 3 muxes, the bad one (S0 up to S2) yields 7.
func TestListing2(t *testing.T) {
	patterns := []Pattern{
		ParsePattern("1zz", 0),
		ParsePattern("01z", 1),
		ParsePattern("001", 2),
		ParsePattern("zzz", 3),
	}
	good := BuildOrdered(patterns, 3, []int{2, 1, 0})
	if got := good.CountNodes(); got != 3 {
		t.Errorf("good order = %d muxes, want 3", got)
	}
	// The paper's count of 7 for the bad order is the unshared tree;
	// hash-consing shares one sub-function, leaving 6 distinct nodes.
	bad := BuildOrdered(patterns, 3, []int{0, 1, 2})
	if got := bad.CountTreeNodes(); got != 7 {
		t.Errorf("bad order tree = %d muxes, want 7", got)
	}
	if got := bad.CountNodes(); got != 6 {
		t.Errorf("bad order shared = %d muxes, want 6", got)
	}
	// The greedy heuristic must find the good assignment (paper: "the
	// algorithm can obtain the optimal solution ... in most cases").
	greedy := BuildGreedy(patterns, 3)
	if got := greedy.CountNodes(); got != 3 {
		t.Errorf("greedy = %d muxes, want 3", got)
	}
	checkAgainstTable(t, greedy, patterns, 3)
	checkAgainstTable(t, bad, patterns, 3)
}

// TestPaperCofactorCounts checks the exact terminal counts the paper
// quotes for Listing 2: selecting S2 gives 4 types (left {p1,p2,p3},
// right {p0}); selecting S0 gives 6 (left {p0,p1,p3}, right {p0,p1,p2}).
func TestPaperCofactorCounts(t *testing.T) {
	patterns := []Pattern{
		ParsePattern("1zz", 0),
		ParsePattern("01z", 1),
		ParsePattern("001", 2),
		ParsePattern("zzz", 3),
	}
	b := &builder{nVars: 3, unique: map[string]*Node{}, leaves: map[int]*Node{}, memo: map[string]*Node{}}
	memo := map[string]map[int]bool{}
	count := func(v int, val PatBit) int {
		return len(b.reachableTerms(cofactor(patterns, v, val), memo))
	}
	if lo, hi := count(2, Zero), count(2, One); lo != 3 || hi != 1 {
		t.Errorf("S2 cofactors: %d + %d types, want 3 + 1", lo, hi)
	}
	if lo, hi := count(0, Zero), count(0, One); lo != 3 || hi != 3 {
		t.Errorf("S0 cofactors: %d + %d types, want 3 + 3", lo, hi)
	}
}

func TestDefaultDropsWhenCovered(t *testing.T) {
	// Rows cover the whole 1-bit space: default is unreachable.
	patterns := []Pattern{
		ParsePattern("0", 0),
		ParsePattern("1", 1),
		ParsePattern("z", 2),
	}
	n := BuildGreedy(patterns, 1)
	terms := n.Terminals()
	if len(terms) != 2 || terms[0] != 0 || terms[1] != 1 {
		t.Errorf("terminals = %v, want [0 1]", terms)
	}
}

func TestSharedSubfunctions(t *testing.T) {
	// f(s1,s0) = s0 ? A : B regardless of s1 — hash-consing must share
	// the sub-ADD, giving 1 node, not 2.
	patterns := []Pattern{
		ParsePattern("z1", 0),
		ParsePattern("z0", 1),
	}
	n := BuildGreedy(patterns, 2)
	if got := n.CountNodes(); got != 1 {
		t.Errorf("CountNodes = %d, want 1", got)
	}
}

func TestDepth(t *testing.T) {
	patterns := []Pattern{
		ParsePattern("00", 0),
		ParsePattern("01", 1),
		ParsePattern("10", 2),
		ParsePattern("11", 3),
	}
	n := BuildGreedy(patterns, 2)
	if n.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", n.Depth())
	}
	if n.CountNodes() != 3 {
		t.Errorf("CountNodes = %d, want 3", n.CountNodes())
	}
}

func TestLeafOnlyTable(t *testing.T) {
	patterns := []Pattern{ParsePattern("zz", 7)}
	n := BuildGreedy(patterns, 2)
	if !n.IsLeaf() || n.Term != 7 {
		t.Errorf("single-default table should be a leaf, got %+v", n)
	}
	if n.CountNodes() != 0 || n.Depth() != 0 {
		t.Error("leaf metrics wrong")
	}
}

func checkAgainstTable(t *testing.T, n *Node, patterns []Pattern, nVars int) {
	t.Helper()
	for mask := 0; mask < 1<<uint(nVars); mask++ {
		assign := make([]bool, nVars)
		for i := range assign {
			assign[i] = (mask>>uint(i))&1 == 1
		}
		want, ok := EvalPatterns(patterns, assign)
		if !ok {
			continue
		}
		if got := n.Eval(assign); got != want {
			t.Errorf("assign %0*b: ADD=%d table=%d", nVars, mask, got, want)
		}
	}
}

// TestQuickADDAgreesWithTable builds random priority tables and verifies
// the ADD agrees with direct table evaluation on every assignment.
func TestQuickADDAgreesWithTable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		nVars := 1 + rng.Intn(5)
		nRows := 1 + rng.Intn(6)
		var patterns []Pattern
		for r := 0; r < nRows; r++ {
			bits := make([]PatBit, nVars)
			for i := range bits {
				bits[i] = PatBit(rng.Intn(3))
			}
			patterns = append(patterns, Pattern{Bits: bits, Term: rng.Intn(4)})
		}
		// Always terminate with a default row.
		patterns = append(patterns, Pattern{Bits: make([]PatBit, nVars), Term: 9})
		for i := range patterns[len(patterns)-1].Bits {
			patterns[len(patterns)-1].Bits[i] = Any
		}
		n := BuildGreedy(patterns, nVars)
		checkAgainstTable(t, n, patterns, nVars)

		// A random fixed order must also be functionally correct.
		order := rng.Perm(nVars)
		no := BuildOrdered(patterns, nVars, order)
		checkAgainstTable(t, no, patterns, nVars)

		// Greedy should never be worse than the natural order by more
		// than a factor of 2 on these small tables (sanity bound).
		natural := BuildOrdered(patterns, nVars, naturalOrder(nVars))
		if n.CountNodes() > 2*natural.CountNodes()+1 {
			t.Errorf("trial %d: greedy %d vs natural %d nodes",
				trial, n.CountNodes(), natural.CountNodes())
		}
	}
}

func naturalOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - 1 - i
	}
	return out
}

func TestParsePattern(t *testing.T) {
	p := ParsePattern("10z", 5)
	// MSB first in the string: bit2=1, bit1=0, bit0=z.
	if p.Bits[2] != One || p.Bits[1] != Zero || p.Bits[0] != Any {
		t.Errorf("ParsePattern wrong: %v", p.Bits)
	}
	if p.Term != 5 {
		t.Error("term lost")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad pattern char did not panic")
		}
	}()
	ParsePattern("2", 0)
}
