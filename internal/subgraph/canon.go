package subgraph

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"

	"repro/internal/rtlil"
)

// Canon is the canonical, instance-independent form of an extracted
// sub-graph as seen from one target bit. It is the key of the incremental
// SAT oracle's cone cache: the Fingerprint hashes the complete structure
// (cell types, parameters, connectivity, constants and the target's
// position) under a deterministic enumeration, and Bits records which
// instance bit occupies each canonical slot.
//
// Two cones with equal fingerprints are structurally identical under the
// slot-for-slot correspondence of their Bits slices — the fingerprint is
// computed from nothing but slot numbers, so equal hash input implies the
// correspondence preserves every connection. That makes it sound to
// translate a bit of one instance to the same slot of another and reuse
// that instance's CNF encoding and solver. (Wire names never enter the
// description; renamed but otherwise untouched cones re-hit the cache
// across pass iterations.)
type Canon struct {
	// Fingerprint is the hex sha256 of the canonical description.
	Fingerprint string
	// Cells is the deterministic topological order (drivers before
	// readers) the description enumerates; encoders must map cells in
	// exactly this order for equal fingerprints to imply equal encodings.
	Cells []*rtlil.Cell
	// Bits lists the instance bits in canonical-slot order.
	Bits []rtlil.SigBit
	// TargetID is the canonical slot of the target bit, or -1 when the
	// target is not produced or read inside the cone.
	TargetID int

	ids map[rtlil.SigBit]int
}

// BitID returns the canonical slot of an instance bit of this cone.
func (c *Canon) BitID(b rtlil.SigBit) (int, bool) {
	id, ok := c.ids[b]
	return id, ok
}

// TopoCells orders the sub-graph cells so drivers precede readers. Ports
// are visited in the cell library's fixed order (not the Conn map's) so
// the ordering — and hence AIG and SAT variable numbering — is
// deterministic for a given input order.
func TopoCells(ix *rtlil.Index, cells []*rtlil.Cell) []*rtlil.Cell {
	inSet := make(map[*rtlil.Cell]bool, len(cells))
	for _, c := range cells {
		inSet[c] = true
	}
	order := make([]*rtlil.Cell, 0, len(cells))
	state := map[*rtlil.Cell]int8{}
	var visit func(c *rtlil.Cell)
	visit = func(c *rtlil.Cell) {
		if state[c] != 0 {
			return
		}
		state[c] = 1
		for _, port := range rtlil.InputPorts(c.Type) {
			for _, b := range ix.Map(c.Port(port)) {
				if b.IsConst() {
					continue
				}
				if d := ix.DriverCell(b); d != nil && inSet[d] {
					visit(d)
				}
			}
		}
		state[c] = 2
		order = append(order, c)
	}
	for _, c := range cells {
		visit(c)
	}
	return order
}

// Canonicalize computes the canonical form of an extracted sub-graph
// around target. The enumeration walks the cells in topological order and
// assigns slot numbers to non-constant bits on first encounter, so the
// description depends only on structure reachable through that walk, not
// on wire identities.
func Canonicalize(ix *rtlil.Index, sg *Result, target rtlil.SigBit) *Canon {
	return canonicalize(ix, sg, target, true)
}

// Slots computes only the slot assignment (Fingerprint left empty), for
// one-shot encodings that need the bit-to-slot translation but will
// never share it — the hashing of the cone description is the bulk of
// Canonicalize's cost.
func Slots(ix *rtlil.Index, sg *Result, target rtlil.SigBit) *Canon {
	return canonicalize(ix, sg, target, false)
}

func canonicalize(ix *rtlil.Index, sg *Result, target rtlil.SigBit, fingerprint bool) *Canon {
	c := &Canon{
		Cells:    TopoCells(ix, sg.Cells),
		TargetID: -1,
		ids:      make(map[rtlil.SigBit]int),
	}
	// The description is appended into one buffer and hashed once at the
	// end: this runs for every SAT-bound query, so no fmt formatting on
	// the hot path.
	var desc []byte
	slot := func(b rtlil.SigBit) int {
		if id, ok := c.ids[b]; ok {
			return id
		}
		id := len(c.Bits)
		c.ids[b] = id
		c.Bits = append(c.Bits, b)
		return id
	}
	writeBit := func(b rtlil.SigBit) {
		if b.IsConst() {
			if fingerprint {
				desc = append(desc, " k"...)
				desc = append(desc, b.Const.String()...)
			}
			return
		}
		id := slot(b)
		if fingerprint {
			desc = append(desc, ' ')
			desc = strconv.AppendInt(desc, int64(id), 10)
		}
	}
	for _, cell := range c.Cells {
		if fingerprint {
			desc = append(desc, "cell "...)
			desc = append(desc, cell.Type...)
			params := make([]string, 0, len(cell.Params))
			for k := range cell.Params {
				params = append(params, k)
			}
			sort.Strings(params)
			for _, k := range params {
				desc = append(desc, ' ')
				desc = append(desc, k...)
				desc = append(desc, '=')
				desc = strconv.AppendInt(desc, int64(cell.Params[k]), 10)
			}
		}
		for _, port := range rtlil.InputPorts(cell.Type) {
			if fingerprint {
				desc = append(desc, ' ')
				desc = append(desc, port...)
				desc = append(desc, ':')
			}
			for _, b := range ix.Map(cell.Port(port)) {
				writeBit(b)
			}
		}
		for _, port := range rtlil.OutputPorts(cell.Type) {
			if fingerprint {
				desc = append(desc, ' ')
				desc = append(desc, port...)
				desc = append(desc, ':')
			}
			for _, b := range ix.Map(cell.Port(port)) {
				writeBit(b)
			}
		}
		if fingerprint {
			desc = append(desc, '\n')
		}
	}
	// Free inputs in their canonical order: encoders declare these as the
	// AIG primary inputs, so their enumeration is part of the structure.
	if fingerprint {
		desc = append(desc, "inputs:"...)
	}
	for _, b := range sg.Inputs {
		writeBit(b)
	}
	if id, ok := c.ids[ix.MapBit(target)]; ok {
		c.TargetID = id
	}
	if fingerprint {
		desc = append(desc, "\ntarget "...)
		desc = strconv.AppendInt(desc, int64(c.TargetID), 10)
		desc = append(desc, '\n')
		sum := sha256.Sum256(desc)
		c.Fingerprint = hex.EncodeToString(sum[:])
	}
	return c
}
