package subgraph

import (
	"testing"

	"repro/internal/rtlil"
)

// buildCmpCone builds one module with a small comparator cone
//
//	y = (a == k) & (b | c)
//
// using the given wire-name prefix and constant, and returns the module
// with the target bit (the AND output).
func buildCmpCone(prefix string, k uint64) (*rtlil.Module, rtlil.SigBit) {
	m := rtlil.NewModule("m_" + prefix)
	a := m.AddInput(prefix+"a", 4).Bits()
	b := m.AddInput(prefix+"b", 1).Bits()
	c := m.AddInput(prefix+"c", 1).Bits()
	eq := m.Eq(a, rtlil.Const(k, 4))
	or := m.Or(b, c)
	tg := m.And(eq, or)
	y := m.AddOutput(prefix+"y", 1)
	m.Connect(y.Bits(), tg)
	return m, tg[0]
}

func extractAndCanon(t *testing.T, m *rtlil.Module, tg rtlil.SigBit) (*rtlil.Index, *Result, *Canon) {
	t.Helper()
	ix := rtlil.NewIndex(m)
	sg := Extract(ix, tg, nil, Options{Depth: 10})
	if len(sg.Cells) == 0 {
		t.Fatal("empty sub-graph")
	}
	return ix, sg, Canonicalize(ix, sg, tg)
}

// TestCanonIsomorphicCones: two cones that differ only in wire names and
// module identity produce equal fingerprints, with the canonical slots
// relating corresponding bits.
func TestCanonIsomorphicCones(t *testing.T) {
	m1, tg1 := buildCmpCone("first_", 5)
	m2, tg2 := buildCmpCone("other_", 5)
	_, sg1, c1 := extractAndCanon(t, m1, tg1)
	_, sg2, c2 := extractAndCanon(t, m2, tg2)

	if c1.Fingerprint != c2.Fingerprint {
		t.Fatalf("isomorphic cones differ:\n%s\n%s", c1.Fingerprint, c2.Fingerprint)
	}
	if c1.TargetID < 0 || c1.TargetID != c2.TargetID {
		t.Fatalf("target slots differ: %d vs %d", c1.TargetID, c2.TargetID)
	}
	if len(c1.Bits) != len(c2.Bits) {
		t.Fatalf("slot counts differ: %d vs %d", len(c1.Bits), len(c2.Bits))
	}
	// Corresponding inputs occupy the same slots.
	if len(sg1.Inputs) != len(sg2.Inputs) {
		t.Fatalf("input counts differ")
	}
	for i := range sg1.Inputs {
		id1, ok1 := c1.BitID(sg1.Inputs[i])
		id2, ok2 := c2.BitID(sg2.Inputs[i])
		if !ok1 || !ok2 || id1 != id2 {
			t.Errorf("input %d: slots %d/%v vs %d/%v", i, id1, ok1, id2, ok2)
		}
	}
}

// TestCanonDistinguishesConstants: same structure, different constant
// value — the fingerprints must differ (sharing an encoding across them
// would be unsound).
func TestCanonDistinguishesConstants(t *testing.T) {
	m1, tg1 := buildCmpCone("p_", 5)
	m2, tg2 := buildCmpCone("q_", 6)
	_, _, c1 := extractAndCanon(t, m1, tg1)
	_, _, c2 := extractAndCanon(t, m2, tg2)
	if c1.Fingerprint == c2.Fingerprint {
		t.Fatal("cones with different constants share a fingerprint")
	}
}

// TestCanonDistinguishesTarget: the same cone viewed from a different
// target bit is a different key.
func TestCanonDistinguishesTarget(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1).Bits()
	b := m.AddInput("b", 1).Bits()
	x := m.And(a, b)
	z := m.Or(x, a)
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), rtlil.Concat(x, z))

	ix := rtlil.NewIndex(m)
	sg := Extract(ix, z[0], nil, Options{Depth: 10})
	cz := Canonicalize(ix, sg, z[0])
	cx := Canonicalize(ix, sg, x[0])
	if cz.Fingerprint == cx.Fingerprint {
		t.Fatal("different targets share a fingerprint")
	}
	if cz.TargetID == cx.TargetID {
		t.Fatal("different targets share a slot")
	}
}

// TestCanonTargetOutsideCone: a target bit that is neither produced nor
// read inside the cone reports TargetID -1 and a distinct fingerprint.
func TestCanonTargetOutsideCone(t *testing.T) {
	m, tg := buildCmpCone("s_", 3)
	stray := m.AddInput("stray", 1).Bits()
	ix := rtlil.NewIndex(m)
	sg := Extract(ix, tg, nil, Options{Depth: 10})
	in := Canonicalize(ix, sg, tg)
	out := Canonicalize(ix, sg, stray[0])
	if out.TargetID != -1 {
		t.Fatalf("TargetID = %d for a bit outside the cone", out.TargetID)
	}
	if out.Fingerprint == in.Fingerprint {
		t.Fatal("outside-cone view shares the in-cone fingerprint")
	}
}

// TestCanonStableAcrossIndexRebuilds: canonicalizing the same module
// twice through fresh indices (what successive pass iterations do) gives
// identical fingerprints and slot assignments.
func TestCanonStableAcrossIndexRebuilds(t *testing.T) {
	m, tg := buildCmpCone("r_", 9)
	_, _, c1 := extractAndCanon(t, m, tg)
	_, _, c2 := extractAndCanon(t, m, tg)
	if c1.Fingerprint != c2.Fingerprint {
		t.Fatal("fingerprint not stable across index rebuilds")
	}
	for i, b := range c1.Bits {
		if id, ok := c2.BitID(b); !ok || id != i {
			t.Fatalf("slot %d not stable: %d/%v", i, id, ok)
		}
	}
}

// TestSlotsMatchesCanonicalize: the fingerprint-free variant assigns
// the identical slot numbering and target slot, leaving only the
// fingerprint empty.
func TestSlotsMatchesCanonicalize(t *testing.T) {
	m, tg := buildCmpCone("sl_", 11)
	ix := rtlil.NewIndex(m)
	sg := Extract(ix, tg, nil, Options{Depth: 10})
	full := Canonicalize(ix, sg, tg)
	slots := Slots(ix, sg, tg)
	if slots.Fingerprint != "" {
		t.Errorf("Slots computed a fingerprint: %s", slots.Fingerprint)
	}
	if full.Fingerprint == "" {
		t.Error("Canonicalize skipped the fingerprint")
	}
	if slots.TargetID != full.TargetID || len(slots.Bits) != len(full.Bits) {
		t.Fatalf("slot shapes differ: target %d/%d, bits %d/%d",
			slots.TargetID, full.TargetID, len(slots.Bits), len(full.Bits))
	}
	for i, b := range full.Bits {
		if slots.Bits[i] != b {
			t.Fatalf("slot %d differs: %v vs %v", i, slots.Bits[i], b)
		}
	}
	if len(slots.Cells) != len(full.Cells) {
		t.Fatalf("cell orders differ")
	}
}

// TestTopoCellsOrder: drivers precede readers for every kept cell.
func TestTopoCellsOrder(t *testing.T) {
	m, tg := buildCmpCone("t_", 1)
	ix := rtlil.NewIndex(m)
	sg := Extract(ix, tg, nil, Options{Depth: 10})
	order := TopoCells(ix, sg.Cells)
	if len(order) != len(sg.Cells) {
		t.Fatalf("topo dropped cells: %d vs %d", len(order), len(sg.Cells))
	}
	pos := map[*rtlil.Cell]int{}
	for i, c := range order {
		pos[c] = i
	}
	for _, c := range order {
		for _, port := range rtlil.InputPorts(c.Type) {
			for _, b := range ix.Map(c.Port(port)) {
				if b.IsConst() {
					continue
				}
				if d := ix.DriverCell(b); d != nil {
					if dp, in := pos[d]; in && dp >= pos[c] {
						t.Fatalf("driver %s ordered after reader %s", d.Name, c.Name)
					}
				}
			}
		}
	}
}
