package subgraph

import (
	"math/rand"
	"testing"

	"repro/internal/rtlil"
)

// TestFilterDismissesUnrelatedLogic: side logic sharing no ancestry with
// the target or knowns must be pruned (Theorem II.1 / Figure 4).
func TestFilterDismissesUnrelatedLogic(t *testing.T) {
	m := rtlil.NewModule("m")
	s := m.AddInput("s", 1).Bits()
	r := m.AddInput("r", 1).Bits()
	u := m.AddInput("u", 1).Bits()
	v := m.AddInput("v", 1).Bits()

	orSR := m.Or(s, r) // related to the known s: the target's cone
	side := m.And(u, v)
	side2 := m.Not(side) // unrelated island
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), rtlil.Concat(orSR, side2))

	ix := rtlil.NewIndex(m)
	res := Extract(ix, orSR[0], []rtlil.SigBit{s[0]}, Options{Depth: 10})
	if res.CandidateCells < 1 {
		t.Fatalf("no candidates found")
	}
	for _, c := range res.Cells {
		out := c.Port("Y")
		if out.Equal(side) || out.Equal(side2) {
			t.Errorf("unrelated cell %s kept", c.Name)
		}
	}
	// The OR driving the target must be kept.
	found := false
	for _, c := range res.Cells {
		if c.Port("Y").Equal(orSR) {
			found = true
		}
	}
	if !found {
		t.Error("target driver pruned")
	}
}

// TestFilterKeepsCommonAncestor: logic related to the known through a
// shared ancestor must survive the filter.
func TestFilterKeepsCommonAncestor(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1).Bits()
	b := m.AddInput("b", 1).Bits()
	k := m.And(a, b) // known signal derives from a, b
	tg := m.Or(a, b) // target shares ancestors a, b
	un := m.AddInput("u", 1).Bits()
	island := m.Not(un)
	y := m.AddOutput("y", 3)
	m.Connect(y.Bits(), rtlil.Concat(k, tg, island))

	ix := rtlil.NewIndex(m)
	res := Extract(ix, tg[0], []rtlil.SigBit{k[0]}, Options{Depth: 10})
	keptOr, keptAnd, keptIsland := false, false, false
	for _, c := range res.Cells {
		switch {
		case c.Port("Y").Equal(tg):
			keptOr = true
		case c.Port("Y").Equal(k):
			keptAnd = true
		case c.Port("Y").Equal(island):
			keptIsland = true
		}
	}
	if !keptOr || !keptAnd {
		t.Errorf("common-ancestor logic pruned: or=%v and=%v", keptOr, keptAnd)
	}
	if keptIsland {
		t.Error("island logic kept")
	}
}

func TestDepthBound(t *testing.T) {
	// A long inverter chain: with depth 2 only nearby cells collected.
	m := rtlil.NewModule("m")
	cur := m.AddInput("a", 1).Bits()
	for i := 0; i < 10; i++ {
		cur = m.Not(cur)
	}
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), cur)
	ix := rtlil.NewIndex(m)
	res := Extract(ix, cur[0], nil, Options{Depth: 2})
	if res.CandidateCells > 3 {
		t.Errorf("depth 2 collected %d cells", res.CandidateCells)
	}
	resAll := Extract(ix, cur[0], nil, Options{Depth: 100})
	if resAll.CandidateCells != 10 {
		t.Errorf("unbounded depth collected %d cells, want 10", resAll.CandidateCells)
	}
}

func TestMaxCellsCap(t *testing.T) {
	m := rtlil.NewModule("m")
	acc := m.AddInput("a", 1).Bits()
	for i := 0; i < 50; i++ {
		acc = m.Not(acc)
	}
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), acc)
	ix := rtlil.NewIndex(m)
	res := Extract(ix, acc[0], nil, Options{Depth: 100, MaxCells: 5})
	if res.CandidateCells > 5 {
		t.Errorf("cap exceeded: %d cells", res.CandidateCells)
	}
}

func TestInputsAreFreeBits(t *testing.T) {
	m := rtlil.NewModule("m")
	s := m.AddInput("s", 1).Bits()
	r := m.AddInput("r", 1).Bits()
	orSR := m.Or(s, r)
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), orSR)
	ix := rtlil.NewIndex(m)
	res := Extract(ix, orSR[0], []rtlil.SigBit{s[0]}, Options{})
	want := map[rtlil.SigBit]bool{s[0]: true, r[0]: true}
	if len(res.Inputs) != 2 {
		t.Fatalf("inputs = %v", res.Inputs)
	}
	for _, b := range res.Inputs {
		if !want[b] {
			t.Errorf("unexpected input %v", b)
		}
	}
}

func TestSequentialExcluded(t *testing.T) {
	m := rtlil.NewModule("m")
	clk := m.AddInput("clk", 1).Bits()
	d := m.AddInput("d", 1).Bits()
	q := m.NewWire(1)
	m.AddDff("ff", clk, d, q.Bits())
	g := m.Not(q.Bits())
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), g)
	ix := rtlil.NewIndex(m)
	res := Extract(ix, g[0], nil, Options{Depth: 10})
	for _, c := range res.Cells {
		if rtlil.IsSequential(c.Type) {
			t.Error("sequential cell in sub-graph")
		}
	}
	// The dff's Q bit must appear as a free input.
	foundQ := false
	for _, b := range res.Inputs {
		if b.Wire == q {
			foundQ = true
		}
	}
	if !foundQ {
		t.Error("dff Q not a sub-graph input")
	}
}

// TestFilterReductionOnRandomDAGs measures that the filter dismisses a
// large share of unrelated gates, in the spirit of the paper's "~80%
// dismissed" claim (we assert a conservative >= 40% on this workload).
func TestFilterReductionOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	totalCand, totalKept := 0, 0
	for trial := 0; trial < 20; trial++ {
		m := rtlil.NewModule("m")
		// Island A: target cone.
		s := m.AddInput("s", 1).Bits()
		r := m.AddInput("r", 1).Bits()
		tg := m.Or(s, r)
		// Many unrelated islands packed close to the target through a
		// shared mux tree reader (common DESCENDANT, which must not
		// count as related).
		join := tg
		for i := 0; i < 10; i++ {
			u := m.AddInput("u"+string(rune('0'+i)), 1).Bits()
			v := m.AddInput("v"+string(rune('0'+i)), 1).Bits()
			island := m.Xor(u, v)
			for j := 0; j < rng.Intn(3); j++ {
				island = m.Not(island)
			}
			join = m.And(join, island)
		}
		y := m.AddOutput("y", 1)
		m.Connect(y.Bits(), join)
		ix := rtlil.NewIndex(m)
		res := Extract(ix, tg[0], []rtlil.SigBit{s[0]}, Options{Depth: 50})
		totalCand += res.CandidateCells
		totalKept += len(res.Cells)
	}
	if totalKept*10 > totalCand*6 {
		t.Errorf("filter kept %d of %d cells (>60%%)", totalKept, totalCand)
	}
}
