package subgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rtlil"
)

// buildGraphModule grows a random mixed combinational/sequential module:
// multi-bit arithmetic, muxes, pmuxes, reduction gates and occasional
// flop barriers, so the adjacency build sees every port shape Extract
// walks.
func buildGraphModule(rng *rand.Rand, nOps int) *rtlil.Module {
	m := rtlil.NewModule("m")
	clk := m.AddInput("clk", 1).Bits()
	var sigs []rtlil.SigSpec
	for i := 0; i < 4; i++ {
		sigs = append(sigs, m.AddInput(fmt.Sprintf("in%d", i), 1+rng.Intn(4)).Bits())
	}
	pick := func() rtlil.SigSpec { return sigs[rng.Intn(len(sigs))] }
	for i := 0; i < nOps; i++ {
		a, b := pick(), pick()
		var y rtlil.SigSpec
		switch rng.Intn(8) {
		case 0:
			y = m.Not(a)
		case 1:
			y = m.And(a, b)
		case 2:
			y = m.AddOp(a, b)
		case 3:
			y = m.Mux(a, b.Resize(len(a), false), pick().Resize(1, false))
		case 4:
			n := 1 + rng.Intn(2)
			var branches []rtlil.SigSpec
			for j := 0; j < n; j++ {
				branches = append(branches, pick().Resize(len(a), false))
			}
			y = m.Pmux(a, branches, pick().Resize(n, false))
		case 5:
			y = m.ReduceOr(a)
		case 6:
			y = m.Eq(a, b.Resize(len(a), false))
		default:
			q := m.NewWire(len(a))
			m.AddDff(fmt.Sprintf("ff%d", i), clk, a, q.Bits())
			y = q.Bits()
		}
		sigs = append(sigs, y)
	}
	out := m.AddOutput("y", len(sigs[len(sigs)-1]))
	m.Connect(out.Bits(), sigs[len(sigs)-1])
	return m
}

// collectBits gathers every non-const mapped bit in the module, the pool
// targets and knowns are drawn from.
func collectBits(ix *rtlil.Index) []rtlil.SigBit {
	var bits []rtlil.SigBit
	seen := map[rtlil.SigBit]bool{}
	for _, c := range ix.Module().Cells() {
		for _, port := range rtlil.OutputPorts(c.Type) {
			for _, b := range ix.Map(c.Port(port)) {
				if !b.IsConst() && !seen[b] {
					seen[b] = true
					bits = append(bits, b)
				}
			}
		}
	}
	return bits
}

func diffResults(t *testing.T, trial int, want, got *Result) {
	t.Helper()
	if want.CandidateCells != got.CandidateCells {
		t.Fatalf("trial %d: candidates %d != %d", trial, got.CandidateCells, want.CandidateCells)
	}
	if len(want.Cells) != len(got.Cells) {
		t.Fatalf("trial %d: kept %d cells, want %d", trial, len(got.Cells), len(want.Cells))
	}
	for i := range want.Cells {
		if want.Cells[i] != got.Cells[i] {
			t.Fatalf("trial %d: cell %d is %s, want %s", trial, i, got.Cells[i].Name, want.Cells[i].Name)
		}
	}
	if len(want.Inputs) != len(got.Inputs) {
		t.Fatalf("trial %d: %d inputs, want %d (%v vs %v)", trial, len(got.Inputs), len(want.Inputs), got.Inputs, want.Inputs)
	}
	for i := range want.Inputs {
		if want.Inputs[i] != got.Inputs[i] {
			t.Fatalf("trial %d: input %d is %v, want %v", trial, i, got.Inputs[i], want.Inputs[i])
		}
	}
}

// TestGraphExtractMatchesExtract pins the precomputed-adjacency fast
// path to the reference walk bit for bit — same kept cells in the same
// order, same free inputs, same candidate count — across random
// modules, targets, known sets and option corners (tight MaxCells caps,
// shallow depths, filter off). The oracle's netlist determinism
// contract rides on this equivalence.
func TestGraphExtractMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		m := buildGraphModule(rng, 4+rng.Intn(24))
		ix := rtlil.NewIndex(m)
		g := NewGraph(ix)
		bits := collectBits(ix)
		if len(bits) == 0 {
			continue
		}
		for q := 0; q < 8; q++ {
			target := bits[rng.Intn(len(bits))]
			var knowns []rtlil.SigBit
			for k := rng.Intn(4); k > 0; k-- {
				knowns = append(knowns, bits[rng.Intn(len(bits))])
			}
			opt := Options{
				Depth:         1 + rng.Intn(8),
				MaxCells:      1 + rng.Intn(12),
				DisableFilter: rng.Intn(3) == 0,
			}
			if rng.Intn(4) == 0 {
				opt.MaxCells = 300
			}
			want := Extract(ix, target, knowns, opt)
			got := g.Extract(target, knowns, opt)
			diffResults(t, trial, want, got)
		}
	}
}

// TestGraphExtractTracksCellRemoval pins the staleness contract: the
// mux walk removes cells from the module while the oracle's frozen
// index is live, and a removed cell must vanish from the candidate set
// of both implementations identically.
func TestGraphExtractTracksCellRemoval(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		m := buildGraphModule(rng, 10+rng.Intn(20))
		ix := rtlil.NewIndex(m)
		g := NewGraph(ix)
		bits := collectBits(ix)
		if len(bits) == 0 {
			continue
		}
		// Remove a few random cells AFTER the graph build, as the walk
		// does mid-iteration.
		cells := m.Cells()
		for k := 0; k < 3 && len(cells) > 1; k++ {
			m.RemoveCell(cells[rng.Intn(len(cells))])
			cells = m.Cells()
		}
		for q := 0; q < 8; q++ {
			target := bits[rng.Intn(len(bits))]
			var knowns []rtlil.SigBit
			for k := rng.Intn(3); k > 0; k-- {
				knowns = append(knowns, bits[rng.Intn(len(bits))])
			}
			want := Extract(ix, target, knowns, Options{})
			got := g.Extract(target, knowns, Options{})
			diffResults(t, trial, want, got)
		}
	}
}

// TestGraphExtractConcurrent exercises shared-Graph extraction from
// many goroutines (the batch oracle's worker fan-out) under -race, and
// re-checks the results against the reference walk.
func TestGraphExtractConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := buildGraphModule(rng, 30)
	ix := rtlil.NewIndex(m)
	g := NewGraph(ix)
	bits := collectBits(ix)
	if len(bits) == 0 {
		t.Skip("no bits")
	}
	type query struct {
		target rtlil.SigBit
		knowns []rtlil.SigBit
	}
	queries := make([]query, 64)
	for i := range queries {
		queries[i].target = bits[rng.Intn(len(bits))]
		for k := rng.Intn(3); k > 0; k-- {
			queries[i].knowns = append(queries[i].knowns, bits[rng.Intn(len(bits))])
		}
	}
	results := make([]*Result, len(queries))
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := w; i < len(queries); i += 8 {
				results[i] = g.Extract(queries[i].target, queries[i].knowns, Options{})
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	for i, q := range queries {
		want := Extract(ix, q.target, q.knowns, Options{})
		diffResults(t, i, want, results[i])
	}
}
