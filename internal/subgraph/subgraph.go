// Package subgraph extracts the bounded circuit neighborhood that
// smaRTLy's SAT-based redundancy elimination reasons over (paper §II).
//
// Starting from a muxtree control bit, gates within distance k are
// collected (undirected breadth-first search over driver/reader edges,
// excluding sequential cells so the result is a DAG). The set is then
// pruned with the paper's Theorem II.1 connectivity filter: a signal can
// interact with the target only if it is an ancestor, a descendant, or
// shares a common ancestor — signals in unrelated groups (and the gates
// producing them) are dismissed, which the paper reports removes ~80% of
// the gates.
//
// The pruning is sound by construction: sub-graph leaves are treated as
// free variables, so the sub-graph is an abstraction of the real circuit
// and any UNSAT verdict ("this control value is impossible") transfers.
package subgraph

import (
	"repro/internal/rtlil"
)

// Options bounds the extraction.
type Options struct {
	// Depth is the BFS radius k in cells (default 6).
	Depth int
	// MaxCells caps the candidate set before filtering (default 300).
	MaxCells int
	// DisableFilter turns the Theorem II.1 pruning off (for the
	// ablation benchmark).
	DisableFilter bool
}

func (o Options) withDefaults() Options {
	if o.Depth == 0 {
		o.Depth = 6
	}
	if o.MaxCells == 0 {
		o.MaxCells = 300
	}
	return o
}

// Result is an extracted sub-graph.
type Result struct {
	// Cells are the kept combinational cells.
	Cells []*rtlil.Cell
	// Inputs are the free bits of the sub-graph: bits read by kept
	// cells but not driven inside it (canonical form).
	Inputs []rtlil.SigBit
	// CandidateCells is the pre-filter cell count (for statistics and
	// the ablation study).
	CandidateCells int
}

// Extract collects the sub-graph around target, keeping only logic that
// can interact with target or with one of the known (path-condition)
// bits.
func Extract(ix *rtlil.Index, target rtlil.SigBit, known []rtlil.SigBit, opt Options) *Result {
	o := opt.withDefaults()

	// Phase 1: undirected BFS from the target's driver up to depth k.
	type entry struct {
		c     *rtlil.Cell
		depth int
	}
	inSet := map[*rtlil.Cell]bool{}
	var queue []entry
	seed := func(b rtlil.SigBit) {
		if c := ix.DriverCell(b); c != nil && !rtlil.IsSequential(c.Type) && !inSet[c] {
			inSet[c] = true
			queue = append(queue, entry{c, 0})
		}
	}
	seed(target)
	for _, k := range known {
		seed(k)
	}
	for len(queue) > 0 && len(inSet) < o.MaxCells {
		e := queue[0]
		queue = queue[1:]
		if e.depth >= o.Depth {
			continue
		}
		visit := func(c *rtlil.Cell) {
			if c == nil || rtlil.IsSequential(c.Type) || inSet[c] {
				return
			}
			if len(inSet) >= o.MaxCells {
				return
			}
			inSet[c] = true
			queue = append(queue, entry{c, e.depth + 1})
		}
		// Fixed port order (not the Conn map's): the BFS frontier, and
		// therefore the kept set under the MaxCells cap, must not vary
		// between runs — parallel and sequential query results are
		// compared bit for bit.
		for _, port := range rtlil.InputPorts(e.c.Type) {
			for _, b := range ix.Map(e.c.Port(port)) {
				if !b.IsConst() {
					visit(ix.DriverCell(b))
				}
			}
		}
		for _, port := range rtlil.OutputPorts(e.c.Type) {
			for _, b := range ix.Map(e.c.Port(port)) {
				if b.IsConst() {
					continue
				}
				for _, r := range ix.Readers(b) {
					visit(r.Cell)
				}
			}
		}
	}

	candidates := make([]*rtlil.Cell, 0, len(inSet))
	// Deterministic order: module cell order.
	for _, c := range ix.Module().Cells() {
		if inSet[c] {
			candidates = append(candidates, c)
		}
	}
	res := &Result{CandidateCells: len(candidates)}

	kept := candidates
	if !o.DisableFilter {
		kept = filterByConnectivity(ix, candidates, inSet, target, known)
	}
	res.Cells = kept

	// Free inputs of the kept set.
	keptSet := map[*rtlil.Cell]bool{}
	for _, c := range kept {
		keptSet[c] = true
	}
	seen := map[rtlil.SigBit]bool{}
	for _, c := range kept {
		for _, port := range rtlil.InputPorts(c.Type) {
			for _, b := range ix.Map(c.Port(port)) {
				if b.IsConst() || seen[b] {
					continue
				}
				if d := ix.DriverCell(b); d != nil && keptSet[d] {
					continue
				}
				seen[b] = true
				res.Inputs = append(res.Inputs, b)
			}
		}
	}
	return res
}

// filterByConnectivity implements Theorem II.1 for the inference use
// case: the value of the target under the path condition can only be
// constrained by logic in the combined fanin cones of the target and the
// known bits (common ancestors are in both cones; knowns that are
// descendants of the target carry their own cones). Cells outside those
// cones — unrelated islands and pure descendants, which cannot affect an
// ancestor's value — are dismissed; the paper reports this prunes ~80%
// of the gates.
func filterByConnectivity(ix *rtlil.Index, candidates []*rtlil.Cell, inSet map[*rtlil.Cell]bool, target rtlil.SigBit, known []rtlil.SigBit) []*rtlil.Cell {
	visited := map[*rtlil.Cell]bool{}
	var back func(b rtlil.SigBit)
	backCell := func(c *rtlil.Cell) {
		if visited[c] {
			return
		}
		visited[c] = true
		for _, port := range rtlil.InputPorts(c.Type) {
			for _, b := range ix.Map(c.Port(port)) {
				if !b.IsConst() {
					back(b)
				}
			}
		}
	}
	back = func(b rtlil.SigBit) {
		if d := ix.DriverCell(b); d != nil && inSet[d] {
			backCell(d)
		}
	}
	back(ix.MapBit(target))
	for _, k := range known {
		back(ix.MapBit(k))
	}

	var kept []*rtlil.Cell
	for _, c := range candidates {
		if visited[c] {
			kept = append(kept, c)
		}
	}
	return kept
}
