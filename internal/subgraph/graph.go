package subgraph

import (
	"repro/internal/rtlil"
)

// Graph is a precomputed cell-adjacency view of a module index. Extract
// is called once per oracle query — thousands of times per pass
// iteration over one immutable Index — and its inner loops (driver and
// reader resolution through SigBit-keyed maps, port walks through the
// signal map) dominated the profile once the SAT stage stopped being
// the bottleneck. Graph hoists all of that into one O(module) build:
// cells get dense integer ids (module cell order), and each
// combinational cell carries its neighbor id lists and resolved input
// bits, so a query's BFS and connectivity filter touch only int slices
// and flat scratch arrays.
//
// A Graph is immutable after NewGraph and safe for concurrent Extract
// calls (per-call scratch only) — solvePrep fans queries out to worker
// goroutines over one shared Graph.
//
// The neighbor lists preserve the legacy Extract's visit order
// (input ports in cell-library order, then output ports; first
// occurrence wins, duplicates dropped), so the kept set under the
// MaxCells cap — and with it every downstream netlist and counter — is
// bit-identical to the per-query map walk it replaces. That walk had
// exactly one live lookup — the module cell scan that orders the
// candidates, through which mid-walk cell removals drop out of the
// sub-graph — and Graph.Extract keeps that scan live for the same
// reason; everything else reads the index's frozen maps in both
// implementations.
type Graph struct {
	ix    *rtlil.Index
	cells []*rtlil.Cell
	id    map[*rtlil.Cell]int32

	// fanin/fanout hold the combinational neighbor cell ids of each
	// combinational cell (sequential cells keep empty lists: the BFS
	// neither enters nor crosses them).
	fanin  [][]int32
	fanout [][]int32
	// inBits are the mapped non-const input bits of each combinational
	// cell in port order; inDrv the driving cell id per bit (-1 free).
	inBits [][]rtlil.SigBit
	inDrv  [][]int32
}

// NewGraph builds the adjacency view. The index must not change while
// the graph is in use.
func NewGraph(ix *rtlil.Index) *Graph {
	// Copy: Cells returns the live order slice, and mid-walk RemoveCell
	// shifts its backing array in place, which would corrupt the
	// id → cell mapping.
	cells := append([]*rtlil.Cell(nil), ix.Module().Cells()...)
	g := &Graph{
		ix:     ix,
		cells:  cells,
		id:     make(map[*rtlil.Cell]int32, len(cells)),
		fanin:  make([][]int32, len(cells)),
		fanout: make([][]int32, len(cells)),
		inBits: make([][]rtlil.SigBit, len(cells)),
		inDrv:  make([][]int32, len(cells)),
	}
	for i, c := range cells {
		g.id[c] = int32(i)
	}
	for i, c := range cells {
		if rtlil.IsSequential(c.Type) {
			continue
		}
		var (
			bits []rtlil.SigBit
			drv  []int32
			fin  []int32
		)
		finSeen := map[int32]bool{}
		for _, port := range rtlil.InputPorts(c.Type) {
			for _, b := range ix.Map(c.Port(port)) {
				if b.IsConst() {
					continue
				}
				bits = append(bits, b)
				did := int32(-1)
				if d := ix.DriverCell(b); d != nil {
					did = g.id[d]
				}
				drv = append(drv, did)
				if did >= 0 && !rtlil.IsSequential(cells[did].Type) && !finSeen[did] {
					finSeen[did] = true
					fin = append(fin, did)
				}
			}
		}
		var fout []int32
		foutSeen := map[int32]bool{}
		for _, port := range rtlil.OutputPorts(c.Type) {
			for _, b := range ix.Map(c.Port(port)) {
				if b.IsConst() {
					continue
				}
				for _, r := range ix.Readers(b) {
					rid := g.id[r.Cell]
					if rtlil.IsSequential(cells[rid].Type) || foutSeen[rid] {
						continue
					}
					foutSeen[rid] = true
					fout = append(fout, rid)
				}
			}
		}
		g.inBits[i], g.inDrv[i], g.fanin[i], g.fanout[i] = bits, drv, fin, fout
	}
	return g
}

// Extract collects the sub-graph around target exactly as the
// package-level Extract does, against the precomputed adjacency.
func (g *Graph) Extract(target rtlil.SigBit, known []rtlil.SigBit, opt Options) *Result {
	o := opt.withDefaults()

	// Phase 1: undirected BFS from the drivers of the target and the
	// known bits up to depth k, capped at MaxCells.
	inSet := make([]bool, len(g.cells))
	var members []int32
	count := 0
	type entry struct {
		id    int32
		depth int
	}
	var queue []entry
	seed := func(b rtlil.SigBit) {
		if c := g.ix.DriverCell(b); c != nil && !rtlil.IsSequential(c.Type) {
			id := g.id[c]
			if !inSet[id] {
				inSet[id] = true
				members = append(members, id)
				count++
				queue = append(queue, entry{id, 0})
			}
		}
	}
	seed(target)
	for _, k := range known {
		seed(k)
	}
	for len(queue) > 0 && count < o.MaxCells {
		e := queue[0]
		queue = queue[1:]
		if e.depth >= o.Depth {
			continue
		}
		for _, nb := range g.fanin[e.id] {
			if count >= o.MaxCells {
				break
			}
			if !inSet[nb] {
				inSet[nb] = true
				members = append(members, nb)
				count++
				queue = append(queue, entry{nb, e.depth + 1})
			}
		}
		for _, nb := range g.fanout[e.id] {
			if count >= o.MaxCells {
				break
			}
			if !inSet[nb] {
				inSet[nb] = true
				members = append(members, nb)
				count++
				queue = append(queue, entry{nb, e.depth + 1})
			}
		}
	}

	// Deterministic candidate order: module cell order, read from the
	// LIVE module, not the snapshot. The mux walk rewrites the module
	// while the oracle (and its frozen index) is in use; a cell removed
	// mid-walk must drop out of the candidate set exactly as it does
	// for the per-query scan. Cells added mid-walk are unreachable here
	// (the frozen adjacency never produces them).
	members = members[:0]
	for _, c := range g.ix.Module().Cells() {
		if id, ok := g.id[c]; ok && inSet[id] {
			members = append(members, id)
		}
	}
	res := &Result{CandidateCells: len(members)}

	keptIDs := members
	if !o.DisableFilter {
		// Theorem II.1: keep only the combined backward cones of the
		// target and the known bits within the candidate set.
		visited := make([]bool, len(g.cells))
		var stack []int32
		push := func(b rtlil.SigBit) {
			if d := g.ix.DriverCell(b); d != nil {
				if id := g.id[d]; inSet[id] && !visited[id] {
					visited[id] = true
					stack = append(stack, id)
				}
			}
		}
		push(g.ix.MapBit(target))
		for _, k := range known {
			push(g.ix.MapBit(k))
		}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range g.fanin[id] {
				if inSet[nb] && !visited[nb] {
					visited[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		keptIDs = keptIDs[:0]
		for _, id := range members {
			if visited[id] {
				keptIDs = append(keptIDs, id)
			}
		}
	}

	kept := make([]bool, len(g.cells))
	res.Cells = make([]*rtlil.Cell, len(keptIDs))
	for i, id := range keptIDs {
		kept[id] = true
		res.Cells[i] = g.cells[id]
	}

	// Free inputs of the kept set: bits read by kept cells but not
	// driven inside it, first occurrence order.
	seen := map[rtlil.SigBit]bool{}
	for _, id := range keptIDs {
		drv := g.inDrv[id]
		for j, b := range g.inBits[id] {
			if seen[b] {
				continue
			}
			if d := drv[j]; d >= 0 && kept[d] {
				continue
			}
			seen[b] = true
			res.Inputs = append(res.Inputs, b)
		}
	}
	return res
}
