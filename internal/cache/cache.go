package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
)

// Key identifies one optimization result. Its fields must already be
// canonical (order-invariant hash, normalized script), so that equal
// logical requests produce equal keys; see the package comment.
type Key struct {
	// Netlist is the canonical content hash of the submitted design.
	Netlist string
	// Flow is the normalized flow script (opt.Flow.Canonical).
	Flow string
	// Options encodes the request-level options that change the cached
	// payload (e.g. "timings=true"). Options that provably do not — the
	// worker budget — must stay out.
	Options string
}

// ID collapses the key into the cache's address: a hex SHA-256 over the
// length-prefixed fields (so field boundaries cannot be forged).
func (k Key) ID() string {
	h := sha256.New()
	for _, f := range []string{k.Netlist, k.Flow, k.Options} {
		fmt.Fprintf(h, "%d:%s", len(f), f)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ModuleKey identifies one per-module optimization result in the
// module-granular tier used by design-mode sharding: where Key
// addresses a whole-design payload, ModuleKey addresses the payload of
// a single module, so a resubmitted design with one edited module
// re-optimizes only that module and refills the rest from cache. Fields
// must be canonical, exactly like Key's.
type ModuleKey struct {
	// Module is the canonical content hash of the one module
	// (rtlil.CanonicalHash).
	Module string
	// Flow is the normalized flow script (opt.Flow.Canonical).
	Flow string
	// Options encodes the request-level options that change the cached
	// payload; the worker budget and the module-jobs split must stay
	// out (results are bit-identical for every value).
	Options string
}

// ID collapses the module key into the cache's address. The hash is
// domain-separated from Key.ID by a fixed leading field, so a module
// entry and a design entry can never collide even for crafted inputs.
func (k ModuleKey) ID() string {
	h := sha256.New()
	for _, f := range []string{"module", k.Module, k.Flow, k.Options} {
		fmt.Fprintf(h, "%d:%s", len(f), f)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Entries and Bytes describe the current memory tier.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the configured memory-tier bound.
	MaxBytes int64 `json:"max_bytes"`
	// Hits counts memory-tier hits, DiskHits disk-tier refills and
	// Misses lookups that found nothing in either tier.
	Hits     uint64 `json:"hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// DiskBad counts disk-tier entries dropped because they were
	// corrupt or truncated (each such read is served as a miss).
	DiskBad uint64 `json:"disk_bad"`
	// RemoteHits counts remote-tier refills, RemoteErrors remote
	// lookups or stores that failed (each failed lookup is served as a
	// miss; each failed store is dropped — the fail-soft contract the
	// disk tier set).
	RemoteHits   uint64 `json:"remote_hits,omitempty"`
	RemoteErrors uint64 `json:"remote_errors,omitempty"`
	// Puts counts values stored (Put and PutLocal, so local computes
	// and peer pushes both): with Hits+Misses it gives operators the
	// cache's full operation mix.
	Puts uint64 `json:"puts"`
	// Coalesced counts Do callers that waited on an identical in-flight
	// computation instead of running their own.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts memory-tier LRU evictions.
	Evictions uint64 `json:"evictions"`
}

// DefaultMaxBytes bounds the memory tier when New is given no limit.
const DefaultMaxBytes = 256 << 20

// ErrComputePanicked is returned to coalesced Do waiters whose leader's
// compute function panicked instead of returning.
var ErrComputePanicked = errors.New("cache: computation panicked")

// Cache is a tiered content-addressed cache — memory LRU, optional
// disk tier, optional shared remote tier; see the package comment.
type Cache struct {
	maxBytes int64
	dir      string // "" = memory only

	mu      sync.Mutex
	remote  Remote // nil = no remote tier
	byID    map[string]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
	stats   Stats
	flights map[string]*flight
}

// entry is one memory-tier value.
type entry struct {
	id  string
	val []byte
}

// flight is one in-progress Do computation awaited by coalesced callers.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// New builds a cache with the given memory bound (<= 0 means
// DefaultMaxBytes) and optional disk tier directory ("" disables it).
// The directory is created if needed.
func New(maxBytes int64, dir string) (*Cache, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	c := &Cache{
		maxBytes: maxBytes,
		dir:      dir,
		byID:     map[string]*list.Element{},
		lru:      list.New(),
		flights:  map[string]*flight{},
	}
	if err := c.initDisk(); err != nil {
		return nil, err
	}
	return c, nil
}

// Get returns the value stored under id, consulting the memory tier
// first, refilling it from the disk tier on a memory miss, and asking
// the shared remote tier (when attached) last. A remote refill lands in
// both local tiers so the next lookup is local.
func (c *Cache) Get(id string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byID[id]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()

	if val, ok := c.readDisk(id); ok {
		c.mu.Lock()
		c.stats.DiskHits++
		c.insert(id, val)
		c.mu.Unlock()
		return val, true
	}

	if r := c.getRemote(); r != nil {
		val, ok, err := r.Get(id)
		switch {
		case err != nil:
			c.mu.Lock()
			c.stats.RemoteErrors++
			c.mu.Unlock()
		case ok:
			c.mu.Lock()
			c.stats.RemoteHits++
			c.insert(id, val)
			c.mu.Unlock()
			c.writeDisk(id, val)
			return val, true
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the value under id in every tier: memory, disk and — when
// attached — the shared remote tier (best effort, like the disk
// write). The caller must not mutate val afterwards.
func (c *Cache) Put(id string, val []byte) {
	c.PutLocal(id, val)
	if r := c.getRemote(); r != nil {
		if err := r.Put(id, val); err != nil {
			c.mu.Lock()
			c.stats.RemoteErrors++
			c.mu.Unlock()
		}
	}
}

// GetLocal consults only the local tiers (memory, then disk), without
// touching the remote tier or the hit/miss counters. The cache peer
// endpoint serves through it: peers must see a replica's own entries,
// not recurse into its remote tier, and peer traffic must not skew the
// replica's request-path statistics.
func (c *Cache) GetLocal(id string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byID[id]; ok {
		c.lru.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true
	}
	c.mu.Unlock()
	if val, ok := c.readDisk(id); ok {
		c.mu.Lock()
		c.insert(id, val)
		c.mu.Unlock()
		return val, true
	}
	return nil, false
}

// PutLocal stores the value in the local tiers only. The cache peer
// endpoint stores through it, so a pushed entry is never re-pushed to
// this replica's own remote tier (no echo loops between peers).
func (c *Cache) PutLocal(id string, val []byte) {
	c.mu.Lock()
	c.stats.Puts++
	c.insert(id, val)
	c.mu.Unlock()
	c.writeDisk(id, val)
}

// Delete removes the entry from both tiers. Callers use it to evict an
// entry whose payload turned out to be undecodable, so the next lookup
// recomputes instead of serving the same corrupt bytes again.
func (c *Cache) Delete(id string) {
	c.mu.Lock()
	if el, ok := c.byID[id]; ok {
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.byID, id)
		c.bytes -= int64(len(e.val))
	}
	c.mu.Unlock()
	c.removeDisk(id)
}

// insert adds or refreshes a memory-tier entry and evicts LRU entries
// until the byte bound holds. Values larger than the whole bound are
// not kept in memory (the disk tier still serves them). Caller holds mu.
func (c *Cache) insert(id string, val []byte) {
	if el, ok := c.byID[id]; ok {
		e := el.Value.(*entry)
		c.bytes += int64(len(val)) - int64(len(e.val))
		e.val = val
		c.lru.MoveToFront(el)
	} else if int64(len(val)) <= c.maxBytes {
		c.byID[id] = c.lru.PushFront(&entry{id: id, val: val})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.byID, e.id)
		c.bytes -= int64(len(e.val))
		c.stats.Evictions++
	}
}

// Do returns the cached value for id, computing and storing it with fn
// on a miss. Concurrent calls for the same id are coalesced: one runs
// fn, the rest wait and share its result. hit reports whether the value
// came from the cache or a coalesced computation rather than this
// caller's own fn. A failed fn caches nothing and its error reaches
// every coalesced caller.
func (c *Cache) Do(id string, fn func() ([]byte, error)) (val []byte, hit bool, err error) {
	if val, ok := c.Get(id); ok {
		return val, true, nil
	}
	c.mu.Lock()
	if fl, ok := c.flights[id]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, true, fl.err
		}
		return fl.val, true, nil
	}
	// Double-check under the lock: a flight that completed between the
	// Get above and Lock has been removed from flights, but its Put has
	// already landed in the memory tier.
	if el, ok := c.byID[id]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[id] = fl
	c.mu.Unlock()

	// Cleanup must survive a panicking fn: the flight entry would
	// otherwise leak and every later Do for this key would block on
	// done forever. Waiters of a panicked flight see ErrComputePanicked
	// (fl.err's initial value); the panic itself propagates to this
	// caller's recover machinery.
	fl.err = ErrComputePanicked
	defer func() {
		c.mu.Lock()
		delete(c.flights, id)
		c.mu.Unlock()
		close(fl.done)
	}()
	fl.val, fl.err = fn()
	if fl.err == nil {
		c.Put(id, fl.val)
	}
	return fl.val, false, fl.err
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.lru.Len()
	s.Bytes = c.bytes
	s.MaxBytes = c.maxBytes
	return s
}
