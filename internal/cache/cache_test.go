package cache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyID(t *testing.T) {
	a := Key{Netlist: "n1", Flow: "f1", Options: ""}
	if a.ID() != a.ID() {
		t.Error("ID not deterministic")
	}
	if len(a.ID()) != 64 {
		t.Errorf("ID %q is not hex sha256", a.ID())
	}
	variants := []Key{
		{Netlist: "n2", Flow: "f1"},
		{Netlist: "n1", Flow: "f2"},
		{Netlist: "n1", Flow: "f1", Options: "timings=true"},
		// Field boundaries must matter: "n1"+"f1" vs "n1f"+"1".
		{Netlist: "n1f", Flow: "1"},
	}
	for _, v := range variants {
		if v.ID() == a.ID() {
			t.Errorf("key %+v collides with %+v", v, a)
		}
	}
}

func TestGetPut(t *testing.T) {
	c, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("hit on empty cache")
	}
	c.Put("k1", []byte("v1"))
	if v, ok := c.Get("k1"); !ok || string(v) != "v1" {
		t.Errorf("got %q %v", v, ok)
	}
	c.Put("k1", []byte("v1b")) // overwrite refreshes in place
	if v, _ := c.Get("k1"); string(v) != "v1b" {
		t.Errorf("overwrite not visible: %q", v)
	}
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(10, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", []byte("aaaa")) // 4 bytes
	c.Put("b", []byte("bbbb")) // 8 bytes total
	c.Get("a")                 // refresh a; b is now LRU
	c.Put("c", []byte("cccc")) // 12 > 10: evict b
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b not evicted")
	}
	for _, id := range []string{"a", "c"} {
		if _, ok := c.Get(id); !ok {
			t.Errorf("entry %s evicted unexpectedly", id)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Bytes != 8 {
		t.Errorf("stats %+v", s)
	}
	// A value larger than the whole bound must not wipe the cache.
	c.Put("huge", bytes.Repeat([]byte("x"), 100))
	if s := c.Stats(); s.Entries != 2 {
		t.Errorf("oversized value disturbed the memory tier: %+v", s)
	}
}

func TestDiskTier(t *testing.T) {
	dir := t.TempDir()
	c, err := New(1024, dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Key{Netlist: "n", Flow: "f"}.ID()
	c.Put(id, []byte("payload"))

	// A fresh cache over the same directory serves the value from disk.
	c2, err := New(1024, dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c2.Get(id)
	if !ok || string(v) != "payload" {
		t.Fatalf("disk tier miss: %q %v", v, ok)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Errorf("stats %+v", s)
	}
	// The refill landed in memory: second lookup is a memory hit.
	if _, ok := c2.Get(id); !ok {
		t.Fatal("promoted entry missing")
	}
	if s := c2.Stats(); s.Hits != 1 {
		t.Errorf("stats after promotion %+v", s)
	}
}

func TestDiskSurvivesEviction(t *testing.T) {
	dir := t.TempDir()
	c, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put("aaaa", []byte("1111"))
	c.Put("bbbb", []byte("2222")) // evicts aaaa from memory
	v, ok := c.Get("aaaa")
	if !ok || string(v) != "1111" {
		t.Fatalf("evicted entry not served from disk: %q %v", v, ok)
	}
}

func TestDoComputesOnceAndCaches(t *testing.T) {
	c, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	fn := func() ([]byte, error) {
		calls.Add(1)
		return []byte("result"), nil
	}
	v, hit, err := c.Do("k", fn)
	if err != nil || hit || string(v) != "result" {
		t.Fatalf("first Do: %q hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.Do("k", fn)
	if err != nil || !hit || string(v) != "result" {
		t.Fatalf("second Do: %q hit=%v err=%v", v, hit, err)
	}
	if calls.Load() != 1 {
		t.Errorf("fn ran %d times", calls.Load())
	}
}

func TestDoCoalescesConcurrent(t *testing.T) {
	c, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	var calls atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	hits := make([]bool, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], hits[i], _ = c.Do("k", func() ([]byte, error) {
				calls.Add(1)
				<-release // hold every other caller in flight
				return []byte("shared"), nil
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("fn ran %d times for %d concurrent callers", calls.Load(), n)
	}
	misses := 0
	for i := range hits {
		if string(vals[i]) != "shared" {
			t.Errorf("caller %d got %q", i, vals[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers computed (want exactly 1)", misses)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	calls := 0
	_, _, err = c.Do("k", func() ([]byte, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failure was not cached: the next Do computes again and can
	// succeed.
	v, hit, err := c.Do("k", func() ([]byte, error) { calls++; return []byte("ok"), nil })
	if err != nil || hit || string(v) != "ok" {
		t.Fatalf("retry: %q hit=%v err=%v", v, hit, err)
	}
	if calls != 2 {
		t.Errorf("fn ran %d times", calls)
	}
}

// TestDoPanicDoesNotWedge: a panicking compute function must not leak
// its in-flight entry — coalesced waiters get ErrComputePanicked and
// the key stays usable.
func TestDoPanicDoesNotWedge(t *testing.T) {
	c, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }() // the leader's panic reaches its caller
		c.Do("k", func() ([]byte, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	<-entered
	waiter := make(chan error, 1)
	go func() {
		_, _, err := c.Do("k", func() ([]byte, error) { return nil, errors.New("waiter ran") })
		waiter <- err
	}()
	// Only release the leader once the waiter is provably parked on the
	// in-flight entry, so the panic path is what unblocks it.
	for deadline := time.Now().Add(5 * time.Second); c.Stats().Coalesced == 0; {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced onto the flight")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	select {
	case err := <-waiter:
		if !errors.Is(err, ErrComputePanicked) {
			t.Errorf("waiter err = %v, want ErrComputePanicked", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged: flight entry leaked after panic")
	}
	// The key is not poisoned: a fresh Do computes normally.
	v, hit, err := c.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(v) != "ok" {
		t.Errorf("post-panic Do: %q hit=%v err=%v", v, hit, err)
	}
}

func TestConcurrentMixedAccess(t *testing.T) {
	c, err := New(512, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("key-%d", i%10)
				switch i % 3 {
				case 0:
					c.Put(id, []byte(id))
				case 1:
					c.Get(id)
				default:
					c.Do(id, func() ([]byte, error) { return []byte(id), nil })
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Bytes < 0 {
		t.Errorf("byte accounting went negative: %+v", s)
	}
}
