package cache

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fakeRemote is an in-memory Remote with togglable failure.
type fakeRemote struct {
	mu   sync.Mutex
	vals map[string][]byte
	fail bool
	gets int
	puts int
}

func newFakeRemote() *fakeRemote { return &fakeRemote{vals: map[string][]byte{}} }

func (r *fakeRemote) Get(id string) ([]byte, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gets++
	if r.fail {
		return nil, false, errors.New("remote down")
	}
	v, ok := r.vals[id]
	return v, ok, nil
}

func (r *fakeRemote) Put(id string, val []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.puts++
	if r.fail {
		return errors.New("remote down")
	}
	r.vals[id] = append([]byte(nil), val...)
	return nil
}

// TestDiskEntryWorldReadable: the multi-process shared-directory
// contract requires on-disk entries readable by other users (a replica
// fleet sharing one cache tree rarely runs as one uid). CreateTemp's
// private 0600 must not leak through the rename.
func TestDiskEntryWorldReadable(t *testing.T) {
	dir := t.TempDir()
	c, err := New(1024, dir)
	if err != nil {
		t.Fatal(err)
	}
	id := Key{Netlist: "n", Flow: "f"}.ID()
	c.Put(id, []byte("payload"))
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no disk entry written (%v)", err)
	}
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Mode().Perm() != 0o644 {
			t.Errorf("entry %s mode %o, want 644", m, fi.Mode().Perm())
		}
	}
}

// TestDiskTierRefusesUnsafeIDs: the disk tier maps ids to file paths,
// so an id carrying separators or dots must never reach the
// filesystem — filepath.Join would clean "../.." into a path outside
// the cache directory. The tier treats such ids as a miss/no-op (the
// memory tier still serves them); the server's peer endpoints reject
// them upstream, but the tier must hold on its own.
func TestDiskTierRefusesUnsafeIDs(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "cache")
	c, err := New(1024, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"../../escape", `..\..\escape`, "a/b", "a.b", "..", ".", "",
	} {
		c.Put(id, []byte("v"))
		if _, ok := c.readDisk(id); ok {
			t.Errorf("unsafe id %q readable from the disk tier", id)
		}
		c.Delete(id) // removeDisk must be a no-op, not an escape either
	}
	// Nothing was written outside (or inside) the tier's directory:
	// the only entries under root are the cache dir itself.
	var files []string
	filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if len(files) != 0 {
		t.Errorf("unsafe ids left files on disk: %v", files)
	}
	// Safe ids (including the short test-style ones) still round-trip.
	c.Put("abcd", []byte("v"))
	if _, ok := c.readDisk("abcd"); !ok {
		t.Error("safe id not written to the disk tier")
	}
}

func TestRemoteTierGetAndPromotion(t *testing.T) {
	r := newFakeRemote()
	r.vals["k"] = []byte("shared")
	c, err := New(1024, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.SetRemote(r)
	v, ok := c.Get("k")
	if !ok || string(v) != "shared" {
		t.Fatalf("remote tier miss: %q %v", v, ok)
	}
	if s := c.Stats(); s.RemoteHits != 1 {
		t.Errorf("stats %+v, want 1 remote hit", s)
	}
	// The refill landed locally: the next Get is a memory hit, not
	// another remote round trip.
	if _, ok := c.Get("k"); !ok {
		t.Fatal("promoted entry missing")
	}
	if r.gets != 1 {
		t.Errorf("remote asked %d times, want 1", r.gets)
	}
}

func TestRemoteTierPutPushes(t *testing.T) {
	r := newFakeRemote()
	c, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	c.SetRemote(r)
	c.Put("k", []byte("v"))
	if got := r.vals["k"]; string(got) != "v" {
		t.Errorf("remote holds %q after Put", got)
	}
	// PutLocal must NOT push: it is the peer-endpoint store path, and
	// echoing it back out would ping-pong entries between replicas.
	c.PutLocal("k2", []byte("v2"))
	if _, ok := r.vals["k2"]; ok {
		t.Error("PutLocal leaked to the remote tier")
	}
	// GetLocal must not consult the remote either.
	gets := r.gets
	if _, ok := c.GetLocal("absent"); ok {
		t.Error("GetLocal hit on absent entry")
	}
	if r.gets != gets {
		t.Error("GetLocal recursed into the remote tier")
	}
}

func TestRemoteTierFailSoft(t *testing.T) {
	r := newFakeRemote()
	r.fail = true
	c, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	c.SetRemote(r)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit from a dead remote")
	}
	c.Put("k", []byte("v")) // push fails; local store must still work
	if v, ok := c.Get("k"); !ok || string(v) != "v" {
		t.Fatalf("local tier lost the value: %q %v", v, ok)
	}
	if s := c.Stats(); s.RemoteErrors != 2 {
		t.Errorf("stats %+v, want 2 remote errors (one get, one put)", s)
	}
}

// peerHandler implements the smartlyd cache peer endpoints over a
// backing Cache, mirroring internal/server's handlers (which cannot be
// imported here without a dependency cycle).
func peerHandler(c *Cache) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache/{id}", func(w http.ResponseWriter, r *http.Request) {
		val, ok := c.GetLocal(r.PathValue("id"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(Frame(val))
	})
	mux.HandleFunc("PUT /v1/cache/{id}", func(w http.ResponseWriter, r *http.Request) {
		raw := new(bytes.Buffer)
		raw.ReadFrom(r.Body)
		val, ok := Unframe(raw.Bytes())
		if !ok {
			http.Error(w, "malformed", http.StatusBadRequest)
			return
		}
		c.PutLocal(r.PathValue("id"), val)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func TestHTTPPeerRoundTrip(t *testing.T) {
	head, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(peerHandler(head))
	defer ts.Close()
	p := NewHTTPPeer(ts.URL, 0)

	if _, ok, err := p.Get("absent"); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	if err := p.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := p.Get("k")
	if err != nil || !ok || string(v) != "payload" {
		t.Fatalf("get after put: %q ok=%v err=%v", v, ok, err)
	}

	// A full replica pair: cache B resolves its miss through the peer.
	b, err := New(1024, "")
	if err != nil {
		t.Fatal(err)
	}
	b.SetRemote(p)
	v, ok = b.Get("k")
	if !ok || string(v) != "payload" {
		t.Fatalf("replica b remote miss: %q %v", v, ok)
	}
	if s := b.Stats(); s.RemoteHits != 1 {
		t.Errorf("replica b stats %+v", s)
	}
}

func TestHTTPPeerDamagedTransfer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not a framed payload"))
	}))
	defer ts.Close()
	p := NewHTTPPeer(ts.URL, 0)
	if _, ok, err := p.Get("k"); ok || err == nil {
		t.Fatalf("damaged transfer not rejected: ok=%v err=%v", ok, err)
	}
}
