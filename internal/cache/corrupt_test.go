package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func testID(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// entryPath locates the disk file of an id the same way the tier does.
func entryPath(dir, id string) string {
	return filepath.Join(dir, id[:2], id)
}

// newDiskCache builds a cache with a disk tier and stores one entry,
// returning the cache, the id and the entry's path.
func newDiskCache(t *testing.T, val []byte) (*Cache, string, string) {
	t.Helper()
	dir := t.TempDir()
	c, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	id := testID("corrupt-test")
	c.Put(id, val)
	return c, id, entryPath(dir, id)
}

// freshOver reopens a cache over the same directory, so reads must come
// from disk.
func freshOver(t *testing.T, path string) *Cache {
	t.Helper()
	dir := filepath.Dir(filepath.Dir(path))
	c, err := New(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDiskCorruptEntries(t *testing.T) {
	val := []byte("payload bytes")
	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped_payload_byte", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-1] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped_checksum_byte", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(diskMagic)] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad_magic", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("JUNKxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"header_only", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:diskHeaderLen-2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, id, path := newDiskCache(t, val)
			tc.corrupt(t, path)

			// A fresh cache over the damaged directory must miss, not
			// error or serve wrong bytes — and must drop the bad file.
			c := freshOver(t, path)
			if v, ok := c.Get(id); ok {
				t.Fatalf("corrupt entry served: %q", v)
			}
			st := c.Stats()
			if st.Misses != 1 || st.DiskHits != 0 {
				t.Errorf("stats after corrupt read: %+v, want 1 miss", st)
			}
			if st.DiskBad != 1 && tc.name != "empty" && tc.name != "header_only" && tc.name != "bad_magic" {
				// All shapes count as bad; spot-check at least the
				// checksum failures.
				t.Errorf("DiskBad = %d, want 1", st.DiskBad)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt file kept on disk (err=%v)", err)
			}

			// Do must recompute and heal the entry.
			healed := []byte("recomputed")
			got, hit, err := c.Do(id, func() ([]byte, error) { return healed, nil })
			if err != nil || hit || string(got) != "recomputed" {
				t.Fatalf("Do after corruption: %q hit=%v err=%v", got, hit, err)
			}
			c2 := freshOver(t, path)
			if v, ok := c2.Get(id); !ok || string(v) != "recomputed" {
				t.Errorf("healed entry not served from disk: %q %v", v, ok)
			}
		})
	}
}

func TestDeleteRemovesBothTiers(t *testing.T) {
	c, id, path := newDiskCache(t, []byte("v"))
	if _, ok := c.Get(id); !ok {
		t.Fatal("entry not stored")
	}
	c.Delete(id)
	if _, ok := c.Get(id); ok {
		t.Error("deleted entry still served from memory/disk")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("deleted entry file still on disk (err=%v)", err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after delete: %+v, want empty", st)
	}
	// Deleting a missing id is a no-op.
	c.Delete(id)
}

func TestModuleKeyID(t *testing.T) {
	k := ModuleKey{Module: "mhash", Flow: "opt_expr", Options: ""}
	if k.ID() != (ModuleKey{Module: "mhash", Flow: "opt_expr"}).ID() {
		t.Error("equal module keys produced different ids")
	}
	distinct := []ModuleKey{
		k,
		{Module: "mhash2", Flow: "opt_expr"},
		{Module: "mhash", Flow: "opt_clean"},
		{Module: "mhash", Flow: "opt_expr", Options: "timings=true"},
	}
	seen := map[string]int{}
	for i, mk := range distinct {
		if j, dup := seen[mk.ID()]; dup {
			t.Errorf("module keys %d and %d collide", i, j)
		}
		seen[mk.ID()] = i
	}
	// Domain separation: a module key never collides with a design key,
	// even when a crafted design key spells out the module prefix.
	mk := ModuleKey{Module: "a", Flow: "b", Options: "c"}
	for _, dk := range []Key{
		{Netlist: "a", Flow: "b", Options: "c"},
		{Netlist: "module", Flow: "a", Options: "b"},
		{Netlist: "6:module1:a", Flow: "b", Options: "c"},
	} {
		if dk.ID() == mk.ID() {
			t.Errorf("design key %+v collides with module key", dk)
		}
	}
	// Concatenation attacks must not fold fields together.
	if (ModuleKey{Module: "ab", Flow: ""}).ID() == (ModuleKey{Module: "a", Flow: "b"}).ID() {
		t.Error("field boundary forgeable")
	}
}

func TestDiskFormatFramed(t *testing.T) {
	// The on-disk file is framed: magic + checksum + payload.
	_, _, path := newDiskCache(t, []byte("hello"))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != diskHeaderLen+5 {
		t.Fatalf("disk entry %d bytes, want header(%d)+5", len(raw), diskHeaderLen)
	}
	if string(raw[:len(diskMagic)]) != diskMagic {
		t.Errorf("disk entry starts with %q, want %q", raw[:len(diskMagic)], diskMagic)
	}
	want := sha256.Sum256([]byte("hello"))
	if got := raw[len(diskMagic):diskHeaderLen]; !eqBytes(got, want[:]) {
		t.Error("disk entry checksum mismatch")
	}
	if string(raw[diskHeaderLen:]) != "hello" {
		t.Errorf("disk entry payload %q", raw[diskHeaderLen:])
	}
}

func eqBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConcurrentCorruptReads(t *testing.T) {
	// Concurrent Gets against a corrupt disk entry must all miss cleanly
	// (run under -race in CI); the removal is idempotent.
	val := []byte("payload")
	_, id, path := newDiskCache(t, val)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 1
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	c := freshOver(t, path)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			if v, ok := c.Get(id); ok {
				done <- fmt.Errorf("corrupt entry served: %q", v)
				return
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
