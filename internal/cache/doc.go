// Package cache is the content-addressed result cache behind the
// smartlyd serving layer (internal/server).
//
// Results are keyed at two granularities:
//
//   - Key addresses a whole-design payload: the canonical design hash
//     (rtlil.CanonicalHashDesign), the normalized flow script
//     (opt.Flow.Canonical) and the request-level option set.
//   - ModuleKey addresses one module's payload (canonical module hash +
//     flow + options) — the module-granular tier behind design-mode
//     sharding, where a resubmitted design with one edited module
//     re-optimizes only that module. Its ids are domain-separated from
//     Key's, so the two granularities can never collide.
//
// Two requests hit the same entry exactly when they are guaranteed to
// produce the same bytes: the engine's results are bit-identical for
// every worker count and module-jobs split, which is why neither is
// part of any key.
//
// The cache has two tiers:
//
//   - a memory tier: an LRU bounded by total value bytes, and
//   - an optional disk tier (New's dir argument): every stored value is
//     also written to dir, memory misses are refilled from it, and
//     entries survive both memory eviction and process restarts. Disk
//     entries are framed with a checksum; ones damaged at rest
//     (truncated, corrupted) are detected on read, dropped and served
//     as a miss — reads fail soft, never with wrong bytes or an error.
//
// Do adds request coalescing: concurrent calls for the same key run the
// compute function once and share its result, so a thundering herd of
// identical submissions costs one optimization run.
//
// Values are opaque []byte; the server stores its serialized response
// payload (optimized netlist JSON + run reports). All methods are safe
// for concurrent use.
package cache
