// Package cache is the content-addressed result cache behind the
// smartlyd serving layer (internal/server).
//
// Results are keyed by a Key — the canonical netlist hash
// (rtlil.CanonicalHashDesign), the normalized flow script
// (opt.Flow.Canonical) and the request-level option set — so two
// requests hit the same entry exactly when they are guaranteed to
// produce the same bytes: the engine's results are bit-identical for
// every worker count, which is why the worker budget is *not* part of
// the key.
//
// The cache has two tiers:
//
//   - a memory tier: an LRU bounded by total value bytes, and
//   - an optional disk tier (New's dir argument): every stored value is
//     also written to dir, memory misses are refilled from it, and
//     entries survive both memory eviction and process restarts.
//
// Do adds request coalescing: concurrent calls for the same key run the
// compute function once and share its result, so a thundering herd of
// identical submissions costs one optimization run.
//
// Values are opaque []byte; the server stores its serialized response
// payload (optimized netlist JSON + run reports). All methods are safe
// for concurrent use.
package cache
