package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The disk tier stores each value as one file named by its id, sharded
// into 256 subdirectories by the first id byte so directories stay
// small. Writes go through a temp file + rename, so readers (and other
// smartlyd processes sharing the directory) never observe a partial
// value. Disk I/O failures degrade the cache, never the request: a
// failed write is dropped, a failed read is a miss.

// initDisk validates and creates the disk-tier directory.
func (c *Cache) initDisk() error {
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("cache: creating disk tier: %w", err)
	}
	return nil
}

// diskPath maps an id to its shard file. Ids are hex hashes; anything
// else (impossible via Key.ID) would still stay inside dir.
func (c *Cache) diskPath(id string) string {
	shard := "00"
	if len(id) >= 2 && !strings.ContainsAny(id[:2], `/\.`) {
		shard = id[:2]
	}
	return filepath.Join(c.dir, shard, id)
}

// readDisk fetches a value from the disk tier; a missing tier or any
// read failure is a miss.
func (c *Cache) readDisk(id string) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	val, err := os.ReadFile(c.diskPath(id))
	if err != nil {
		return nil, false
	}
	return val, true
}

// writeDisk persists a value to the disk tier, best effort.
func (c *Cache) writeDisk(id string, val []byte) {
	if c.dir == "" {
		return
	}
	path := c.diskPath(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}
