package cache

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The disk tier stores each value as one file named by its id, sharded
// into 256 subdirectories by the first id byte so directories stay
// small. Writes go through a temp file + rename, so readers (and other
// smartlyd processes sharing the directory) never observe a partial
// value. Each file is framed with a magic header and a content
// checksum, so entries damaged at rest — truncated by a full disk,
// corrupted by a crash, or hand-edited — are detected on read and
// served as a miss, never as wrong bytes or an error. Disk I/O failures
// degrade the cache the same way: a failed write is dropped, a failed
// read is a miss.

// diskMagic marks a framed disk entry; diskHeaderLen is the framing
// overhead (magic + SHA-256 of the payload) preceding the payload.
const diskMagic = "SMC1"

const diskHeaderLen = len(diskMagic) + sha256.Size

// initDisk validates and creates the disk-tier directory.
func (c *Cache) initDisk() error {
	if c.dir == "" {
		return nil
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("cache: creating disk tier: %w", err)
	}
	return nil
}

// diskSafeID reports whether an id may name a file in the tier. Ids
// produced by Key.ID/ModuleKey.ID are hex hashes and always pass; an
// id carrying a path separator or a dot could escape the cache
// directory once filepath.Join cleans it ("../../etc/x"), so the tier
// refuses it outright — every operation on such an id is a miss or a
// no-op. The server's peer endpoints validate ids upstream, but the
// tier must not depend on every caller doing so.
func diskSafeID(id string) bool {
	if id == "" {
		return false
	}
	for i := 0; i < len(id); i++ {
		switch c := id[i]; {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// diskPath maps an id to its shard file. Callers must have checked
// diskSafeID first.
func (c *Cache) diskPath(id string) string {
	shard := "00"
	if len(id) >= 2 && !strings.ContainsAny(id[:2], `/\.`) {
		shard = id[:2]
	}
	return filepath.Join(c.dir, shard, id)
}

// readDisk fetches a value from the disk tier; a missing tier, any read
// failure and any framing/checksum mismatch is a miss. Corrupt entries
// are deleted so the slot is rewritten by the recompute's Put instead
// of failing every future lookup.
func (c *Cache) readDisk(id string) ([]byte, bool) {
	if c.dir == "" || !diskSafeID(id) {
		return nil, false
	}
	raw, err := os.ReadFile(c.diskPath(id))
	if err != nil {
		return nil, false
	}
	val, ok := unframe(raw)
	if !ok {
		os.Remove(c.diskPath(id))
		c.mu.Lock()
		c.stats.DiskBad++
		c.mu.Unlock()
		return nil, false
	}
	return val, true
}

// unframe validates a disk entry's magic and checksum and returns the
// payload.
func unframe(raw []byte) ([]byte, bool) {
	if len(raw) < diskHeaderLen || string(raw[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	sum := raw[len(diskMagic):diskHeaderLen]
	val := raw[diskHeaderLen:]
	got := sha256.Sum256(val)
	if !bytes.Equal(sum, got[:]) {
		return nil, false
	}
	return val, true
}

// Frame wraps a payload in the disk/wire framing (magic + SHA-256 +
// payload). The remote peer protocol ships framed bytes so a transfer
// corrupted in flight is detected by Unframe on the receiving side,
// exactly like an entry corrupted at rest.
func Frame(val []byte) []byte {
	sum := sha256.Sum256(val)
	out := make([]byte, 0, diskHeaderLen+len(val))
	out = append(out, diskMagic...)
	out = append(out, sum[:]...)
	return append(out, val...)
}

// Unframe validates framed bytes (see Frame) and returns the payload;
// ok is false for anything damaged or truncated.
func Unframe(raw []byte) ([]byte, bool) { return unframe(raw) }

// writeDisk persists a value to the disk tier, best effort.
func (c *Cache) writeDisk(id string, val []byte) {
	if c.dir == "" || !diskSafeID(id) {
		return
	}
	path := c.diskPath(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*")
	if err != nil {
		return
	}
	sum := sha256.Sum256(val)
	_, err = tmp.Write([]byte(diskMagic))
	if err == nil {
		_, err = tmp.Write(sum[:])
	}
	if err == nil {
		_, err = tmp.Write(val)
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	// CreateTemp makes the file 0600, which breaks the documented
	// multi-process contract: replicas sharing the directory may run as
	// different users, and a 0600 entry written by one is unreadable (a
	// permanent miss) for the others. World-readable like any published
	// cache artifact; Chmod is not subject to the umask.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

// removeDisk drops a disk-tier entry, best effort.
func (c *Cache) removeDisk(id string) {
	if c.dir == "" || !diskSafeID(id) {
		return
	}
	os.Remove(c.diskPath(id))
}
