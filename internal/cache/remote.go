package cache

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The remote tier lets N replicas behind a load balancer share one
// content-addressed pool: after a memory and disk miss the cache asks a
// Remote before computing, and every Put is pushed to it. The tier is
// fail-soft like the disk tier — a remote error or a damaged transfer
// is a miss (counted in Stats.RemoteErrors), never a failed request —
// so a dead peer degrades a replica to its local tiers and nothing
// else. Entries are location-independent by construction: ids are
// content hashes (Key/ModuleKey), so any replica's entry is valid on
// every other.

// Remote is a shared cache tier behind the memory and disk tiers.
// Implementations must be safe for concurrent use. Get returns the
// payload and whether it was found; an error means the tier itself
// failed (network down, peer gone) rather than a plain miss.
type Remote interface {
	Get(id string) ([]byte, bool, error)
	Put(id string, val []byte) error
}

// SetRemote attaches (or, with nil, detaches) the shared remote tier.
func (c *Cache) SetRemote(r Remote) {
	c.mu.Lock()
	c.remote = r
	c.mu.Unlock()
}

// getRemote snapshots the remote tier under the lock.
func (c *Cache) getRemote() Remote {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remote
}

// HTTPPeer is a Remote backed by another smartlyd's cache peer
// endpoints (GET/PUT /v1/cache/{id}, see docs/api.md). Payloads travel
// framed (Frame/Unframe), so a transfer corrupted in flight is detected
// and treated as a miss on the receiving side.
type HTTPPeer struct {
	base string
	hc   *http.Client
}

// NewHTTPPeer builds a peer client for the daemon at baseURL (e.g.
// "http://cache-head:8080"). timeout bounds each request (0 = 5s): the
// remote tier sits on the request path, so a hung peer must degrade to
// a miss quickly instead of stalling every cold request.
func NewHTTPPeer(baseURL string, timeout time.Duration) *HTTPPeer {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &HTTPPeer{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: timeout},
	}
}

func (p *HTTPPeer) url(id string) string { return p.base + "/v1/cache/" + id }

// Get fetches one entry from the peer. A 404 is a plain miss; any
// transport failure, non-2xx status or framing mismatch is an error
// (the caller counts it and serves a miss).
func (p *HTTPPeer) Get(id string) ([]byte, bool, error) {
	resp, err := p.hc.Get(p.url(id))
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("cache: peer get %s: HTTP %d", id[:min(12, len(id))], resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	val, ok := Unframe(raw)
	if !ok {
		return nil, false, fmt.Errorf("cache: peer get %s: damaged transfer", id[:min(12, len(id))])
	}
	return val, true, nil
}

// Put pushes one entry to the peer, framed.
func (p *HTTPPeer) Put(id string, val []byte) error {
	req, err := http.NewRequest(http.MethodPut, p.url(id), bytes.NewReader(Frame(val)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("cache: peer put %s: HTTP %d", id[:min(12, len(id))], resp.StatusCode)
	}
	// Drain so the connection is reused.
	io.Copy(io.Discard, resp.Body)
	return nil
}
