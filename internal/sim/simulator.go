package sim

import (
	"fmt"

	"repro/internal/rtlil"
)

// Simulator evaluates a whole module combinationally in four-state logic.
// Primary inputs and $dff Q bits are free variables: values not provided
// to Eval default to x. Build once, evaluate many times.
type Simulator struct {
	mod   *rtlil.Module
	ix    *rtlil.Index
	order []*rtlil.Cell
}

// NewSimulator prepares a simulator for the module. It fails on
// combinational loops.
func NewSimulator(m *rtlil.Module) (*Simulator, error) {
	order, err := rtlil.TopoSort(m)
	if err != nil {
		return nil, err
	}
	return &Simulator{mod: m, ix: rtlil.NewIndex(m), order: order}, nil
}

// Index returns the module index used by the simulator.
func (s *Simulator) Index() *rtlil.Index { return s.ix }

// Eval computes the value of every bit in the module given assignments to
// free bits (primary inputs and flip-flop outputs). Unassigned free bits
// are x. The returned map is keyed by canonical (SigMap-resolved) bits.
func (s *Simulator) Eval(inputs map[rtlil.SigBit]rtlil.State) (map[rtlil.SigBit]rtlil.State, error) {
	vals := make(map[rtlil.SigBit]rtlil.State, len(inputs)*4)
	for b, v := range inputs {
		vals[s.ix.MapBit(b)] = norm(v)
	}
	get := func(b rtlil.SigBit) rtlil.State {
		b = s.ix.MapBit(b)
		if b.IsConst() {
			return norm(b.Const)
		}
		if v, ok := vals[b]; ok {
			return v
		}
		return rtlil.Sx
	}
	for _, c := range s.order {
		if rtlil.IsSequential(c.Type) {
			continue // Q bits are free variables
		}
		in := map[string][]rtlil.State{}
		for _, p := range rtlil.InputPorts(c.Type) {
			sig := c.Port(p)
			v := make([]rtlil.State, len(sig))
			for i, b := range sig {
				v[i] = get(b)
			}
			in[p] = v
		}
		out, err := EvalCell(c, in)
		if err != nil {
			return nil, err
		}
		ysig := c.Port(outputPort(c.Type))
		if len(out) != len(ysig) {
			return nil, fmt.Errorf("sim: cell %s produced %d bits for %d-bit output", c.Name, len(out), len(ysig))
		}
		for i, b := range ysig {
			if b.IsConst() {
				continue
			}
			vals[s.ix.MapBit(b)] = out[i]
		}
	}
	return vals, nil
}

// EvalSig reads a signal value out of an Eval result.
func (s *Simulator) EvalSig(vals map[rtlil.SigBit]rtlil.State, sig rtlil.SigSpec) []rtlil.State {
	out := make([]rtlil.State, len(sig))
	for i, b := range sig {
		mb := s.ix.MapBit(b)
		if mb.IsConst() {
			out[i] = norm(mb.Const)
		} else if v, ok := vals[mb]; ok {
			out[i] = v
		} else {
			out[i] = rtlil.Sx
		}
	}
	return out
}

// FreeBits returns the canonical free-variable bits of the module: primary
// input bits plus $dff Q bits, in deterministic order.
func FreeBits(m *rtlil.Module) []rtlil.SigBit {
	ix := rtlil.NewIndex(m)
	seen := map[rtlil.SigBit]bool{}
	var out []rtlil.SigBit
	add := func(sig rtlil.SigSpec) {
		for _, b := range ix.Map(sig) {
			if b.IsConst() || seen[b] {
				continue
			}
			seen[b] = true
			out = append(out, b)
		}
	}
	for _, w := range m.Inputs() {
		add(w.Bits())
	}
	for _, c := range m.Cells() {
		if rtlil.IsSequential(c.Type) {
			add(c.Port("Q"))
		}
	}
	return out
}

func outputPort(t rtlil.CellType) string {
	ps := rtlil.OutputPorts(t)
	if len(ps) != 1 {
		panic(fmt.Sprintf("sim: cell type %s has %d outputs", t, len(ps)))
	}
	return ps[0]
}
