package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/rtlil"
)

// Parallel is a two-valued, 64-way bit-parallel simulator: every signal
// bit carries a uint64 lane vector, so one Run evaluates 64 input patterns
// at once. Unknown (x/z) constants evaluate as 0 — Parallel is a filter
// for candidate counterexamples, not a four-state reference (that is
// Simulator's job).
//
// $pmux follows the canonical ascending-priority lowering used throughout
// this repository: y = A; for i = 0..S_WIDTH-1: y = S[i] ? B_word(i) : y.
type Parallel struct {
	mod   *rtlil.Module
	ix    *rtlil.Index
	order []*rtlil.Cell
}

// NewParallel prepares a parallel simulator for the module. It fails on
// combinational loops.
func NewParallel(m *rtlil.Module) (*Parallel, error) {
	order, err := rtlil.TopoSort(m)
	if err != nil {
		return nil, err
	}
	return &Parallel{mod: m, ix: rtlil.NewIndex(m), order: order}, nil
}

// Index returns the module index used by the simulator.
func (p *Parallel) Index() *rtlil.Index { return p.ix }

// Run evaluates the module for the 64 patterns encoded in inputs. Free
// bits (primary inputs, dff Q bits) not present in the map are 0 in every
// lane. The result maps every computed canonical bit to its lane vector.
func (p *Parallel) Run(inputs map[rtlil.SigBit]uint64) map[rtlil.SigBit]uint64 {
	vals := make(map[rtlil.SigBit]uint64, len(inputs)*4)
	for b, v := range inputs {
		vals[p.ix.MapBit(b)] = v
	}
	get := func(b rtlil.SigBit) uint64 {
		b = p.ix.MapBit(b)
		if b.IsConst() {
			if b.Const == rtlil.S1 {
				return ^uint64(0)
			}
			return 0
		}
		return vals[b]
	}
	lanes := func(sig rtlil.SigSpec) []uint64 {
		v := make([]uint64, len(sig))
		for i, b := range sig {
			v[i] = get(b)
		}
		return v
	}
	for _, c := range p.order {
		if rtlil.IsSequential(c.Type) {
			continue
		}
		y := evalLanes(c, lanes)
		ysig := c.Port(outputPort(c.Type))
		for i, b := range ysig {
			if b.IsConst() {
				continue
			}
			vals[p.ix.MapBit(b)] = y[i]
		}
	}
	return vals
}

// Sig reads a signal's lane vectors out of a Run result.
func (p *Parallel) Sig(vals map[rtlil.SigBit]uint64, sig rtlil.SigSpec) []uint64 {
	out := make([]uint64, len(sig))
	for i, b := range sig {
		mb := p.ix.MapBit(b)
		if mb.IsConst() {
			if mb.Const == rtlil.S1 {
				out[i] = ^uint64(0)
			}
			continue
		}
		out[i] = vals[mb]
	}
	return out
}

// RandomInputs draws one 64-pattern lane vector per free bit from rng.
func RandomInputs(m *rtlil.Module, rng *rand.Rand) map[rtlil.SigBit]uint64 {
	in := map[rtlil.SigBit]uint64{}
	for _, b := range FreeBits(m) {
		in[b] = rng.Uint64()
	}
	return in
}

func resizeLanes(v []uint64, width int) []uint64 {
	if len(v) == width {
		return v
	}
	out := make([]uint64, width)
	copy(out, v)
	return out
}

func evalLanes(c *rtlil.Cell, lanes func(rtlil.SigSpec) []uint64) []uint64 {
	return evalLanesPorts(c, func(name string) []uint64 {
		if sig := c.Port(name); sig != nil {
			return lanes(sig)
		}
		return nil
	})
}

// evalLanesPorts is the port-name-indexed core of evalLanes: Cone
// resolves ports through precomputed slot plans instead of SigSpec
// lookups, so the dispatch must not touch c.Conn on the hot path.
func evalLanesPorts(c *rtlil.Cell, port func(string) []uint64) []uint64 {
	yw := len(c.Port("Y"))
	A := port("A")
	B := port("B")
	switch c.Type {
	case rtlil.CellNot:
		a := resizeLanes(A, yw)
		out := make([]uint64, yw)
		for i := range out {
			out[i] = ^a[i]
		}
		return out
	case rtlil.CellNeg:
		a := resizeLanes(A, yw)
		out := make([]uint64, yw)
		carry := ^uint64(0) // +1
		for i := range out {
			x := ^a[i]
			out[i] = x ^ carry
			carry = x & carry
		}
		return out
	case rtlil.CellReduceAnd:
		r := ^uint64(0)
		for _, v := range A {
			r &= v
		}
		return []uint64{r}
	case rtlil.CellReduceOr:
		var r uint64
		for _, v := range A {
			r |= v
		}
		return []uint64{r}
	case rtlil.CellReduceXor:
		var r uint64
		for _, v := range A {
			r ^= v
		}
		return []uint64{r}
	case rtlil.CellLogicNot:
		var r uint64
		for _, v := range A {
			r |= v
		}
		return []uint64{^r}

	case rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor, rtlil.CellXnor:
		a, b := resizeLanes(A, yw), resizeLanes(B, yw)
		out := make([]uint64, yw)
		for i := range out {
			switch c.Type {
			case rtlil.CellAnd:
				out[i] = a[i] & b[i]
			case rtlil.CellOr:
				out[i] = a[i] | b[i]
			case rtlil.CellXor:
				out[i] = a[i] ^ b[i]
			case rtlil.CellXnor:
				out[i] = ^(a[i] ^ b[i])
			}
		}
		return out

	case rtlil.CellAdd:
		return addLanes(resizeLanes(A, yw), resizeLanes(B, yw), 0)
	case rtlil.CellSub:
		b := resizeLanes(B, yw)
		nb := make([]uint64, yw)
		for i := range nb {
			nb[i] = ^b[i]
		}
		return addLanes(resizeLanes(A, yw), nb, ^uint64(0))
	case rtlil.CellMul:
		a, b := resizeLanes(A, yw), resizeLanes(B, yw)
		acc := make([]uint64, yw)
		for j := 0; j < yw; j++ {
			part := make([]uint64, yw)
			for i := j; i < yw; i++ {
				part[i] = a[i-j] & b[j]
			}
			acc = addLanes(acc, part, 0)
		}
		return acc

	case rtlil.CellDiv:
		// No structural lane formula: transpose, divide per lane,
		// transpose back. Division by zero is all-x, clamped to 0.
		out := make([]uint64, yw)
		if len(A) > 64 || len(B) > 64 {
			return out // EvalCell: all-x above 64 bits, clamped to 0
		}
		for lane := uint(0); lane < 64; lane++ {
			b := gatherLane(B, lane)
			var v uint64
			if b != 0 {
				v = gatherLane(A, lane) / b
			}
			scatterLane(out, lane, v)
		}
		return out

	case rtlil.CellEq, rtlil.CellNe:
		w := len(A)
		if len(B) > w {
			w = len(B)
		}
		a, b := resizeLanes(A, w), resizeLanes(B, w)
		var diff uint64
		for i := 0; i < w; i++ {
			diff |= a[i] ^ b[i]
		}
		if c.Type == rtlil.CellEq {
			return []uint64{^diff}
		}
		return []uint64{diff}

	case rtlil.CellLt, rtlil.CellLe, rtlil.CellGt, rtlil.CellGe:
		w := len(A)
		if len(B) > w {
			w = len(B)
		}
		a, b := resizeLanes(A, w), resizeLanes(B, w)
		var lt uint64
		eq := ^uint64(0)
		for i := w - 1; i >= 0; i-- {
			lt |= eq & ^a[i] & b[i]
			eq &= ^(a[i] ^ b[i])
		}
		switch c.Type {
		case rtlil.CellLt:
			return []uint64{lt}
		case rtlil.CellLe:
			return []uint64{lt | eq}
		case rtlil.CellGt:
			return []uint64{^(lt | eq)}
		default: // CellGe
			return []uint64{^lt}
		}

	case rtlil.CellLogicAnd, rtlil.CellLogicOr:
		var ra, rb uint64
		for _, v := range A {
			ra |= v
		}
		for _, v := range B {
			rb |= v
		}
		if c.Type == rtlil.CellLogicAnd {
			return []uint64{ra & rb}
		}
		return []uint64{ra | rb}

	case rtlil.CellShl, rtlil.CellShr:
		cur := resizeLanes(A, yw)
		// Barrel decomposition over the select bits. Select bits whose
		// weight is >= yw force the result to zero in their lanes.
		var overflow uint64
		for j, sel := range B {
			amt := 1 << uint(j)
			if j >= 31 || amt >= yw {
				overflow |= sel
				continue
			}
			next := make([]uint64, yw)
			for i := 0; i < yw; i++ {
				var shifted uint64
				if c.Type == rtlil.CellShl {
					if i-amt >= 0 {
						shifted = cur[i-amt]
					}
				} else {
					if i+amt < yw {
						shifted = cur[i+amt]
					}
				}
				next[i] = (sel & shifted) | (^sel & cur[i])
			}
			cur = next
		}
		// Write a fresh slice: cur may still alias the caller's A
		// buffer (zero select bits), which must not be mutated.
		out := make([]uint64, yw)
		for i := range out {
			out[i] = cur[i] &^ overflow
		}
		return out

	case rtlil.CellMux:
		s := port("S")[0]
		a, b := resizeLanes(A, yw), resizeLanes(B, yw)
		out := make([]uint64, yw)
		for i := range out {
			out[i] = (s & b[i]) | (^s & a[i])
		}
		return out

	case rtlil.CellPmux:
		w := c.Param("WIDTH")
		sw := c.Param("S_WIDTH")
		s := port("S")
		cur := resizeLanes(A, w)
		for i := 0; i < sw; i++ {
			word := B[i*w : (i+1)*w]
			next := make([]uint64, w)
			for k := 0; k < w; k++ {
				next[k] = (s[i] & word[k]) | (^s[i] & cur[k])
			}
			cur = next
		}
		return cur
	}
	panic(fmt.Sprintf("sim: evalLanes on unsupported cell type %s", c.Type))
}

func addLanes(a, b []uint64, carry uint64) []uint64 {
	out := make([]uint64, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i] ^ carry
		carry = (a[i] & b[i]) | (a[i] & carry) | (b[i] & carry)
	}
	return out
}
