package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rtlil"
)

// buildConeModule extends buildRandomModule's cell mix with the shapes
// only the cone evaluator handles specially: $div, free-select $pmux
// (possibly multi-hot), and variable shifts.
func buildConeModule(rng *rand.Rand, nOps int) *rtlil.Module {
	m := rtlil.NewModule("cone")
	var sigs []rtlil.SigSpec
	for i := 0; i < 4; i++ {
		sigs = append(sigs, m.AddInput(inName(i), 1+rng.Intn(6)).Bits())
	}
	pick := func() rtlil.SigSpec { return sigs[rng.Intn(len(sigs))] }
	cellN := 0
	newY := func(w int) rtlil.SigSpec {
		cellN++
		return m.NewWire(w).Bits()
	}
	for i := 0; i < nOps; i++ {
		var y rtlil.SigSpec
		switch rng.Intn(8) {
		case 0:
			y = m.Not(pick())
		case 1:
			y = m.And(pick(), pick())
		case 2:
			y = m.AddOp(pick(), pick())
		case 3:
			y = m.MulOp(pick(), pick())
		case 4:
			a, b := pick(), pick()
			y = newY(len(a))
			m.AddBinary(rtlil.CellDiv, fmt.Sprintf("div%d", cellN), a, b, y)
		case 5:
			// Free (possibly multi-hot) selects: four-state gives all-x
			// on overlap, the clamped convention gives 0.
			a := pick()
			b := []rtlil.SigSpec{pick().Resize(len(a), false), pick().Resize(len(a), false)}
			s := rtlil.Concat(pick().Extract(0, 1), pick().Extract(0, 1))
			y = m.Pmux(a, b, s)
		case 6:
			y = m.Shl(pick(), pick().Resize(3, false))
		case 7:
			y = m.Shr(pick(), pick().Resize(3, false))
		}
		sigs = append(sigs, y)
	}
	out := m.AddOutput("out", len(sigs[len(sigs)-1]))
	m.Connect(out.Bits(), sigs[len(sigs)-1])
	return m
}

// evalClampedScalar is the reference for the cone's scalar-compat mode:
// cell-at-a-time four-state evaluation with every non-boolean output bit
// clamped to 0, exactly the SAT-mux exhaustive stage's convention.
func evalClampedScalar(t *testing.T, ix *rtlil.Index, order []*rtlil.Cell, vals map[rtlil.SigBit]rtlil.State) {
	t.Helper()
	get := func(b rtlil.SigBit) rtlil.State {
		b = ix.MapBit(b)
		if b.IsConst() {
			if b.Const == rtlil.S1 {
				return rtlil.S1
			}
			return rtlil.S0
		}
		if v, ok := vals[b]; ok {
			return v
		}
		return rtlil.S0
	}
	for _, c := range order {
		in := map[string][]rtlil.State{}
		for _, p := range rtlil.InputPorts(c.Type) {
			sig := c.Port(p)
			v := make([]rtlil.State, len(sig))
			for i, b := range sig {
				v[i] = get(b)
			}
			in[p] = v
		}
		out, err := EvalCell(c, in)
		if err != nil {
			t.Fatalf("EvalCell(%s): %v", c.Name, err)
		}
		for i, b := range ix.Map(c.Port(rtlil.OutputPorts(c.Type)[0])) {
			if b.IsConst() {
				continue
			}
			v := out[i]
			if v != rtlil.S0 && v != rtlil.S1 {
				v = rtlil.S0
			}
			vals[b] = v
		}
	}
}

// coneFreeSlots fills vals with rng lane vectors for every slot not
// driven by a cone cell and returns the free-bit map for the references.
func coneFreeSlots(cone *Cone, ix *rtlil.Index, order []*rtlil.Cell, rng *rand.Rand, vals []uint64) map[rtlil.SigBit]uint64 {
	driven := map[rtlil.SigBit]bool{}
	for _, c := range order {
		for _, b := range ix.Map(c.Port(outputPort(c.Type))) {
			driven[b] = true
		}
	}
	free := map[rtlil.SigBit]uint64{}
	for slot, b := range cone.Bits() {
		if driven[b] {
			continue
		}
		v := rng.Uint64()
		vals[slot] = v
		free[b] = v
	}
	return free
}

func diffConeScalar(t *testing.T, m *rtlil.Module, rng *rand.Rand) {
	t.Helper()
	ix := rtlil.NewIndex(m)
	order, err := rtlil.TopoSort(m)
	if err != nil {
		t.Fatalf("topo: %v", err)
	}
	cone, err := NewCone(ix, order, true)
	if err != nil {
		t.Skipf("cone rejected: %v", err)
	}
	vals := make([]uint64, cone.NumSlots())
	free := coneFreeSlots(cone, ix, order, rng, vals)
	cone.Eval(vals)

	for _, lane := range []uint{0, 7, 33, 63} {
		ref := map[rtlil.SigBit]rtlil.State{}
		for b, v := range free {
			ref[b] = rtlil.BoolState((v>>lane)&1 == 1)
		}
		evalClampedScalar(t, ix, order, ref)
		for slot, b := range cone.Bits() {
			want := ref[b]
			if _, ok := ref[b]; !ok {
				want = rtlil.S0
			}
			got := rtlil.BoolState((vals[slot]>>lane)&1 == 1)
			if got != want {
				t.Fatalf("lane %d slot %d (%v): cone=%s scalar=%s", lane, slot, b, got, want)
			}
		}
	}
}

// FuzzSimDifferential cross-checks the compiled cone evaluator against
// the per-cell four-state reference (clamped convention) on random
// combinational modules covering every supported cell type, and the
// AIG-mode cone against the Parallel simulator where the module has an
// AIG-mode evaluation.
func FuzzSimDifferential(f *testing.F) {
	f.Add(int64(1), uint8(8))
	f.Add(int64(42), uint8(14))
	f.Add(int64(977), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nOps uint8) {
		rng := rand.New(rand.NewSource(seed))
		m := buildConeModule(rng, 2+int(nOps)%16)
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid module: %v", err)
		}
		diffConeScalar(t, m, rng)
		diffConeAIG(t, m, rng)
	})
}

// diffConeAIG compares the AIG-mode cone against Parallel.Run — an
// independent signal-resolution path over the same lane formulas, so it
// pins the slot-plan compilation rather than the cell semantics.
func diffConeAIG(t *testing.T, m *rtlil.Module, rng *rand.Rand) {
	t.Helper()
	ix := rtlil.NewIndex(m)
	order, err := rtlil.TopoSort(m)
	if err != nil {
		t.Fatalf("topo: %v", err)
	}
	cone, err := NewCone(ix, order, false)
	if err != nil {
		return // $div cones have no AIG-mode evaluation
	}
	vals := make([]uint64, cone.NumSlots())
	free := coneFreeSlots(cone, ix, order, rng, vals)
	cone.Eval(vals)

	ps, err := NewParallel(m)
	if err != nil {
		t.Fatal(err)
	}
	pres := ps.Run(free)
	for slot, b := range cone.Bits() {
		if want, ok := pres[b]; ok && want != vals[slot] {
			t.Fatalf("slot %d (%v): cone=%x parallel=%x", slot, b, vals[slot], want)
		}
	}
}

func TestConeDifferentialSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := buildConeModule(rng, 2+rng.Intn(14))
		diffConeScalar(t, m, rng)
		diffConeAIG(t, m, rng)
	}
}

func TestConeRejectsSequential(t *testing.T) {
	m := rtlil.NewModule("t")
	clk := m.AddInput("clk", 1).Bits()
	d := m.AddInput("d", 1).Bits()
	q := m.NewWire(1)
	m.AddDff("ff", clk, d, q.Bits())
	order, err := rtlil.TopoSort(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCone(rtlil.NewIndex(m), order, false); err == nil {
		t.Fatal("cone accepted a sequential cell")
	}
}

func TestConeDivModeGate(t *testing.T) {
	m := rtlil.NewModule("t")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	y := m.AddOutput("y", 4)
	m.AddBinary(rtlil.CellDiv, "div", a, b, y.Bits())
	order, err := rtlil.TopoSort(m)
	if err != nil {
		t.Fatal(err)
	}
	ix := rtlil.NewIndex(m)
	if _, err := NewCone(ix, order, false); err == nil {
		t.Fatal("AIG-mode cone accepted $div")
	}
	if _, err := NewCone(ix, order, true); err != nil {
		t.Fatalf("scalar-compat cone rejected $div: %v", err)
	}
}

func TestConeWideShiftAmountGate(t *testing.T) {
	m := rtlil.NewModule("t")
	a := m.AddInput("a", 8).Bits()
	b := m.AddInput("b", 70).Bits()
	y := m.AddOutput("y", 8)
	m.AddBinary(rtlil.CellShl, "sh", a, b, y.Bits())
	order, err := rtlil.TopoSort(m)
	if err != nil {
		t.Fatal(err)
	}
	ix := rtlil.NewIndex(m)
	if _, err := NewCone(ix, order, true); err == nil {
		t.Fatal("scalar-compat cone accepted a 70-bit shift amount")
	}
	if _, err := NewCone(ix, order, false); err != nil {
		t.Fatalf("AIG-mode cone rejected wide shift amount: %v", err)
	}
}

// TestConeConstLanes: constant port bits are prefilled in the plan
// buffers, not read from slots.
func TestConeConstLanes(t *testing.T) {
	m := rtlil.NewModule("t")
	a := m.AddInput("a", 1).Bits()
	y := m.AddOutput("y", 2)
	one := rtlil.Const(1, 1)
	m.AddBinary(rtlil.CellAnd, "g", rtlil.Concat(a, one), rtlil.Const(3, 2), y.Bits())
	order, err := rtlil.TopoSort(m)
	if err != nil {
		t.Fatal(err)
	}
	ix := rtlil.NewIndex(m)
	cone, err := NewCone(ix, order, false)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]uint64, cone.NumSlots())
	aSlot, ok := cone.Slot(a[0])
	if !ok {
		t.Fatal("input bit has no slot")
	}
	vals[aSlot] = 0xF0F0F0F0F0F0F0F0
	cone.Eval(vals)
	y0, _ := cone.Slot(ix.MapBit(y.Bit(0)))
	y1, _ := cone.Slot(ix.MapBit(y.Bit(1)))
	if vals[y0] != 0xF0F0F0F0F0F0F0F0 {
		t.Errorf("y[0] = %x", vals[y0])
	}
	if vals[y1] != ^uint64(0) {
		t.Errorf("y[1] = %x, want all-ones", vals[y1])
	}
}

// TestConeEvalReusableAcrossRounds: a second Eval with different inputs
// must not see stale state from the first (plan buffers are reused).
func TestConeEvalReusableAcrossRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := buildConeModule(rng, 10)
	ix := rtlil.NewIndex(m)
	order, err := rtlil.TopoSort(m)
	if err != nil {
		t.Fatal(err)
	}
	cone, err := NewCone(ix, order, true)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 with one input set, round 2 with another, then re-run
	// round 2's inputs on a fresh cone: results must match.
	vals := make([]uint64, cone.NumSlots())
	coneFreeSlots(cone, ix, order, rng, vals)
	cone.Eval(vals)

	vals2 := make([]uint64, cone.NumSlots())
	free2 := coneFreeSlots(cone, ix, order, rng, vals2)
	reused := append([]uint64(nil), vals2...)
	cone.Eval(reused)

	fresh, err := NewCone(ix, order, true)
	if err != nil {
		t.Fatal(err)
	}
	fvals := make([]uint64, fresh.NumSlots())
	for b, v := range free2 {
		slot, ok := fresh.Slot(b)
		if !ok {
			t.Fatalf("bit %v lost its slot", b)
		}
		fvals[slot] = v
	}
	fresh.Eval(fvals)
	for slot := range fvals {
		b := cone.Bits()[slot]
		fslot, _ := fresh.Slot(b)
		if reused[slot] != fvals[fslot] {
			t.Fatalf("slot %d (%v): reused cone %x, fresh cone %x", slot, b, reused[slot], fvals[fslot])
		}
	}
}
