package sim

import (
	"math/rand"
	"testing"

	"repro/internal/rtlil"
)

// buildRandomModule constructs a random combinational module exercising
// every word-level cell type, returning the module and its outputs.
func buildRandomModule(rng *rand.Rand, nOps int) *rtlil.Module {
	m := rtlil.NewModule("rand")
	var sigs []rtlil.SigSpec
	for i := 0; i < 4; i++ {
		sigs = append(sigs, m.AddInput(inName(i), 1+rng.Intn(6)).Bits())
	}
	pick := func() rtlil.SigSpec { return sigs[rng.Intn(len(sigs))] }
	for i := 0; i < nOps; i++ {
		var y rtlil.SigSpec
		switch rng.Intn(15) {
		case 0:
			y = m.Not(pick())
		case 1:
			y = m.And(pick(), pick())
		case 2:
			y = m.Or(pick(), pick())
		case 3:
			y = m.Xor(pick(), pick())
		case 4:
			y = m.AddOp(pick(), pick())
		case 5:
			y = m.SubOp(pick(), pick())
		case 6:
			y = m.Eq(pick(), pick())
		case 7:
			y = m.Lt(pick(), pick())
		case 8:
			y = m.ReduceOr(pick())
		case 9:
			s := pick().Extract(0, 1)
			a, b := pick(), pick()
			y = m.Mux(a, b, s)
		case 10:
			y = m.MulOp(pick(), pick())
		case 11:
			y = m.Shl(pick(), pick().Resize(2, false))
		case 12:
			y = m.Xnor(pick(), pick())
		case 13:
			y = m.Ge(pick(), pick())
		case 14:
			a := pick()
			b := []rtlil.SigSpec{pick().Resize(len(a), false), pick().Resize(len(a), false)}
			// Mutually exclusive selects (p&q, p&~q) keep the
			// four-state result defined for defined inputs.
			p, q := pick().Extract(0, 1), pick().Extract(0, 1)
			s := rtlil.Concat(m.And(p, q), m.And(p, m.Not(q)))
			y = m.Pmux(a, b, s)
		}
		sigs = append(sigs, y)
	}
	out := m.AddOutput("out", len(sigs[len(sigs)-1]))
	m.Connect(out.Bits(), sigs[len(sigs)-1])
	return m
}

func inName(i int) string { return string(rune('a' + i)) }

// TestParallelMatchesFourState cross-checks the bit-parallel simulator
// against the four-state evaluator on fully-defined random inputs: for
// defined inputs the four-state result must be defined and identical.
func TestParallelMatchesFourState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m := buildRandomModule(rng, 12)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid module: %v", trial, err)
		}
		ps, err := NewParallel(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		s4, err := NewSimulator(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lanes := RandomInputs(m, rng)
		pres := ps.Run(lanes)

		// Check 4 of the 64 lanes against the four-state simulator.
		for _, lane := range []uint{0, 13, 31, 63} {
			in4 := map[rtlil.SigBit]rtlil.State{}
			for b, v := range lanes {
				in4[b] = rtlil.BoolState((v>>lane)&1 == 1)
			}
			vals4, err := s4.Eval(in4)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			for _, w := range m.Outputs() {
				want := s4.EvalSig(vals4, w.Bits())
				got := ps.Sig(pres, w.Bits())
				for i := range want {
					if want[i] == rtlil.Sx || want[i] == rtlil.Sz {
						t.Fatalf("trial %d lane %d: four-state x on defined inputs at %s[%d]",
							trial, lane, w.Name, i)
					}
					gotBit := (got[i]>>lane)&1 == 1
					wantBit := want[i] == rtlil.S1
					if gotBit != wantBit {
						t.Fatalf("trial %d lane %d: %s[%d] parallel=%v fourstate=%v",
							trial, lane, w.Name, i, gotBit, wantBit)
					}
				}
			}
		}
	}
}

// TestFourStateXMonotone checks soundness of x-propagation: any output bit
// the four-state simulator reports as defined under partial inputs must
// hold that value for completions of the unknown inputs.
func TestFourStateXMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		m := buildRandomModule(rng, 10)
		s4, err := NewSimulator(m)
		if err != nil {
			t.Fatal(err)
		}
		free := FreeBits(m)
		partial := map[rtlil.SigBit]rtlil.State{}
		var unknown []rtlil.SigBit
		for _, b := range free {
			switch rng.Intn(3) {
			case 0:
				partial[b] = rtlil.S0
			case 1:
				partial[b] = rtlil.S1
			default:
				unknown = append(unknown, b)
			}
		}
		vp, err := s4.Eval(partial)
		if err != nil {
			t.Fatal(err)
		}
		out := m.Outputs()[0]
		want := s4.EvalSig(vp, out.Bits())
		// Try 8 random completions.
		for k := 0; k < 8; k++ {
			full := map[rtlil.SigBit]rtlil.State{}
			for b, v := range partial {
				full[b] = v
			}
			for _, b := range unknown {
				full[b] = rtlil.BoolState(rng.Intn(2) == 1)
			}
			vf, err := s4.Eval(full)
			if err != nil {
				t.Fatal(err)
			}
			got := s4.EvalSig(vf, out.Bits())
			for i := range want {
				if want[i] == rtlil.S0 || want[i] == rtlil.S1 {
					if got[i] != want[i] {
						t.Fatalf("trial %d completion %d: defined bit %d changed from %s to %s",
							trial, k, i, want[i], got[i])
					}
				}
			}
		}
	}
}

func TestFreeBitsIncludesDffQ(t *testing.T) {
	m := rtlil.NewModule("t")
	clk := m.AddInput("clk", 1).Bits()
	a := m.AddInput("a", 2)
	q := m.NewWire(2)
	m.AddDff("ff", clk, a.Bits(), q.Bits())
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), q.Bits())
	free := FreeBits(m)
	// clk (1) + a (2) + q (2) = 5 free bits.
	if len(free) != 5 {
		t.Errorf("FreeBits = %d, want 5", len(free))
	}
}

func TestParallelConstantLanes(t *testing.T) {
	m := rtlil.NewModule("t")
	y := m.AddOutput("y", 2)
	one := rtlil.Const(1, 1)
	a := m.AddInput("a", 1).Bits()
	m.AddBinary(rtlil.CellAnd, "g", rtlil.Concat(a, one), rtlil.Const(3, 2), y.Bits())
	ps, err := NewParallel(m)
	if err != nil {
		t.Fatal(err)
	}
	res := ps.Run(map[rtlil.SigBit]uint64{a[0]: 0xF0F0F0F0F0F0F0F0})
	got := ps.Sig(res, y.Bits())
	if got[0] != 0xF0F0F0F0F0F0F0F0 {
		t.Errorf("lane 0 = %x", got[0])
	}
	if got[1] != ^uint64(0) {
		t.Errorf("const-1 lane = %x", got[1])
	}
}

func TestSimulatorThroughDff(t *testing.T) {
	m := rtlil.NewModule("t")
	clk := m.AddInput("clk", 1).Bits()
	d := m.AddInput("d", 1).Bits()
	q := m.NewWire(1)
	m.AddDff("ff", clk, d, q.Bits())
	y := m.AddOutput("y", 1)
	m.AddUnary(rtlil.CellNot, "inv", q.Bits(), y.Bits())
	s, err := NewSimulator(m)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := s.Eval(map[rtlil.SigBit]rtlil.State{q.Bit(0): rtlil.S1})
	if err != nil {
		t.Fatal(err)
	}
	out := s.EvalSig(vals, y.Bits())
	if out[0] != rtlil.S0 {
		t.Errorf("y = %s, want 0", out[0])
	}
	// Without assigning q, the output is x.
	vals, _ = s.Eval(nil)
	if out := s.EvalSig(vals, y.Bits()); out[0] != rtlil.Sx {
		t.Errorf("unassigned dff output gave %s", out[0])
	}
}
