// Package sim provides simulation semantics for the rtlil cell library:
// four-state (0/1/x/z) evaluation of single cells and whole modules, and a
// 64-way bit-parallel two-valued simulator for fast random simulation.
//
// The four-state evaluator is deliberately *sound for optimization*: when
// an input bit is unknown (x), the produced output is either x or a value
// that holds for every two-valued completion of the unknowns. Passes may
// therefore fold any defined output bit to a constant.
package sim

import (
	"fmt"

	"repro/internal/rtlil"
)

func norm(s rtlil.State) rtlil.State {
	if s == rtlil.Sz {
		return rtlil.Sx
	}
	return s
}

// Not3 is three-valued NOT (z is treated as x).
func Not3(a rtlil.State) rtlil.State {
	switch norm(a) {
	case rtlil.S0:
		return rtlil.S1
	case rtlil.S1:
		return rtlil.S0
	}
	return rtlil.Sx
}

// And3 is three-valued AND.
func And3(a, b rtlil.State) rtlil.State {
	a, b = norm(a), norm(b)
	if a == rtlil.S0 || b == rtlil.S0 {
		return rtlil.S0
	}
	if a == rtlil.S1 && b == rtlil.S1 {
		return rtlil.S1
	}
	return rtlil.Sx
}

// Or3 is three-valued OR.
func Or3(a, b rtlil.State) rtlil.State {
	a, b = norm(a), norm(b)
	if a == rtlil.S1 || b == rtlil.S1 {
		return rtlil.S1
	}
	if a == rtlil.S0 && b == rtlil.S0 {
		return rtlil.S0
	}
	return rtlil.Sx
}

// Xor3 is three-valued XOR.
func Xor3(a, b rtlil.State) rtlil.State {
	a, b = norm(a), norm(b)
	if a == rtlil.Sx || b == rtlil.Sx {
		return rtlil.Sx
	}
	if a != b {
		return rtlil.S1
	}
	return rtlil.S0
}

// Mux3 returns s ? b : a with three-valued select: when s is unknown the
// result is known only where a and b agree on a defined value.
func Mux3(a, b, s rtlil.State) rtlil.State {
	switch norm(s) {
	case rtlil.S0:
		return norm(a)
	case rtlil.S1:
		return norm(b)
	}
	a, b = norm(a), norm(b)
	if a == b && a != rtlil.Sx {
		return a
	}
	return rtlil.Sx
}

func resize3(v []rtlil.State, width int) []rtlil.State {
	if len(v) == width {
		return v
	}
	out := make([]rtlil.State, width)
	for i := range out {
		if i < len(v) {
			out[i] = norm(v[i])
		} else {
			out[i] = rtlil.S0
		}
	}
	return out
}

func allX(width int) []rtlil.State {
	out := make([]rtlil.State, width)
	for i := range out {
		out[i] = rtlil.Sx
	}
	return out
}

func reduceAnd(v []rtlil.State) rtlil.State {
	r := rtlil.S1
	for _, s := range v {
		r = And3(r, s)
	}
	return r
}

func reduceOr(v []rtlil.State) rtlil.State {
	r := rtlil.S0
	for _, s := range v {
		r = Or3(r, s)
	}
	return r
}

func reduceXor(v []rtlil.State) rtlil.State {
	r := rtlil.S0
	for _, s := range v {
		r = Xor3(r, s)
	}
	return r
}

// add3 computes a + b + cin over equal-width three-valued vectors.
func add3(a, b []rtlil.State, cin rtlil.State) []rtlil.State {
	out := make([]rtlil.State, len(a))
	c := cin
	for i := range a {
		x, y := norm(a[i]), norm(b[i])
		out[i] = Xor3(Xor3(x, y), c)
		// Majority of x, y, c.
		c = Or3(Or3(And3(x, y), And3(x, c)), And3(y, c))
	}
	return out
}

func not3vec(a []rtlil.State) []rtlil.State {
	out := make([]rtlil.State, len(a))
	for i, s := range a {
		out[i] = Not3(s)
	}
	return out
}

func defined(v []rtlil.State) bool {
	for _, s := range v {
		if norm(s) == rtlil.Sx {
			return false
		}
	}
	return true
}

func toUint(v []rtlil.State) uint64 {
	var r uint64
	for i, s := range v {
		if i >= 64 {
			break
		}
		if s == rtlil.S1 {
			r |= 1 << uint(i)
		}
	}
	return r
}

func fromUint(v uint64, width int) []rtlil.State {
	out := make([]rtlil.State, width)
	for i := range out {
		if i < 64 && (v>>uint(i))&1 == 1 {
			out[i] = rtlil.S1
		} else {
			out[i] = rtlil.S0
		}
	}
	return out
}

// bounds returns the minimum and maximum unsigned value a three-valued
// vector can take over all completions of its x bits (width ≤ 64).
func bounds(v []rtlil.State) (lo, hi uint64) {
	for i, s := range v {
		if i >= 64 {
			break
		}
		switch norm(s) {
		case rtlil.S1:
			lo |= 1 << uint(i)
			hi |= 1 << uint(i)
		case rtlil.Sx:
			hi |= 1 << uint(i)
		}
	}
	return lo, hi
}

// eq3 implements the sound equality rule: a definite bitwise mismatch
// forces 0 even in the presence of other unknown bits; a fully-defined
// match yields 1; anything else is x.
func eq3(a, b []rtlil.State) rtlil.State {
	anyX := false
	for i := range a {
		x, y := norm(a[i]), norm(b[i])
		if x == rtlil.Sx || y == rtlil.Sx {
			anyX = true
			continue
		}
		if x != y {
			return rtlil.S0
		}
	}
	if anyX {
		return rtlil.Sx
	}
	return rtlil.S1
}

// cmp3 evaluates an unsigned comparison with interval reasoning so that
// results determined by the defined bits alone are still produced.
func cmp3(t rtlil.CellType, a, b []rtlil.State) rtlil.State {
	if len(a) > 64 || len(b) > 64 {
		if defined(a) && defined(b) {
			// Fall back to lexicographic comparison MSB-down.
			for i := len(a) - 1; i >= 0; i-- {
				x, y := a[i], b[i]
				if x != y {
					less := x == rtlil.S0
					switch t {
					case rtlil.CellLt, rtlil.CellLe:
						return rtlil.BoolState(less)
					case rtlil.CellGt, rtlil.CellGe:
						return rtlil.BoolState(!less)
					}
				}
			}
			switch t {
			case rtlil.CellLe, rtlil.CellGe:
				return rtlil.S1
			}
			return rtlil.S0
		}
		return rtlil.Sx
	}
	loA, hiA := bounds(a)
	loB, hiB := bounds(b)
	switch t {
	case rtlil.CellLt:
		if hiA < loB {
			return rtlil.S1
		}
		if loA >= hiB {
			return rtlil.S0
		}
	case rtlil.CellLe:
		if hiA <= loB {
			return rtlil.S1
		}
		if loA > hiB {
			return rtlil.S0
		}
	case rtlil.CellGt:
		if loA > hiB {
			return rtlil.S1
		}
		if hiA <= loB {
			return rtlil.S0
		}
	case rtlil.CellGe:
		if loA >= hiB {
			return rtlil.S1
		}
		if hiA < loB {
			return rtlil.S0
		}
	}
	return rtlil.Sx
}

// EvalCell evaluates one combinational cell over four-state inputs. in
// maps port names ("A", "B", "S") to LSB-first state vectors whose widths
// match the cell's connections. The returned vector has the width of the
// cell's output port. Calling EvalCell on a sequential cell is an error.
func EvalCell(c *rtlil.Cell, in map[string][]rtlil.State) ([]rtlil.State, error) {
	if rtlil.IsSequential(c.Type) {
		return nil, fmt.Errorf("sim: EvalCell on sequential cell %s", c.Name)
	}
	yw := len(c.Port("Y"))
	A := in["A"]
	B := in["B"]
	switch c.Type {
	case rtlil.CellNot:
		return not3vec(resize3(A, yw)), nil
	case rtlil.CellNeg:
		return add3(not3vec(resize3(A, yw)), fromUint(0, yw), rtlil.S1), nil
	case rtlil.CellReduceAnd:
		return []rtlil.State{reduceAnd(A)}, nil
	case rtlil.CellReduceOr:
		return []rtlil.State{reduceOr(A)}, nil
	case rtlil.CellReduceXor:
		return []rtlil.State{reduceXor(A)}, nil
	case rtlil.CellLogicNot:
		return []rtlil.State{Not3(reduceOr(A))}, nil

	case rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor, rtlil.CellXnor:
		a, b := resize3(A, yw), resize3(B, yw)
		out := make([]rtlil.State, yw)
		for i := 0; i < yw; i++ {
			switch c.Type {
			case rtlil.CellAnd:
				out[i] = And3(a[i], b[i])
			case rtlil.CellOr:
				out[i] = Or3(a[i], b[i])
			case rtlil.CellXor:
				out[i] = Xor3(a[i], b[i])
			case rtlil.CellXnor:
				out[i] = Not3(Xor3(a[i], b[i]))
			}
		}
		return out, nil

	case rtlil.CellAdd:
		return add3(resize3(A, yw), resize3(B, yw), rtlil.S0), nil
	case rtlil.CellSub:
		return add3(resize3(A, yw), not3vec(resize3(B, yw)), rtlil.S1), nil
	case rtlil.CellMul:
		if defined(A) && defined(B) && len(A) <= 64 && len(B) <= 64 {
			return fromUint(toUint(A)*toUint(B), yw), nil
		}
		return allX(yw), nil
	case rtlil.CellDiv:
		if defined(A) && defined(B) && len(A) <= 64 && len(B) <= 64 {
			if toUint(B) == 0 {
				return allX(yw), nil
			}
			return fromUint(toUint(A)/toUint(B), yw), nil
		}
		return allX(yw), nil

	case rtlil.CellEq:
		return []rtlil.State{eq3(A, B)}, nil
	case rtlil.CellNe:
		return []rtlil.State{Not3(eq3(A, B))}, nil
	case rtlil.CellLt, rtlil.CellLe, rtlil.CellGt, rtlil.CellGe:
		return []rtlil.State{cmp3(c.Type, A, B)}, nil

	case rtlil.CellLogicAnd:
		return []rtlil.State{And3(reduceOr(A), reduceOr(B))}, nil
	case rtlil.CellLogicOr:
		return []rtlil.State{Or3(reduceOr(A), reduceOr(B))}, nil

	case rtlil.CellShl, rtlil.CellShr:
		if !defined(B) {
			return allX(yw), nil
		}
		sh := toUint(B)
		a := resize3(A, yw)
		out := fromUint(0, yw)
		if sh < uint64(yw) {
			n := int(sh)
			if c.Type == rtlil.CellShl {
				copy(out[n:], a[:yw-n])
			} else {
				copy(out[:yw-n], a[n:])
			}
		}
		return out, nil

	case rtlil.CellMux:
		s := in["S"][0]
		a, b := resize3(A, yw), resize3(B, yw)
		out := make([]rtlil.State, yw)
		for i := range out {
			out[i] = Mux3(a[i], b[i], s)
		}
		return out, nil

	case rtlil.CellPmux:
		return evalPmux(c, in)
	}
	return nil, fmt.Errorf("sim: cannot evaluate cell type %s", c.Type)
}

func evalPmux(c *rtlil.Cell, in map[string][]rtlil.State) ([]rtlil.State, error) {
	w := c.Param("WIDTH")
	sw := c.Param("S_WIDTH")
	S := in["S"]
	ones, unknowns := 0, 0
	sel := -1
	for i := 0; i < sw; i++ {
		switch norm(S[i]) {
		case rtlil.S1:
			ones++
			sel = i
		case rtlil.Sx:
			unknowns++
		}
	}
	switch {
	case ones == 0 && unknowns == 0:
		return resize3(in["A"], w), nil
	case ones == 1 && unknowns == 0:
		return resize3(in["B"][sel*w:(sel+1)*w], w), nil
	default:
		// Multiple or unknown selects: conservatively unknown.
		return allX(w), nil
	}
}
