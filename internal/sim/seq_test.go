package sim

import (
	"testing"

	"repro/internal/rtlil"
)

// TestSequentialToggle steps a toggle flip-flop (q' = ~q) and checks
// the zero reset and the per-cycle values.
func TestSequentialToggle(t *testing.T) {
	m := rtlil.NewModule("toggle")
	clk := m.AddInput("clk", 1).Bits()
	q := m.NewWire(1)
	m.AddDff("ff", clk, m.Not(q.Bits()), q.Bits())
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), q.Bits())

	s, err := NewSequential(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 0, 1}
	for cyc, w := range want {
		vals := s.Step(nil)
		if got := s.Sig(vals, y.Bits())[0] & 1; got != w {
			t.Fatalf("cycle %d: y = %d, want %d", cyc, got, w)
		}
	}
	s.Reset()
	vals := s.Step(nil)
	if got := s.Sig(vals, y.Bits())[0] & 1; got != 0 {
		t.Fatalf("after Reset: y = %d, want 0", got)
	}
}

// TestSequentialPipeline checks that inputs ripple through a 2-stage
// pipeline with one cycle of latency per stage, per lane.
func TestSequentialPipeline(t *testing.T) {
	m := rtlil.NewModule("pipe")
	clk := m.AddInput("clk", 1).Bits()
	d := m.AddInput("d", 1).Bits()
	r1 := m.NewWire(1)
	r2 := m.NewWire(1)
	m.AddDff("r1", clk, d, r1.Bits())
	m.AddDff("r2", clk, r1.Bits(), r2.Bits())
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), r2.Bits())

	s, err := NewSequential(m)
	if err != nil {
		t.Fatal(err)
	}
	stim := []uint64{0xdeadbeefcafef00d, 0x0123456789abcdef, 0, ^uint64(0)}
	var got []uint64
	for cyc := 0; cyc < len(stim)+2; cyc++ {
		in := map[rtlil.SigBit]uint64{}
		if cyc < len(stim) {
			in[d[0]] = stim[cyc]
		}
		vals := s.Step(in)
		got = append(got, s.Sig(vals, y.Bits())[0])
	}
	for i, w := range stim {
		if got[i+2] != w {
			t.Fatalf("cycle %d: y = %#x, want stim[%d] = %#x", i+2, got[i+2], i, w)
		}
	}
	if got[0] != 0 || got[1] != 0 {
		t.Fatalf("reset cycles: y = %#x, %#x, want 0, 0", got[0], got[1])
	}
	// State() after n steps is the state entering cycle n.
	st := s.State()
	if len(st) != 2 {
		t.Fatalf("state has %d bits, want 2", len(st))
	}
}
