package sim

import (
	"repro/internal/rtlil"
)

// Sequential is a multi-cycle 64-way bit-parallel simulator: it steps a
// register-bearing module through clock cycles, latching every $dff's D
// into its Q between steps. Registers reset to zero, the
// repository-wide sequential semantics (consistent with the two-valued
// canonicalization where x evaluates as 0). The clock port itself is
// never evaluated — every Step is one posedge for all flip-flops, so
// the module should be single-clock (rtlil.SingleClock).
type Sequential struct {
	p     *Parallel
	dffs  []*rtlil.Cell
	state map[rtlil.SigBit]uint64 // canonical Q bit -> lane vector
}

// NewSequential prepares a sequential simulator for the module. It
// fails on combinational loops.
func NewSequential(m *rtlil.Module) (*Sequential, error) {
	p, err := NewParallel(m)
	if err != nil {
		return nil, err
	}
	s := &Sequential{p: p, dffs: m.SeqCells()}
	s.Reset()
	return s, nil
}

// Reset returns every register to the all-zero reset state.
func (s *Sequential) Reset() {
	s.state = map[rtlil.SigBit]uint64{}
	for _, c := range s.dffs {
		for _, b := range s.p.ix.Map(c.Port("Q")) {
			if !b.IsConst() {
				s.state[b] = 0
			}
		}
	}
}

// Step evaluates one clock cycle: combinational logic is computed from
// the primary inputs and the current register state, then every D is
// latched into its Q for the next cycle. Input lane vectors for bits
// not present in the map are 0. The returned map holds the cycle's
// combinational values (keyed by canonical bit), readable with Sig.
func (s *Sequential) Step(inputs map[rtlil.SigBit]uint64) map[rtlil.SigBit]uint64 {
	merged := make(map[rtlil.SigBit]uint64, len(inputs)+len(s.state))
	for b, v := range s.state {
		merged[b] = v
	}
	for b, v := range inputs {
		merged[s.p.ix.MapBit(b)] = v
	}
	vals := s.p.Run(merged)
	next := make(map[rtlil.SigBit]uint64, len(s.state))
	for _, c := range s.dffs {
		d := s.p.Sig(vals, c.Port("D"))
		for i, b := range s.p.ix.Map(c.Port("Q")) {
			if !b.IsConst() {
				next[b] = d[i]
			}
		}
	}
	s.state = next
	return vals
}

// Sig reads a signal's lane vectors out of a Step result.
func (s *Sequential) Sig(vals map[rtlil.SigBit]uint64, sig rtlil.SigSpec) []uint64 {
	return s.p.Sig(vals, sig)
}

// State returns a copy of the current register state, keyed by
// canonical Q bit. After n Steps this is the state entering cycle n.
func (s *Sequential) State() map[rtlil.SigBit]uint64 {
	out := make(map[rtlil.SigBit]uint64, len(s.state))
	for b, v := range s.state {
		out[b] = v
	}
	return out
}

// Index returns the module index used by the simulator.
func (s *Sequential) Index() *rtlil.Index { return s.p.ix }
