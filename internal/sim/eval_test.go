package sim

import (
	"testing"

	"repro/internal/rtlil"
)

func states(bits ...int) []rtlil.State {
	out := make([]rtlil.State, len(bits))
	for i, b := range bits {
		switch b {
		case 0:
			out[i] = rtlil.S0
		case 1:
			out[i] = rtlil.S1
		default:
			out[i] = rtlil.Sx
		}
	}
	return out
}

func evalBin(t *testing.T, typ rtlil.CellType, aw, bw, yw int, a, b []rtlil.State) []rtlil.State {
	t.Helper()
	m := rtlil.NewModule("t")
	A := m.AddInput("a", aw).Bits()
	B := m.AddInput("b", bw).Bits()
	Y := m.AddOutput("y", yw).Bits()
	c := m.AddBinary(typ, "g", A, B, Y)
	out, err := EvalCell(c, map[string][]rtlil.State{"A": a, "B": b})
	if err != nil {
		t.Fatalf("EvalCell(%s): %v", typ, err)
	}
	return out
}

func wantStates(t *testing.T, got, want []rtlil.State, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d bits, want %d", what, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g == rtlil.Sz {
			g = rtlil.Sx
		}
		if g != w {
			t.Errorf("%s bit %d: got %s, want %s", what, i, g, w)
		}
	}
}

func TestThreeValuedPrimitives(t *testing.T) {
	type tri struct{ a, b, want rtlil.State }
	andCases := []tri{
		{rtlil.S0, rtlil.Sx, rtlil.S0},
		{rtlil.Sx, rtlil.S0, rtlil.S0},
		{rtlil.S1, rtlil.Sx, rtlil.Sx},
		{rtlil.S1, rtlil.S1, rtlil.S1},
		{rtlil.Sz, rtlil.S1, rtlil.Sx},
	}
	for _, c := range andCases {
		if got := And3(c.a, c.b); got != c.want {
			t.Errorf("And3(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
	orCases := []tri{
		{rtlil.S1, rtlil.Sx, rtlil.S1},
		{rtlil.Sx, rtlil.S1, rtlil.S1},
		{rtlil.S0, rtlil.Sx, rtlil.Sx},
		{rtlil.S0, rtlil.S0, rtlil.S0},
	}
	for _, c := range orCases {
		if got := Or3(c.a, c.b); got != c.want {
			t.Errorf("Or3(%s,%s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
	if Xor3(rtlil.S1, rtlil.Sx) != rtlil.Sx || Xor3(rtlil.S1, rtlil.S0) != rtlil.S1 {
		t.Error("Xor3 wrong")
	}
	if Not3(rtlil.Sx) != rtlil.Sx || Not3(rtlil.S0) != rtlil.S1 {
		t.Error("Not3 wrong")
	}
}

func TestMux3XSelectAgreement(t *testing.T) {
	// When S is x but both inputs agree, the output is known.
	if got := Mux3(rtlil.S1, rtlil.S1, rtlil.Sx); got != rtlil.S1 {
		t.Errorf("Mux3(1,1,x) = %s", got)
	}
	if got := Mux3(rtlil.S0, rtlil.S1, rtlil.Sx); got != rtlil.Sx {
		t.Errorf("Mux3(0,1,x) = %s", got)
	}
	if got := Mux3(rtlil.S0, rtlil.S1, rtlil.S1); got != rtlil.S1 {
		t.Errorf("Mux3(0,1,1) = %s", got)
	}
}

func TestEvalAndOrXor(t *testing.T) {
	got := evalBin(t, rtlil.CellAnd, 4, 4, 4, states(1, 1, 0, 2), states(1, 0, 2, 2))
	wantStates(t, got, states(1, 0, 0, 2), "$and")
	got = evalBin(t, rtlil.CellOr, 4, 4, 4, states(1, 0, 0, 2), states(0, 0, 2, 1))
	wantStates(t, got, states(1, 0, 2, 1), "$or")
	got = evalBin(t, rtlil.CellXnor, 2, 2, 2, states(1, 0), states(1, 1))
	wantStates(t, got, states(1, 0), "$xnor")
}

func TestEvalAddSub(t *testing.T) {
	got := evalBin(t, rtlil.CellAdd, 4, 4, 4, states(1, 1, 0, 0), states(1, 0, 0, 0)) // 3+1=4
	wantStates(t, got, states(0, 0, 1, 0), "$add")
	got = evalBin(t, rtlil.CellSub, 4, 4, 4, states(0, 0, 1, 0), states(1, 0, 0, 0)) // 4-1=3
	wantStates(t, got, states(1, 1, 0, 0), "$sub")
	// x in the high bit leaves low bits known.
	got = evalBin(t, rtlil.CellAdd, 4, 4, 4, states(1, 0, 0, 2), states(1, 0, 0, 0))
	wantStates(t, got, states(0, 1, 0, 2), "$add with x MSB")
}

func TestEvalMul(t *testing.T) {
	got := evalBin(t, rtlil.CellMul, 4, 4, 4, states(1, 1, 0, 0), states(0, 1, 0, 0)) // 3*2=6
	wantStates(t, got, states(0, 1, 1, 0), "$mul")
	got = evalBin(t, rtlil.CellMul, 2, 2, 2, states(2, 0), states(1, 0))
	wantStates(t, got, states(2, 2), "$mul with x")
}

func TestEvalEqStrongRule(t *testing.T) {
	// Defined mismatch forces 0 even with x elsewhere.
	got := evalBin(t, rtlil.CellEq, 3, 3, 1, states(1, 2, 0), states(0, 2, 0))
	wantStates(t, got, states(0), "$eq strong mismatch")
	// Full defined match is 1.
	got = evalBin(t, rtlil.CellEq, 3, 3, 1, states(1, 0, 1), states(1, 0, 1))
	wantStates(t, got, states(1), "$eq match")
	// Only x differences stay x.
	got = evalBin(t, rtlil.CellEq, 2, 2, 1, states(1, 2), states(1, 0))
	wantStates(t, got, states(2), "$eq undecided")
	// $ne is the complement.
	got = evalBin(t, rtlil.CellNe, 3, 3, 1, states(1, 2, 0), states(0, 2, 0))
	wantStates(t, got, states(1), "$ne")
}

func TestEvalCmpIntervals(t *testing.T) {
	// a = 0b0x1 in {1,3}, b = 0b100 = 4: a < b always.
	got := evalBin(t, rtlil.CellLt, 3, 3, 1, states(1, 2, 0), states(0, 0, 1))
	wantStates(t, got, states(1), "$lt determined by bounds")
	// a in {1,3}, b = 2: undecided.
	got = evalBin(t, rtlil.CellLt, 3, 3, 1, states(1, 2, 0), states(0, 1, 0))
	wantStates(t, got, states(2), "$lt undecided")
	got = evalBin(t, rtlil.CellGe, 3, 3, 1, states(1, 2, 0), states(0, 0, 1))
	wantStates(t, got, states(0), "$ge determined")
	got = evalBin(t, rtlil.CellLe, 2, 2, 1, states(1, 0), states(1, 0))
	wantStates(t, got, states(1), "$le equal")
	got = evalBin(t, rtlil.CellGt, 2, 2, 1, states(0, 1), states(1, 0))
	wantStates(t, got, states(1), "$gt")
}

func TestEvalShifts(t *testing.T) {
	got := evalBin(t, rtlil.CellShl, 4, 2, 4, states(1, 0, 1, 0), states(1, 0)) // 0b0101 << 1
	wantStates(t, got, states(0, 1, 0, 1), "$shl")
	got = evalBin(t, rtlil.CellShr, 4, 2, 4, states(0, 1, 0, 1), states(1, 0))
	wantStates(t, got, states(1, 0, 1, 0), "$shr")
	// Shift by more than width → zero.
	got = evalBin(t, rtlil.CellShr, 4, 4, 4, states(1, 1, 1, 1), states(0, 0, 1, 0))
	wantStates(t, got, states(0, 0, 0, 0), "$shr overflow")
	// x shift amount → x.
	got = evalBin(t, rtlil.CellShl, 2, 1, 2, states(1, 0), states(2))
	wantStates(t, got, states(2, 2), "$shl x amount")
}

func TestEvalUnary(t *testing.T) {
	m := rtlil.NewModule("t")
	A := m.AddInput("a", 3).Bits()
	y1 := m.AddOutput("y1", 3).Bits()
	c := m.AddUnary(rtlil.CellNot, "n", A, y1)
	out, err := EvalCell(c, map[string][]rtlil.State{"A": states(1, 0, 2)})
	if err != nil {
		t.Fatal(err)
	}
	wantStates(t, out, states(0, 1, 2), "$not")

	yr := m.AddOutput("yr", 1).Bits()
	cr := m.AddUnary(rtlil.CellReduceOr, "r", A, yr)
	out, _ = EvalCell(cr, map[string][]rtlil.State{"A": states(0, 2, 1)})
	wantStates(t, out, states(1), "$reduce_or with 1")
	out, _ = EvalCell(cr, map[string][]rtlil.State{"A": states(0, 2, 0)})
	wantStates(t, out, states(2), "$reduce_or undecided")

	yn := m.AddOutput("yn", 1).Bits()
	cn := m.AddUnary(rtlil.CellLogicNot, "ln", A, yn)
	out, _ = EvalCell(cn, map[string][]rtlil.State{"A": states(0, 0, 0)})
	wantStates(t, out, states(1), "$logic_not zero")

	yneg := m.AddOutput("yneg", 3).Bits()
	cneg := m.AddUnary(rtlil.CellNeg, "neg", A, yneg)
	out, _ = EvalCell(cneg, map[string][]rtlil.State{"A": states(1, 0, 0)}) // -1 = 0b111
	wantStates(t, out, states(1, 1, 1), "$neg")
}

func TestEvalMux(t *testing.T) {
	m := rtlil.NewModule("t")
	A := m.AddInput("a", 2).Bits()
	B := m.AddInput("b", 2).Bits()
	S := m.AddInput("s", 1).Bits()
	Y := m.AddOutput("y", 2).Bits()
	c := m.AddMux("mx", A, B, S, Y)
	out, err := EvalCell(c, map[string][]rtlil.State{
		"A": states(1, 0), "B": states(0, 1), "S": states(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantStates(t, out, states(1, 0), "$mux S=0 selects A")
	out, _ = EvalCell(c, map[string][]rtlil.State{
		"A": states(1, 0), "B": states(0, 1), "S": states(1),
	})
	wantStates(t, out, states(0, 1), "$mux S=1 selects B")
	out, _ = EvalCell(c, map[string][]rtlil.State{
		"A": states(1, 0), "B": states(1, 1), "S": states(2),
	})
	wantStates(t, out, states(1, 2), "$mux S=x agreement")
}

func TestEvalPmux(t *testing.T) {
	m := rtlil.NewModule("t")
	A := m.AddInput("a", 2).Bits()
	b0 := m.AddInput("b0", 2).Bits()
	b1 := m.AddInput("b1", 2).Bits()
	S := m.AddInput("s", 2).Bits()
	Y := m.AddOutput("y", 2).Bits()
	c := m.AddPmux("p", A, []rtlil.SigSpec{b0, b1}, S, Y)
	in := func(s ...int) map[string][]rtlil.State {
		return map[string][]rtlil.State{
			"A": states(0, 0), "B": states(1, 0, 0, 1), "S": states(s...),
		}
	}
	out, err := EvalCell(c, in(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	wantStates(t, out, states(0, 0), "$pmux default")
	out, _ = EvalCell(c, in(1, 0))
	wantStates(t, out, states(1, 0), "$pmux word 0")
	out, _ = EvalCell(c, in(0, 1))
	wantStates(t, out, states(0, 1), "$pmux word 1")
	out, _ = EvalCell(c, in(1, 1))
	wantStates(t, out, states(2, 2), "$pmux multi-hot is x")
	out, _ = EvalCell(c, in(2, 0))
	wantStates(t, out, states(2, 2), "$pmux unknown select is x")
}

func TestEvalCellSequentialError(t *testing.T) {
	m := rtlil.NewModule("t")
	clk := m.AddInput("clk", 1).Bits()
	d := m.AddInput("d", 1).Bits()
	q := m.AddOutput("q", 1).Bits()
	c := m.AddDff("ff", clk, d, q)
	if _, err := EvalCell(c, nil); err == nil {
		t.Error("EvalCell on $dff succeeded")
	}
}
