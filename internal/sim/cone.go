package sim

import (
	"fmt"

	"repro/internal/rtlil"
)

// Cone is a 64-way bit-parallel evaluator over an extracted sub-graph: a
// topologically ordered cell slice evaluated into a dense slot-indexed
// lane buffer instead of a per-assignment map. The SAT-mux oracle uses it
// two ways — as a random-vector pre-filter in front of the solver and as
// the sweep engine of the exhaustive-enumeration stage — so it supports
// two semantics:
//
//   - AIG mode (scalarCompat=false) mirrors the AIG mapping exactly
//     (priority pmux, truncated structural multiply), so a lane that
//     witnesses a target value is a genuine model of the cone's CNF.
//   - Scalar-compat mode (scalarCompat=true) mirrors the four-state
//     EvalCell semantics under defined inputs with x clamped to 0 (the
//     exhaustive stage's convention): one-hot pmux (multi-hot selects
//     give 0), value-level multiply/divide zeroed above 64 bits.
//
// NewCone rejects cones it cannot evaluate faithfully in the requested
// mode; callers fall back to their scalar path (or to SAT).
//
// Eval runs many rounds per query, so the signal resolution is hoisted
// into construction: every cell port is compiled to a slot-index plan
// with a reusable lane buffer (constant bits prefilled), and the
// per-round work is plain slice traffic — no SigMap lookups, no
// per-port allocation.
//
// A Cone is not safe for concurrent Eval calls (the plan buffers are
// shared scratch); build one per goroutine.
type Cone struct {
	ix     *rtlil.Index
	slots  map[rtlil.SigBit]int
	bits   []rtlil.SigBit
	plans  []conePlan
	scalar bool
}

// portPlan compiles one input port: codes[i] is the slot to load lane
// word i from, or -1 for a constant bit whose lanes are prefilled in buf.
type portPlan struct {
	name  string
	codes []int32
	buf   []uint64
}

// conePlan is one cell's compiled evaluation step.
type conePlan struct {
	cell *rtlil.Cell
	in   []portPlan
	out  []int32 // slot per output bit, -1 for constant bits
}

// NewCone compiles a lane evaluator for the cells (drivers before
// readers). It fails on sequential cells and on cells with no faithful
// lane evaluation in the requested mode ($div outside scalar-compat,
// shifts with a >64-bit amount in scalar-compat).
func NewCone(ix *rtlil.Index, order []*rtlil.Cell, scalarCompat bool) (*Cone, error) {
	c := &Cone{ix: ix, slots: map[rtlil.SigBit]int{}, scalar: scalarCompat}
	for _, cell := range order {
		if err := c.checkCell(cell); err != nil {
			return nil, err
		}
		pl := conePlan{cell: cell}
		for _, port := range rtlil.InputPorts(cell.Type) {
			sig := c.ix.Map(cell.Port(port))
			pp := portPlan{
				name:  port,
				codes: make([]int32, len(sig)),
				buf:   make([]uint64, len(sig)),
			}
			for i, b := range sig {
				if b.IsConst() {
					pp.codes[i] = -1
					if b.Const == rtlil.S1 {
						pp.buf[i] = ^uint64(0)
					}
					continue
				}
				pp.codes[i] = int32(c.slot(b))
			}
			pl.in = append(pl.in, pp)
		}
		ysig := c.ix.Map(cell.Port(outputPort(cell.Type)))
		pl.out = make([]int32, len(ysig))
		for i, b := range ysig {
			if b.IsConst() {
				pl.out[i] = -1
				continue
			}
			pl.out[i] = int32(c.slot(b))
		}
		c.plans = append(c.plans, pl)
	}
	return c, nil
}

func (c *Cone) slot(b rtlil.SigBit) int {
	if id, ok := c.slots[b]; ok {
		return id
	}
	id := len(c.bits)
	c.slots[b] = id
	c.bits = append(c.bits, b)
	return id
}

func (c *Cone) checkCell(cell *rtlil.Cell) error {
	if rtlil.IsSequential(cell.Type) {
		return fmt.Errorf("sim: cone contains sequential cell %s", cell.Name)
	}
	switch cell.Type {
	case rtlil.CellNot, rtlil.CellNeg, rtlil.CellReduceAnd, rtlil.CellReduceOr,
		rtlil.CellReduceXor, rtlil.CellLogicNot, rtlil.CellAnd, rtlil.CellOr,
		rtlil.CellXor, rtlil.CellXnor, rtlil.CellAdd, rtlil.CellSub,
		rtlil.CellMul, rtlil.CellEq, rtlil.CellNe, rtlil.CellLt, rtlil.CellLe,
		rtlil.CellGt, rtlil.CellGe, rtlil.CellLogicAnd, rtlil.CellLogicOr,
		rtlil.CellMux, rtlil.CellPmux:
		return nil
	case rtlil.CellShl, rtlil.CellShr:
		if c.scalar && len(cell.Port("B")) > 64 {
			// The scalar evaluator ignores shift-amount bits above 64
			// (toUint truncation); the barrel decomposition forces zero.
			return fmt.Errorf("sim: cone cell %s shifts by a >64-bit amount", cell.Name)
		}
		return nil
	case rtlil.CellDiv:
		if !c.scalar {
			return fmt.Errorf("sim: cone cell %s ($div) has no AIG-mode lane evaluation", cell.Name)
		}
		return nil
	}
	return fmt.Errorf("sim: cone cell %s has unsupported type %s", cell.Name, cell.Type)
}

// NumSlots returns the size of the lane buffer Eval expects.
func (c *Cone) NumSlots() int { return len(c.bits) }

// Slot returns the buffer index of a bit (canonical or not).
func (c *Cone) Slot(b rtlil.SigBit) (int, bool) {
	id, ok := c.slots[c.ix.MapBit(b)]
	return id, ok
}

// Bits lists the slotted bits in slot order.
func (c *Cone) Bits() []rtlil.SigBit { return c.bits }

// Eval evaluates the cone in place: callers fill the slots of the cone's
// free bits (every slotted bit not driven by a cone cell) with 64-lane
// input vectors, and Eval overwrites every driven slot. Stale values from
// an earlier round are dead — each driven slot is written before any
// cell reads it.
func (c *Cone) Eval(vals []uint64) {
	for pi := range c.plans {
		pl := &c.plans[pi]
		get := func(name string) []uint64 {
			for i := range pl.in {
				pp := &pl.in[i]
				if pp.name != name {
					continue
				}
				for j, code := range pp.codes {
					if code >= 0 {
						pp.buf[j] = vals[code]
					}
				}
				return pp.buf
			}
			return nil
		}
		var y []uint64
		if c.scalar {
			y = evalLanesScalar(pl.cell, get)
		} else {
			y = evalLanesPorts(pl.cell, get)
		}
		for j, code := range pl.out {
			if code >= 0 {
				vals[code] = y[j]
			}
		}
	}
}

// evalLanesScalar dispatches one cell in scalar-compat semantics: the
// cells where the structural lane formulas diverge from EvalCell's
// value-level results (under clamp-x-to-0) are overridden, everything
// else shares evalLanesPorts.
func evalLanesScalar(c *rtlil.Cell, port func(string) []uint64) []uint64 {
	switch c.Type {
	case rtlil.CellMul, rtlil.CellDiv:
		yw := len(c.Port("Y"))
		A := port("A")
		B := port("B")
		out := make([]uint64, yw)
		if len(A) > 64 || len(B) > 64 {
			return out // EvalCell: all-x above 64 bits, clamped to 0
		}
		for lane := uint(0); lane < 64; lane++ {
			a, b := gatherLane(A, lane), gatherLane(B, lane)
			var v uint64
			if c.Type == rtlil.CellMul {
				v = a * b
			} else if b != 0 {
				v = a / b // b==0: all-x, clamped to 0
			}
			scatterLane(out, lane, v)
		}
		return out

	case rtlil.CellPmux:
		// One-hot semantics: exactly one select picks its B word, none
		// passes A through, several is all-x (clamped to 0) — unlike the
		// ascending-priority lowering of the AIG/parallel path.
		w := c.Param("WIDTH")
		sw := c.Param("S_WIDTH")
		S := port("S")
		A := resizeLanes(port("A"), w)
		B := port("B")
		var any, multi uint64
		for i := 0; i < sw; i++ {
			multi |= any & S[i]
			any |= S[i]
		}
		out := make([]uint64, w)
		for k := 0; k < w; k++ {
			v := ^any & A[k]
			for i := 0; i < sw; i++ {
				v |= S[i] &^ multi & B[i*w+k]
			}
			out[k] = v
		}
		return out
	}
	return evalLanesPorts(c, port)
}

// gatherLane reassembles the value of one lane from a lane-vector word
// slice (callers guarantee len(v) <= 64).
func gatherLane(v []uint64, lane uint) uint64 {
	var r uint64
	for i, w := range v {
		r |= ((w >> lane) & 1) << uint(i)
	}
	return r
}

// scatterLane spreads a value's bits back into one lane of out; bits at
// or above 64 stay 0, matching fromUint.
func scatterLane(out []uint64, lane uint, v uint64) {
	n := len(out)
	if n > 64 {
		n = 64
	}
	for i := 0; i < n; i++ {
		out[i] |= ((v >> uint(i)) & 1) << lane
	}
}
