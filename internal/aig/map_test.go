package aig

import (
	"math/rand"
	"testing"

	"repro/internal/rtlil"
	"repro/internal/sim"
)

// buildRandomModule mirrors the sim package's generator: every mappable
// cell type, random widths.
func buildRandomModule(rng *rand.Rand, nOps int) *rtlil.Module {
	m := rtlil.NewModule("rand")
	var sigs []rtlil.SigSpec
	for i := 0; i < 4; i++ {
		sigs = append(sigs, m.AddInput(string(rune('a'+i)), 1+rng.Intn(5)).Bits())
	}
	pick := func() rtlil.SigSpec { return sigs[rng.Intn(len(sigs))] }
	for i := 0; i < nOps; i++ {
		var y rtlil.SigSpec
		switch rng.Intn(16) {
		case 0:
			y = m.Not(pick())
		case 1:
			y = m.And(pick(), pick())
		case 2:
			y = m.Or(pick(), pick())
		case 3:
			y = m.Xor(pick(), pick())
		case 4:
			y = m.AddOp(pick(), pick())
		case 5:
			y = m.SubOp(pick(), pick())
		case 6:
			y = m.Eq(pick(), pick())
		case 7:
			y = m.Lt(pick(), pick())
		case 8:
			y = m.ReduceOr(pick())
		case 9:
			y = m.Mux(pick(), pick(), pick().Extract(0, 1))
		case 10:
			y = m.MulOp(pick(), pick())
		case 11:
			y = m.Shl(pick(), pick().Resize(2, false))
		case 12:
			y = m.Shr(pick(), pick().Resize(2, false))
		case 13:
			y = m.Le(pick(), pick())
		case 14:
			y = m.Neg(pick())
		case 15:
			a := pick()
			b := []rtlil.SigSpec{pick().Resize(len(a), false), pick().Resize(len(a), false)}
			s := rtlil.Concat(pick().Extract(0, 1), pick().Extract(0, 1))
			y = m.Pmux(a, b, s)
		}
		sigs = append(sigs, y)
	}
	out := m.AddOutput("out", len(sigs[len(sigs)-1]))
	m.Connect(out.Bits(), sigs[len(sigs)-1])
	return m
}

// TestMappingMatchesParallelSim cross-checks the AIG mapping against the
// bit-parallel simulator (which shares the pmux/shift conventions) on
// random circuits and random inputs.
func TestMappingMatchesParallelSim(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		m := buildRandomModule(rng, 10)
		mp, err := FromModule(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ps, err := sim.NewParallel(m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lanes := sim.RandomInputs(m, rng)
		psOut := ps.Run(lanes)
		for lane := uint(0); lane < 64; lane += 17 {
			in := map[Lit]bool{}
			for _, b := range mp.Inputs {
				in[mp.bits[b]] = (lanes[b]>>lane)&1 == 1
			}
			got := mp.G.Eval(in, mp.OutputLits)
			for i, b := range mp.Outputs {
				want := (ps.Sig(psOut, rtlil.SigSpec{b})[0]>>lane)&1 == 1
				if got[i] != want {
					t.Fatalf("trial %d lane %d output %d (%v): aig=%v sim=%v",
						trial, lane, i, b, got[i], want)
				}
			}
		}
	}
}

func TestMappingDffCut(t *testing.T) {
	m := rtlil.NewModule("seq")
	clk := m.AddInput("clk", 1).Bits()
	d := m.AddInput("d", 2).Bits()
	q := m.NewWire(2)
	m.AddDff("ff", clk, m.Not(d), q.Bits())
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), q.Bits())
	mp, err := FromModule(m)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs: clk(1) + d(2) + q(2) = 5; outputs: y(2) + D(2) = 4.
	if len(mp.Inputs) != 5 {
		t.Errorf("inputs = %d, want 5", len(mp.Inputs))
	}
	if len(mp.Outputs) != 4 {
		t.Errorf("outputs = %d, want 4", len(mp.Outputs))
	}
}

func TestAreaCountsOnlyReachable(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 8).Bits()
	b := m.AddInput("b", 8).Bits()
	y := m.AddOutput("y", 8)
	m.AddBinary(rtlil.CellAnd, "used", a, b, y.Bits())
	// Dangling logic: drives nothing observable.
	m.AddOp(a, b)
	area, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	if area != 8 {
		t.Errorf("area = %d, want 8 (one AND per bit, dangling adder excluded)", area)
	}
}

func TestAreaMuxCost(t *testing.T) {
	// A 1-bit mux costs 3 AND nodes.
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 1).Bits()
	b := m.AddInput("b", 1).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 1).Bits()
	m.AddMux("mx", a, b, s, y)
	area, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	if area != 3 {
		t.Errorf("mux area = %d, want 3", area)
	}
}

func TestAreaConstMux(t *testing.T) {
	// Mux with identical branches folds away entirely in the AIG.
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 4).Bits()
	m.AddMux("mx", a, a, s, y)
	area, err := Area(m)
	if err != nil {
		t.Fatal(err)
	}
	if area != 0 {
		t.Errorf("identical-branch mux area = %d, want 0", area)
	}
}
