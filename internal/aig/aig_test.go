package aig

import (
	"testing"

	"repro/internal/sat"
)

func TestLitOps(t *testing.T) {
	l := MkLit(5, false)
	if l.Node() != 5 || l.Compl() {
		t.Error("MkLit positive wrong")
	}
	if !l.Not().Compl() || l.Not().Node() != 5 {
		t.Error("Not wrong")
	}
	if Const1 != Const0.Not() {
		t.Error("constants wrong")
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New()
	a, b := g.NewInput(), g.NewInput()
	if g.And(a, Const0) != Const0 || g.And(Const0, b) != Const0 {
		t.Error("x & 0 != 0")
	}
	if g.And(a, Const1) != a || g.And(Const1, b) != b {
		t.Error("x & 1 != x")
	}
	if g.And(a, a) != a {
		t.Error("x & x != x")
	}
	if g.And(a, a.Not()) != Const0 {
		t.Error("x & ~x != 0")
	}
	if g.NumAnds() != 0 {
		t.Errorf("trivial cases created %d nodes", g.NumAnds())
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New()
	a, b := g.NewInput(), g.NewInput()
	x := g.And(a, b)
	y := g.And(b, a) // commuted
	if x != y {
		t.Error("strash missed commuted AND")
	}
	if g.NumAnds() != 1 {
		t.Errorf("NumAnds = %d, want 1", g.NumAnds())
	}
	// Xor twice shares structure.
	x1 := g.Xor(a, b)
	before := g.NumAnds()
	x2 := g.Xor(a, b)
	if x1 != x2 || g.NumAnds() != before {
		t.Error("strash missed repeated XOR")
	}
}

func TestEvalTruthTables(t *testing.T) {
	g := New()
	a, b, s := g.NewInput(), g.NewInput(), g.NewInput()
	and := g.And(a, b)
	or := g.Or(a, b)
	xor := g.Xor(a, b)
	mux := g.Mux(a, b, s)
	for m := 0; m < 8; m++ {
		va, vb, vs := m&1 == 1, m&2 == 2, m&4 == 4
		in := map[Lit]bool{a: va, b: vb, s: vs}
		got := g.Eval(in, []Lit{and, or, xor, mux, a.Not()})
		want := []bool{va && vb, va || vb, va != vb, pick(vs, vb, va), !va}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("m=%d root %d: got %v want %v", m, i, got[i], want[i])
			}
		}
	}
}

func pick(s, b, a bool) bool {
	if s {
		return b
	}
	return a
}

func TestCountReachable(t *testing.T) {
	g := New()
	a, b, c := g.NewInput(), g.NewInput(), g.NewInput()
	x := g.And(a, b)
	_ = g.And(x, c)  // reachable only from y
	y := g.And(x, c) // strash: same node
	dead := g.And(a, c)
	_ = dead
	if got := g.CountReachable([]Lit{y}); got != 2 {
		t.Errorf("CountReachable = %d, want 2", got)
	}
	if got := g.CountReachable([]Lit{x}); got != 1 {
		t.Errorf("CountReachable(x) = %d, want 1", got)
	}
	if g.NumAnds() != 3 {
		t.Errorf("NumAnds = %d, want 3", g.NumAnds())
	}
}

func TestLevels(t *testing.T) {
	g := New()
	a, b, c, d := g.NewInput(), g.NewInput(), g.NewInput(), g.NewInput()
	x := g.And(a, b)
	y := g.And(c, d)
	z := g.And(x, y)
	per, max := g.Levels([]Lit{x, z, a})
	if per[0] != 1 || per[1] != 2 || per[2] != 0 || max != 2 {
		t.Errorf("Levels = %v max %d", per, max)
	}
}

func TestCNFEquivalence(t *testing.T) {
	// Encode f = (a&b) ^ c and check SAT agrees with Eval on all inputs.
	g := New()
	a, b, c := g.NewInput(), g.NewInput(), g.NewInput()
	f := g.Xor(g.And(a, b), c)
	s := sat.NewSolver()
	cnf := NewCNF(g, s)
	fl := cnf.SatLit(f)
	al, bl, cl := cnf.SatLit(a), cnf.SatLit(b), cnf.SatLit(c)
	for m := 0; m < 8; m++ {
		va, vb, vc := m&1 == 1, m&2 == 2, m&4 == 4
		want := g.Eval(map[Lit]bool{a: va, b: vb, c: vc}, []Lit{f})[0]
		assume := []sat.Lit{cond(al, va), cond(bl, vb), cond(cl, vc)}
		// f must be forced to its truth-table value.
		if s.Solve(append(assume, cond(fl, !want))...) != sat.Unsat {
			t.Errorf("m=%d: wrong f value satisfiable", m)
		}
		if s.Solve(append(assume, cond(fl, want))...) != sat.Sat {
			t.Errorf("m=%d: correct f value unsatisfiable", m)
		}
	}
}

func cond(l sat.Lit, v bool) sat.Lit {
	if v {
		return l
	}
	return l.Not()
}

func TestCNFConstNode(t *testing.T) {
	g := New()
	a := g.NewInput()
	f := g.Or(a, Const1) // constant true
	s := sat.NewSolver()
	cnf := NewCNF(g, s)
	fl := cnf.SatLit(f)
	if s.Solve(fl.Not()) != sat.Unsat {
		t.Error("constant-true output can be false")
	}
	f0 := g.And(a, Const0)
	l0 := cnf.SatLit(f0)
	if s.Solve(l0) != sat.Unsat {
		t.Error("constant-false output can be true")
	}
}
