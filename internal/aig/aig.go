// Package aig implements an And-Inverter Graph with structural hashing,
// conversion from rtlil modules (the equivalent of Yosys' aigmap pass) and
// Tseitin CNF export for SAT-based reasoning.
//
// The AND-node count of the mapped graph is the paper's area metric:
// "AIG area, specifically the number of AND gates in the optimized
// circuit", with flip-flops excluded.
package aig

import "fmt"

// Lit is an AIG literal: node index times two, plus one if complemented.
// Node 0 is the constant-false node, so Lit 0 is constant false and Lit 1
// constant true.
type Lit int32

// Const0 and Const1 are the constant literals.
const (
	Const0 Lit = 0
	Const1 Lit = 1
)

// MkLit builds a literal from a node index and complement flag.
func MkLit(node int32, compl bool) Lit {
	l := Lit(node << 1)
	if compl {
		l |= 1
	}
	return l
}

// Node returns the literal's node index.
func (l Lit) Node() int32 { return int32(l >> 1) }

// Compl reports whether the literal is complemented.
func (l Lit) Compl() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

type node struct {
	f0, f1 Lit // fanins; f0 == -1 marks a primary input
}

func (n node) isInput() bool { return n.f0 == -1 }
func (n node) isAnd() bool   { return n.f0 >= 0 && n.f1 >= 0 }

// AIG is a structurally hashed and-inverter graph.
type AIG struct {
	nodes   []node
	strash  map[[2]Lit]int32
	numPIs  int
	numAnds int
}

// New returns an empty AIG containing only the constant node.
func New() *AIG {
	return &AIG{
		nodes:  []node{{f0: -2, f1: -2}}, // node 0: constant
		strash: map[[2]Lit]int32{},
	}
}

// NumInputs returns the number of primary inputs created.
func (g *AIG) NumInputs() int { return g.numPIs }

// NumAnds returns the total number of AND nodes ever created (including
// ones no longer reachable from any output).
func (g *AIG) NumAnds() int { return g.numAnds }

// NumNodes returns the total node count including the constant and inputs.
func (g *AIG) NumNodes() int { return len(g.nodes) }

// NewInput creates a fresh primary input and returns its positive literal.
func (g *AIG) NewInput() Lit {
	idx := int32(len(g.nodes))
	g.nodes = append(g.nodes, node{f0: -1, f1: -1})
	g.numPIs++
	return MkLit(idx, false)
}

// IsInput reports whether the literal's node is a primary input.
func (g *AIG) IsInput(l Lit) bool { return g.nodes[l.Node()].isInput() }

// And returns a literal for the conjunction of a and b, applying constant
// folding, idempotence/complement rules and structural hashing.
func (g *AIG) And(a, b Lit) Lit {
	// Trivial cases.
	switch {
	case a == Const0 || b == Const0:
		return Const0
	case a == Const1:
		return b
	case b == Const1:
		return a
	case a == b:
		return a
	case a == b.Not():
		return Const0
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if idx, ok := g.strash[key]; ok {
		return MkLit(idx, false)
	}
	idx := int32(len(g.nodes))
	g.nodes = append(g.nodes, node{f0: a, f1: b})
	g.strash[key] = idx
	g.numAnds++
	return MkLit(idx, false)
}

// Or returns a | b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns a ^ b (two AND nodes after hashing).
func (g *AIG) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns ~(a ^ b).
func (g *AIG) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Mux returns s ? b : a.
func (g *AIG) Mux(a, b, s Lit) Lit {
	if a == b {
		return a
	}
	return g.Or(g.And(s, b), g.And(s.Not(), a))
}

// Fanins returns the two fanin literals of an AND node.
func (g *AIG) Fanins(nodeIdx int32) (Lit, Lit) {
	n := g.nodes[nodeIdx]
	return n.f0, n.f1
}

// IsAnd reports whether nodeIdx is an AND node.
func (g *AIG) IsAnd(nodeIdx int32) bool { return g.nodes[nodeIdx].isAnd() }

// CountReachable returns the number of AND nodes reachable from the given
// root literals. This is the area figure reported by the benchmark
// harness: it matches running aigmap on a cleaned netlist, where dangling
// logic has already been removed.
func (g *AIG) CountReachable(roots []Lit) int {
	seen := make([]bool, len(g.nodes))
	count := 0
	var stack []int32
	push := func(l Lit) {
		n := l.Node()
		if !seen[n] {
			seen[n] = true
			stack = append(stack, n)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := g.nodes[n]
		if nd.isAnd() {
			count++
			push(nd.f0)
			push(nd.f1)
		}
	}
	return count
}

// Levels returns the depth (maximum AND-chain length) of each root and the
// overall maximum, a proxy for circuit delay.
func (g *AIG) Levels(roots []Lit) (perRoot []int, max int) {
	memo := make([]int, len(g.nodes))
	for i := range memo {
		memo[i] = -1
	}
	var level func(n int32) int
	level = func(n int32) int {
		if memo[n] >= 0 {
			return memo[n]
		}
		nd := g.nodes[n]
		l := 0
		if nd.isAnd() {
			l0 := level(nd.f0.Node())
			l1 := level(nd.f1.Node())
			if l1 > l0 {
				l0 = l1
			}
			l = l0 + 1
		}
		memo[n] = l
		return l
	}
	perRoot = make([]int, len(roots))
	for i, r := range roots {
		perRoot[i] = level(r.Node())
		if perRoot[i] > max {
			max = perRoot[i]
		}
	}
	return perRoot, max
}

// Eval computes the two-valued value of the given literals under an input
// assignment (indexed by input literal as returned from NewInput).
func (g *AIG) Eval(inputs map[Lit]bool, roots []Lit) []bool {
	vals := make([]int8, len(g.nodes)) // 0 unknown, 1 false, 2 true
	vals[0] = 1
	for l, v := range inputs {
		if l.Compl() {
			panic("aig: Eval input literal must be positive")
		}
		if v {
			vals[l.Node()] = 2
		} else {
			vals[l.Node()] = 1
		}
	}
	var eval func(n int32) bool
	eval = func(n int32) bool {
		if vals[n] != 0 {
			return vals[n] == 2
		}
		nd := g.nodes[n]
		if nd.isInput() {
			vals[n] = 1 // unassigned inputs default to false
			return false
		}
		v0 := eval(nd.f0.Node()) != nd.f0.Compl()
		v1 := eval(nd.f1.Node()) != nd.f1.Compl()
		v := v0 && v1
		if v {
			vals[n] = 2
		} else {
			vals[n] = 1
		}
		return v
	}
	out := make([]bool, len(roots))
	for i, r := range roots {
		out[i] = eval(r.Node()) != r.Compl()
	}
	return out
}

// String renders a summary.
func (g *AIG) String() string {
	return fmt.Sprintf("aig: %d inputs, %d ands, %d nodes", g.numPIs, g.numAnds, len(g.nodes))
}
