package aig

import (
	"testing"

	"repro/internal/sat"
)

// TestCNFIncrementalEncoding pins the property the SAT-mux cone cache
// relies on: one CNF context over one solver encodes lazily — only the
// cone of each requested literal — and repeated Solve calls interleaved
// with encoding growth stay correct.
func TestCNFIncrementalEncoding(t *testing.T) {
	g := New()
	a, b, c := g.NewInput(), g.NewInput(), g.NewInput()
	ab := g.And(a, b)
	abc := g.And(ab, c)
	other := g.And(a, c) // separate cone, encoded later

	s := sat.NewSolver()
	cnf := NewCNF(g, s)

	la := cnf.SatLit(ab)
	afterFirst := cnf.EncodedNodes()
	if afterFirst == 0 {
		t.Fatal("nothing encoded for the first cone")
	}
	// ab is satisfiable, and forcing it true forces both inputs.
	if s.Solve(la) != sat.Sat {
		t.Fatal("ab cone unsat")
	}
	if !s.ValueLit(cnf.SatLit(a)) || !s.ValueLit(cnf.SatLit(b)) {
		t.Fatal("model does not force the AND inputs")
	}

	// Growing the encoding between Solve calls must reuse the existing
	// sub-cone (a, b, ab already have variables).
	labc := cnf.SatLit(abc)
	if cnf.EncodedNodes() <= afterFirst {
		t.Fatal("abc cone did not extend the encoding")
	}
	grown := cnf.EncodedNodes()
	if again := cnf.SatLit(abc); again != labc {
		t.Fatal("re-requesting a literal changed its encoding")
	}
	if cnf.EncodedNodes() != grown {
		t.Fatal("re-requesting a literal re-encoded its cone")
	}

	// abc & !ab is contradictory; abc alone is satisfiable.
	if s.Solve(labc, la.Not()) != sat.Unsat {
		t.Fatal("abc without ab satisfiable")
	}
	if s.Solve(labc) != sat.Sat {
		t.Fatal("abc unsat after the unsat query")
	}

	// A later, disjoint cone on the same context.
	lo := cnf.SatLit(other)
	if s.Solve(lo, cnf.SatLit(b).Not()) != sat.Sat {
		t.Fatal("a&c with !b unsat")
	}
	if !s.ValueLit(cnf.SatLit(a)) || !s.ValueLit(cnf.SatLit(c)) {
		t.Fatal("model does not force the late cone's inputs")
	}

	// Constants encode to forced variables.
	if s.Solve(cnf.SatLit(Const0)) != sat.Unsat {
		t.Fatal("constant false assumable")
	}
	if s.Solve(cnf.SatLit(Const1)) != sat.Sat {
		t.Fatal("constant true unsat")
	}
}
