package aig

import (
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the AIG's algebraic laws: for
// arbitrary input assignments, the built graph must satisfy the Boolean
// identities the constructors claim.
func TestQuickBooleanLaws(t *testing.T) {
	g := New()
	a, b, c := g.NewInput(), g.NewInput(), g.NewInput()
	eval := func(l Lit, va, vb, vc bool) bool {
		return g.Eval(map[Lit]bool{a: va, b: vb, c: vc}, []Lit{l})[0]
	}

	commute := func(va, vb, vc bool) bool {
		return eval(g.And(a, b), va, vb, vc) == eval(g.And(b, a), va, vb, vc)
	}
	if err := quick.Check(commute, nil); err != nil {
		t.Error("AND commutativity:", err)
	}

	assoc := func(va, vb, vc bool) bool {
		l := g.And(g.And(a, b), c)
		r := g.And(a, g.And(b, c))
		return eval(l, va, vb, vc) == eval(r, va, vb, vc)
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("AND associativity:", err)
	}

	deMorgan := func(va, vb, vc bool) bool {
		l := g.And(a, b).Not()
		r := g.Or(a.Not(), b.Not())
		return eval(l, va, vb, vc) == eval(r, va, vb, vc)
	}
	if err := quick.Check(deMorgan, nil); err != nil {
		t.Error("De Morgan:", err)
	}

	xorDef := func(va, vb, vc bool) bool {
		return eval(g.Xor(a, b), va, vb, vc) == (va != vb)
	}
	if err := quick.Check(xorDef, nil); err != nil {
		t.Error("XOR definition:", err)
	}

	muxDef := func(va, vb, vc bool) bool {
		want := va
		if vc {
			want = vb
		}
		return eval(g.Mux(a, b, c), va, vb, vc) == want
	}
	if err := quick.Check(muxDef, nil); err != nil {
		t.Error("MUX definition:", err)
	}
}

// Property: structural hashing means building the same function twice
// never grows the graph.
func TestQuickStrashStability(t *testing.T) {
	g := New()
	a, b, c := g.NewInput(), g.NewInput(), g.NewInput()
	build := func() Lit {
		return g.Or(g.And(a, b), g.Xor(b, c))
	}
	first := build()
	size := g.NumAnds()
	f := func(uint8) bool {
		return build() == first && g.NumAnds() == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
