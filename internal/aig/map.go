package aig

import (
	"fmt"

	"repro/internal/rtlil"
)

// Mapping is the result of technology-mapping an rtlil module to an AIG
// (the equivalent of Yosys' aigmap). Flip-flops are cut: their Q bits
// become AIG primary inputs and their D bits additional outputs, so the
// mapped graph is the module's combinational transition/output function.
type Mapping struct {
	G *AIG

	mod  *rtlil.Module
	ix   *rtlil.Index
	bits map[rtlil.SigBit]Lit

	// Inputs lists the module bits (primary inputs and dff Q bits) in
	// the order their AIG inputs were created.
	Inputs []rtlil.SigBit
	// Outputs lists the observable bits: module output port bits
	// followed by dff D bits.
	Outputs []rtlil.SigBit
	// OutputLits are the AIG literals of Outputs, index-aligned.
	OutputLits []Lit
}

// NewPartialMapping creates an empty mapping over a pre-built index.
// Callers declare inputs with AddInputBit and map cells bottom-up with
// MapCell — this is how smaRTLy encodes extracted sub-graphs for SAT.
func NewPartialMapping(ix *rtlil.Index) *Mapping {
	return &Mapping{
		G:    New(),
		mod:  ix.Module(),
		ix:   ix,
		bits: map[rtlil.SigBit]Lit{},
	}
}

// AddInputBit declares a module bit as an AIG primary input (idempotent).
func (mp *Mapping) AddInputBit(b rtlil.SigBit) {
	mp.addInput(mp.ix.MapBit(b))
}

// MapCell maps one combinational cell; its input bits must already be
// mapped (inputs or outputs of previously mapped cells).
func (mp *Mapping) MapCell(c *rtlil.Cell) error {
	return mp.mapCell(c)
}

// HasBit reports whether the bit has an AIG literal (constant bits
// always do).
func (mp *Mapping) HasBit(b rtlil.SigBit) bool {
	b = mp.ix.MapBit(b)
	if b.IsConst() {
		return true
	}
	_, ok := mp.bits[b]
	return ok
}

// FromModule maps a module to a fresh AIG. It fails on combinational
// loops or unmappable cells.
func FromModule(m *rtlil.Module) (*Mapping, error) {
	order, err := rtlil.TopoSort(m)
	if err != nil {
		return nil, err
	}
	mp := &Mapping{
		G:    New(),
		mod:  m,
		ix:   rtlil.NewIndex(m),
		bits: map[rtlil.SigBit]Lit{},
	}
	// Create PIs for module inputs and dff Q bits.
	for _, w := range m.Inputs() {
		for _, b := range mp.ix.Map(w.Bits()) {
			mp.addInput(b)
		}
	}
	for _, c := range m.Cells() {
		if rtlil.IsSequential(c.Type) {
			for _, b := range mp.ix.Map(c.Port("Q")) {
				mp.addInput(b)
			}
		}
	}
	// Map combinational cells bottom-up.
	for _, c := range order {
		if rtlil.IsSequential(c.Type) {
			continue
		}
		if err := mp.mapCell(c); err != nil {
			return nil, err
		}
	}
	// Collect outputs: module outputs then dff D.
	for _, w := range m.Outputs() {
		for _, b := range w.Bits() {
			mp.Outputs = append(mp.Outputs, b)
			mp.OutputLits = append(mp.OutputLits, mp.LitOf(b))
		}
	}
	for _, c := range m.Cells() {
		if rtlil.IsSequential(c.Type) {
			for _, b := range c.Port("D") {
				mp.Outputs = append(mp.Outputs, b)
				mp.OutputLits = append(mp.OutputLits, mp.LitOf(b))
			}
		}
	}
	return mp, nil
}

func (mp *Mapping) addInput(b rtlil.SigBit) {
	if b.IsConst() {
		return
	}
	if _, dup := mp.bits[b]; dup {
		return
	}
	mp.bits[b] = mp.G.NewInput()
	mp.Inputs = append(mp.Inputs, b)
}

// LitOf returns the AIG literal computing the given module bit. Bits with
// no driver (dangling wires) and x/z constants map to constant false.
func (mp *Mapping) LitOf(b rtlil.SigBit) Lit {
	b = mp.ix.MapBit(b)
	if b.IsConst() {
		if b.Const == rtlil.S1 {
			return Const1
		}
		return Const0 // 0, x and z all map to 0
	}
	if l, ok := mp.bits[b]; ok {
		return l
	}
	return Const0
}

// LitsOf maps a whole signal.
func (mp *Mapping) LitsOf(sig rtlil.SigSpec) []Lit {
	out := make([]Lit, len(sig))
	for i, b := range sig {
		out[i] = mp.LitOf(b)
	}
	return out
}

func (mp *Mapping) setSig(sig rtlil.SigSpec, lits []Lit) {
	for i, b := range sig {
		if b.IsConst() {
			continue
		}
		mp.bits[mp.ix.MapBit(b)] = lits[i]
	}
}

func resizeLits(v []Lit, width int) []Lit {
	if len(v) == width {
		return v
	}
	out := make([]Lit, width)
	for i := range out {
		if i < len(v) {
			out[i] = v[i]
		} else {
			out[i] = Const0
		}
	}
	return out
}

func (mp *Mapping) mapCell(c *rtlil.Cell) error {
	g := mp.G
	yw := len(c.Port("Y"))
	A := mp.LitsOf(c.Port("A"))
	var B []Lit
	if b := c.Port("B"); b != nil {
		B = mp.LitsOf(b)
	}
	var Y []Lit
	switch c.Type {
	case rtlil.CellNot:
		a := resizeLits(A, yw)
		Y = make([]Lit, yw)
		for i := range Y {
			Y[i] = a[i].Not()
		}
	case rtlil.CellNeg:
		a := resizeLits(A, yw)
		Y = make([]Lit, yw)
		carry := Const1
		for i := range Y {
			na := a[i].Not()
			Y[i] = g.Xor(na, carry)
			carry = g.And(na, carry)
		}
	case rtlil.CellReduceAnd:
		Y = []Lit{mp.foldAnd(A)}
	case rtlil.CellReduceOr:
		Y = []Lit{mp.foldOr(A)}
	case rtlil.CellReduceXor:
		r := Const0
		for _, l := range A {
			r = g.Xor(r, l)
		}
		Y = []Lit{r}
	case rtlil.CellLogicNot:
		Y = []Lit{mp.foldOr(A).Not()}

	case rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor, rtlil.CellXnor:
		a, b := resizeLits(A, yw), resizeLits(B, yw)
		Y = make([]Lit, yw)
		for i := range Y {
			switch c.Type {
			case rtlil.CellAnd:
				Y[i] = g.And(a[i], b[i])
			case rtlil.CellOr:
				Y[i] = g.Or(a[i], b[i])
			case rtlil.CellXor:
				Y[i] = g.Xor(a[i], b[i])
			case rtlil.CellXnor:
				Y[i] = g.Xnor(a[i], b[i])
			}
		}

	case rtlil.CellAdd:
		Y = mp.adder(resizeLits(A, yw), resizeLits(B, yw), Const0)
	case rtlil.CellSub:
		b := resizeLits(B, yw)
		nb := make([]Lit, yw)
		for i := range nb {
			nb[i] = b[i].Not()
		}
		Y = mp.adder(resizeLits(A, yw), nb, Const1)
	case rtlil.CellMul:
		Y = mp.multiplier(resizeLits(A, yw), resizeLits(B, yw))

	case rtlil.CellEq, rtlil.CellNe:
		w := len(A)
		if len(B) > w {
			w = len(B)
		}
		a, b := resizeLits(A, w), resizeLits(B, w)
		bits := make([]Lit, w)
		for i := range bits {
			bits[i] = g.Xnor(a[i], b[i])
		}
		eq := mp.foldAnd(bits)
		if c.Type == rtlil.CellEq {
			Y = []Lit{eq}
		} else {
			Y = []Lit{eq.Not()}
		}

	case rtlil.CellLt, rtlil.CellLe, rtlil.CellGt, rtlil.CellGe:
		w := len(A)
		if len(B) > w {
			w = len(B)
		}
		a, b := resizeLits(A, w), resizeLits(B, w)
		lt := mp.less(a, b)
		switch c.Type {
		case rtlil.CellLt:
			Y = []Lit{lt}
		case rtlil.CellGe:
			Y = []Lit{lt.Not()}
		case rtlil.CellGt:
			Y = []Lit{mp.less(b, a)}
		case rtlil.CellLe:
			Y = []Lit{mp.less(b, a).Not()}
		}

	case rtlil.CellLogicAnd:
		Y = []Lit{g.And(mp.foldOr(A), mp.foldOr(B))}
	case rtlil.CellLogicOr:
		Y = []Lit{g.Or(mp.foldOr(A), mp.foldOr(B))}

	case rtlil.CellShl, rtlil.CellShr:
		Y = mp.shifter(c.Type, resizeLits(A, yw), B)

	case rtlil.CellMux:
		s := mp.LitOf(c.Port("S")[0])
		a, b := resizeLits(A, yw), resizeLits(B, yw)
		Y = make([]Lit, yw)
		for i := range Y {
			Y[i] = g.Mux(a[i], b[i], s)
		}

	case rtlil.CellPmux:
		w := c.Param("WIDTH")
		sw := c.Param("S_WIDTH")
		s := mp.LitsOf(c.Port("S"))
		cur := resizeLits(A, w)
		for i := 0; i < sw; i++ {
			word := B[i*w : (i+1)*w]
			next := make([]Lit, w)
			for k := 0; k < w; k++ {
				next[k] = g.Mux(cur[k], word[k], s[i])
			}
			cur = next
		}
		Y = cur

	default:
		return fmt.Errorf("aig: cannot map cell %s of type %s", c.Name, c.Type)
	}
	mp.setSig(c.Port(rtlil.OutputPorts(c.Type)[0]), Y)
	return nil
}

// foldAnd builds a balanced AND tree.
func (mp *Mapping) foldAnd(lits []Lit) Lit {
	if len(lits) == 0 {
		return Const1
	}
	for len(lits) > 1 {
		var next []Lit
		for i := 0; i < len(lits); i += 2 {
			if i+1 < len(lits) {
				next = append(next, mp.G.And(lits[i], lits[i+1]))
			} else {
				next = append(next, lits[i])
			}
		}
		lits = next
	}
	return lits[0]
}

// foldOr builds a balanced OR tree.
func (mp *Mapping) foldOr(lits []Lit) Lit {
	inv := make([]Lit, len(lits))
	for i, l := range lits {
		inv[i] = l.Not()
	}
	return mp.foldAnd(inv).Not()
}

// adder builds a ripple-carry adder.
func (mp *Mapping) adder(a, b []Lit, cin Lit) []Lit {
	g := mp.G
	out := make([]Lit, len(a))
	c := cin
	for i := range a {
		axb := g.Xor(a[i], b[i])
		out[i] = g.Xor(axb, c)
		c = g.Or(g.And(a[i], b[i]), g.And(axb, c))
	}
	return out
}

// less builds an unsigned a < b comparator (LSB-to-MSB ripple).
func (mp *Mapping) less(a, b []Lit) Lit {
	g := mp.G
	lt := Const0
	for i := 0; i < len(a); i++ {
		bi := b[i]
		ai := a[i]
		eq := g.Xnor(ai, bi)
		lt = g.Or(g.And(ai.Not(), bi), g.And(eq, lt))
	}
	return lt
}

// multiplier builds a shift-add array multiplier truncated to len(a) bits.
func (mp *Mapping) multiplier(a, b []Lit) []Lit {
	g := mp.G
	w := len(a)
	acc := make([]Lit, w)
	for i := range acc {
		acc[i] = Const0
	}
	for j := 0; j < w; j++ {
		part := make([]Lit, w)
		for i := range part {
			if i >= j {
				part[i] = g.And(a[i-j], b[j])
			} else {
				part[i] = Const0
			}
		}
		acc = mp.adder(acc, part, Const0)
	}
	return acc
}

// shifter builds a barrel shifter (canonical decomposition shared with the
// simulators: select bits with weight >= width force zero).
func (mp *Mapping) shifter(t rtlil.CellType, a, sel []Lit) []Lit {
	g := mp.G
	w := len(a)
	cur := a
	overflow := Const0
	for j, s := range sel {
		amt := 1 << uint(j)
		if j >= 31 || amt >= w {
			overflow = g.Or(overflow, s)
			continue
		}
		next := make([]Lit, w)
		for i := 0; i < w; i++ {
			shifted := Const0
			if t == rtlil.CellShl {
				if i-amt >= 0 {
					shifted = cur[i-amt]
				}
			} else {
				if i+amt < w {
					shifted = cur[i+amt]
				}
			}
			next[i] = g.Mux(cur[i], shifted, s)
		}
		cur = next
	}
	out := make([]Lit, w)
	for i := range out {
		out[i] = g.And(cur[i], overflow.Not())
	}
	return out
}

// Area maps the module and returns the number of AND nodes reachable from
// its observable outputs — the paper's AIG-area metric.
func Area(m *rtlil.Module) (int, error) {
	mp, err := FromModule(m)
	if err != nil {
		return 0, err
	}
	return mp.G.CountReachable(mp.OutputLits), nil
}
