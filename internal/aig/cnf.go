package aig

import "repro/internal/sat"

// CNF relates an AIG to SAT variables via the Tseitin transformation.
// Clauses are added lazily: Ensure walks the cone of the requested
// literals and encodes only nodes not yet encoded, so one solver can be
// shared across many queries on the same graph.
type CNF struct {
	G      *AIG
	S      *sat.Solver
	varOf  map[int32]sat.Var
	cTrue  sat.Var
	haveCT bool
}

// NewCNF creates an empty Tseitin context over graph g and solver s.
func NewCNF(g *AIG, s *sat.Solver) *CNF {
	return &CNF{G: g, S: s, varOf: map[int32]sat.Var{}}
}

func (c *CNF) constVar() sat.Var {
	if !c.haveCT {
		c.cTrue = c.S.NewVar()
		c.S.AddClause(sat.PosLit(c.cTrue))
		c.haveCT = true
	}
	return c.cTrue
}

// Ensure encodes the cone of the given AIG literals into the solver and
// returns nothing; use SatLit to translate literals afterwards.
func (c *CNF) Ensure(roots ...Lit) {
	var stack []int32
	push := func(l Lit) {
		n := l.Node()
		if _, done := c.varOf[n]; !done {
			stack = append(stack, n)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		if _, done := c.varOf[n]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		nd := c.G.nodes[n]
		if n == 0 {
			// Constant node: variable forced true; Lit 0 (const false)
			// is the *complemented* node-0 literal... node 0 positive
			// literal is Const0, so force the variable false.
			v := c.S.NewVar()
			c.S.AddClause(sat.NegLit(v))
			c.varOf[n] = v
			stack = stack[:len(stack)-1]
			continue
		}
		if nd.isInput() {
			c.varOf[n] = c.S.NewVar()
			stack = stack[:len(stack)-1]
			continue
		}
		// AND node: need fanins first.
		v0, ok0 := c.varOf[nd.f0.Node()]
		v1, ok1 := c.varOf[nd.f1.Node()]
		if !ok0 || !ok1 {
			if !ok0 {
				push(nd.f0)
			}
			if !ok1 {
				push(nd.f1)
			}
			continue
		}
		y := c.S.NewVar()
		a := sat.MkLit(v0, nd.f0.Compl())
		b := sat.MkLit(v1, nd.f1.Compl())
		// y <-> a & b
		c.S.AddClause(sat.NegLit(y), a)
		c.S.AddClause(sat.NegLit(y), b)
		c.S.AddClause(sat.PosLit(y), a.Not(), b.Not())
		c.varOf[n] = y
		stack = stack[:len(stack)-1]
	}
}

// SatLit translates an AIG literal to a solver literal, encoding its cone
// on demand.
func (c *CNF) SatLit(l Lit) sat.Lit {
	if _, ok := c.varOf[l.Node()]; !ok {
		c.Ensure(l)
	}
	return sat.MkLit(c.varOf[l.Node()], l.Compl())
}

// EncodedNodes reports how many AIG nodes have solver variables — i.e.
// how much of the graph the lazy Tseitin encoding has materialized so
// far. Long-lived CNF contexts (the SAT-mux cone cache) grow this
// monotonically as queries reference new logic.
func (c *CNF) EncodedNodes() int { return len(c.varOf) }
