package cec

import (
	"errors"
	"strconv"
	"strings"
	"testing"

	"repro/internal/rtlil"
	"repro/internal/sim"
)

// pipePair returns two structurally different but sequentially
// equivalent 2-stage pipelines: r1 <= f(a,b); r2 <= r1; y = r2, where
// f is a&b built directly on one side and via De Morgan on the other.
func pipePair() (*rtlil.Module, *rtlil.Module) {
	build := func(name string, demorgan bool) *rtlil.Module {
		m := rtlil.NewModule(name)
		clk := m.AddInput("clk", 1).Bits()
		a := m.AddInput("a", 4).Bits()
		b := m.AddInput("b", 4).Bits()
		var f rtlil.SigSpec
		if demorgan {
			f = m.Not(m.Or(m.Not(a), m.Not(b)))
		} else {
			f = m.And(a, b)
		}
		r1 := m.NewWire(4)
		r2 := m.NewWire(4)
		m.AddDff("r1", clk, f, r1.Bits())
		m.AddDff("r2", clk, r1.Bits(), r2.Bits())
		y := m.AddOutput("y", 4)
		m.Connect(y.Bits(), r2.Bits())
		return m
	}
	return build("plain", false), build("dm", true)
}

func TestCheckSequentialEquivalent(t *testing.T) {
	a, b := pipePair()
	if err := CheckSequential(a, b, nil); err != nil {
		t.Fatalf("equivalent pipelines reported different: %v", err)
	}
}

// stuckPair returns a module whose register is a self-loop stuck at the
// zero reset value, and its swept counterpart with the register gone.
// Plain k-induction cannot prove this pair (the unreachable state
// stuck=1 is an induction counterexample for every k); the van Eijk
// invariant stuck==0 closes it.
func stuckPair() (*rtlil.Module, *rtlil.Module) {
	withReg := rtlil.NewModule("withreg")
	{
		clk := withReg.AddInput("clk", 1).Bits()
		x := withReg.AddInput("x", 4).Bits()
		stuck := withReg.NewWire(4)
		withReg.AddDff("stuck", clk, stuck.Bits(), stuck.Bits())
		y := withReg.AddOutput("y", 4)
		withReg.Connect(y.Bits(), withReg.Xor(x, stuck.Bits()))
	}
	swept := rtlil.NewModule("swept")
	{
		swept.AddInput("clk", 1)
		x := swept.AddInput("x", 4).Bits()
		y := swept.AddOutput("y", 4)
		swept.Connect(y.Bits(), swept.Xor(x, rtlil.Const(0, 4)))
	}
	return withReg, swept
}

func TestCheckSequentialSelfLoopRemoval(t *testing.T) {
	a, b := stuckPair()
	if err := CheckSequential(a, b, nil); err != nil {
		t.Fatalf("self-loop register removal not proven: %v", err)
	}
}

// deepStuckPair needs invariants: q1 is a self-loop and q2 decays
// through an input gate (q2' = q2 & x), so both stay 0 from reset and
// y = q1 ^ q2 is constant 0. But from the unreachable start
// q1 = q2 = 1, one cycle with x=1 keeps them equal and a second with
// x=0 splits them — the output-equality assumption q1==q2 is not
// inductive, so plain k-induction is stuck for every k.
func deepStuckPair() (*rtlil.Module, *rtlil.Module) {
	withRegs := rtlil.NewModule("withregs")
	{
		clk := withRegs.AddInput("clk", 1).Bits()
		x := withRegs.AddInput("x", 1).Bits()
		q1 := withRegs.NewWire(1)
		q2 := withRegs.NewWire(1)
		withRegs.AddDff("q1", clk, q1.Bits(), q1.Bits())
		withRegs.AddDff("q2", clk, withRegs.And(q2.Bits(), x), q2.Bits())
		y := withRegs.AddOutput("y", 1)
		withRegs.Connect(y.Bits(), withRegs.Xor(q1.Bits(), q2.Bits()))
	}
	swept := rtlil.NewModule("swept")
	{
		swept.AddInput("clk", 1)
		swept.AddInput("x", 1)
		y := swept.AddOutput("y", 1)
		swept.Connect(y.Bits(), rtlil.Const(0, 1))
	}
	return withRegs, swept
}

func TestCheckSequentialNeedsInvariants(t *testing.T) {
	// Without invariant strengthening the pair must come back
	// inconclusive — never "not equivalent", never "proven"...
	a, b := deepStuckPair()
	err := CheckSequential(a, b, &SeqOptions{DisableInvariants: true})
	var unk *UnknownError
	if !errors.As(err, &unk) {
		t.Fatalf("plain k-induction verdict = %v, want UnknownError", err)
	}
	// ...and the harvested register-constant invariants close exactly
	// this gap.
	if err := CheckSequential(a, b, nil); err != nil {
		t.Fatalf("invariant-strengthened induction failed: %v", err)
	}
}

// replayCex drives both modules through the counterexample's input
// history with the multi-cycle simulator and confirms the named output
// bit really differs at the reported cycle.
func replayCex(t *testing.T, a, b *rtlil.Module, cex *SeqNotEquivalentError) {
	t.Helper()
	parse := func(key, prefix string) (string, int) {
		s := strings.TrimPrefix(key, prefix)
		i := strings.LastIndex(s, "[")
		bit, err := strconv.Atoi(strings.TrimSuffix(s[i+1:], "]"))
		if err != nil {
			t.Fatalf("bad key %q: %v", key, err)
		}
		return s[:i], bit
	}
	lanes := func(m *rtlil.Module, in map[string]bool) map[rtlil.SigBit]uint64 {
		out := map[rtlil.SigBit]uint64{}
		for k, v := range in {
			name, bit := parse(k, "in:")
			w := m.Wire(name)
			if w == nil {
				t.Fatalf("module %s has no wire %s", m.Name, name)
			}
			if v {
				out[w.Bits()[bit]] = 1
			} else {
				out[w.Bits()[bit]] = 0
			}
		}
		return out
	}
	sa, err := sim.NewSequential(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sim.NewSequential(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(cex.Inputs) != cex.Cycle+1 {
		t.Fatalf("counterexample has %d input cycles, want %d", len(cex.Inputs), cex.Cycle+1)
	}
	var va, vb map[rtlil.SigBit]uint64
	for _, in := range cex.Inputs {
		va = sa.Step(lanes(a, in))
		vb = sb.Step(lanes(b, in))
	}
	name, bit := parse(cex.Output, "out:")
	ga := sa.Sig(va, rtlil.SigSpec{a.Wire(name).Bits()[bit]})[0] & 1
	gb := sb.Sig(vb, rtlil.SigSpec{b.Wire(name).Bits()[bit]})[0] & 1
	if ga == gb {
		t.Fatalf("counterexample does not replay: %s = %d on both sides at cycle %d",
			cex.Output, ga, cex.Cycle)
	}
}

func TestCheckSequentialCounterexample(t *testing.T) {
	a, b := pipePair()
	ff := b.Cell("r2")
	ff.SetPort("D", b.Not(ff.Port("D")))
	err := CheckSequential(a, b, nil)
	var cex *SeqNotEquivalentError
	if !errors.As(err, &cex) {
		t.Fatalf("mutated pipeline verdict = %v, want counterexample", err)
	}
	replayCex(t, a, b, cex)
}

// TestCheckSequentialUnsoundConstRewrite is the register-sweep trap: a
// register with D tied to constant 1 holds 0 at cycle 0 (zero reset)
// and 1 afterwards, so replacing it by the constant is unsound. The
// checker must refute it, at cycle 0.
func TestCheckSequentialUnsoundConstRewrite(t *testing.T) {
	a := rtlil.NewModule("a")
	{
		clk := a.AddInput("clk", 1).Bits()
		q := a.NewWire(1)
		a.AddDff("r", clk, rtlil.Const(1, 1), q.Bits())
		y := a.AddOutput("y", 1)
		a.Connect(y.Bits(), q.Bits())
	}
	b := rtlil.NewModule("b")
	{
		b.AddInput("clk", 1)
		y := b.AddOutput("y", 1)
		b.Connect(y.Bits(), rtlil.Const(1, 1))
	}
	err := CheckSequential(a, b, nil)
	var cex *SeqNotEquivalentError
	if !errors.As(err, &cex) {
		t.Fatalf("unsound constant rewrite verdict = %v, want counterexample", err)
	}
	if cex.Cycle != 0 {
		t.Errorf("counterexample at cycle %d, want 0", cex.Cycle)
	}
}

func TestBMCFindsDeepDifference(t *testing.T) {
	// The difference is injected at the pipeline head and is observable
	// only at cycle 2 — for every input. BMC must walk exactly that far.
	build := func(invert bool) *rtlil.Module {
		m := rtlil.NewModule("m")
		clk := m.AddInput("clk", 1).Bits()
		a := m.AddInput("a", 1).Bits()
		d := a
		if invert {
			d = m.Not(a)
		}
		r1 := m.NewWire(1)
		r2 := m.NewWire(1)
		m.AddDff("r1", clk, d, r1.Bits())
		m.AddDff("r2", clk, r1.Bits(), r2.Bits())
		y := m.AddOutput("y", 1)
		m.Connect(y.Bits(), r2.Bits())
		return m
	}
	a, b := build(false), build(true)
	err := BMC(a, b, 4, nil)
	var cex *SeqNotEquivalentError
	if !errors.As(err, &cex) {
		t.Fatalf("BMC verdict = %v, want counterexample", err)
	}
	if cex.Cycle != 2 {
		t.Errorf("counterexample at cycle %d, want 2", cex.Cycle)
	}
	replayCex(t, a, b, cex)
	// And BMC below the observable depth finds nothing.
	if err := BMC(a, b, 1, nil); err != nil {
		t.Errorf("BMC at depth 1 = %v, want nil (difference starts at cycle 2)", err)
	}
}

func TestCheckSequentialStateless(t *testing.T) {
	a, b := demorganPair()
	if err := CheckSequential(a, b, nil); err != nil {
		t.Fatalf("stateless equivalent pair: %v", err)
	}
	// Refutation: ~(x&y) against x&y.
	c := rtlil.NewModule("c")
	x1 := c.AddInput("x", 4).Bits()
	x2 := c.AddInput("y", 4).Bits()
	yo := c.AddOutput("out", 4)
	c.Connect(yo.Bits(), c.And(x1, x2))
	err := CheckSequential(a, c, nil)
	var cex *SeqNotEquivalentError
	if !errors.As(err, &cex) {
		t.Fatalf("stateless inequivalent pair verdict = %v, want counterexample", err)
	}
	if cex.Cycle != 0 {
		t.Errorf("stateless counterexample at cycle %d, want 0", cex.Cycle)
	}
}

func TestCheckSequentialClockDomains(t *testing.T) {
	build := func() *rtlil.Module {
		m := rtlil.NewModule("m")
		c1 := m.AddInput("clk1", 1).Bits()
		c2 := m.AddInput("clk2", 1).Bits()
		d := m.AddInput("d", 1).Bits()
		q1 := m.NewWire(1)
		q2 := m.NewWire(1)
		m.AddDff("f1", c1, d, q1.Bits())
		m.AddDff("f2", c2, d, q2.Bits())
		y := m.AddOutput("y", 1)
		m.Connect(y.Bits(), m.Xor(q1.Bits(), q2.Bits()))
		return m
	}
	err := CheckSequential(build(), build(), nil)
	if err == nil || !strings.Contains(err.Error(), "clock") {
		t.Fatalf("multi-clock module verdict = %v, want clock-domain error", err)
	}
	var cex *SeqNotEquivalentError
	var unk *UnknownError
	if errors.As(err, &cex) || errors.As(err, &unk) {
		t.Fatalf("multi-clock must be a hard error, got %T", err)
	}
}

func TestCheckSequentialInterfaceMismatch(t *testing.T) {
	a := rtlil.NewModule("a")
	a.AddInput("clk", 1)
	a.AddInput("x", 2)
	a.AddOutput("y", 1)
	b := rtlil.NewModule("b")
	b.AddInput("clk", 1)
	b.AddInput("x", 3)
	b.AddOutput("y", 1)
	if err := CheckSequential(a, b, nil); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("interface mismatch not reported: %v", err)
	}
}

// TestCheckSequentialMerge proves a duplicate-register merge: two
// registers latching the same D collapse onto one.
func TestCheckSequentialMerge(t *testing.T) {
	dup := rtlil.NewModule("dup")
	{
		clk := dup.AddInput("clk", 1).Bits()
		d := dup.AddInput("d", 2).Bits()
		q1 := dup.NewWire(2)
		q2 := dup.NewWire(2)
		dup.AddDff("f1", clk, d, q1.Bits())
		dup.AddDff("f2", clk, d, q2.Bits())
		y := dup.AddOutput("y", 2)
		dup.Connect(y.Bits(), dup.Xor(q1.Bits(), dup.Not(q2.Bits())))
	}
	merged := rtlil.NewModule("merged")
	{
		clk := merged.AddInput("clk", 1).Bits()
		d := merged.AddInput("d", 2).Bits()
		q := merged.NewWire(2)
		merged.AddDff("f", clk, d, q.Bits())
		y := merged.AddOutput("y", 2)
		merged.Connect(y.Bits(), merged.Xor(q.Bits(), merged.Not(q.Bits())))
	}
	if err := CheckSequential(dup, merged, nil); err != nil {
		t.Fatalf("register merge not proven: %v", err)
	}
}
