package cec_test

// The differential k-induction fuzzer. Package cec_test (not cec) so it
// can drive the opt_dff pass through the registry without an import
// cycle (internal/opt imports internal/cec).
//
// Per seed it checks three contracts on a random sequential netlist:
//
//  1. opt_dff, run through the pass registry with verification on,
//     leaves a netlist CheckSequential still proves equivalent — and
//     plain BMC at depth k+2 agrees (an unsound "equivalent" fails).
//  2. Any counterexample the checker reports replays concretely on the
//     multi-cycle simulator.
//  3. An injected unsound rewrite (inverting one register's next-state
//     function) is never proven equivalent.
//
// Failing seeds are kept by the Go fuzzing corpus machinery under
// testdata/fuzz/FuzzKInduction.

import (
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cec"
	"repro/internal/genbench"
	"repro/internal/opt"
	"repro/internal/rtlil"
	"repro/internal/sim"
)

// fuzzReplay drives both modules through a counterexample's input
// history and reports whether the named output bit differs at the
// reported cycle.
func fuzzReplay(t *testing.T, a, b *rtlil.Module, cex *cec.SeqNotEquivalentError) bool {
	t.Helper()
	parse := func(key, prefix string) (string, int) {
		s := strings.TrimPrefix(key, prefix)
		i := strings.LastIndex(s, "[")
		bit, err := strconv.Atoi(strings.TrimSuffix(s[i+1:], "]"))
		if err != nil {
			t.Fatalf("bad counterexample key %q: %v", key, err)
		}
		return s[:i], bit
	}
	lanes := func(m *rtlil.Module, in map[string]bool) map[rtlil.SigBit]uint64 {
		out := map[rtlil.SigBit]uint64{}
		for k, v := range in {
			name, bit := parse(k, "in:")
			w := m.Wire(name)
			if w == nil {
				t.Fatalf("module %s has no wire %s", m.Name, name)
			}
			var lane uint64
			if v {
				lane = 1
			}
			out[w.Bits()[bit]] = lane
		}
		return out
	}
	sa, err := sim.NewSequential(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sim.NewSequential(b)
	if err != nil {
		t.Fatal(err)
	}
	var va, vb map[rtlil.SigBit]uint64
	for _, in := range cex.Inputs {
		va = sa.Step(lanes(a, in))
		vb = sb.Step(lanes(b, in))
	}
	name, bit := parse(cex.Output, "out:")
	ga := sa.Sig(va, rtlil.SigSpec{a.Wire(name).Bits()[bit]})[0] & 1
	gb := sb.Sig(vb, rtlil.SigSpec{b.Wire(name).Bits()[bit]})[0] & 1
	return ga != gb
}

// simDiffers runs both modules for a few cycles of shared 64-lane
// random stimulus and reports whether any output ever differs.
func simDiffers(t *testing.T, a, b *rtlil.Module, seed int64) bool {
	t.Helper()
	sa, err := sim.NewSequential(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := sim.NewSequential(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eb))
	for cyc := 0; cyc < 24; cyc++ {
		ina := map[rtlil.SigBit]uint64{}
		inb := map[rtlil.SigBit]uint64{}
		for _, w := range a.Inputs() {
			for i := range w.Bits() {
				v := rng.Uint64()
				ina[w.Bits()[i]] = v
				inb[b.Wire(w.Name).Bits()[i]] = v
			}
		}
		va := sa.Step(ina)
		vb := sb.Step(inb)
		for _, w := range a.Outputs() {
			ga := sa.Sig(va, w.Bits())
			gb := sb.Sig(vb, b.Wire(w.Name).Bits())
			for i := range ga {
				if ga[i] != gb[i] {
					return true
				}
			}
		}
	}
	return false
}

func FuzzKInduction(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	// Regression: a netlist whose injected register inversion is
	// unobservable (XOR-path cancellation) — "equivalent" is correct.
	f.Add(int64(-26))
	spec, ok := opt.LookupPass("opt_dff")
	if !ok {
		f.Fatal("opt_dff not registered")
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		m := genbench.Generate(genbench.RandomSeqRecipe(seed), 1.0)
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid module: %v", seed, err)
		}
		orig := m.Clone()
		pass, err := spec.Build(opt.Args{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := opt.RunScript(opt.NewCtx(nil, opt.Config{}), m, pass)
		if err != nil {
			t.Fatalf("seed %d: opt_dff: %v", seed, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("seed %d: opt_dff left invalid module: %v", seed, err)
		}
		o := &cec.SeqOptions{Seed: seed + 7} // independent sim seed
		verdict := cec.CheckSequential(orig, m, o)
		var cex *cec.SeqNotEquivalentError
		if errors.As(verdict, &cex) {
			if !fuzzReplay(t, orig, m, cex) {
				t.Fatalf("seed %d: counterexample does not replay: %v", seed, cex)
			}
			t.Fatalf("seed %d: opt_dff broke equivalence (counters %v): %v",
				seed, res.Details, cex)
		}
		// Cross-check the induction verdict against plain BMC at k+2:
		// a proof with a bounded counterexample is unsound.
		bmcErr := cec.BMC(orig, m, 4, o)
		if errors.As(bmcErr, &cex) {
			if verdict == nil {
				t.Fatalf("seed %d: induction proved equivalence but BMC refutes at cycle %d: %v",
					seed, cex.Cycle, cex)
			}
			t.Fatalf("seed %d: opt_dff broke equivalence within %d cycles: %v",
				seed, cex.Cycle, cex)
		}

		// Injected rewrite: invert one register's next-state function.
		// Random simulation establishes the ground truth first — the
		// inversion can be genuinely unobservable (XOR-path
		// cancellation in the generated netlist), in which case
		// "equivalent" is the right answer and only the BMC agreement
		// check applies.
		bad := orig.Clone()
		regs := bad.SeqCells()
		if len(regs) == 0 {
			return
		}
		ff := regs[int(uint64(seed)%uint64(len(regs)))]
		ff.SetPort("D", bad.Not(ff.Port("D")))
		observable := simDiffers(t, orig, bad, seed)
		badVerdict := cec.CheckSequential(orig, bad, o)
		if observable && badVerdict == nil {
			t.Fatalf("seed %d: injected unsound rewrite on %s proven equivalent", seed, ff.Name)
		}
		if errors.As(badVerdict, &cex) && !fuzzReplay(t, orig, bad, cex) {
			t.Fatalf("seed %d: injected-rewrite counterexample does not replay: %v", seed, cex)
		}
		if badVerdict == nil {
			if berr := cec.BMC(orig, bad, 4, o); errors.As(berr, &cex) {
				t.Fatalf("seed %d: injected rewrite proven equivalent but BMC refutes at cycle %d",
					seed, cex.Cycle)
			}
		}
	})
}
