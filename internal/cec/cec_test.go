package cec

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rtlil"
)

// demorganPair returns two modules computing ~(a&b) two different ways.
func demorganPair() (*rtlil.Module, *rtlil.Module) {
	a := rtlil.NewModule("a")
	{
		x := a.AddInput("x", 4).Bits()
		y := a.AddInput("y", 4).Bits()
		out := a.AddOutput("out", 4)
		a.Connect(out.Bits(), a.Not(a.And(x, y)))
	}
	b := rtlil.NewModule("b")
	{
		x := b.AddInput("x", 4).Bits()
		y := b.AddInput("y", 4).Bits()
		out := b.AddOutput("out", 4)
		b.Connect(out.Bits(), b.Or(b.Not(x), b.Not(y)))
	}
	return a, b
}

func TestEquivalentDeMorgan(t *testing.T) {
	a, b := demorganPair()
	if err := Check(a, b, nil); err != nil {
		t.Fatalf("De Morgan pair reported different: %v", err)
	}
}

func TestNotEquivalentCaughtBySim(t *testing.T) {
	a, _ := demorganPair()
	b := rtlil.NewModule("b")
	x := b.AddInput("x", 4).Bits()
	y := b.AddInput("y", 4).Bits()
	out := b.AddOutput("out", 4)
	b.Connect(out.Bits(), b.And(x, y)) // missing the NOT
	err := Check(a, b, nil)
	var ne *NotEquivalentError
	if !errors.As(err, &ne) {
		t.Fatalf("want NotEquivalentError, got %v", err)
	}
	if len(ne.Inputs) != 8 {
		t.Errorf("counterexample has %d inputs, want 8", len(ne.Inputs))
	}
	if !strings.Contains(ne.Error(), "out:") {
		t.Errorf("error message lacks output name: %s", ne.Error())
	}
}

// TestNotEquivalentNeedsSAT builds a mismatch so narrow random simulation
// is unlikely to find it: the modules differ only when a 32-bit input is
// exactly a magic constant.
func TestNotEquivalentNeedsSAT(t *testing.T) {
	build := func(diff bool) *rtlil.Module {
		m := rtlil.NewModule("m")
		x := m.AddInput("x", 32).Bits()
		out := m.AddOutput("out", 1)
		hit := m.Eq(x, rtlil.Const(0xdeadbeef, 32))
		if diff {
			m.Connect(out.Bits(), hit)
		} else {
			m.Connect(out.Bits(), rtlil.Const(0, 1))
		}
		return m
	}
	a, b := build(true), build(false)
	err := Check(a, b, &Options{RandomRounds: 1})
	var ne *NotEquivalentError
	if !errors.As(err, &ne) {
		t.Fatalf("want NotEquivalentError, got %v", err)
	}
	// The counterexample must set x = 0xdeadbeef.
	var v uint64
	for i := 0; i < 32; i++ {
		key := "in:x[" + itoa(i) + "]"
		if ne.Inputs[key] {
			v |= 1 << uint(i)
		}
	}
	if v != 0xdeadbeef {
		t.Errorf("counterexample x = %#x, want 0xdeadbeef", v)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestInterfaceMismatch(t *testing.T) {
	a := rtlil.NewModule("a")
	a.AddInput("x", 2)
	a.AddOutput("y", 1)
	b := rtlil.NewModule("b")
	b.AddInput("x", 3) // different width
	b.AddOutput("y", 1)
	if err := Check(a, b, nil); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("interface mismatch not reported: %v", err)
	}
}

func TestSequentialCut(t *testing.T) {
	build := func(optimized bool) *rtlil.Module {
		m := rtlil.NewModule("m")
		clk := m.AddInput("clk", 1).Bits()
		d := m.AddInput("d", 2).Bits()
		s := m.AddInput("s", 1).Bits()
		q := m.NewWire(2)
		var next rtlil.SigSpec
		if optimized {
			next = m.Mux(d, q.Bits(), s)
		} else {
			// mux with both branches through an extra identity mux
			mid := m.Mux(d, d, s)
			next = m.Mux(mid, q.Bits(), s)
		}
		m.AddDff("state", clk, next, q.Bits())
		y := m.AddOutput("y", 2)
		m.Connect(y.Bits(), q.Bits())
		return m
	}
	if err := Check(build(false), build(true), nil); err != nil {
		t.Fatalf("equivalent sequential designs reported different: %v", err)
	}
	// Now a real sequential difference: invert D.
	a := build(true)
	b := build(true)
	ff := b.Cell("state")
	ff.SetPort("D", b.Not(ff.Port("D")))
	err := Check(a, b, nil)
	var ne *NotEquivalentError
	if !errors.As(err, &ne) {
		t.Fatalf("sequential difference missed: %v", err)
	}
	if !strings.Contains(ne.Output, "ff:state.D") {
		t.Errorf("mismatch should be on the dff D point, got %s", ne.Output)
	}
}

func TestRandomSelfEquivalence(t *testing.T) {
	// Any module is equivalent to its own clone.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		m := randomModule(rng)
		if err := Check(m, m.Clone(), &Options{RandomRounds: 1}); err != nil {
			t.Fatalf("trial %d: module differs from clone: %v", trial, err)
		}
	}
}

func randomModule(rng *rand.Rand) *rtlil.Module {
	m := rtlil.NewModule("r")
	sigs := []rtlil.SigSpec{
		m.AddInput("a", 3).Bits(),
		m.AddInput("b", 3).Bits(),
		m.AddInput("c", 1).Bits(),
	}
	pick := func() rtlil.SigSpec { return sigs[rng.Intn(len(sigs))] }
	for i := 0; i < 8; i++ {
		switch rng.Intn(5) {
		case 0:
			sigs = append(sigs, m.And(pick(), pick()))
		case 1:
			sigs = append(sigs, m.Or(pick(), pick()))
		case 2:
			sigs = append(sigs, m.Mux(pick(), pick(), pick().Extract(0, 1)))
		case 3:
			sigs = append(sigs, m.AddOp(pick(), pick()))
		case 4:
			sigs = append(sigs, m.Eq(pick(), pick()))
		}
	}
	last := sigs[len(sigs)-1]
	y := m.AddOutput("y", len(last))
	m.Connect(y.Bits(), last)
	return m
}
