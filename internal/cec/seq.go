package cec

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/aig"
	"repro/internal/rtlil"
	"repro/internal/sat"
	"repro/internal/sim"
)

// Sequential equivalence checking by k-induction.
//
// Where Check cuts both modules at their flip-flops and matches them by
// cell name, CheckSequential treats registers as internal state: the
// two modules only need the same input/output ports, so register
// removals, merges and renamings (the opt_dff rewrite classes) are in
// scope. The model is the repository-wide sequential semantics: all
// registers reset to zero and advance together on a single clock.
//
// The proof unrolls both transition relations (aig.FromModule, whose Q
// bits are AIG inputs and D bits AIG outputs) into one incremental SAT
// solver, one Tseitin copy per time frame, with frame f's Q variables
// tied to frame f-1's D variables and the primary inputs of both
// machines tied per frame. Reset and induction hypotheses enter as
// assumptions (the incremental interface from PR 5), so one solver
// serves every query:
//
//   - BMC base case: for each depth d < k, assume the all-zero reset
//     state at frame 0 and the miter at frame d. Sat is a concrete
//     multi-cycle counterexample.
//   - Induction step: assume the miter quiet at frames 0..k-1 and ask
//     for a difference at frame k, over an unconstrained start state.
//
// Plain k-induction is incomplete for register sweeps: a self-loop
// register replaced by its reset constant differs in unreachable states
// for every k. The induction start state is therefore strengthened with
// van-Eijk-style invariants: candidate register-constant and
// register-correspondence pairs are harvested from multi-cycle random
// simulation from reset (both machines under shared stimulus), the
// candidate set is refined to a 1-inductive fixpoint with per-candidate
// SAT queries, and the surviving invariants (which hold in every
// reachable state) constrain all induction frames.
type SeqOptions struct {
	// K is the induction depth (default 2). The BMC base case covers
	// cycles 0..K-1 from reset.
	K int
	// MaxConflicts bounds each SAT call; 0 means unlimited.
	MaxConflicts int64
	// Seed drives the random simulation (default 1).
	Seed int64
	// SimCycles is the number of clock cycles per random-simulation
	// round (default 16); SimRounds the number of 64-lane rounds
	// (default 2). Simulation both refutes cheap inequivalences and
	// harvests the invariant candidates.
	SimCycles int
	SimRounds int
	// MaxInvariants caps the candidate invariant set (default 512).
	MaxInvariants int
	// DisableInvariants turns off the van Eijk strengthening, leaving
	// plain k-induction (ablation/testing knob).
	DisableInvariants bool
}

func (o *SeqOptions) withDefaults() SeqOptions {
	var out SeqOptions
	if o != nil {
		out = *o
	}
	if out.K == 0 {
		out.K = 2
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.SimCycles == 0 {
		out.SimCycles = 16
	}
	if out.SimRounds == 0 {
		out.SimRounds = 2
	}
	if out.MaxInvariants == 0 {
		out.MaxInvariants = 512
	}
	return out
}

// SeqNotEquivalentError is a concrete sequential counterexample: a
// per-cycle input assignment (from reset) after which the named output
// differs at cycle Cycle.
type SeqNotEquivalentError struct {
	Output string
	Cycle  int
	// Inputs[t] assigns every input key at cycle t, for t = 0..Cycle.
	Inputs []map[string]bool
}

// Error renders the counterexample.
func (e *SeqNotEquivalentError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cec: modules differ sequentially on output %s at cycle %d under", e.Output, e.Cycle)
	for t, in := range e.Inputs {
		keys := make([]string, 0, len(in))
		for k := range in {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&sb, " cycle%d{", t)
		for i, k := range keys {
			if i > 0 {
				sb.WriteByte(' ')
			}
			v := 0
			if in[k] {
				v = 1
			}
			fmt.Fprintf(&sb, "%s=%d", k, v)
		}
		sb.WriteByte('}')
	}
	return sb.String()
}

// UnknownError reports an inconclusive sequential check: no
// counterexample was found, but the induction (or a SAT budget) could
// not complete the proof. Callers with a verify-before-rewire contract
// must treat it as a rejection.
type UnknownError struct{ Reason string }

// Error describes why the check was inconclusive.
func (e *UnknownError) Error() string { return "cec: sequential check inconclusive: " + e.Reason }

// portPoints is cutPoints restricted to real module ports: registers
// stay internal so the two sides may differ in register structure.
func portPoints(m *rtlil.Module) *points {
	ix := rtlil.NewIndex(m)
	p := &points{}
	seenIn := map[rtlil.SigBit]bool{}
	for _, w := range m.Inputs() {
		mapped := ix.Map(w.Bits())
		for i, b := range mapped {
			if b.IsConst() || seenIn[b] {
				continue
			}
			seenIn[b] = true
			p.inKeys = append(p.inKeys, fmt.Sprintf("in:%s[%d]", w.Name, i))
			p.inBits = append(p.inBits, b)
		}
	}
	for _, w := range m.Outputs() {
		for i, b := range w.Bits() {
			p.outKeys = append(p.outKeys, fmt.Sprintf("out:%s[%d]", w.Name, i))
			p.outBits = append(p.outBits, b)
		}
	}
	return p
}

// seqReg is one register bit of one machine.
type seqReg struct {
	q    rtlil.SigBit // Q bit as written in the module (LitOf canonicalizes)
	dLit aig.Lit      // AIG literal of the matching D bit
	name string       // "cell.Q[i]" for diagnostics
}

// machine is one side of the product machine: the module, its AIG
// transition/output function and its register bits in deterministic
// order.
type machine struct {
	mod  *rtlil.Module
	mp   *aig.Mapping
	pts  *points
	regs []seqReg
}

func newMachine(m *rtlil.Module) (*machine, error) {
	if err := rtlil.ValidateSequential(m); err != nil {
		return nil, fmt.Errorf("cec: %w", err)
	}
	mp, err := aig.FromModule(m)
	if err != nil {
		return nil, fmt.Errorf("cec: mapping %s: %w", m.Name, err)
	}
	mc := &machine{mod: m, mp: mp, pts: portPoints(m)}
	for _, c := range m.SeqCells() {
		q := c.Port("Q")
		d := c.Port("D")
		for i := range q {
			if q[i].IsConst() {
				continue
			}
			mc.regs = append(mc.regs, seqReg{
				q:    q[i],
				dLit: mp.LitOf(d[i]),
				name: fmt.Sprintf("%s.Q[%d]", c.Name, i),
			})
		}
	}
	return mc, nil
}

// invariant is one candidate (later proven) inductive fact about the
// product machine's reachable states: register bit (side, idx) equals
// constant 0 (repSide < 0) or equals register bit (repSide, repIdx).
type invariant struct {
	side, idx       int
	repSide, repIdx int
}

// frame is one time step of the unrolled product machine.
type frame struct {
	ca, cb     *aig.CNF
	in         map[string]sat.Lit // tied input literal per key
	regA, regB []sat.Lit          // Q literal per register bit
	dA, dB     []sat.Lit          // D literal per register bit
	outA, outB []sat.Lit          // output literal per out key
	diff       sat.Lit            // OR over output-pair XORs
	invLit     map[int]sat.Lit    // invariant index -> assumption literal
}

// unroller owns the incremental solver and the growing frame stack.
type unroller struct {
	o       SeqOptions
	solver  *sat.Solver
	a, b    *machine
	bInIdx  map[string]int
	bOutIdx map[string]int
	frames  []*frame
	invs    []invariant
}

func newUnroller(a, b *machine, o SeqOptions) *unroller {
	u := &unroller{
		o:       o,
		solver:  sat.NewSolver(),
		a:       a,
		b:       b,
		bInIdx:  map[string]int{},
		bOutIdx: map[string]int{},
	}
	u.solver.MaxConflicts = o.MaxConflicts
	for i, key := range b.pts.inKeys {
		u.bInIdx[key] = i
	}
	for i, key := range b.pts.outKeys {
		u.bOutIdx[key] = i
	}
	return u
}

func (u *unroller) tie(a, b sat.Lit) {
	u.solver.AddClause(a.Not(), b)
	u.solver.AddClause(a, b.Not())
}

// frame materializes time frames up to f and returns frame f.
func (u *unroller) frame(f int) *frame {
	for len(u.frames) <= f {
		u.addFrame()
	}
	return u.frames[f]
}

func (u *unroller) addFrame() {
	s := u.solver
	fr := &frame{
		ca:     aig.NewCNF(u.a.mp.G, s),
		cb:     aig.NewCNF(u.b.mp.G, s),
		in:     map[string]sat.Lit{},
		invLit: map[int]sat.Lit{},
	}
	// Primary inputs, tied across the two machines.
	for i, key := range u.a.pts.inKeys {
		la := fr.ca.SatLit(u.a.mp.LitOf(u.a.pts.inBits[i]))
		lb := fr.cb.SatLit(u.b.mp.LitOf(u.b.pts.inBits[u.bInIdx[key]]))
		u.tie(la, lb)
		fr.in[key] = la
	}
	// Register state and next-state literals.
	for _, r := range u.a.regs {
		fr.regA = append(fr.regA, fr.ca.SatLit(u.a.mp.LitOf(r.q)))
		fr.dA = append(fr.dA, fr.ca.SatLit(r.dLit))
	}
	for _, r := range u.b.regs {
		fr.regB = append(fr.regB, fr.cb.SatLit(u.b.mp.LitOf(r.q)))
		fr.dB = append(fr.dB, fr.cb.SatLit(r.dLit))
	}
	// Transition: this frame's state is the previous frame's next-state.
	if n := len(u.frames); n > 0 {
		prev := u.frames[n-1]
		for i := range fr.regA {
			u.tie(fr.regA[i], prev.dA[i])
		}
		for i := range fr.regB {
			u.tie(fr.regB[i], prev.dB[i])
		}
	}
	// Output miter: diff <-> OR over per-output XORs.
	var xs []sat.Lit
	for i, key := range u.a.pts.outKeys {
		la := fr.ca.SatLit(u.a.mp.LitOf(u.a.pts.outBits[i]))
		lb := fr.cb.SatLit(u.b.mp.LitOf(u.b.pts.outBits[u.bOutIdx[key]]))
		fr.outA = append(fr.outA, la)
		fr.outB = append(fr.outB, lb)
		x := sat.PosLit(s.NewVar())
		s.AddClause(x.Not(), la, lb)
		s.AddClause(x.Not(), la.Not(), lb.Not())
		s.AddClause(x, la.Not(), lb)
		s.AddClause(x, la, lb.Not())
		xs = append(xs, x)
	}
	diff := sat.PosLit(s.NewVar())
	for _, x := range xs {
		s.AddClause(x.Not(), diff)
	}
	s.AddClause(append([]sat.Lit{diff.Not()}, xs...)...)
	fr.diff = diff
	u.frames = append(u.frames, fr)
}

func (u *unroller) regLit(fr *frame, side, idx int) sat.Lit {
	if side == 0 {
		return fr.regA[idx]
	}
	return fr.regB[idx]
}

// resetAssumps returns the all-zero reset state of frame 0.
func (u *unroller) resetAssumps() []sat.Lit {
	fr := u.frame(0)
	out := make([]sat.Lit, 0, len(fr.regA)+len(fr.regB))
	for _, l := range fr.regA {
		out = append(out, l.Not())
	}
	for _, l := range fr.regB {
		out = append(out, l.Not())
	}
	return out
}

// invAssump returns the assumption literal enforcing invariant j at
// frame f (creating the indicator variable and clauses on first use).
func (u *unroller) invAssump(f, j int) sat.Lit {
	fr := u.frame(f)
	if l, ok := fr.invLit[j]; ok {
		return l
	}
	inv := u.invs[j]
	r := u.regLit(fr, inv.side, inv.idx)
	var l sat.Lit
	if inv.repSide < 0 {
		l = r.Not() // register bit == 0
	} else {
		s := u.regLit(fr, inv.repSide, inv.repIdx)
		e := sat.PosLit(u.solver.NewVar())
		u.solver.AddClause(e.Not(), r.Not(), s)
		u.solver.AddClause(e.Not(), r, s.Not())
		l = e
	}
	fr.invLit[j] = l
	return l
}

// violation returns an assumption literal forcing invariant j to be
// violated at frame f.
func (u *unroller) violation(f, j int) sat.Lit {
	fr := u.frame(f)
	inv := u.invs[j]
	r := u.regLit(fr, inv.side, inv.idx)
	if inv.repSide < 0 {
		return r // register bit == 1
	}
	s := u.regLit(fr, inv.repSide, inv.repIdx)
	x := sat.PosLit(u.solver.NewVar())
	u.solver.AddClause(x.Not(), r, s)
	u.solver.AddClause(x.Not(), r.Not(), s.Not())
	return x
}

// bmc searches for a counterexample at exactly depth d from reset.
// Returns (cex, nil) when found, (nil, nil) when refuted, an
// UnknownError on budget exhaustion.
func (u *unroller) bmc(d int) (*SeqNotEquivalentError, error) {
	fr := u.frame(d)
	assumps := append(u.resetAssumps(), fr.diff)
	switch u.solver.Solve(assumps...) {
	case sat.Unsat:
		return nil, nil
	case sat.Unknown:
		return nil, &UnknownError{Reason: fmt.Sprintf("BMC conflict budget exhausted at depth %d (MaxConflicts=%d)", d, u.o.MaxConflicts)}
	}
	return u.extractCex(d), nil
}

// extractCex reads the per-cycle input assignment and the first
// differing output out of a satisfying model.
func (u *unroller) extractCex(d int) *SeqNotEquivalentError {
	e := &SeqNotEquivalentError{Cycle: d}
	for f := 0; f <= d; f++ {
		fr := u.frames[f]
		in := map[string]bool{}
		for key, l := range fr.in {
			in[key] = u.solver.ValueLit(l)
		}
		e.Inputs = append(e.Inputs, in)
	}
	fr := u.frames[d]
	e.Output = "?"
	for i, key := range u.a.pts.outKeys {
		if u.solver.ValueLit(fr.outA[i]) != u.solver.ValueLit(fr.outB[i]) {
			e.Output = key
			break
		}
	}
	return e
}

// refineInvariants drops candidates until the set is 1-inductive: every
// surviving invariant provably holds at frame 1 whenever all survivors
// hold at frame 0 (over an unconstrained start state). Since every
// candidate holds in the all-zero reset state by construction, the
// fixpoint is a true invariant of both machines' reachable product
// states. Inconclusive queries conservatively drop the candidate.
func (u *unroller) refineInvariants(cands []invariant) []invariant {
	u.invs = cands
	active := make([]int, len(cands))
	for i := range active {
		active[i] = i
	}
	for {
		assumps := make([]sat.Lit, 0, len(active))
		for _, j := range active {
			assumps = append(assumps, u.invAssump(0, j))
		}
		var kept []int
		changed := false
		for _, j := range active {
			switch u.solver.Solve(append(assumps, u.violation(1, j))...) {
			case sat.Unsat:
				kept = append(kept, j)
			default: // Sat or Unknown: not (provably) inductive
				changed = true
			}
		}
		active = kept
		if !changed {
			break
		}
	}
	out := make([]invariant, 0, len(active))
	for _, j := range active {
		out = append(out, cands[j])
	}
	u.invs = out
	// Invalidate cached per-frame indicator literals: indices moved.
	for _, fr := range u.frames {
		fr.invLit = map[int]sat.Lit{}
	}
	return out
}

// induction runs the strengthened induction step at depth k: assuming
// the invariants at every frame and a quiet miter at frames 0..k-1, a
// difference at frame k must be unsatisfiable.
func (u *unroller) induction(k int) error {
	var assumps []sat.Lit
	for f := 0; f <= k; f++ {
		fr := u.frame(f)
		for j := range u.invs {
			assumps = append(assumps, u.invAssump(f, j))
		}
		if f < k {
			assumps = append(assumps, fr.diff.Not())
		}
	}
	switch u.solver.Solve(append(assumps, u.frame(k).diff)...) {
	case sat.Unsat:
		return nil
	case sat.Unknown:
		return &UnknownError{Reason: fmt.Sprintf("induction conflict budget exhausted at k=%d (MaxConflicts=%d)", k, u.o.MaxConflicts)}
	}
	return &UnknownError{Reason: fmt.Sprintf("k-induction inconclusive at k=%d with %d invariants", k, len(u.invs))}
}

// simulate runs both machines from reset under shared random stimulus.
// It returns a counterexample if the outputs ever differ, else the
// per-register value signatures used to harvest invariant candidates.
func simulate(a, b *machine, o SeqOptions) (*SeqNotEquivalentError, [][]uint64, [][]uint64, error) {
	simA, err := sim.NewSequential(a.mod)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cec: module %s: %w", a.mod.Name, err)
	}
	simB, err := sim.NewSequential(b.mod)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("cec: module %s: %w", b.mod.Name, err)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	sigA := make([][]uint64, len(a.regs))
	sigB := make([][]uint64, len(b.regs))
	for round := 0; round < o.SimRounds; round++ {
		simA.Reset()
		simB.Reset()
		var history []map[string]uint64
		for cyc := 0; cyc < o.SimCycles; cyc++ {
			lanes := map[string]uint64{}
			inA := map[rtlil.SigBit]uint64{}
			inB := map[rtlil.SigBit]uint64{}
			for i, key := range a.pts.inKeys {
				v := rng.Uint64()
				lanes[key] = v
				inA[a.pts.inBits[i]] = v
			}
			// a.pts and b.pts are key-matched but may order the keys
			// differently; assign B by key.
			for i, key := range b.pts.inKeys {
				inB[b.pts.inBits[i]] = lanes[key]
			}
			history = append(history, lanes)
			va := simA.Step(inA)
			vb := simB.Step(inB)
			for i, key := range a.pts.outKeys {
				xa := simA.Sig(va, rtlil.SigSpec{a.pts.outBits[i]})[0]
				var xb uint64
				for ib, kb := range b.pts.outKeys {
					if kb == key {
						xb = simB.Sig(vb, rtlil.SigSpec{b.pts.outBits[ib]})[0]
						break
					}
				}
				if xa != xb {
					lane := firstDiffLane(xa, xb)
					e := &SeqNotEquivalentError{Output: key, Cycle: cyc}
					for _, h := range history {
						in := map[string]bool{}
						for k, v := range h {
							in[k] = (v>>lane)&1 == 1
						}
						e.Inputs = append(e.Inputs, in)
					}
					return e, nil, nil, nil
				}
			}
			stA := simA.State()
			for i, r := range a.regs {
				sigA[i] = append(sigA[i], stA[simA.Index().MapBit(r.q)])
			}
			stB := simB.State()
			for i, r := range b.regs {
				sigB[i] = append(sigB[i], stB[simB.Index().MapBit(r.q)])
			}
		}
	}
	return nil, sigA, sigB, nil
}

// harvestInvariants groups register bits (of both machines) and the
// constant 0 by simulation signature; each class yields member==rep
// candidates.
func harvestInvariants(a, b *machine, sigA, sigB [][]uint64, max int) []invariant {
	sigKey := func(sig []uint64) string {
		var sb strings.Builder
		for _, v := range sig {
			fmt.Fprintf(&sb, "%016x.", v)
		}
		return sb.String()
	}
	type member struct{ side, idx int }
	classes := map[string][]member{}
	addOrder := []string{}
	add := func(key string, m member) {
		if _, ok := classes[key]; !ok {
			addOrder = append(addOrder, key)
		}
		classes[key] = append(classes[key], m)
	}
	n := 0
	if len(sigA) > 0 {
		n = len(sigA[0])
	} else if len(sigB) > 0 {
		n = len(sigB[0])
	}
	zeroKey := sigKey(make([]uint64, n))
	for i := range a.regs {
		add(sigKey(sigA[i]), member{0, i})
	}
	for i := range b.regs {
		add(sigKey(sigB[i]), member{1, i})
	}
	var out []invariant
	for _, key := range addOrder {
		ms := classes[key]
		if key == zeroKey {
			// Constant-zero candidates: every member against const 0.
			for _, m := range ms {
				out = append(out, invariant{side: m.side, idx: m.idx, repSide: -1})
			}
			continue
		}
		if len(ms) < 2 {
			continue
		}
		rep := ms[0]
		for _, m := range ms[1:] {
			out = append(out, invariant{side: m.side, idx: m.idx, repSide: rep.side, repIdx: rep.idx})
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// CheckSequential proves sequential equivalence of a and b from the
// all-zero reset state, returning nil when proven, a
// *SeqNotEquivalentError with a multi-cycle counterexample when
// refuted, a *UnknownError when the k-induction proof is inconclusive,
// and other errors for interface mismatches, multiple clock domains or
// unmappable logic.
func CheckSequential(a, b *rtlil.Module, opt *SeqOptions) error {
	o := opt.withDefaults()
	ma, err := newMachine(a)
	if err != nil {
		return err
	}
	mb, err := newMachine(b)
	if err != nil {
		return err
	}
	if err := matchKeys(ma.pts, mb.pts); err != nil {
		return err
	}

	// Phase 1: multi-cycle random simulation — cheap refuter and
	// invariant-candidate harvest in one pass.
	cex, sigA, sigB, err := simulate(ma, mb, o)
	if err != nil {
		return err
	}
	if cex != nil {
		return cex
	}

	u := newUnroller(ma, mb, o)
	// Stateless on both sides: frame 0 covers the whole behavior.
	if len(ma.regs) == 0 && len(mb.regs) == 0 {
		c, err := u.bmc(0)
		if err != nil {
			return err
		}
		if c != nil {
			return c
		}
		return nil
	}

	// Phase 2: BMC base case, cycles 0..K-1 from reset.
	for d := 0; d < o.K; d++ {
		c, err := u.bmc(d)
		if err != nil {
			return err
		}
		if c != nil {
			return c
		}
	}

	// Phase 3: strengthen and close the induction.
	if !o.DisableInvariants {
		u.refineInvariants(harvestInvariants(ma, mb, sigA, sigB, o.MaxInvariants))
	}
	return u.induction(o.K)
}

// BMC searches for a sequential counterexample within depth cycles of
// reset (cycles 0..depth inclusive): bounded model checking without the
// induction step. It returns nil when no counterexample exists up to
// the bound — bounded equivalence, not a proof. The differential
// fuzzer cross-checks CheckSequential verdicts against BMC at k+2.
func BMC(a, b *rtlil.Module, depth int, opt *SeqOptions) error {
	o := opt.withDefaults()
	ma, err := newMachine(a)
	if err != nil {
		return err
	}
	mb, err := newMachine(b)
	if err != nil {
		return err
	}
	if err := matchKeys(ma.pts, mb.pts); err != nil {
		return err
	}
	u := newUnroller(ma, mb, o)
	for d := 0; d <= depth; d++ {
		c, err := u.bmc(d)
		if err != nil {
			return err
		}
		if c != nil {
			return c
		}
		if len(ma.regs) == 0 && len(mb.regs) == 0 {
			break // stateless: deeper frames repeat frame 0
		}
	}
	return nil
}
