package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rtlil"
)

// ReducePass is the opt_reduce equivalent: it merges structurally
// identical combinational cells (same type, parameters and canonical
// input signals) so they share one output, and consolidates $pmux cells
// whose candidate words repeat by OR-ing the corresponding select bits.
// Both rewrites shrink the muxtrees the later passes traverse.
type ReducePass struct{}

// Name implements Pass.
func (ReducePass) Name() string { return "opt_reduce" }

// Run implements Pass.
func (ReducePass) Run(c *Ctx, m *rtlil.Module) (Result, error) {
	total := newResult()
	for iter := 0; iter < 20; iter++ {
		if err := c.Err(); err != nil {
			return total, err
		}
		r := newResult()
		r.merge(mergeIdenticalCells(m))
		r.merge(sharePmuxWords(m))
		total.merge(r)
		if !r.Changed {
			break
		}
	}
	return total, nil
}

// mergeIdenticalCells keeps the first of every group of equivalent cells
// and aliases the others' outputs to it.
func mergeIdenticalCells(m *rtlil.Module) Result {
	res := newResult()
	sm := rtlil.NewSigMap(m)
	seen := map[string]*rtlil.Cell{}
	for _, c := range append([]*rtlil.Cell(nil), m.Cells()...) {
		if rtlil.IsSequential(c.Type) {
			continue
		}
		key := cellKey(sm, c)
		first, dup := seen[key]
		if !dup {
			seen[key] = c
			continue
		}
		yNew := c.Port(rtlil.OutputPorts(c.Type)[0])
		yOld := first.Port(rtlil.OutputPorts(first.Type)[0])
		m.RemoveCell(c)
		m.Connect(yNew, yOld)
		sm.Add(yNew, yOld)
		res.bump("cells_merged", 1)
	}
	return res
}

// cellKey canonicalizes a cell for structural comparison. Commutative
// operators sort their operands so a&b merges with b&a.
func cellKey(sm *rtlil.SigMap, c *rtlil.Cell) string {
	var sb strings.Builder
	sb.WriteString(string(c.Type))
	params := make([]string, 0, len(c.Params))
	for k, v := range c.Params {
		params = append(params, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(params)
	sb.WriteString("|")
	sb.WriteString(strings.Join(params, ","))

	ports := rtlil.InputPorts(c.Type)
	rendered := make(map[string]string, len(ports))
	for _, p := range ports {
		rendered[p] = sm.Map(c.Port(p)).String()
	}
	if commutative(c.Type) {
		a, b := rendered["A"], rendered["B"]
		if b < a {
			rendered["A"], rendered["B"] = b, a
		}
	}
	for _, p := range ports {
		sb.WriteString("|")
		sb.WriteString(rendered[p])
	}
	return sb.String()
}

func commutative(t rtlil.CellType) bool {
	switch t {
	case rtlil.CellAnd, rtlil.CellOr, rtlil.CellXor, rtlil.CellXnor,
		rtlil.CellAdd, rtlil.CellMul, rtlil.CellEq, rtlil.CellNe,
		rtlil.CellLogicAnd, rtlil.CellLogicOr:
		return true
	}
	return false
}

// sharePmuxWords rewrites $pmux cells with repeated candidate words: the
// duplicate words' select bits are OR-ed into one. This is sound for
// equal words regardless of priority, since whichever of the merged
// selects fires the result is the same word.
func sharePmuxWords(m *rtlil.Module) Result {
	res := newResult()
	sm := rtlil.NewSigMap(m)
	for _, c := range append([]*rtlil.Cell(nil), m.Cells()...) {
		if c.Type != rtlil.CellPmux {
			continue
		}
		sw := c.Param("S_WIDTH")
		s := c.Port("S")
		groups := map[string][]int{}
		var order []string
		for i := 0; i < sw; i++ {
			key := sm.Map(c.PmuxWord(i)).String()
			if _, ok := groups[key]; !ok {
				order = append(order, key)
			}
			groups[key] = append(groups[key], i)
		}
		if len(order) == sw {
			continue // all words distinct
		}
		var words []rtlil.SigSpec
		var sels rtlil.SigSpec
		for _, key := range order {
			idxs := groups[key]
			words = append(words, c.PmuxWord(idxs[0]))
			sel := rtlil.SigSpec{s[idxs[0]]}
			for _, i := range idxs[1:] {
				sel = m.Or(sel, rtlil.SigSpec{s[i]})
			}
			sels = append(sels, sel[0])
		}
		y := c.Port("Y")
		a := c.Port("A")
		m.RemoveCell(c)
		if len(words) == 1 {
			m.AddMux("", a, words[0], sels, y)
		} else {
			m.AddPmux("", a, words, sels, y)
		}
		res.bump("pmux_words_shared", 1)
	}
	return res
}
