package opt

import (
	"fmt"

	"repro/internal/cec"
	"repro/internal/rtlil"
	"repro/internal/sim"
)

// DffOptions tunes the register sweep pass.
type DffOptions struct {
	// K is the induction depth of the sequential proof (default 2).
	K int
	// VerifyConflicts bounds the SAT effort of the proof (default
	// 200000); exhaustion rejects the sweep.
	VerifyConflicts int64
	// DisableVerify applies the sweep without the k-induction proof.
	// The sweep is deterministic, so verify-on and verify-off produce
	// byte-identical netlists whenever the proof succeeds.
	DisableVerify bool
	// DisableConst / DisableMerge / DisableUnused switch off the three
	// rewrite classes individually (ablation knobs).
	DisableConst  bool
	DisableMerge  bool
	DisableUnused bool
}

func (o DffOptions) withDefaults() DffOptions {
	if o.K == 0 {
		o.K = 2
	}
	if o.VerifyConflicts == 0 {
		o.VerifyConflicts = 200000
	}
	return o
}

// DffPass is the register sweep (opt_dff): it removes registers that
// are provably stuck at their zero reset value (D tied to constant 0,
// fed-back self-loops, and whole cones of such registers — a greatest
// fixpoint over three-valued simulation), removes registers whose Q is
// never observed, merges structurally identical registers (same D and
// CLK after SigMap canonicalization) and propagates the freed
// constants into reader ports.
//
// Same verify-before-rewire contract as opt_egraph, lifted to sequential
// logic: the sweep runs on a clone first and the result is proved
// sequentially equivalent to the original by the k-induction miter
// (cec.CheckSequential) before the identical deterministic sweep is
// replayed on the real module. Any proof failure rejects the whole
// sweep and leaves the module untouched.
//
// Modules with flip-flops on more than one clock are skipped
// (dff_multiclock counter): the induction miter models a single shared
// clock tick.
type DffPass struct {
	Opts DffOptions
}

// Name implements Pass.
func (DffPass) Name() string { return "opt_dff" }

// Run implements Pass.
func (p DffPass) Run(c *Ctx, m *rtlil.Module) (Result, error) {
	o := p.Opts.withDefaults()
	res := newResult()
	if len(m.SeqCells()) == 0 {
		return res, nil
	}
	if _, ok := rtlil.SingleClock(m); !ok {
		res.Details["dff_multiclock"] = 1
		return res, nil
	}
	if o.DisableVerify {
		sres, err := sweepDffs(m, o)
		if err != nil {
			return res, err
		}
		res.merge(sres)
		return res, nil
	}
	// Verify-before-rewire: sweep a clone, prove it, then replay the
	// same deterministic sweep on the real module.
	work := m.Clone()
	wres, err := sweepDffs(work, o)
	if err != nil {
		return res, err
	}
	if !wres.Changed {
		return res, nil
	}
	seqOpts := &cec.SeqOptions{K: o.K, MaxConflicts: o.VerifyConflicts}
	if err := cec.CheckSequential(m, work, seqOpts); err != nil {
		// Counterexample, inconclusive induction or unencodable logic:
		// the contract is the same — no proof, no rewrite.
		res.Details["dff_verify_rejected"] = 1
		return res, nil
	}
	sres, err := sweepDffs(m, o)
	if err != nil {
		return res, err
	}
	res.merge(sres)
	if res.Changed {
		res.Details["dff_proved"] = 1
	}
	return res, nil
}

// sweepDffs runs the three rewrite classes to a joint fixpoint and then
// propagates freed constants. It is a pure deterministic function of
// the module, which is what makes the clone-verify-replay scheme sound.
func sweepDffs(m *rtlil.Module, o DffOptions) (Result, error) {
	res := newResult()
	for {
		changed := false
		if !o.DisableUnused {
			n := removeUnusedDffs(m)
			res.bump("dff_unused", n)
			changed = changed || n > 0
		}
		if !o.DisableConst {
			n, err := removeConstDffs(m)
			if err != nil {
				return res, err
			}
			res.bump("dff_const", n)
			changed = changed || n > 0
		}
		if !o.DisableMerge {
			n := mergeDffs(m)
			res.bump("dff_merged", n)
			changed = changed || n > 0
		}
		if !changed {
			break
		}
	}
	if res.Changed {
		res.bump("dff_const_bits", propagateFreedConsts(m))
		res.bump("dff_removed", res.Details["dff_unused"]+res.Details["dff_const"]+res.Details["dff_merged"])
	}
	return res, nil
}

// removeUnusedDffs drops registers whose Q bits are neither module
// outputs nor read by any other cell (self-reads through the register's
// own D don't count). Chains of such registers fall in successive
// rounds.
func removeUnusedDffs(m *rtlil.Module) int {
	n := 0
	for {
		ix := rtlil.NewIndex(m)
		var dead []*rtlil.Cell
		for _, c := range m.SeqCells() {
			used := false
			for _, b := range ix.Map(c.Port("Q")) {
				if b.IsConst() {
					continue
				}
				if ix.IsOutputBit(b) {
					used = true
					break
				}
				for _, r := range ix.Readers(b) {
					if r.Cell != c {
						used = true
						break
					}
				}
				if used {
					break
				}
			}
			if !used {
				dead = append(dead, c)
			}
		}
		if len(dead) == 0 {
			return n
		}
		for _, c := range dead {
			m.RemoveCell(c)
		}
		n += len(dead)
	}
}

// removeConstDffs removes registers provably stuck at the all-zero
// reset state: the greatest fixpoint of "assume these registers are 0,
// all other state and every input is x — does each candidate's D still
// evaluate to 0?" under three-valued simulation. This covers D tied to
// constant 0, self-loops (D = own Q) and cones of mutually-constant
// registers. Registers whose D is a nonzero constant are deliberately
// not candidates: they leave reset after one cycle, so replacing them
// is unsound under the zero-reset semantics (the induction miter would
// refute it).
func removeConstDffs(m *rtlil.Module) (int, error) {
	dffs := m.SeqCells()
	if len(dffs) == 0 {
		return 0, nil
	}
	s, err := sim.NewSimulator(m)
	if err != nil {
		return 0, err
	}
	cand := map[*rtlil.Cell]bool{}
	for _, c := range dffs {
		cand[c] = true
	}
	for len(cand) > 0 {
		inputs := map[rtlil.SigBit]rtlil.State{}
		for c := range cand {
			for _, b := range c.Port("Q") {
				if !b.IsConst() {
					inputs[b] = rtlil.S0
				}
			}
		}
		vals, err := s.Eval(inputs)
		if err != nil {
			return 0, err
		}
		dropped := false
		for _, c := range dffs {
			if !cand[c] {
				continue
			}
			for _, st := range s.EvalSig(vals, c.Port("D")) {
				if st != rtlil.S0 {
					delete(cand, c)
					dropped = true
					break
				}
			}
		}
		if !dropped {
			break
		}
	}
	n := 0
	for _, c := range dffs {
		if !cand[c] {
			continue
		}
		q := c.Port("Q")
		m.RemoveCell(c)
		var lhs, rhs rtlil.SigSpec
		for _, b := range q {
			if !b.IsConst() {
				lhs = append(lhs, b)
				rhs = append(rhs, rtlil.ConstBit(rtlil.S0))
			}
		}
		if len(lhs) > 0 {
			m.Connect(lhs, rhs)
		}
		n++
	}
	return n, nil
}

// mergeDffs merges registers with identical canonical D and CLK: the
// earliest cell in insertion order is kept and every duplicate's Q is
// aliased onto it. Aliases created by one round can equalize further D
// signals, so the merge iterates to a fixpoint.
func mergeDffs(m *rtlil.Module) int {
	n := 0
	for {
		sm := rtlil.NewSigMap(m)
		keeper := map[string]*rtlil.Cell{}
		var dups [][2]*rtlil.Cell
		for _, c := range m.SeqCells() {
			key := fmt.Sprintf("%s|%s",
				sm.Map(rtlil.SigSpec{c.Port("CLK")[0]}),
				sm.Map(c.Port("D")))
			if k, ok := keeper[key]; ok {
				dups = append(dups, [2]*rtlil.Cell{k, c})
			} else {
				keeper[key] = c
			}
		}
		if len(dups) == 0 {
			return n
		}
		for _, p := range dups {
			keep, dup := p[0], p[1]
			q, kq := dup.Port("Q"), keep.Port("Q")
			m.RemoveCell(dup)
			var lhs, rhs rtlil.SigSpec
			for i, b := range q {
				if !b.IsConst() {
					lhs = append(lhs, b)
					rhs = append(rhs, kq[i])
				}
			}
			if len(lhs) > 0 {
				m.Connect(lhs, rhs)
			}
			n++
		}
	}
}

// propagateFreedConsts rewrites cell input ports whose bits canonicalize
// to constants (freed by the register removals above), so downstream
// passes see the constants directly instead of through connection
// aliases. Returns the number of rewritten bits.
func propagateFreedConsts(m *rtlil.Module) int {
	sm := rtlil.NewSigMap(m)
	n := 0
	for _, c := range m.Cells() {
		for _, port := range rtlil.InputPorts(c.Type) {
			sig := c.Port(port)
			if sig == nil {
				continue
			}
			changed := false
			mapped := make(rtlil.SigSpec, len(sig))
			for i, b := range sig {
				mb := sm.Bit(b)
				if !b.IsConst() && mb.IsConst() {
					mapped[i] = mb
					changed = true
					n++
				} else {
					mapped[i] = b
				}
			}
			if changed {
				c.SetPort(port, mapped)
			}
		}
	}
	return n
}

func init() {
	Register(PassSpec{
		Name:    "opt_dff",
		Summary: "register sweep: constant/unused removal and duplicate merge, induction-proved",
		Options: []OptionSpec{
			{Key: "k", Kind: KindInt, Positive: true, Default: "2", Help: "induction depth of the sequential equivalence proof"},
			{Key: "verify_conflicts", Kind: KindInt64, Positive: true, Default: "200000", Help: "SAT conflict budget for the proof; exhaustion rejects the sweep"},
			{Key: "verify", Kind: KindBool, Default: "true", Help: "prove the sweep with the k-induction miter before applying it"},
			{Key: "const", Kind: KindBool, Default: "true", Help: "remove registers provably stuck at the zero reset value"},
			{Key: "merge", Kind: KindBool, Default: "true", Help: "merge registers with identical canonical D and CLK"},
			{Key: "unused", Kind: KindBool, Default: "true", Help: "remove registers whose Q is never observed"},
		},
		Build: func(a Args) (Pass, error) {
			return DffPass{Opts: DffOptions{
				K:               a.Int("k", 0),
				VerifyConflicts: a.Int64("verify_conflicts", 0),
				DisableVerify:   !a.Bool("verify", true),
				DisableConst:    !a.Bool("const", true),
				DisableMerge:    !a.Bool("merge", true),
				DisableUnused:   !a.Bool("unused", true),
			}}, nil
		},
	})
}
