package opt

import "testing"

func TestFlowCanonical(t *testing.T) {
	same := [][2]string{
		{"opt_expr;opt_clean", "opt_expr ; opt_clean"},
		{
			"fixpoint(iters=08){opt_expr;opt_clean}",
			"fixpoint(iters=8) { opt_expr; opt_clean }",
		},
		{
			"fixpoint { opt_expr; opt_clean }",
			"fixpoint{opt_expr ; opt_clean;}",
		},
	}
	for _, pair := range same {
		a, err := ParseFlow(pair[0])
		if err != nil {
			t.Fatalf("parse %q: %v", pair[0], err)
		}
		b, err := ParseFlow(pair[1])
		if err != nil {
			t.Fatalf("parse %q: %v", pair[1], err)
		}
		if a.Canonical() != b.Canonical() {
			t.Errorf("%q and %q canonicalize differently: %q vs %q",
				pair[0], pair[1], a.Canonical(), b.Canonical())
		}
	}

	different := [][2]string{
		{"opt_expr; opt_clean", "opt_clean; opt_expr"},                       // order matters
		{"fixpoint(iters=2) { opt_expr }", "fixpoint(iters=3) { opt_expr }"}, // option value
		{"fixpoint { opt_expr }", "fixpoint(iters=3) { opt_expr }"},          // explicit vs default
	}
	for _, pair := range different {
		a, _ := ParseFlow(pair[0])
		b, _ := ParseFlow(pair[1])
		if a.Canonical() == b.Canonical() {
			t.Errorf("%q and %q canonicalize identically: %q", pair[0], pair[1], a.Canonical())
		}
	}

	// Canonical output must itself parse and be a fixed point.
	f, err := ParseFlow("fixpoint(iters=010) { opt_expr; opt_muxtree; opt_clean }")
	if err != nil {
		t.Fatal(err)
	}
	c := f.Canonical()
	g, err := ParseFlow(c)
	if err != nil {
		t.Fatalf("canonical form %q does not parse: %v", c, err)
	}
	if g.Canonical() != c {
		t.Errorf("canonicalization not idempotent: %q -> %q", c, g.Canonical())
	}

	var nilFlow *Flow
	if nilFlow.Canonical() != "" {
		t.Error("nil flow canonical not empty")
	}
}
