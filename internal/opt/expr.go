package opt

import (
	"repro/internal/rtlil"
	"repro/internal/sim"
)

// ExprPass is the opt_expr equivalent: it folds cells whose output is
// fully determined by constant inputs and applies word-level identity
// rewrites (x&0=0, mux with constant select, equal mux branches, pmux
// branch pruning, ...).
type ExprPass struct{}

// Name implements Pass.
func (ExprPass) Name() string { return "opt_expr" }

// Run implements Pass.
func (ExprPass) Run(c *Ctx, m *rtlil.Module) (Result, error) {
	total := newResult()
	for iter := 0; iter < 50; iter++ {
		if err := c.Err(); err != nil {
			return total, err
		}
		r, err := exprSweep(m)
		if err != nil {
			return total, err
		}
		total.merge(r)
		if !r.Changed {
			break
		}
	}
	return total, nil
}

func exprSweep(m *rtlil.Module) (Result, error) {
	res := newResult()
	sm := rtlil.NewSigMap(m)

	order, err := rtlil.TopoSort(m)
	if err != nil {
		return res, err
	}
	// consts accumulates constant values discovered during this sweep so
	// cascades fold in a single pass.
	consts := map[rtlil.SigBit]rtlil.State{}
	valOf := func(b rtlil.SigBit) rtlil.State {
		b = sm.Bit(b)
		if b.IsConst() {
			return b.Const
		}
		if v, ok := consts[b]; ok {
			return v
		}
		return rtlil.Sx
	}
	sigVals := func(s rtlil.SigSpec) []rtlil.State {
		out := make([]rtlil.State, len(s))
		for i, b := range s {
			out[i] = valOf(b)
		}
		return out
	}
	constSig := func(vals []rtlil.State) rtlil.SigSpec {
		out := make(rtlil.SigSpec, len(vals))
		for i, v := range vals {
			out[i] = rtlil.ConstBit(v)
		}
		return out
	}
	allDefined := func(vals []rtlil.State) bool {
		for _, v := range vals {
			if v != rtlil.S0 && v != rtlil.S1 {
				return false
			}
		}
		return true
	}

	type rewrite struct {
		cell    *rtlil.Cell
		newSig  rtlil.SigSpec // replacement for Y; nil = keep cell
		counter string
	}
	var rewrites []rewrite

	for _, c := range order {
		if rtlil.IsSequential(c.Type) {
			continue
		}
		in := map[string][]rtlil.State{}
		for _, p := range rtlil.InputPorts(c.Type) {
			in[p] = sigVals(c.Port(p))
		}
		out, err := sim.EvalCell(c, in)
		if err != nil {
			return res, err
		}
		y := c.Port(rtlil.OutputPorts(c.Type)[0])
		if allDefined(out) {
			for i, b := range y {
				if !b.IsConst() {
					consts[sm.Bit(b)] = out[i]
				}
			}
			rewrites = append(rewrites, rewrite{c, constSig(out), "const_folded"})
			continue
		}
		if rw, counter := identityRewrite(m, c, in); rw != nil {
			rewrites = append(rewrites, rewrite{c, rw, counter})
		}
	}

	for _, rw := range rewrites {
		y := rw.cell.Port(rtlil.OutputPorts(rw.cell.Type)[0])
		m.RemoveCell(rw.cell)
		m.Connect(y, rw.newSig)
		res.bump(rw.counter, 1)
	}
	res.merge(shrinkPmux(m, sigVals))
	return res, nil
}

// identityRewrite returns a replacement signal for the cell's output when
// a word-level identity applies, or nil.
func identityRewrite(m *rtlil.Module, c *rtlil.Cell, in map[string][]rtlil.State) (rtlil.SigSpec, string) {
	y := c.Port(rtlil.OutputPorts(c.Type)[0])
	a, b := c.Port("A"), c.Port("B")
	switch c.Type {
	case rtlil.CellAnd, rtlil.CellOr:
		if len(a) != len(y) || len(b) != len(y) {
			return nil, ""
		}
		neutral := rtlil.S1 // and: a & 1 = a
		if c.Type == rtlil.CellOr {
			neutral = rtlil.S0
		}
		if isAll(in["B"], neutral) {
			return a.Copy(), "identity"
		}
		if isAll(in["A"], neutral) {
			return b.Copy(), "identity"
		}
	case rtlil.CellXor:
		if len(a) != len(y) || len(b) != len(y) {
			return nil, ""
		}
		if isAll(in["B"], rtlil.S0) {
			return a.Copy(), "identity"
		}
		if isAll(in["A"], rtlil.S0) {
			return b.Copy(), "identity"
		}
	case rtlil.CellMux:
		s := in["S"][0]
		switch s {
		case rtlil.S0:
			return a.Copy(), "const_select"
		case rtlil.S1:
			return b.Copy(), "const_select"
		}
		if a.Equal(b) {
			return a.Copy(), "equal_branches"
		}
	case rtlil.CellEq:
		if a.Equal(b) {
			return rtlil.Const(1, 1), "trivial_compare"
		}
	case rtlil.CellNe:
		if a.Equal(b) {
			return rtlil.Const(0, 1), "trivial_compare"
		}
	}
	return nil, ""
}

func isAll(vals []rtlil.State, want rtlil.State) bool {
	if len(vals) == 0 {
		return false
	}
	for _, v := range vals {
		if v != want {
			return false
		}
	}
	return true
}

// shrinkPmux drops $pmux candidate words whose select bit is constant 0,
// collapses single-word pmux with constant select, and rewrites pmux with
// zero remaining words to the default input.
func shrinkPmux(m *rtlil.Module, sigVals func(rtlil.SigSpec) []rtlil.State) Result {
	res := newResult()
	for _, c := range append([]*rtlil.Cell(nil), m.Cells()...) {
		if c.Type != rtlil.CellPmux {
			continue
		}
		w := c.Param("WIDTH")
		sw := c.Param("S_WIDTH")
		s := c.Port("S")
		sv := sigVals(s)

		// A select bit constant 1 makes later words the only candidates
		// (ascending priority); everything at or below collapses into
		// the new default.
		base := c.Port("A")
		start := 0
		for i := 0; i < sw; i++ {
			if sv[i] == rtlil.S1 {
				base = c.Port("B").Extract(i*w, w)
				start = i + 1
			}
		}
		var keepWords []rtlil.SigSpec
		var keepSel rtlil.SigSpec
		for i := start; i < sw; i++ {
			if sv[i] == rtlil.S0 {
				continue
			}
			keepWords = append(keepWords, c.Port("B").Extract(i*w, w))
			keepSel = append(keepSel, s[i])
		}
		if start == 0 && len(keepWords) == sw {
			continue // nothing to do
		}
		y := c.Port("Y")
		m.RemoveCell(c)
		switch len(keepWords) {
		case 0:
			m.Connect(y, base)
			res.bump("pmux_collapsed", 1)
		case 1:
			m.AddMux("", base, keepWords[0], keepSel, y)
			res.bump("pmux_to_mux", 1)
		default:
			m.AddPmux("", base, keepWords, keepSel, y)
			res.bump("pmux_shrunk", 1)
		}
	}
	return res
}
