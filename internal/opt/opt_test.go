package opt

import (
	"testing"

	"repro/internal/cec"
	"repro/internal/rtlil"
)

// checkEquiv fails the test if the optimized module is not equivalent to
// the original.
func checkEquiv(t *testing.T, orig, got *rtlil.Module) {
	t.Helper()
	if err := cec.Check(orig, got, nil); err != nil {
		t.Fatalf("optimization broke equivalence: %v", err)
	}
}

func countType(m *rtlil.Module, t rtlil.CellType) int {
	n := 0
	for _, c := range m.Cells() {
		if c.Type == t {
			n++
		}
	}
	return n
}

// TestFigure1 reproduces the paper's Figure 1: Y = S ? (S ? A : B) : C
// must optimize to Y = S ? A : C. This is within the baseline's power.
func TestFigure1(t *testing.T) {
	m := rtlil.NewModule("fig1")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	c := m.AddInput("c", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	inner := m.Mux(b, a, s) // S ? A : B
	y := m.AddOutput("y", 4).Bits()
	m.AddMux("root", c, inner, s, y) // S ? inner : C
	orig := m.Clone()

	r, err := RunScript(nil, m, MuxtreePass{}, ExprPass{}, CleanPass{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Changed {
		t.Fatal("nothing optimized")
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Errorf("muxes after = %d, want 1", got)
	}
	// The surviving mux must read A directly (inner collapsed to A).
	root := m.Cells()[0]
	sm := rtlil.NewSigMap(m)
	if !sm.Map(root.Port("B")).Equal(sm.Map(a)) {
		t.Errorf("root B = %s, want a", root.Port("B"))
	}
}

// TestFigure2 reproduces the paper's Figure 2: Y = S ? (A ? S : B) : C.
// The inner mux's data input S is known 1 on the active path, so it
// becomes A ? 1 : B.
func TestFigure2(t *testing.T) {
	m := rtlil.NewModule("fig2")
	a := m.AddInput("a", 1).Bits()
	b := m.AddInput("b", 1).Bits()
	c := m.AddInput("c", 1).Bits()
	s := m.AddInput("s", 1).Bits()
	inner := m.Mux(b, s, a) // A ? S : B
	y := m.AddOutput("y", 1).Bits()
	m.AddMux("root", c, inner, s, y) // S ? inner : C
	orig := m.Clone()

	if _, err := RunScript(nil, m, MuxtreePass{}, ExprPass{}, CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	// The inner mux's B input (our S-data leg) must now be constant 1.
	var inner2 *rtlil.Cell
	for _, cell := range m.Cells() {
		if cell.Name != "root" && cell.Type == rtlil.CellMux {
			inner2 = cell
		}
	}
	if inner2 == nil {
		t.Fatal("inner mux disappeared (it should only have its data substituted)")
	}
	bp := inner2.Port("B")
	if !bp.IsFullyConst() {
		t.Errorf("inner mux data not substituted: %s", bp)
	}
}

// TestNestedSameControlChain: a 3-deep chain sharing one control must
// collapse to a single mux.
func TestNestedSameControlChain(t *testing.T) {
	m := rtlil.NewModule("chain")
	s := m.AddInput("s", 1).Bits()
	d := make([]rtlil.SigSpec, 4)
	for i := range d {
		d[i] = m.AddInput(string(rune('a'+i)), 2).Bits()
	}
	l1 := m.Mux(d[0], d[1], s)
	l2 := m.Mux(l1, d[2], s)
	l3 := m.Mux(l2, d[3], s)
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), l3)
	orig := m.Clone()

	if _, err := RunScript(nil, m, Fixpoint(0, MuxtreePass{}, ExprPass{}, CleanPass{})); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 1 {
		t.Errorf("muxes after = %d, want 1", got)
	}
}

func TestPmuxBranchPruning(t *testing.T) {
	// pmux under a mux: on the taken branch one select bit is known 0.
	m := rtlil.NewModule("pm")
	s := m.AddInput("s", 1).Bits()
	t0 := m.AddInput("t", 1).Bits()
	d := make([]rtlil.SigSpec, 3)
	for i := range d {
		d[i] = m.AddInput(string(rune('a'+i)), 2).Bits()
	}
	// pmux selects: {s, t} — word0 active when s=1, word1 when t=1.
	pm := m.Pmux(d[0], []rtlil.SigSpec{d[1], d[2]}, rtlil.Concat(s, t0))
	// Root: S ? C : pmux — pmux only evaluated when s=0, so its word0
	// (select s) can never fire.
	y := m.AddOutput("y", 2).Bits()
	cIn := m.AddInput("dflt", 2).Bits()
	m.AddMux("root", pm, cIn, s, y)
	orig := m.Clone()

	if _, err := RunScript(nil, m, Fixpoint(0, MuxtreePass{}, ExprPass{}, CleanPass{})); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellPmux); got != 0 {
		t.Errorf("pmux not shrunk away: %d left", got)
	}
}

func TestExprConstFold(t *testing.T) {
	m := rtlil.NewModule("cf")
	a := m.AddInput("a", 4).Bits()
	y := m.AddOutput("y", 4).Bits()
	// (a & 0) | 0b0101 = 0b0101
	and := m.And(a, rtlil.Const(0, 4))
	m.AddBinary(rtlil.CellOr, "or", and, rtlil.Const(5, 4), y)
	orig := m.Clone()
	r, err := RunScript(nil, m, ExprPass{}, CleanPass{})
	if err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if m.NumCells() != 0 {
		t.Errorf("cells left after const fold: %d (%v)", m.NumCells(), r)
	}
}

func TestExprIdentity(t *testing.T) {
	m := rtlil.NewModule("id")
	a := m.AddInput("a", 4).Bits()
	y := m.AddOutput("y", 4).Bits()
	// a & 1111 = a
	m.AddBinary(rtlil.CellAnd, "and", a, rtlil.Const(0xf, 4), y)
	orig := m.Clone()
	if _, err := RunScript(nil, m, ExprPass{}, CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if m.NumCells() != 0 {
		t.Error("identity AND not removed")
	}
}

func TestExprMuxConstSelect(t *testing.T) {
	m := rtlil.NewModule("mc")
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 2).Bits()
	y := m.AddOutput("y", 2).Bits()
	m.AddMux("mx", a, b, rtlil.Const(1, 1), y)
	orig := m.Clone()
	if _, err := RunScript(nil, m, ExprPass{}, CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if m.NumCells() != 0 {
		t.Error("const-select mux not removed")
	}
	sm := rtlil.NewSigMap(m)
	if !sm.Map(y).Equal(sm.Map(b)) {
		t.Error("y not connected to b")
	}
}

func TestExprEqualBranches(t *testing.T) {
	m := rtlil.NewModule("eb")
	a := m.AddInput("a", 2).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 2).Bits()
	m.AddMux("mx", a, a, s, y)
	orig := m.Clone()
	if _, err := RunScript(nil, m, ExprPass{}, CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if m.NumCells() != 0 {
		t.Error("equal-branch mux not removed")
	}
}

func TestExprPmuxShrink(t *testing.T) {
	m := rtlil.NewModule("ps")
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 2).Bits()
	c := m.AddInput("c", 2).Bits()
	s := m.AddInput("s", 1).Bits()
	y := m.AddOutput("y", 2).Bits()
	// Word 1's select is constant 0: must be dropped, leaving a $mux.
	m.AddPmux("pm", a, []rtlil.SigSpec{b, c}, rtlil.Concat(s, rtlil.Const(0, 1)), y)
	orig := m.Clone()
	if _, err := RunScript(nil, m, ExprPass{}, CleanPass{}); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if countType(m, rtlil.CellPmux) != 0 || countType(m, rtlil.CellMux) != 1 {
		t.Errorf("pmux not shrunk to mux: %d pmux, %d mux",
			countType(m, rtlil.CellPmux), countType(m, rtlil.CellMux))
	}
}

func TestCleanRemovesDeadLogic(t *testing.T) {
	m := rtlil.NewModule("dead")
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 2).Bits()
	y := m.AddOutput("y", 2).Bits()
	m.AddBinary(rtlil.CellAnd, "live", a, b, y)
	m.Or(a, b)         // dead
	m.Not(m.Xor(a, b)) // dead chain
	r, err := CleanPass{}.Run(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 1 {
		t.Errorf("cells after clean = %d, want 1 (%v)", m.NumCells(), r)
	}
}

func TestCleanKeepsDffCone(t *testing.T) {
	m := rtlil.NewModule("seq")
	clk := m.AddInput("clk", 1).Bits()
	a := m.AddInput("a", 1).Bits()
	q := m.NewWire(1)
	inv := m.Not(a) // feeds only the dff
	m.AddDff("ff", clk, inv, q.Bits())
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), q.Bits())
	if _, err := (CleanPass{}).Run(nil, m); err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 2 {
		t.Errorf("dff cone removed: %d cells left", m.NumCells())
	}
}

func TestFactOracle(t *testing.T) {
	o := NewFactOracle()
	m := rtlil.NewModule("m")
	w := m.AddWire("w", 2)
	b0, b1 := w.Bit(0), w.Bit(1)
	o.Push(b0, rtlil.S1)
	o.Push(b1, rtlil.S0)
	o.Push(b0, rtlil.S0) // duplicate: first fact wins
	if v, ok := o.Lookup(b0); !ok || v != rtlil.S1 {
		t.Error("duplicate push overwrote fact")
	}
	o.Pop(1) // pops the placeholder
	if v, ok := o.Lookup(b0); !ok || v != rtlil.S1 {
		t.Error("pop of duplicate removed real fact")
	}
	o.Pop(2)
	if _, ok := o.Lookup(b0); ok {
		t.Error("fact survived pop")
	}
	if _, ok := o.Lookup(b1); ok {
		t.Error("fact survived pop")
	}
	// Constants are always known.
	if v, ok := o.Lookup(rtlil.ConstBit(rtlil.S1)); !ok || v != rtlil.S1 {
		t.Error("constant lookup failed")
	}
}

// TestBaselineCannotDoFigure3 documents the baseline's limitation: the
// dependent-control case needs smaRTLy (tested in internal/core).
func TestBaselineCannotDoFigure3(t *testing.T) {
	m := buildFigure3()
	orig := m.Clone()
	if _, err := RunScript(nil, m, Fixpoint(0, MuxtreePass{}, ExprPass{}, CleanPass{})); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, orig, m)
	if got := countType(m, rtlil.CellMux); got != 2 {
		t.Errorf("baseline removed the dependent-control mux (muxes=%d); "+
			"the test setup no longer isolates smaRTLy's contribution", got)
	}
}

// buildFigure3 constructs Y = S ? ((S|R) ? A : B) : C (paper Figure 3).
func buildFigure3() *rtlil.Module {
	m := rtlil.NewModule("fig3")
	a := m.AddInput("a", 2).Bits()
	b := m.AddInput("b", 2).Bits()
	c := m.AddInput("c", 2).Bits()
	s := m.AddInput("s", 1).Bits()
	r := m.AddInput("r", 1).Bits()
	or := m.Or(s, r)
	inner := m.Mux(b, a, or) // (S|R) ? A : B
	y := m.AddOutput("y", 2).Bits()
	m.AddMux("root", c, inner, s, y) // S ? inner : C
	return m
}
