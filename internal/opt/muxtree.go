package opt

import (
	"repro/internal/rtlil"
)

// Oracle answers control-value queries during a muxtree traversal. The
// walker pushes path facts (control values implied by the branch being
// descended) and asks for the value of the next control bit.
//
// The baseline (Yosys opt_muxtree behaviour) answers only from the pushed
// facts; smaRTLy's oracle additionally runs sub-graph inference,
// simulation and SAT (internal/core).
type Oracle interface {
	// Push records a path fact: along the current branch, bit has the
	// given constant value.
	Push(bit rtlil.SigBit, v rtlil.State)
	// Pop removes the n most recent facts.
	Pop(n int)
	// Lookup answers cheaply from recorded facts only. It is used for
	// data-port substitution, where a full query per bit would be too
	// expensive.
	Lookup(bit rtlil.SigBit) (rtlil.State, bool)
	// Value determines the bit's value under the current path facts,
	// with whatever effort the oracle implements.
	Value(bit rtlil.SigBit) (rtlil.State, bool)
}

// FactOracle is the baseline oracle: a stack of path facts with map
// lookup, replicating what Yosys' opt_muxtree knows.
type FactOracle struct {
	facts map[rtlil.SigBit]rtlil.State
	stack []rtlil.SigBit
}

// NewFactOracle returns an empty fact oracle.
func NewFactOracle() *FactOracle {
	return &FactOracle{facts: map[rtlil.SigBit]rtlil.State{}}
}

// Push implements Oracle.
func (o *FactOracle) Push(bit rtlil.SigBit, v rtlil.State) {
	if _, dup := o.facts[bit]; dup {
		// Keep the first fact; record a placeholder pop entry.
		o.stack = append(o.stack, rtlil.SigBit{Const: rtlil.Sx})
		return
	}
	o.facts[bit] = v
	o.stack = append(o.stack, bit)
}

// Pop implements Oracle.
func (o *FactOracle) Pop(n int) {
	for i := 0; i < n; i++ {
		b := o.stack[len(o.stack)-1]
		o.stack = o.stack[:len(o.stack)-1]
		if b.Wire != nil || b.Const != rtlil.Sx {
			delete(o.facts, b)
		}
	}
}

// Lookup implements Oracle.
func (o *FactOracle) Lookup(bit rtlil.SigBit) (rtlil.State, bool) {
	if bit.IsConst() && (bit.Const == rtlil.S0 || bit.Const == rtlil.S1) {
		return bit.Const, true
	}
	v, ok := o.facts[bit]
	return v, ok
}

// Value implements Oracle: the baseline knows nothing beyond its facts.
func (o *FactOracle) Value(bit rtlil.SigBit) (rtlil.State, bool) {
	return o.Lookup(bit)
}

// Facts returns the current fact map (shared, do not mutate).
func (o *FactOracle) Facts() map[rtlil.SigBit]rtlil.State { return o.facts }

// BatchValue is one result of a BatchOracle query.
type BatchValue struct {
	V     rtlil.State
	Known bool
}

// BatchOracle is implemented by oracles that can resolve several control
// bits under the same path condition at once — smaRTLy's oracle fans the
// independent simulation/SAT queries of a pmux select scan out to a
// worker pool. Implementations must return results identical to calling
// Value on each bit sequentially in slice order (deterministic merge),
// so the walker's rewrites do not depend on the worker count.
type BatchOracle interface {
	Oracle
	ValueBatch(bits []rtlil.SigBit) []BatchValue
}

// MuxtreeWalk traverses all muxtrees of the module root-down, consulting
// the oracle for control values, and applies three rewrites:
//
//   - a mux whose control is determined collapses to the active branch
//     (paper Figure 1, and Figure 3 with the smaRTLy oracle);
//   - pmux candidate words with inactive selects are dropped;
//   - data-port bits whose value is implied by the path facts are
//     replaced with constants (paper Figure 2).
//
// Rewrites are only applied along single-fanout tree edges, where the
// accumulated path condition is valid.
type MuxtreeWalk struct {
	Oracle Oracle

	m       *rtlil.Module
	ix      *rtlil.Index
	visited map[*rtlil.Cell]bool
	removed map[*rtlil.Cell]bool
	res     *Result
}

// Run traverses and rewrites the module's muxtrees once. Cancellation is
// checked between tree roots; a canceled run returns the context error
// with the rewrites applied so far (each is individually sound).
func (w *MuxtreeWalk) Run(c *Ctx, m *rtlil.Module) (Result, error) {
	res := newResult()
	w.m = m
	w.ix = rtlil.NewIndex(m)
	w.visited = map[*rtlil.Cell]bool{}
	w.removed = map[*rtlil.Cell]bool{}
	w.res = &res
	if w.Oracle == nil {
		w.Oracle = NewFactOracle()
	}

	muxes := w.muxCells()
	for _, mc := range muxes {
		if err := c.Err(); err != nil {
			return res, err
		}
		if w.isRoot(mc) {
			w.visit(mc)
		}
	}
	return res, nil
}

func (w *MuxtreeWalk) muxCells() []*rtlil.Cell {
	var out []*rtlil.Cell
	for _, c := range w.m.Cells() {
		if c.Type == rtlil.CellMux || c.Type == rtlil.CellPmux {
			out = append(out, c)
		}
	}
	return out
}

// TreeChild returns the mux cell driving sig, when sig is exactly that
// cell's output and every bit has fanout 1 (a muxtree edge). It is
// shared by the baseline walker and smaRTLy's restructuring pass.
func TreeChild(ix *rtlil.Index, sig rtlil.SigSpec) *rtlil.Cell {
	mapped := ix.Map(sig)
	if len(mapped) == 0 || mapped[0].IsConst() {
		return nil
	}
	r, ok := ix.Driver(mapped[0])
	if !ok {
		return nil
	}
	c := r.Cell
	if c.Type != rtlil.CellMux && c.Type != rtlil.CellPmux {
		return nil
	}
	y := ix.Map(c.Port("Y"))
	if !y.Equal(mapped) {
		return nil
	}
	for _, b := range y {
		if ix.FanoutCount(b) != 1 {
			return nil
		}
	}
	return c
}

// IsMuxRoot reports whether the mux cell is not a tree child of another
// mux (the traversal entry points).
func IsMuxRoot(ix *rtlil.Index, c *rtlil.Cell) bool {
	y := ix.Map(c.Port("Y"))
	for _, b := range y {
		if ix.FanoutCount(b) != 1 {
			return true
		}
	}
	// Single reader: root unless that reader is a mux data port taking
	// the whole word.
	r := ix.Readers(y[0])
	if len(r) != 1 {
		return true
	}
	p := r[0]
	if p.Cell.Type != rtlil.CellMux && p.Cell.Type != rtlil.CellPmux {
		return true
	}
	if p.Port == "S" {
		return true
	}
	// Check the parent's data port contains exactly this word.
	return !parentHoldsWord(ix, p.Cell, y)
}

func parentHoldsWord(ix *rtlil.Index, parent *rtlil.Cell, y rtlil.SigSpec) bool {
	width := parent.Param("WIDTH")
	if parent.Type == rtlil.CellMux {
		width = len(parent.Port("Y"))
	}
	check := func(sig rtlil.SigSpec) bool {
		return ix.Map(sig).Equal(y)
	}
	if check(parent.Port("A")) {
		return true
	}
	if parent.Type == rtlil.CellMux {
		return check(parent.Port("B"))
	}
	b := parent.Port("B")
	for i := 0; i*width < len(b); i++ {
		if check(b.Extract(i*width, width)) {
			return true
		}
	}
	return false
}

func (w *MuxtreeWalk) treeChild(sig rtlil.SigSpec) *rtlil.Cell {
	c := TreeChild(w.ix, sig)
	if c == nil || w.removed[c] {
		return nil
	}
	return c
}

func (w *MuxtreeWalk) isRoot(c *rtlil.Cell) bool {
	return IsMuxRoot(w.ix, c)
}

func (w *MuxtreeWalk) ctrlBit(sig rtlil.SigSpec) rtlil.SigBit {
	return w.ix.MapBit(sig[0])
}

// substituteData replaces data-port bits whose value is implied by the
// current path facts with constants (Figure 2).
func (w *MuxtreeWalk) substituteData(c *rtlil.Cell, port string) {
	sig := c.Port(port)
	changed := false
	out := sig.Copy()
	for i, b := range w.ix.Map(sig) {
		if b.IsConst() {
			continue
		}
		if v, ok := w.Oracle.Lookup(b); ok {
			out[i] = rtlil.ConstBit(v)
			changed = true
		}
	}
	if changed {
		c.SetPort(port, out)
		w.res.bump("data_bits_substituted", 1)
	}
}

// collapse removes cell c, connecting its output to the active branch,
// and continues traversal into that branch.
func (w *MuxtreeWalk) collapse(c *rtlil.Cell, branch rtlil.SigSpec, counter string) {
	y := c.Port("Y")
	w.m.RemoveCell(c)
	w.removed[c] = true
	w.m.Connect(y, branch.Copy())
	w.res.bump(counter, 1)
	if child := w.treeChild(branch); child != nil {
		w.visit(child)
	}
}

func (w *MuxtreeWalk) visit(c *rtlil.Cell) {
	if w.visited[c] || w.removed[c] {
		return
	}
	w.visited[c] = true
	switch c.Type {
	case rtlil.CellMux:
		w.visitMux(c)
	case rtlil.CellPmux:
		w.visitPmux(c)
	}
}

func (w *MuxtreeWalk) visitMux(c *rtlil.Cell) {
	w.substituteData(c, "A")
	w.substituteData(c, "B")
	s := w.ctrlBit(c.Port("S"))
	if v, ok := w.Oracle.Value(s); ok {
		if v == rtlil.S1 {
			w.collapse(c, c.Port("B"), "mux_collapsed")
		} else {
			w.collapse(c, c.Port("A"), "mux_collapsed")
		}
		return
	}
	if child := w.treeChild(c.Port("A")); child != nil {
		w.Oracle.Push(s, rtlil.S0)
		w.visit(child)
		w.Oracle.Pop(1)
	}
	if child := w.treeChild(c.Port("B")); child != nil {
		w.Oracle.Push(s, rtlil.S1)
		w.visit(child)
		w.Oracle.Pop(1)
	}
}

func (w *MuxtreeWalk) visitPmux(c *rtlil.Cell) {
	w.substituteData(c, "A")
	w.substituteData(c, "B")
	sw := c.Param("S_WIDTH")
	s := c.Port("S")

	// Determine select values under the current path condition. All sw
	// queries see the same module state and fact set, so a batch-capable
	// oracle may resolve them concurrently.
	bits := make([]rtlil.SigBit, sw)
	vals := make([]rtlil.State, sw)
	for i := 0; i < sw; i++ {
		bits[i] = w.ctrlBit(rtlil.SigSpec{s[i]})
		// Unknown by default: the State zero value is S0 ("known 0"),
		// which would unsoundly drop words if an oracle left a slot
		// unanswered.
		vals[i] = rtlil.Sx
	}
	if bo, ok := w.Oracle.(BatchOracle); ok && sw > 1 {
		for i, r := range bo.ValueBatch(bits) {
			if r.Known {
				vals[i] = r.V
			}
		}
	} else {
		for i := 0; i < sw; i++ {
			if v, ok := w.Oracle.Value(bits[i]); ok {
				vals[i] = v
			}
		}
	}

	// With ascending priority, a select bit known 1 shadows all earlier
	// words and the default; drop words whose select is known 0.
	base := c.Port("A")
	start := 0
	for i := 0; i < sw; i++ {
		if vals[i] == rtlil.S1 {
			base = c.PmuxWord(i)
			start = i + 1
		}
	}
	var words []rtlil.SigSpec
	var sels rtlil.SigSpec
	for i := start; i < sw; i++ {
		if vals[i] == rtlil.S0 {
			continue
		}
		words = append(words, c.PmuxWord(i))
		sels = append(sels, s[i])
	}

	if start == 0 && len(words) == sw {
		// No structural change: recurse into branches with implied facts.
		w.recursePmux(c, base, words, sels)
		return
	}

	y := c.Port("Y")
	w.m.RemoveCell(c)
	w.removed[c] = true
	switch len(words) {
	case 0:
		w.m.Connect(y, base.Copy())
		w.res.bump("pmux_collapsed", 1)
		if child := w.treeChild(base); child != nil {
			w.visit(child)
		}
	case 1:
		nc := w.m.AddMux("", base, words[0], sels, y)
		w.res.bump("pmux_shrunk", 1)
		w.visited[nc] = true // contents already processed this round
		w.recursePmux(nc, base, words, sels)
	default:
		nc := w.m.AddPmux("", base, words, sels, y)
		w.res.bump("pmux_shrunk", 1)
		w.visited[nc] = true
		w.recursePmux(nc, base, words, sels)
	}
}

// recursePmux descends into the default branch (all remaining selects 0)
// and each candidate word (its select 1, later selects 0 by priority).
func (w *MuxtreeWalk) recursePmux(c *rtlil.Cell, base rtlil.SigSpec, words []rtlil.SigSpec, sels rtlil.SigSpec) {
	if child := w.treeChild(base); child != nil {
		n := 0
		for i := range sels {
			w.Oracle.Push(w.ctrlBit(rtlil.SigSpec{sels[i]}), rtlil.S0)
			n++
		}
		w.visit(child)
		w.Oracle.Pop(n)
	}
	for i, word := range words {
		child := w.treeChild(word)
		if child == nil {
			continue
		}
		n := 0
		w.Oracle.Push(w.ctrlBit(rtlil.SigSpec{sels[i]}), rtlil.S1)
		n++
		for j := i + 1; j < len(sels); j++ {
			w.Oracle.Push(w.ctrlBit(rtlil.SigSpec{sels[j]}), rtlil.S0)
			n++
		}
		w.visit(child)
		w.Oracle.Pop(n)
	}
}

// MuxtreePass is the baseline opt_muxtree: the walker with the
// facts-only oracle, run to a fixpoint.
type MuxtreePass struct{}

// Name implements Pass.
func (MuxtreePass) Name() string { return "opt_muxtree" }

// Run implements Pass.
func (MuxtreePass) Run(c *Ctx, m *rtlil.Module) (Result, error) {
	total := newResult()
	for iter := 0; iter < 20; iter++ {
		walk := &MuxtreeWalk{Oracle: NewFactOracle()}
		r, err := walk.Run(c, m)
		if err != nil {
			return total, err
		}
		total.merge(r)
		if !r.Changed {
			break
		}
	}
	return total, nil
}
