package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rtlil"
)

// Result reports what a pass did.
type Result struct {
	Changed bool
	// Details maps counters (e.g. "cells_removed") to values.
	Details map[string]int
}

func newResult() Result { return Result{Details: map[string]int{}} }

func (r *Result) bump(key string, n int) {
	if n != 0 {
		r.Details[key] += n
		r.Changed = true
	}
}

func (r *Result) merge(o Result) {
	if o.Changed {
		r.Changed = true
	}
	for k, v := range o.Details {
		r.Details[k] += v
	}
}

// String renders the result counters deterministically.
func (r Result) String() string {
	keys := make([]string, 0, len(r.Details))
	for k := range r.Details {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, r.Details[k])
	}
	return strings.Join(parts, " ")
}

// Pass is a module-level optimization. Run optimizes m in place under
// the engine context c; a nil c means sequential background execution.
type Pass interface {
	Name() string
	Run(c *Ctx, m *rtlil.Module) (Result, error)
}

// Composite marks passes that orchestrate other passes through a
// nested RunScript (fixpoint wrappers, the combined smartly pass):
// their children report their own counters, so RunScript skips the
// wrapper when building the per-pass run report to avoid counting the
// same rewrites twice.
type Composite interface {
	// Composite is a marker method; it is never called.
	Composite()
}

// RunScript runs the passes in order under c, merging their results and
// recording per-pass counters and timings in the context's run report
// (see Ctx.Report). It stops at the first pass error or context
// cancellation; the module is left in whatever (still semantically
// equivalent) state the completed rewrites produced.
func RunScript(c *Ctx, m *rtlil.Module, passes ...Pass) (Result, error) {
	total := newResult()
	for _, p := range passes {
		if err := c.Err(); err != nil {
			return total, fmt.Errorf("opt: pass %s: %w", p.Name(), err)
		}
		done := c.StartPass(p.Name())
		r, err := p.Run(c, m)
		d := done()
		if err != nil {
			return total, fmt.Errorf("opt: pass %s: %w", p.Name(), err)
		}
		if _, isComposite := p.(Composite); !isComposite {
			c.recordPass(p.Name(), r, d)
		}
		total.merge(r)
	}
	return total, nil
}

// Fixpoint wraps passes into a pass that repeats the sequence until no
// pass reports a change (bounded by maxIters; 0 means 10).
func Fixpoint(maxIters int, passes ...Pass) Pass {
	if maxIters <= 0 {
		maxIters = 10
	}
	return fixpointPass{iters: maxIters, passes: passes}
}

type fixpointPass struct {
	iters  int
	passes []Pass
}

func (f fixpointPass) Name() string {
	names := make([]string, len(f.passes))
	for i, p := range f.passes {
		names[i] = p.Name()
	}
	return "fixpoint(" + strings.Join(names, ";") + ")"
}

// Composite implements the report marker: the body passes report their
// own counters; the wrapper contributes only its iteration count.
func (fixpointPass) Composite() {}

func (f fixpointPass) Run(c *Ctx, m *rtlil.Module) (Result, error) {
	total := newResult()
	iters, converged := 0, false
	for i := 0; i < f.iters; i++ {
		if err := c.Err(); err != nil {
			return total, err
		}
		r, err := RunScript(c, m, f.passes...)
		if err != nil {
			return total, err
		}
		iters++
		total.merge(r)
		if !r.Changed {
			converged = true
			break
		}
	}
	c.recordFixpoint(f.Name(), iters, converged)
	return total, nil
}
