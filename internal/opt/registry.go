package opt

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// OptionKind is the value type of a pass option.
type OptionKind int

// The option value kinds understood by the script parser.
const (
	KindInt OptionKind = iota
	KindInt64
	KindBool
	KindFloat
	// KindString accepts any bare token the script lexer produces
	// (letters, digits and most punctuation except delimiters). Used for
	// enumeration-style options such as rule-group selections; the pass'
	// Build func validates the actual vocabulary.
	KindString
)

// String names the kind as shown in error messages and docs.
func (k OptionKind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindInt64:
		return "int64"
	case KindBool:
		return "bool"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	}
	return fmt.Sprintf("OptionKind(%d)", int(k))
}

// canonicalValue reduces a valid raw option value to its canonical
// spelling for the kind ("TRUE" -> "true", "064" -> "64"). Invalid
// values are returned unchanged; callers only normalize values that
// already passed checkValue.
func (k OptionKind) canonicalValue(v string) string {
	switch k {
	case KindInt:
		if n, err := strconv.Atoi(v); err == nil {
			return strconv.Itoa(n)
		}
	case KindInt64:
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return strconv.FormatInt(n, 10)
		}
	case KindBool:
		if b, err := strconv.ParseBool(v); err == nil {
			return strconv.FormatBool(b)
		}
	case KindFloat:
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return strconv.FormatFloat(f, 'g', -1, 64)
		}
	}
	return v
}

// checkValue validates a raw option value against the kind.
func (k OptionKind) checkValue(v string) error {
	var err error
	switch k {
	case KindInt:
		_, err = strconv.Atoi(v)
	case KindInt64:
		_, err = strconv.ParseInt(v, 10, 64)
	case KindBool:
		_, err = strconv.ParseBool(v)
	case KindFloat:
		_, err = strconv.ParseFloat(v, 64)
	}
	if err != nil {
		return fmt.Errorf("invalid %s value %q", k, v)
	}
	return nil
}

// OptionSpec describes one option a pass accepts in a flow script.
type OptionSpec struct {
	// Key is the option name as written in key=value.
	Key string
	// Kind is the value type the parser validates against.
	Kind OptionKind
	// Positive requires an integer value >= 1. Budget-style options set
	// it because their option structs treat 0 as "use the default": an
	// explicit zero would be silently coerced, misreporting ablations.
	Positive bool
	// Default documents the value used when the option is omitted.
	Default string
	// Help is a one-line description for registry listings.
	Help string
}

// check validates a raw value against the option's kind and bounds.
func (o OptionSpec) check(v string) error {
	if err := o.Kind.checkValue(v); err != nil {
		return err
	}
	if o.Positive {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n < 1 {
			return fmt.Errorf("value %s out of range (must be >= 1; omit the option for the default, %s)", v, o.Default)
		}
	}
	return nil
}

// PassSpec describes one registered pass: its script name, a summary,
// the options it accepts and the factory that builds a fresh pass
// instance from parsed options.
type PassSpec struct {
	// Name is the script-level pass name (e.g. "satmux").
	Name string
	// Summary is a one-line description for registry listings.
	Summary string
	// Options lists the accepted key=value options.
	Options []OptionSpec
	// Build constructs a fresh pass instance. The Args are already
	// validated against Options (keys known, values well-typed), so
	// Build only translates them into the pass' typed option struct.
	Build func(args Args) (Pass, error)
}

// option returns the spec for the given key, if any.
func (s PassSpec) option(key string) (OptionSpec, bool) {
	for _, o := range s.Options {
		if o.Key == key {
			return o, true
		}
	}
	return OptionSpec{}, false
}

// Args holds the validated key=value options of one flow step. The
// typed getters never fail: the parser (or NewStep validation) has
// already checked every value against the option's kind.
type Args struct {
	m map[string]string
}

// Has reports whether the key was given.
func (a Args) Has(key string) bool { _, ok := a.m[key]; return ok }

// Int returns the key's value, or def when absent.
func (a Args) Int(key string, def int) int {
	if v, ok := a.m[key]; ok {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

// Int64 returns the key's value, or def when absent.
func (a Args) Int64(key string, def int64) int64 {
	if v, ok := a.m[key]; ok {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

// Bool returns the key's value, or def when absent.
func (a Args) Bool(key string, def bool) bool {
	if v, ok := a.m[key]; ok {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	return def
}

// Str returns the key's raw string value, or def when absent.
func (a Args) Str(key string, def string) string {
	if v, ok := a.m[key]; ok {
		return v
	}
	return def
}

// Float returns the key's value, or def when absent.
func (a Args) Float(key string, def float64) float64 {
	if v, ok := a.m[key]; ok {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

// The process-wide pass registry. Registration happens in package
// init functions (opt registers the baseline passes below, core the
// smaRTLy passes), lookups at parse/compile time.
var registry = struct {
	sync.RWMutex
	passes map[string]PassSpec
	flows  map[string]string // named flow -> script
}{
	passes: map[string]PassSpec{},
	flows:  map[string]string{},
}

// Register adds a pass to the registry. It panics on a duplicate or
// invalid name: registration is an init-time programming action, not a
// runtime input.
func Register(s PassSpec) {
	if s.Name == "" || s.Build == nil {
		panic("opt: Register: spec needs a name and a Build func")
	}
	if !isIdent(s.Name) {
		panic(fmt.Sprintf("opt: Register: invalid pass name %q", s.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.passes[s.Name]; dup || s.Name == "fixpoint" {
		panic(fmt.Sprintf("opt: Register: duplicate pass %q", s.Name))
	}
	registry.passes[s.Name] = s
}

// LookupPass returns the spec registered under name.
func LookupPass(name string) (PassSpec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.passes[name]
	return s, ok
}

// Passes lists every registered pass spec, sorted by name.
func Passes() []PassSpec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]PassSpec, 0, len(registry.passes))
	for _, s := range registry.passes {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegisterFlow adds a named flow defined by a script. The script is
// parsed lazily on first NamedFlow lookup, so flows may reference
// passes registered by a later init function.
func RegisterFlow(name, script string) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.flows[name]; dup {
		panic(fmt.Sprintf("opt: RegisterFlow: duplicate flow %q", name))
	}
	registry.flows[name] = script
}

// NamedFlow parses and returns the flow registered under name.
func NamedFlow(name string) (*Flow, error) {
	registry.RLock()
	script, ok := registry.flows[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("opt: unknown flow %q (have %v)", name, FlowNames())
	}
	f, err := ParseFlow(script)
	if err != nil {
		return nil, fmt.Errorf("opt: flow %q: %w", name, err)
	}
	return f, nil
}

// FlowNames lists the registered named flows, sorted.
func FlowNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.flows))
	for name := range registry.flows {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The baseline Yosys-style passes this package provides. They take no
// options; the smaRTLy passes (satmux, rebuild, smartly) are registered
// by internal/core.
func init() {
	Register(PassSpec{
		Name:    "opt_expr",
		Summary: "constant folding and trivial expression rewrites",
		Build:   func(Args) (Pass, error) { return ExprPass{}, nil },
	})
	Register(PassSpec{
		Name:    "opt_muxtree",
		Summary: "baseline muxtree pruning (path-local facts only)",
		Build:   func(Args) (Pass, error) { return MuxtreePass{}, nil },
	})
	Register(PassSpec{
		Name:    "opt_clean",
		Summary: "dead cell and wire removal",
		Build:   func(Args) (Pass, error) { return CleanPass{}, nil },
	})
	Register(PassSpec{
		Name:    "opt_reduce",
		Summary: "operand deduplication for reduce/mux cells",
		Build:   func(Args) (Pass, error) { return ReducePass{}, nil },
	})
}
