package opt

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Ctx is the engine context threaded through every pass. It carries the
// caller's context.Context (cancellation and deadlines), the worker
// budget for parallel stages (SAT-mux query batches, design-level and
// harness fan-out), a per-pass timing sink and a structured log
// function.
//
// A nil *Ctx is valid everywhere and behaves like a background context
// with a single worker, no timing sink and no logging, so sequential
// callers and tests need not construct one.
type Ctx struct {
	ctx      context.Context
	workers  int
	logf     func(format string, args ...any)
	progress func(PassEvent)
	module   string // label stamped on progress events ("" = unlabeled)

	mu  sync.Mutex
	rep *reportCollector
}

// PassEvent is one structured progress observation: a pass invocation
// that just completed. Unlike the RunReport (a snapshot at the end of a
// run), events stream while the run is in flight, so a serving layer
// can surface live progress for long optimizations. Events carry wall
// time regardless of the timings option — they are progress telemetry,
// never part of a deterministic report or cached payload.
type PassEvent struct {
	// Module labels the module being optimized (set by design-level
	// runs; "" for single-module runs).
	Module string
	// Pass is the pass (or composite wrapper) name.
	Pass string
	// Calls counts completed invocations of this pass so far, Last the
	// duration of the invocation that just finished, Total the summed
	// duration across invocations — all within this module's context.
	Calls int
	Last  time.Duration
	Total time.Duration
}

// Config configures a new engine context.
type Config struct {
	// Workers bounds the goroutines used by parallel stages. 0 means
	// runtime.GOMAXPROCS(0); 1 forces fully sequential execution.
	// Results are identical for every value (deterministic merges).
	Workers int
	// Logf receives structured progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Progress receives one PassEvent per completed pass invocation;
	// nil discards them. Calls are serialized.
	Progress func(PassEvent)
	// Module labels this context's progress events.
	Module string
}

// NewCtx builds an engine context on top of parent (nil = Background).
func NewCtx(parent context.Context, cfg Config) *Ctx {
	if parent == nil {
		parent = context.Background()
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	logf := cfg.Logf
	if logf != nil {
		// Serialize: design-level runs call the sink from many goroutines.
		var mu sync.Mutex
		inner := logf
		logf = func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			inner(format, args...)
		}
	}
	progress := cfg.Progress
	if progress != nil {
		// Serialize for the same reason; child contexts route through
		// their parent's wrapped sink, so cross-module events serialize
		// on the parent mutex.
		var mu sync.Mutex
		inner := progress
		progress = func(ev PassEvent) {
			mu.Lock()
			defer mu.Unlock()
			inner(ev)
		}
	}
	return &Ctx{ctx: parent, workers: w, logf: logf, progress: progress,
		module: cfg.Module, rep: newReportCollector()}
}

// Background returns an engine context over context.Background with the
// default worker budget.
func Background() *Ctx { return NewCtx(context.Background(), Config{}) }

// Context returns the underlying context.Context (never nil).
func (c *Ctx) Context() context.Context {
	if c == nil || c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Err reports the cancellation state of the underlying context.
func (c *Ctx) Err() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}

// Workers returns the worker budget (always >= 1).
func (c *Ctx) Workers() int {
	if c == nil || c.workers < 1 {
		return 1
	}
	return c.workers
}

// Logf emits one log line to the configured sink; no-op without one.
func (c *Ctx) Logf(format string, args ...any) {
	if c == nil || c.logf == nil {
		return
	}
	c.logf(format, args...)
}

// PassTiming aggregates the run count and total wall time of one pass.
type PassTiming struct {
	Name  string
	Calls int
	Total time.Duration
}

// StartPass records the start of a named pass and returns the function
// that records its completion (returning the measured duration). Safe
// for concurrent use: design-level runs share one Ctx across modules.
func (c *Ctx) StartPass(name string) func() time.Duration {
	if c == nil {
		return func() time.Duration { return 0 }
	}
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		c.mu.Lock()
		calls, total := c.rep.recordTiming(name, d)
		c.mu.Unlock()
		c.Logf("pass=%s last=%s calls=%d total=%s", name, d, calls, total)
		if c.progress != nil {
			c.progress(PassEvent{Module: c.module, Pass: name, Calls: calls, Last: d, Total: total})
		}
		return d
	}
}

// recordPass merges one leaf-pass invocation into the run report.
func (c *Ctx) recordPass(name string, res Result, d time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rep.recordPass(name, res, d)
}

// recordFixpoint merges one fixpoint invocation into the run report.
func (c *Ctx) recordFixpoint(name string, iters int, converged bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rep.recordFixpoint(name, iters, converged)
}

// Timings returns a snapshot of the per-pass timings, sorted by name.
func (c *Ctx) Timings() []PassTiming {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PassTiming, 0, len(c.rep.timeOnly))
	for _, t := range c.rep.timeOnly {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
