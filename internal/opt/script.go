package opt

import (
	"fmt"
	"strings"
)

// ParseFlow parses a Yosys-style flow script into a Flow. The grammar:
//
//	flow  := step { ";" step }
//	step  := name [ "(" [ args ] ")" ] [ "{" flow "}" ]
//	args  := key "=" value { "," key "=" value }
//	name  := ident        (a registered pass, or "fixpoint")
//	value := [^,;(){}= \t\n]+
//
// A "{ flow }" body is only valid on the fixpoint wrapper. Pass names
// and options are validated against the registry; errors carry the
// script position as "script:line:col".
func ParseFlow(script string) (*Flow, error) {
	p := &flowParser{src: script}
	steps, err := p.parseSteps(false)
	if err != nil {
		return nil, err
	}
	if len(steps) == 0 {
		return nil, p.errf(p.pos, "empty flow script")
	}
	return &Flow{steps: steps}, nil
}

// checkStep validates a step's name, option keys and option values
// against the registry. It returns the index of the offending arg
// (-1 for a step-level problem) so the parser can point at it.
func checkStep(s Step) (int, error) {
	spec, err := stepSpec(s)
	if err != nil {
		return -1, err
	}
	seen := map[string]bool{}
	for i, a := range s.Args {
		o, ok := spec.option(a.Key)
		if !ok {
			return i, fmt.Errorf("pass %s: unknown option %q%s", s.Name, a.Key, optionHint(spec))
		}
		if seen[a.Key] {
			return i, fmt.Errorf("pass %s: duplicate option %q", s.Name, a.Key)
		}
		seen[a.Key] = true
		if err := o.check(a.Value); err != nil {
			return i, fmt.Errorf("pass %s: option %s: %w", s.Name, a.Key, err)
		}
	}
	if s.Body != nil && len(s.Body.steps) == 0 {
		return -1, fmt.Errorf("%s: empty body", s.Name)
	}
	return -1, nil
}

// optionHint lists a spec's option keys for unknown-option errors.
func optionHint(spec PassSpec) string {
	if len(spec.Options) == 0 {
		return " (pass takes no options)"
	}
	keys := make([]string, len(spec.Options))
	for i, o := range spec.Options {
		keys[i] = o.Key
	}
	return " (have " + strings.Join(keys, ", ") + ")"
}

type flowParser struct {
	src string
	pos int
}

// errf builds a positional "script:line:col: msg" error.
func (p *flowParser) errf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for _, r := range p.src[:min(pos, len(p.src))] {
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("opt: script:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (p *flowParser) skipSpace() {
	for p.pos < len(p.src) && isSpace(p.src[p.pos]) {
		p.pos++
	}
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (p *flowParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

// parseSteps parses a ";"-separated step list, stopping at EOF or — in
// a fixpoint body — at the closing brace. Empty statements (stray or
// trailing semicolons) are tolerated, matching Yosys script behaviour.
func (p *flowParser) parseSteps(inBody bool) ([]Step, error) {
	var steps []Step
	for {
		switch c := p.peek(); {
		case c == 0:
			return steps, nil
		case c == '}' && inBody:
			return steps, nil
		case c == ';':
			p.pos++
			continue
		}
		s, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		steps = append(steps, s)
		switch c := p.peek(); {
		case c == 0:
			return steps, nil
		case c == '}' && inBody:
			return steps, nil
		case c == ';':
			p.pos++
		default:
			return nil, p.errf(p.pos, "expected ';' between steps, found %q", string(c))
		}
	}
}

func (p *flowParser) parseStep() (Step, error) {
	namePos := p.pos
	name, err := p.ident("pass name")
	if err != nil {
		return Step{}, err
	}
	s := Step{Name: name}
	var argPos []int
	if p.peek() == '(' {
		p.pos++
		if s.Args, argPos, err = p.parseArgs(); err != nil {
			return Step{}, err
		}
	}
	if p.peek() == '{' {
		openPos := p.pos
		p.pos++
		body, err := p.parseSteps(true)
		if err != nil {
			return Step{}, err
		}
		if p.peek() != '}' {
			return Step{}, p.errf(p.pos, "unclosed '{' opened at offset %d", openPos)
		}
		p.pos++
		s.Body = &Flow{steps: body}
	}
	if i, err := checkStep(s); err != nil {
		pos := namePos
		if i >= 0 && i < len(argPos) {
			pos = argPos[i]
		}
		return Step{}, p.errf(pos, "%s", err)
	}
	return s, nil
}

// parseArgs parses "key=value {, key=value}" up to and including the
// closing parenthesis; an immediate ")" means no args. It returns the
// args and the source offset of each key for error reporting.
func (p *flowParser) parseArgs() ([]Arg, []int, error) {
	var args []Arg
	var argPos []int
	if p.peek() == ')' {
		p.pos++
		return nil, nil, nil
	}
	for {
		keyPos := p.pos
		key, err := p.ident("option key")
		if err != nil {
			return nil, nil, err
		}
		if p.peek() != '=' {
			return nil, nil, p.errf(p.pos, "expected '=' after option key %q", key)
		}
		p.pos++
		val, err := p.value()
		if err != nil {
			return nil, nil, err
		}
		args = append(args, Arg{Key: key, Value: val})
		argPos = append(argPos, keyPos)
		switch p.peek() {
		case ',':
			p.pos++
		case ')':
			p.pos++
			return args, argPos, nil
		default:
			return nil, nil, p.errf(p.pos, "expected ',' or ')' in option list")
		}
	}
}

// ident consumes an identifier ([A-Za-z_][A-Za-z0-9_]*).
func (p *flowParser) ident(what string) (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos], p.pos > start) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf(start, "expected %s", what)
	}
	return p.src[start:p.pos], nil
}

// value consumes an option value: any run of bytes up to a delimiter.
func (p *flowParser) value() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && !isSpace(p.src[p.pos]) && !strings.ContainsRune(",;(){}=", rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf(start, "expected option value")
	}
	return p.src[start:p.pos], nil
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isIdentByte(c byte, notFirst bool) bool {
	if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' {
		return true
	}
	return notFirst && c >= '0' && c <= '9'
}

// isIdent reports whether s is a valid pass/option identifier.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i], i > 0) {
			return false
		}
	}
	return true
}
