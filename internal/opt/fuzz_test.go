package opt

import (
	"math/rand"
	"testing"

	"repro/internal/cec"
	"repro/internal/rtlil"
)

// randomMuxModule builds random netlists biased toward muxtree shapes:
// nested muxes with shared or derived controls, eq-driven selects, and
// partially constant data — the structures the passes rewrite.
func randomMuxModule(rng *rand.Rand) *rtlil.Module {
	m := rtlil.NewModule("fuzz")
	var bits []rtlil.SigSpec
	var words []rtlil.SigSpec
	for i := 0; i < 3; i++ {
		bits = append(bits, m.AddInput(string(rune('s'+i)), 1).Bits())
	}
	for i := 0; i < 4; i++ {
		words = append(words, m.AddInput(string(rune('a'+i)), 3).Bits())
	}
	pickBit := func() rtlil.SigSpec { return bits[rng.Intn(len(bits))] }
	pickWord := func() rtlil.SigSpec { return words[rng.Intn(len(words))] }

	for i := 0; i < 10; i++ {
		switch rng.Intn(7) {
		case 0:
			bits = append(bits, m.Or(pickBit(), pickBit()))
		case 1:
			bits = append(bits, m.And(pickBit(), pickBit()))
		case 2:
			bits = append(bits, m.Not(pickBit()))
		case 3:
			bits = append(bits, m.Eq(pickWord(), rtlil.Const(uint64(rng.Intn(8)), 3)))
		case 4:
			words = append(words, m.Mux(pickWord(), pickWord(), pickBit()))
		case 5:
			// Partially constant data word.
			w := pickWord()
			words = append(words, rtlil.Concat(w.Extract(0, 2), rtlil.Const(uint64(rng.Intn(2)), 1)))
		case 6:
			sel := rtlil.Concat(pickBit(), pickBit())
			words = append(words, m.Pmux(pickWord(), []rtlil.SigSpec{pickWord(), pickWord()}, sel))
		}
	}
	y := m.AddOutput("y", 3)
	m.Connect(y.Bits(), words[len(words)-1])
	y2 := m.AddOutput("y2", 1)
	m.Connect(y2.Bits(), bits[len(bits)-1])
	return m
}

// TestFuzzPassesPreserveEquivalence runs every baseline pass combination
// over many random muxtree-shaped netlists and proves each result
// equivalent to the original.
func TestFuzzPassesPreserveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	combos := []struct {
		name   string
		passes func() []Pass
	}{
		{"expr", func() []Pass { return []Pass{ExprPass{}} }},
		{"muxtree", func() []Pass { return []Pass{MuxtreePass{}} }},
		{"clean", func() []Pass { return []Pass{CleanPass{}} }},
		{"expr_muxtree_clean", func() []Pass { return []Pass{ExprPass{}, MuxtreePass{}, CleanPass{}} }},
		{"fixpoint", func() []Pass { return []Pass{Fixpoint(0, ExprPass{}, MuxtreePass{}, CleanPass{})} }},
	}
	for trial := 0; trial < 40; trial++ {
		m := randomMuxModule(rng)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid module: %v", trial, err)
		}
		for _, combo := range combos {
			work := m.Clone()
			if _, err := RunScript(nil, work, combo.passes()...); err != nil {
				t.Fatalf("trial %d %s: %v", trial, combo.name, err)
			}
			if err := work.Validate(); err != nil {
				t.Fatalf("trial %d %s: pass left invalid module: %v", trial, combo.name, err)
			}
			if err := cec.Check(m, work, &cec.Options{RandomRounds: 2}); err != nil {
				t.Fatalf("trial %d %s: %v", trial, combo.name, err)
			}
		}
	}
}

// TestFuzzPassesIdempotent: running a fixpoint pipeline twice must not
// change the circuit the second time.
func TestFuzzPassesIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 15; trial++ {
		m := randomMuxModule(rng)
		pipe := func() Pass { return Fixpoint(0, ExprPass{}, MuxtreePass{}, CleanPass{}) }
		if _, err := pipe().Run(nil, m); err != nil {
			t.Fatal(err)
		}
		r, err := pipe().Run(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		if r.Changed {
			t.Errorf("trial %d: second fixpoint run still changed the module: %s", trial, r)
		}
	}
}
