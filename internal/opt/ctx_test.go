package opt

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/rtlil"
)

func TestNilCtxDefaults(t *testing.T) {
	var c *Ctx
	if c.Workers() != 1 {
		t.Errorf("nil ctx workers = %d, want 1", c.Workers())
	}
	if c.Err() != nil {
		t.Errorf("nil ctx err = %v", c.Err())
	}
	if c.Context() == nil {
		t.Error("nil ctx context is nil")
	}
	c.Logf("ignored %d", 1)
	c.StartPass("x")() // must not panic
	if got := c.Timings(); got != nil {
		t.Errorf("nil ctx timings = %v", got)
	}
}

func TestCtxWorkersAndTimings(t *testing.T) {
	c := NewCtx(nil, Config{Workers: 3})
	if c.Workers() != 3 {
		t.Errorf("workers = %d, want 3", c.Workers())
	}
	if NewCtx(nil, Config{}).Workers() < 1 {
		t.Error("default workers < 1")
	}
	done := c.StartPass("demo")
	done()
	c.StartPass("demo")()
	ts := c.Timings()
	if len(ts) != 1 || ts[0].Name != "demo" || ts[0].Calls != 2 {
		t.Errorf("timings = %+v", ts)
	}
}

func TestCtxLogfSink(t *testing.T) {
	var lines atomic.Int32
	c := NewCtx(nil, Config{Logf: func(string, ...any) { lines.Add(1) }})
	c.Logf("hello")
	c.StartPass("p")()
	if lines.Load() != 2 {
		t.Errorf("log lines = %d, want 2", lines.Load())
	}
}

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		out := make([]int32, 100)
		if err := ForEach(context.Background(), workers, len(out), func(i int) {
			atomic.AddInt32(&out[i], 1)
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, v)
			}
		}
	}
}

func TestForEachCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := ForEach(ctx, 4, 50, func(i int) { atomic.AddInt32(&ran, 1) })
	if err == nil {
		t.Error("canceled ForEach returned nil error")
	}
	if got := atomic.LoadInt32(&ran); got == 50 {
		t.Error("canceled ForEach still ran every item")
	}
}

// TestFixpointRespectsCancellation: the fixpoint driver must stop at a
// canceled context instead of iterating to convergence.
func TestFixpointRespectsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewCtx(ctx, Config{})
	m := rtlil.NewModule("cancel")
	a := m.AddInput("a", 2).Bits()
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), m.And(a, rtlil.Const(0, 2)))
	if _, err := Fixpoint(0, ExprPass{}, CleanPass{}).Run(c, m); err == nil {
		t.Error("canceled fixpoint reported success")
	}
}
