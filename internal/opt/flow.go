package opt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rtlil"
)

// Arg is one key=value option of a flow step, kept in source order so
// String() reproduces the script as written.
type Arg struct {
	Key, Value string
}

// Step is one statement of a flow script: a registered pass invocation
// `name(key=value, ...)`, or a `fixpoint(...) { body }` wrapper when
// Body is non-nil.
type Step struct {
	Name string
	Args []Arg
	// Body is the wrapped sub-flow of a fixpoint step; nil for plain
	// pass steps.
	Body *Flow
}

// Flow is a validated, compilable sequence of optimization steps — the
// parsed form of a Yosys-style script like
//
//	opt_expr; satmux(conflicts=64); rebuild; opt_clean
//
// A Flow is immutable once built; Compile constructs fresh pass
// instances for every run, so one Flow may drive many concurrent runs.
type Flow struct {
	steps []Step
}

// FixpointName is the reserved step name of the fixpoint wrapper.
const FixpointName = "fixpoint"

// fixpointSpec validates the options of a fixpoint step.
var fixpointSpec = PassSpec{
	Name:    FixpointName,
	Summary: "repeat the wrapped flow until no pass reports a change",
	Options: []OptionSpec{
		{Key: "iters", Kind: KindInt, Positive: true, Default: "10", Help: "maximum iterations"},
	},
}

// NewFlow builds a flow programmatically from steps, applying the same
// validation as the script parser (registered names, known options,
// well-typed values).
func NewFlow(steps ...Step) (*Flow, error) {
	f := &Flow{steps: steps}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// NewStep builds a plain pass step.
func NewStep(name string, args ...Arg) Step {
	return Step{Name: name, Args: args}
}

// FixpointStep wraps body steps into a fixpoint with the given maximum
// iteration count (0 means the default, 10).
func FixpointStep(iters int, body ...Step) Step {
	s := Step{Name: FixpointName, Body: &Flow{steps: body}}
	if iters > 0 {
		s.Args = []Arg{{Key: "iters", Value: fmt.Sprint(iters)}}
	}
	return s
}

// Steps returns a copy of the flow's steps.
func (f *Flow) Steps() []Step {
	if f == nil {
		return nil
	}
	return append([]Step(nil), f.steps...)
}

func (f *Flow) validate() error {
	for _, s := range f.steps {
		if err := validateStep(s); err != nil {
			return err
		}
	}
	return nil
}

func validateStep(s Step) error {
	if _, err := checkStep(s); err != nil {
		return fmt.Errorf("opt: %w", err)
	}
	if s.Body != nil {
		return s.Body.validate()
	}
	return nil
}

// stepSpec resolves the spec governing a step's options, enforcing the
// shape rules (fixpoint needs a body, plain passes must not have one).
func stepSpec(s Step) (PassSpec, error) {
	if s.Name == FixpointName {
		if s.Body == nil {
			return PassSpec{}, fmt.Errorf("fixpoint needs a { ... } body")
		}
		return fixpointSpec, nil
	}
	if s.Body != nil {
		return PassSpec{}, fmt.Errorf("pass %s does not take a { ... } body", s.Name)
	}
	spec, ok := LookupPass(s.Name)
	if !ok {
		return PassSpec{}, fmt.Errorf("unknown pass %q", s.Name)
	}
	return spec, nil
}

// args converts the ordered Args into the lookup form Build receives.
func (s Step) args() Args {
	m := make(map[string]string, len(s.Args))
	for _, a := range s.Args {
		m[a.Key] = a.Value
	}
	return Args{m: m}
}

// String renders the step in script syntax.
func (s Step) String() string {
	var sb strings.Builder
	sb.WriteString(s.Name)
	if len(s.Args) > 0 {
		sb.WriteByte('(')
		for i, a := range s.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.Key)
			sb.WriteByte('=')
			sb.WriteString(a.Value)
		}
		sb.WriteByte(')')
	}
	if s.Body != nil {
		sb.WriteString(" { ")
		sb.WriteString(s.Body.String())
		sb.WriteString(" }")
	}
	return sb.String()
}

// String renders the flow in script syntax; ParseFlow(f.String())
// round-trips to an equal flow.
func (f *Flow) String() string {
	if f == nil {
		return ""
	}
	parts := make([]string, len(f.steps))
	for i, s := range f.steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}

// Canonical renders the flow in normalized script syntax, the form the
// serving layer uses in cache keys: options are sorted by key and their
// values reduced to a canonical spelling per kind ("TRUE" -> "true",
// "064" -> "64"), so flows that differ only in option order, value
// spelling or script whitespace render identically. Flows with
// different passes, structure or effective option values render
// differently.
func (f *Flow) Canonical() string {
	if f == nil {
		return ""
	}
	parts := make([]string, len(f.steps))
	for i, s := range f.steps {
		parts[i] = s.canonical()
	}
	return strings.Join(parts, "; ")
}

// canonical renders one step with sorted, value-normalized options.
func (s Step) canonical() string {
	spec, err := stepSpec(s)
	var sb strings.Builder
	sb.WriteString(s.Name)
	if len(s.Args) > 0 {
		args := append([]Arg(nil), s.Args...)
		sort.Slice(args, func(i, j int) bool { return args[i].Key < args[j].Key })
		sb.WriteByte('(')
		for i, a := range args {
			if i > 0 {
				sb.WriteString(", ")
			}
			v := a.Value
			if err == nil {
				if o, ok := spec.option(a.Key); ok {
					v = o.Kind.canonicalValue(v)
				}
			}
			sb.WriteString(a.Key)
			sb.WriteByte('=')
			sb.WriteString(v)
		}
		sb.WriteByte(')')
	}
	if s.Body != nil {
		sb.WriteString(" { ")
		sb.WriteString(s.Body.Canonical())
		sb.WriteString(" }")
	}
	return sb.String()
}

// WithArg returns a flow in which every step invoking the named pass —
// including steps inside fixpoint bodies — carries key=value, replacing
// any existing spelling of that option. Steps of other passes are
// untouched; a flow that never invokes the pass comes back equal. The
// result is validated, so an unknown option (or ill-typed value) for
// that pass errors. This is how the bench harness derives ablation
// variants ("the same flow, with satmux(incremental=false)") without
// fragile script-string rewriting.
func (f *Flow) WithArg(pass, key, value string) (*Flow, error) {
	if f == nil {
		return nil, fmt.Errorf("opt: nil flow")
	}
	return NewFlow(withArgSteps(f.steps, pass, key, value)...)
}

func withArgSteps(steps []Step, pass, key, value string) []Step {
	out := make([]Step, len(steps))
	for i, s := range steps {
		if s.Body != nil {
			s.Body = &Flow{steps: withArgSteps(s.Body.steps, pass, key, value)}
		}
		if s.Name == pass {
			args := make([]Arg, 0, len(s.Args)+1)
			for _, a := range s.Args {
				if a.Key != key {
					args = append(args, a)
				}
			}
			s.Args = append(args, Arg{Key: key, Value: value})
		}
		out[i] = s
	}
	return out
}

// Compile builds fresh pass instances for every step. Passes carry
// per-run state (counters, caches), so each run must compile its own
// instances; the Flow itself stays immutable and shareable.
func (f *Flow) Compile() ([]Pass, error) {
	if f == nil {
		return nil, fmt.Errorf("opt: nil flow")
	}
	passes := make([]Pass, 0, len(f.steps))
	for _, s := range f.steps {
		p, err := compileStep(s)
		if err != nil {
			return nil, err
		}
		passes = append(passes, p)
	}
	return passes, nil
}

func compileStep(s Step) (Pass, error) {
	spec, err := stepSpec(s)
	if err != nil {
		return nil, fmt.Errorf("opt: %w", err)
	}
	if s.Name == FixpointName {
		body, err := s.Body.Compile()
		if err != nil {
			return nil, err
		}
		return Fixpoint(s.args().Int("iters", 0), body...), nil
	}
	p, err := spec.Build(s.args())
	if err != nil {
		return nil, fmt.Errorf("opt: pass %s: %w", s.Name, err)
	}
	return p, nil
}

// Run compiles the flow and executes it on the module under c, merging
// the per-pass results exactly like RunScript.
func (f *Flow) Run(c *Ctx, m *rtlil.Module) (Result, error) {
	passes, err := f.Compile()
	if err != nil {
		return newResult(), err
	}
	return RunScript(c, m, passes...)
}
