package opt

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/rtlil"
)

func TestSplitWorkers(t *testing.T) {
	cases := []struct {
		total, modules    int
		wantJobs, wantPer int
	}{
		{1, 1, 1, 1},
		{1, 8, 1, 1},
		{8, 1, 1, 8},
		{8, 8, 8, 1},
		{8, 4, 4, 2},
		{8, 3, 3, 2},
		{4, 8, 4, 1},
		{0, 5, 1, 1}, // non-positive budget clamps to 1
		{6, 0, 1, 6}, // empty design clamps to 1 module
		{16, 5, 5, 3},
	}
	for _, c := range cases {
		jobs, per := SplitWorkers(c.total, c.modules)
		if jobs != c.wantJobs || per != c.wantPer {
			t.Errorf("SplitWorkers(%d, %d) = (%d, %d), want (%d, %d)",
				c.total, c.modules, jobs, per, c.wantJobs, c.wantPer)
		}
		// The split must never oversubscribe the budget.
		total := c.total
		if total < 1 {
			total = 1
		}
		if jobs*per > total {
			t.Errorf("SplitWorkers(%d, %d) oversubscribes: %d*%d > %d",
				c.total, c.modules, jobs, per, total)
		}
	}
}

// redundantModule builds a module with same-control nested muxes that
// opt_muxtree collapses, parameterized so different modules differ.
func redundantModule(name string, levels int) *rtlil.Module {
	m := rtlil.NewModule(name)
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	c := m.AddInput("c", 4).Bits()
	s := m.AddInput("s", 1).Bits()
	cur := m.Mux(b, a, s)
	for i := 0; i < levels; i++ {
		cur = m.Mux(c, cur, s)
	}
	y := m.AddOutput("y", 4).Bits()
	m.Connect(y, cur)
	return m
}

func testDesign(n int) *rtlil.Design {
	d := rtlil.NewDesign()
	for i := 0; i < n; i++ {
		d.AddModule(redundantModule(fmt.Sprintf("mod%d", i), 1+i%4))
	}
	return d
}

func testFlow(t *testing.T) *Flow {
	t.Helper()
	f, err := ParseFlow("opt_muxtree; opt_expr; opt_clean")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRunDesignShardedMatchesSerial is the scheduler's determinism
// contract: for every worker budget and module-jobs split, the
// optimized design (canonical hash) and the per-module reports are
// bit-identical to the fully serial run.
func TestRunDesignShardedMatchesSerial(t *testing.T) {
	f := testFlow(t)
	const modules = 8
	serial := testDesign(modules)
	runsSerial, err := f.RunDesign(NewCtx(nil, Config{Workers: 1}), serial, DesignConfig{ModuleJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantHash := rtlil.CanonicalHashDesign(serial)

	for _, workers := range []int{1, 2, 3, 8, 16} {
		for _, moduleJobs := range []int{0, 1, 2, 8} {
			d := testDesign(modules)
			runs, err := f.RunDesign(NewCtx(nil, Config{Workers: workers}), d, DesignConfig{ModuleJobs: moduleJobs})
			if err != nil {
				t.Fatalf("workers=%d moduleJobs=%d: %v", workers, moduleJobs, err)
			}
			if got := rtlil.CanonicalHashDesign(d); got != wantHash {
				t.Errorf("workers=%d moduleJobs=%d: design hash %s, want %s", workers, moduleJobs, got, wantHash)
			}
			if len(runs) != modules {
				t.Fatalf("workers=%d moduleJobs=%d: %d runs, want %d", workers, moduleJobs, len(runs), modules)
			}
			for i := range runs {
				got, want := runs[i].Report, runsSerial[i].Report
				got.StripTimings()
				want.StripTimings()
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("workers=%d moduleJobs=%d module %s: report %+v, want %+v",
						workers, moduleJobs, runs[i].Module.Name, got, want)
				}
			}
		}
	}
}

// TestRunDesignPerModuleReports checks each ModuleRun pairs the
// design's module with its own (not aggregate) report.
func TestRunDesignPerModuleReports(t *testing.T) {
	f := testFlow(t)
	d := testDesign(3)
	runs, err := f.RunDesign(Background(), d, DesignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mods := d.Modules()
	for i := range runs {
		if runs[i].Module != mods[i] {
			t.Errorf("run %d module %v, want design order %v", i, runs[i].Module.Name, mods[i].Name)
		}
		if !runs[i].Report.Changed {
			t.Errorf("module %s report unchanged, want collapsed muxes", mods[i].Name)
		}
		if runs[i].Report.Duration == 0 {
			t.Errorf("module %s report has no wall time", mods[i].Name)
		}
	}
}

// TestRunDesignCancellation: a canceled context aborts the run with the
// context error; already-optimized modules stay individually sound.
func TestRunDesignCancellation(t *testing.T) {
	f := testFlow(t)
	d := testDesign(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.RunDesign(NewCtx(ctx, Config{Workers: 2}), d, DesignConfig{})
	if err == nil {
		t.Fatal("canceled design run returned nil error")
	}
}

// TestRunDesignInvalidFlowFailsBeforeMutation: a flow that cannot
// compile must fail without touching any module.
func TestRunDesignInvalidFlowFailsBeforeMutation(t *testing.T) {
	bad := &Flow{steps: []Step{{Name: "no_such_pass"}}}
	d := testDesign(2)
	before := rtlil.CanonicalHashDesign(d)
	if _, err := bad.RunDesign(Background(), d, DesignConfig{}); err == nil {
		t.Fatal("invalid flow ran")
	}
	if got := rtlil.CanonicalHashDesign(d); got != before {
		t.Error("failed RunDesign mutated the design")
	}
}

// TestRunDesignMergesTimings: the parent Ctx aggregates pass timings
// across all modules.
func TestRunDesignMergesTimings(t *testing.T) {
	f := testFlow(t)
	d := testDesign(3)
	c := Background()
	if _, err := f.RunDesign(c, d, DesignConfig{}); err != nil {
		t.Fatal(err)
	}
	timings := c.Timings()
	if len(timings) == 0 {
		t.Fatal("no aggregated timings on the design Ctx")
	}
	for _, tm := range timings {
		if tm.Calls < 3 {
			t.Errorf("pass %s timed %d calls, want >= one per module", tm.Name, tm.Calls)
		}
	}
}
