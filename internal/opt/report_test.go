package opt

import "testing"

// TestRunReportCounter covers the value-receiver counter accessor used
// by the bench harness: missing passes and missing keys read as 0.
func TestRunReportCounter(t *testing.T) {
	r := RunReport{Passes: []PassReport{{
		Name:     "smartly_satmux",
		Counters: map[string]int{"sat_calls": 7},
	}}}
	if got := r.Counter("smartly_satmux", "sat_calls"); got != 7 {
		t.Errorf("Counter = %d, want 7", got)
	}
	if got := r.Counter("smartly_satmux", "absent"); got != 0 {
		t.Errorf("missing key = %d, want 0", got)
	}
	if got := r.Counter("nonesuch", "sat_calls"); got != 0 {
		t.Errorf("missing pass = %d, want 0", got)
	}
}
