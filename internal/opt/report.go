package opt

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// PassReport aggregates what one named leaf pass did across all its
// invocations in a run: call count, merged counters and wall time.
type PassReport struct {
	// Name is the pass' Name() (e.g. "smartly_satmux").
	Name string
	// Calls counts how often the pass ran (fixpoints re-run passes).
	Calls int
	// Changed reports whether any invocation rewrote the module.
	Changed bool
	// Counters merges the pass' Result counters across invocations.
	Counters map[string]int
	// Duration is the summed wall time; zero when timings are stripped.
	Duration time.Duration
}

// FixpointReport records the iteration behaviour of one fixpoint
// wrapper in a run.
type FixpointReport struct {
	// Name is the wrapper's Name(), e.g. "fixpoint(opt_expr;opt_clean)".
	Name string
	// Iterations counts executed iterations, summed over invocations.
	Iterations int
	// Converged reports whether the last invocation stopped because the
	// body made no more changes (as opposed to hitting the bound).
	Converged bool
}

// RunReport is the structured result of a flow run: per-pass counters
// and timings in first-execution order, plus per-fixpoint iteration
// counts. With timings stripped the report is fully deterministic.
type RunReport struct {
	// Changed reports whether any pass rewrote the module.
	Changed bool
	// Duration is the wall time of the whole run; zero when stripped.
	Duration time.Duration
	// Passes lists the leaf passes in first-execution order.
	Passes []PassReport
	// Fixpoints lists the fixpoint wrappers in first-execution order.
	Fixpoints []FixpointReport
}

// Counters flattens the per-pass counters into one merged map — the
// shape of the legacy Report.Details.
func (r *RunReport) Counters() map[string]int {
	out := map[string]int{}
	for _, p := range r.Passes {
		for k, v := range p.Counters {
			out[k] += v
		}
	}
	return out
}

// Pass returns the report of the named pass, or nil.
func (r *RunReport) Pass(name string) *PassReport {
	for i := range r.Passes {
		if r.Passes[i].Name == name {
			return &r.Passes[i]
		}
	}
	return nil
}

// Counter returns one counter of one pass (0 when the pass did not run
// or never bumped the key). Value receiver, so it composes directly
// with Ctx.Report().
func (r RunReport) Counter(pass, key string) int {
	p := r.Pass(pass)
	if p == nil {
		return 0
	}
	return p.Counters[key]
}

// StripTimings zeroes every wall-clock field, leaving only the
// deterministic counters and iteration counts.
func (r *RunReport) StripTimings() {
	r.Duration = 0
	for i := range r.Passes {
		r.Passes[i].Duration = 0
	}
}

// String renders the report as a small human-readable table.
func (r *RunReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "changed=%v", r.Changed)
	if r.Duration > 0 {
		fmt.Fprintf(&sb, " total=%s", r.Duration.Round(time.Microsecond))
	}
	sb.WriteByte('\n')
	for _, p := range r.Passes {
		fmt.Fprintf(&sb, "  %-18s calls=%d", p.Name, p.Calls)
		if p.Duration > 0 {
			fmt.Fprintf(&sb, " time=%s", p.Duration.Round(time.Microsecond))
		}
		keys := make([]string, 0, len(p.Counters))
		for k := range p.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, p.Counters[k])
		}
		sb.WriteByte('\n')
	}
	for _, f := range r.Fixpoints {
		fmt.Fprintf(&sb, "  %-18s iterations=%d converged=%v\n", f.Name, f.Iterations, f.Converged)
	}
	return sb.String()
}

// reportCollector accumulates per-pass entries inside a Ctx. It is
// guarded by the Ctx mutex: design-level runs may share one Ctx across
// goroutines (their merged report is then aggregate; per-module reports
// use one Ctx per module).
type reportCollector struct {
	order     []string // leaf passes in first-recorded order
	passes    map[string]*PassReport
	timeOnly  map[string]*PassTiming // StartPass-only entries (wrappers)
	fixOrder  []string
	fixpoints map[string]*FixpointReport
}

func newReportCollector() *reportCollector {
	return &reportCollector{
		passes:    map[string]*PassReport{},
		timeOnly:  map[string]*PassTiming{},
		fixpoints: map[string]*FixpointReport{},
	}
}

// recordPass merges one leaf-pass invocation. Caller holds the Ctx lock.
func (rc *reportCollector) recordPass(name string, res Result, d time.Duration) {
	p := rc.passes[name]
	if p == nil {
		p = &PassReport{Name: name, Counters: map[string]int{}}
		rc.passes[name] = p
		rc.order = append(rc.order, name)
	}
	p.Calls++
	p.Duration += d
	if res.Changed {
		p.Changed = true
	}
	for k, v := range res.Details {
		p.Counters[k] += v
	}
}

// recordTiming merges a timing-only observation (composite passes and
// direct StartPass callers). Caller holds the Ctx lock.
func (rc *reportCollector) recordTiming(name string, d time.Duration) (calls int, total time.Duration) {
	t := rc.timeOnly[name]
	if t == nil {
		t = &PassTiming{Name: name}
		rc.timeOnly[name] = t
	}
	t.Calls++
	t.Total += d
	return t.Calls, t.Total
}

// recordFixpoint merges one fixpoint invocation. Caller holds the lock.
func (rc *reportCollector) recordFixpoint(name string, iters int, converged bool) {
	f := rc.fixpoints[name]
	if f == nil {
		f = &FixpointReport{Name: name}
		rc.fixpoints[name] = f
		rc.fixOrder = append(rc.fixOrder, name)
	}
	f.Iterations += iters
	f.Converged = converged
}

// Report snapshots the collected run report. Counters maps are copied,
// so the snapshot is independent of further recording.
func (c *Ctx) Report() RunReport {
	if c == nil {
		return RunReport{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out RunReport
	for _, name := range c.rep.order {
		p := *c.rep.passes[name]
		p.Counters = make(map[string]int, len(c.rep.passes[name].Counters))
		for k, v := range c.rep.passes[name].Counters {
			p.Counters[k] = v
		}
		if p.Changed {
			out.Changed = true
		}
		out.Duration += p.Duration
		out.Passes = append(out.Passes, p)
	}
	for _, name := range c.rep.fixOrder {
		out.Fixpoints = append(out.Fixpoints, *c.rep.fixpoints[name])
	}
	return out
}
