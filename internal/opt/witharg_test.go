package opt

import "testing"

// The baseline passes this package registers take no options, so the
// override test registers its own optioned probe pass.
func init() {
	Register(PassSpec{
		Name:    "witharg_probe",
		Summary: "test-only pass with one option",
		Options: []OptionSpec{
			{Key: "mode", Kind: KindBool, Default: "true", Help: "probe switch"},
		},
		Build: func(Args) (Pass, error) { return CleanPass{}, nil },
	})
}

// TestFlowWithArg covers the option-override used to derive ablation
// flow variants: the target pass gains (or replaces) the option, fixpoint
// bodies are rewritten recursively, other passes and the source flow are
// untouched, and invalid options are rejected by validation.
func TestFlowWithArg(t *testing.T) {
	const src = "opt_expr; fixpoint { witharg_probe; opt_clean }; witharg_probe(mode=true)"
	f, err := ParseFlow(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.WithArg("witharg_probe", "mode", "false")
	if err != nil {
		t.Fatal(err)
	}
	want := "opt_expr; fixpoint { witharg_probe(mode=false); opt_clean }; witharg_probe(mode=false)"
	if got.String() != want {
		t.Errorf("WithArg:\n got %s\nwant %s", got.String(), want)
	}
	// The source flow is unchanged (flows are immutable).
	if f.String() != src {
		t.Errorf("source flow mutated: %s", f.String())
	}
	// A flow without the pass comes back equal.
	same, err := got.WithArg("opt_reduce", "mode", "false")
	if err != nil {
		t.Fatal(err)
	}
	if same.String() != got.String() {
		t.Errorf("unrelated pass rewritten: %s", same.String())
	}
	// Unknown options for the pass fail validation.
	if _, err := f.WithArg("witharg_probe", "no_such_option", "1"); err == nil {
		t.Error("unknown option accepted")
	}
	if _, err := (*Flow)(nil).WithArg("witharg_probe", "mode", "false"); err == nil {
		t.Error("nil flow accepted")
	}
}
