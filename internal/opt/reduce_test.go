package opt

import (
	"math/rand"
	"testing"

	"repro/internal/cec"
	"repro/internal/rtlil"
)

func TestReduceMergesIdenticalCells(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	y1 := m.AddOutput("y1", 4).Bits()
	y2 := m.AddOutput("y2", 4).Bits()
	m.AddBinary(rtlil.CellAnd, "g1", a, b, y1)
	m.AddBinary(rtlil.CellAnd, "g2", b, a, y2) // commuted duplicate
	orig := m.Clone()

	r, err := (ReducePass{}).Run(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Details["cells_merged"] != 1 {
		t.Errorf("cells_merged = %d, want 1", r.Details["cells_merged"])
	}
	if m.NumCells() != 1 {
		t.Errorf("cells = %d, want 1", m.NumCells())
	}
	if err := cec.Check(orig, m, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceKeepsNonCommutedDistinct(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 4).Bits()
	b := m.AddInput("b", 4).Bits()
	y1 := m.AddOutput("y1", 4).Bits()
	y2 := m.AddOutput("y2", 4).Bits()
	m.AddBinary(rtlil.CellSub, "g1", a, b, y1)
	m.AddBinary(rtlil.CellSub, "g2", b, a, y2) // NOT equivalent for $sub
	if _, err := (ReducePass{}).Run(nil, m); err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 2 {
		t.Errorf("non-commutative cells merged: %d cells", m.NumCells())
	}
}

func TestReduceMergesThroughAliases(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 2).Bits()
	alias := m.NewWire(2)
	m.Connect(alias.Bits(), a)
	y1 := m.AddOutput("y1", 2).Bits()
	y2 := m.AddOutput("y2", 2).Bits()
	m.AddUnary(rtlil.CellNot, "g1", a, y1)
	m.AddUnary(rtlil.CellNot, "g2", alias.Bits(), y2) // same input via alias
	orig := m.Clone()
	r, err := (ReducePass{}).Run(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Details["cells_merged"] != 1 {
		t.Errorf("alias duplicate not merged: %v", r)
	}
	if err := cec.Check(orig, m, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSharesPmuxWords(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 4).Bits()
	w1 := m.AddInput("w1", 4).Bits()
	s := m.AddInput("s", 3).Bits()
	y := m.AddOutput("y", 4).Bits()
	// Words: w1, w1, a — the two w1 words must merge.
	m.AddPmux("p", a, []rtlil.SigSpec{w1, w1, a}, s, y)
	orig := m.Clone()

	r, err := (ReducePass{}).Run(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Details["pmux_words_shared"] != 1 {
		t.Fatalf("pmux not reduced: %v", r)
	}
	var pm *rtlil.Cell
	for _, c := range m.Cells() {
		if c.Type == rtlil.CellPmux {
			pm = c
		}
	}
	if pm == nil || pm.Param("S_WIDTH") != 2 {
		t.Errorf("pmux S_WIDTH after sharing: %v", pm)
	}
	if err := cec.Check(orig, m, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReducePmuxToMux(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 2).Bits()
	w := m.AddInput("w", 2).Bits()
	s := m.AddInput("s", 2).Bits()
	y := m.AddOutput("y", 2).Bits()
	m.AddPmux("p", a, []rtlil.SigSpec{w, w}, s, y)
	orig := m.Clone()
	if _, err := (ReducePass{}).Run(nil, m); err != nil {
		t.Fatal(err)
	}
	if n := countType(m, rtlil.CellPmux); n != 0 {
		t.Errorf("pmux left: %d", n)
	}
	if n := countType(m, rtlil.CellMux); n != 1 {
		t.Errorf("muxes: %d, want 1", n)
	}
	if err := cec.Check(orig, m, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReduceFuzz runs ReducePass over random netlists with deliberately
// duplicated structure and equivalence-checks every result.
func TestReduceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		m := randomMuxModule(rng)
		// Duplicate a random cell's structure to give Reduce targets.
		cells := m.Cells()
		if len(cells) > 0 {
			c := cells[rng.Intn(len(cells))]
			if !rtlil.IsSequential(c.Type) {
				dup := m.AddCell("", c.Type)
				for k, v := range c.Params {
					dup.Params[k] = v
				}
				for _, p := range rtlil.InputPorts(c.Type) {
					dup.Conn[p] = c.Port(p).Copy()
				}
				newY := m.NewWire(len(c.Port(rtlil.OutputPorts(c.Type)[0])))
				dup.Conn[rtlil.OutputPorts(c.Type)[0]] = newY.Bits()
				y2 := m.AddOutput("dup_out", newY.Width)
				m.Connect(y2.Bits(), newY.Bits())
			}
		}
		orig := m.Clone()
		if _, err := RunScript(nil, m, ReducePass{}, CleanPass{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: invalid: %v", trial, err)
		}
		if err := cec.Check(orig, m, &cec.Options{RandomRounds: 2}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
