package opt

import (
	"strings"
	"testing"

	"repro/internal/rtlil"
)

func TestParseFlowBasics(t *testing.T) {
	f, err := ParseFlow("opt_expr; opt_muxtree; opt_clean")
	if err != nil {
		t.Fatal(err)
	}
	steps := f.Steps()
	if len(steps) != 3 || steps[0].Name != "opt_expr" || steps[2].Name != "opt_clean" {
		t.Fatalf("steps = %+v", steps)
	}
	passes, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 3 || passes[1].Name() != "opt_muxtree" {
		t.Fatalf("compiled = %v", passes)
	}
}

func TestParseFlowFixpoint(t *testing.T) {
	f, err := ParseFlow("fixpoint(iters=3) { opt_expr; opt_clean }")
	if err != nil {
		t.Fatal(err)
	}
	passes, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 {
		t.Fatalf("compiled %d passes, want 1", len(passes))
	}
	if got := passes[0].Name(); got != "fixpoint(opt_expr;opt_clean)" {
		t.Errorf("fixpoint name = %q", got)
	}
}

func TestParseFlowTolerance(t *testing.T) {
	for _, script := range []string{
		"opt_expr;",                          // trailing semicolon
		" opt_expr ;; opt_clean ",            // empty statement, spaces
		"opt_expr()",                         // empty parens
		"fixpoint { opt_expr }",              // no args on fixpoint
		"fixpoint(iters=2) {opt_clean;}",     // trailing ; in body
		"opt_expr;\n  opt_clean\n",           // newlines as whitespace
		"fixpoint { fixpoint { opt_expr } }", // nesting
	} {
		if _, err := ParseFlow(script); err != nil {
			t.Errorf("ParseFlow(%q) = %v", script, err)
		}
	}
}

func TestParseFlowErrors(t *testing.T) {
	cases := []struct {
		script, wantErr string
	}{
		{"", "empty flow"},
		{";;", "empty flow"},
		{"bogus_pass", `unknown pass "bogus_pass"`},
		{"opt_expr; bogus", "script:1:11"},
		{"opt_expr(foo=1)", "unknown option"},
		{"opt_expr opt_clean", "expected ';'"},
		{"fixpoint { }", "empty body"},
		{"fixpoint", "needs a { ... } body"},
		{"opt_expr { opt_clean }", "does not take"},
		{"fixpoint(iters=x) { opt_expr }", "invalid int value"},
		{"fixpoint(iters=0) { opt_expr }", "out of range"},
		{"fixpoint(iters=-3) { opt_expr }", "out of range"},
		{"fixpoint(iters=1, iters=2) { opt_expr }", "duplicate option"},
		{"fixpoint(iters=1 { opt_expr }", "expected ',' or ')'"},
		{"fixpoint(iters) { opt_expr }", "expected '='"},
		{"fixpoint(iters=2) { opt_expr", "unclosed '{'"},
		{"opt_expr(", "expected option key"},
		{"(", "expected pass name"},
	}
	for _, c := range cases {
		_, err := ParseFlow(c.script)
		if err == nil {
			t.Errorf("ParseFlow(%q) succeeded, want error containing %q", c.script, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ParseFlow(%q) = %v, want error containing %q", c.script, err, c.wantErr)
		}
		if !strings.Contains(err.Error(), "script:") {
			t.Errorf("ParseFlow(%q) error lacks position: %v", c.script, err)
		}
	}
}

func TestParseFlowErrorPositions(t *testing.T) {
	_, err := ParseFlow("opt_expr; nope_pass")
	if err == nil || !strings.Contains(err.Error(), "script:1:11") {
		t.Errorf("unknown pass position: %v", err)
	}
	_, err = ParseFlow("opt_expr;\nopt_clean(bad=1)")
	if err == nil || !strings.Contains(err.Error(), "script:2:11") {
		t.Errorf("unknown option position: %v", err)
	}
}

func TestFlowStringRoundTrip(t *testing.T) {
	for _, script := range []string{
		"opt_expr",
		"opt_expr; opt_muxtree; opt_clean",
		"fixpoint(iters=3) { opt_expr; opt_clean }",
		"fixpoint { opt_expr; fixpoint { opt_clean } }",
		"  opt_expr ;; opt_clean ;",
	} {
		f1, err := ParseFlow(script)
		if err != nil {
			t.Fatalf("ParseFlow(%q): %v", script, err)
		}
		f2, err := ParseFlow(f1.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", f1.String(), script, err)
		}
		if f1.String() != f2.String() {
			t.Errorf("round trip: %q -> %q", f1.String(), f2.String())
		}
	}
}

func TestNewFlowValidates(t *testing.T) {
	f, err := NewFlow(NewStep("opt_expr"), FixpointStep(5, NewStep("opt_clean")))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.String(); got != "opt_expr; fixpoint(iters=5) { opt_clean }" {
		t.Errorf("String = %q", got)
	}
	if _, err := NewFlow(NewStep("nope")); err == nil {
		t.Error("unknown pass accepted")
	}
	if _, err := NewFlow(NewStep("opt_expr", Arg{Key: "x", Value: "1"})); err == nil {
		t.Error("unknown option accepted")
	}
	if _, err := NewFlow(FixpointStep(1)); err == nil {
		t.Error("empty fixpoint body accepted")
	}
}

func TestRegistrySpecs(t *testing.T) {
	for _, name := range []string{"opt_expr", "opt_muxtree", "opt_clean", "opt_reduce"} {
		spec, ok := LookupPass(name)
		if !ok {
			t.Fatalf("pass %s not registered", name)
		}
		p, err := spec.Build(Args{})
		if err != nil || p == nil {
			t.Errorf("Build(%s) = %v, %v", name, p, err)
		}
	}
	if _, ok := LookupPass("fixpoint"); ok {
		t.Error("fixpoint must not be a registry pass")
	}
	names := []string{}
	for _, s := range Passes() {
		names = append(names, s.Name)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Passes() not sorted: %v", names)
		}
	}
}

// TestFlowRunReport: a fixpoint flow run fills the structured report
// with per-pass counters, call counts and fixpoint iterations that
// match the flat legacy Result.
func TestFlowRunReport(t *testing.T) {
	f, err := ParseFlow("fixpoint { opt_expr; opt_clean }")
	if err != nil {
		t.Fatal(err)
	}
	m := rtlil.NewModule("rep")
	a := m.AddInput("a", 4).Bits()
	y := m.AddOutput("y", 4)
	m.Connect(y.Bits(), m.And(a, rtlil.Const(0, 4)))
	c := NewCtx(nil, Config{})
	res, err := f.Run(c, m)
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.Changed != res.Changed || !rep.Changed {
		t.Errorf("report changed=%v, result changed=%v", rep.Changed, res.Changed)
	}
	flat := rep.Counters()
	if len(flat) != len(res.Details) {
		t.Errorf("flat counters %v != result details %v", flat, res.Details)
	}
	for k, v := range res.Details {
		if flat[k] != v {
			t.Errorf("counter %s: report %d, result %d", k, flat[k], v)
		}
	}
	if p := rep.Pass("opt_expr"); p == nil || p.Calls < 2 {
		t.Errorf("opt_expr pass report = %+v (fixpoint should run it at least twice)", p)
	}
	if len(rep.Fixpoints) != 1 || rep.Fixpoints[0].Iterations < 2 || !rep.Fixpoints[0].Converged {
		t.Errorf("fixpoint report = %+v", rep.Fixpoints)
	}
	if rep.Duration == 0 {
		t.Error("report duration missing before strip")
	}
	rep.StripTimings()
	if rep.Duration != 0 || rep.Passes[0].Duration != 0 {
		t.Error("StripTimings left wall-clock values")
	}
	if !strings.Contains(rep.String(), "opt_expr") {
		t.Errorf("report String lacks pass name:\n%s", rep.String())
	}
}

func TestNamedFlowRegistry(t *testing.T) {
	if _, err := NamedFlow("no_such_flow_xyz"); err == nil {
		t.Error("unknown named flow accepted")
	}
}
