package opt

import (
	"fmt"
	"time"

	"repro/internal/rtlil"
)

// Design-level shard scheduler. A multi-module design is optimized by
// fanning its modules out to a bounded worker pool; the caller's worker
// budget is split between the two parallelism axes — how many modules
// run concurrently ("module jobs") and how many goroutines each
// module's own parallel stages may use (SAT-mux query batches) — so the
// total goroutine count stays within the budget instead of
// multiplying. Results are deterministic: modules are disjoint
// netlists, per-module reports are collected in their own contexts and
// merged in design order, so the optimized design and every report are
// bit-identical to a fully serial run for any split.

// DesignConfig tunes one RunDesign invocation.
type DesignConfig struct {
	// ModuleJobs bounds how many modules optimize concurrently. 0
	// derives the bound from the context's worker budget via
	// SplitWorkers; 1 forces module-serial execution (each module still
	// uses the full intra-pass budget). Explicit values are capped by
	// the worker budget, so the fan-out never oversubscribes it.
	ModuleJobs int
}

// SplitWorkers splits a total worker budget between module-level
// fan-out and per-module intra-pass parallelism: as many module jobs as
// modules (capped by the budget), with the remaining budget divided
// evenly among them. The split never oversubscribes: moduleJobs *
// perModule <= max(total, 1).
func SplitWorkers(total, modules int) (moduleJobs, perModule int) {
	if total < 1 {
		total = 1
	}
	if modules < 1 {
		modules = 1
	}
	moduleJobs = total
	if moduleJobs > modules {
		moduleJobs = modules
	}
	perModule = total / moduleJobs
	if perModule < 1 {
		perModule = 1
	}
	return moduleJobs, perModule
}

// ModuleRun is the outcome of one module of a RunDesign call, in design
// order.
type ModuleRun struct {
	// Module is the optimized module (the design's module, mutated in
	// place).
	Module *rtlil.Module
	// Report is the module's structured run report, with Duration set
	// to the module's wall time (callers strip it for deterministic
	// comparison).
	Report RunReport
	// Err is the module's run error, nil on success.
	Err error
}

// RunDesign executes the flow over every module of the design under c,
// splitting c's worker budget between concurrently optimized modules
// and each module's intra-pass parallelism (see SplitWorkers and
// DesignConfig.ModuleJobs). Each module runs under its own child
// context so its report is per-module; pass timings still aggregate
// into c. The returned runs parallel d.Modules(). The error is the
// first per-module error in design order, wrapped with the module name,
// or the context error when the run was canceled mid-shard (modules not
// yet started are skipped; finished ones are individually sound, so the
// design stays equivalent to the input).
func (f *Flow) RunDesign(c *Ctx, d *rtlil.Design, cfg DesignConfig) ([]ModuleRun, error) {
	if f == nil {
		return nil, fmt.Errorf("opt: nil flow")
	}
	// Compile once up front: a flow that cannot compile must fail before
	// any module is mutated, and per-module compiles below cannot fail
	// differently (Compile is deterministic).
	if _, err := f.Compile(); err != nil {
		return nil, err
	}
	mods := d.Modules()
	runs := make([]ModuleRun, len(mods))
	moduleJobs, perModule := SplitWorkers(c.Workers(), len(mods))
	if cfg.ModuleJobs > 0 {
		// An explicit fan-out is still capped by the worker budget (the
		// two axes never multiply past it) and by the module count (a
		// larger value would only shrink each module's intra-pass share
		// for fan-out that cannot exist).
		jobs := cfg.ModuleJobs
		if jobs > len(mods) {
			jobs = len(mods)
		}
		moduleJobs, perModule = SplitWorkers(c.Workers(), jobs)
	}
	ForEach(c.Context(), moduleJobs, len(mods), func(i int) {
		mc := NewCtx(c.Context(), Config{Workers: perModule, Logf: c.sharedLogf(),
			Progress: c.sharedProgress(), Module: mods[i].Name})
		start := time.Now()
		res, err := f.Run(mc, mods[i])
		rep := mc.Report()
		rep.Changed = res.Changed
		rep.Duration = time.Since(start)
		runs[i] = ModuleRun{Module: mods[i], Report: rep, Err: err}
		c.mergeChild(mc)
	})
	var firstErr error
	for i := range runs {
		if runs[i].Err != nil {
			firstErr = fmt.Errorf("module %s: %w", mods[i].Name, runs[i].Err)
			break
		}
	}
	if firstErr == nil {
		firstErr = c.Err()
	}
	return runs, firstErr
}

// sharedLogf exposes the context's (already serialized) log sink for
// child contexts of a design run.
func (c *Ctx) sharedLogf() func(format string, args ...any) {
	if c == nil {
		return nil
	}
	return c.logf
}

// sharedProgress exposes the context's (already serialized) progress
// sink for child contexts of a design run, so per-module events from
// concurrent shards funnel into one ordered stream.
func (c *Ctx) sharedProgress() func(PassEvent) {
	if c == nil {
		return nil
	}
	return c.progress
}

// mergeChild folds a child context's timing observations into c, so a
// design-level Ctx still answers Timings() across all its modules.
func (c *Ctx) mergeChild(child *Ctx) {
	if c == nil || child == nil {
		return
	}
	child.mu.Lock()
	timings := make([]PassTiming, 0, len(child.rep.timeOnly))
	for _, t := range child.rep.timeOnly {
		timings = append(timings, *t)
	}
	child.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range timings {
		tt := c.rep.timeOnly[t.Name]
		if tt == nil {
			tt = &PassTiming{Name: t.Name}
			c.rep.timeOnly[t.Name] = tt
		}
		tt.Calls += t.Calls
		tt.Total += t.Total
	}
}
