package opt

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), fanning out over at most
// workers goroutines. Items are claimed from a shared counter, so the
// assignment of items to goroutines is nondeterministic — callers obtain
// deterministic results by writing into slot i of a pre-sized slice and
// merging in index order afterwards.
//
// When ctx is canceled, unclaimed items are skipped (items already
// started still finish) and the context error is returned.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
