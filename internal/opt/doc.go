// Package opt provides the optimization-pass framework: the Pass
// interface and engine context, the process-wide pass/flow registry
// with its Yosys-style script DSL, structured run reporting, and the
// baseline Yosys-style passes the paper compares against.
//
// # Pass framework
//
// A Pass rewrites one module in place and reports what it did
// (Result). Passes run under a *Ctx, which carries the caller's
// context.Context (cancellation, deadlines), the worker budget for
// parallel stages, a per-pass timing sink and a log sink; a nil *Ctx
// is valid everywhere and behaves sequentially. RunScript executes a
// pass sequence with deterministic result merging; Fixpoint wraps a
// body of passes and repeats it until no pass reports a change.
// ForEach is the shared bounded worker pool: results are bit-identical
// for every worker count.
//
// # Registry and flow scripts
//
// Register adds a PassSpec (name, summary, typed OptionSpecs, factory)
// to the process-wide registry at init time; RegisterFlow adds a named
// flow defined by a script. ParseFlow compiles a Yosys-style script —
//
//	opt_expr; satmux(conflicts=64); rebuild; opt_clean
//	fixpoint(iters=8) { opt_expr; smartly; opt_clean }
//
// — into an immutable *Flow, validating pass names and option values
// against the registry and reporting errors with script:line:col
// positions. Flow.String round-trips the source; Flow.Canonical
// renders the normalized form (options sorted by key, canonical value
// spellings) used by the serving layer's cache keys.
//
// # Design shard scheduler
//
// Flow.RunDesign runs a flow over every module of a design through a
// bounded worker pool, splitting the Ctx worker budget between
// module-level fan-out and each module's intra-pass parallelism
// (SplitWorkers, DesignConfig.ModuleJobs). Each module runs under its
// own child Ctx, so reports stay per-module while timings aggregate
// into the parent; results merge in design order and are bit-identical
// to a serial run for any budget or split.
//
// # Run reports
//
// Ctx collects per-pass counters, call counts, optional wall times and
// fixpoint iteration counts into a RunReport. With timings stripped
// the report is fully deterministic and comparable across runs and
// worker counts.
//
// # Baseline passes
//
// This package registers opt_expr (constant folding), opt_muxtree
// (path-local muxtree pruning, the Yosys baseline), opt_clean (dead
// logic removal) and opt_reduce (operand deduplication). The muxtree
// walker is shared with the smaRTLy passes in internal/core: the
// baseline consults only path-local facts, while smaRTLy plugs in an
// oracle backed by sub-graph extraction, inference rules, simulation
// and SAT.
package opt
