package opt

import (
	"testing"

	"repro/internal/cec"
	"repro/internal/rtlil"
)

// checkSeqEquiv fails the test if the optimized module is not
// sequentially equivalent to the original.
func checkSeqEquiv(t *testing.T, orig, got *rtlil.Module) {
	t.Helper()
	if err := cec.CheckSequential(orig, got, nil); err != nil {
		t.Fatalf("opt_dff broke sequential equivalence: %v", err)
	}
}

// dffTestbench builds a module exercising every opt_dff rewrite class:
// a self-loop register (stuck at reset), a register with D tied to
// constant 0, a duplicate register pair, a register that nobody reads,
// and one genuinely live register.
func dffTestbench() *rtlil.Module {
	m := rtlil.NewModule("bench")
	clk := m.AddInput("clk", 1).Bits()
	x := m.AddInput("x", 4).Bits()

	self := m.NewWire(4)
	m.AddDff("self", clk, self.Bits(), self.Bits())
	zero := m.NewWire(4)
	m.AddDff("zero", clk, rtlil.Const(0, 4), zero.Bits())
	dup1 := m.NewWire(4)
	dup2 := m.NewWire(4)
	m.AddDff("dup1", clk, x, dup1.Bits())
	m.AddDff("dup2", clk, x, dup2.Bits())
	dead := m.NewWire(4)
	m.AddDff("dead", clk, m.Not(x), dead.Bits())
	live := m.NewWire(4)
	m.AddDff("live", clk, m.Xor(x, dup1.Bits()), live.Bits())

	y := m.AddOutput("y", 4)
	m.Connect(y.Bits(), m.Xor(m.Or(self.Bits(), zero.Bits()),
		m.And(dup2.Bits(), live.Bits())))
	return m
}

func countDffs(m *rtlil.Module) int {
	return len(m.SeqCells())
}

func TestDffSweep(t *testing.T) {
	m := dffTestbench()
	orig := m.Clone()
	r, err := RunScript(nil, m, DffPass{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Changed {
		t.Fatal("nothing optimized")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	checkSeqEquiv(t, orig, m)
	// self + zero removed as constants, dup2 merged into dup1, dead
	// removed as unused: dup1 and live survive.
	if got := countDffs(m); got != 2 {
		t.Errorf("registers after sweep = %d, want 2", got)
	}
	for counter, want := range map[string]int{
		"dff_const":   2,
		"dff_merged":  1,
		"dff_unused":  1,
		"dff_removed": 4,
		"dff_proved":  1,
	} {
		if got := r.Details[counter]; got != want {
			t.Errorf("%s = %d, want %d", counter, got, want)
		}
	}
	if r.Details["dff_const_bits"] == 0 {
		t.Error("dff_const_bits = 0, want freed constant bits propagated")
	}
}

// TestDffNonzeroConstKept is the soundness trap: D tied to a nonzero
// constant leaves the reset value after one cycle, so the register must
// survive the sweep.
func TestDffNonzeroConstKept(t *testing.T) {
	m := rtlil.NewModule("m")
	clk := m.AddInput("clk", 1).Bits()
	q := m.NewWire(4)
	m.AddDff("r", clk, rtlil.Const(5, 4), q.Bits())
	y := m.AddOutput("y", 4)
	m.Connect(y.Bits(), q.Bits())
	r, err := RunScript(nil, m, DffPass{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Changed {
		t.Fatalf("nonzero-constant register swept: %+v", r.Details)
	}
	if got := countDffs(m); got != 1 {
		t.Errorf("registers = %d, want 1", got)
	}
}

func TestDffConstConeRemoval(t *testing.T) {
	// A cone of mutually-constant registers: q1' = q1 & x, q2' = q1 | q2.
	// From reset both stay 0; neither D is syntactically constant, so
	// only the greatest-fixpoint simulation finds them.
	m := rtlil.NewModule("m")
	clk := m.AddInput("clk", 1).Bits()
	x := m.AddInput("x", 1).Bits()
	q1 := m.NewWire(1)
	q2 := m.NewWire(1)
	m.AddDff("q1", clk, m.And(q1.Bits(), x), q1.Bits())
	m.AddDff("q2", clk, m.Or(q1.Bits(), q2.Bits()), q2.Bits())
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), m.Xor(q2.Bits(), x))
	orig := m.Clone()
	r, err := RunScript(nil, m, DffPass{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Details["dff_const"]; got != 2 {
		t.Fatalf("dff_const = %d, want 2 (details %+v)", got, r.Details)
	}
	checkSeqEquiv(t, orig, m)
}

func TestDffMulticlock(t *testing.T) {
	m := rtlil.NewModule("m")
	c1 := m.AddInput("clk1", 1).Bits()
	c2 := m.AddInput("clk2", 1).Bits()
	q1 := m.NewWire(1)
	q2 := m.NewWire(1)
	m.AddDff("f1", c1, q1.Bits(), q1.Bits())
	m.AddDff("f2", c2, q2.Bits(), q2.Bits())
	y := m.AddOutput("y", 1)
	m.Connect(y.Bits(), m.Xor(q1.Bits(), q2.Bits()))
	r, err := RunScript(nil, m, DffPass{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Changed {
		t.Fatal("multi-clock module must be skipped")
	}
	if r.Details["dff_multiclock"] != 1 {
		t.Errorf("dff_multiclock = %d, want 1", r.Details["dff_multiclock"])
	}
	if got := countDffs(m); got != 2 {
		t.Errorf("registers = %d, want 2 (untouched)", got)
	}
}

func TestDffCombinationalNoop(t *testing.T) {
	m := rtlil.NewModule("m")
	a := m.AddInput("a", 2).Bits()
	y := m.AddOutput("y", 2)
	m.Connect(y.Bits(), m.Not(a))
	r, err := RunScript(nil, m, DffPass{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Changed || len(r.Details) != 0 {
		t.Fatalf("combinational module not a no-op: %+v", r.Details)
	}
}

// TestDffVerifyOnOffIdentical: the sweep is deterministic, so the
// verified and unverified paths must produce byte-identical netlists.
func TestDffVerifyOnOffIdentical(t *testing.T) {
	src := dffTestbench()
	on := src.Clone()
	off := src.Clone()
	ron, err := RunScript(nil, on, DffPass{})
	if err != nil {
		t.Fatal(err)
	}
	roff, err := RunScript(nil, off, DffPass{Opts: DffOptions{DisableVerify: true}})
	if err != nil {
		t.Fatal(err)
	}
	if rtlil.CanonicalHash(on) != rtlil.CanonicalHash(off) {
		t.Fatal("verify-on and verify-off netlists differ")
	}
	for _, counter := range []string{"dff_const", "dff_merged", "dff_unused", "dff_removed", "dff_const_bits"} {
		if ron.Details[counter] != roff.Details[counter] {
			t.Errorf("%s: verify-on %d != verify-off %d",
				counter, ron.Details[counter], roff.Details[counter])
		}
	}
	if ron.Details["dff_proved"] != 1 || roff.Details["dff_proved"] != 0 {
		t.Errorf("dff_proved on/off = %d/%d, want 1/0",
			ron.Details["dff_proved"], roff.Details["dff_proved"])
	}
}

func TestDffAblationOptions(t *testing.T) {
	for _, tc := range []struct {
		script  string
		counter string
	}{
		{"opt_dff(const=false)", "dff_const"},
		{"opt_dff(merge=false)", "dff_merged"},
		{"opt_dff(unused=false)", "dff_unused"},
	} {
		f, err := ParseFlow(tc.script)
		if err != nil {
			t.Fatalf("%s: %v", tc.script, err)
		}
		m := dffTestbench()
		r, err := f.Run(nil, m)
		if err != nil {
			t.Fatalf("%s: %v", tc.script, err)
		}
		if got := r.Details[tc.counter]; got != 0 {
			t.Errorf("%s: %s = %d, want 0", tc.script, tc.counter, got)
		}
	}
	if _, err := ParseFlow("opt_dff(k=0)"); err == nil {
		t.Error("opt_dff(k=0) accepted, want positive-option error")
	}
	if _, err := ParseFlow("opt_dff(bogus=1)"); err == nil {
		t.Error("opt_dff(bogus=1) accepted, want unknown-option error")
	}
}

// TestDffRejectsViaVerifier forces the prover into an unprovable spot
// with a conflict budget of 1: the pass must keep the module untouched
// and report the rejection.
func TestDffRejectsViaVerifier(t *testing.T) {
	m := dffTestbench()
	before := rtlil.CanonicalHash(m)
	r, err := RunScript(nil, m, DffPass{Opts: DffOptions{VerifyConflicts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Details["dff_verify_rejected"] != 1 {
		t.Fatalf("dff_verify_rejected = %d, want 1 (details %+v)",
			r.Details["dff_verify_rejected"], r.Details)
	}
	if r.Changed {
		t.Error("rejected sweep must not set Changed")
	}
	if rtlil.CanonicalHash(m) != before {
		t.Error("rejected sweep mutated the module")
	}
}
