package opt

import "repro/internal/rtlil"

// CleanPass is the opt_clean equivalent: it removes combinational cells
// whose outputs cannot reach any module output or flip-flop, dangling
// module connections, and unused automatically-named wires. This is the
// pass that actually deletes the eq gates disconnected by muxtree
// restructuring (paper Algorithm 1, line 9).
type CleanPass struct{}

// Name implements Pass.
func (CleanPass) Name() string { return "opt_clean" }

// Run implements Pass.
func (CleanPass) Run(c *Ctx, m *rtlil.Module) (Result, error) {
	res := newResult()
	for {
		if err := c.Err(); err != nil {
			return res, err
		}
		n := cleanSweep(m)
		if n == 0 {
			break
		}
		res.bump("cells_removed", n)
	}
	res.bump("wires_removed", cleanWires(m))
	return res, nil
}

func cleanSweep(m *rtlil.Module) int {
	ix := rtlil.NewIndex(m)

	// Mark observable bits: module outputs and every input of a
	// sequential cell.
	live := map[rtlil.SigBit]bool{}
	var queue []rtlil.SigBit
	markSig := func(sig rtlil.SigSpec) {
		for _, b := range ix.Map(sig) {
			if !b.IsConst() && !live[b] {
				live[b] = true
				queue = append(queue, b)
			}
		}
	}
	for _, w := range m.Outputs() {
		markSig(w.Bits())
	}
	liveCells := map[*rtlil.Cell]bool{}
	for _, c := range m.Cells() {
		if rtlil.IsSequential(c.Type) {
			liveCells[c] = true
			for _, p := range rtlil.InputPorts(c.Type) {
				markSig(c.Port(p))
			}
		}
	}
	// Backward reachability.
	for len(queue) > 0 {
		b := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		r, ok := ix.Driver(b)
		if !ok || liveCells[r.Cell] {
			continue
		}
		liveCells[r.Cell] = true
		for _, p := range rtlil.InputPorts(r.Cell.Type) {
			markSig(r.Cell.Port(p))
		}
	}

	removed := 0
	for _, c := range append([]*rtlil.Cell(nil), m.Cells()...) {
		if !liveCells[c] {
			m.RemoveCell(c)
			removed++
		}
	}

	// Drop connections whose LHS is entirely unreferenced. The check
	// must use *raw* references (not SigMap-canonical ones): a wire
	// aliased to a constant has the constant as its canonical form and
	// therefore no recorded readers, yet cells may still reference the
	// wire directly — dropping its driving connection would leave those
	// references undriven.
	rawUsed := map[rtlil.SigBit]bool{}
	markRaw := func(sig rtlil.SigSpec) {
		for _, b := range sig {
			if !b.IsConst() {
				rawUsed[b] = true
			}
		}
	}
	for _, c := range m.Cells() {
		for port, sig := range c.Conn {
			if c.IsInputPort(port) {
				markRaw(sig)
			}
		}
	}
	for _, cn := range m.Conns {
		markRaw(cn.RHS)
	}
	ix2 := rtlil.NewIndex(m)
	var kept []rtlil.Connection
	for _, cn := range m.Conns {
		used := false
		for _, b := range cn.LHS {
			if b.IsConst() {
				used = true
				break
			}
			if b.Wire.PortOutput || rawUsed[b] || len(ix2.Readers(b)) > 0 {
				used = true
				break
			}
			cb := ix2.MapBit(b)
			if ix2.IsOutputBit(cb) || len(ix2.Readers(cb)) > 0 {
				used = true
				break
			}
		}
		if used {
			kept = append(kept, cn)
		}
	}
	m.Conns = kept
	return removed
}

// cleanWires removes wires that are not ports and are referenced nowhere.
func cleanWires(m *rtlil.Module) int {
	used := map[*rtlil.Wire]bool{}
	mark := func(sig rtlil.SigSpec) {
		for _, b := range sig {
			if b.Wire != nil {
				used[b.Wire] = true
			}
		}
	}
	for _, c := range m.Cells() {
		for _, sig := range c.Conn {
			mark(sig)
		}
	}
	for _, cn := range m.Conns {
		mark(cn.LHS)
		mark(cn.RHS)
	}
	removed := 0
	for _, w := range append([]*rtlil.Wire(nil), m.Wires()...) {
		if !w.IsPort() && !used[w] {
			m.RemoveWire(w)
			removed++
		}
	}
	return removed
}
