package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/server/api"
)

// postAsync submits one async optimize request and returns the 202 job.
func postAsync(t *testing.T, url string, req api.OptimizeRequest) api.Job {
	t.Helper()
	req.Async = true
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job api.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("async submit: %d %+v", resp.StatusCode, job)
	}
	return job
}

// pollJob polls one job until it reaches a terminal state.
func pollJob(t *testing.T, url, id string) api.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var job api.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch job.State {
		case api.JobDone, api.JobFailed, api.JobResultEvicted:
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestManyAsyncJobsRehydrateFromStore is the regression test for the
// silent async result loss: well past maxRetainedResults concurrent
// jobs, every single one must still poll as done with a non-nil result
// — the durable store re-hydrates what the in-memory pruner dropped.
func TestManyAsyncJobsRehydrateFromStore(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, ts := newTestServer(t, Config{
		Jobs: 2, QueueDepth: 64, JobsDir: filepath.Join(t.TempDir(), "jobs"),
	})

	const n = maxRetainedResults + 8 // 40 > the 32 retained payloads
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := api.OptimizeRequest{Design: designJSON, Flow: "yosys", Async: true}
			body, _ := json.Marshal(req)
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var job api.Job
			if json.NewDecoder(resp.Body).Decode(&job) == nil {
				ids[i] = job.ID
			}
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			t.Fatalf("job %d was not accepted", i)
		}
	}
	for _, id := range ids {
		j := pollJob(t, ts.URL, id)
		if j.State != api.JobDone {
			t.Fatalf("job %s finished as %s (%s)", id, j.State, j.Error)
		}
		if j.Result == nil {
			t.Fatalf("job %s is done with a nil result (payload lost)", id)
		}
	}
}

// TestEvictedResultsDistinctStateWithoutStore: with no durable store,
// pruned payloads cannot re-hydrate — the job must then report the
// distinct result_evicted state, and no poll may ever observe "done"
// with a nil result.
func TestEvictedResultsDistinctStateWithoutStore(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, ts := newTestServer(t, Config{Jobs: 2, QueueDepth: 64})

	const n = maxRetainedResults + 8
	ids := make([]string, n)
	for i := range ids {
		ids[i] = postAsync(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"}).ID
	}
	evicted := 0
	for _, id := range ids {
		j := pollJob(t, ts.URL, id)
		switch j.State {
		case api.JobDone:
			if j.Result == nil {
				t.Fatalf("job %s: done with nil result — the silent-loss bug", id)
			}
		case api.JobResultEvicted:
			evicted++
			if j.Result != nil {
				t.Errorf("job %s: result_evicted but carries a result", id)
			}
			if j.Error == "" {
				t.Errorf("job %s: result_evicted without an explanatory error", id)
			}
		default:
			t.Fatalf("job %s finished as %s (%s)", id, j.State, j.Error)
		}
	}
	if evicted == 0 {
		t.Fatalf("no job reported result_evicted across %d jobs (retention %d)", n, maxRetainedResults)
	}
}

// TestDrainStopsAdmission is the regression test for the drain
// livelock: Drain must complete while clients keep submitting, because
// it stops admission first — the pre-fix code waited on a WaitGroup
// that a steady request stream kept bumping forever.
func TestDrainStopsAdmission(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	s, ts := newTestServer(t, Config{Jobs: 2})

	// A steady stream of submitters, the workload that livelocked Drain.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the stream establish

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under a steady request stream: %v", err)
	}
	close(stop)
	wg.Wait()

	// A draining server refuses new work with 503.
	body, _ := json.Marshal(api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server answered %d, want 503", resp.StatusCode)
	}
}

// TestClientGoneMapsTo499: a sync request abandoned by its own client
// while waiting for a run slot must surface as errClientGone (499), not
// as the 503 that makes a healthy server look unavailable; server
// shutdown keeps mapping to 503.
func TestClientGoneMapsTo499(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	s := New(Config{Jobs: 1})
	defer s.Close()
	s.sem <- struct{}{} // occupy the only run slot
	defer func() { <-s.sem }()

	pr, err := s.validateRequest(api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	_, err = s.execute(ctx, pr)
	var gone errClientGone
	if !errors.As(err, &gone) {
		t.Fatalf("execute returned %v, want errClientGone", err)
	}
	if got := errStatus(err); got != statusClientClosedRequest {
		t.Errorf("errStatus = %d, want 499", got)
	}
	// Shutdown cancellation still reads as unavailability.
	if got := errStatus(fmt.Errorf("module m: %w", context.Canceled)); got != http.StatusServiceUnavailable {
		t.Errorf("errStatus(server cancel) = %d, want 503", got)
	}
}

// failWriter fails every write, as a client that hung up mid-response
// does.
type failWriter struct{ header http.Header }

func (f *failWriter) Header() http.Header       { return f.header }
func (f *failWriter) WriteHeader(int)           {}
func (f *failWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

func TestWriteJSONLogsEncodeFailure(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	s := New(Config{Logf: func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	defer s.Close()
	s.writeJSON(&failWriter{header: http.Header{}}, http.StatusOK, api.Error{Error: "x"})
	mu.Lock()
	defer mu.Unlock()
	for _, l := range logs {
		if strings.Contains(l, "writing response") {
			return
		}
	}
	t.Errorf("encode failure not logged; logs: %q", logs)
}

// TestJobEventsStream: the SSE endpoint streams lifecycle transitions
// and per-pass progress in seq order, replays history to late
// subscribers, resumes past Last-Event-ID without duplicates, and ends
// at the terminal state.
func TestJobEventsStream(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, ts := newTestServer(t, Config{})

	// NoCache forces a real computation, so pass events must appear.
	job := postAsync(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys", NoCache: true})
	evs := readEvents(t, ts.URL, job.ID, 0)

	var states []string
	passes, lastSeq := 0, 0
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case api.EventState:
			states = append(states, ev.State)
		case api.EventPass:
			passes++
			if ev.Pass == "" || ev.Module == "" || ev.Calls < 1 {
				t.Errorf("malformed pass event: %+v", ev)
			}
		}
	}
	want := []string{api.JobQueued, api.JobRunning, api.JobDone}
	if strings.Join(states, ",") != strings.Join(want, ",") {
		t.Errorf("lifecycle %v, want %v", states, want)
	}
	if passes == 0 {
		t.Error("no pass events from an uncached computation")
	}

	// Resuming past the first half replays only the rest.
	mid := evs[len(evs)/2].Seq
	tail := readEvents(t, ts.URL, job.ID, mid)
	if len(tail) != len(evs)-len(evs)/2-1 {
		t.Errorf("resume after seq %d replayed %d events, want %d", mid, len(tail), len(evs)-len(evs)/2-1)
	}
	for _, ev := range tail {
		if ev.Seq <= mid {
			t.Errorf("resume re-delivered seq %d <= %d", ev.Seq, mid)
		}
	}

	// Unknown jobs 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("events of unknown job: %d, want 404", resp.StatusCode)
	}
}

// readEvents consumes one SSE stream to its server-side close.
func readEvents(t *testing.T, url, id string, after int) []api.JobEvent {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", url, id, after), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var evs []api.JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestCachePeerEndpoints exercises the wire protocol replicas share
// entries over: framed GET/PUT with checksum validation, on the plain
// hex content-hash ids the protocol is restricted to.
func TestCachePeerEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	idA := strings.Repeat("ab", 32) // well-formed 64-char hex ids
	idB := strings.Repeat("cd", 32)
	idAbsent := strings.Repeat("ef", 32)

	resp, err := http.Get(ts.URL + "/v1/cache/" + idAbsent)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("absent entry: %d, want 404", resp.StatusCode)
	}

	put := func(id string, body []byte) int {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/cache/"+id, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(idA, cache.Frame([]byte("payload"))); code != http.StatusNoContent {
		t.Fatalf("put: %d, want 204", code)
	}
	if code := put(idB, []byte("unframed junk")); code != http.StatusBadRequest {
		t.Errorf("malformed put: %d, want 400", code)
	}

	resp, err = http.Get(ts.URL + "/v1/cache/" + idA)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get after put: %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	val, ok := cache.Unframe(buf.Bytes())
	if !ok || string(val) != "payload" {
		t.Fatalf("served entry unframed=%v %q", ok, val)
	}
}

// TestCachePeerRejectsNonHashIDs: the unauthenticated peer endpoints
// must refuse any id that is not a plain hex content hash *before* any
// tier sees it. ServeMux percent-decodes path values, so a crafted
// "..%2f..%2f" id reaches the handler carrying real traversal segments
// — pre-fix, PUT wrote attacker-controlled bytes to arbitrary
// daemon-writable paths through the disk tier's filepath.Join.
func TestCachePeerRejectsNonHashIDs(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	c, err := cache.New(0, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Cache: c})

	evil := []string{
		"..%2f..%2f..%2ftmp%2fpwned",              // decoded: ../../../tmp/pwned
		"..%5c..%5cpwned",                         // backslash flavor
		"%2e%2e%2fjobs%2fpwned",                   // fully encoded dots
		"short",                                   // not a hash at all
		strings.Repeat("ab", 32) + "%2fx",         // valid hash + trailing segment
		strings.ToUpper(strings.Repeat("ab", 32)), // uppercase hex is not canonical
	}
	for _, id := range evil {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/cache/"+id,
			bytes.NewReader(cache.Frame([]byte("owned"))))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT %s: %d, want 400", id, resp.StatusCode)
		}
		getResp, err := http.Get(ts.URL + "/v1/cache/" + id)
		if err != nil {
			t.Fatal(err)
		}
		getResp.Body.Close()
		if getResp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: %d, want 400", id, getResp.StatusCode)
		}
	}
	// Nothing escaped the cache directory: the tempdir holds only the
	// (empty) cache tree, and no "pwned" file exists anywhere under it.
	root := filepath.Dir(cacheDir)
	err = filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if strings.Contains(path, "pwned") || (!info.IsDir() && strings.Contains(path, "owned")) {
			t.Errorf("traversal artifact on disk: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestEventResumeAcrossRestart: event ids are epoch-qualified so a
// subscriber resuming with a pre-restart Last-Event-ID cannot skip the
// adopted job's events — the restarted daemon's stream starts over at
// seq 1 under a higher epoch, and a stale position must replay it from
// the start. Pre-fix, the seq counter silently restarted at 1 and a
// resume past any pre-restart seq waited forever on events that would
// never come.
func TestEventResumeAcrossRestart(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	jobsDir := filepath.Join(t.TempDir(), "jobs")

	s1, ts1 := newTestServer(t, Config{JobsDir: jobsDir})
	job := postAsync(t, ts1.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys", NoCache: true})
	if st := pollJob(t, ts1.URL, job.ID); st.State != api.JobDone {
		t.Fatalf("job finished as %s (%s)", st.State, st.Error)
	}
	evs1 := readEvents(t, ts1.URL, job.ID, 0)
	if len(evs1) < 3 {
		t.Fatalf("first incarnation streamed %d events", len(evs1))
	}
	for _, ev := range evs1 {
		if ev.Epoch != 1 {
			t.Fatalf("fresh job event with epoch %d, want 1", ev.Epoch)
		}
	}
	last := evs1[len(evs1)-1]
	s1.Close()

	_, ts2 := newTestServer(t, Config{JobsDir: jobsDir})
	// Resume with the pre-restart position, epoch-qualified the way the
	// SSE ids carried it. The adopted (done) job's stream holds exactly
	// one terminal event at epoch 2, seq 1 — far "behind" last.Seq — and
	// the stale-epoch position must still receive it.
	req, err := http.NewRequest(http.MethodGet, ts2.URL+"/v1/jobs/"+job.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", fmt.Sprintf("%d-%d", last.Epoch, last.Seq))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs2 []api.JobEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev api.JobEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		evs2 = append(evs2, ev)
	}
	if len(evs2) == 0 {
		t.Fatal("stale-epoch resume delivered no events (the pre-fix hang)")
	}
	final := evs2[len(evs2)-1]
	if final.Epoch != last.Epoch+1 || final.Type != api.EventState || final.State != api.JobDone {
		t.Errorf("post-restart terminal event %+v, want epoch %d done", final, last.Epoch+1)
	}
}

// TestTwoReplicasSharedCacheTier: replica B, pointed at replica A via
// the HTTP peer protocol, serves A's computation as a cache hit on its
// own first request — the fleet-warm path.
func TestTwoReplicasSharedCacheTier(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, tsA := newTestServer(t, Config{})

	cacheB, err := cache.New(0, "")
	if err != nil {
		t.Fatal(err)
	}
	cacheB.SetRemote(cache.NewHTTPPeer(tsA.URL, 0))
	sB, tsB := newTestServer(t, Config{Cache: cacheB})

	// Replica A computes.
	respA, code := postOptimize(t, tsA.URL, api.OptimizeRequest{Design: designJSON, Flow: "full"})
	if code != http.StatusOK || respA.Cache != "miss" {
		t.Fatalf("replica A: %d cache=%q", code, respA.Cache)
	}
	// Replica B's first sight of the design is a hit through the peer.
	respB, code := postOptimize(t, tsB.URL, api.OptimizeRequest{Design: designJSON, Flow: "full"})
	if code != http.StatusOK {
		t.Fatalf("replica B: %d", code)
	}
	if respB.Cache != "hit" {
		t.Errorf("replica B cache = %q, want hit via peer", respB.Cache)
	}
	if !bytes.Equal(respA.Design, respB.Design) {
		t.Error("replicas served different netlists for one key")
	}
	if st := sB.Cache().Stats(); st.RemoteHits < 1 {
		t.Errorf("replica B remote stats %+v, want >= 1 remote hit", st)
	}
}

// TestJobRecoveryAcrossServers: a server over an existing job store
// re-serves finished jobs under their original ids and re-runs queued
// records left by an interrupted predecessor (the in-process half of
// the kill -9 e2e in cmd/smartlyd).
func TestJobRecoveryAcrossServers(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	jobsDir := filepath.Join(t.TempDir(), "jobs")

	s1, ts1 := newTestServer(t, Config{JobsDir: jobsDir})
	job := postAsync(t, ts1.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	finished := pollJob(t, ts1.URL, job.ID)
	if finished.State != api.JobDone || finished.Result == nil {
		t.Fatalf("job finished as %s", finished.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s1.Drain(ctx)
	s1.Close()

	// Plant a queued record, as a daemon killed before running it would
	// leave behind.
	reqRaw, _ := json.Marshal(api.OptimizeRequest{Design: designJSON, Flow: "full"})
	rec := jobRecord{ID: "0123456789abcdef", State: api.JobQueued,
		SubmittedAt: time.Now(), Request: reqRaw}
	raw, _ := json.Marshal(rec)
	if err := os.WriteFile(filepath.Join(jobsDir, rec.ID+".json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newTestServer(t, Config{JobsDir: jobsDir})
	// The finished job re-serves its payload under the original id.
	replayed := pollJob(t, ts2.URL, job.ID)
	if replayed.State != api.JobDone || replayed.Result == nil {
		t.Fatalf("recovered job %s: %s (result nil=%v)", job.ID, replayed.State, replayed.Result == nil)
	}
	if !bytes.Equal(replayed.Result.Design, finished.Result.Design) {
		t.Error("recovered result differs from the original")
	}
	// The queued record runs to completion.
	requeued := pollJob(t, ts2.URL, rec.ID)
	if requeued.State != api.JobDone || requeued.Result == nil {
		t.Fatalf("re-queued job: %s (%s)", requeued.State, requeued.Error)
	}
}
