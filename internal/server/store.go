package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/server/api"
)

// The durable job store persists every async job as one JSON record
// under a directory (by default <cache-dir>/jobs), (re)written
// atomically — temp file + rename, like the cache's disk tier — at
// submission and on every state transition. Record I/O happens outside
// the job-store mutex (a slow disk must not stall every poll and
// progress event daemon-wide), serialized per job, and a terminal
// record always lands before the job's done channel closes; the only
// crash window is between a poller observing a new state and the
// record hitting disk, which on restart re-runs the job — never loses
// it. A smartlyd killed at any instant therefore leaves a consistent
// store:
// on restart, finished jobs re-serve their payloads under their
// original ids, and queued or mid-run jobs are re-submitted (re-running
// a half-done optimization is safe — flows are deterministic and the
// result cache absorbs recomputation). Store I/O is fail-soft in
// steady state: a failed record write costs durability for that job,
// never the job itself; an unreadable record at recovery is skipped
// and logged.

// jobRecord is the on-disk form of one async job.
type jobRecord struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Epoch counts the job's incarnations: 1 at submission, +1 per
	// adoption by a restarted daemon. Persisting it keeps event ids
	// ("epoch-seq", see api.JobEvent) unambiguous across any number of
	// restarts — each incarnation restarts Seq at 1 under a fresh epoch.
	Epoch       int       `json:"epoch,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	// FinishedAt is when the job reached its terminal state; the GC's
	// age policy counts retention from it (falling back to the record
	// file's mtime for records written before this field existed).
	FinishedAt time.Time `json:"finished_at,omitempty"`
	// Request is the original OptimizeRequest body, kept verbatim so a
	// queued or running job can be re-validated and re-run on recovery.
	Request json.RawMessage `json:"request,omitempty"`
	// Result is the marshaled OptimizeResponse of a done job.
	Result json.RawMessage `json:"result,omitempty"`
}

// diskJobs is the store backend. A nil *diskJobs is valid and persists
// nothing (the in-memory-only configuration).
type diskJobs struct {
	dir  string
	logf func(format string, args ...any)
}

// newDiskJobs opens (creating if needed) the store directory.
func newDiskJobs(dir string, logf func(format string, args ...any)) (*diskJobs, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating job store: %w", err)
	}
	return &diskJobs{dir: dir, logf: logf}, nil
}

func (d *diskJobs) log(format string, args ...any) {
	if d != nil && d.logf != nil {
		d.logf(format, args...)
	}
}

func (d *diskJobs) path(id string) string {
	return filepath.Join(d.dir, id+".json")
}

// save writes one record atomically (temp + rename, 0644 like the
// cache's disk tier so replicas under different users can share a
// directory tree), best effort.
func (d *diskJobs) save(rec jobRecord) {
	if d == nil {
		return
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		d.log("job store: marshaling %s: %v", rec.ID, err)
		return
	}
	tmp, err := os.CreateTemp(d.dir, "job-*")
	if err != nil {
		d.log("job store: %v", err)
		return
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		d.log("job store: writing %s: %v", rec.ID, err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		d.log("job store: writing %s: %v", rec.ID, err)
		return
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(rec.ID)); err != nil {
		os.Remove(tmp.Name())
		d.log("job store: writing %s: %v", rec.ID, err)
	}
}

// remove forgets one record, best effort (pruned jobs 404 either way).
func (d *diskJobs) remove(id string) {
	if d == nil {
		return
	}
	os.Remove(d.path(id))
}

// load reads every record, skipping damaged ones, in submission order
// (ties broken by id, so recovery is deterministic).
func (d *diskJobs) load() []jobRecord {
	if d == nil {
		return nil
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		d.log("job store: reading %s: %v", d.dir, err)
		return nil
	}
	var recs []jobRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue // temp files, strays
		}
		raw, err := os.ReadFile(filepath.Join(d.dir, name))
		if err != nil {
			d.log("job store: reading %s: %v", name, err)
			continue
		}
		var rec jobRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID == "" ||
			rec.ID+".json" != name {
			d.log("job store: skipping damaged record %s", name)
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].SubmittedAt.Equal(recs[j].SubmittedAt) {
			return recs[i].SubmittedAt.Before(recs[j].SubmittedAt)
		}
		return recs[i].ID < recs[j].ID
	})
	return recs
}

// recordInfo is one store file as the GC sees it: the job id (or ""
// for a stray temp file), and the file's size and mtime.
type recordInfo struct {
	id    string // "" = not a record (job-* temp file)
	name  string
	size  int64
	mtime time.Time
}

// scan lists the store's files without decoding them — the GC ages and
// sizes records from file metadata, so a sweep over thousands of
// records costs one ReadDir, not thousands of JSON parses.
func (d *diskJobs) scan() []recordInfo {
	if d == nil {
		return nil
	}
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		d.log("job store: reading %s: %v", d.dir, err)
		return nil
	}
	var infos []recordInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		fi, err := e.Info()
		if err != nil {
			continue // unlinked between ReadDir and Info
		}
		info := recordInfo{name: name, size: fi.Size(), mtime: fi.ModTime()}
		if strings.HasSuffix(name, ".json") {
			info.id = strings.TrimSuffix(name, ".json")
		}
		infos = append(infos, info)
	}
	return infos
}

// usage reports the store's current footprint (record files only; a
// concurrent save's unrenamed temp file is not yet a record).
func (d *diskJobs) usage() (records int, bytes int64) {
	for _, info := range d.scan() {
		if info.id == "" {
			continue
		}
		records++
		bytes += info.size
	}
	return records, bytes
}

// removeStray unlinks a non-record file (a stray temp) by name,
// guarding against path escapes since the name came from ReadDir.
func (d *diskJobs) removeStray(name string) {
	if d == nil || name != filepath.Base(name) {
		return
	}
	os.Remove(filepath.Join(d.dir, name))
}

// loadResult re-hydrates the result payload of a done job whose
// in-memory copy was pruned.
func (d *diskJobs) loadResult(id string) (*api.OptimizeResponse, bool) {
	if d == nil {
		return nil, false
	}
	raw, err := os.ReadFile(d.path(id))
	if err != nil {
		return nil, false
	}
	var rec jobRecord
	if err := json.Unmarshal(raw, &rec); err != nil || len(rec.Result) == 0 {
		return nil, false
	}
	var resp api.OptimizeResponse
	if err := json.Unmarshal(rec.Result, &resp); err != nil {
		d.log("job store: damaged result payload for %s: %v", id, err)
		return nil, false
	}
	return &resp, true
}
