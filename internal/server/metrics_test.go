package server

import (
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/server/api"
)

// scrapeMetrics fetches GET /metrics and returns the body.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// getHealth fetches and decodes GET /healthz.
func getHealth(t *testing.T, url string) api.Health {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// TestMetricsEndpoint drives the serving path once through each class
// of instrument and pins the Prometheus exposition on /metrics.
func TestMetricsEndpoint(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, ts := newTestServer(t, Config{
		JobsDir: filepath.Join(t.TempDir(), "jobs"),
	})

	// One miss, one hit, one async job, one bad request.
	if _, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"}); code != http.StatusOK {
		t.Fatalf("miss request: %d", code)
	}
	if _, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"}); code != http.StatusOK {
		t.Fatalf("hit request: %d", code)
	}
	job := postAsync(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
	if j := pollJob(t, ts.URL, job.ID); j.State != api.JobDone {
		t.Fatalf("async job: %s (%s)", j.State, j.Error)
	}
	if _, code := postOptimize(t, ts.URL, api.OptimizeRequest{Design: []byte("null")}); code != http.StatusBadRequest {
		t.Fatalf("bad request: %d", code)
	}

	out := scrapeMetrics(t, ts.URL)
	for _, want := range []string{
		"# TYPE smartlyd_requests_total counter",
		`smartlyd_requests_total{endpoint="optimize",status="200"} 2`,
		`smartlyd_requests_total{endpoint="optimize",status="202"} 1`,
		`smartlyd_requests_total{endpoint="optimize",status="400"} 1`,
		"# TYPE smartlyd_optimize_seconds histogram",
		`smartlyd_optimize_seconds_count{kind="sync"} 2`,
		`smartlyd_optimize_seconds_count{kind="async"} 1`,
		`smartlyd_optimize_seconds_bucket{kind="sync",le="+Inf"} 2`,
		"# TYPE smartlyd_queue_wait_seconds histogram",
		"smartlyd_queue_wait_seconds_count 3",
		`smartlyd_job_transitions_total{state="queued"} 1`,
		`smartlyd_job_transitions_total{state="running"} 1`,
		`smartlyd_job_transitions_total{state="done"} 1`,
		`smartlyd_jobs{state="done"} 1`,
		"smartlyd_job_records 1",
		`smartlyd_cache_hits_total{tier="memory"}`,
		"smartlyd_cache_misses_total",
		"smartlyd_cache_puts_total",
		"smartlyd_sse_subscribers 0",
		"smartlyd_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full scrape:\n%s", out)
	}
}

// TestHealthzConsistentUnderLoad hammers /healthz while optimize
// traffic (sync and async) runs, asserting every response is a
// complete, internally consistent snapshot. Run under -race this also
// proves the snapshot path is race-free against the serving path.
func TestHealthzConsistentUnderLoad(t *testing.T) {
	designJSON := testDesignJSON(t, "../../testdata/fig3.v")
	_, ts := newTestServer(t, Config{
		Jobs: 2, QueueDepth: 64,
		JobsDir: filepath.Join(t.TempDir(), "jobs"),
	})

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 6; n++ {
				if i%2 == 0 {
					postOptimize(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
				} else {
					job := postAsync(t, ts.URL, api.OptimizeRequest{Design: designJSON, Flow: "yosys"})
					pollJob(t, ts.URL, job.ID)
				}
			}
		}(i)
	}
	var lastRequests uint64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 40; n++ {
			h := getHealth(t, ts.URL)
			if h.Status != "ok" {
				t.Errorf("healthz status %q", h.Status)
			}
			if h.Metrics == nil {
				t.Error("healthz has no metrics summary")
				return
			}
			if h.Metrics.Requests < lastRequests {
				t.Errorf("request counter went backwards: %d after %d", h.Metrics.Requests, lastRequests)
			}
			lastRequests = h.Metrics.Requests
			if h.Store == nil {
				t.Error("healthz has no store stats despite JobsDir")
				return
			}
			if h.Store.Records > 0 && h.Store.Bytes <= 0 {
				t.Errorf("store stats inconsistent: %d records, %d bytes", h.Store.Records, h.Store.Bytes)
			}
			scrapeMetrics(t, ts.URL) // the scrape path races the same instruments
		}
	}()
	wg.Wait()

	// After the load settles, the summary must agree with the traffic
	// that ran: some sync and async observations, queue waits for every
	// admitted run, uptime present.
	h := getHealth(t, ts.URL)
	if h.Metrics.OptimizeSync.Count == 0 || h.Metrics.OptimizeAsync.Count == 0 {
		t.Fatalf("latency summaries empty after load: %+v", h.Metrics)
	}
	if h.Metrics.QueueWait.Count < h.Metrics.OptimizeSync.Count+h.Metrics.OptimizeAsync.Count {
		t.Errorf("queue waits (%d) < completed requests (%d+%d)",
			h.Metrics.QueueWait.Count, h.Metrics.OptimizeSync.Count, h.Metrics.OptimizeAsync.Count)
	}
	if h.Metrics.OptimizeSync.P50MS <= 0 || h.Metrics.OptimizeSync.MaxMS < h.Metrics.OptimizeSync.P50MS {
		t.Errorf("sync summary implausible: %+v", h.Metrics.OptimizeSync)
	}
}
